// Command striderasm assembles, disassembles, and executes Strider ISA
// programs (paper §5.1.2, Table 2).
//
//	striderasm -asm prog.s                # assemble, print 22-bit words
//	striderasm -dis words.hex             # disassemble hex words
//	striderasm -gen -page 32768           # emit the page-walker program
//	striderasm -run prog.s -page 8192 -tuples 10 -features 4
//	striderasm -verify prog.s -page 8192  # static verification only
//
// Assembled programs (-asm, -run, -verify) are statically verified
// against the page size; diagnostics print as file:line:col with the
// verifier's severity, and definite traps (or, under -strict, any
// diagnostic) exit non-zero.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dana/internal/storage"
	"dana/internal/strider"
)

func main() {
	var (
		asmFile    = flag.String("asm", "", "assemble a Strider assembly file")
		disFile    = flag.String("dis", "", "disassemble a file of hex instruction words")
		gen        = flag.Bool("gen", false, "generate the PostgreSQL page-walker program")
		runFile    = flag.String("run", "", "assemble and execute a program against a synthetic page")
		verifyFile = flag.String("verify", "", "statically verify a Strider assembly file")
		pageSize   = flag.Int("page", 8192, "page size in bytes")
		tuples     = flag.Int("tuples", 10, "tuples on the synthetic page (-run)")
		features   = flag.Int("features", 4, "feature columns on the synthetic page (-run)")
		strict     = flag.Bool("strict", false, "treat verifier warnings as rejections")
	)
	flag.Parse()

	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		check(err)
		prog := verifySource(*asmFile, string(src), nil, *pageSize, *strict)
		for _, w := range strider.EncodeProgram(prog) {
			fmt.Printf("%06x\n", w)
		}
	case *verifyFile != "":
		src, err := os.ReadFile(*verifyFile)
		check(err)
		prog := verifySource(*verifyFile, string(src), nil, *pageSize, *strict)
		fmt.Printf("%s: %d instructions verified for %d-byte pages\n", *verifyFile, len(prog), *pageSize)
	case *disFile != "":
		src, err := os.ReadFile(*disFile)
		check(err)
		var words []uint32
		for _, line := range strings.Fields(string(src)) {
			v, err := strconv.ParseUint(line, 16, 32)
			check(err)
			words = append(words, uint32(v))
		}
		prog, err := strider.DecodeProgram(words)
		check(err)
		fmt.Print(strider.Disassemble(prog))
	case *gen:
		prog, cfg, err := strider.Generate(strider.PostgresLayout(*pageSize))
		check(err)
		fmt.Print(strider.Disassemble(prog))
		fmt.Printf("\\\\ field table: off=%v len=%v flags=%v\n",
			cfg.Fields[0], cfg.Fields[1], cfg.Fields[2])
	case *runFile != "":
		src, err := os.ReadFile(*runFile)
		check(err)
		_, cfg, err := strider.Generate(strider.PostgresLayout(*pageSize))
		check(err)
		prog := verifySource(*runFile, string(src), &cfg, *pageSize, *strict)
		page := buildPage(*pageSize, *tuples, *features)
		vm := strider.NewVM(prog, cfg)
		check(vm.Run(page))
		fmt.Printf("emitted %d bytes in %d cycles\n", len(vm.Out()), vm.Cycles())
		for i := 0; i < len(vm.Out()) && i < 64; i += 16 {
			end := i + 16
			if end > len(vm.Out()) {
				end = len(vm.Out())
			}
			fmt.Printf("  %04x: % x\n", i, vm.Out()[i:end])
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildPage(pageSize, tuples, features int) storage.Page {
	schema := storage.NumericSchema(features)
	page := storage.NewPage(pageSize, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < tuples; i++ {
		vals := make([]float64, features+1)
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		raw, err := storage.EncodeTuple(schema, vals, 1, storage.TID{Item: uint16(i)})
		check(err)
		if _, err := page.AddItem(raw); err != nil {
			break
		}
	}
	return page
}

// verifySource assembles src and runs the static verifier, printing
// every diagnostic as file:line:col. A nil cfg verifies the program for
// all possible configurations (the CLI usually has no config channel to
// inspect); a concrete cfg gives the stronger exact-value proof.
// Definite traps — or any diagnostic under strict — exit non-zero.
func verifySource(name, src string, cfg *strider.Config, pageSize int, strict bool) []strider.Instr {
	opts := strider.VerifyOptions{PageSize: pageSize, Strict: strict}
	var conf strider.Config
	if cfg != nil {
		conf = *cfg
	} else {
		opts.UnknownConfig = true
	}
	prog, pos, rep, err := strider.AssembleVerified(src, conf, opts)
	check(err)
	for _, d := range rep.Diags {
		p := strider.Pos{Line: 1, Col: 1}
		if d.PC < len(pos) {
			p = pos[d.PC]
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", name, p.Line, p.Col, d.Sev, d.Msg)
	}
	if !rep.OK(strict) {
		fmt.Fprintf(os.Stderr, "striderasm: %s: program rejected by verifier\n", name)
		os.Exit(1)
	}
	return prog
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "striderasm:", err)
		os.Exit(1)
	}
}
