// Package fixture exercises the backendreg analyzer: concrete
// backend.Backend implementations must be constructed by some
// backend.Registration in the package and must declare Capabilities
// with both Name and Classes. Lines without `want` must stay silent.
package fixture

import "dana/internal/backend"

// base provides the method set shared by the fixture backends.
type base struct{}

func (base) EstimateCost(backend.Job) (backend.Cost, error) { return backend.Cost{}, nil }
func (base) Configure(backend.Program) error                { return nil }
func (base) RunEpoch(*backend.Stream) error                 { return nil }
func (base) Score([]float64, [][]float64) ([]float64, error) {
	return nil, nil
}
func (base) Model() []float64         { return nil }
func (base) SetModel([]float64) error { return nil }

// Good is registered through a function-literal factory and declares
// complete capabilities.
type Good struct{ base }

func (Good) Capabilities() backend.Capabilities {
	return backend.Capabilities{
		Name:          "good",
		Classes:       backend.AllClasses(),
		Precision:     backend.PrecisionFloat64,
		BitExactModel: true,
	}
}

// CtorBacked is registered through a named constructor reference.
type CtorBacked struct{ base }

func (CtorBacked) Capabilities() backend.Capabilities {
	return backend.Capabilities{
		Name:      "ctor",
		Classes:   []backend.Class{backend.ClassLinear},
		Precision: backend.PrecisionFloat64,
	}
}

// NewCtorBacked is the registered factory for CtorBacked.
func NewCtorBacked(backend.Env) backend.Backend { return &CtorBacked{} }

// Orphan implements Backend but no Registration constructs it.
type Orphan struct{ base } // want `type Orphan implements backend.Backend but no backend.Registration constructs it`

func (Orphan) Capabilities() backend.Capabilities {
	return backend.Capabilities{
		Name:    "orphan",
		Classes: backend.AllClasses(),
	}
}

// Hollow is registered but its capability declaration omits Classes,
// so the dispatcher's admissibility filter can never match it.
type Hollow struct{ base }

func (Hollow) Capabilities() backend.Capabilities { // want `Capabilities of Hollow must declare Name and workload Classes`
	return backend.Capabilities{Name: "hollow"}
}

// Registrations assembles this package's dispatch registry.
func Registrations() []backend.Registration {
	return []backend.Registration{
		{Name: "good", New: func(backend.Env) backend.Backend { return &Good{} }},
		{Name: "ctor", New: NewCtorBacked},
		{Name: "hollow", New: func(backend.Env) backend.Backend { return &Hollow{} }},
	}
}
