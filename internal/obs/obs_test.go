package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterFloatHist(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter did not return the existing instrument")
	}
	f := r.Float("f")
	f.Add(1.5)
	f.Add(2.25)
	if got := f.Load(); got != 3.75 {
		t.Fatalf("float = %v, want 3.75", got)
	}
	h := r.Hist("h")
	for _, v := range []int64{0, 1, 2, 3, 1024} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1030 || s.Min != 0 || s.Max != 1024 {
		t.Fatalf("hist snapshot = %+v", s)
	}
	if s.Buckets["0"] != 1 || s.Buckets["2^0"] != 1 || s.Buckets["2^1"] != 2 || s.Buckets["2^10"] != 1 {
		t.Fatalf("hist buckets = %+v", s.Buckets)
	}
}

// TestNoopIsInert: the disabled mode contract — every operation through
// obs.Noop (a nil registry) and the nil instruments it hands out must be
// a safe no-op that allocates nothing. This is what lets instrumented
// components ship with obs calls unconditionally compiled in.
func TestNoopIsInert(t *testing.T) {
	var r *Registry = Noop
	c := r.Counter("x")
	f := r.Float("y")
	h := r.Hist("z")
	ring := r.Ring()
	if c != nil || f != nil || h != nil || ring != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.Inc()
		_ = c.Load()
		f.Add(1.5)
		_ = f.Load()
		h.Observe(7)
		ring.Emit("ev", 1, 2)
		r.Trace("ev", 1, 2)
		r.Reset()
		_ = r.Get("x")
		_ = r.GetFloat("y")
		_ = r.CounterNames()
		_ = ring.Events()
	})
	if allocs != 0 {
		t.Fatalf("noop path allocated %v times per run, want 0", allocs)
	}
	if s := r.Snapshot(); s == nil || s.Schema != SnapshotSchema || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

// TestEnabledCounterDoesNotAllocate: the hot-path charge operation must
// be allocation-free when enabled, too.
func TestEnabledCounterDoesNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	h := r.Hist("hist")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(17)
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("enabled charge allocated %v times per run, want 0", allocs)
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	ring := NewRing(3)
	for i := int64(0); i < 5; i++ {
		ring.Emit("e", i, -i)
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i) + 2; ev.A != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d = %+v, want A=%d", i, ev, want)
		}
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}
	ring.Clear()
	if len(ring.Events()) != 0 || ring.Dropped() != 0 {
		t.Fatal("Clear did not empty the ring")
	}
	ring.Emit("after", 0, 0)
	if evs := ring.Events(); len(evs) != 1 || evs[0].Seq != 5 {
		t.Fatalf("post-clear events = %+v, want seq 5", evs)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("engine.cycles").Add(100)
	r.Float("bufpool.io_seconds").Add(0.25)
	r.Hist("h").Observe(9)
	r.Trace("epoch", 1, 2)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Get("engine.cycles") != 100 || s.GetFloat("bufpool.io_seconds") != 0.25 {
		t.Fatalf("round-trip lost counters: %+v", s)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "epoch" {
		t.Fatalf("round-trip lost events: %+v", s.Events)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip lost histograms: %+v", s.Histograms)
	}
	if _, err := ParseSnapshot([]byte(`{"schema":999}`)); err == nil {
		t.Fatal("ParseSnapshot accepted an unknown schema")
	}
	if _, err := ParseSnapshot([]byte(`{bad`)); err == nil {
		t.Fatal("ParseSnapshot accepted invalid JSON")
	}
}

func TestResetAndDeterministicExport(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(5)
	r.Hist("h").Observe(3)
	r.Float("f").Add(1)
	r.Trace("e", 0, 0)
	r.Reset()
	if r.Get("c") != 0 || r.GetFloat("f") != 0 || len(r.Ring().Events()) != 0 {
		t.Fatal("Reset left state behind")
	}
	c.Add(2) // handle survives reset
	if r.Get("c") != 2 {
		t.Fatal("counter handle died across Reset")
	}
	// Two registries with the same contents export identical bytes
	// (modeled counters only; no trace events, whose timestamps differ).
	a, b := New(), New()
	for _, reg := range []*Registry{a, b} {
		reg.Counter("x").Add(1)
		reg.Counter("y").Add(2)
		reg.Float("z").Add(0.5)
	}
	ja, _ := json.Marshal(a.Snapshot())
	jb, _ := json.Marshal(b.Snapshot())
	if string(ja) != string(jb) {
		t.Fatalf("snapshot export not deterministic:\n%s\n%s", ja, jb)
	}
}

// TestConcurrentCharges exercises the atomic paths under -race.
func TestConcurrentCharges(t *testing.T) {
	r := New()
	c := r.Counter("c")
	f := r.Float("f")
	h := r.Hist("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				f.Add(0.5)
				h.Observe(int64(i))
				r.Trace("t", int64(i), 0)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if f.Load() != 4000 {
		t.Fatalf("float = %v, want 4000", f.Load())
	}
	if h.snapshot().Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.snapshot().Count)
	}
}
