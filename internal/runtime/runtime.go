// Package runtime is DAnA's integration layer (paper Figure 2): it
// wires the SQL front end, catalog, and buffer pool to the translator,
// compiler, hardware generator, access engine, and execution engine,
// and executes `SELECT * FROM dana.<udf>('table')` end to end — pages
// stream from the buffer pool through Striders into the multi-threaded
// engine, producing a trained model and cycle-accurate statistics.
package runtime

import (
	"errors"
	"fmt"
	"time"

	"dana/internal/accessengine"
	"dana/internal/backend"
	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/fault"
	"dana/internal/greenplum"
	"dana/internal/hwgen"
	"dana/internal/obs"
	"dana/internal/sql"
	"dana/internal/storage"
	"dana/internal/strider"
	"dana/internal/weaving"
)

// Options configure a System.
type Options struct {
	PageSize  int
	PoolBytes int64
	Disk      bufpool.DiskModel
	FPGA      hwgen.FPGA
	Cost      cost.Params
	// MaxEpochs caps functional training regardless of the UDF's epoch
	// budget (0 = use the UDF's).
	MaxEpochs int

	// Backend selects the execution backend for Train: "" pins the DAnA
	// accelerator pipeline (the paper path, and the historical default),
	// "auto" lets the heterogeneous dispatcher pick the cheapest capable
	// backend by modeled cost, and any registered name ("accelerator",
	// "tabla", "cpu", "sharded", "weave") is an explicit override.
	// Unknown names fail typed with backend.ErrUnknownBackend.
	Backend string
	// Precision is the MLWeaving read precision in bits per feature.
	// 0 and 32 keep the full-width float path (bit-identical to builds
	// without the knob); 1..31 route training through the any-precision
	// weave backend, which quantizes features to k bits and streams
	// proportionally fewer bytes over the modeled link. An explicit
	// Backend of "weave" with Precision 0 reads all 32 planes (the
	// full-width weave path). Values outside [0, 32] fail typed at Train.
	Precision int
	// Segments is the Sharded backend's segment count
	// (0 = backend.DefaultSegments).
	Segments int

	// Workers sets the host goroutines that run Strider VMs during
	// extraction (0 = GOMAXPROCS, capped at the design's Strider count;
	// 1 = serial). Parallelism affects wall-clock time only: modeled
	// cycle counts are charged in page order and stay bit-identical.
	Workers int
	// Channels models the accelerator link as N independent memory
	// channels (0/1 = the single legacy link, capped at MaxChannels).
	// Pages interleave round-robin — page pn streams on channel pn mod
	// N, the policy internal/cost charges — and the executor shards its
	// extraction workers into per-channel Strider groups along the same
	// boundaries, each channel backed by its own record arena. Like
	// Workers, the channel count changes host wall-clock only: modeled
	// cycles, simulated seconds, and trained models are bit-identical
	// for any value (the per-channel obs counters split by channel, but
	// their totals are invariant). The *modeled* transfer time follows
	// Cost.Link, which is configured independently.
	Channels int
	// PipelineDepth bounds the extracted-but-unconsumed page batches per
	// worker (0 = default), bounding memory for large tables.
	PipelineDepth int
	// NoExtractCache disables the cross-epoch extracted-record cache, so
	// every epoch re-walks the heap pages through the Striders.
	NoExtractCache bool

	// Faults attaches a seeded fault-injection schedule threaded through
	// the buffer pool (read errors, latency spikes, page corruption
	// caught by checksums), the access engine (Strider traps), and the
	// executor (worker stalls, cluster faults). Nil disables injection
	// entirely: every hook degrades to a nil-check and modeled results
	// are bit-identical to a build without the fault framework.
	Faults *fault.Injector
	// EpochTimeout bounds each epoch's wall-clock time (0 = none).
	// Expiry surfaces as a typed fault.ErrEpochTimeout, which triggers
	// the CPU fallback unless DisableCPUFallback is set.
	EpochTimeout time.Duration
	// MaxPageRetries bounds same-Strider re-walk attempts after a VM
	// trap before the Strider is quarantined (0 = default 3, negative =
	// no retries).
	MaxPageRetries int
	// MaxReadRetries is forwarded to bufpool.Pool.MaxReadRetries
	// (0 = pool default, negative = no retries).
	MaxReadRetries int
	// DisableCPUFallback turns off graceful degradation: accelerator
	// faults surface as typed errors instead of completing the train on
	// the golden float64 CPU trainer.
	DisableCPUFallback bool
	// VerifyChecksums forces per-page checksum verification on every
	// buffer-pool read even without an attached fault schedule (reads
	// always verify when Faults is non-nil).
	VerifyChecksums bool

	// Obs supplies the observability registry every subsystem charges
	// (nil = the System creates its own enabled registry). Observation
	// is strictly additive: modeled cycles, simulated seconds, and
	// trained models are bit-identical with obs on, off, or shared.
	Obs *obs.Registry
	// DisableObs runs the system dark (obs.Noop): every counter site
	// degrades to a nil-check. Overrides Obs.
	DisableObs bool
}

// DefaultOptions mirrors the paper's default setup: 32 KB pages, 8 GB
// buffer pool, VU9P FPGA. The pool is capped at 256 MB of frames for
// in-process runs; the cost model still uses the full 8 GB figure.
func DefaultOptions() Options {
	p := cost.Default()
	return Options{
		PageSize:  storage.PageSize32K,
		PoolBytes: 256 << 20,
		Disk:      bufpool.DefaultDisk(),
		FPGA:      hwgen.VU9P(),
		Cost:      p,
	}
}

// MaxChannels caps Options.Channels (per-channel instruments are
// resolved eagerly at New, so the series count must be bounded).
const MaxChannels = 32

// System is a DAnA-enhanced database instance.
type System struct {
	Opts Options
	DB   *sql.DB

	cache recordCache // cross-epoch extracted-record cache

	disp *backend.Dispatcher // registered execution backends

	channels int // effective channel count (Opts.Channels clamped)

	obs *obs.Registry // observability registry (obs.Noop when disabled)
	// Cached runtime-layer instrument handles (nil-safe no-ops when dark).
	obsEpochs       *obs.Counter
	obsEpochsCached *obs.Counter
	obsCacheHits    *obs.Counter
	obsCacheMisses  *obs.Counter
	obsWorkerBusy   *obs.Counter
	obsEpochWall    *obs.Counter
	obsTrainWall    *obs.Counter
	obsTrainRuns    *obs.Counter
	obsEpochHist    *obs.Histogram
	// Fault-recovery instruments.
	obsPageRetries  *obs.Counter
	obsQuarantines  *obs.Counter
	obsEpochRetries *obs.Counter
	obsEpochTimeout *obs.Counter
	obsCPUFallbacks *obs.Counter
	obsFailovers    *obs.Counter
	// Static-verification instruments.
	obsVerifyRuns     *obs.Counter
	obsVerifyWarnings *obs.Counter
	obsVerifyRejects  *obs.Counter
	// Per-channel stream instruments (one handle per modeled channel,
	// resolved at New like every other instrument; charged by the
	// coordinator in page order alongside the Collector).
	obsChanBytes []*obs.Counter
	obsChanBusy  []*obs.Counter
}

// New creates the system and installs it as the SQL executor's UDF
// runner.
func New(opts Options) *System {
	if opts.PageSize == 0 {
		opts = DefaultOptions()
	}
	s := &System{
		Opts: opts,
		DB:   sql.NewDB(opts.PageSize, opts.PoolBytes, opts.Disk),
	}
	s.DB.Runner = s
	reg := opts.Obs
	if opts.DisableObs {
		reg = obs.Noop
	} else if reg == nil {
		reg = obs.New()
	}
	s.obs = reg
	s.DB.Pool.SetObs(reg)
	s.obsEpochs = reg.Counter(obs.RuntimeEpochs)
	s.obsEpochsCached = reg.Counter(obs.RuntimeEpochCached)
	s.obsCacheHits = reg.Counter(obs.RuntimeCacheHits)
	s.obsCacheMisses = reg.Counter(obs.RuntimeCacheMisses)
	s.obsWorkerBusy = reg.Counter(obs.RuntimeWorkerBusyNs)
	s.obsEpochWall = reg.Counter(obs.RuntimeEpochWallNs)
	s.obsTrainWall = reg.Counter(obs.RuntimeTrainWallNs)
	s.obsTrainRuns = reg.Counter(obs.RuntimeTrainRuns)
	s.obsEpochHist = reg.Hist(obs.HistEpochWallNs)
	s.obsPageRetries = reg.Counter(obs.RuntimePageRetries)
	s.obsQuarantines = reg.Counter(obs.RuntimeQuarantines)
	s.obsEpochRetries = reg.Counter(obs.RuntimeEpochRetries)
	s.obsEpochTimeout = reg.Counter(obs.RuntimeEpochTimeout)
	s.obsCPUFallbacks = reg.Counter(obs.RuntimeCPUFallbacks)
	s.obsFailovers = reg.Counter(obs.RuntimeFailovers)
	s.obsVerifyRuns = reg.Counter(obs.StriderVerifyRuns)
	s.obsVerifyWarnings = reg.Counter(obs.StriderVerifyWarnings)
	s.obsVerifyRejects = reg.Counter(obs.StriderVerifyRejects)
	s.channels = opts.Channels
	if s.channels < 1 {
		s.channels = 1
	}
	if s.channels > MaxChannels {
		s.channels = MaxChannels
	}
	s.obsChanBytes = make([]*obs.Counter, s.channels)
	s.obsChanBusy = make([]*obs.Counter, s.channels)
	for i := range s.obsChanBytes {
		s.obsChanBytes[i] = reg.Counter(obs.ChannelBytesStreamed(i))
		s.obsChanBusy[i] = reg.Counter(obs.ChannelBusyCycles(i))
	}
	reg.Counter(obs.ChannelCount).Add(int64(s.channels))
	s.DB.Pool.MaxReadRetries = opts.MaxReadRetries
	s.DB.Pool.VerifyChecksums = opts.VerifyChecksums
	if opts.Faults != nil {
		s.DB.Pool.SetFaults(opts.Faults)
	}
	regs := append(backend.Builtins(), greenplum.ShardedRegistration())
	s.disp = backend.NewDispatcher(backend.Env{
		Obs:      reg,
		Cost:     opts.Cost,
		FPGA:     opts.FPGA,
		Workers:  opts.Workers,
		Segments: opts.Segments,
	}, regs...)
	return s
}

// Dispatcher exposes the system's backend dispatcher (stats CLIs,
// tests).
func (s *System) Dispatcher() *backend.Dispatcher { return s.disp }

// Obs returns the system's observability registry (obs.Noop when the
// system runs dark). Snapshot it for the JSON export, or read counters
// programmatically via Get.
func (s *System) Obs() *obs.Registry { return s.obs }

// Catalog returns the system catalog.
func (s *System) Catalog() *catalog.Catalog { return s.DB.Cat }

// Pool returns the buffer pool.
func (s *System) Pool() *bufpool.Pool { return s.DB.Pool }

// WarmTable pre-loads a table into the buffer pool (the paper's
// warm-cache setting) and resets the pool counters.
func (s *System) WarmTable(table string) error {
	if _, err := s.DB.Cat.Table(table); err != nil {
		return err
	}
	return s.DB.Pool.Warm(table)
}

// DropCaches empties the buffer pool and the extracted-record cache
// (the cold-cache setting): the next epoch re-reads every page from the
// simulated disk. Pool invalidations that bypass this method (e.g. DROP
// TABLE inside the SQL layer) still invalidate the record cache via the
// pool's invalidation counter.
func (s *System) DropCaches() error {
	if err := s.DB.Pool.Invalidate(); err != nil {
		return err
	}
	s.cache.clear()
	return nil
}

// Deploy attaches a generated dataset's relation to the catalog and
// buffer pool.
func (s *System) Deploy(d *datagen.Dataset) error {
	if err := s.DB.Cat.AttachTable(d.Rel); err != nil {
		return err
	}
	return s.DB.Pool.AttachRelation(d.Rel)
}

// Register translates the UDF, compiles it, runs hardware generation
// for the system FPGA, generates the Strider program, and stores the
// accelerator in the catalog. numTuples scores design points.
func (s *System) Register(a *dsl.Algo, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	udf, err := s.DB.Cat.RegisterUDF(a)
	if err != nil {
		return nil, err
	}
	return s.buildAccelerator(udf, mergeCoef, numTuples)
}

func (s *System) buildAccelerator(udf *catalog.UDF, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	if mergeCoef < 1 {
		mergeCoef = udf.Graph.MergeCoef
	}
	prog, err := compiler.Compile(udf.Graph)
	if err != nil {
		return nil, err
	}
	design, err := hwgen.Generate(prog, s.Opts.FPGA, hwgen.Params{
		PageSize:  s.Opts.PageSize,
		MergeCoef: mergeCoef,
		NumTuples: numTuples,
	})
	if err != nil {
		return nil, err
	}
	sprog, scfg, err := strider.Generate(strider.PostgresLayout(s.Opts.PageSize))
	if err != nil {
		return nil, err
	}
	// Verify once per program, here at build time: every later dispatch
	// (each epoch, each page) reuses this admission decision. A definite
	// trap is a compiler bug, rejected before it can quarantine workers.
	rep := strider.Verify(sprog, scfg, strider.VerifyOptions{PageSize: s.Opts.PageSize})
	s.obsVerifyRuns.Inc()
	nWarn := int64(len(rep.Warnings()))
	s.obsVerifyWarnings.Add(nWarn)
	if err := rep.Err(false); err != nil {
		s.obsVerifyRejects.Inc()
		return nil, fmt.Errorf("runtime: refusing to dispatch unverified Strider program for %s: %w", udf.Name, err)
	}
	sched := compiler.ScheduleProgram(prog, design.Engine)
	acc := &catalog.Accelerator{
		UDFName:         udf.Name,
		Program:         prog,
		StriderProg:     sprog,
		StriderCfg:      scfg,
		Design:          design,
		OperationMap:    compiler.OperationMap(prog.PerTuple, sched),
		ScheduledCycles: sched.MakespanCycles,
	}
	if err := s.DB.Cat.StoreAccelerator(acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// TrainResult reports one functional training run.
type TrainResult struct {
	UDF    string
	Table  string
	Model  []float32
	Epochs int

	// Backend is the dispatch name of the backend that ran the training
	// ("accelerator" unless overridden or auto-dispatched).
	Backend string

	Engine engine.Stats
	Access accessengine.Stats
	Pool   bufpool.Stats
	Design hwgen.Design

	// SimulatedSeconds is the modeled time for the run: for the
	// accelerator pipeline, engine/strider/transfer overlapped at the
	// FPGA clock plus I/O (from the run's actual counters); for other
	// backends, the analytic cost-model estimate.
	SimulatedSeconds float64

	// Degraded reports that the backend faulted mid-train and the
	// remaining epochs ran on the failover backend (FailoverBackend —
	// the golden float64 CPU trainer unless another fallback-capable
	// backend is cheaper). DegradedAtEpoch is the zero-based epoch the
	// faulted backend last attempted; epochs before it trained there,
	// epochs from it onward on the failover target.
	Degraded        bool
	DegradedAtEpoch int
	FailoverBackend string
}

// jobFor classifies a (UDF, table) pair into a dispatch job: the
// structural workload class plus the analytic cost-model inputs.
func (s *System) jobFor(udf *catalog.UDF, rel *storage.Relation, acc *catalog.Accelerator) backend.Job {
	class := backend.Classify(udf.Graph)
	pages := rel.NumPages()
	perPage := 0
	if pages > 0 {
		perPage = (rel.NumTuples() + pages - 1) / pages
	}
	epochs := udf.Graph.Epochs
	if epochs < 1 {
		epochs = 1
	}
	if s.Opts.MaxEpochs > 0 && epochs > s.Opts.MaxEpochs {
		epochs = s.Opts.MaxEpochs
	}
	bits := 0
	switch {
	case s.Opts.Precision >= 1 && s.Opts.Precision < storage.WeaveMaxBits:
		bits = s.Opts.Precision
	case s.Opts.Backend == backend.NameWeave:
		// An explicit weave override with no reduced precision reads all
		// 32 planes — full-width values through the vertical layout.
		bits = storage.WeaveMaxBits
	}
	return backend.Job{
		Class:             class,
		Bits:              bits,
		Tuples:            rel.NumTuples(),
		Columns:           rel.Schema.NumCols(),
		Pages:             pages,
		PageSize:          s.Opts.PageSize,
		DatasetBytes:      int64(pages) * int64(s.Opts.PageSize),
		Epochs:            epochs,
		MergeCoef:         udf.Graph.MergeCoef,
		ModelParams:       udf.Graph.ModelSize(),
		Engine:            acc.Program,
		Design:            acc.Design,
		StriderPageCycles: accessengine.PageCycles(rel.Schema, perPage),
		FlopsPerTuple:     backend.FlopsPerTuple(class, udf.Graph),
		Warm:              true,
	}
}

// pickBackend resolves Options.Backend: "" pins the accelerator (the
// paper path) — or the weave backend when the job carries a reduced
// read precision, since full-width backends reject k-bit jobs — "auto"
// runs cost-based dispatch, anything else is an explicit override by
// registered name.
func (s *System) pickBackend(job backend.Job) (backend.Backend, backend.Registration, backend.Cost, error) {
	name := s.Opts.Backend
	switch name {
	case "":
		if job.Bits > 0 {
			name = backend.NameWeave
		} else {
			name = backend.NameAccelerator
		}
	case backend.NameAuto:
		return s.disp.Pick(job)
	}
	be, reg, err := s.disp.New(name, job)
	if err != nil {
		return nil, backend.Registration{}, backend.Cost{}, err
	}
	c, err := be.EstimateCost(job)
	if err != nil {
		c = backend.Cost{}
	}
	return be, reg, c, nil
}

// Train runs a registered UDF over a table on the selected execution
// backend. The default (accelerator) path is the DAnA pipeline:
// buffer-pool pages -> Striders -> execution engine, epoch by epoch
// with convergence checks; other backends train over the materialized
// tuples (narrowed through float32, the Strider datapath width, so
// every backend sees the same values).
func (s *System) Train(udfName, table string) (*TrainResult, error) {
	if s.Opts.Precision < 0 || s.Opts.Precision > storage.WeaveMaxBits {
		return nil, fmt.Errorf("%w: precision %d outside [0, %d]",
			backend.ErrUnsupported, s.Opts.Precision, storage.WeaveMaxBits)
	}
	udf, err := s.DB.Cat.UDF(udfName)
	if err != nil {
		return nil, err
	}
	rel, err := s.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	acc, ok := s.DB.Cat.Accelerator(udfName)
	if !ok {
		if acc, err = s.buildAccelerator(udf, 0, rel.NumTuples()); err != nil {
			return nil, err
		}
	}
	if got, want := rel.Schema.NumCols(), udf.Graph.TupleWidth(); got != want {
		return nil, fmt.Errorf("runtime: table %q has %d columns, UDF %q consumes %d", table, got, udfName, want)
	}

	job := s.jobFor(udf, rel, acc)
	be, reg, bcost, err := s.pickBackend(job)
	if err != nil {
		return nil, err
	}
	caps := be.Capabilities()

	nStriders := acc.Design.NumStriders
	if nStriders < 1 {
		nStriders = 1
	}
	if nStriders > 16 {
		nStriders = 16 // in-process VM instances; cycle model unchanged
	}
	if err := be.Configure(backend.Program{
		Graph:     udf.Graph,
		Engine:    acc.Program,
		EngineCfg: acc.Design.Engine,
		Striders:  nStriders,
		MergeCoef: udf.Graph.MergeCoef,
		PageSize:  s.Opts.PageSize,
		Tuples:    rel.NumTuples(),
		Bits:      job.Bits,
	}); err != nil {
		return nil, err
	}
	if cl, ok := be.(backend.Closer); ok {
		defer cl.Close() // releases batch fan-out helpers, if any
	}

	epochs := job.Epochs
	res := &TrainResult{UDF: udfName, Table: table, Design: acc.Design, Backend: reg.Name}
	trainStart := time.Now()
	s.obsTrainRuns.Inc()
	s.obs.Trace(obs.EvTrainStart, int64(epochs), int64(rel.NumPages()))

	var ae *accessengine.Engine
	var degradeErr error
	if caps.Streaming {
		// The DAnA pipeline: pages stream from the buffer pool through
		// Striders into the engine, with the record cache and the
		// channel-partitioned parallel extraction.
		ae, err = accessengine.New(strider.PostgresLayout(s.Opts.PageSize), rel.Schema, nStriders)
		if err != nil {
			return nil, err
		}
		ae.SetObs(s.obs)
		ae.SetFaults(s.Opts.Faults)
		runner := s.newEpochRunner(ae, rel, be)
		degradeErr, err = s.trainLoop(res, epochs, be, func(e int) error {
			if err := s.Opts.Faults.ClusterFault(e); err != nil {
				return err
			}
			return runner.runEpochRecover(e)
		})
	} else {
		rows64, rows32, serr := s.scanRows(rel)
		if serr != nil {
			return nil, serr
		}
		st := &backend.Stream{Rows32: rows32, Rows64: rows64}
		degradeErr, err = s.trainLoop(res, epochs, be, func(e int) error {
			if caps.Accelerated {
				// Only backends modeling faultable accelerator hardware are
				// subject to injected cluster faults.
				if err := s.Opts.Faults.ClusterFault(e); err != nil {
					return err
				}
			}
			epochStart := time.Now()
			if err := be.RunEpoch(st); err != nil {
				return err
			}
			wall := time.Since(epochStart).Nanoseconds()
			s.obsEpochs.Inc()
			s.obsEpochWall.Add(wall)
			s.obsEpochHist.Observe(wall)
			s.obs.Trace(obs.EvEpoch, int64(e), wall)
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	if res.Degraded {
		if err := s.failover(res, job, be, reg.Name, udf, rel, epochs); err != nil {
			// Both errors wrap: the caller must be able to errors.Is against
			// the accelerator fault that triggered degradation AND the
			// failover failure.
			return nil, fmt.Errorf("runtime: backend failover after accelerator fault (%w) failed: %w", degradeErr, err)
		}
	}
	counters := engine.Stats{}
	if cb, ok := be.(backend.CounterBackend); ok {
		counters = cb.Counters()
	}
	s.obsTrainWall.Add(time.Since(trainStart).Nanoseconds())
	s.obs.Trace(obs.EvTrainDone, int64(res.Epochs), counters.Cycles)
	if !res.Degraded {
		res.Model = model32(be.Model())
	}
	res.Engine = counters
	if ae != nil {
		res.Access = ae.Stats()
	}
	res.Pool = s.DB.Pool.Stats()
	if caps.Streaming {
		// Pipeline time: engine and striders overlap; link transfer too.
		// Transfer is charged through the channel model (max-over-channels
		// of the round-robin page shares); the run's page stream — cached
		// replays included — is one interleaved sequence. The zero-value
		// Cost.Link reproduces the legacy scalar PCIe×scale charge exactly.
		clock := s.Opts.FPGA.ClockHz
		engineSec := float64(res.Engine.Cycles) / clock
		striderSec := float64(res.Access.Cycles) / clock
		cp := s.Opts.Cost
		cp.BandwidthScale = nz(cp.BandwidthScale)
		tw := cost.Workload{
			DatasetBytes: res.Access.Pages * int64(s.Opts.PageSize),
			Pages:        int(res.Access.Pages),
		}
		if job.Bits > 0 && reg.Name == backend.NameWeave {
			// The weave path ships the vertical layout instead of heap
			// pages: per extraction pass, FixedBytes + k×BitBytes of the
			// relation's weave-page geometry. Pass count comes from the
			// run's actual page stream, so retries and cached replays
			// charge the same number of passes either way.
			nfeat := rel.Schema.NumCols() - 1
			g := weaving.RelationGeometry(rel.NumTuples(), nfeat, s.Opts.PageSize)
			hp := int64(rel.NumPages())
			if hp < 1 {
				hp = 1
			}
			passes := (res.Access.Pages + hp - 1) / hp
			tw.WeaveBits = job.Bits
			tw.WeaveFixedBytes = passes * g.FixedBytes
			tw.WeaveBitBytes = passes * g.BitBytes
			tw.Pages = int(passes) * g.Pages
		}
		transferSec := cost.TransferSec(tw, cp)
		pipe := engineSec
		if striderSec > pipe {
			pipe = striderSec
		}
		if transferSec > pipe {
			pipe = transferSec
		}
		res.SimulatedSeconds = pipe + res.Pool.IOSeconds + s.Opts.Cost.SetupSec
	} else {
		// Non-pipeline backends report the analytic estimate: they have no
		// modeled page stream to integrate.
		res.SimulatedSeconds = bcost.Seconds
	}
	return res, nil
}

// trainLoop drives the per-epoch body with convergence checks and the
// shared degradation policy: an accelerator fault marks the result
// degraded (for the failover path) unless fallback is disabled; every
// other error surfaces directly.
func (s *System) trainLoop(res *TrainResult, epochs int, be backend.Backend, body func(e int) error) (degradeErr error, err error) {
	for e := 0; e < epochs; e++ {
		if err := body(e); err != nil {
			if errors.Is(err, fault.ErrEpochTimeout) {
				s.obsEpochTimeout.Inc()
				s.obs.Trace(obs.EvEpochTimeout, int64(e), int64(s.Opts.EpochTimeout))
			}
			if s.Opts.DisableCPUFallback || !fault.IsAcceleratorFault(err) {
				return nil, err
			}
			// Graceful degradation: the accelerator is gone but storage is
			// intact, so the remaining epochs run on the failover backend
			// from the epoch-start model state.
			res.Degraded = true
			res.DegradedAtEpoch = e
			return err, nil
		}
		res.Epochs++
		if cv, ok := be.(backend.Converger); ok {
			done, cerr := cv.Converged()
			if cerr != nil {
				return nil, cerr
			}
			if done {
				break
			}
		}
	}
	return nil, nil
}

// failover completes a degraded training run on the dispatcher's
// failover target — among backends declaring Capabilities.Fallback, the
// cheapest admissible one that is not the faulted backend (the golden
// float64 CPU trainer in the default registry). It picks up the faulted
// backend's epoch-start model, re-reads the tuples from the heap
// (narrowed through float32, matching the Strider datapath), and runs
// the remaining epoch budget. The downgrade is surfaced via the
// runtime.failovers counter (plus the historical runtime.cpu_fallbacks
// when the target is the CPU backend) and trace events — never a panic,
// never a silent wrong model.
func (s *System) failover(res *TrainResult, job backend.Job, failed backend.Backend, failedName string, udf *catalog.UDF, rel *storage.Relation, totalEpochs int) error {
	// Degradation drops any reduced read precision: fallback targets are
	// full-width reference trainers, and a k-bit request was a bandwidth
	// optimization, not a semantic requirement.
	job.Bits = 0
	fb, freg, err := s.disp.Failover(job, failedName)
	if err != nil {
		return err
	}
	remaining := totalEpochs - res.DegradedAtEpoch
	s.obsFailovers.Inc()
	s.obs.Trace(obs.EvFailover, int64(res.DegradedAtEpoch), int64(remaining))
	if freg.Name == backend.NameCPU {
		s.obsCPUFallbacks.Inc()
		s.obs.Trace(obs.EvCPUFallback, int64(res.DegradedAtEpoch), int64(remaining))
	}
	if err := fb.Configure(backend.Program{
		Graph:     udf.Graph,
		MergeCoef: udf.Graph.MergeCoef,
		PageSize:  s.Opts.PageSize,
		Tuples:    rel.NumTuples(),
		Init:      failed.Model(), // epoch-start state (restored on epoch failure)
	}); err != nil {
		return err
	}
	if cl, ok := fb.(backend.Closer); ok {
		defer cl.Close()
	}
	rows64, _, err := s.scanRows(rel)
	if err != nil {
		return err
	}
	st := &backend.Stream{Rows64: rows64}
	for e := 0; e < remaining; e++ {
		if err := fb.RunEpoch(st); err != nil {
			return err
		}
		res.Epochs++
		if cv, ok := fb.(backend.Converger); ok {
			done, cerr := cv.Converged()
			if cerr != nil {
				return cerr
			}
			if done {
				break
			}
		}
	}
	res.FailoverBackend = freg.Name
	res.Model = model32(fb.Model())
	return nil
}

// BackendCost is one dispatch candidate's modeled price for a job, as
// reported by `danactl stats -backend`.
type BackendCost struct {
	Name    string
	Seconds float64
	// Err is the typed rejection for backends that cannot run the job
	// ("" = admissible).
	Err string
}

// EstimateBackends prices a registered (UDF, table) job on every
// registered backend — the dispatcher's view before it picks. The
// returned slice is in registry (name) order.
func (s *System) EstimateBackends(udfName, table string) ([]BackendCost, error) {
	udf, err := s.DB.Cat.UDF(udfName)
	if err != nil {
		return nil, err
	}
	rel, err := s.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	acc, ok := s.DB.Cat.Accelerator(udfName)
	if !ok {
		if acc, err = s.buildAccelerator(udf, 0, rel.NumTuples()); err != nil {
			return nil, err
		}
	}
	job := s.jobFor(udf, rel, acc)
	var out []BackendCost
	for _, reg := range s.disp.Registrations() {
		bc := BackendCost{Name: reg.Name}
		c, err := reg.New(backend.Env{
			Obs: obs.Noop, Cost: s.Opts.Cost, FPGA: s.Opts.FPGA,
			Workers: s.Opts.Workers, Segments: s.Opts.Segments,
		}).EstimateCost(job)
		if err != nil {
			bc.Err = err.Error()
		} else {
			bc.Seconds = c.Seconds
		}
		out = append(out, bc)
	}
	return out, nil
}

// scanRows materializes the relation's tuples with every value narrowed
// through float32 — the Strider datapath width — so backends that skip
// the extraction pipeline still see the exact values it would deliver.
func (s *System) scanRows(rel *storage.Relation) (rows64 [][]float64, rows32 [][]float32, err error) {
	err = rel.Scan(func(_ storage.TID, vals []float64) error {
		r32 := make([]float32, len(vals))
		r64 := make([]float64, len(vals))
		for i, v := range vals {
			f := float32(v)
			r32[i] = f
			r64[i] = float64(f)
		}
		rows32 = append(rows32, r32)
		rows64 = append(rows64, r64)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows64, rows32, nil
}

// model32 narrows a backend's float64 model view to the result's
// float32 representation (exact for values that round-tripped through
// float32 upstream).
func model32(m []float64) []float32 {
	if m == nil {
		return nil
	}
	out := make([]float32, len(m))
	for i, v := range m {
		out[i] = float32(v)
	}
	return out
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// RunUDF implements sql.UDFRunner: training results surface as a result
// set of (index, value) model parameters, capped at 4096 rows.
func (s *System) RunUDF(udfName, table string) (*sql.Result, error) {
	res, err := s.Train(udfName, table)
	if err != nil {
		return nil, err
	}
	out := &sql.Result{Cols: []string{"param", "value"}}
	limitRows := len(res.Model)
	if limitRows > 4096 {
		limitRows = 4096
	}
	for i := 0; i < limitRows; i++ {
		out.Rows = append(out.Rows, []float64{float64(i), float64(res.Model[i])})
	}
	out.Msg = fmt.Sprintf("DAnA trained %s on %s: %d epochs, %d tuples, %d cycles",
		udfName, table, res.Epochs, res.Engine.Tuples, res.Engine.Cycles)
	return out, nil
}
