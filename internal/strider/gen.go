package strider

import (
	"fmt"

	"dana/internal/storage"
)

// PageLayout describes the target RDBMS page organization the generated
// Strider program must parse. The defaults mirror PostgreSQL (and our
// internal/storage implementation); MySQL/InnoDB-style layouts differ
// only in these constants, which is exactly the flexibility the ISA is
// designed for (paper §5.1.2).
type PageLayout struct {
	PageSize        int // total page bytes
	HeaderSize      int // page header bytes (24 for PostgreSQL)
	LowerOffset     int // byte offset of pd_lower within the header
	UpperOffset     int // byte offset of pd_upper
	ItemIDSize      int // line pointer width (4)
	ItemOffField    FieldDesc
	ItemLenField    FieldDesc
	ItemFlagsField  FieldDesc
	TupleHeaderSize int // heap tuple header bytes to strip (24)
}

// PostgresLayout returns the layout of internal/storage pages.
func PostgresLayout(pageSize int) PageLayout {
	return PageLayout{
		PageSize:        pageSize,
		HeaderSize:      storage.PageHeaderSize,
		LowerOffset:     12,
		UpperOffset:     14,
		ItemIDSize:      storage.ItemIDSize,
		ItemOffField:    FieldDesc{Start: 0, Width: 15},
		ItemLenField:    FieldDesc{Start: 17, Width: 15},
		ItemFlagsField:  FieldDesc{Start: 15, Width: 2},
		TupleHeaderSize: storage.TupleHeaderSize,
	}
}

// Generate emits the Strider program and configuration that walk a page
// of the given layout and emit every tuple's user data (header
// stripped) to the output FIFO. This is the compiler step of paper §6.2
// that turns "the database page configuration into a set of Strider
// instructions".
//
// The generated loop is a do-while (bentr/bexit, as in the paper's
// sample): it assumes at least one tuple per page and all line pointers
// live, which holds for the append-only training heaps the storage
// layer produces.
func Generate(layout PageLayout) ([]Instr, Config, error) {
	if layout.HeaderSize > operandImmMax+1 || layout.TupleHeaderSize > operandImmMax {
		return nil, Config{}, fmt.Errorf("strider: header sizes %d/%d exceed immediate range; preload a config register",
			layout.HeaderSize, layout.TupleHeaderSize)
	}
	var cfg Config
	cfg.Fields[0] = layout.ItemOffField
	cfg.Fields[1] = layout.ItemLenField
	cfg.Fields[2] = layout.ItemFlagsField

	src := fmt.Sprintf(`
\\ Page header processing
readB %d, 2, %%cr0          \\ pd_lower: end of the line pointer array
readB %d, 2, %%cr1          \\ pd_upper: start of tuple data (free-space end)
readB 18, 2, %%cr2          \\ page size | layout version
ad %d, 0, %%t0              \\ t0 = address of first line pointer
\\ Tuple extraction and processing
bentr
readB %%t0, %d, %%t1        \\ load the line pointer
extrBi %%t1, 0, %%t2        \\ lp_off: tuple byte offset
extrBi %%t1, 1, %%t3        \\ lp_len: tuple length
sub %%t3, %d, %%t3          \\ payload length = lp_len - tuple header
cln %%t2, %d, %%t3          \\ emit cleaned payload to the engines
ad %%t0, %d, %%t0           \\ advance to the next line pointer
bexit 1, %%t0, %%cr0        \\ exit once the pointer reaches pd_lower
`,
		layout.LowerOffset, layout.UpperOffset, layout.HeaderSize,
		layout.ItemIDSize, layout.TupleHeaderSize, layout.TupleHeaderSize,
		layout.ItemIDSize)
	prog, err := Assemble(src)
	if err != nil {
		return nil, Config{}, fmt.Errorf("strider: generated program failed to assemble: %w", err)
	}
	if err := verifyGenerated(prog, cfg, layout.PageSize); err != nil {
		return nil, Config{}, err
	}
	return prog, cfg, nil
}

// verifyGenerated is the compiler's own gate: a generated walker with a
// definite trap is a code-generation bug, never a data problem, so it
// fails generation outright rather than trapping a Strider at dispatch.
func verifyGenerated(prog []Instr, cfg Config, pageSize int) error {
	rep := Verify(prog, cfg, VerifyOptions{PageSize: pageSize})
	if err := rep.Err(false); err != nil {
		return fmt.Errorf("strider: generated program failed verification: %w", err)
	}
	return nil
}

// ExpectedOutputBytes returns how many bytes the generated program emits
// for a page holding n tuples of the given schema.
func ExpectedOutputBytes(schema *storage.Schema, n int) int {
	return n * schema.DataWidth()
}
