// Package datagen defines the paper's 14 evaluation workloads (Table 3)
// and generates synthetic training relations with the same model
// topologies and tuple counts. The UCI/Netflix raw data is not
// redistributable, so feature values are synthetic draws whose labels
// come from a hidden ground-truth model — preserving tuple counts, page
// counts, widths, and convergence behaviour class (see DESIGN.md).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"dana/internal/algos"
	"dana/internal/dsl"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Workload is one Table 3 row.
type Workload struct {
	Name     string
	Kind     algos.Kind
	Topology []int  // [features] or [users, items, rank]
	Tuples   int    // training tuples (reconstructed from pages where the table is ambiguous)
	Class    string // "real", "S/N", or "S/E"

	// Paper-reported storage footprint (32 KB pages).
	PaperPages32K int
	PaperSizeMB   int

	// Hyper-parameters used across all systems.
	LR     float64
	Lambda float64
	// Epochs is the epoch budget used for end-to-end runtime modeling
	// (all systems run the same epochs, as in the paper's comparisons).
	Epochs int
	// DAnAEpochs, when > 0, is the earlier convergence point of the
	// accelerated runs (the merged-gradient convergence check fires
	// sooner; see EXPERIMENTS.md).
	DAnAEpochs int
}

// TableName returns the SQL table name for the workload.
func (w Workload) TableName() string {
	return strings.ToLower(strings.NewReplacer(" ", "_", "/", "_", "\\", "_").Replace(w.Name))
}

// Features returns the tuple feature width (LRMF tuples carry 2 indices).
func (w Workload) Features() int {
	if w.Kind == algos.KindLRMF {
		return 2
	}
	return w.Topology[0]
}

// Schema returns the training-table schema.
func (w Workload) Schema() *storage.Schema {
	if w.Kind == algos.KindLRMF {
		return storage.RatingSchema()
	}
	return storage.NumericSchema(w.Topology[0])
}

// ModelSize returns the scalar parameter count.
func (w Workload) ModelSize() int {
	if w.Kind == algos.KindLRMF {
		return (w.Topology[0] + w.Topology[1]) * w.Topology[2]
	}
	return w.Topology[0]
}

// TupleBytes returns the on-page footprint of one tuple (our layout).
func (w Workload) TupleBytes() int {
	data := w.Schema().DataWidth()
	aligned := (storage.TupleHeaderSize + data + storage.MaxAlign - 1) &^ (storage.MaxAlign - 1)
	return aligned + storage.ItemIDSize
}

// PagesAt returns how many pages of the given size the full dataset
// occupies under our layout.
func (w Workload) PagesAt(pageSize int) int {
	perPage := (pageSize - storage.PageHeaderSize) / w.TupleBytes()
	if perPage < 1 {
		perPage = 1
	}
	return (w.Tuples + perPage - 1) / perPage
}

// SizeMBAt returns the dataset size in MB at the given page size.
func (w Workload) SizeMBAt(pageSize int) float64 {
	return float64(w.PagesAt(pageSize)) * float64(pageSize) / (1 << 20)
}

// Hyper returns the workload's algos.Hyper with the given merge
// coefficient.
func (w Workload) Hyper(mergeCoef int) algos.Hyper {
	return algos.Hyper{LR: w.LR, Lambda: w.Lambda, MergeCoef: mergeCoef, Epochs: w.Epochs}
}

// Workloads is Table 3. Tuple counts for the LRMF rows are reconstructed
// from the reported page counts (the published table's tuple column
// repeats the topology there); everything else is verbatim.
var Workloads = []Workload{
	{Name: "Remote Sensing LR", Kind: algos.KindLogistic, Topology: []int{54}, Tuples: 581102, Class: "real",
		PaperPages32K: 4924, PaperSizeMB: 154, LR: 0.04, Epochs: 3},
	{Name: "WLAN", Kind: algos.KindLogistic, Topology: []int{520}, Tuples: 19937, Class: "real",
		PaperPages32K: 1330, PaperSizeMB: 42, LR: 0.004, Epochs: 50},
	{Name: "Remote Sensing SVM", Kind: algos.KindSVM, Topology: []int{54}, Tuples: 581102, Class: "real",
		PaperPages32K: 4924, PaperSizeMB: 154, LR: 0.01, Lambda: 0.01, Epochs: 2},
	{Name: "Netflix", Kind: algos.KindLRMF, Topology: []int{6040, 3952, 10}, Tuples: 2280000, Class: "real",
		PaperPages32K: 3068, PaperSizeMB: 96, LR: 0.05, Epochs: 25},
	{Name: "Patient", Kind: algos.KindLinear, Topology: []int{384}, Tuples: 53500, Class: "real",
		PaperPages32K: 1941, PaperSizeMB: 61, LR: 0.0013, Epochs: 5},
	{Name: "Blog Feedback", Kind: algos.KindLinear, Topology: []int{280}, Tuples: 52397, Class: "real",
		PaperPages32K: 2675, PaperSizeMB: 84, LR: 0.0018, Epochs: 4},

	{Name: "S/N Logistic", Kind: algos.KindLogistic, Topology: []int{2000}, Tuples: 387944, Class: "S/N",
		PaperPages32K: 96986, PaperSizeMB: 3031, LR: 0.001, Epochs: 165},
	{Name: "S/N SVM", Kind: algos.KindSVM, Topology: []int{1740}, Tuples: 678392, Class: "S/N",
		PaperPages32K: 169598, PaperSizeMB: 5300, LR: 0.0005, Lambda: 0.01, Epochs: 110},
	{Name: "S/N LRMF", Kind: algos.KindLRMF, Topology: []int{19880, 19880, 10}, Tuples: 37800000, Class: "S/N",
		PaperPages32K: 50784, PaperSizeMB: 1587, LR: 0.05, Epochs: 1},
	{Name: "S/N Linear", Kind: algos.KindLinear, Topology: []int{8000}, Tuples: 130503, Class: "S/N",
		PaperPages32K: 130503, PaperSizeMB: 4078, LR: 0.00006, Epochs: 66},

	{Name: "S/E Logistic", Kind: algos.KindLogistic, Topology: []int{6033}, Tuples: 1044024, Class: "S/E",
		PaperPages32K: 809339, PaperSizeMB: 25292, LR: 0.0003, Epochs: 1500, DAnAEpochs: 15},
	{Name: "S/E SVM", Kind: algos.KindSVM, Topology: []int{7129}, Tuples: 1356784, Class: "S/E",
		PaperPages32K: 1242871, PaperSizeMB: 38840, LR: 0.0002, Lambda: 0.01, Epochs: 1},
	{Name: "S/E LRMF", Kind: algos.KindLRMF, Topology: []int{28002, 45064, 10}, Tuples: 120600000, Class: "S/E",
		PaperPages32K: 162146, PaperSizeMB: 5067, LR: 0.05, Epochs: 25},
	{Name: "S/E Linear", Kind: algos.KindLinear, Topology: []int{8000}, Tuples: 1000000, Class: "S/E",
		PaperPages32K: 1027961, PaperSizeMB: 32124, LR: 0.00006, Epochs: 118, DAnAEpochs: 18},
}

// ByName looks up a workload.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads {
		if strings.EqualFold(w.Name, name) || strings.EqualFold(w.TableName(), name) {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("datagen: unknown workload %q", name)
}

// Real returns the publicly-available-dataset workloads.
func Real() []Workload { return byClass("real") }

// SyntheticNominal returns the S/N workloads.
func SyntheticNominal() []Workload { return byClass("S/N") }

// SyntheticExtensive returns the S/E workloads.
func SyntheticExtensive() []Workload { return byClass("S/E") }

func byClass(c string) []Workload {
	var out []Workload
	for _, w := range Workloads {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}

// Dataset is a generated training relation plus its effective topology
// (scaled down together with the tuple count for LRMF so indices stay
// in range).
type Dataset struct {
	Workload Workload
	Topology []int
	Tuples   int
	Rel      *storage.Relation
}

// Hyper mirrors Workload.Hyper but with the effective topology.
func (d *Dataset) Hyper(mergeCoef int) algos.Hyper { return d.Workload.Hyper(mergeCoef) }

// DSLAlgo builds the DSL program matching the dataset's effective
// topology and the given merge coefficient.
func (d *Dataset) DSLAlgo(mergeCoef int) (*dsl.Algo, error) {
	return algos.Build(d.Workload.Kind, d.Topology, d.Hyper(mergeCoef))
}

// Generate builds a synthetic training relation for the workload at the
// given scale (0 < scale <= 1 of the full tuple count). Deterministic in
// seed.
func Generate(w Workload, scale float64, pageSize int, seed int64) (*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datagen: scale %v out of (0, 1]", scale)
	}
	n := int(math.Round(float64(w.Tuples) * scale))
	if n < 64 {
		n = 64
	}
	topo := append([]int(nil), w.Topology...)
	if w.Kind == algos.KindLRMF && scale < 1 {
		for i := 0; i < 2; i++ {
			topo[i] = int(math.Round(float64(topo[i]) * scale))
			if topo[i] < 16 {
				topo[i] = 16
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rel := storage.NewRelation(w.TableName(), w.Schema(), pageSize)
	rows := make([][]float64, 0, n)
	switch w.Kind {
	case algos.KindLRMF:
		users, items, rank := topo[0], topo[1], topo[2]
		truthU := randMatrix(rng, users, rank, 0.5)
		truthV := randMatrix(rng, items, rank, 0.5)
		for i := 0; i < n; i++ {
			u := rng.Intn(users)
			v := rng.Intn(items)
			r := dotRows(truthU, truthV, u, v, rank) + 0.05*rng.NormFloat64()
			rows = append(rows, []float64{float64(u), float64(users + v), float64(float32(r))})
		}
	default:
		nf := topo[0]
		truth := make([]float64, nf)
		for i := range truth {
			truth[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			x := make([]float64, nf+1)
			s := 0.0
			for j := 0; j < nf; j++ {
				x[j] = float64(float32(rng.NormFloat64()))
				s += truth[j] * x[j]
			}
			s /= math.Sqrt(float64(nf)) // keep activations O(1) at any width
			switch w.Kind {
			case algos.KindLinear:
				x[nf] = float64(float32(s + 0.05*rng.NormFloat64()))
			case algos.KindLogistic:
				if ml.Sigmoid(s)+0.05*rng.NormFloat64() > 0.5 {
					x[nf] = 1
				}
			case algos.KindSVM:
				if s+0.05*rng.NormFloat64() >= 0 {
					x[nf] = 1
				} else {
					x[nf] = -1
				}
			}
			rows = append(rows, x)
		}
	}
	if err := rel.InsertBatch(rows); err != nil {
		return nil, err
	}
	return &Dataset{Workload: w, Topology: topo, Tuples: n, Rel: rel}, nil
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) []float64 {
	m := make([]float64, rows*cols)
	for i := range m {
		m[i] = scale * rng.Float64()
	}
	return m
}

func dotRows(u, v []float64, ui, vi, rank int) float64 {
	s := 0.0
	for k := 0; k < rank; k++ {
		s += u[ui*rank+k] * v[vi*rank+k]
	}
	return s
}

// MLAlgorithm returns the reference implementation matching the
// dataset's effective topology.
func (d *Dataset) MLAlgorithm() ml.Algorithm {
	w := d.Workload
	switch w.Kind {
	case algos.KindLinear:
		return ml.Linear{NFeatures: d.Topology[0], LR: w.LR}
	case algos.KindLogistic:
		return ml.Logistic{NFeatures: d.Topology[0], LR: w.LR}
	case algos.KindSVM:
		return ml.SVM{NFeatures: d.Topology[0], LR: w.LR, Lambda: w.Lambda}
	case algos.KindLRMF:
		return ml.LRMF{Users: d.Topology[0], Items: d.Topology[1], Rank: d.Topology[2], LR: w.LR}
	default:
		return nil
	}
}
