package backend_test

// Dispatcher decision tests: the heterogeneous selection policy over a
// seeded job matrix (class x size x override). The policy is documented
// on Dispatcher.Pick — classify, price via internal/cost, choose the
// minimum modeled seconds with ties broken by name — and these tests
// pin each clause, recomputing the expected costs straight from
// internal/cost so a drift between EstimateCost and the analytic model
// fails here.

import (
	"errors"
	"testing"

	"dana/internal/backend"
	"dana/internal/cost"
	"dana/internal/hwgen"
)

func newTestDispatcher() (*backend.Dispatcher, backend.Env) {
	env := backend.ConformanceEnv()
	return backend.NewDispatcher(env, allRegistrations()...), env
}

// jobForSeed builds the dispatch job for one scenario seed.
func jobForSeed(t *testing.T, seed int64, env backend.Env) backend.Job {
	t.Helper()
	sc := backend.GenScenario(seed)
	p, err := backend.BuildProgram(sc, env)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return backend.JobFor(sc, p)
}

// scaled grows the job by a tuple factor, keeping pages and bytes
// consistent (the size axis of the dispatch matrix).
func scaled(job backend.Job, factor int) backend.Job {
	job.Tuples *= factor
	job.Pages = job.Tuples/8 + 1
	job.DatasetBytes = int64(job.Pages) * int64(job.PageSize)
	return job
}

func coef1(c int) int {
	if c < 1 {
		return 1
	}
	return c
}

// expectedSeconds recomputes each backend's modeled seconds straight
// from internal/cost, mirroring the paper's analytic comparison.
func expectedSeconds(job backend.Job, env backend.Env) map[string]float64 {
	out := map[string]float64{}

	w := job.Workload()
	w.EpochCycles = job.Engine.Estimate(job.Design.Engine).EpochCycles(job.Tuples, coef1(job.MergeCoef), job.Design.Engine.Threads)
	out[backend.NameAccelerator] = cost.DAnA(w, env.Cost, job.Warm).TotalSec

	wt := job.Workload()
	single := job.Design.Engine
	single.Threads = 1
	if td, err := hwgen.TablaDesign(job.Engine, env.FPGA, hwgen.Params{
		PageSize: job.PageSize, MergeCoef: 1, NumTuples: job.Tuples,
	}); err == nil {
		single = td.Engine
	}
	wt.SingleThreadEpochCycles = job.Engine.Estimate(single).EpochCycles(job.Tuples, coef1(job.MergeCoef), 1)
	out[backend.NameTabla] = cost.TABLA(wt, env.Cost, job.Warm).TotalSec

	out[backend.NameCPU] = cost.MADlibPostgres(job.Workload(), env.Cost, job.Warm).TotalSec

	if job.Class != backend.ClassLRMF {
		segs := env.Segments
		if segs <= 0 {
			segs = backend.DefaultSegments
		}
		out[backend.NameSharded] = cost.MADlibGreenplum(job.Workload(), env.Cost, segs, job.Warm).TotalSec
	}
	return out
}

// TestDispatcherCostConsistency: every admissible backend prices jobs
// exactly as internal/cost does, and Pick selects the argmin, across
// the class x size matrix.
func TestDispatcherCostConsistency(t *testing.T) {
	disp, env := newTestDispatcher()
	classSeeds := map[string]int64{"linear": 3, "logistic": 1, "svm": 2, "lrmf": 15}
	for name, seed := range classSeeds {
		for _, factor := range []int{1, 50, 2000} {
			job := scaled(jobForSeed(t, seed, env), factor)
			want := expectedSeconds(job, env)

			for beName, sec := range want {
				be, _, err := disp.New(beName, job)
				if err != nil {
					t.Fatalf("%s x%d: New(%s): %v", name, factor, beName, err)
				}
				c, err := be.EstimateCost(job)
				if err != nil {
					t.Fatalf("%s x%d: EstimateCost(%s): %v", name, factor, beName, err)
				}
				if c.Seconds != sec {
					t.Errorf("%s x%d: %s prices %.9g s, internal/cost says %.9g s",
						name, factor, beName, c.Seconds, sec)
				}
			}

			argmin := ""
			for beName, sec := range want {
				if argmin == "" || sec < want[argmin] || (sec == want[argmin] && beName < argmin) {
					argmin = beName
				}
			}
			_, reg, c, err := disp.Pick(job)
			if err != nil {
				t.Fatalf("%s x%d: Pick: %v", name, factor, err)
			}
			if reg.Name != argmin {
				t.Errorf("%s x%d: Pick chose %s (%.6g s), argmin of internal/cost is %s (%.6g s)",
					name, factor, reg.Name, c.Seconds, argmin, want[argmin])
			}
			if c.Seconds != want[argmin] {
				t.Errorf("%s x%d: Pick cost %.9g s != expected %.9g s", name, factor, c.Seconds, want[argmin])
			}
		}
	}
}

// TestDispatcherDeterministic: same job, same choice — including across
// dispatcher rebuilds with shuffled registration order (NewDispatcher
// sorts by name).
func TestDispatcherDeterministic(t *testing.T) {
	env := backend.ConformanceEnv()
	regs := allRegistrations()
	reversed := make([]backend.Registration, len(regs))
	for i, r := range regs {
		reversed[len(regs)-1-i] = r
	}
	a := backend.NewDispatcher(env, regs...)
	b := backend.NewDispatcher(env, reversed...)

	job := jobForSeed(t, 3, env)
	_, ra, ca, err := a.Pick(job)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, rb, cb, err := b.Pick(job)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Name != ra.Name || cb.Seconds != ca.Seconds {
			t.Fatalf("run %d: picked %s/%.9g, first run picked %s/%.9g", i, rb.Name, cb.Seconds, ra.Name, ca.Seconds)
		}
	}
}

// TestDispatcherOverride: the explicit-override path instantiates any
// registered backend by name and fails typed otherwise.
func TestDispatcherOverride(t *testing.T) {
	disp, env := newTestDispatcher()
	job := jobForSeed(t, 3, env)

	for _, name := range disp.Names() {
		j := job
		if caps := mustCaps(disp, name); caps.MaxBits > 0 {
			j.Bits = caps.MaxBits // weave-windowed backends serve only explicit k-bit jobs
		}
		be, reg, err := disp.New(name, j)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if reg.Name != name || be.Capabilities().Name != name {
			t.Errorf("New(%s) returned registration %q / capabilities %q", name, reg.Name, be.Capabilities().Name)
		}
	}

	if _, _, err := disp.New("gpu", job); !errors.Is(err, backend.ErrUnknownBackend) {
		t.Errorf("New(gpu) = %v, want ErrUnknownBackend", err)
	}

	// The bits window is enforced both ways: a full-width backend cannot
	// honor a k-bit weave request, and the weave backend does not accept
	// full-width jobs (no silent rerouting through quantization).
	kbit := job
	kbit.Bits = 8
	if _, _, err := disp.New(backend.NameAccelerator, kbit); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("New(accelerator, 8-bit job) = %v, want ErrUnsupported", err)
	}
	if _, _, err := disp.New(backend.NameWeave, job); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("New(weave, full-width job) = %v, want ErrUnsupported", err)
	}

	f32 := job
	f32.Precision = backend.PrecisionFloat32
	if _, _, err := disp.New(backend.NameCPU, f32); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("New(cpu, float32 job) = %v, want ErrUnsupported", err)
	}

	lrmf := jobForSeed(t, 15, env)
	if _, _, err := disp.New(backend.NameSharded, lrmf); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("New(sharded, lrmf job) = %v, want ErrUnsupported", err)
	}
}

// fakeBackend is a stub with a fixed price for tie-break and failover
// policy tests.
type fakeBackend struct {
	caps backend.Capabilities
	sec  float64
}

func (f *fakeBackend) Capabilities() backend.Capabilities { return f.caps }
func (f *fakeBackend) EstimateCost(backend.Job) (backend.Cost, error) {
	return backend.Cost{Seconds: f.sec}, nil
}
func (f *fakeBackend) Configure(backend.Program) error { return nil }
func (f *fakeBackend) RunEpoch(*backend.Stream) error  { return nil }
func (f *fakeBackend) Score([]float64, [][]float64) ([]float64, error) {
	return nil, nil
}
func (f *fakeBackend) Model() []float64         { return nil }
func (f *fakeBackend) SetModel([]float64) error { return nil }

func fakeReg(name string, sec float64, fallback bool) backend.Registration {
	return backend.Registration{
		Name: name,
		New: func(backend.Env) backend.Backend {
			return &fakeBackend{sec: sec, caps: backend.Capabilities{
				Name:          name,
				Classes:       backend.AllClasses(),
				Precision:     backend.PrecisionFloat64,
				BitExactModel: true,
				Fallback:      fallback,
			}}
		},
	}
}

// TestDispatcherTieBreak: equal modeled cost resolves by name order, so
// selection never depends on registration order or map iteration.
func TestDispatcherTieBreak(t *testing.T) {
	env := backend.ConformanceEnv()
	disp := backend.NewDispatcher(env,
		fakeReg("zeta", 1.0, false),
		fakeReg("alpha", 1.0, false),
		fakeReg("mid", 2.0, false),
	)
	_, reg, _, err := disp.Pick(backend.Job{Class: backend.ClassLinear})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Name != "alpha" {
		t.Fatalf("tie resolved to %s, want alpha (name order)", reg.Name)
	}
}

// TestDispatcherFailover: the degradation target is the cheapest
// admissible Fallback backend that is not the one that faulted.
func TestDispatcherFailover(t *testing.T) {
	disp, env := newTestDispatcher()
	job := jobForSeed(t, 3, env)

	_, reg, err := disp.Failover(job, backend.NameAccelerator)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Name != backend.NameCPU {
		t.Fatalf("failover after accelerator chose %s, want cpu (the only Fallback backend)", reg.Name)
	}

	if _, _, err := disp.Failover(job, backend.NameCPU); !errors.Is(err, backend.ErrNoFailover) {
		t.Errorf("failover after cpu = %v, want ErrNoFailover", err)
	}

	// Policy details on fakes: cheapest wins, the failed one is excluded
	// even if it declares Fallback, non-Fallback backends never serve.
	fd := backend.NewDispatcher(env,
		fakeReg("cheap", 0.5, true),
		fakeReg("pricey", 5.0, true),
		fakeReg("fast-but-no-fallback", 0.1, false),
	)
	fjob := backend.Job{Class: backend.ClassLinear}
	_, freg, err := fd.Failover(fjob, "accelerator")
	if err != nil {
		t.Fatal(err)
	}
	if freg.Name != "cheap" {
		t.Fatalf("failover chose %s, want cheap", freg.Name)
	}
	_, freg, err = fd.Failover(fjob, "cheap")
	if err != nil {
		t.Fatal(err)
	}
	if freg.Name != "pricey" {
		t.Fatalf("failover with cheap faulted chose %s, want pricey", freg.Name)
	}
}

// mustCaps returns the named backend's capability declaration without
// dispatch admissibility checks.
func mustCaps(disp *backend.Dispatcher, name string) backend.Capabilities {
	for _, reg := range disp.Registrations() {
		if reg.Name == name {
			return reg.New(backend.ConformanceEnv()).Capabilities()
		}
	}
	panic("unregistered backend " + name)
}
