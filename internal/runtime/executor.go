package runtime

// Host-parallel pipelined epoch executor (paper §5.1.1).
//
// The modeled hardware always overlaps Strider page extraction with
// execution-engine compute; this file makes the *simulator* do the same
// on real cores. Each training epoch streams pages through three
// overlapping stages:
//
//	pool Pin -> Strider VM walk + deformat (W workers)  -> engine compute
//	                (bounded per-worker channels)          (coordinator)
//
// Extraction is channel-partitioned (multi-channel memory model): page
// pn belongs to memory channel pn mod C (the same round-robin
// interleaving internal/cost charges), each channel owns a flat record
// arena (one slab per channel, reused across the run), and with W ≥ C
// workers the workers split into C per-channel Strider groups of W/C
// workers each. Worker (c, j) owns the pages pn with pn ≡ c (mod C)
// and (pn/C) ≡ j (mod W/C); the coordinator computes the same mapping
// to drain the workers' output channels in global page order. With
// fewer workers than channels the executor falls back to the flat
// pn mod W round-robin (counters and arenas still split by channel).
// All modeled counters (access-engine cycles, engine cycles, simulated
// seconds, per-channel bytes/busy) are charged by the coordinator in
// page order, so they are bit-identical to the serial path no matter
// how the host schedules the workers — worker and channel counts
// change wall-clock time only.
//
// A cross-epoch record cache completes the picture: once a relation's
// pages have been extracted (and the relation fits in the buffer pool,
// so later epochs would be pure pool hits with no modeled I/O), epochs
// ≥ 2 replay the cached flat-arena records and their per-page cycle
// counters instead of re-walking every heap page in the Go interpreter.
// The cache is invalidated by any heap mutation (storage.Relation
// generation counter) and by pool invalidation (DropCaches / DROP
// TABLE), so cold-cache experiments still re-read and re-charge disk.

import (
	"errors"
	"fmt"
	hostrt "runtime"
	"sync"
	"time"

	"dana/internal/accessengine"
	"dana/internal/backend"
	"dana/internal/cost"
	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/storage"
)

// defaultPipelineDepth is the per-worker bound on extracted-but-unconsumed
// page batches, keeping memory bounded for large tables.
const defaultPipelineDepth = 4

// defaultMaxPageRetries is the same-Strider re-walk budget after a VM
// trap when Options.MaxPageRetries is unset.
const defaultMaxPageRetries = 3

// recordCache holds extracted records per relation, keyed by name and
// validated against the relation's mutation generation, its identity,
// and the buffer pool's invalidation count.
type recordCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	rel     *storage.Relation
	gen     uint64
	poolGen uint64
	pages   []accessengine.PageResult
	rows    [][]float32 // concatenation of pages[i].Rows, in page order
}

// lookup returns the entry for rel if it is still valid: same relation
// object, unchanged heap generation, and no pool invalidation since fill.
func (c *recordCache) lookup(rel *storage.Relation, poolGen uint64) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[rel.Name]
	if !ok || ent.rel != rel || ent.gen != rel.Generation() || ent.poolGen != poolGen {
		return nil
	}
	return ent
}

func (c *recordCache) store(ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	c.entries[ent.rel.Name] = ent
}

func (c *recordCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
}

// epochRunner executes training epochs for one Train call, feeding the
// streaming backend (the configured accelerator) through the Backend
// seam: extraction drives be.RunEpoch with the page-order batch stream,
// cache replays hand it the materialized rows. Both forms charge
// identical modeled counters.
type epochRunner struct {
	s   *System
	ae  *accessengine.Engine
	rel *storage.Relation
	be  backend.Backend

	// fits: the whole relation fits in the buffer pool, so page access
	// order cannot change eviction behavior — the precondition for both
	// out-of-order pinning (parallel workers) and the record cache
	// (epochs ≥ 2 would be pure pool hits, i.e. no modeled I/O).
	fits     bool
	workers  int
	channels int
	depth    int
	cacheOK  bool

	// Per-channel record arenas (one slab per channel, lazily sized
	// from the relation's page/tuple counts) and the reusable extraction
	// buffers hoisted out of the per-epoch hot paths: the serial group
	// window, its pin list, one shared PageResult per channel for the
	// recycling path, and the per-channel free rings that circulate
	// consumed PageResults back to the parallel workers.
	arenas    []*accessengine.Arena
	group     []storage.Page
	pinned    []uint32
	serialRes []accessengine.PageResult
	free      []chan *accessengine.PageResult
	col       *accessengine.Collector

	// The two Stream shells handed to the backend, built once: the
	// extraction form (Batches bound to r.batches) and the replay form
	// (Rows32 pointed at the cache entry per replay). pendingEnt carries
	// a freshly-filled cache entry from r.batches to runEpoch, which
	// stores it only after the backend's epoch fully succeeds.
	extractStream *backend.Stream
	replayStream  *backend.Stream
	pendingEnt    *cacheEntry

	// Fault handling. healthy lists the usable Strider VM indices:
	// quarantine removes persistently-trapping VMs, and both extraction
	// paths map work onto the healthy subset (VM identity never affects
	// modeled cycles, so the mapping is free). maxPageRetries bounds
	// same-VM re-walk attempts for a trapped page; deadline is the
	// current epoch's wall-clock budget (zero = none).
	faults         *fault.Injector
	healthy        []int
	maxPageRetries int
	epoch          int
	deadline       time.Time
}

// workerError carries which Strider VM failed on which page, so the
// epoch-level recovery can quarantine the right worker. It wraps the
// underlying typed fault error.
type workerError struct {
	vmIdx  int
	pageNo int
	err    error
}

func (w *workerError) Error() string {
	return fmt.Sprintf("strider %d failed on page %d: %v", w.vmIdx, w.pageNo, w.err)
}

func (w *workerError) Unwrap() error { return w.err }

func (s *System) newEpochRunner(ae *accessengine.Engine, rel *storage.Relation, be backend.Backend) *epochRunner {
	fits := rel.NumPages() <= s.DB.Pool.NumFrames()
	workers := s.Opts.Workers
	if workers <= 0 {
		workers = hostrt.GOMAXPROCS(0)
	}
	if workers > ae.NumStriders {
		workers = ae.NumStriders
	}
	if workers < 1 {
		workers = 1
	}
	// The engine-side batch fan-out never touches the buffer pool and
	// follows the configured worker count even when extraction must stay
	// serial below; the backend applied it at Configure.
	if !fits {
		// Larger-than-pool tables keep the serial pin order so clock-sweep
		// eviction (and therefore modeled I/O) stays deterministic.
		workers = 1
	}
	depth := s.Opts.PipelineDepth
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	retries := s.Opts.MaxPageRetries
	switch {
	case retries == 0:
		retries = defaultMaxPageRetries
	case retries < 0:
		retries = 0
	}
	healthy := make([]int, ae.NumStriders)
	for i := range healthy {
		healthy[i] = i
	}
	r := &epochRunner{
		s: s, ae: ae, rel: rel, be: be,
		fits:     fits,
		workers:  workers,
		channels: s.channels,
		depth:    depth,
		cacheOK:  fits && !s.Opts.NoExtractCache,

		faults:         s.Opts.Faults,
		healthy:        healthy,
		maxPageRetries: retries,

		group:     make([]storage.Page, 0, ae.NumStriders),
		pinned:    make([]uint32, 0, ae.NumStriders),
		serialRes: make([]accessengine.PageResult, s.channels),
		col:       ae.NewCollector(),
	}
	// Bound once: the streaming Batches closure and both Stream shells,
	// so steady-state epochs allocate neither.
	r.extractStream = &backend.Stream{Batches: r.batches}
	r.replayStream = &backend.Stream{}
	return r
}

// sizeArenas allocates one record slab per memory channel, sized for
// the channel's round-robin page share. On the cache-fill path every
// page takes a fresh extent, so the slab covers the channel's full
// tuple share; on the recycling path extents are reused across pages
// (and epochs — the arena is deliberately NOT reset while recycled
// PageResults still own extents), so a bounded window suffices. An
// undersized slab is never incorrect: Arena.Alloc falls back to the
// heap and counts the overflow.
//
// Called lazily from extractEpoch, not the runner constructor: a Train
// whose epochs all replay the record cache never extracts, and must not
// pay for (or zero) slabs it will never touch.
func (r *epochRunner) sizeArenas() {
	pages := r.rel.NumPages()
	if pages < 1 {
		return
	}
	cols := r.ae.Schema.NumCols()
	perPage := (r.rel.NumTuples() + pages - 1) / pages // ceil avg tuples/page
	window := 2 * (r.workers*(r.depth+2)/r.channels + 2)
	r.arenas = make([]*accessengine.Arena, r.channels)
	for c := range r.arenas {
		capPages := cost.ChannelPages(pages, r.channels, c) + 1
		if !r.cacheOK && capPages > window {
			capPages = window
		}
		r.arenas[c] = accessengine.NewArena(capPages * perPage * cols)
	}
}

// channelOf returns the memory channel page pn streams on: round-robin
// page interleaving, the single policy shared with internal/cost.
func (r *epochRunner) channelOf(pn int) int { return pn % r.channels }

// arenaOf returns channel's record slab (nil for an empty relation).
func (r *epochRunner) arenaOf(pn int) *accessengine.Arena {
	if r.arenas == nil {
		return nil
	}
	return r.arenas[r.channelOf(pn)]
}

// chargeChannel records one page's modeled stream activity on its
// memory channel. Called by the coordinator in page order (extraction
// and replay alike), so the split is deterministic for a given channel
// count and the totals are invariant across worker/channel configs.
func (r *epochRunner) chargeChannel(res *accessengine.PageResult) {
	c := r.channelOf(res.PageNo)
	r.s.obsChanBytes[c].Add(res.Bytes)
	r.s.obsChanBusy[c].Add(res.Cycles)
}

// runEpochRecover is runEpoch plus the quarantine recovery loop: when a
// Strider VM keeps trapping after the page-level retry budget, the VM is
// quarantined, the model is restored to its epoch-start snapshot (a
// failed epoch must not leave partially-applied updates behind), and
// the epoch re-runs on the healthy subset. With every VM quarantined
// the typed fault.ErrWorkerQuarantined surfaces, which the runtime
// treats as an accelerator fault (CPU fallback).
func (r *epochRunner) runEpochRecover(epoch int) error {
	var snap []float64
	if r.faults != nil || r.s.Opts.EpochTimeout > 0 {
		// An epoch can fail, and a failed epoch must not leave
		// partially-applied updates behind (the failover backend resumes
		// from the epoch-start model).
		snap = r.be.Model()
	}
	for {
		err := r.runEpoch(epoch)
		if err == nil {
			return nil
		}
		if snap != nil {
			if rerr := r.be.SetModel(snap); rerr != nil {
				return fmt.Errorf("runtime: restoring model after failed epoch: %w", rerr)
			}
		}
		var we *workerError
		if errors.As(err, &we) && errors.Is(err, fault.ErrVMTrap) {
			r.quarantine(we.vmIdx, we.pageNo)
			if len(r.healthy) == 0 {
				return fmt.Errorf("runtime: epoch %d: %w: %w", epoch, err, fault.ErrWorkerQuarantined)
			}
			r.s.obsEpochRetries.Inc()
			r.s.obs.Trace(obs.EvEpochRetry, int64(epoch), int64(len(r.healthy)))
			continue
		}
		return err
	}
}

// quarantine removes a persistently-trapping Strider VM from service.
func (r *epochRunner) quarantine(vmIdx, pageNo int) {
	for i, v := range r.healthy {
		if v == vmIdx {
			r.healthy = append(r.healthy[:i], r.healthy[i+1:]...)
			break
		}
	}
	r.s.obsQuarantines.Inc()
	r.s.obs.Trace(obs.EvQuarantine, int64(vmIdx), int64(pageNo))
}

// checkDeadline enforces the per-epoch wall-clock budget cooperatively
// (checked at page granularity by workers and coordinator alike).
func (r *epochRunner) checkDeadline() error {
	if !r.deadline.IsZero() && !time.Now().Before(r.deadline) {
		// Early-exit error branch: the wrap allocation is cold, so hot
		// callers (flushSerialGroup, extractShard) keep their proven
		// steady-state allocation-freedom.
		return fmt.Errorf("runtime: epoch %d exceeded its %v budget: %w",
			r.epoch, r.s.Opts.EpochTimeout, fault.ErrEpochTimeout)
	}
	return nil
}

// extract runs one page through Strider vmIdx with injected-stall and
// trap-retry handling: a transient trap clears within the same-VM retry
// budget; a persistent one surfaces as a *workerError for quarantine.
func (r *epochRunner) extract(vmIdx int, pg storage.Page, res *accessengine.PageResult) error {
	if d := r.faults.StallDelay(r.epoch, res.PageNo); d > 0 {
		time.Sleep(d)
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = r.ae.ExtractPage(vmIdx, pg, res)
		if err == nil {
			return nil
		}
		if !errors.Is(err, fault.ErrVMTrap) {
			return err
		}
		if attempt >= r.maxPageRetries {
			return &workerError{vmIdx: vmIdx, pageNo: res.PageNo, err: err}
		}
		r.s.obsPageRetries.Inc()
	}
}

// runEpoch extracts every page of the relation and runs the engine over
// the tuples, overlapping the two when workers > 1. Cached epochs skip
// the buffer pool and Strider walk entirely, replaying the identical
// modeled counters. epoch is the zero-based epoch index (trace only).
func (r *epochRunner) runEpoch(epoch int) error {
	start := time.Now()
	r.epoch = epoch
	if t := r.s.Opts.EpochTimeout; t > 0 {
		r.deadline = start.Add(t)
	} else {
		r.deadline = time.Time{}
	}
	cached := false
	var err error
	if r.cacheOK {
		if ent := r.s.cache.lookup(r.rel, r.s.DB.Pool.InvalidationCount()); ent != nil {
			cached = true
			r.s.obsCacheHits.Inc()
			err = r.replay(ent)
		} else {
			r.s.obsCacheMisses.Inc()
			err = r.extractEpoch()
		}
	} else {
		err = r.extractEpoch()
	}
	if err == nil && r.pendingEnt != nil {
		// Store only after the backend's epoch fully succeeded (stream
		// finished), preserving the historical store-after-Finish order.
		r.s.cache.store(r.pendingEnt)
	}
	r.pendingEnt = nil
	if err != nil {
		return err
	}
	wall := time.Since(start).Nanoseconds()
	r.s.obsEpochs.Inc()
	r.s.obsEpochWall.Add(wall)
	r.s.obsEpochHist.Observe(wall)
	if cached {
		r.s.obsEpochsCached.Inc()
		r.s.obs.Trace(obs.EvEpochCached, int64(epoch), wall)
	} else {
		r.s.obs.Trace(obs.EvEpoch, int64(epoch), wall)
	}
	return nil
}

// replay charges the cached per-page counters (in page order, preserving
// the group-max cycle model and the per-channel split) and feeds the
// cached records to the backend as one materialized epoch.
func (r *epochRunner) replay(ent *cacheEntry) error {
	col := r.col
	col.Reset()
	for i := range ent.pages {
		col.Add(&ent.pages[i])
		r.chargeChannel(&ent.pages[i])
	}
	col.Flush()
	r.replayStream.Rows32 = ent.rows
	err := r.be.RunEpoch(r.replayStream)
	r.replayStream.Rows32 = nil
	return err
}

// extractEpoch runs one extracting epoch through the backend's
// streaming entry point: the backend resets its engine stream, calls
// r.batches to drive extraction, and finishes the stream. A fresh cache
// entry is parked on pendingEnt for runEpoch to store on success.
func (r *epochRunner) extractEpoch() error {
	r.pendingEnt = nil
	return r.be.RunEpoch(r.extractStream)
}

// batches is the Stream.Batches body: it extracts every page of the
// relation in page order and emits each page's record batch to the
// backend (the engine feed), overlapping extraction with compute when
// workers > 1.
func (r *epochRunner) batches(emit func([][]float32) error) error {
	// The collector lives on the runner and is reset per epoch, so
	// steady-state epochs allocate nothing here. The channel arenas are
	// sized on the first epoch that really extracts: cache replays never
	// reach this function, so they never pay for the slabs.
	if r.arenas == nil {
		r.sizeArenas()
	}
	col := r.col
	col.Reset()
	var ent *cacheEntry
	if r.cacheOK {
		ent = &cacheEntry{
			rel:     r.rel,
			gen:     r.rel.Generation(),
			poolGen: r.s.DB.Pool.InvalidationCount(),
			pages:   make([]accessengine.PageResult, 0, r.rel.NumPages()),
		}
	}
	if ent != nil {
		// Fresh-results path: every page takes a fresh arena extent, so
		// reclaim the slabs first. Safe here — a previous fill's extents
		// are only referenced by a cache entry this store will replace
		// (re-extraction implies the old entry already failed validation
		// or belonged to a failed, discarded epoch).
		for _, a := range r.arenas {
			a.Reset()
		}
	}
	// sink consumes extracted pages in page order on the coordinator
	// goroutine: modeled stats (including the per-channel split), engine
	// compute, and cache fill.
	sink := func(res *accessengine.PageResult) error {
		col.Add(res)
		r.chargeChannel(res)
		if err := emit(res.Rows); err != nil {
			return err
		}
		if ent != nil {
			ent.pages = append(ent.pages, *res)
			ent.rows = append(ent.rows, res.Rows...)
		}
		return nil
	}
	// When the cache is not retaining results, page buffers (arena +
	// row views) are recycled across pages instead of reallocated —
	// the engine's epoch stream copies anything it buffers, so a
	// consumed PageResult is immediately reusable.
	reuse := ent == nil
	// Quarantine can shrink the worker pool below the configured count:
	// each live worker needs its own healthy VM.
	w := r.workers
	if w > len(r.healthy) {
		w = len(r.healthy)
	}
	var err error
	if w > 1 {
		err = r.extractParallel(w, sink, reuse)
	} else {
		err = r.extractSerial(sink, reuse)
	}
	if err != nil {
		return err
	}
	col.Flush()
	r.pendingEnt = ent
	return nil
}

// extractSerial pins pages in groups of NumStriders (modeling the page
// buffers, and matching the pre-parallel executor's pool access order
// exactly) and extracts them one Strider VM at a time. The group
// window, pin list, and per-channel shared PageResults live on the
// runner, so a steady-state epoch allocates nothing here.
func (r *epochRunner) extractSerial(sink func(*accessengine.PageResult) error, reuse bool) error {
	n := r.rel.NumPages()
	for pn := 0; pn < n; pn++ {
		pg, err := r.s.DB.Pool.Pin(r.rel.Name, uint32(pn))
		if err != nil {
			// Release the partially-accumulated group before surfacing.
			for _, p := range r.pinned {
				_ = r.s.DB.Pool.Unpin(r.rel.Name, p)
			}
			r.group, r.pinned = r.group[:0], r.pinned[:0]
			return err
		}
		r.group = append(r.group, pg)
		r.pinned = append(r.pinned, uint32(pn))
		if len(r.group) == r.ae.NumStriders {
			if err := r.flushSerialGroup(sink, reuse); err != nil {
				return err
			}
		}
	}
	return r.flushSerialGroup(sink, reuse)
}

// flushSerialGroup extracts the pinned group in page order and hands
// each result to the sink. Recycled results are shared per memory
// channel, so a page's record batch always slices out of its own
// channel's arena.
//
//dana:hotpath
func (r *epochRunner) flushSerialGroup(sink func(*accessengine.PageResult) error, reuse bool) (err error) {
	// Pins are released even when extraction fails mid-group: a
	// failed epoch must leave the pool with zero pinned frames.
	defer func() {
		for _, pn := range r.pinned {
			if uerr := r.s.DB.Pool.Unpin(r.rel.Name, pn); err == nil {
				err = uerr
			}
		}
		r.group = r.group[:0]
		r.pinned = r.pinned[:0]
	}()
	for i, pg := range r.group {
		if err := r.checkDeadline(); err != nil {
			return err
		}
		pn := int(r.pinned[i])
		var res *accessengine.PageResult
		if reuse {
			res = &r.serialRes[r.channelOf(pn)]
		} else {
			//danalint:ignore hotalloc -- fresh results are retained by the record cache
			res = new(accessengine.PageResult)
		}
		res.PageNo = pn
		res.Arena = r.arenaOf(pn)
		busyStart := time.Now()
		err := r.extract(r.healthy[i%len(r.healthy)], pg, res)
		r.s.obsWorkerBusy.Add(time.Since(busyStart).Nanoseconds())
		if err != nil {
			return err
		}
		if err := sink(res); err != nil {
			return err
		}
	}
	return nil
}

// shardPlan is the channel-partitioned worker layout for one epoch:
// with w ≥ C workers the C per-channel Strider groups get w/C workers
// each (shardC = C, shardW = w/C; workers past shardC×shardW idle for
// the epoch); with w < C the flat pn mod w round-robin applies
// (shardC = w, shardW = 1). Worker flat index i serves shard channel
// i/shardW, slot i%shardW, and owns pages pn = c + (j + m·shardW)·shardC.
type shardPlan struct {
	shardC, shardW int
}

func (r *epochRunner) plan(w int) shardPlan {
	if w >= r.channels {
		return shardPlan{shardC: r.channels, shardW: w / r.channels}
	}
	return shardPlan{shardC: w, shardW: 1}
}

// workers returns the live worker count of the plan.
func (p shardPlan) workers() int { return p.shardC * p.shardW }

// workerOf returns the flat worker index owning page pn.
func (p shardPlan) workerOf(pn int) int {
	c := pn % p.shardC
	j := (pn / p.shardC) % p.shardW
	return c*p.shardW + j
}

// extractParallel fans pages out over the channel-partitioned worker
// groups (worker i owns healthy Strider VM healthy[i]) and delivers
// results to the sink in global page order by walking the same
// page→worker mapping over the per-worker output channels. Channel
// capacity bounds the number of in-flight page batches.
func (r *epochRunner) extractParallel(w int, sink func(*accessengine.PageResult) error, reuse bool) error {
	n := r.rel.NumPages()
	plan := r.plan(w)
	nw := plan.workers()
	outs := make([]chan *accessengine.PageResult, nw)
	errCh := make(chan error, nw)
	done := make(chan struct{})
	// When results are not retained by the cache, consumed PageResults
	// circulate back to the workers through per-channel free rings,
	// bounding allocation to the number of in-flight pages and keeping
	// each record batch inside its own channel's arena.
	if reuse && r.free == nil {
		r.free = make([]chan *accessengine.PageResult, r.channels)
		for c := range r.free {
			r.free[c] = make(chan *accessengine.PageResult, plan.shardW*(r.depth+2)+2)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		outs[i] = make(chan *accessengine.PageResult, r.depth)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(outs[i])
			var busy time.Duration
			defer func() { r.s.obsWorkerBusy.Add(busy.Nanoseconds()) }()
			c, j := i/plan.shardW, i%plan.shardW
			start := c + j*plan.shardC
			stride := plan.shardW * plan.shardC
			for pn := start; pn < n; pn += stride {
				res, err := r.extractShard(i, pn, reuse)
				if err != nil {
					errCh <- err
					return
				}
				busy += time.Duration(res.WalkNs)
				select {
				case outs[i] <- res:
				case <-done:
					return
				}
			}
		}(i)
	}
	var err error
	for pn := 0; pn < n && err == nil; pn++ {
		if err = r.checkDeadline(); err != nil {
			break
		}
		res, ok := <-outs[plan.workerOf(pn)]
		if !ok {
			err = <-errCh
			break
		}
		err = sink(res)
		if reuse && err == nil {
			select {
			case r.free[r.channelOf(pn)] <- res:
			default:
			}
		}
	}
	close(done)
	wg.Wait()
	if err != nil {
		return err
	}
	select {
	case werr := <-errCh:
		return werr
	default:
		return nil
	}
}

// extractShard pins, walks, and unpins one page on worker i — the
// per-page body of the parallel extraction loop. Recycled results come
// from the page's channel free ring; fresh extents come from the
// channel arena.
//
//dana:hotpath
func (r *epochRunner) extractShard(i, pn int, reuse bool) (*accessengine.PageResult, error) {
	if err := r.checkDeadline(); err != nil {
		return nil, err
	}
	pg, err := r.s.DB.Pool.Pin(r.rel.Name, uint32(pn))
	if err != nil {
		return nil, err
	}
	var res *accessengine.PageResult
	if reuse {
		select {
		case res = <-r.free[r.channelOf(pn)]:
		default:
			//danalint:ignore hotalloc -- ring warm-up; recycled afterwards
			res = new(accessengine.PageResult)
		}
	} else {
		//danalint:ignore hotalloc -- fresh results are retained by the record cache
		res = new(accessengine.PageResult)
	}
	res.PageNo = pn
	res.Arena = r.arenaOf(pn)
	busyStart := time.Now()
	err = r.extract(r.healthy[i], pg, res)
	res.WalkNs = time.Since(busyStart).Nanoseconds()
	// The arena holds copies of the tuple values, so the frame can be
	// released before the engine consumes the batch.
	if uerr := r.s.DB.Pool.Unpin(r.rel.Name, uint32(pn)); err == nil {
		err = uerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
