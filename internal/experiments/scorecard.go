package experiments

import "fmt"

// ScoreRow is one headline metric of the reproduction scorecard: the
// paper's reported value, our measured value, and the acceptance band
// DESIGN.md/EXPERIMENTS.md commit to.
type ScoreRow struct {
	Metric   string
	Paper    float64
	Measured float64
	Lo, Hi   float64
}

// OK reports whether the measurement lies in the band.
func (r ScoreRow) OK() bool { return r.Measured >= r.Lo && r.Measured <= r.Hi }

func (r ScoreRow) String() string {
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	return fmt.Sprintf("%-44s paper %8.2f  measured %8.2f  band [%6.2f, %6.2f]  %s",
		r.Metric, r.Paper, r.Measured, r.Lo, r.Hi, status)
}

// Scorecard evaluates every headline number of the paper's abstract and
// evaluation against the reproduction.
func Scorecard(env Env) ([]ScoreRow, error) {
	var rows []ScoreRow
	add := func(metric string, paper, measured, lo, hi float64) {
		rows = append(rows, ScoreRow{Metric: metric, Paper: paper, Measured: measured, Lo: lo, Hi: hi})
	}

	_, realWarm, err := ClassSpeedups("real", env, true)
	if err != nil {
		return nil, err
	}
	_, realCold, err := ClassSpeedups("real", env, false)
	if err != nil {
		return nil, err
	}
	_, snWarm, err := ClassSpeedups("S/N", env, true)
	if err != nil {
		return nil, err
	}
	_, seWarm, err := ClassSpeedups("S/E", env, true)
	if err != nil {
		return nil, err
	}
	// The abstract's headline claims.
	add("abstract: DAnA vs PG, real datasets (8.3x)", 8.3, realWarm.DAnAvsPG, 5, 14)
	add("abstract: DAnA vs Greenplum (4.0x)", 4.0, realWarm.DAnAvsGP, 2.5, 7)
	add("fig8a: Greenplum vs PG (2.1x)", 2.1, realWarm.GPvsPG, 1.5, 2.8)
	add("fig8b: DAnA vs PG cold (4.8x)", 4.8, realCold.DAnAvsPG, 3, 10)
	add("fig9: DAnA vs PG, S/N warm (13.2x)", 13.2, snWarm.DAnAvsPG, 8, 25)
	add("fig10: DAnA vs PG, S/E warm (12.9x)", 12.9, seWarm.DAnAvsPG, 8, 30)

	_, strider, err := StriderBenefit(env)
	if err != nil {
		return nil, err
	}
	add("fig11: DAnA without Striders (2.3x)", 2.3, strider.WithoutStrider, 1.5, 4.5)
	add("fig11: DAnA with Striders (10.8x)", 10.8, strider.WithStrider, 8, 20)
	add("abstract: Strider amplification (4.6x)", 4.6, strider.WithStrider/strider.WithoutStrider, 3, 7)

	_, seg, err := SegmentSweep(env)
	if err != nil {
		return nil, err
	}
	add("fig13: PG relative to 8 segments (0.54)", 0.54, seg.PG, 0.35, 0.7)
	add("fig13: 16 segments relative to 8 (0.89)", 0.89, seg.Seg16, 0.6, 1.0)

	_, tabla, err := TablaComparison(env)
	if err != nil {
		return nil, err
	}
	add("fig16: DAnA vs TABLA compute (4.7x)", 4.7, tabla.Speedup, 3, 6.5)

	return rows, nil
}
