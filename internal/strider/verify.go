package strider

import (
	"fmt"
	"math/bits"

	"dana/internal/fault"
)

// This file implements a static verifier for Strider programs: an
// abstract interpreter over the Table-2 ISA using an interval domain
// for register values. Dispatching a buggy walker to a Strider costs a
// trap, a retry, and eventually a quarantined worker (fault.go), so the
// runtime proves what it can *before* the program ever touches a page:
//
//   - register init-before-use (temp registers are zeroed by hardware,
//     but a read of a never-written register is almost always a
//     compiler bug),
//   - page accesses (readB/writeB/cln) stay inside a page of the
//     configured size,
//   - bentr/bexit loops are well formed and — where a monotone
//     induction register exists — provably terminating,
//   - the output FIFO emit volume is bounded when the loop trip count
//     is bounded.
//
// Diagnostics come in two severities. An Error means every concrete
// execution reaching that instruction traps (the abstract state is an
// over-approximation, so a violation by the interval's *minimum* is a
// violation by all values). A Warning means the verifier cannot prove
// safety: some value in the interval could trap, or a loop has no
// termination argument. Strict mode (VerifyOptions.Strict) promotes
// warnings to rejections; a program accepted under Strict can never
// trap the VM on a page of the configured size, which is the invariant
// the fuzz harness drives.

// Severity classifies a verifier diagnostic.
type Severity uint8

const (
	// SevWarning marks a property the verifier could not prove.
	SevWarning Severity = iota
	// SevError marks a definite trap: every execution reaching the
	// instruction faults.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diag is one verifier diagnostic, anchored to a program counter.
type Diag struct {
	PC  int
	Sev Severity
	Msg string
}

func (d Diag) String() string {
	return fmt.Sprintf("pc=%d: %s: %s", d.PC, d.Sev, d.Msg)
}

// VerifyOptions configures a verification run.
type VerifyOptions struct {
	// PageSize is the page buffer size the program will run against.
	// Required: page-bounds proofs are relative to it.
	PageSize int
	// Strict promotes warnings to rejections in Report.OK: accepted
	// programs are fully proven, not merely free of definite traps.
	Strict bool
	// MaxOutputBytes, when non-zero, warns if the worst-case output
	// FIFO volume is unbounded or exceeds this limit.
	MaxOutputBytes uint64
	// UnknownConfig verifies the program for *every* possible
	// configuration: CR registers and the extrBi field table start
	// unconstrained instead of at cfg's exact values. Used by tooling
	// that sees assembly without its runtime configuration; proofs are
	// weaker but hold for any config load.
	UnknownConfig bool
}

// OutputUnbounded is Report.OutputBound's value when no finite bound on
// emitted bytes could be established.
const OutputUnbounded = ^uint64(0)

// Report is the outcome of verifying one program.
type Report struct {
	Diags []Diag
	// TerminationProved is true when every loop in the program has a
	// monotone induction argument.
	TerminationProved bool
	// OutputBound is the proven worst-case number of bytes the program
	// can emit to the output FIFO, or OutputUnbounded.
	OutputBound uint64
}

// Errors returns only the definite-trap diagnostics.
func (r *Report) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns only the unproven-property diagnostics.
func (r *Report) Warnings() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Sev == SevWarning {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the program is admissible: free of definite traps,
// and under Strict free of any diagnostic at all.
func (r *Report) OK(strict bool) bool {
	if strict {
		return len(r.Diags) == 0
	}
	return len(r.Errors()) == 0
}

// Err folds the report into a single error (nil when OK). The error
// wraps fault.ErrVerifyReject so runtime callers can discriminate a
// verifier rejection from a dynamic trap with errors.Is.
func (r *Report) Err(strict bool) error {
	if r.OK(strict) {
		return nil
	}
	rejecting := r.Errors()
	if strict && len(rejecting) == 0 {
		rejecting = r.Diags
	}
	return fmt.Errorf("strider: verifier rejected program (%d diagnostics, first: %s): %w",
		len(rejecting), rejecting[0], fault.ErrVerifyReject)
}

// Verify abstractly interprets prog against cfg and returns everything
// it could and could not prove. It never executes the program.
func Verify(prog []Instr, cfg Config, opts VerifyOptions) *Report {
	v := &verifier{
		prog:       prog,
		cfg:        cfg,
		pageSize:   uint64(opts.PageSize),
		unknownCfg: opts.UnknownConfig,
		report:     &Report{TerminationProved: true},
	}
	if opts.PageSize <= 0 {
		v.report.TerminationProved = false
		v.reportf(0, SevError, "verification requires a positive page size, got %d", opts.PageSize)
		return v.report
	}
	v.matchLoops()

	st := newAbsState(cfg, opts.UnknownConfig)
	bound := v.runRange(0, len(prog), &st, true)
	v.report.OutputBound = bound
	if opts.MaxOutputBytes > 0 {
		switch {
		case bound == OutputUnbounded:
			v.reportf(len(prog)-1, SevWarning,
				"output FIFO volume is unbounded (no loop trip bound); limit is %d bytes", opts.MaxOutputBytes)
		case bound > opts.MaxOutputBytes:
			v.reportf(len(prog)-1, SevWarning,
				"worst-case output FIFO volume %d exceeds limit %d bytes", bound, opts.MaxOutputBytes)
		}
	}
	return v.report
}

// ---------------------------------------------------------------------------
// Abstract domain: intervals over uint64 plus an initialized bit.

// interval is a closed interval [lo, hi] of uint64 values. It is convex:
// operations whose concrete result set could wrap around 2^64 widen to
// top rather than produce an unsound non-convex set.
type interval struct{ lo, hi uint64 }

func ivConst(v uint64) interval { return interval{v, v} }
func ivTop() interval           { return interval{0, ^uint64(0)} }

func (a interval) isTop() bool { return a.lo == 0 && a.hi == ^uint64(0) }

func (a interval) join(b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

func (a interval) add(b interval) interval {
	lo, c1 := bits.Add64(a.lo, b.lo, 0)
	hi, c2 := bits.Add64(a.hi, b.hi, 0)
	if c1 != 0 || c2 != 0 {
		return ivTop()
	}
	return interval{lo, hi}
}

func (a interval) sub(b interval) interval {
	// Sound only when no value pair can wrap: min(a) must cover max(b).
	if a.lo < b.hi {
		return ivTop()
	}
	return interval{a.lo - b.hi, a.hi - b.lo}
}

func (a interval) mul(b interval) interval {
	if over, _ := bits.Mul64(a.hi, b.hi); over != 0 {
		return ivTop()
	}
	return interval{a.lo * b.lo, a.hi * b.hi}
}

// absReg is one register's abstract value.
type absReg struct {
	iv   interval
	init bool
}

// absState is the abstract machine state: every register's interval.
// The page itself is not modeled (readB results are bounded only by
// their byte width), which keeps the domain small and the fixpoint
// fast while still proving the accesses the generated walkers make.
type absState struct {
	t  [NumTempRegs]absReg
	cr [NumConfigRegs]absReg
}

func newAbsState(cfg Config, unknownCfg bool) absState {
	var st absState
	for i := range st.t {
		// Hardware zeroes temp registers; the value is sound, the
		// init bit drives the read-before-write warning.
		st.t[i] = absReg{iv: ivConst(0)}
	}
	for i := range st.cr {
		// Configuration registers are loaded through the config
		// channel before execution: exact and initialized — unless the
		// caller asked for a config-independent proof.
		iv := ivConst(cfg.CR[i])
		if unknownCfg {
			iv = ivTop()
		}
		st.cr[i] = absReg{iv: iv, init: true}
	}
	return st
}

func (st *absState) join(o *absState) (changed bool) {
	for i := range st.t {
		changed = joinReg(&st.t[i], o.t[i]) || changed
	}
	for i := range st.cr {
		changed = joinReg(&st.cr[i], o.cr[i]) || changed
	}
	return changed
}

func joinReg(a *absReg, b absReg) bool {
	j := a.iv.join(b.iv)
	init := a.init && b.init
	changed := j != a.iv || init != a.init
	a.iv, a.init = j, init
	return changed
}

// widen pushes every register that changed between prev and st to top,
// guaranteeing the loop fixpoint converges in a bounded number of
// passes regardless of the increment pattern.
func (st *absState) widen(prev *absState) {
	for i := range st.t {
		if st.t[i].iv != prev.t[i].iv {
			st.t[i].iv = ivTop()
		}
	}
	for i := range st.cr {
		if st.cr[i].iv != prev.cr[i].iv {
			st.cr[i].iv = ivTop()
		}
	}
}

// ---------------------------------------------------------------------------
// The interpreter.

type verifier struct {
	prog       []Instr
	cfg        Config
	pageSize   uint64
	unknownCfg bool
	report     *Report

	// loopExit maps a bentr PC to its matching bexit PC. Unmatched
	// bexits are diagnosed in matchLoops and skipped by the
	// interpreter (the VM traps on them; the trap is the diagnosis).
	loopExit map[int]int
}

func (v *verifier) reportf(pc int, sev Severity, format string, args ...interface{}) {
	if pc < 0 {
		pc = 0
	}
	v.report.Diags = append(v.report.Diags, Diag{PC: pc, Sev: sev, Msg: fmt.Sprintf(format, args...)})
}

// matchLoops pairs bentr/bexit like parentheses, mirroring the VM's
// dynamic loop stack, and diagnoses the statically malformed cases.
func (v *verifier) matchLoops() {
	v.loopExit = make(map[int]int)
	var stack []int
	for pc, in := range v.prog {
		switch in.Op {
		case OpBentr:
			stack = append(stack, pc)
		case OpBexit:
			if len(stack) == 0 {
				v.reportf(pc, SevError, "bexit without a matching bentr: the VM traps here")
				continue
			}
			v.loopExit[stack[len(stack)-1]] = pc
			stack = stack[:len(stack)-1]
		}
	}
	for _, pc := range stack {
		v.reportf(pc, SevWarning, "bentr without a matching bexit: the loop body never repeats")
	}
}

// runRange interprets prog[from:to) over st, recursing into loops, and
// returns the worst-case bytes emitted to the output FIFO by the range
// (OutputUnbounded when a loop has no trip bound). Diagnostics are
// emitted only when emit is true, so loop fixpoint passes stay silent
// and the final pass reports each site exactly once against the
// loop-invariant state (which over-approximates every iteration,
// including the first).
func (v *verifier) runRange(from, to int, st *absState, emit bool) uint64 {
	var emitted uint64
	addEmit := func(n uint64) {
		if emitted == OutputUnbounded || n == OutputUnbounded {
			emitted = OutputUnbounded
			return
		}
		s, carry := bits.Add64(emitted, n, 0)
		if carry != 0 {
			s = OutputUnbounded
		}
		emitted = s
	}

	for pc := from; pc < to; pc++ {
		in := v.prog[pc]
		if in.Op == OpBentr {
			if exit, ok := v.loopExit[pc]; ok && exit < to {
				addEmit(v.runLoop(pc, exit, st, emit))
				pc = exit
				continue
			}
			// Unmatched bentr: fall through and interpret the body
			// once, which is exactly what the VM does.
			continue
		}
		addEmit(v.step(pc, st, emit))
	}
	return emitted
}

// runLoop analyzes one bentr..bexit loop: computes the loop-invariant
// state by fixpoint with widening, re-runs the body once over the
// invariant to emit diagnostics, proves termination when it can, and
// returns the loop's worst-case FIFO emission.
func (v *verifier) runLoop(entry, exit int, st *absState, emit bool) uint64 {
	entryState := *st // state on first entering the body (do-while: runs at least once)

	// Fixpoint: find inv such that inv ⊒ entryState and inv ⊒ body(inv).
	inv := entryState
	const maxPasses = 8
	for pass := 0; ; pass++ {
		work := inv
		v.runRange(entry+1, exit, &work, false)
		v.stepBexitState(exit, &work)
		v.refineBackEdge(exit, &work)
		prev := inv
		if !inv.join(&work) {
			break
		}
		if pass >= 2 {
			inv.widen(&prev)
		}
		if pass >= maxPasses {
			// Widening guarantees convergence long before this; the
			// bound is a belt against a domain bug, not a real path.
			break
		}
	}
	// Narrowing: widening may have blown a register to top that the
	// back-edge condition actually bounds (the looping path of
	// `bexit GE r, b` implies r < b). Re-solving the loop-head
	// equation from the post-fixpoint recovers those bounds.
	for i := 0; i < 2; i++ {
		work := inv
		v.runRange(entry+1, exit, &work, false)
		v.stepBexitState(exit, &work)
		v.refineBackEdge(exit, &work)
		next := entryState
		next.join(&work)
		inv = next
	}

	// Diagnostic pass over the invariant: one report per site, valid
	// for every iteration.
	final := inv
	bodyEmit := v.runRange(entry+1, exit, &final, emit)
	v.checkBexit(exit, &final, emit)

	trip := v.proveTermination(entry, exit, &entryState, &inv, emit)
	*st = final

	if bodyEmit == 0 {
		return 0
	}
	if trip == OutputUnbounded || bodyEmit == OutputUnbounded {
		return OutputUnbounded
	}
	if over, total := bits.Mul64(bodyEmit, trip); over == 0 {
		return total
	}
	return OutputUnbounded
}

// proveTermination looks for a monotone induction argument on the
// loop's bexit and returns a bound on the trip count (OutputUnbounded
// when none exists). The supported shape is the paper's walker idiom:
//
//	bexit GE|GT, r, bound
//
// where r is a register whose only writes inside the body are
// `ad r, c, r` (or `ad c, r, r`) with a strictly positive increment,
// and bound is not written inside the body. r then strictly increases
// every iteration, so it eventually reaches any fixed bound. (A wrap
// around 2^64 would need ~2^64/c iterations — the VM's step budget
// traps long before that, so the proof holds for every run the VM
// completes.)
func (v *verifier) proveTermination(entry, exit int, entryState, inv *absState, emit bool) uint64 {
	in := v.prog[exit]
	cond := int(in.A)
	fail := func(format string, args ...interface{}) uint64 {
		v.report.TerminationProved = false
		if emit {
			v.reportf(exit, SevWarning, "cannot prove loop at pc=%d terminates: %s",
				entry, fmt.Sprintf(format, args...))
		}
		return OutputUnbounded
	}
	if !in.A.IsImm() || cond > CondNE {
		// checkBexit already reported the definite trap.
		v.report.TerminationProved = false
		return OutputUnbounded
	}
	if cond != CondGE && cond != CondGT {
		return fail("exit condition %s is an equality test, not an ordering", condName(cond))
	}
	r := in.B
	if !r.IsReg() {
		return fail("exit comparison %s has an immediate on the induction side", condName(cond))
	}

	// Every write to r inside the body must be a strictly positive
	// self-increment.
	step := interval{^uint64(0), ^uint64(0)} // min over all increments matters; start at +inf
	sawInc := false
	for pc := entry + 1; pc < exit; pc++ {
		b := v.prog[pc]
		dst, writes := destReg(b)
		if !writes || dst != r {
			continue
		}
		if b.Op != OpAdd {
			return fail("%%%s is written by %s at pc=%d, not a monotone increment", r, b.Op, pc)
		}
		var inc Operand
		switch {
		case b.A == r:
			inc = b.B
		case b.B == r:
			inc = b.A
		default:
			return fail("ad at pc=%d overwrites %s without reading it", pc, r)
		}
		incIv := v.peek(inv, inc)
		if incIv.lo == 0 {
			return fail("increment of %s at pc=%d is not provably positive", r, pc)
		}
		if incIv.lo < step.lo {
			step.lo = incIv.lo
		}
		sawInc = true
	}
	if !sawInc {
		return fail("%s is never advanced inside the body", r)
	}

	// The bound side must be loop-invariant.
	bound := in.C
	if bound.IsReg() {
		for pc := entry + 1; pc < exit; pc++ {
			if dst, writes := destReg(v.prog[pc]); writes && dst == bound {
				return fail("exit bound %s is written inside the body at pc=%d", bound, pc)
			}
		}
	}

	// Trip bound: r starts at entryState(r).lo and gains ≥ step.lo per
	// iteration until it reaches bound's maximum.
	boundHi := v.peek(inv, bound).hi
	startLo := v.peek(entryState, r).lo
	if boundHi == ^uint64(0) {
		return OutputUnbounded // terminating, but with no computable trip bound
	}
	var span uint64
	if boundHi > startLo {
		span = boundHi - startLo
	}
	return span/step.lo + 1
}

// destReg returns the register an instruction writes, if any.
func destReg(in Instr) (Operand, bool) {
	switch in.Op {
	case OpReadB, OpExtrB, OpExtrBi, OpAdd, OpSub, OpMul:
		if in.C.IsReg() {
			return in.C, true
		}
	}
	return 0, false
}

func condName(c int) string {
	switch c {
	case CondEQ:
		return "EQ"
	case CondGE:
		return "GE"
	case CondGT:
		return "GT"
	case CondNE:
		return "NE"
	}
	return fmt.Sprintf("cond%d", c)
}

// ---------------------------------------------------------------------------
// Per-instruction transfer functions. Each mirrors the corresponding
// dynamic check in vm.go; the comments there are authoritative for the
// trap conditions.

// step interprets one non-control instruction and returns its
// worst-case FIFO emission.
func (v *verifier) step(pc int, st *absState, emit bool) uint64 {
	in := v.prog[pc]
	switch in.Op {
	case OpReadB:
		addr := v.read(pc, st, in.A, emit)
		n := v.read(pc, st, in.B, emit)
		v.checkLen(pc, "readB", n, 8, emit)
		v.checkAccess(pc, "readB", emit, addr, n)
		v.write(pc, st, in.C, absReg{iv: byteWidthInterval(n), init: true}, emit)
	case OpExtrB:
		v.read(pc, st, in.A, emit)
		off := v.read(pc, st, in.B, emit)
		v.checkLen(pc, "extrB byte offset", off, 7, emit)
		v.write(pc, st, in.C, absReg{iv: interval{0, 0xFF}, init: true}, emit)
	case OpWriteB:
		v.read(pc, st, in.A, emit)
		n := v.read(pc, st, in.B, emit)
		addr := v.read(pc, st, in.C, emit)
		v.checkLen(pc, "writeB", n, 8, emit)
		v.checkAccess(pc, "writeB", emit, addr, n)
	case OpExtrBi:
		v.read(pc, st, in.A, emit)
		idx := v.read(pc, st, in.B, emit)
		out := interval{0, 0xFFFFFFFF}
		switch {
		case idx.lo >= NumConfigRegs:
			if emit {
				v.reportf(pc, SevError, "extrBi field index %d out of range [0,%d): the VM traps here", idx.lo, NumConfigRegs)
			}
		case idx.hi >= NumConfigRegs:
			if emit {
				v.reportf(pc, SevWarning, "extrBi field index in [%d,%d] may exceed %d", idx.lo, idx.hi, NumConfigRegs-1)
			}
		case idx.lo == idx.hi && !v.unknownCfg:
			fd := v.cfg.Fields[idx.lo]
			if fd.Width == 0 || fd.Width > 32 {
				out = ivConst(0) // FieldDesc.Extract returns 0 for degenerate widths
			} else {
				out = interval{0, 1<<fd.Width - 1}
			}
		}
		v.write(pc, st, in.C, absReg{iv: out, init: true}, emit)
	case OpClean:
		addr := v.read(pc, st, in.A, emit)
		skip := v.read(pc, st, in.B, emit)
		n := v.read(pc, st, in.C, emit)
		v.checkAccess(pc, "cln", emit, addr, skip, n)
		return n.hi
	case OpInsert:
		v.read(pc, st, in.A, emit)
		n := v.read(pc, st, in.B, emit)
		v.checkLen(pc, "ins", n, 8, emit)
		if n.hi > 8 {
			return 8
		}
		return n.hi
	case OpAdd:
		a, b := v.read(pc, st, in.A, emit), v.read(pc, st, in.B, emit)
		v.write(pc, st, in.C, absReg{iv: a.add(b), init: true}, emit)
	case OpSub:
		a, b := v.read(pc, st, in.A, emit), v.read(pc, st, in.B, emit)
		v.write(pc, st, in.C, absReg{iv: a.sub(b), init: true}, emit)
	case OpMul:
		a, b := v.read(pc, st, in.A, emit), v.read(pc, st, in.B, emit)
		v.write(pc, st, in.C, absReg{iv: a.mul(b), init: true}, emit)
	case OpBexit:
		// Reached only when unmatched (matchLoops reported it) — the
		// matched case is consumed by runLoop.
	}
	return 0
}

// refineBackEdge narrows the state that flows back to the loop head:
// the looping path of `bexit GE a, b` implies a < b and of
// `bexit GT a, b` implies a <= b, so a's upper bound is capped by b's.
func (v *verifier) refineBackEdge(pc int, st *absState) {
	in := v.prog[pc]
	if !in.A.IsImm() {
		return
	}
	cond := int(in.A)
	if (cond != CondGE && cond != CondGT) || !in.B.IsReg() {
		return
	}
	b := v.peek(st, in.C)
	cap := b.hi
	if cond == CondGE {
		if cap == 0 {
			return // a < 0 is impossible; the back edge is infeasible
		}
		cap--
	}
	var r *absReg
	if in.B < operandCRBase {
		r = &st.t[in.B-operandTBase]
	} else {
		r = &st.cr[in.B-operandCRBase]
	}
	if cap < r.iv.hi {
		r.iv.hi = cap
		if r.iv.lo > r.iv.hi {
			r.iv.lo = r.iv.hi
		}
	}
}

// stepBexitState applies a bexit's register reads to the fixpoint
// state without emitting diagnostics (the reads can mark init bits in
// future domains; today it is a no-op kept for symmetry with
// checkBexit).
func (v *verifier) stepBexitState(pc int, st *absState) {
	in := v.prog[pc]
	_ = v.peek(st, in.B)
	_ = v.peek(st, in.C)
}

// checkBexit validates a matched bexit against the invariant state.
func (v *verifier) checkBexit(pc int, st *absState, emit bool) {
	in := v.prog[pc]
	if !in.A.IsImm() || int(in.A) > CondNE {
		if emit {
			v.reportf(pc, SevError, "bexit condition operand %s is not a condition code 0..3: the VM traps here", in.A)
		}
		return
	}
	v.read(pc, st, in.B, emit)
	v.read(pc, st, in.C, emit)
}

// read resolves an operand to its interval, diagnosing reads of
// never-initialized temp registers.
func (v *verifier) read(pc int, st *absState, o Operand, emit bool) interval {
	switch {
	case o.IsImm():
		return ivConst(uint64(o))
	case o < operandCRBase:
		r := &st.t[o-operandTBase]
		if !r.init && emit {
			v.reportf(pc, SevWarning, "%s is read before any instruction writes it (hardware zeroes it, but this is almost always a compiler bug)", o)
		}
		return r.iv
	default:
		return st.cr[o-operandCRBase].iv
	}
}

// peek resolves an operand without init diagnostics.
func (v *verifier) peek(st *absState, o Operand) interval {
	if o.IsImm() {
		return ivConst(uint64(o))
	}
	if o < operandCRBase {
		return st.t[o-operandTBase].iv
	}
	return st.cr[o-operandCRBase].iv
}

// write stores an abstract value to a register destination, diagnosing
// the immediate-destination definite trap.
func (v *verifier) write(pc int, st *absState, o Operand, r absReg, emit bool) {
	switch {
	case o.IsImm():
		if emit {
			v.reportf(pc, SevError, "destination operand %s is an immediate: the VM traps here", o)
		}
	case o < operandCRBase:
		st.t[o-operandTBase] = r
	default:
		st.cr[o-operandCRBase] = r
	}
}

// checkLen diagnoses a width/offset operand against its ISA maximum.
func (v *verifier) checkLen(pc int, what string, n interval, max uint64, emit bool) {
	if !emit {
		return
	}
	switch {
	case n.lo > max:
		v.reportf(pc, SevError, "%s length %d > %d: the VM traps here", what, n.lo, max)
	case n.hi > max:
		v.reportf(pc, SevWarning, "%s length in [%d,%d] may exceed %d", what, n.lo, n.hi, max)
	}
}

// checkAccess proves a page access: the sum of the parts must stay
// within the configured page size. Sums saturate, matching the VM's
// wrap-proof bound checks in vm.go.
func (v *verifier) checkAccess(pc int, what string, emit bool, parts ...interval) {
	if !emit {
		return
	}
	var loSum, hiSum uint64
	for _, p := range parts {
		loSum = satAdd(loSum, p.lo)
		hiSum = satAdd(hiSum, p.hi)
	}
	switch {
	case loSum > v.pageSize:
		v.reportf(pc, SevError, "%s access reaches byte %d of a %d-byte page on every execution: the VM traps here",
			what, loSum, v.pageSize)
	case hiSum == ^uint64(0):
		v.reportf(pc, SevWarning, "%s address is not provably bounded; the access may leave the %d-byte page", what, v.pageSize)
	case hiSum > v.pageSize:
		v.reportf(pc, SevWarning, "%s access may reach byte %d of a %d-byte page", what, hiSum, v.pageSize)
	}
}

func satAdd(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		return ^uint64(0)
	}
	return s
}

// byteWidthInterval bounds an n-byte little-endian load: n bytes can
// encode at most 2^(8n)-1.
func byteWidthInterval(n interval) interval {
	w := n.hi
	if w >= 8 {
		return ivTop()
	}
	return interval{0, 1<<(8*w) - 1}
}
