package verify

import (
	"fmt"
	"math"

	"dana/internal/accessengine"
	"dana/internal/algos"
	"dana/internal/compiler"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/ml"
)

// Oracle C: training equivalence. GoldenSpec.Train is a pure-Go float64
// trainer written directly from the DSL update-rule semantics, in the
// exact floating-point operation order the hDFG evaluator uses. The
// hierarchy of checks, loosening as implementations diverge in number
// representation:
//
//	golden == hDFG interpreter      bit-identical float64
//	golden ≈ ml baseline (MADlib)   1e-9 (same math, different op order)
//	golden ≈ engine simulator       5e-3 (float32 datapath)

// GoldenSpec describes one training instance.
type GoldenSpec struct {
	Kind               algos.Kind
	NFeat              int // GLMs
	Users, Items, Rank int // LRMF
	LR, Lambda         float64
	MergeCoef          int
	Epochs             int
}

// Topology returns the algos.Build topology vector.
func (sp GoldenSpec) Topology() []int {
	if sp.Kind == algos.KindLRMF {
		return []int{sp.Users, sp.Items, sp.Rank}
	}
	return []int{sp.NFeat}
}

// Hyper returns the algos hyper-parameters.
func (sp GoldenSpec) Hyper() algos.Hyper {
	return algos.Hyper{LR: sp.LR, Lambda: sp.Lambda, MergeCoef: sp.MergeCoef, Epochs: sp.Epochs}
}

// ModelSize returns the flat parameter count.
func (sp GoldenSpec) ModelSize() int {
	if sp.Kind == algos.KindLRMF {
		return (sp.Users + sp.Items) * sp.Rank
	}
	return sp.NFeat
}

// TupleWidth returns values per training tuple.
func (sp GoldenSpec) TupleWidth() int {
	if sp.Kind == algos.KindLRMF {
		return 3
	}
	return sp.NFeat + 1
}

// Algorithm returns the ml-package baseline for the spec.
func (sp GoldenSpec) Algorithm() ml.Algorithm {
	switch sp.Kind {
	case algos.KindLinear:
		return ml.Linear{NFeatures: sp.NFeat, LR: sp.LR}
	case algos.KindLogistic:
		return ml.Logistic{NFeatures: sp.NFeat, LR: sp.LR}
	case algos.KindSVM:
		return ml.SVM{NFeatures: sp.NFeat, LR: sp.LR, Lambda: sp.Lambda}
	default:
		return ml.LRMF{Users: sp.Users, Items: sp.Items, Rank: sp.Rank, LR: sp.LR}
	}
}

// grad computes one tuple's gradient in DSL evaluation order:
// s = Σ mo[i]*in[i] accumulated left-to-right, then the kind-specific
// gradient expression exactly as algos builds it.
func (sp GoldenSpec) grad(model, tuple, grad []float64) error {
	nf := sp.NFeat
	s := 0.0
	for i := 0; i < nf; i++ {
		s += model[i] * tuple[i]
	}
	out := tuple[nf]
	switch sp.Kind {
	case algos.KindLinear:
		er := s - out
		for i := 0; i < nf; i++ {
			grad[i] = er * tuple[i]
		}
	case algos.KindLogistic:
		p := 1 / (1 + math.Exp(-s))
		er := p - out
		for i := 0; i < nf; i++ {
			grad[i] = er * tuple[i]
		}
	case algos.KindSVM:
		margin := out * s
		ind := 0.0
		if margin < 1 {
			ind = 1
		}
		for i := 0; i < nf; i++ {
			// Sub(Mul(lam, mo), Mul(ind, Mul(out, in))).
			grad[i] = sp.Lambda*model[i] - ind*(out*tuple[i])
		}
	default:
		return fmt.Errorf("verify: grad undefined for kind %q", sp.Kind)
	}
	return nil
}

// Train runs the golden trainer in place on model.
func (sp GoldenSpec) Train(model []float64, tuples [][]float64) error {
	if len(model) != sp.ModelSize() {
		return fmt.Errorf("verify: model size %d, want %d", len(model), sp.ModelSize())
	}
	if sp.Kind == algos.KindLRMF {
		return sp.trainLRMF(model, tuples)
	}
	bs := sp.MergeCoef
	if bs < 1 {
		bs = 1
	}
	epochs := sp.Epochs
	if epochs < 1 {
		epochs = 1
	}
	g := make([]float64, sp.NFeat)
	acc := make([]float64, sp.NFeat)
	for e := 0; e < epochs; e++ {
		for at := 0; at < len(tuples); at += bs {
			end := at + bs
			if end > len(tuples) {
				end = len(tuples)
			}
			batch := tuples[at:end]
			if bs == 1 {
				// Plain SGD: update per tuple.
				for _, t := range batch {
					if err := sp.grad(model, t, g); err != nil {
						return err
					}
					for i := range model {
						// Sub(mo, Mul(lr, grad)).
						model[i] = model[i] - sp.LR*g[i]
					}
				}
				continue
			}
			// Merged batch: gradients all from the batch-entry model,
			// summed in tuple order, one post-merge update.
			for ti, t := range batch {
				if err := sp.grad(model, t, g); err != nil {
					return err
				}
				if ti == 0 {
					copy(acc, g)
				} else {
					for i := range acc {
						acc[i] = acc[i] + g[i]
					}
				}
			}
			for i := range model {
				model[i] = model[i] - sp.LR*acc[i]
			}
		}
	}
	return nil
}

// trainLRMF is the row-update golden path: gather both factor rows,
// compute both updates from the pre-update rows, then write user row
// before item row (the graph's RowUpdates order).
func (sp GoldenSpec) trainLRMF(model []float64, tuples [][]float64) error {
	epochs := sp.Epochs
	if epochs < 1 {
		epochs = 1
	}
	rank := sp.Rank
	rows := sp.Users + sp.Items
	ur := make([]float64, rank)
	vr := make([]float64, rank)
	for e := 0; e < epochs; e++ {
		for _, t := range tuples {
			u, v := int(math.Round(t[0])), int(math.Round(t[1]))
			if u < 0 || u >= rows || v < 0 || v >= rows {
				return fmt.Errorf("verify: LRMF row index (%d,%d) out of [0,%d)", u, v, rows)
			}
			copy(ur, model[u*rank:(u+1)*rank])
			copy(vr, model[v*rank:(v+1)*rank])
			pred := 0.0
			for k := 0; k < rank; k++ {
				pred += ur[k] * vr[k]
			}
			e := pred - t[2]
			for k := 0; k < rank; k++ {
				// Sub(ur, Mul(lr, Mul(e, vr))).
				model[u*rank+k] = ur[k] - sp.LR*(e*vr[k])
			}
			for k := 0; k < rank; k++ {
				model[v*rank+k] = vr[k] - sp.LR*(e*ur[k])
			}
		}
	}
	return nil
}

// CompareModels checks |a-b| <= tol * (1 + max(|a|,|b|)) per parameter;
// tol 0 demands bit-identity.
func CompareModels(what string, a, b []float64, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("oracle C (%s): model sizes %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if tol == 0 {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return fmt.Errorf("oracle C (%s): param %d: %v != %v (bit-exact required)", what, i, a[i], b[i])
			}
			continue
		}
		scale := 1 + math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if math.Abs(a[i]-b[i]) > tol*scale || math.IsNaN(a[i]) != math.IsNaN(b[i]) {
			return fmt.Errorf("oracle C (%s): param %d: %v vs %v exceeds tol %g", what, i, a[i], b[i], tol)
		}
	}
	return nil
}

// EquivalenceOpt tunes CheckTrainingEquivalence.
type EquivalenceOpt struct {
	SkipEngine bool    // skip the float32 engine leg
	EngineTol  float64 // default 5e-3
	MLTol      float64 // default 1e-9
}

// CheckTrainingEquivalence runs the full Oracle C hierarchy for one
// (spec, init, tuples) instance.
func CheckTrainingEquivalence(sp GoldenSpec, init []float64, tuples [][]float64, opt EquivalenceOpt) error {
	if opt.EngineTol == 0 {
		opt.EngineTol = 5e-3
	}
	if opt.MLTol == 0 {
		opt.MLTol = 1e-9
	}
	for _, t := range tuples {
		if len(t) != sp.TupleWidth() {
			return fmt.Errorf("oracle C: tuple width %d, want %d", len(t), sp.TupleWidth())
		}
	}

	golden := append([]float64(nil), init...)
	if err := sp.Train(golden, tuples); err != nil {
		return err
	}

	// Leg 1: hDFG interpreter, bit-identical.
	a, err := algos.Build(sp.Kind, sp.Topology(), sp.Hyper())
	if err != nil {
		return err
	}
	graph, err := hdfg.Translate(a)
	if err != nil {
		return err
	}
	it, err := hdfg.NewInterp(graph, init)
	if err != nil {
		return err
	}
	if _, err := it.Train(tuples, sp.Epochs); err != nil {
		return fmt.Errorf("oracle C: interp: %w", err)
	}
	if err := CompareModels("golden vs interp", golden, it.Model(), 0); err != nil {
		return err
	}

	// Leg 2: ml baseline — plain SGD only (the baseline has no merge
	// batching), tight tolerance.
	if sp.MergeCoef <= 1 {
		mlModel := append([]float64(nil), init...)
		if err := ml.TrainSGD(sp.Algorithm(), mlModel, tuples, maxInt(sp.Epochs, 1)); err != nil {
			return fmt.Errorf("oracle C: ml: %w", err)
		}
		if err := CompareModels("golden vs ml", golden, mlModel, opt.MLTol); err != nil {
			return err
		}
	}

	// Leg 3: engine simulator (float32 datapath) on the hwgen design.
	if !opt.SkipEngine {
		prog, err := compiler.Compile(graph)
		if err != nil {
			return fmt.Errorf("oracle C: compile: %w", err)
		}
		design, err := hwgen.Generate(prog, hwgen.VU9P(), hwgen.Params{
			PageSize:  8192,
			MergeCoef: maxInt(sp.MergeCoef, 1),
			NumTuples: len(tuples),
		})
		if err != nil {
			return fmt.Errorf("oracle C: hwgen: %w", err)
		}
		m, err := engine.NewMachine(prog, design.Engine)
		if err != nil {
			return fmt.Errorf("oracle C: machine: %w", err)
		}
		init32 := make([]float32, len(init))
		for i, v := range init {
			init32[i] = float32(v)
		}
		if err := m.SetModel(init32); err != nil {
			return fmt.Errorf("oracle C: machine: %w", err)
		}
		t32 := make([][]float32, len(tuples))
		for i, t := range tuples {
			row := make([]float32, len(t))
			for j, v := range t {
				row[j] = float32(v)
			}
			t32[i] = row
		}
		if _, err := m.Train(t32, maxInt(sp.MergeCoef, 1), maxInt(sp.Epochs, 1)); err != nil {
			return fmt.Errorf("oracle C: machine train: %w", err)
		}
		got := make([]float64, len(golden))
		for i, v := range m.Model() {
			got[i] = float64(v)
		}
		if err := CompareModels("golden vs engine", golden, got, opt.EngineTol); err != nil {
			return err
		}
	}
	return nil
}

// CompareEngineStats demands identical modeled engine counters — the
// metamorphic check that executor restructurings (parallelism, caching)
// never change modeled time. A single dropped cycle charge fails it.
func CompareEngineStats(what string, a, b engine.Stats) error {
	if a != b {
		return fmt.Errorf("oracle C (%s): engine stats diverge:\n  a=%+v\n  b=%+v", what, a, b)
	}
	return nil
}

// CompareAccessStats is the access-engine counterpart.
func CompareAccessStats(what string, a, b accessengine.Stats) error {
	if a != b {
		return fmt.Errorf("oracle C (%s): access stats diverge:\n  a=%+v\n  b=%+v", what, a, b)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
