package dana

// Overhead guard for page checksums: training with VerifyChecksums on
// must cost < 5% extra wall time over a run with verification off. The
// checksum is one pass over each page at pool-read time (cold path), and
// stamping is lazy — once per mutated page, not per insert — so the
// real overhead is small; the gate catches a future change that puts
// checksumming on a per-pin or per-tuple path. The run is cold-cache
// each epoch (NoExtractCache plus a ColdCache before training) so the
// verify path actually executes.

import (
	"sort"
	"testing"
	"time"
)

func trainChecksumOnce(t *testing.T, verify bool) time.Duration {
	t.Helper()
	eng, err := Open(Config{
		PageSize: 32 << 10, PoolBytes: 128 << 20,
		Workers: 1, NoExtractCache: true, VerifyChecksums: verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.LoadWorkload("Remote Sensing LR", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(64)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(6)
	if err := eng.RegisterUDF(a, 64); err != nil {
		t.Fatal(err)
	}
	// Settle the process on a warm-up run, then measure a cold-cache
	// train so every page goes through the disk-read (and verify) path.
	if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	if err := eng.ColdCache(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func TestChecksumOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short mode")
	}
	// Compare minima, not medians: scheduler noise only ever adds time,
	// so the fastest round is the least-contaminated estimate. A
	// systematic regression shows up in every attempt, so a budget miss
	// is only fatal if it reproduces across independent measurements.
	measure := func() float64 {
		const rounds = 7
		var on, off []float64
		for i := 0; i < rounds; i++ {
			on = append(on, trainChecksumOnce(t, true).Seconds())
			off = append(off, trainChecksumOnce(t, false).Seconds())
		}
		best := func(xs []float64) float64 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return s[0]
		}
		mOn, mOff := best(on), best(off)
		t.Logf("checksums on %.3fms, off %.3fms, overhead %.2f%%", mOn*1e3, mOff*1e3, 100*(mOn/mOff-1))
		return mOn/mOff - 1
	}
	const budget = 0.05
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		if overhead = measure(); overhead <= budget {
			return
		}
	}
	t.Fatalf("checksum overhead %.2f%% exceeds the 5%% budget in 3 consecutive measurements",
		100*overhead)
}
