package lint

// Interprocedural layer, part 2: per-function summaries. Each declared
// function gets a small lattice of facts — does its body allocate on a
// hot (non-early-exit) path, does it spawn a goroutine, which of its
// parameters may escape into package-level state, which locks can it
// acquire — and the transitive closures of those facts are computed
// bottom-up over the call graph's strongly connected components, with a
// fixed point inside each SCC so recursion converges. Analyzers then
// consume whole-closure facts at a single call site: hotcall asks
// "does anything this call can reach allocate", tenantflow asks "does
// this callee leak its argument into a package-level var", golifecycle
// asks "what locks does this callee take while I hold mine".
//
// The facts are monotone booleans and sets, so the fixed point
// terminates; all iteration is over sorted FuncIDs for determinism.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Summary is the interprocedural fact set of one function.
type Summary struct {
	ID string

	// AllocWhat is non-empty when the body itself contains a hot-path
	// allocation that is neither inside an early-exit branch nor
	// covered by an audited hotalloc/hotcall suppression; AllocPos is
	// the first such site.
	AllocWhat string
	AllocPos  token.Pos

	// Spawns marks a go statement in the body.
	Spawns   bool
	SpawnPos token.Pos

	// TransAllocs / TransSpawns close AllocWhat / Spawns over all
	// non-cold call edges; TransAllocDesc renders the offending chain
	// for diagnostics ("mid → leafAlloc: make at file.go:12").
	TransAllocs    bool
	TransAllocDesc string
	TransSpawns    bool
	TransSpawnDesc string

	// Escapes maps parameter index (receiver = -1) to a description of
	// how that parameter may reach package-level state, directly or
	// through callees.
	Escapes map[int]string

	// TransLocks is the sorted set of lock IDs this function may
	// acquire, directly or through callees.
	TransLocks []string

	transLockSet map[string]bool
}

// LockEdge records one "acquired while holding" pair in the module's
// lock-order graph.
type LockEdge struct {
	From, To string // lock IDs: To acquired while From held
	Pos      token.Pos
	Fn       string // FuncID where the acquisition happens
}

// buildSummaries computes direct facts per function, then closes them
// over Tarjan SCCs in reverse topological order (callees first), and
// finally assembles the module lock-order graph.
func buildSummaries(m *Module) {
	for _, id := range m.funcIDs {
		fi := m.Funcs[id]
		s := &Summary{ID: id, Escapes: map[int]string{}, transLockSet: map[string]bool{}}
		s.AllocPos, s.AllocWhat = bodyAllocation(fi.Pkg, fi.Decl, m.sups[fi.Pkg])
		s.SpawnPos, s.Spawns = bodySpawn(fi.Decl)
		for _, acq := range fi.lockAcqs {
			s.transLockSet[acq.id] = true
		}
		m.Summaries[id] = s
	}

	for _, scc := range tarjanSCCs(m) {
		for changed := true; changed; {
			changed = false
			for _, id := range scc {
				if m.closeSummary(id) {
					changed = true
				}
			}
		}
		// Escapes need the callee summaries stabilized first, then a
		// fixed point of their own within the SCC (a recursive helper
		// can leak its parameter through itself).
		for changed := true; changed; {
			changed = false
			for _, id := range scc {
				if m.computeEscapes(id) {
					changed = true
				}
			}
		}
	}

	for _, id := range m.funcIDs {
		s := m.Summaries[id]
		s.TransLocks = make([]string, 0, len(s.transLockSet))
		for l := range s.transLockSet {
			s.TransLocks = append(s.TransLocks, l)
		}
		sort.Strings(s.TransLocks)
	}
	m.buildLockEdges()
}

// closeSummary propagates callee facts into id's summary; reports
// whether anything changed.
func (m *Module) closeSummary(id string) bool {
	fi := m.Funcs[id]
	s := m.Summaries[id]
	changed := false
	if !s.TransAllocs && s.AllocWhat != "" {
		s.TransAllocs = true
		s.TransAllocDesc = fmt.Sprintf("%s at %s", s.AllocWhat, m.Fset.Position(s.AllocPos))
		changed = true
	}
	if !s.TransSpawns && s.Spawns {
		s.TransSpawns = true
		s.TransSpawnDesc = fmt.Sprintf("go statement at %s", m.Fset.Position(s.SpawnPos))
		changed = true
	}
	for _, site := range fi.Calls {
		if site.Cold {
			continue // early-exit branch: does not disprove steady state
		}
		// An audited call site (//danalint:ignore hotcall at the call)
		// is a reviewed boundary: the callee's allocations are
		// accounted for there and do not propagate to callers.
		if m.sups[fi.Pkg].suppressed(HotCall.Name, m.Fset.Position(site.Pos)) {
			continue
		}
		for _, callee := range site.Callees {
			if cs, ok := m.Summaries[callee]; ok {
				if cs.TransAllocs && !s.TransAllocs {
					s.TransAllocs = true
					s.TransAllocDesc = shortFuncID(callee) + " → " + cs.TransAllocDesc
					changed = true
				}
				if cs.TransSpawns && !s.TransSpawns {
					s.TransSpawns = true
					s.TransSpawnDesc = shortFuncID(callee) + " → " + cs.TransSpawnDesc
					changed = true
				}
				continue
			}
			if !s.TransAllocs {
				if why := externAllocs(callee); why != "" {
					s.TransAllocs = true
					s.TransAllocDesc = fmt.Sprintf("%s (%s) at %s", shortFuncID(callee), why, m.Fset.Position(site.Pos))
					changed = true
				}
			}
		}
	}
	// Lock closure runs over every site (cold or not: an error-path
	// acquisition still participates in ordering).
	for _, site := range fi.Calls {
		for _, callee := range site.Callees {
			if cs, ok := m.Summaries[callee]; ok {
				for l := range cs.transLockSet {
					if !s.transLockSet[l] {
						s.transLockSet[l] = true
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// computeEscapes re-runs the intra-function taint pass for id with the
// current callee summaries; reports whether the escape set grew.
func (m *Module) computeEscapes(id string) bool {
	fi := m.Funcs[id]
	s := m.Summaries[id]
	seeds := map[types.Object]taintOrigin{}
	sig := fi.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		seeds[recv] = taintOrigin{label: recv.Name(), param: -1}
	}
	// The parameter objects in the AST are resolved through Defs on the
	// field names; the signature vars are the same objects.
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		seeds[p] = taintOrigin{label: p.Name(), param: i}
	}
	grew := false
	record := func(idx int, why string) {
		if idx < -1 {
			return
		}
		if _, ok := s.Escapes[idx]; !ok {
			s.Escapes[idx] = why
			grew = true
		}
	}
	runTaint(fi, taintConfig{
		pkg:   fi.Pkg,
		mod:   m,
		seeds: seeds,
		sinkGlobal: func(origins []taintOrigin, obj types.Object, pos token.Pos) {
			for _, o := range origins {
				record(o.param, fmt.Sprintf("stores it into package-level %s", obj.Name()))
			}
		},
		sinkCall: func(origins []taintOrigin, calleeID, why string, pos token.Pos) {
			for _, o := range origins {
				record(o.param, fmt.Sprintf("passes it to %s, which %s", shortFuncID(calleeID), why))
			}
		},
	})
	return grew
}

// buildLockEdges assembles the module lock-order graph: intra-function
// acquisition pairs plus, for every call site, edges from the locks
// held at the site to everything the callee's closure can acquire.
func (m *Module) buildLockEdges() {
	for _, id := range m.funcIDs {
		fi := m.Funcs[id]
		for _, acq := range fi.lockAcqs {
			for _, h := range acq.held {
				m.LockEdges = append(m.LockEdges, LockEdge{From: h, To: acq.id, Pos: acq.pos, Fn: id})
			}
		}
		for _, site := range fi.Calls {
			if len(site.Held) == 0 {
				continue
			}
			for _, callee := range site.Callees {
				cs, ok := m.Summaries[callee]
				if !ok {
					continue
				}
				for _, l := range sortedKeys(cs.transLockSet) {
					for _, h := range site.Held {
						if h != l {
							m.LockEdges = append(m.LockEdges, LockEdge{From: h, To: l, Pos: site.Pos, Fn: id})
						}
					}
				}
			}
		}
	}
}

// tarjanSCCs returns the call graph's strongly connected components in
// reverse topological order (every edge out of a component points to an
// earlier one), restricted to module-internal edges.
func tarjanSCCs(m *Module) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range m.calleesOf(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, id := range m.funcIDs {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}
	return sccs
}

// calleesOf lists the module-internal callees of id, sorted, deduped.
func (m *Module) calleesOf(id string) []string {
	fi := m.Funcs[id]
	seen := map[string]bool{}
	var out []string
	for _, site := range fi.Calls {
		for _, c := range site.Callees {
			if _, ok := m.Funcs[c]; ok && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}

// bodyAllocation scans one body for the first allocation that is hot
// (not in an early-exit branch) and unaudited (no hotalloc/hotcall
// suppression on its line). The construct set mirrors hotalloc: make,
// new, non-self append, slice/map composite literals, &literal,
// non-deferred func literals, string concatenation and conversions.
func bodyAllocation(pkg *Package, fn *ast.FuncDecl, sup suppressions) (token.Pos, string) {
	selfAppends := map[*ast.CallExpr]bool{}
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) || !isBuiltinCallInfo(pkg.TypesInfo, call, "append") || len(call.Args) == 0 {
					continue
				}
				if exprText(stripReslice(call.Args[0])) == exprText(n.Lhs[i]) {
					selfAppends[call] = true
				}
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		}
		return true
	})

	var firstPos token.Pos
	var firstWhat string
	report := func(pos token.Pos, what string, stack []ast.Node, n ast.Node) {
		if firstWhat != "" {
			return
		}
		if coldSite(n, stack) {
			return
		}
		p := pkg.Fset.Position(pos)
		if sup.suppressed(HotAlloc.Name, p) || sup.suppressed(HotCall.Name, p) {
			return // audited: amortized or pool-fallback allocation
		}
		firstPos, firstWhat = pos, what
	}
	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if firstWhat != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						report(n.Pos(), "make", stack, n)
					case "new":
						report(n.Pos(), "new", stack, n)
					case "append":
						if !selfAppends[n] {
							report(n.Pos(), "append to a fresh slice", stack, n)
						}
					}
					return true
				}
			}
			if tv, ok := pkg.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				dst, src := tv.Type, pkg.TypesInfo.Types[n.Args[0]].Type
				if src != nil && ((isStringUnderlying(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringUnderlying(src))) {
					report(n.Pos(), "string conversion", stack, n)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.TypesInfo.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal", stack, n)
				case *types.Map:
					report(n.Pos(), "map literal", stack, n)
				}
			}
		case *ast.FuncLit:
			if !deferredLits[n] {
				report(n.Pos(), "func literal (closure)", stack, n)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					report(n.Pos(), "&composite literal", stack, n)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringUnderlying(pkg.TypesInfo.Types[n.X].Type) {
				report(n.Pos(), "string concatenation", stack, n)
			}
		}
		return true
	})
	return firstPos, firstWhat
}

// bodySpawn reports the first go statement in the body.
func bodySpawn(fn *ast.FuncDecl) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok && !found {
			pos, found = g.Pos(), true
		}
		return !found
	})
	return pos, found
}

// externAllocFree lists external (stdlib) functions and methods proven
// allocation-free, keyed by normalized name ("sync.Mutex.Lock"). The
// list is an allowlist: anything external and unlisted counts as
// allocating, so the hotcall gate fails closed and the fix is a
// reviewed one-line addition here.
var externAllocFree = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Sleep": true,
	"time.Time.UnixNano": true, "time.Time.Sub": true, "time.Time.Unix": true,
	"time.Time.IsZero": true, "time.Time.Before": true, "time.Time.After": true,
	"time.Time.Equal":           true,
	"time.Duration.Nanoseconds": true, "time.Duration.Seconds": true,
	"time.Duration.Microseconds": true, "time.Duration.Milliseconds": true,
	"sync.Mutex.Lock": true, "sync.Mutex.Unlock": true,
	"sync.RWMutex.Lock": true, "sync.RWMutex.Unlock": true,
	"sync.RWMutex.RLock": true, "sync.RWMutex.RUnlock": true,
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true, "sync.WaitGroup.Wait": true,
	"sync.Once.Do":    true,
	"errors.Is":       true,
	"errors.Unwrap":   true,
	"sort.SearchInts": true,
}

// externAllocFreePkgs are packages whose exported API is wholly
// allocation-free (pure arithmetic or atomic operations).
var externAllocFreePkgs = map[string]bool{
	"math": true, "math/bits": true, "sync/atomic": true,
	"encoding/binary": true, "unicode/utf8": true,
}

// externAllocs classifies an external callee: empty string means proven
// allocation-free, otherwise the reason it counts as allocating.
func externAllocs(id string) string {
	key, pkg := normalizeExtern(id)
	if externAllocFree[key] || externAllocFreePkgs[pkg] {
		return ""
	}
	return "not allowlisted as allocation-free"
}

// normalizeExtern maps a FuncID to an allowlist key and its package
// path: "(*sync.Mutex).Lock" → ("sync.Mutex.Lock", "sync").
func normalizeExtern(id string) (key, pkg string) {
	key = strings.NewReplacer("(*", "", "(", "", ")", "").Replace(id)
	if i := strings.LastIndex(key, "/"); i >= 0 {
		// Trim directory components: "encoding/binary.littleEndian.Uint64"
		// keys by its base but keeps the full path for the pkg test.
		pkg = key[:i+1]
		key = key[i+1:]
	}
	dot := strings.Index(key, ".")
	if dot < 0 {
		return key, pkg + key
	}
	return key, pkg + key[:dot]
}

// shortFuncID trims directory components of import paths embedded in a
// FuncID, keeping only the package base name:
// "(*dana/internal/bufpool.Pool).Pin" → "(*bufpool.Pool).Pin".
func shortFuncID(id string) string {
	var b strings.Builder
	start := 0
	for i := 0; i < len(id); i++ {
		switch id[i] {
		case '/':
			start = i + 1
		case '(', '*', ')', '.', ' ':
			b.WriteString(id[start : i+1])
			start = i + 1
		}
	}
	b.WriteString(id[start:])
	return b.String()
}

// sortedKeys returns map keys in sorted order (determinism).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// isBuiltinCallInfo is isBuiltinCall without a Pass (module build runs
// before any Pass exists).
func isBuiltinCallInfo(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
