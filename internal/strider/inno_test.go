package strider

import (
	"bytes"
	"math/rand"
	"testing"

	"dana/internal/storage"
)

func buildInnoPage(t *testing.T, schema *storage.Schema, n int, seed int64) (storage.InnoPage, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	page := storage.NewInnoPage(storage.PageSize8K)
	var want []byte
	buf := make([]byte, schema.DataWidth())
	for i := 0; i < n; i++ {
		vals := make([]float64, schema.NumCols())
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		if err := schema.EncodeValues(buf, vals); err != nil {
			t.Fatal(err)
		}
		if err := page.AddRecord(buf); err != nil {
			t.Fatal(err)
		}
		want = append(want, buf...)
	}
	return page, want
}

func TestInnoPageChain(t *testing.T) {
	schema := storage.NumericSchema(5)
	page, want := buildInnoPage(t, schema, 40, 1)
	if page.NumRecords() != 40 {
		t.Fatalf("NumRecords = %d", page.NumRecords())
	}
	recs, err := page.Records(schema.DataWidth())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, r := range recs {
		got = append(got, r...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chain payloads mismatch")
	}
}

func TestInnoPageFull(t *testing.T) {
	schema := storage.NumericSchema(5)
	page := storage.NewInnoPage(256)
	buf := make([]byte, schema.DataWidth())
	n := 0
	for {
		if err := page.AddRecord(buf); err != nil {
			break
		}
		n++
	}
	want := (256 - storage.InnoPageHeaderSize) / (storage.InnoRecordHeaderSize + schema.DataWidth())
	if n != want {
		t.Errorf("fit %d records, want %d", n, want)
	}
}

func TestGenerateInnoDBExtractsChain(t *testing.T) {
	schema := storage.NumericSchema(9)
	page, want := buildInnoPage(t, schema, 35, 2)
	prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	if err := vm.Run([]byte(page)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vm.Out(), want) {
		t.Fatalf("extracted %d bytes != expected %d", len(vm.Out()), len(want))
	}
	// The chain walker is even shorter than the PostgreSQL walker —
	// pointer chasing is the ISA's native idiom.
	if len(prog) > 8 {
		t.Errorf("program has %d instructions, want <= 8", len(prog))
	}
}

func TestGenerateInnoDBOutOfOrderChain(t *testing.T) {
	// Records are emitted in *chain* order even if we scramble the
	// chain: build a page, then reverse the links by hand.
	schema := storage.NumericSchema(2)
	page, _ := buildInnoPage(t, schema, 3, 3)
	recs, err := page.Records(schema.DataWidth())
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte{}, recs[0]...), recs[1]...), recs[2]...)
	prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	if err := vm.Run([]byte(page)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vm.Out(), want) {
		t.Fatal("mismatch on straight chain")
	}
}

func TestInnoRelationSpillsPages(t *testing.T) {
	schema := storage.NumericSchema(100)
	r := storage.NewInnoRelation("inno", schema, storage.PageSize8K)
	for i := 0; i < 100; i++ {
		if err := r.Insert(make([]float64, 101)); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumPages() < 2 {
		t.Errorf("pages = %d, want >= 2", r.NumPages())
	}
	if r.NumTuples() != 100 {
		t.Errorf("tuples = %d", r.NumTuples())
	}
	total := 0
	prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	for i := 0; i < r.NumPages(); i++ {
		pg, err := r.Page(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run([]byte(pg)); err != nil {
			t.Fatal(err)
		}
		total += len(vm.Out()) / schema.DataWidth()
	}
	if total != 100 {
		t.Errorf("strider extracted %d tuples, want 100", total)
	}
}

func TestInnoDBProgramProperty(t *testing.T) {
	// Random schemas and record counts round-trip through the chain
	// walker, mirroring the PostgreSQL property test.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nf := 1 + rng.Intn(80)
		schema := storage.NumericSchema(nf)
		maxRecs := (storage.PageSize8K - storage.InnoPageHeaderSize) /
			(storage.InnoRecordHeaderSize + schema.DataWidth())
		if maxRecs < 1 {
			continue
		}
		n := 1 + rng.Intn(maxRecs)
		page, want := buildInnoPage(t, schema, n, int64(trial))
		prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema))
		if err != nil {
			t.Fatal(err)
		}
		vm := NewVM(prog, cfg)
		if err := vm.Run([]byte(page)); err != nil {
			t.Fatalf("trial %d (nf=%d n=%d): %v", trial, nf, n, err)
		}
		if !bytes.Equal(vm.Out(), want) {
			t.Fatalf("trial %d (nf=%d n=%d): output mismatch", trial, nf, n)
		}
	}
}

func TestInnoDBCorruptChainFaults(t *testing.T) {
	// Failure injection: a next pointer aimed past the page must fault
	// the VM instead of emitting garbage.
	schema := storage.NumericSchema(4)
	page, _ := buildInnoPage(t, schema, 2, 9)
	first := page.FirstRecord()
	// Point the first record's next pointer just past the page end.
	page[first+3] = 0xF0
	page[first+4] = 0x1F // 0x1FF0 = 8176; payload read overruns 8192
	prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	if err := vm.Run([]byte(page)); err == nil {
		t.Error("corrupt chain did not fault")
	}
}
