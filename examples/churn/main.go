// Churn: the paper's motivating scenario (§1, Example 1) — an analyst
// keeps customer data in PostgreSQL and trains a classifier over
// dozens of features without leaving the database or writing Verilog.
//
// This example loads the Remote Sensing LR workload (54 features,
// logistic regression) at small scale, trains it three ways — DAnA's
// accelerator, MADlib-style single-threaded IGD, and Greenplum-style
// 8-segment parallel IGD — and compares learned quality and cost.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"dana"
)

func main() {
	eng, err := dana.Open(dana.Config{PageSize: 32 << 10, PoolBytes: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}

	ds, err := eng.LoadWorkload("Remote Sensing LR", 0.01, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer table %q: %d tuples, %d features, %d pages\n",
		ds.Rel.Name, ds.Tuples, ds.Topology[0], ds.Rel.NumPages())

	const epochs = 5

	// DAnA: build the logistic-regression UDF with a 64-way merge and
	// train on the simulated FPGA.
	algo, err := ds.DSLAlgo(64)
	if err != nil {
		log.Fatal(err)
	}
	algo.SetEpochs(epochs)
	if err := eng.RegisterUDF(algo, 64); err != nil {
		log.Fatal(err)
	}
	acc, err := eng.Train(algo.Name, ds.Rel.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDAnA: %s\n", acc.Design)
	fmt.Printf("  %d engine cycles, %d strider cycles, simulated %.4fs\n",
		acc.Engine.Cycles, acc.Access.Cycles, acc.SimulatedSeconds)

	// MADlib baseline: same algorithm as an in-database aggregate.
	ref := dana.LogisticRegression{NFeatures: ds.Topology[0], LR: ds.Workload.LR}
	mad, err := eng.TrainMADlib(ds.Rel.Name, ref, epochs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMADlib+PostgreSQL: %d tuple updates, final loss %.4f\n", mad.Tuples, mad.FinalLoss)

	// Greenplum baseline: 8 segments with per-epoch model averaging.
	gp, err := eng.TrainGreenplum(ds.Rel.Name, ref, 8, epochs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Greenplum (8 segments): final loss %.4f\n", gp.FinalLoss)

	// Compare classification agreement between the accelerator's
	// float32 model and the float64 reference.
	agree, total := 0, 0
	var tuples [][]float64
	res, err := eng.SQL("SELECT * FROM " + ds.Rel.Name + " LIMIT 2000")
	if err != nil {
		log.Fatal(err)
	}
	tuples = res.Rows
	nf := ds.Topology[0]
	for _, tup := range tuples {
		var sAcc, sRef float64
		for j := 0; j < nf; j++ {
			sAcc += float64(acc.Model[j]) * tup[j]
			sRef += mad.Model[j] * tup[j]
		}
		if (sAcc > 0) == (sRef > 0) {
			agree++
		}
		total++
	}
	fmt.Printf("\naccelerator vs MADlib prediction agreement: %d/%d (%.1f%%)\n",
		agree, total, 100*float64(agree)/float64(total))
	cpuSec := float64(mad.Tuples) * (eng.CostParams().TupleBaseSec +
		float64(nf+1)*eng.CostParams().ColumnDeformSec)
	pipeSec := acc.SimulatedSeconds - eng.CostParams().SetupSec
	fmt.Printf("modeled CPU time %.4fs vs accelerator pipeline %.4fs (+%.2fs one-time setup)\n",
		cpuSec, pipeSec, eng.CostParams().SetupSec)
}
