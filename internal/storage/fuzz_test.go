package storage

import (
	"math/rand"
	"testing"

	"dana/internal/fuzzcorpus"
)

// pageDecodeSeeds builds the committed corpus for FuzzPageDecode: real
// formed pages (plain, nulls, varlena tails, deletions) for both
// layouts, truncated and whole.
func pageDecodeSeeds(tb testing.TB) [][]byte {
	rng := rand.New(rand.NewSource(99))
	var seeds [][]byte

	s := NumericSchema(5)
	page := NewPage(PageSize8K, 0)
	for i := 0; i < 6; i++ {
		vals := make([]float64, s.NumCols())
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		raw, err := EncodeTuple(s, vals, uint32(i+2), TID{Item: uint16(i)})
		if err != nil {
			tb.Fatal(err)
		}
		if i == 4 {
			raw, err = AppendVarlena(raw, []byte("trailing varlena datum"))
			if err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := page.AddItem(raw); err != nil {
			tb.Fatal(err)
		}
	}
	if err := page.DeleteItem(2); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, []byte(page[:1024]), []byte(page[:PageHeaderSize+3]))

	// A page of null-bitmap tuples at a bitmap byte boundary.
	cols := make([]Column, 9)
	for i := range cols {
		cols[i] = Column{Name: string(rune('a' + i)), Type: TFloat64}
	}
	ns := NewSchema(cols...)
	npage := NewPage(PageSize8K, 0)
	for i := 0; i < 3; i++ {
		vals := make([]float64, 9)
		nulls := make([]bool, 9)
		nulls[i] = true
		nulls[8-i] = true
		raw, err := EncodeTupleWithNulls(ns, vals, nulls, 2, TID{})
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := npage.AddItem(raw); err != nil {
			tb.Fatal(err)
		}
	}
	seeds = append(seeds, []byte(npage[:1024]))

	// An InnoDB page.
	ipage := NewInnoPage(PageSize8K)
	buf := make([]byte, s.DataWidth())
	for i := 0; i < 4; i++ {
		vals := make([]float64, s.NumCols())
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		if err := s.EncodeValues(buf, vals); err != nil {
			tb.Fatal(err)
		}
		if err := ipage.AddRecord(buf); err != nil {
			tb.Fatal(err)
		}
	}
	seeds = append(seeds, []byte(ipage[:512]))
	return seeds
}

// FuzzPageDecode throws arbitrary bytes at every storage reader: page
// validation, line pointers, tuple headers, both decode paths, varlena,
// and the InnoDB chain walker. All must return errors on garbage, never
// panic or over-read.
func FuzzPageDecode(f *testing.F) {
	for _, s := range pageDecodeSeeds(f) {
		f.Add(s)
	}
	schemas := []*Schema{
		NumericSchema(5),
		NewSchema(
			Column{Name: "a", Type: TInt32},
			Column{Name: "b", Type: TFloat64},
			Column{Name: "c", Type: TInt64},
			Column{Name: "d", Type: TFloat32},
		),
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		page := Page(data)
		_ = page.Validate()
		if len(data) >= PageHeaderSize {
			for i := 0; i < page.NumItems(); i++ {
				id, err := page.ItemID(i)
				if err != nil {
					continue
				}
				_ = id
				raw, err := page.Item(i)
				if err != nil {
					continue
				}
				if m, err := DecodeTupleMeta(raw); err == nil {
					_ = m.NAttrs()
					_, _ = TupleData(raw)
				}
				for _, s := range schemas {
					_, _ = DecodeTuple(s, nil, raw)
					_, _, _ = DecodeTupleWithNulls(s, raw)
				}
			}
		}
		_, _, _ = DecodeVarlena(data)
		ipage := InnoPage(data)
		for _, w := range []int{0, 8, 40} {
			_, _ = ipage.Records(w)
		}
	})
}

// TestWritePageDecodeCorpus regenerates the committed seed corpus when
// DANA_WRITE_FUZZ_CORPUS is set.
func TestWritePageDecodeCorpus(t *testing.T) {
	if !fuzzcorpus.ShouldWrite() {
		t.Skipf("set %s=1 to regenerate the corpus", fuzzcorpus.WriteEnv)
	}
	if err := fuzzcorpus.WriteBytes("testdata/fuzz/FuzzPageDecode", pageDecodeSeeds(t)); err != nil {
		t.Fatal(err)
	}
}
