package server

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dana/internal/cost"
)

// fakeEstimator prices synthetic jobs without compiling anything: the
// workload name is the configuration key, service and bytes come from
// fixed tables (defaults applied for unlisted names).
type fakeEstimator struct {
	svc   map[string]float64
	bytes map[string]int64
}

func (f *fakeEstimator) Estimate(spec JobSpec) (Estimate, error) {
	svc, ok := f.svc[spec.Workload]
	if !ok {
		svc = 1.0
	}
	b, ok := f.bytes[spec.Workload]
	if !ok {
		b = 1 << 20
	}
	return Estimate{Key: spec.Workload, ServiceSec: svc, Bytes: b}, nil
}

func testPlanConfig(tenants []string, instances int) PlanConfig {
	q := map[string]Quota{}
	for _, t := range tenants {
		q[t] = Quota{}
	}
	return PlanConfig{
		Instances: instances,
		Policy:    PolicySequenceAware,
		Cost:      cost.Default(),
		Quotas:    q,
	}
}

// synthLoad builds a seeded adversarial schedule over synthetic keys:
// Poisson arrivals, skewed keys, skewed tenants (tenant 0 floods).
func synthLoad(seed int64, tenants, jobs int, rate float64) ([]JobSpec, []string) {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	specs := make([]JobSpec, jobs)
	now := 0.0
	for j := range specs {
		now += rng.ExpFloat64() / rate
		ti := 0
		if rng.Float64() > 0.5 { // tenant 0 gets half the traffic
			ti = rng.Intn(tenants)
		}
		specs[j] = JobSpec{
			Tenant:    names[ti],
			Workload:  fmt.Sprintf("key%d", rng.Intn(3)),
			ArriveSec: now,
		}
	}
	return specs, names
}

func TestPlanDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		specs, names := synthLoad(seed, 4, 60, 8)
		cfg := testPlanConfig(names, 3)
		cfg.Quotas[names[0]] = Quota{MemBytes: 4 << 20, MaxInFlight: 2}
		a, err := BuildPlan(specs, &fakeEstimator{}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := BuildPlan(specs, &fakeEstimator{}, cfg)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ between identical replays", seed)
		}
	}
}

// TestAdmissionQuotaProperty sweeps seeded adversarial arrival orders
// and asserts, at every placement instant, that no tenant's running
// set ever exceeds its memory or VM quota.
func TestAdmissionQuotaProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		specs, names := synthLoad(seed, 3, 80, 16)
		cfg := testPlanConfig(names, 4)
		est := &fakeEstimator{
			svc:   map[string]float64{"key0": 0.5, "key1": 1.5, "key2": 0.2},
			bytes: map[string]int64{"key0": 3 << 20, "key1": 1 << 20, "key2": 2 << 20},
		}
		for _, n := range names {
			cfg.Quotas[n] = Quota{MemBytes: 4 << 20, MaxInFlight: 2}
		}
		plan, err := BuildPlan(specs, est, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(plan.Placements) != len(specs) {
			t.Fatalf("seed %d: %d placed of %d", seed, len(plan.Placements), len(specs))
		}
		for _, pl := range plan.Placements {
			var bytes int64
			jobs := 0
			for _, other := range plan.Placements {
				if other.Spec.Tenant != pl.Spec.Tenant {
					continue
				}
				if other.StartSec <= pl.StartSec && pl.StartSec < other.FinishSec {
					bytes += other.EstBytes
					jobs++
				}
			}
			q := cfg.Quotas[pl.Spec.Tenant]
			if bytes > q.MemBytes {
				t.Fatalf("seed %d: tenant %s holds %d bytes at t=%.3f (quota %d)",
					seed, pl.Spec.Tenant, bytes, pl.StartSec, q.MemBytes)
			}
			if jobs > q.MaxInFlight {
				t.Fatalf("seed %d: tenant %s runs %d jobs at t=%.3f (quota %d)",
					seed, pl.Spec.Tenant, jobs, pl.StartSec, q.MaxInFlight)
			}
			if pl.StartSec < pl.Spec.ArriveSec {
				t.Fatalf("seed %d: job %d starts before it arrives", seed, pl.Seq)
			}
		}
	}
}

// TestNoStarvation floods tenant a with same-key jobs while tenant b
// submits one job of a different configuration: fair-share plus the
// bounded affinity slack must serve b within a couple of service times,
// not after the flood.
func TestNoStarvation(t *testing.T) {
	var specs []JobSpec
	for i := 0; i < 50; i++ {
		specs = append(specs, JobSpec{Tenant: "a", Workload: "hot"})
	}
	specs = append(specs, JobSpec{Tenant: "b", Workload: "rare"})
	cfg := testPlanConfig([]string{"a", "b"}, 1)
	est := &fakeEstimator{svc: map[string]float64{"hot": 1, "rare": 1}}
	plan, err := BuildPlan(specs, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := plan.BySeq[len(specs)-1]
	bound := 2 * (1 + cfg.Cost.ReconfigureSec)
	if b.StartSec > bound {
		t.Fatalf("tenant b's only job starts at t=%.3f, starvation bound %.3f", b.StartSec, bound)
	}
	// And the flood still benefits from batching: tenant a's jobs after
	// the first mostly reuse the hot configuration.
	if plan.Reuses < 40 {
		t.Fatalf("expected heavy reuse on the flooded key, got %d/%d", plan.Reuses, len(specs))
	}
}

// TestSequenceAwareBeatsReconfigure: across seeds, the sequence-aware
// plan's makespan never exceeds the always-reconfigure plan's, and
// strictly beats it in aggregate.
func TestSequenceAwareBeatsReconfigure(t *testing.T) {
	wins, total := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		specs, names := synthLoad(seed, 4, 60, 8)
		est := &fakeEstimator{svc: map[string]float64{"key0": 0.3, "key1": 0.4, "key2": 0.5}}
		sa := testPlanConfig(names, 3)
		ar := sa
		ar.Policy = PolicyAlwaysReconfigure
		planSA, err := BuildPlan(specs, est, sa)
		if err != nil {
			t.Fatal(err)
		}
		planAR, err := BuildPlan(specs, est, ar)
		if err != nil {
			t.Fatal(err)
		}
		if planSA.Makespan > planAR.Makespan {
			t.Fatalf("seed %d: sequence-aware makespan %.3f > always-reconfigure %.3f",
				seed, planSA.Makespan, planAR.Makespan)
		}
		if planSA.Makespan < planAR.Makespan {
			wins++
		}
		if planAR.Reuses != 0 {
			t.Fatalf("seed %d: baseline must never reuse, got %d", seed, planAR.Reuses)
		}
		if planSA.Reuses == 0 {
			t.Fatalf("seed %d: sequence-aware found no reuse on a skewed load", seed)
		}
		total++
	}
	if wins < total/2 {
		t.Fatalf("sequence-aware strictly beat the baseline on only %d/%d seeds", wins, total)
	}
}

func TestPlanCarryOver(t *testing.T) {
	est := &fakeEstimator{}
	cfg := testPlanConfig([]string{"a"}, 1)
	p1, err := BuildPlan([]JobSpec{{Tenant: "a", Workload: "k"}}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.FinalKeys[0] != "k" {
		t.Fatalf("final key = %q, want k", p1.FinalKeys[0])
	}
	// A second batch starting with the carried key reuses immediately.
	cfg.InitialKeys = p1.FinalKeys
	cfg.InitialVT = p1.FinalVT
	p2, err := BuildPlan([]JobSpec{{Tenant: "a", Workload: "k"}}, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Reuses != 1 {
		t.Fatalf("carried configuration not reused: %+v", p2.Placements[0])
	}
}

func TestPlanTypedErrors(t *testing.T) {
	est := &fakeEstimator{bytes: map[string]int64{"big": 8 << 30}}
	cfg := testPlanConfig([]string{"a"}, 1)
	if _, err := BuildPlan([]JobSpec{{Tenant: "ghost", Workload: "k"}}, est, cfg); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v", err)
	}
	cfg.Quotas["a"] = Quota{MemBytes: 1 << 20}
	if _, err := BuildPlan([]JobSpec{{Tenant: "a", Workload: "big"}}, est, cfg); !errors.Is(err, ErrQuotaImpossible) {
		t.Fatalf("oversized job: got %v", err)
	}
	if _, err := BuildPlan(nil, est, PlanConfig{}); !errors.Is(err, ErrNoInstances) {
		t.Fatalf("zero instances: got %v", err)
	}
}
