package experiments

import (
	"math"
	"testing"
)

func TestPageSizeSweepIsFlat(t *testing.T) {
	rows, err := PageSizeSweep(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §7: "page size had no significant impact on the runtimes" — our
	// model must agree to within 10%.
	for _, r := range rows {
		for _, v := range []float64{r.PG8K, r.PG16K, r.GP8K, r.GP16K} {
			if math.Abs(v-1) > 0.10 {
				t.Errorf("%s: page-size sensitivity %v exceeds 10%%", r.Name, v)
			}
		}
	}
}

func TestBatchConvergenceMonotone(t *testing.T) {
	env := DefaultEnv()
	rows, err := BatchConvergence([]string{"Remote Sensing LR", "Patient"}, env, 0.002, 0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		e1 := r.Epochs[1]
		if e1 < 1 || e1 >= 200 {
			t.Errorf("%s: batch-1 epochs = %d (did not converge?)", r.Name, e1)
		}
		// Batched-gradient training needs at least as many epochs as
		// per-tuple IGD (supplementary tables: ratios 1x..56x).
		for _, b := range BatchSizes[1:] {
			if r.Epochs[b] < e1 {
				t.Errorf("%s: batch %d converged in %d epochs, faster than batch 1 (%d)",
					r.Name, b, r.Epochs[b], e1)
			}
		}
	}
}

func TestAblationsOrdering(t *testing.T) {
	rows, gm, err := Ablations(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The full design must dominate each ablation in geomean, and
	// tuple-granularity DMA must be the worst transfer strategy.
	if !(gm.Full >= gm.NoInterleave && gm.Full >= gm.TupleGranularity && gm.Full >= gm.NoStrider) {
		t.Errorf("full design not dominant: %s", FormatAblation(gm))
	}
	if gm.TupleGranularity >= gm.NoInterleave {
		t.Errorf("tuple-granularity DMA (%v) should lose to serialized page DMA (%v)",
			gm.TupleGranularity, gm.NoInterleave)
	}
	for _, r := range rows {
		if r.Full+1e-9 < r.NoInterleave {
			t.Errorf("%s: interleaving hurt (%v < %v)", r.Name, r.Full, r.NoInterleave)
		}
	}
}

func TestScorecardAllPass(t *testing.T) {
	rows, err := Scorecard(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("scorecard has %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OK() {
			t.Errorf("out of band: %s", r)
		}
	}
}

func TestSchedulerStudy(t *testing.T) {
	rows, err := SchedulerStudy(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Makespan > r.Serial || r.Makespan < r.CriticalPath {
			t.Errorf("%s: serial %d makespan %d critpath %d", r.Name, r.Serial, r.Makespan, r.CriticalPath)
		}
		if r.ILP < 1 {
			t.Errorf("%s: ILP %v < 1", r.Name, r.ILP)
		}
	}
}

func TestCustomDesignComparison(t *testing.T) {
	rows, err := CustomDesignComparison(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var ratios []float64
	for _, r := range rows {
		if r.DAnAGOPS <= 0 || r.CustomGOPS <= r.DAnAGOPS {
			t.Errorf("%s: GOPS dana=%v custom=%v", r.Design, r.DAnAGOPS, r.CustomGOPS)
		}
		ratios = append(ratios, r.SpeedRatio)
	}
	// §7.3: comparable performance overall — geomean near parity.
	gm := Geomean(ratios)
	if gm < 0.8 || gm > 1.3 {
		t.Errorf("geomean speed ratio %v, want near parity", gm)
	}
	// The paper's VU9P runs DSP arrays at 150 MHz: GOPS must be in a
	// physically plausible range (well under 1024 AUs x 150 MHz).
	for _, r := range rows {
		if r.DAnAGOPS > 1024*0.15 {
			t.Errorf("%s: impossible GOPS %v", r.Design, r.DAnAGOPS)
		}
	}
}
