// Package greenplum re-implements the paper's parallel baseline:
// MADlib running on an N-segment Greenplum. The training table is
// hash-partitioned across segments; each epoch every segment runs IGD
// over its shard in parallel from the shared model, and the coordinator
// merges the per-segment models by averaging (MADlib's distributed IGD
// semantics).
package greenplum

import (
	"fmt"

	"dana/internal/backend"
	"dana/internal/bufpool"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Stats summarizes a segmented training run.
type Stats struct {
	Segments  int
	Epochs    int
	Tuples    int64
	FinalLoss float64
	Pool      bufpool.Stats
}

// Cluster is a set of segments over one logical table.
type Cluster struct {
	Segments int
	Pool     *bufpool.Pool
	Rel      *storage.Relation
	Algo     ml.Algorithm

	shards [][][]float64 // per-segment tuple slices (materialized once)
}

// New builds a cluster; segments must be >= 1.
func New(pool *bufpool.Pool, rel *storage.Relation, algo ml.Algorithm, segments int) (*Cluster, error) {
	if segments < 1 {
		return nil, fmt.Errorf("greenplum: need >= 1 segment, got %d", segments)
	}
	if got, want := rel.Schema.NumCols(), algo.TupleWidth(); got != want {
		return nil, fmt.Errorf("greenplum: relation %q has %d columns, %s needs %d", rel.Name, got, algo.Name(), want)
	}
	return &Cluster{Segments: segments, Pool: pool, Rel: rel, Algo: algo}, nil
}

// distribute hash-partitions the table across the segments, reading it
// through the buffer pool (this is Greenplum's data loading).
func (c *Cluster) distribute() error {
	if c.shards != nil {
		return nil
	}
	c.shards = make([][][]float64, c.Segments)
	var vals []float64
	i := 0
	for pn := 0; pn < c.Rel.NumPages(); pn++ {
		pg, err := c.Pool.Pin(c.Rel.Name, uint32(pn))
		if err != nil {
			return err
		}
		for it := 0; it < pg.NumItems(); it++ {
			raw, err := pg.Item(it)
			if err != nil {
				c.Pool.Unpin(c.Rel.Name, uint32(pn))
				return err
			}
			vals = vals[:0]
			vals, err = storage.DecodeTuple(c.Rel.Schema, vals, raw)
			if err != nil {
				c.Pool.Unpin(c.Rel.Name, uint32(pn))
				return err
			}
			seg := i % c.Segments
			c.shards[seg] = append(c.shards[seg], append([]float64(nil), vals...))
			i++
		}
		if err := c.Pool.Unpin(c.Rel.Name, uint32(pn)); err != nil {
			return err
		}
	}
	return nil
}

// Train runs distributed IGD with per-epoch model averaging. The epoch
// semantics live in EpochShards (shared with the Sharded backend); each
// segment's trainer is the ml baseline's per-tuple Update, so the
// float64 operation sequence is the classic one, bit for bit.
func (c *Cluster) Train(epochs int) ([]float64, Stats, error) {
	if epochs < 1 {
		epochs = 1
	}
	if err := c.distribute(); err != nil {
		return nil, Stats{}, err
	}
	model := ml.InitModel(c.Algo, 1)
	inners := make([]backend.Trainer, c.Segments)
	for s := range inners {
		inners[s] = &mlTrainer{algo: c.Algo}
	}
	st := Stats{Segments: c.Segments}
	for e := 0; e < epochs; e++ {
		next, err := EpochShards(inners, model, c.shards)
		if err != nil {
			return nil, Stats{}, err
		}
		model = next
		for s := 0; s < c.Segments; s++ {
			st.Tuples += int64(len(c.shards[s]))
		}
		st.Epochs++
	}
	var sum float64
	var n int64
	for s := range c.shards {
		for _, tup := range c.shards[s] {
			sum += c.Algo.Loss(model, tup)
			n++
		}
	}
	if n > 0 {
		st.FinalLoss = sum / float64(n)
	}
	st.Pool = c.Pool.Stats()
	return model, st, nil
}
