package compiler

import (
	"strings"
	"testing"

	"dana/internal/dsl"
	"dana/internal/engine"
)

func schedCfg() engine.Config {
	return engine.Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}
}

func TestScheduleRespectsBounds(t *testing.T) {
	for _, build := range []func() *dsl.Algo{
		func() *dsl.Algo { return linearAlgo(32, 8, 0.01) },
		func() *dsl.Algo { return logisticAlgo(16, 4, 0.1) },
		func() *dsl.Algo { return svmAlgo(24, 8, 0.05, 0.01) },
		func() *dsl.Algo { return lrmfAlgo(12, 6, 0.05) },
	} {
		_, p := mustCompile(t, build())
		s := ScheduleProgram(p, schedCfg())
		if s.MakespanCycles > s.SerialCycles {
			t.Errorf("makespan %d > serial %d", s.MakespanCycles, s.SerialCycles)
		}
		if s.MakespanCycles < s.CriticalPathCycles {
			t.Errorf("makespan %d < critical path %d", s.MakespanCycles, s.CriticalPathCycles)
		}
		// Every instruction scheduled exactly once.
		seen := map[int]bool{}
		for _, step := range s.Steps {
			for _, i := range step {
				if seen[i] {
					t.Fatalf("instruction %d scheduled twice", i)
				}
				seen[i] = true
			}
		}
		if len(seen) != len(p.PerTuple) {
			t.Errorf("scheduled %d of %d instructions", len(seen), len(p.PerTuple))
		}
	}
}

func TestScheduleExposesParallelChains(t *testing.T) {
	// Two independent elementwise chains must overlap: makespan well
	// below serial.
	mk := func(base int) []engine.Instr {
		return []engine.Instr{
			{Kind: engine.KEW, Op: engine.AMul, Dst: engine.Slot{Base: base, Len: 8}, A: engine.Slot{Base: 0, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
			{Kind: engine.KEW, Op: engine.AAdd, Dst: engine.Slot{Base: base + 8, Len: 8}, A: engine.Slot{Base: base, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
		}
	}
	list := append(mk(16), mk(32)...)
	s := ScheduleList(list, engine.Slot{Base: 0, Len: 8}, schedCfg())
	if s.ILP() < 1.5 {
		t.Errorf("ILP = %.2f, want ~2 for two independent chains", s.ILP())
	}
	if len(s.Steps) != 2 {
		t.Errorf("steps = %d, want 2", len(s.Steps))
	}
}

func TestScheduleSerializesDependences(t *testing.T) {
	// A RAW chain cannot overlap.
	list := []engine.Instr{
		{Kind: engine.KEW, Op: engine.AMul, Dst: engine.Slot{Base: 16, Len: 8}, A: engine.Slot{Base: 0, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
		{Kind: engine.KEW, Op: engine.AAdd, Dst: engine.Slot{Base: 24, Len: 8}, A: engine.Slot{Base: 16, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
		{Kind: engine.KEW, Op: engine.ASub, Dst: engine.Slot{Base: 32, Len: 8}, A: engine.Slot{Base: 24, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
	}
	s := ScheduleList(list, engine.Slot{Base: 0, Len: 8}, schedCfg())
	if len(s.Steps) != 3 {
		t.Errorf("steps = %d, want 3 (pure chain)", len(s.Steps))
	}
	if s.MakespanCycles != s.SerialCycles || s.MakespanCycles != s.CriticalPathCycles {
		t.Errorf("chain: makespan %d serial %d critical %d should all match",
			s.MakespanCycles, s.SerialCycles, s.CriticalPathCycles)
	}
}

func TestScheduleWAWAndWAR(t *testing.T) {
	// i1 writes X, i2 reads X, i3 overwrites X: i3 must come after i2
	// (WAR) and after i1 (WAW).
	list := []engine.Instr{
		{Kind: engine.KEW, Op: engine.AMov, Dst: engine.Slot{Base: 16, Len: 8}, A: engine.Slot{Base: 0, Len: 8}},
		{Kind: engine.KEW, Op: engine.AAdd, Dst: engine.Slot{Base: 24, Len: 8}, A: engine.Slot{Base: 16, Len: 8}, B: engine.Slot{Base: 8, Len: 8}},
		{Kind: engine.KEW, Op: engine.AMov, Dst: engine.Slot{Base: 16, Len: 8}, A: engine.Slot{Base: 8, Len: 8}},
	}
	s := ScheduleList(list, engine.Slot{Base: 0, Len: 8}, schedCfg())
	pos := map[int]int{}
	for stepIdx, step := range s.Steps {
		for _, i := range step {
			pos[i] = stepIdx
		}
	}
	if !(pos[2] > pos[1] && pos[2] > pos[0]) {
		t.Errorf("hazard ordering violated: positions %v", pos)
	}
}

func TestScheduleMemoryControllerPort(t *testing.T) {
	// Two independent gathers cannot issue in the same step (single
	// memory-controller port).
	list := []engine.Instr{
		{Kind: engine.KGather, Dst: engine.Slot{Base: 16, Len: 4}, A: engine.Slot{Base: 8, Len: 1}, RowLen: 4},
		{Kind: engine.KGather, Dst: engine.Slot{Base: 20, Len: 4}, A: engine.Slot{Base: 9, Len: 1}, RowLen: 4},
	}
	s := ScheduleList(list, engine.Slot{Base: 0, Len: 8}, schedCfg())
	if len(s.Steps) != 2 {
		t.Errorf("steps = %d, want 2 (one gather per port per step)", len(s.Steps))
	}
}

func TestOperationMapRendering(t *testing.T) {
	_, p := mustCompile(t, linearAlgo(16, 4, 0.05))
	s := ScheduleProgram(p, schedCfg())
	m := OperationMap(p.PerTuple, s)
	for _, want := range []string{"step", "ILP", "serial"} {
		if !strings.Contains(m, want) {
			t.Errorf("operation map missing %q:\n%s", want, m)
		}
	}
}

func TestScheduleEmptyList(t *testing.T) {
	s := ScheduleList(nil, engine.Slot{}, schedCfg())
	if s.MakespanCycles != 0 || len(s.Steps) != 0 || s.ILP() != 1 {
		t.Errorf("empty schedule = %+v", s)
	}
}

func TestInstrCostMatchesEngineEstimate(t *testing.T) {
	// The scheduler's cost function must agree with engine.Estimate on
	// a whole program (sum over the per-tuple list).
	_, p := mustCompile(t, logisticAlgo(20, 8, 0.1))
	cfg := schedCfg()
	var sum int64
	for _, in := range p.PerTuple {
		sum += instrCost(in, cfg)
	}
	est := p.Estimate(cfg)
	// est.PerTuple adds the input-FIFO load and (for no-merge) model
	// write-back; subtract the load term to compare the list cost.
	load := int64((p.InputSlot.Len + 7) / 8)
	if est.PerTuple-load != sum {
		t.Errorf("scheduler serial cost %d != engine estimate %d", sum, est.PerTuple-load)
	}
}
