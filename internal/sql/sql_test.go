package sql

import (
	"strings"
	"testing"

	"dana/internal/bufpool"
	"dana/internal/storage"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	return NewDB(storage.PageSize8K, 1<<22, bufpool.DefaultDisk())
}

func TestParseCreateTable(t *testing.T) {
	s, err := Parse("CREATE TABLE pts (x float4, y double precision, n int)")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "pts" || len(ct.Cols) != 3 {
		t.Errorf("ct = %+v", ct)
	}
	if ct.Cols[1].Type != "double precision" {
		t.Errorf("col 1 type = %q", ct.Cols[1].Type)
	}
}

func TestParseSelectVariants(t *testing.T) {
	s, err := Parse("SELECT a, b FROM t WHERE a >= 1.5 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(Select)
	if len(sel.Columns) != 2 || sel.Where == nil || sel.Where.Op != ">=" || sel.Limit != 10 {
		t.Errorf("sel = %+v", sel)
	}
	s2, err := Parse("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !s2.(Select).CountAll {
		t.Error("CountAll not set")
	}
	s3, err := Parse("SELECT * FROM dana.linearR('training_data_table')")
	if err != nil {
		t.Fatal(err)
	}
	sel3 := s3.(Select)
	if sel3.UDF != "linearr" || sel3.UDFArg != "training_data_table" {
		t.Errorf("sel3 = %+v", sel3)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT FROM t",
		"CREATE TABLE (x int)",
		"INSERT INTO t VALUES (1,",
		"SELECT * FROM t WHERE a ! 3",
		"BOGUS",
		"SELECT * FROM t WHERE a = 'x'",
		"SELECT * FROM dana.f(t)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExecEndToEnd(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE pts (x float4, y float4, label float4)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO pts VALUES (1, 2, 0), (3, 4, 1), (5, 6, 1), (-1, 0, 0)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 4 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	res, err = db.Exec("SELECT x, label FROM pts WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 3 || res.Rows[1][0] != 5 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "x" || res.Cols[1] != "label" {
		t.Errorf("cols = %v", res.Cols)
	}
	res, err = db.Exec("SELECT * FROM pts LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Cols) != 3 {
		t.Errorf("limit result = %+v", res)
	}
}

func TestExecMultiStatementScript(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`
		CREATE TABLE a (x int);
		INSERT INTO a VALUES (1), (2), (3);
		SELECT COUNT(*) FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestExecErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("SELECT * FROM ghost"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.Exec("CREATE TABLE t (x int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (x int)"); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Error("wrong arity insert accepted")
	}
	if _, err := db.Exec("SELECT nope FROM t"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := db.Exec("SELECT * FROM dana.f('t')"); err == nil {
		t.Error("UDF without runner accepted")
	}
	if _, err := db.Exec("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop accepted")
	}
}

type fakeRunner struct{ udf, table string }

func (f *fakeRunner) RunUDF(udf, table string) (*Result, error) {
	f.udf, f.table = udf, table
	return &Result{Cols: []string{"model"}, Rows: [][]float64{{42}}}, nil
}

func TestUDFDispatch(t *testing.T) {
	db := newTestDB(t)
	fr := &fakeRunner{}
	db.Runner = fr
	res, err := db.Exec("SELECT * FROM dana.linearr('train')")
	if err != nil {
		t.Fatal(err)
	}
	if fr.udf != "linearr" || fr.table != "train" {
		t.Errorf("dispatched %q/%q", fr.udf, fr.table)
	}
	if res.Rows[0][0] != 42 {
		t.Errorf("result = %+v", res)
	}
}

func TestScanSpillsOverPool(t *testing.T) {
	// A pool much smaller than the relation still scans correctly
	// (eviction path) and records misses.
	db := NewDB(storage.PageSize8K, 4*storage.PageSize8K, bufpool.DefaultDisk())
	if _, err := db.Exec("CREATE TABLE big (a float4, b float4)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(1, 2)")
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Cat.Table("big")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumPages() <= db.Pool.NumFrames() {
		t.Fatalf("relation (%d pages) should exceed pool (%d frames)", rel.NumPages(), db.Pool.NumFrames())
	}
	res, err := db.Exec("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 5000 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if db.Pool.Stats().Evictions == 0 {
		t.Error("expected evictions")
	}
	if db.Pool.PinnedCount() != 0 {
		t.Error("scan leaked pins")
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE m (x float4, y float4); INSERT INTO m VALUES (1, 10), (2, 20), (3, 30), (4, 40)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM m")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 10, 25, 1, 40}
	for i, w := range want {
		if res.Rows[0][i] != w {
			t.Errorf("agg %d (%s) = %v, want %v", i, res.Cols[i], res.Rows[0][i], w)
		}
	}
	res, err = db.Exec("SELECT SUM(y) FROM m WHERE x > 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 70 {
		t.Errorf("filtered sum = %v", res.Rows[0][0])
	}
	// Aggregates over an empty result set.
	res, err = db.Exec("SELECT COUNT(*), AVG(x) FROM m WHERE x > 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 || res.Rows[0][1] != 0 {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE m (x float4)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT SUM(*) FROM m"); err == nil {
		t.Error("SUM(*) accepted")
	}
	if _, err := db.Exec("SELECT SUM(nope) FROM m"); err == nil {
		t.Error("aggregate over missing column accepted")
	}
	if _, err := db.Exec("SELECT SUM(x), x FROM m"); err == nil {
		t.Error("mixed aggregate and plain column accepted")
	}
}

func TestDropTablePurgesCache(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE r (x float4); INSERT INTO r VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT COUNT(*) FROM r"); err != nil {
		t.Fatal(err) // populates the pool
	}
	if _, err := db.Exec("DROP TABLE r"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE r (x float4); INSERT INTO r VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT SUM(x), COUNT(*) FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 7 || res.Rows[0][1] != 1 {
		t.Errorf("recreated table served stale pages: %v", res.Rows[0])
	}
}
