package catalog

import (
	"testing"

	"dana/internal/algos"
	"dana/internal/compiler"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/storage"
	"dana/internal/strider"
)

func TestTableLifecycle(t *testing.T) {
	c := New()
	s := storage.NumericSchema(3)
	if _, err := c.CreateTable("t", s, storage.PageSize8K); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", s, storage.PageSize8K); err == nil {
		t.Error("duplicate create accepted")
	}
	rel, err := c.Table("t")
	if err != nil || rel.Name != "t" {
		t.Fatalf("Table: %v %v", rel, err)
	}
	if got := c.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); err == nil {
		t.Error("lookup after drop succeeded")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestAttachTable(t *testing.T) {
	c := New()
	r := storage.NewRelation("x", storage.NumericSchema(1), storage.PageSize8K)
	if err := c.AttachTable(r); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachTable(r); err == nil {
		t.Error("duplicate attach accepted")
	}
}

func TestUDFRegistration(t *testing.T) {
	c := New()
	a := algos.Linear(8, algos.Hyper{LR: 0.1, MergeCoef: 4, Epochs: 2})
	u, err := c.RegisterUDF(a)
	if err != nil {
		t.Fatal(err)
	}
	if u.Graph == nil || u.Graph.MergeCoef != 4 {
		t.Errorf("udf graph = %+v", u.Graph)
	}
	if _, err := c.RegisterUDF(a); err == nil {
		t.Error("duplicate UDF accepted")
	}
	got, err := c.UDF("linearR")
	if err != nil || got != u {
		t.Errorf("UDF lookup: %v %v", got, err)
	}
	if _, err := c.UDF("ghost"); err == nil {
		t.Error("missing UDF lookup succeeded")
	}
	if names := c.UDFs(); len(names) != 1 || names[0] != "linearR" {
		t.Errorf("UDFs = %v", names)
	}
}

func TestAcceleratorMetadata(t *testing.T) {
	c := New()
	a := algos.Logistic(4, algos.Hyper{LR: 0.1, Epochs: 1})
	if _, err := c.RegisterUDF(a); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreAccelerator(&Accelerator{UDFName: "ghost"}); err == nil {
		t.Error("accelerator for unknown UDF accepted")
	}
	if err := c.StoreAccelerator(&Accelerator{UDFName: "logisticR"}); err != nil {
		t.Fatal(err)
	}
	if acc, ok := c.Accelerator("logisticR"); !ok || acc.UDFName != "logisticR" {
		t.Errorf("Accelerator = %v %v", acc, ok)
	}
	if _, ok := c.Accelerator("ghost"); ok {
		t.Error("accelerator for unknown UDF found")
	}
}

func TestInvalidUDFRejected(t *testing.T) {
	c := New()
	a := algos.Linear(4, algos.Hyper{})
	a.SetModel(nil)
	a.Updated = nil
	a.RowUpdates = nil
	if _, err := c.RegisterUDF(a); err == nil {
		t.Error("invalid UDF accepted")
	}
}

func TestAcceleratorSerializationRoundTrip(t *testing.T) {
	// Build a real accelerator record and round-trip it through the
	// catalog's durable form.
	a := algos.Linear(12, algos.Hyper{LR: 0.05, MergeCoef: 8, Epochs: 2})
	g, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	design, err := hwgen.Generate(prog, hwgen.VU9P(), hwgen.Params{PageSize: 32 << 10, MergeCoef: 8, NumTuples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sprog, scfg, err := strider.Generate(strider.PostgresLayout(32 << 10))
	if err != nil {
		t.Fatal(err)
	}
	orig := &Accelerator{
		UDFName: "linearR", Program: prog,
		StriderProg: sprog, StriderCfg: scfg, Design: design,
	}
	data, err := ExportAccelerator(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportAccelerator(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.UDFName != "linearR" {
		t.Errorf("udf = %q", got.UDFName)
	}
	if got.Program.Slots != prog.Slots || len(got.Program.PerTuple) != len(prog.PerTuple) {
		t.Errorf("program mismatch after round trip")
	}
	if len(got.StriderProg) != len(sprog) {
		t.Fatalf("strider program length %d != %d", len(got.StriderProg), len(sprog))
	}
	for i := range sprog {
		if got.StriderProg[i] != sprog[i] {
			t.Errorf("strider instr %d: %v != %v", i, got.StriderProg[i], sprog[i])
		}
	}
	if got.Design.Engine != design.Engine || got.Design.NumStriders != design.NumStriders {
		t.Errorf("design mismatch: %+v vs %+v", got.Design.Engine, design.Engine)
	}
	// The imported program must still execute.
	m, err := engine.NewMachine(got.Program, got.Design.Engine)
	if err != nil {
		t.Fatal(err)
	}
	tuple := make([]float32, 13)
	if err := m.RunBatch([][]float32{tuple}); err != nil {
		t.Fatal(err)
	}
}

func TestImportAcceleratorErrors(t *testing.T) {
	if _, err := ImportAccelerator([]byte("not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ImportAccelerator([]byte("{}")); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := ExportAccelerator(nil); err == nil {
		t.Error("nil export accepted")
	}
}
