package lint

// Mutation meta-tests: reintroduce historical bugs into a scratch
// module and prove the analyzers fire on the buggy variant and stay
// silent on the fixed one. This is the test that keeps the analyzers
// honest — a checker that passes clean code but misses the bug it was
// built for is worse than none.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchBufpool is a minimal stand-in for internal/bufpool: pinbalance
// matches Pool methods by package name, so the scratch module exercises
// the same code path as the real pool.
const scratchBufpool = `package bufpool

type Page []byte

type Pool struct{}

func (p *Pool) Pin(rel string, pageNo uint32) (Page, error) { return Page{}, nil }
func (p *Pool) Unpin(rel string, pageNo uint32) error       { return nil }
`

// extractSerialBuggy reproduces the PR-4 extractSerial leak verbatim in
// shape: decode reuses err, and its error return exits between Pin and
// the flush, leaking every pinned page. The chaos suite caught this at
// runtime; pinbalance must catch it at compile time.
const extractSerialBuggy = `package runtime

import "scratch/bufpool"

type rec struct{ data []byte }

func decode(pg bufpool.Page) (rec, error) { return rec{data: pg}, nil }

func extractSerial(p *bufpool.Pool, pages []uint32) ([]rec, error) {
	var out []rec
	var pinned []uint32
	flush := func() {
		for _, pn := range pinned {
			_ = p.Unpin("t", pn)
		}
		pinned = pinned[:0]
	}
	for _, pn := range pages {
		pg, err := p.Pin("t", pn)
		if err != nil {
			return nil, err
		}
		pinned = append(pinned, pn)
		r, err := decode(pg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if len(pinned) >= 4 {
			flush()
		}
	}
	flush()
	return out, nil
}
`

// extractSerialFixed is the PR-4 fix: flush the pinned pages before the
// decode-error return.
const extractSerialFixed = `package runtime

import "scratch/bufpool"

type rec struct{ data []byte }

func decode(pg bufpool.Page) (rec, error) { return rec{data: pg}, nil }

func extractSerial(p *bufpool.Pool, pages []uint32) ([]rec, error) {
	var out []rec
	var pinned []uint32
	flush := func() {
		for _, pn := range pinned {
			_ = p.Unpin("t", pn)
		}
		pinned = pinned[:0]
	}
	for _, pn := range pages {
		pg, err := p.Pin("t", pn)
		if err != nil {
			return nil, err
		}
		pinned = append(pinned, pn)
		r, err := decode(pg)
		if err != nil {
			flush()
			return nil, err
		}
		out = append(out, r)
		if len(pinned) >= 4 {
			flush()
		}
	}
	flush()
	return out, nil
}
`

// engineWallClock reintroduces a wall-clock read into a modeled-cycle
// package (path suffix internal/engine); engineFixed uses pure time
// arithmetic instead.
const engineWallClock = `package engine

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`

const engineFixed = `package engine

import "time"

func stamp() int64 { return time.Unix(0, 0).UnixNano() }
`

// hotLoopBuggy replants the pre-arena extraction loop in shape: a
// fresh PageResult and a fresh record slice per page, exactly the
// per-tuple churn the channel arenas removed. The allocation guard
// caught this at runtime (AllocsPerRun scaling with pages); hotalloc
// must catch it at compile time.
const hotLoopBuggy = `package runtime

type pageResult struct {
	rows [][]float32
	data []float32
}

type runner struct {
	res pageResult
}

//dana:hotpath
func (r *runner) extractPage(tuples [][]float32, cols int) *pageResult {
	res := new(pageResult)
	res.data = make([]float32, 0, len(tuples)*cols)
	for _, t := range tuples {
		res.data = append(res.data, t...)
		res.rows = append(res.rows, res.data[len(res.data)-cols:])
	}
	return res
}
`

// hotLoopFixed is the arena-era shape: the result and its buffers live
// on the runner and are reused via self-appends.
const hotLoopFixed = `package runtime

type pageResult struct {
	rows [][]float32
	data []float32
}

type runner struct {
	res pageResult
}

//dana:hotpath
func (r *runner) extractPage(tuples [][]float32, cols int) *pageResult {
	res := &r.res
	res.data = res.data[:0]
	res.rows = res.rows[:0]
	for _, t := range tuples {
		res.data = append(res.data, t...)
		res.rows = append(res.rows, res.data[len(res.data)-cols:])
	}
	return res
}
`

// scratchBackend is a minimal stand-in for internal/backend: backendreg
// resolves the vocabulary (Backend, Registration, Capabilities) by
// package name and scope, so the scratch module exercises the same
// resolution path as the real registry.
const scratchBackend = `package backend

type Env struct{}

type Capabilities struct {
	Name    string
	Classes []string
}

type Program struct{}
type Stream struct{}

type Backend interface {
	Capabilities() Capabilities
	Configure(p Program) error
	RunEpoch(st *Stream) error
	Model() []float64
}

type Registration struct {
	Name string
	New  func(Env) Backend
}
`

// backendUnregistered reintroduces the drift backendreg exists for: a
// new Backend implementation wired up by hand somewhere, bypassing the
// Registration list — so the dispatcher, the failover policy, and the
// conformance suite never see it.
const backendUnregistered = `package engines

import "scratch/backend"

type FPGA struct{}

func (FPGA) Capabilities() backend.Capabilities {
	return backend.Capabilities{Name: "fpga", Classes: []string{"linear"}}
}
func (FPGA) Configure(backend.Program) error { return nil }
func (FPGA) RunEpoch(*backend.Stream) error  { return nil }
func (FPGA) Model() []float64                { return nil }
`

// backendRegistered is the fix: the implementation appears in a
// Registration factory.
const backendRegistered = backendUnregistered + `
func Registrations() []backend.Registration {
	return []backend.Registration{
		{Name: "fpga", New: func(backend.Env) backend.Backend { return FPGA{} }},
	}
}
`

// backendEmptyCaps registers the backend but hollows out its
// capability declaration (no Classes), making it invisible to the
// dispatcher's admissibility filter.
const backendEmptyCaps = `package engines

import "scratch/backend"

type FPGA struct{}

func (FPGA) Capabilities() backend.Capabilities {
	return backend.Capabilities{Name: "fpga"}
}
func (FPGA) Configure(backend.Program) error { return nil }
func (FPGA) RunEpoch(*backend.Stream) error  { return nil }
func (FPGA) Model() []float64                { return nil }

func Registrations() []backend.Registration {
	return []backend.Registration{
		{Name: "fpga", New: func(backend.Env) backend.Backend { return FPGA{} }},
	}
}
`

// writeScratchModule lays out a scratch module and returns its root.
func writeScratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.21\n"
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func analyzeScratch(t *testing.T, files map[string]string, a *Analyzer) []Finding {
	t.Helper()
	root := writeScratchModule(t, files)
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestPinBalanceCatchesExtractSerialRegression(t *testing.T) {
	buggy := analyzeScratch(t, map[string]string{
		"bufpool/bufpool.go":  scratchBufpool,
		"runtime/executor.go": extractSerialBuggy,
	}, PinBalance)
	if len(buggy) != 1 {
		t.Fatalf("buggy extractSerial: got %d findings, want exactly 1: %v", len(buggy), buggy)
	}
	if !strings.Contains(buggy[0].Message, "pinned page is not unpinned") {
		t.Fatalf("unexpected finding message: %s", buggy[0].Message)
	}

	fixed := analyzeScratch(t, map[string]string{
		"bufpool/bufpool.go":  scratchBufpool,
		"runtime/executor.go": extractSerialFixed,
	}, PinBalance)
	if len(fixed) != 0 {
		t.Fatalf("fixed extractSerial still flagged: %v", fixed)
	}
}

func TestHotAllocCatchesPerPageAllocationRegression(t *testing.T) {
	buggy := analyzeScratch(t, map[string]string{
		"runtime/executor.go": hotLoopBuggy,
	}, HotAlloc)
	if len(buggy) != 2 {
		t.Fatalf("buggy extraction loop: got %d findings, want 2 (new + make): %v", len(buggy), buggy)
	}
	if !strings.Contains(buggy[0].Message, "new in hot path") || !strings.Contains(buggy[1].Message, "make in hot path") {
		t.Fatalf("unexpected finding messages: %v", buggy)
	}

	fixed := analyzeScratch(t, map[string]string{
		"runtime/executor.go": hotLoopFixed,
	}, HotAlloc)
	if len(fixed) != 0 {
		t.Fatalf("reuse-idiom extraction loop still flagged: %v", fixed)
	}
}

func TestBackendRegCatchesUnregisteredBackend(t *testing.T) {
	buggy := analyzeScratch(t, map[string]string{
		"backend/backend.go": scratchBackend,
		"engines/fpga.go":    backendUnregistered,
	}, BackendReg)
	if len(buggy) != 1 || !strings.Contains(buggy[0].Message, "no backend.Registration constructs it") {
		t.Fatalf("unregistered backend: got %v, want one registration finding", buggy)
	}

	fixed := analyzeScratch(t, map[string]string{
		"backend/backend.go": scratchBackend,
		"engines/fpga.go":    backendRegistered,
	}, BackendReg)
	if len(fixed) != 0 {
		t.Fatalf("registered backend still flagged: %v", fixed)
	}
}

func TestBackendRegCatchesEmptyCapabilities(t *testing.T) {
	buggy := analyzeScratch(t, map[string]string{
		"backend/backend.go": scratchBackend,
		"engines/fpga.go":    backendEmptyCaps,
	}, BackendReg)
	if len(buggy) != 1 || !strings.Contains(buggy[0].Message, "must declare Name and workload Classes") {
		t.Fatalf("empty capabilities: got %v, want one capabilities finding", buggy)
	}

	fixed := analyzeScratch(t, map[string]string{
		"backend/backend.go": scratchBackend,
		"engines/fpga.go":    backendRegistered,
	}, BackendReg)
	if len(fixed) != 0 {
		t.Fatalf("complete capabilities still flagged: %v", fixed)
	}
}

func TestDeterminismCatchesWallClockRegression(t *testing.T) {
	buggy := analyzeScratch(t, map[string]string{
		"internal/engine/clock.go": engineWallClock,
	}, Determinism)
	if len(buggy) != 1 || !strings.Contains(buggy[0].Message, "time.Now") {
		t.Fatalf("wall-clock regression: got %v, want one time.Now finding", buggy)
	}

	fixed := analyzeScratch(t, map[string]string{
		"internal/engine/clock.go": engineFixed,
	}, Determinism)
	if len(fixed) != 0 {
		t.Fatalf("pure time arithmetic flagged: %v", fixed)
	}
}
