package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// Determinism protects the bit-identical-modeled-cycles guarantee: the
// packages that charge modeled cycles (engine, strider, accessengine,
// cost) must be pure functions of their inputs. The analyzer reports,
// inside those packages only:
//
//   - wall-clock reads (time.Now, time.Since, time.Sleep, timers);
//   - unseeded global math/rand calls (rand.Intn, …; seeded *rand.Rand
//     instances are allowed — they are deterministic by construction);
//   - order-sensitive writes under map iteration: a `range` over a map
//     whose body appends to a slice, writes to a Buffer/Builder, or
//     sends on a channel produces schedule-dependent output. The
//     key-collect-and-sort idiom (append keys, sort immediately after
//     the loop) is recognized and allowed.
//
// Host-side packages (runtime, bufpool) measure real wall time on
// purpose and are out of scope.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock, unseeded rand, or map-order-dependent writes in modeled-cycle packages",
	Run:  runDeterminism,
}

// modeledPkgSuffixes lists the packages whose outputs feed the modeled
// cycle counts ("determinism" admits analyzer test fixtures).
var modeledPkgSuffixes = []string{
	"internal/engine", "internal/strider", "internal/accessengine", "internal/cost", "determinism",
}

func isModeledPkg(pkgPath string) bool {
	for _, s := range modeledPkgSuffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time-package functions that read or depend on
// the host clock. Pure constructors (time.Duration arithmetic,
// time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runDeterminism(pass *Pass) error {
	if !isModeledPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// Test files may time and randomize freely.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level function call: the selector base names a package.
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"time.%s in modeled-cycle package %s: wall-clock reads break bit-identical cycle modeling",
				sel.Sel.Name, pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"global rand.%s in modeled-cycle package %s: use an explicitly seeded *rand.Rand",
			sel.Sel.Name, pass.Pkg.Name())
	}
}

// checkMapRange flags order-sensitive writes inside map iteration.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyObj := bindingOf(pass.TypesInfo, rng.Key)
	var sortedSlices []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) >= 2 {
				// append(keys, k) alone is the collect-and-sort idiom when a
				// sort of the destination follows the loop.
				if keyObj != nil && len(n.Args) == 2 && usesObject(pass.TypesInfo, n.Args[1], keyObj) {
					if dst := rootObject(pass.TypesInfo, n.Args[0]); dst != nil {
						sortedSlices = append(sortedSlices, dst)
						return true
					}
				}
				pass.Reportf(n.Pos(),
					"append inside range over map: element order depends on map iteration; sort the keys first")
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				if recvIsOrderedSink(pass.TypesInfo, sel) {
					pass.Reportf(n.Pos(),
						"%s.%s inside range over map: output order depends on map iteration; sort the keys first",
						exprString(sel.X), sel.Sel.Name)
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: delivery order depends on map iteration; sort the keys first")
		}
		return true
	})
	// Collected key slices must be sorted somewhere after the loop in
	// the same file (position-based: any sort call on the same object).
	for _, obj := range sortedSlices {
		if !sortedLater(pass, file, rng, obj) {
			pass.Reportf(rng.Pos(),
				"keys of map range are collected into %s but never sorted: iteration order leaks into results",
				obj.Name())
		}
	}
}

// rootObject resolves the base identifier of an expression (x, x.f,
// x[i] all root at x).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// recvIsOrderedSink reports whether the method receiver is an
// order-sensitive accumulator (Builder, Buffer, io.Writer).
func recvIsOrderedSink(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv().String()
	return strings.Contains(t, "strings.Builder") || strings.Contains(t, "bytes.Buffer") ||
		strings.Contains(t, "io.Writer") || strings.Contains(t, "bufio.Writer")
}

// sortedLater reports whether obj is passed to a sort function after
// the range statement.
func sortedLater(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[base].(*types.PkgName); ok {
				p := path.Base(pn.Imported().Path())
				if (p == "sort" || p == "slices") && len(call.Args) >= 1 && usesObject(pass.TypesInfo, call.Args[0], obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// exprString renders a short expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expr"
	}
}
