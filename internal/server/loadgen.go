package server

import (
	"fmt"
	"math/rand"
)

// LoadConfig parameterizes the seeded synthetic many-tenant open-loop
// load: Poisson arrivals in virtual time, a skewed workload mix (so
// configuration affinity exists to exploit), and a train/score blend.
type LoadConfig struct {
	Seed    int64
	Tenants int // named tenant0..tenantN-1
	Jobs    int
	// RateJobsPerSec is the open-loop virtual arrival rate across all
	// tenants (0 = 4 jobs per virtual second).
	RateJobsPerSec float64
	// Workloads are the candidate Table 3 workloads (nil =
	// DefaultLoadWorkloads). Index 0 is the hottest: workload i is
	// drawn with weight 1/(i+1), giving the skew sequence-aware
	// scheduling feeds on.
	Workloads []string
	Scale     float64 // dataset scale per job (0 = 0.002)
	Epochs    int     // training epoch budget (0 = 2)
	// ScoreFraction of jobs are batch-scoring requests against the
	// tenant's last trained model for that workload (0 = 0.25,
	// negative = none).
	ScoreFraction float64
}

// DefaultLoadWorkloads are small real GLM workloads that stay cheap at
// load-generator scales.
func DefaultLoadWorkloads() []string {
	return []string{"Remote Sensing LR", "Remote Sensing SVM", "WLAN", "Patient"}
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Jobs <= 0 {
		c.Jobs = 32
	}
	if c.RateJobsPerSec <= 0 {
		c.RateJobsPerSec = 4
	}
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultLoadWorkloads()
	}
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.Epochs <= 0 {
		c.Epochs = 2
	}
	if c.ScoreFraction == 0 {
		c.ScoreFraction = 0.25
	}
	if c.ScoreFraction < 0 {
		c.ScoreFraction = 0
	}
	return c
}

// TenantName is the generated name of tenant i.
func TenantName(i int) string { return fmt.Sprintf("tenant%d", i) }

// TenantNames lists the load's tenant names in index order.
func (c LoadConfig) TenantNames() []string {
	c = c.withDefaults()
	names := make([]string, c.Tenants)
	for i := range names {
		names[i] = TenantName(i)
	}
	return names
}

// GenLoad produces the seeded open-loop job schedule: deterministic in
// the config, with exponential inter-arrival times and a Zipf-ish
// workload draw.
func GenLoad(c LoadConfig) []JobSpec {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	// Cumulative workload weights 1/(i+1).
	cum := make([]float64, len(c.Workloads))
	total := 0.0
	for i := range c.Workloads {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	specs := make([]JobSpec, 0, c.Jobs)
	now := 0.0
	for j := 0; j < c.Jobs; j++ {
		now += rng.ExpFloat64() / c.RateJobsPerSec
		draw := rng.Float64() * total
		wi := 0
		for wi < len(cum)-1 && draw > cum[wi] {
			wi++
		}
		kind := KindTrain
		if rng.Float64() < c.ScoreFraction {
			kind = KindScore
		}
		specs = append(specs, JobSpec{
			Tenant:    TenantName(rng.Intn(c.Tenants)),
			Kind:      kind,
			Workload:  c.Workloads[wi],
			Scale:     c.Scale,
			Epochs:    c.Epochs,
			ArriveSec: now,
		})
	}
	return specs
}

// DefaultTenants builds the tenant set matching a generated load:
// equal weights and a roomy-but-finite quota (two VM slots, 1 GB of
// modeled running bytes).
func DefaultTenants(n int) []TenantConfig {
	if n <= 0 {
		n = 4
	}
	out := make([]TenantConfig, n)
	for i := range out {
		out[i] = TenantConfig{
			Name:  TenantName(i),
			Quota: Quota{MemBytes: 1 << 30, MaxInFlight: 2},
		}
	}
	return out
}
