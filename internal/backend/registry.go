package backend

import (
	"fmt"
	"sort"

	"dana/internal/cost"
	"dana/internal/hwgen"
	"dana/internal/obs"
)

// Env is the ambient configuration a backend factory closes over — the
// observability registry, the analytic cost parameters, the modeled
// FPGA (for derived design points), and host-side knobs.
type Env struct {
	Obs      *obs.Registry
	Cost     cost.Params
	FPGA     hwgen.FPGA
	Workers  int
	Segments int // Sharded fan-out (<= 0 = DefaultSegments)
}

// DefaultSegments is the Sharded backend's segment count when Env
// leaves it unset (the paper's Greenplum baseline uses 8 segments).
const DefaultSegments = 8

// registry returns obs handles that are never nil.
func (e Env) obs() *obs.Registry {
	if e.Obs == nil {
		return obs.Noop
	}
	return e.Obs
}

// Factory builds one backend instance for an environment.
type Factory func(env Env) Backend

// Registration ties a dispatch name to a backend factory and, for the
// conformance suite, to the reference semantics the backend promises to
// match. danalint's backendreg check requires every Backend
// implementation to appear in exactly such a registration.
type Registration struct {
	Name string
	New  Factory
	// Reference computes the expected model for a conformance scenario
	// under this backend's declared semantics (env carries knobs the
	// semantics depend on, e.g. the Sharded segment count); nil means the
	// golden trainer (plain/merged IGD per the scenario spec).
	Reference func(env Env, sc Scenario) ([]float64, error)
}

// Builtins returns the registrations of the backends this package
// implements: the DAnA accelerator pipeline, the TABLA-style
// single-threaded design, the golden float64 CPU trainer, and the
// any-precision weave path. The greenplum package contributes Sharded;
// the integration layer assembles the full dispatcher from both.
func Builtins() []Registration {
	return []Registration{
		{Name: NameAccelerator, New: func(env Env) Backend { return NewAccel(env) }},
		{Name: NameTabla, New: func(env Env) Backend { return NewTabla(env) }},
		{Name: NameCPU, New: func(env Env) Backend { return NewCPU(env) }},
		{Name: NameWeave, New: func(env Env) Backend { return NewWeave(env) }, Reference: WeaveReference},
	}
}

// Dispatch names. NameAuto is not a backend: it selects cost-based
// dispatch in Options/Config overrides.
const (
	NameAccelerator = "accelerator"
	NameTabla       = "tabla"
	NameCPU         = "cpu"
	NameSharded     = "sharded"
	NameWeave       = "weave"
	NameAuto        = "auto"
)

// Dispatcher holds the registered backends and implements the
// heterogeneous selection policy.
type Dispatcher struct {
	env  Env
	regs []Registration
}

// NewDispatcher snapshots the registrations (sorted by name, so every
// iteration order below is deterministic). Duplicate or anonymous
// registrations are programmer errors and panic.
func NewDispatcher(env Env, regs ...Registration) *Dispatcher {
	sorted := append([]Registration(nil), regs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, r := range sorted {
		if r.Name == "" || r.New == nil {
			panic("backend: registration without name or factory")
		}
		if i > 0 && sorted[i-1].Name == r.Name {
			panic("backend: duplicate registration " + r.Name)
		}
	}
	return &Dispatcher{env: env, regs: sorted}
}

// Names lists the registered backend names in sorted order.
func (d *Dispatcher) Names() []string {
	out := make([]string, len(d.regs))
	for i, r := range d.regs {
		out[i] = r.Name
	}
	return out
}

// Registrations returns the registration snapshot (sorted by name).
func (d *Dispatcher) Registrations() []Registration {
	return append([]Registration(nil), d.regs...)
}

func (d *Dispatcher) lookup(name string) (Registration, bool) {
	for _, r := range d.regs {
		if r.Name == name {
			return r, true
		}
	}
	return Registration{}, false
}

// admissible reports whether the backend's capabilities cover the job's
// class, precision, and requested weave-bit window. The bits check is
// two-sided: a full-width backend (MaxBits == 0) cannot honor a k-bit
// weave request, and a weave backend only serves jobs that ask for
// weave extraction — a Bits == 0 job wants the float path and must not
// be silently rerouted through quantization, however cheap the rewoven
// stream prices.
func admissible(caps Capabilities, job Job) bool {
	if !caps.Supports(job.Class) {
		return false
	}
	if job.Precision != "" && caps.Precision != job.Precision {
		return false
	}
	if caps.MaxBits == 0 {
		if job.Bits != 0 {
			return false
		}
	} else if job.Bits < caps.MinBits || job.Bits > caps.MaxBits {
		return false
	}
	return true
}

// New instantiates the named backend for the job (the explicit-override
// path). Unknown names fail with ErrUnknownBackend; a backend whose
// capabilities don't cover the job fails with ErrUnsupported.
func (d *Dispatcher) New(name string, job Job) (Backend, Registration, error) {
	reg, ok := d.lookup(name)
	if !ok {
		return nil, Registration{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, d.Names())
	}
	be := reg.New(d.env)
	if !admissible(be.Capabilities(), job) {
		return nil, Registration{}, fmt.Errorf("%w: backend %q cannot run class=%s precision=%q jobs",
			ErrUnsupported, name, job.Class, job.Precision)
	}
	return be, reg, nil
}

// Pick is the heterogeneous dispatch policy, documented and
// deterministic:
//
//  1. classify — filter to backends whose Capabilities cover the job's
//     workload class and requested precision;
//  2. price — ask each survivor for EstimateCost (the internal/cost
//     analytic model, so size decides: tiny jobs amortize no
//     accelerator setup and fall to the CPU, large ones win on the
//     accelerated paths);
//  3. choose — minimum modeled seconds, ties broken by name order.
//
// No admissible backend is ErrUnsupported.
func (d *Dispatcher) Pick(job Job) (Backend, Registration, Cost, error) {
	var (
		best     Backend
		bestReg  Registration
		bestCost Cost
		found    bool
	)
	for _, reg := range d.regs {
		be := reg.New(d.env)
		if !admissible(be.Capabilities(), job) {
			continue
		}
		c, err := be.EstimateCost(job)
		if err != nil {
			continue
		}
		if !found || c.Seconds < bestCost.Seconds {
			best, bestReg, bestCost, found = be, reg, c, true
		}
	}
	if !found {
		return nil, Registration{}, Cost{}, fmt.Errorf("%w: no backend for class=%s precision=%q",
			ErrUnsupported, job.Class, job.Precision)
	}
	return best, bestReg, bestCost, nil
}

// Failover selects the degradation target after backend `failed`
// faulted: among backends declaring Capabilities.Fallback (accelerator-
// independent, reference precision) and admissible for the job, the
// cheapest by modeled cost, ties by name. The failed backend is
// excluded even if it declares Fallback.
func (d *Dispatcher) Failover(job Job, failed string) (Backend, Registration, error) {
	var (
		best    Backend
		bestReg Registration
		bestSec float64
		found   bool
	)
	for _, reg := range d.regs {
		if reg.Name == failed {
			continue
		}
		be := reg.New(d.env)
		caps := be.Capabilities()
		if !caps.Fallback || !admissible(caps, job) {
			continue
		}
		c, err := be.EstimateCost(job)
		if err != nil {
			continue
		}
		if !found || c.Seconds < bestSec {
			best, bestReg, bestSec, found = be, reg, c.Seconds, true
		}
	}
	if !found {
		return nil, Registration{}, fmt.Errorf("%w: after %q faulted on class=%s", ErrNoFailover, failed, job.Class)
	}
	return best, bestReg, nil
}
