package greenplum

// Sharded is the Greenplum-style distributed-IGD path recast as a
// composable execution backend: it wraps any inner per-segment Trainer
// (by default the golden float64 CPU trainer) and adds MADlib's
// distributed semantics around it — round-robin tuple sharding, one
// inner epoch per segment from the shared model, coordinator merge by
// averaging the segments that saw data. Cluster.Train delegates its
// epoch loop to the same core, so the classic crosscheck tests pin the
// wrapper's float64 operation sequence bit for bit.

import (
	"fmt"
	"sync"

	"dana/internal/backend"
	"dana/internal/cost"
	"dana/internal/hdfg"
	"dana/internal/ml"
)

// costGreenplum prices a job on the N-segment MADlib/Greenplum model.
func costGreenplum(job backend.Job, env backend.Env) cost.Breakdown {
	return cost.MADlibGreenplum(job.Workload(), env.Cost, segmentsOf(env), job.Warm)
}

// mlTrainer adapts an ml.Algorithm to the backend.Trainer surface:
// SetModel copies the shared model in, RunEpoch applies per-tuple
// Update in order, Model hands the local model back. It implements
// exactly the segment-local work of the classic Cluster epoch.
type mlTrainer struct {
	algo  ml.Algorithm
	model []float64
}

func (t *mlTrainer) SetModel(m []float64) error {
	t.model = append(t.model[:0], m...)
	return nil
}

func (t *mlTrainer) RunEpoch(st *backend.Stream) error {
	for _, tup := range st.Rows64 {
		t.algo.Update(t.model, tup)
	}
	return nil
}

func (t *mlTrainer) Model() []float64 { return t.model }

// InnerFactory builds one per-segment Trainer for a configured program.
type InnerFactory func(env backend.Env, p backend.Program) (backend.Trainer, error)

// cpuInner is the default inner: the golden float64 CPU backend.
func cpuInner(env backend.Env, p backend.Program) (backend.Trainer, error) {
	be := backend.NewCPU(env)
	if err := be.Configure(p); err != nil {
		return nil, err
	}
	return be, nil
}

// Sharded implements backend.Backend over N inner trainers.
type Sharded struct {
	env   backend.Env
	inner InnerFactory

	segments int
	inners   []backend.Trainer
	model    []float64
	graph    *hdfg.Graph
	class    backend.Class

	// Per-epoch scratch, reused across RunEpoch calls.
	shards [][][]float64
	rows64 [][]float64
}

// NewSharded builds an unconfigured Sharded backend over the default
// (CPU) inner trainer.
func NewSharded(env backend.Env) *Sharded { return NewShardedOver(env, cpuInner) }

// NewShardedOver composes the distributed-averaging wrapper over a
// caller-supplied inner trainer factory.
func NewShardedOver(env backend.Env, inner InnerFactory) *Sharded {
	return &Sharded{env: env, inner: inner}
}

func (b *Sharded) Capabilities() backend.Capabilities {
	return backend.Capabilities{
		Name: backend.NameSharded,
		// GLM classes only: MADlib's model averaging has no meaningful
		// semantics for row-sparse factor models.
		Classes:       []backend.Class{backend.ClassLinear, backend.ClassLogistic, backend.ClassSVM},
		Precision:     backend.PrecisionFloat64,
		BitExactModel: true, // == per-segment golden epochs + averaging, bit for bit
	}
}

// EstimateCost prices the job as cost.MADlibGreenplum: the per-segment
// CPU epoch over 1/Nth of the tuples, plus per-epoch merge traffic.
func (b *Sharded) EstimateCost(job backend.Job) (backend.Cost, error) {
	if !b.Capabilities().Supports(job.Class) ||
		(job.Precision != "" && job.Precision != backend.PrecisionFloat64) {
		return backend.Cost{}, fmt.Errorf("%w: %s cannot run class=%s precision=%q",
			backend.ErrUnsupported, backend.NameSharded, job.Class, job.Precision)
	}
	bd := costGreenplum(job, b.env)
	return backend.Cost{Seconds: bd.TotalSec, Breakdown: bd}, nil
}

func (b *Sharded) Configure(p backend.Program) error {
	if p.Graph == nil {
		return fmt.Errorf("%w: %s needs a translated graph", backend.ErrUnsupported, backend.NameSharded)
	}
	class := backend.Classify(p.Graph)
	if !b.Capabilities().Supports(class) {
		return fmt.Errorf("%w: %s cannot run class=%s", backend.ErrUnsupported, backend.NameSharded, class)
	}
	segs := segmentsOf(b.env)
	inners := make([]backend.Trainer, segs)
	for s := range inners {
		t, err := b.inner(b.env, p)
		if err != nil {
			return err
		}
		inners[s] = t
	}
	model := p.Init
	if model == nil {
		model = make([]float64, p.Graph.ModelSize())
	}
	b.segments, b.inners = segs, inners
	b.model = append([]float64(nil), model...)
	b.graph, b.class = p.Graph, class
	b.shards = make([][][]float64, segs)
	return nil
}

// RunEpoch materializes the epoch's tuples, shards them round-robin
// (the same global-tuple-order hash Cluster.distribute uses), and runs
// one distributed epoch.
func (b *Sharded) RunEpoch(st *backend.Stream) error {
	if b.inners == nil {
		return backend.ErrNotConfigured
	}
	rows, err := b.materialize(st)
	if err != nil {
		return err
	}
	for s := range b.shards {
		b.shards[s] = b.shards[s][:0]
	}
	for i, row := range rows {
		s := i % b.segments
		b.shards[s] = append(b.shards[s], row)
	}
	model, err := EpochShards(b.inners, b.model, b.shards)
	if err != nil {
		return err
	}
	b.model = model
	return nil
}

func (b *Sharded) materialize(st *backend.Stream) ([][]float64, error) {
	switch {
	case st != nil && st.Rows64 != nil:
		return st.Rows64, nil
	case st != nil && st.Rows32 != nil:
		b.rows64 = widenInto(b.rows64[:0], st.Rows32)
		return b.rows64, nil
	case st != nil && st.Batches != nil:
		b.rows64 = b.rows64[:0]
		err := st.Batches(func(rows [][]float32) error {
			b.rows64 = widenInto(b.rows64, rows)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return b.rows64, nil
	default:
		return nil, nil
	}
}

func widenInto(dst [][]float64, rows [][]float32) [][]float64 {
	for _, row := range rows {
		w := make([]float64, len(row))
		for j, v := range row {
			w[j] = float64(v)
		}
		dst = append(dst, w)
	}
	return dst
}

// Score evaluates at float64 precision, like the inner trainers.
func (b *Sharded) Score(model []float64, rows [][]float64) ([]float64, error) {
	if b.inners == nil {
		return nil, backend.ErrNotConfigured
	}
	return backend.ScoreFloat64(b.class, b.graph, model, rows)
}

func (b *Sharded) Model() []float64 {
	if b.inners == nil {
		return nil
	}
	return append([]float64(nil), b.model...)
}

func (b *Sharded) SetModel(m []float64) error {
	if b.inners == nil {
		return backend.ErrNotConfigured
	}
	if len(m) != len(b.model) {
		return fmt.Errorf("greenplum: model size %d, want %d", len(m), len(b.model))
	}
	b.model = append(b.model[:0], m...)
	return nil
}

// EpochShards runs one distributed IGD epoch: every segment trains its
// shard on its own trainer starting from the shared model, in parallel;
// the coordinator averages the models of the segments that saw data.
// This is the single implementation of the merge semantics — both the
// Sharded backend and the classic Cluster.Train go through it.
func EpochShards(inners []backend.Trainer, model []float64, shards [][][]float64) ([]float64, error) {
	if len(inners) != len(shards) {
		return nil, fmt.Errorf("greenplum: %d trainers for %d shards", len(inners), len(shards))
	}
	locals := make([][]float64, len(inners))
	errs := make([]error, len(inners))
	var wg sync.WaitGroup
	for s := range inners {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := inners[s].SetModel(model); err != nil {
				errs[s] = err
				return
			}
			if err := inners[s].RunEpoch(&backend.Stream{Rows64: shards[s]}); err != nil {
				errs[s] = err
				return
			}
			locals[s] = inners[s].Model()
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Coordinator merge: average only segments that saw data.
	var seen [][]float64
	for s := range shards {
		if len(shards[s]) > 0 {
			seen = append(seen, locals[s])
		}
	}
	if len(seen) == 0 {
		return append([]float64(nil), model...), nil
	}
	return ml.AverageModels(seen), nil
}

// segmentsOf resolves the env's segment count.
func segmentsOf(env backend.Env) int {
	if env.Segments < 1 {
		return backend.DefaultSegments
	}
	return env.Segments
}

// ShardedRegistration is the dispatch registration, with the averaged
// reference semantics the conformance suite compares against: shard the
// scenario round-robin, run each epoch as one golden epoch per segment
// from the shared model, average the non-empty segments. The inner CPU
// trainers are bit-identical to the golden trainer, so the comparison
// is bit-exact.
func ShardedRegistration() backend.Registration {
	return backend.Registration{
		Name:      backend.NameSharded,
		New:       func(env backend.Env) backend.Backend { return NewSharded(env) },
		Reference: shardedReference,
	}
}

func shardedReference(env backend.Env, sc backend.Scenario) ([]float64, error) {
	segs := segmentsOf(env)
	shards := make([][][]float64, segs)
	for i, t := range sc.Tuples {
		shards[i%segs] = append(shards[i%segs], t)
	}
	oneEpoch := sc.Spec
	oneEpoch.Epochs = 1
	model := append([]float64(nil), sc.Init...)
	epochs := sc.Spec.Epochs
	if epochs < 1 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		var seen [][]float64
		for s := range shards {
			if len(shards[s]) == 0 {
				continue
			}
			local := append([]float64(nil), model...)
			if err := oneEpoch.Train(local, shards[s]); err != nil {
				return nil, err
			}
			seen = append(seen, local)
		}
		if len(seen) > 0 {
			model = ml.AverageModels(seen)
		}
	}
	return model, nil
}
