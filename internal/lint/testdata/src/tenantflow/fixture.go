// Package fixture exercises the tenantflow analyzer: values derived
// from a tenant's private System / obs registry / fault injector must
// not reach package-level vars (directly or through an escaping callee
// parameter), another tenant's fields, or goroutines with no bounded
// join. Returning a tenant resource (the TenantObs pattern) is allowed.
package fixture

import (
	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/runtime"
)

// tenant mirrors the server's per-tenant record: a private System plus
// other protected resources makes the struct tenant-shaped.
type tenant struct {
	name string
	sys  *runtime.System
	reg  *obs.Registry
	inj  *fault.Injector
}

var leakedReg *obs.Registry

func storeGlobal(t *tenant) {
	leakedReg = t.reg // want `tenant-private obs.Registry .* flows into package-level var leakedReg`
}

// publish is the escaping helper: its summary records that parameter 0
// reaches a package-level var.
func publish(r *obs.Registry) {
	leakedReg = r
}

func viaHelper(t *tenant) {
	publish(t.reg) // want `tenant-private obs.Registry .* passed to tenantflow.publish, which stores it into package-level leakedReg`
}

func crossTenant(a, b *tenant) {
	a.reg = b.reg // want `tenant-private obs.Registry .* stored into field reg of a different tenant value a`
}

func leakGoroutine(t *tenant) {
	r := t.reg
	go func() { // want `tenant-private obs.Registry .* captured by a goroutine with no bounded join`
		r.Counter("fixture.leak")
	}()
}

func joinedGoroutine(t *tenant) {
	r := t.reg
	done := make(chan struct{})
	go func() {
		r.Counter("fixture.ok")
		close(done)
	}()
	<-done
}

// accessor returns the registry: deliberate API surface, not a sink.
func accessor(t *tenant) *obs.Registry {
	return t.reg
}
