package backend

import (
	"fmt"

	"dana/internal/cost"
	"dana/internal/hdfg"
)

// CPU is the golden float64 reference trainer behind the Backend seam:
// the hDFG interpreter, bit-identical to the GoldenSpec trainer (Oracle
// C leg 1). It is the canonical failover target — it shares no modeled
// hardware with the accelerator, and a degraded run continues at
// reference precision.
type CPU struct {
	env Env

	it    *hdfg.Interp
	graph *hdfg.Graph
	class Class
	// rows64 is the scratch buffer for Rows32-form epochs.
	rows64 [][]float64
}

// NewCPU builds an unconfigured CPU backend.
func NewCPU(env Env) *CPU { return &CPU{env: env} }

func (b *CPU) Capabilities() Capabilities {
	return Capabilities{
		Name:          NameCPU,
		Classes:       AllClasses(),
		Precision:     PrecisionFloat64,
		BitExactModel: true, // == golden trainer, bit for bit
		Fallback:      true,
	}
}

// EstimateCost prices the job as single-threaded in-database IGD
// (cost.MADlibPostgres): tuple-at-a-time updates over buffer-pool
// scans, the closest analytic analogue of the interpreter.
func (b *CPU) EstimateCost(job Job) (Cost, error) {
	if !admissible(b.Capabilities(), job) {
		return Cost{}, fmt.Errorf("%w: %s cannot run class=%s precision=%q",
			ErrUnsupported, NameCPU, job.Class, job.Precision)
	}
	bd := cost.MADlibPostgres(job.Workload(), b.env.Cost, job.Warm)
	return Cost{Seconds: bd.TotalSec, Breakdown: bd}, nil
}

func (b *CPU) Configure(p Program) error {
	if p.Graph == nil {
		return fmt.Errorf("%w: %s needs a translated graph", ErrUnsupported, NameCPU)
	}
	class := Classify(p.Graph)
	if !b.Capabilities().Supports(class) {
		return fmt.Errorf("%w: %s cannot run class=%s", ErrUnsupported, NameCPU, class)
	}
	it, err := hdfg.NewInterp(p.Graph, initModel(p))
	if err != nil {
		return err
	}
	b.it, b.graph, b.class = it, p.Graph, class
	return nil
}

// RunEpoch runs one interpreter epoch. Rows32 input is widened to
// float64 — exact, so a CPU epoch over Strider-extracted records sees
// the same values the accelerator datapath would.
func (b *CPU) RunEpoch(st *Stream) error {
	if b.it == nil {
		return ErrNotConfigured
	}
	switch {
	case st != nil && st.Rows64 != nil:
		return b.it.Epoch(st.Rows64)
	case st != nil && st.Rows32 != nil:
		return b.it.Epoch(b.widenRows(st.Rows32))
	case st != nil && st.Batches != nil:
		// Drain the stream into the scratch buffer, then run the epoch:
		// the interpreter has no incremental feed, and the CPU path has
		// no modeled counters that could depend on arrival granularity.
		b.rows64 = b.rows64[:0]
		err := st.Batches(func(rows [][]float32) error {
			for _, row := range rows {
				b.rows64 = append(b.rows64, widen64(row))
			}
			return nil
		})
		if err != nil {
			return err
		}
		return b.it.Epoch(b.rows64)
	default:
		return b.it.Epoch(nil)
	}
}

func (b *CPU) widenRows(rows [][]float32) [][]float64 {
	if len(b.rows64) != len(rows) {
		b.rows64 = make([][]float64, len(rows))
	}
	for i, row := range rows {
		if len(b.rows64[i]) != len(row) {
			b.rows64[i] = make([]float64, len(row))
		}
		for j, v := range row {
			b.rows64[i][j] = float64(v)
		}
	}
	return b.rows64
}

// Score runs inference at float64 precision.
func (b *CPU) Score(model []float64, rows [][]float64) ([]float64, error) {
	if b.it == nil {
		return nil, ErrNotConfigured
	}
	return score64(b.class, b.graph, model, rows)
}

func (b *CPU) Model() []float64 {
	if b.it == nil {
		return nil
	}
	return append([]float64(nil), b.it.Model()...)
}

func (b *CPU) SetModel(m []float64) error {
	if b.it == nil {
		return ErrNotConfigured
	}
	return b.it.SetModel(m)
}

func (b *CPU) Converged() (bool, error) {
	if b.it == nil {
		return false, ErrNotConfigured
	}
	return b.it.Converged()
}
