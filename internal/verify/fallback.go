package verify

import "dana/internal/hdfg"

// CPUTrainer wraps the golden float64 hDFG interpreter as a standalone
// trainer. It is the runtime's graceful-degradation path: when the
// simulated accelerator faults mid-train, the remaining epochs run here
// — the same update-rule semantics Oracle C validates the accelerator
// against, so a degraded run stays within Oracle-C tolerance of the
// fault-free one.
type CPUTrainer struct {
	it *hdfg.Interp
}

// NewCPUTrainer builds a trainer over graph g starting from the given
// float32 model state (typically the accelerator's epoch-start model).
// A nil model starts from zeros.
func NewCPUTrainer(g *hdfg.Graph, model []float32) (*CPUTrainer, error) {
	var init []float64
	if model != nil {
		init = make([]float64, len(model))
		for i, v := range model {
			init[i] = float64(v)
		}
	}
	it, err := hdfg.NewInterp(g, init)
	if err != nil {
		return nil, err
	}
	return &CPUTrainer{it: it}, nil
}

// Train runs up to maxEpochs epochs over the tuples, stopping early on
// convergence. It returns the number of epochs executed.
func (t *CPUTrainer) Train(tuples [][]float64, maxEpochs int) (int, error) {
	return t.it.Train(tuples, maxEpochs)
}

// Model returns the float64 model state (aliased; copy to retain).
func (t *CPUTrainer) Model() []float64 { return t.it.Model() }

// Model32 returns the model narrowed to the accelerator's float32
// representation.
func (t *CPUTrainer) Model32() []float32 {
	m := t.it.Model()
	out := make([]float32, len(m))
	for i, v := range m {
		out[i] = float32(v)
	}
	return out
}
