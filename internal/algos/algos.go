// Package algos provides the paper's four evaluation algorithms as
// ready-made DAnA DSL programs (the ≈30–60 lines of Python a data
// scientist would write, §4.3), parameterized by model topology and
// hyper-parameters.
package algos

import (
	"fmt"

	"dana/internal/dsl"
)

// Hyper collects common hyper-parameters.
type Hyper struct {
	LR        float64
	Lambda    float64 // SVM regularizer
	MergeCoef int     // 0/1 = no merge (plain SGD)
	Epochs    int
}

func (h Hyper) withDefaults() Hyper {
	if h.LR == 0 {
		h.LR = 0.1
	}
	if h.Epochs == 0 {
		h.Epochs = 1
	}
	return h
}

// dense builds the shared GLM skeleton: s = sigma(mo*in, 1) and the
// post-gradient optimizer w' = w - lr*grad, merging grad when requested.
func dense(name string, nFeat int, h Hyper, gradOf func(a *dsl.Algo, mo, in, out, s *dsl.Expr) *dsl.Expr) *dsl.Algo {
	a := dsl.NewAlgo(name)
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lr := a.Meta(h.LR)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	grad := gradOf(a, mo, in, out, s)
	moUp := dsl.Sub(mo, dsl.Mul(lr, grad))
	if h.MergeCoef > 1 {
		a.MustMerge(grad, h.MergeCoef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(h.Epochs)
	return a
}

// Linear builds least-squares linear regression (paper §4.3 example).
func Linear(nFeat int, h Hyper) *dsl.Algo {
	h = h.withDefaults()
	return dense("linearR", nFeat, h, func(a *dsl.Algo, mo, in, out, s *dsl.Expr) *dsl.Expr {
		er := dsl.Sub(s, out)
		return dsl.Mul(er, in)
	})
}

// Logistic builds binary logistic regression (labels in {0,1}).
func Logistic(nFeat int, h Hyper) *dsl.Algo {
	h = h.withDefaults()
	return dense("logisticR", nFeat, h, func(a *dsl.Algo, mo, in, out, s *dsl.Expr) *dsl.Expr {
		p := dsl.Sigmoid(s)
		er := dsl.Sub(p, out)
		return dsl.Mul(er, in)
	})
}

// SVM builds a hinge-loss linear SVM (labels in {-1,+1}):
// grad = lambda*w - 1[y*s < 1] * y * x.
func SVM(nFeat int, h Hyper) *dsl.Algo {
	h = h.withDefaults()
	if h.Lambda == 0 {
		h.Lambda = 0.01
	}
	return dense("svm", nFeat, h, func(a *dsl.Algo, mo, in, out, s *dsl.Expr) *dsl.Expr {
		lam := a.Meta(h.Lambda)
		one := a.Meta(1)
		margin := dsl.Mul(out, s)
		ind := dsl.Lt(margin, one)
		hinge := dsl.Mul(ind, dsl.Mul(out, in))
		return dsl.Sub(dsl.Mul(lam, mo), hinge)
	})
}

// LRMF builds low-rank matrix factorization over a stacked factor model
// of (users+items) x rank; tuples are (userRow, itemRow, rating) with
// itemRow pre-offset by users. Row updates imply single-threaded
// acceleration (no merge), matching the paper's observation that LRMF
// gains little from multi-threading (§7.2).
func LRMF(users, items, rank int, h Hyper) *dsl.Algo {
	h = h.withDefaults()
	a := dsl.NewAlgo("lrmf")
	mo := a.Model(users+items, rank)
	u := a.Input()
	v := a.Input()
	r := a.Output()
	lr := a.Meta(h.LR)
	ur := dsl.Gather(mo, u)
	vr := dsl.Gather(mo, v)
	pred := dsl.Sigma(dsl.Mul(ur, vr), 1)
	e := dsl.Sub(pred, r)
	uNew := dsl.Sub(ur, dsl.Mul(lr, dsl.Mul(e, vr)))
	vNew := dsl.Sub(vr, dsl.Mul(lr, dsl.Mul(e, ur)))
	a.SetModelRow(u, uNew)
	a.SetModelRow(v, vNew)
	a.SetEpochs(h.Epochs)
	return a
}

// Kind names a paper workload algorithm.
type Kind string

const (
	KindLinear   Kind = "linear"
	KindLogistic Kind = "logistic"
	KindSVM      Kind = "svm"
	KindLRMF     Kind = "lrmf"
)

// Build constructs the DSL program for a kind and topology. For LRMF the
// topology is [users, items, rank]; otherwise [features].
func Build(kind Kind, topology []int, h Hyper) (*dsl.Algo, error) {
	switch kind {
	case KindLinear:
		return Linear(topology[0], h), nil
	case KindLogistic:
		return Logistic(topology[0], h), nil
	case KindSVM:
		return SVM(topology[0], h), nil
	case KindLRMF:
		if len(topology) != 3 {
			return nil, fmt.Errorf("algos: LRMF topology needs [users, items, rank], got %v", topology)
		}
		return LRMF(topology[0], topology[1], topology[2], h), nil
	default:
		return nil, fmt.Errorf("algos: unknown kind %q", kind)
	}
}
