// Package lint is DAnA's in-tree static-analysis framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a module-aware package
// loader and an intra-function control-flow graph.
//
// It exists because the repo's correctness story rests on invariants the
// type system cannot express — every bufpool Pin paired with an Unpin on
// all paths, no wall-clock or map-order nondeterminism inside
// modeled-cycle packages, obs call sites that stay free under obs.Noop,
// and typed fault sentinels that survive wrapping. PRs 1–4 enforced
// those at runtime (chaos suite, invariant tests); this package moves
// them to compile time, the way the paper's static execution model moves
// performance estimation ahead of execution (§6.1).
//
// The framework is stdlib-only (go/ast, go/types, go/parser and the
// GOROOT source importer) so the analyzers build in hermetic
// environments without golang.org/x/tools. The API deliberately mirrors
// go/analysis so the suite can migrate to the upstream driver by
// swapping imports.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments (lowercase, no spaces).
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one package and reports findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Mod is the module-wide interprocedural view (call graph and
	// function summaries) shared by every pass of one RunAnalyzers
	// invocation. Interprocedural analyzers (tenantflow, hotcall,
	// golifecycle) consume it; intra-function analyzers ignore it.
	Mod *Module

	// Unit is the loader's package record for this pass, usable as a
	// key into Mod (FuncInfo.Pkg == Unit for functions declared here).
	Unit *Package

	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position mapped through the
// FileSet and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ignoreDirective is the suppression comment prefix: a comment
// `//danalint:ignore <name> -- reason` on the offending line (or the
// line immediately above it) drops findings of analyzer <name>;
// omitting the name drops all analyzers on that line. The `-- reason`
// tail is mandatory so suppressions stay auditable.
const ignoreDirective = "danalint:ignore"

// suppressions maps file -> line -> set of suppressed analyzer names
// ("" = all).
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	add := func(file string, line int, name string) {
		byLine := sup[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			sup[file] = byLine
		}
		names := byLine[line]
		if names == nil {
			names = map[string]bool{}
			byLine[line] = names
		}
		names[name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				pos := fset.Position(c.Pos())
				name := ""
				if rest != "" {
					name = strings.Fields(rest)[0]
				}
				// The directive covers its own line and the next line, so
				// it can sit above the offending statement.
				add(pos.Filename, pos.Line, name)
				add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	byLine, ok := s[pos.Filename]
	if !ok {
		return false
	}
	names, ok := byLine[pos.Line]
	if !ok {
		return false
	}
	return names[analyzer] || names[""]
}

// RunAnalyzers applies each analyzer to each package and returns the
// unsuppressed findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	mod := BuildModule(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Mod:       mod,
				Unit:      pkg,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
