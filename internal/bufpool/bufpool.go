// Package bufpool implements a PostgreSQL-style shared buffer pool with
// clock-sweep eviction. It is the component DAnA's Striders read raw
// pages from (paper §5.1): the access engine walks buffer-pool frames
// directly instead of having the CPU deform tuples.
//
// Disk I/O is simulated: every miss charges read latency + transfer time
// to an I/O clock so that cold- vs warm-cache experiments (Figures 8–10)
// are deterministic and host-independent.
package bufpool

import (
	"errors"
	"fmt"
	"sync"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/storage"
)

// PageID identifies a page of a relation within the pool.
type PageID struct {
	Rel  string
	Page uint32
}

func (id PageID) String() string { return fmt.Sprintf("%s:%d", id.Rel, id.Page) }

// ErrNoFreeFrames is returned when every frame is pinned.
var ErrNoFreeFrames = errors.New("bufpool: all buffer frames are pinned")

// defaultMaxReadRetries is the re-read budget after a failed or corrupt
// read when Pool.MaxReadRetries is unset.
const defaultMaxReadRetries = 3

// DiskModel describes the simulated storage device.
type DiskModel struct {
	// SeqReadBytesPerSec is sustained sequential read bandwidth.
	SeqReadBytesPerSec float64
	// ReadLatencySec is the fixed per-request latency.
	ReadLatencySec float64
}

// DefaultDisk models the paper's 256 GB SATA SSD.
func DefaultDisk() DiskModel {
	return DiskModel{SeqReadBytesPerSec: 500e6, ReadLatencySec: 80e-6}
}

// ReadTime returns the simulated seconds to read n bytes.
func (d DiskModel) ReadTime(n int) float64 {
	return d.ReadLatencySec + float64(n)/d.SeqReadBytesPerSec
}

// Stats aggregates buffer pool counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	BytesRead int64
	// IOSeconds is total simulated time spent on disk reads (including
	// failed attempts and injected latency spikes, but not backoff).
	IOSeconds float64

	// Fault-handling counters. Retries counts re-read attempts after an
	// injected I/O error or a checksum mismatch; BackoffSeconds is the
	// simulated exponential backoff charged between those attempts.
	// ChecksumFailures counts mismatches seen, including ones a retry
	// recovered from.
	Retries          int64
	BackoffSeconds   float64
	ChecksumFailures int64
}

// HitRatio returns hits / (hits+misses), or 1 when there were no accesses.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	id    PageID
	page  storage.Page
	pins  int
	usage uint8 // clock-sweep usage count (capped at 5, like PostgreSQL)
	valid bool
	dirty bool
}

// Pool is a fixed-size shared buffer pool over a set of relations.
type Pool struct {
	mu       sync.Mutex
	frames   []frame
	table    map[PageID]int // page table: PageID -> frame index
	hand     int            // clock hand
	rels     map[string]*storage.Relation
	disk     DiskModel
	stats    Stats
	pageSize int
	invals   uint64 // bumped by Invalidate/InvalidateRelation

	// VerifyChecksums makes every miss validate the page checksum
	// (when one is stamped), modeling PostgreSQL's data_checksums:
	// torn or corrupted pages fail the read instead of reaching the
	// Striders. Checksums are also verified whenever a fault injector
	// is attached (corruption must be catchable); otherwise the check
	// is skipped and counted as skipped via obs.
	VerifyChecksums bool

	// MaxReadRetries bounds re-read attempts after a failed or corrupt
	// read before Pin gives up with a typed error (0 = default 3,
	// negative = no retries). Each retry charges capped exponential
	// backoff to Stats.BackoffSeconds on the simulated clock.
	MaxReadRetries int

	faults *fault.Injector

	// Observability handles (SetObs). Nil handles are no-ops, so an
	// un-instrumented pool pays one branch per counter site.
	obsHits       *obs.Counter
	obsMisses     *obs.Counter
	obsEvict      *obs.Counter
	obsSweep      *obs.Counter
	obsBytes      *obs.Counter
	obsIOSec      *obs.FloatCounter
	obsRetries    *obs.Counter
	obsBackoff    *obs.FloatCounter
	obsCkVerified *obs.Counter
	obsCkSkipped  *obs.Counter
	obsCkFailed   *obs.Counter
	obsRing       *obs.Ring
}

// SetObs registers the pool's counters with an observability registry
// (obs.Noop disables). Counters are cumulative across ResetStats: the
// registry observes pool activity, it does not mirror the resettable
// Stats struct.
func (p *Pool) SetObs(r *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsHits = r.Counter(obs.PoolHits)
	p.obsMisses = r.Counter(obs.PoolMisses)
	p.obsEvict = r.Counter(obs.PoolEvictions)
	p.obsSweep = r.Counter(obs.PoolSweepSteps)
	p.obsBytes = r.Counter(obs.PoolBytesRead)
	p.obsIOSec = r.Float(obs.PoolIOSeconds)
	p.obsRetries = r.Counter(obs.PoolReadRetries)
	p.obsBackoff = r.Float(obs.PoolBackoffSeconds)
	p.obsCkVerified = r.Counter(obs.PoolChecksumVerified)
	p.obsCkSkipped = r.Counter(obs.PoolChecksumSkipped)
	p.obsCkFailed = r.Counter(obs.PoolChecksumFailed)
	p.obsRing = r.Ring()
}

// SetFaults attaches a fault-injection schedule to the pool's read
// path (nil detaches). With an injector attached, every miss verifies
// the page checksum.
func (p *Pool) SetFaults(in *fault.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = in
}

// New creates a pool of nframes frames for pages of pageSize bytes.
func New(nframes, pageSize int, disk DiskModel) *Pool {
	if nframes < 1 {
		nframes = 1
	}
	return &Pool{
		frames:   make([]frame, nframes),
		table:    make(map[PageID]int, nframes),
		rels:     make(map[string]*storage.Relation),
		disk:     disk,
		pageSize: pageSize,
	}
}

// NewSized creates a pool with a byte budget (e.g. 8 GB in the paper's
// default setup) for the given page size.
func NewSized(poolBytes int64, pageSize int, disk DiskModel) *Pool {
	return New(int(poolBytes/int64(pageSize)), pageSize, disk)
}

// AttachRelation registers a relation so its pages can be requested.
func (p *Pool) AttachRelation(r *storage.Relation) error {
	if r.PageSize != p.pageSize {
		return fmt.Errorf("bufpool: relation %q page size %d != pool page size %d", r.Name, r.PageSize, p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rels[r.Name] = r
	return nil
}

// NumFrames returns the frame count.
func (p *Pool) NumFrames() int { return len(p.frames) }

// PageSize returns the pool's page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (pool contents are untouched, so a reset
// followed by re-scanning models the warm-cache setting).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Invalidate drops every cached page (the cold-cache setting).
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if p.frames[i].pins > 0 {
			return fmt.Errorf("bufpool: cannot invalidate: frame %d (%v) is pinned", i, p.frames[i].id)
		}
	}
	dropped := int64(len(p.table))
	for i := range p.frames {
		p.frames[i] = frame{}
	}
	p.table = make(map[PageID]int, len(p.frames))
	p.invals++
	p.obsRing.Emit(obs.EvPoolInval, dropped, 0)
	return nil
}

// InvalidationCount returns how many times the pool has been invalidated
// (fully or per relation). Derived caches — e.g. the runtime's
// extracted-record cache — record the count at fill time: a later
// mismatch means the cold-cache setting was requested and cached pages
// must be re-read and re-charged.
func (p *Pool) InvalidationCount() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.invals
}

// InvalidateRelation drops every cached page of one relation and
// detaches it (used by DROP TABLE so a recreated table cannot serve
// stale frames).
func (p *Pool) InvalidateRelation(rel string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.id.Rel == rel {
			if f.pins > 0 {
				return fmt.Errorf("bufpool: cannot invalidate %v: pinned", f.id)
			}
		}
	}
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.id.Rel == rel {
			delete(p.table, f.id)
			*f = frame{page: f.page}
		}
	}
	delete(p.rels, rel)
	p.invals++
	return nil
}

// Pin fetches the page into the pool (reading from the relation on a
// miss), pins it, and returns the frame's page. The caller must Unpin.
// The returned Page aliases the frame; it stays valid while pinned.
func (p *Pool) Pin(rel string, pageNo uint32) (storage.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID{Rel: rel, Page: pageNo}
	if fi, ok := p.table[id]; ok {
		f := &p.frames[fi]
		f.pins++
		if f.usage < 5 {
			f.usage++
		}
		p.stats.Hits++
		p.obsHits.Inc()
		return f.page, nil
	}
	// Miss: find a victim via clock sweep, then read with retry.
	r, ok := p.rels[rel]
	if !ok {
		return nil, fmt.Errorf("bufpool: unknown relation %q", rel)
	}
	fi, err := p.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[fi]
	if f.valid {
		delete(p.table, f.id)
		f.valid = false
		p.stats.Evictions++
		p.obsEvict.Inc()
	}
	if f.page == nil {
		//danalint:ignore hotcall -- demand-fill on first use of a frame: one page buffer per frame, reused for the pool's lifetime
		f.page = make(storage.Page, p.pageSize)
	}
	retries := p.MaxReadRetries
	switch {
	case retries == 0:
		retries = defaultMaxReadRetries
	case retries < 0:
		retries = 0
	}
	verify := p.VerifyChecksums || p.faults != nil
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = nil
		if ierr := p.faults.ReadFault(rel, pageNo); ierr != nil {
			// The failed request still spent its latency on the device.
			p.stats.IOSeconds += p.disk.ReadLatencySec
			p.obsIOSec.Add(p.disk.ReadLatencySec)
			//danalint:ignore hotcall -- wrap runs only under an injected read fault, never in the fault-free steady state
			lastErr = fmt.Errorf("bufpool: read %v: %w", id, ierr)
		} else {
			src, rerr := r.Page(int(pageNo))
			if rerr != nil {
				// Structural miss (no such page): not retriable.
				return nil, rerr
			}
			copy(f.page, src)
			p.faults.CorruptCopy(rel, pageNo, f.page)
			rt := p.disk.ReadTime(p.pageSize) + p.faults.ReadLatencySec(rel, pageNo)
			p.stats.IOSeconds += rt
			p.obsIOSec.Add(rt)
			if verify {
				p.obsCkVerified.Inc()
				if !f.page.ChecksumOK() {
					p.stats.ChecksumFailures++
					p.obsCkFailed.Inc()
					p.obsRing.Emit(obs.EvChecksumFail, int64(pageNo), int64(attempt))
					//danalint:ignore hotcall -- wrap runs only on a checksum failure (torn page), never in the fault-free steady state
					lastErr = fmt.Errorf("bufpool: %v: stored checksum %#x != computed %#x: %w",
						id, f.page.Checksum(), f.page.ComputeChecksum(), fault.ErrTornPage)
				}
			} else {
				p.obsCkSkipped.Inc()
			}
		}
		if lastErr == nil {
			break
		}
		if attempt >= retries {
			return nil, fmt.Errorf("bufpool: giving up on %v after %d attempts: %w", id, attempt+1, lastErr)
		}
		// Retry after capped exponential backoff on the simulated clock:
		// a torn page or transient I/O error is re-read from the source.
		back := fault.BackoffSec(attempt, p.disk.ReadLatencySec)
		p.stats.Retries++
		p.stats.BackoffSeconds += back
		p.obsRetries.Inc()
		p.obsBackoff.Add(back)
		p.obsRing.Emit(obs.EvReadRetry, int64(pageNo), int64(attempt))
	}
	f.id = id
	f.valid = true
	f.dirty = false
	f.pins = 1
	f.usage = 1
	p.table[id] = fi
	p.stats.Misses++
	p.stats.BytesRead += int64(p.pageSize)
	p.obsMisses.Inc()
	p.obsBytes.Add(int64(p.pageSize))
	return f.page, nil
}

// evictLocked runs the clock sweep and returns a usable frame index.
func (p *Pool) evictLocked() (int, error) {
	n := len(p.frames)
	// Two full sweeps decrementing usage counts is enough to find a
	// victim unless everything is pinned: a frame with usage 0 and no
	// pins is chosen.
	for pass := 0; pass < 6*n; pass++ {
		f := &p.frames[p.hand]
		idx := p.hand
		p.hand = (p.hand + 1) % n
		p.obsSweep.Inc()
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.usage > 0 {
			f.usage--
			continue
		}
		return idx, nil
	}
	return 0, ErrNoFreeFrames
}

// Unpin releases one pin on the page.
func (p *Pool) Unpin(rel string, pageNo uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID{Rel: rel, Page: pageNo}
	fi, ok := p.table[id]
	if !ok {
		return fmt.Errorf("bufpool: unpin of uncached page %v", id)
	}
	f := &p.frames[fi]
	if f.pins <= 0 {
		return fmt.Errorf("bufpool: unpin of unpinned page %v", id)
	}
	f.pins--
	return nil
}

// Prefetch loads pages [start, start+count) of rel without pinning them,
// modeling sequential read-ahead (and used to pre-warm the cache).
func (p *Pool) Prefetch(rel string, start uint32, count int) error {
	for i := 0; i < count; i++ {
		if _, err := p.Pin(rel, start+uint32(i)); err != nil {
			return err
		}
		if err := p.Unpin(rel, start+uint32(i)); err != nil {
			return err
		}
	}
	return nil
}

// Warm loads as much of the relation as fits, starting from page 0 — the
// paper's warm-cache setting where training tables reside in the pool
// before query execution.
func (p *Pool) Warm(rel string) error {
	p.mu.Lock()
	r, ok := p.rels[rel]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("bufpool: unknown relation %q", rel)
	}
	n := r.NumPages()
	if n > len(p.frames) {
		n = len(p.frames)
	}
	if err := p.Prefetch(rel, 0, n); err != nil {
		return err
	}
	p.ResetStats()
	return nil
}

// Cached reports whether the page currently resides in the pool.
func (p *Pool) Cached(rel string, pageNo uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[PageID{Rel: rel, Page: pageNo}]
	return ok
}

// PinnedCount returns the number of currently pinned frames (for tests
// and leak detection).
func (p *Pool) PinnedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.frames {
		if p.frames[i].pins > 0 {
			n++
		}
	}
	return n
}
