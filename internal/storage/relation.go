package storage

import (
	"fmt"
	"sync"
)

// Relation is a heap of slotted pages holding fixed-width tuples for one
// schema. It plays the role of the on-disk heap file: the buffer pool
// (internal/bufpool) reads pages from it and charges simulated I/O time.
type Relation struct {
	Name     string
	Schema   *Schema
	PageSize int

	mu      sync.RWMutex
	pages   []Page
	dirty   []bool // pages[i] mutated since its checksum was last stamped
	ntup    int
	nextXID uint32
	gen     uint64
}

// NewRelation creates an empty heap relation with the given page size.
func NewRelation(name string, schema *Schema, pageSize int) *Relation {
	if pageSize <= 0 {
		pageSize = PageSize32K
	}
	return &Relation{Name: name, Schema: schema, PageSize: pageSize, nextXID: 2}
}

// NumPages returns the number of heap pages.
func (r *Relation) NumPages() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pages)
}

// NumTuples returns the number of live tuples.
func (r *Relation) NumTuples() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ntup
}

// Generation returns a counter that advances on every heap mutation
// (insert, delete, vacuum). Caches of derived page contents — e.g. the
// access engine's extracted-record cache — compare generations to detect
// staleness without rescanning the heap.
func (r *Relation) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// SizeBytes returns the total heap size in bytes.
func (r *Relation) SizeBytes() int64 {
	return int64(r.NumPages()) * int64(r.PageSize)
}

// TupleBytes returns the on-page footprint of one tuple: aligned header +
// data, plus its line pointer.
func (r *Relation) TupleBytes() int {
	return alignUp(TupleHeaderSize+r.Schema.DataWidth(), MaxAlign) + ItemIDSize
}

// TuplesPerPage returns how many tuples fit on one page.
func (r *Relation) TuplesPerPage() int {
	usable := r.PageSize - PageHeaderSize
	n := usable / r.TupleBytes()
	if n < 1 {
		n = 0
	}
	return n
}

// Page returns heap page i with its checksum stamped. The returned Page
// aliases relation storage; treat it as read-only (the buffer pool
// copies it into a frame).
//
// Checksums are stamped lazily: mutations only mark the page dirty, and
// the stamp happens on the next read here — so the per-insert cost stays
// O(tuple), not O(page), and a page is re-checksummed at most once per
// mutation no matter how many epochs re-read it.
func (r *Relation) Page(i int) (Page, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.pages) {
		return nil, fmt.Errorf("storage: relation %q has no page %d (of %d)", r.Name, i, len(r.pages))
	}
	if i < len(r.dirty) && r.dirty[i] {
		r.pages[i].StampChecksum()
		r.dirty[i] = false
	}
	return r.pages[i], nil
}

// Insert appends one row, allocating a new page when the current one is
// full. It returns the tuple's TID.
func (r *Relation) Insert(vals []float64) (TID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertLocked(vals)
}

func (r *Relation) insertLocked(vals []float64) (TID, error) {
	if len(r.pages) == 0 {
		r.pages = append(r.pages, NewPage(r.PageSize, 0))
		r.dirty = append(r.dirty, true)
	}
	pageNo := len(r.pages) - 1
	p := r.pages[pageNo]
	tid := TID{Page: uint32(pageNo), Item: uint16(p.NumItems())}
	raw, err := EncodeTuple(r.Schema, vals, r.nextXID, tid)
	if err != nil {
		return TID{}, err
	}
	if _, err = p.AddItem(raw); err != nil {
		// Page full: start a new page and retry once.
		p = NewPage(r.PageSize, 0)
		r.pages = append(r.pages, p)
		r.dirty = append(r.dirty, true)
		pageNo++
		tid = TID{Page: uint32(pageNo), Item: 0}
		raw, err = EncodeTuple(r.Schema, vals, r.nextXID, tid)
		if err != nil {
			return TID{}, err
		}
		if _, err = p.AddItem(raw); err != nil {
			return TID{}, fmt.Errorf("storage: tuple of %d bytes does not fit on an empty %d-byte page: %w",
				TupleHeaderSize+r.Schema.DataWidth(), r.PageSize, err)
		}
	}
	r.dirty[pageNo] = true
	r.nextXID++
	r.ntup++
	r.gen++
	return tid, nil
}

// InsertBatch appends many rows, amortizing lock acquisition.
func (r *Relation) InsertBatch(rows [][]float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, vals := range rows {
		if _, err := r.insertLocked(vals); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches the decoded column values of the tuple at tid.
func (r *Relation) Get(tid TID) ([]float64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(tid.Page) >= len(r.pages) {
		return nil, fmt.Errorf("storage: %q: no page %d", r.Name, tid.Page)
	}
	raw, err := r.pages[tid.Page].Item(int(tid.Item))
	if err != nil {
		return nil, err
	}
	return DecodeTuple(r.Schema, nil, raw)
}

// Scan invokes fn for every live tuple in heap order with its decoded
// values. The values slice is reused between calls.
func (r *Relation) Scan(fn func(tid TID, vals []float64) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var vals []float64
	for pn, p := range r.pages {
		for i := 0; i < p.NumItems(); i++ {
			raw, err := p.Item(i)
			if err != nil {
				if id, e2 := p.ItemID(i); e2 == nil && id.Flags != LPNormal {
					continue // deleted tuple
				}
				return err
			}
			vals = vals[:0]
			vals, err = DecodeTuple(r.Schema, vals, raw)
			if err != nil {
				return err
			}
			if err := fn(TID{Page: uint32(pn), Item: uint16(i)}, vals); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScanRaw invokes fn for every live tuple in heap order with its raw
// bytes (header included). The slice aliases the page; callers must not
// retain it. The weave-relation builder uses this to audit tuple
// headers (null bitmaps, varlena tails) before reweaving.
func (r *Relation) ScanRaw(fn func(tid TID, raw []byte) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for pn, p := range r.pages {
		for i := 0; i < p.NumItems(); i++ {
			raw, err := p.Item(i)
			if err != nil {
				if id, e2 := p.ItemID(i); e2 == nil && id.Flags != LPNormal {
					continue // deleted tuple
				}
				return err
			}
			if err := fn(TID{Page: uint32(pn), Item: uint16(i)}, raw); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate checks every page's invariants.
func (r *Relation) Validate() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, p := range r.pages {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("page %d: %w", i, err)
		}
	}
	return nil
}

// Delete marks the tuple at tid dead (it keeps its storage until
// Vacuum, exactly like PostgreSQL before autovacuum runs).
func (r *Relation) Delete(tid TID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(tid.Page) >= len(r.pages) {
		return fmt.Errorf("storage: %q: no page %d", r.Name, tid.Page)
	}
	p := r.pages[tid.Page]
	id, err := p.ItemID(int(tid.Item))
	if err != nil {
		return err
	}
	if id.Flags != LPNormal {
		return fmt.Errorf("storage: tuple %v already dead", tid)
	}
	if err := p.DeleteItem(int(tid.Item)); err != nil {
		return err
	}
	if int(tid.Page) < len(r.dirty) {
		r.dirty[tid.Page] = true
	}
	r.ntup--
	r.gen++
	return nil
}

// Vacuum rewrites the heap without dead tuples, compacting pages. It
// restores the all-tuples-live invariant the generated Strider programs
// rely on (DAnA trains over append-only snapshots; a vacuumed heap is
// equivalent).
func (r *Relation) Vacuum() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.pages
	r.pages = nil
	r.dirty = nil
	r.ntup = 0
	r.gen++
	for _, p := range old {
		for i := 0; i < p.NumItems(); i++ {
			id, err := p.ItemID(i)
			if err != nil {
				return err
			}
			if id.Flags != LPNormal {
				continue
			}
			raw, err := p.Item(i)
			if err != nil {
				return err
			}
			vals, err := DecodeTuple(r.Schema, nil, raw)
			if err != nil {
				return err
			}
			if _, err := r.insertLocked(vals); err != nil {
				return err
			}
		}
	}
	return nil
}
