package runtime

// Options.Precision integration tests: the any-precision knob routes
// training through the weave backend, full-width settings stay
// bit-identical to the historical accelerator path, and out-of-range
// values fail typed.

import (
	"errors"
	"math"
	"testing"

	"dana/internal/backend"
	"dana/internal/ml"
	"dana/internal/storage"
)

// trainPatientWith builds a fresh system from opts, deploys the Patient
// workload, registers its UDF, and trains it.
func trainPatientWith(t *testing.T, opts Options) (*System, *TrainResult, [][]float64) {
	t.Helper()
	s := New(opts)
	d := deployScaled(t, s, "Patient", 0.02)
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(10)
	if _, err := s.Register(a, 8, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	var tuples [][]float64
	if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		tuples = append(tuples, append([]float64(nil), vals...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s, res, tuples
}

func precisionOpts(bits int) Options {
	opts := DefaultOptions()
	opts.PageSize = storage.PageSize8K
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = 20
	opts.Precision = bits
	return opts
}

// TestTrainPrecisionRoutesWeave: a reduced precision pins the weave
// backend through the default dispatch path, and the quantized model
// still fits the data.
func TestTrainPrecisionRoutesWeave(t *testing.T) {
	for _, bits := range []int{4, 8} {
		_, res, tuples := trainPatientWith(t, precisionOpts(bits))
		if res.Backend != backend.NameWeave {
			t.Fatalf("precision %d trained on backend %q, want %q", bits, res.Backend, backend.NameWeave)
		}
		if res.Epochs < 1 || res.SimulatedSeconds <= 0 {
			t.Fatalf("precision %d: epochs=%d simulated=%v", bits, res.Epochs, res.SimulatedSeconds)
		}
		model := make([]float64, len(res.Model))
		for i, v := range res.Model {
			model[i] = float64(v)
		}
		alg := ml.Linear{NFeatures: len(model)}
		zero := make([]float64, len(model))
		if got, base := ml.MeanLoss(alg, model, tuples), ml.MeanLoss(alg, zero, tuples); got > base/2 {
			t.Errorf("precision %d: trained loss %v vs untrained %v: insufficient learning", bits, got, base)
		}
	}
}

// TestTrainPrecisionFullWidthIdentical: Precision 0 and Precision 32
// both keep the accelerator path, bit-for-bit — the knob's default is
// invisible.
func TestTrainPrecisionFullWidthIdentical(t *testing.T) {
	_, base, _ := trainPatientWith(t, precisionOpts(0))
	_, full, _ := trainPatientWith(t, precisionOpts(32))
	if base.Backend != backend.NameAccelerator || full.Backend != backend.NameAccelerator {
		t.Fatalf("backends %q / %q, want accelerator for both", base.Backend, full.Backend)
	}
	if len(base.Model) == 0 || len(base.Model) != len(full.Model) {
		t.Fatalf("model lengths %d vs %d", len(base.Model), len(full.Model))
	}
	for i := range base.Model {
		if math.Float32bits(base.Model[i]) != math.Float32bits(full.Model[i]) {
			t.Fatalf("model[%d]: %v (precision 0) != %v (precision 32)", i, base.Model[i], full.Model[i])
		}
	}
	if base.SimulatedSeconds != full.SimulatedSeconds {
		t.Fatalf("simulated seconds %v vs %v", base.SimulatedSeconds, full.SimulatedSeconds)
	}
}

// TestTrainExplicitWeaveFullWidth: Backend "weave" with no reduced
// precision reads all 32 planes through the vertical layout.
func TestTrainExplicitWeaveFullWidth(t *testing.T) {
	opts := precisionOpts(0)
	opts.Backend = backend.NameWeave
	_, res, tuples := trainPatientWith(t, opts)
	if res.Backend != backend.NameWeave {
		t.Fatalf("trained on backend %q, want %q", res.Backend, backend.NameWeave)
	}
	model := make([]float64, len(res.Model))
	for i, v := range res.Model {
		model[i] = float64(v)
	}
	alg := ml.Linear{NFeatures: len(model)}
	zero := make([]float64, len(model))
	if got, base := ml.MeanLoss(alg, model, tuples), ml.MeanLoss(alg, zero, tuples); got > base/2 {
		t.Errorf("trained loss %v vs untrained %v: insufficient learning", got, base)
	}
}

// TestTrainPrecisionOutOfRange: out-of-range precision fails typed at
// Train, before any backend is touched.
func TestTrainPrecisionOutOfRange(t *testing.T) {
	for _, bits := range []int{-1, 33} {
		s := New(precisionOpts(bits))
		d := deployScaled(t, s, "Patient", 0.02)
		a, err := d.DSLAlgo(8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Register(a, 8, d.Tuples); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Train(a.Name, d.Rel.Name); !errors.Is(err, backend.ErrUnsupported) {
			t.Errorf("precision %d: Train = %v, want ErrUnsupported", bits, err)
		}
	}
}
