package dsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Render prints an Algo back as DSL source (the inverse of Parse). The
// output is valid input for Parse: declarations first, then one
// assignment per operation node in creation order, then the merge,
// model, and convergence statements. Used by tooling to display the
// UDFs the catalog stores, and tested as a parse→print→parse
// round trip.
func Render(a *Algo) string {
	var b strings.Builder
	names := make(map[*Expr]string, len(a.Exprs))
	used := make(map[string]bool)

	fresh := func(prefix string, e *Expr) string {
		n := e.Name
		if n == "" || used[n] {
			for i := 0; ; i++ {
				cand := fmt.Sprintf("%s%d", prefix, i)
				if !used[cand] {
					n = cand
					break
				}
			}
		}
		used[n] = true
		names[e] = n
		return n
	}

	algoName := a.Name
	if algoName == "" {
		algoName = "udf"
	}
	used[algoName] = true

	// Declarations.
	var declOrder []*Expr
	for _, e := range a.Exprs {
		if e.Op == OpLeaf {
			declOrder = append(declOrder, e)
		}
	}
	algoArgs := []string{}
	for _, e := range declOrder {
		switch e.Kind {
		case KModel:
			n := fresh("mo", e)
			fmt.Fprintf(&b, "%s = dana.model(%s)\n", n, dimsOf(e))
			algoArgs = append(algoArgs, n)
		case KInput:
			n := fresh("in", e)
			fmt.Fprintf(&b, "%s = dana.input(%s)\n", n, dimsOf(e))
			algoArgs = append(algoArgs, n)
		case KOutput:
			n := fresh("out", e)
			fmt.Fprintf(&b, "%s = dana.output(%s)\n", n, dimsOf(e))
			algoArgs = append(algoArgs, n)
		case KMeta:
			n := fresh("c", e)
			fmt.Fprintf(&b, "%s = dana.meta(%s)\n", n, strconv.FormatFloat(e.MetaValue, 'g', -1, 64))
		}
	}
	fmt.Fprintf(&b, "%s = dana.algo(%s)\n", algoName, strings.Join(algoArgs, ", "))

	// Operations in creation order. The merge node renders through the
	// algo method; its consumers reference its bound name.
	for _, e := range a.Exprs {
		if e.Op == OpLeaf {
			continue
		}
		n := fresh("t", e)
		if e.Op == OpMerge {
			fmt.Fprintf(&b, "%s = %s.merge(%s, %d, \"%s\")\n",
				n, algoName, names[e.Args[0]], e.MergeCoef, e.MergeOp)
			continue
		}
		fmt.Fprintf(&b, "%s = %s\n", n, renderExpr(e, names))
	}

	for _, ru := range a.RowUpdates {
		fmt.Fprintf(&b, "%s.setModelRow(%s, %s)\n", algoName, names[ru.Idx], names[ru.Val])
	}
	if a.Updated != nil {
		fmt.Fprintf(&b, "%s.setModel(%s)\n", algoName, names[a.Updated])
	}
	if a.Convergence != nil {
		fmt.Fprintf(&b, "%s.setConvergence(%s)\n", algoName, names[a.Convergence])
	}
	fmt.Fprintf(&b, "%s.setEpochs(%d)\n", algoName, a.Epochs)
	return b.String()
}

func dimsOf(e *Expr) string {
	if len(e.Dims) == 0 {
		return ""
	}
	parts := make([]string, len(e.Dims))
	for i, d := range e.Dims {
		parts[i] = strconv.Itoa(d)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// renderExpr prints a single operation over already-named operands.
func renderExpr(e *Expr, names map[*Expr]string) string {
	ref := func(a *Expr) string {
		if n, ok := names[a]; ok {
			return n
		}
		// Operand created later than first use cannot happen (DAG built
		// forward), but guard anyway.
		return fmt.Sprintf("_%d", a.ID)
	}
	switch {
	case e.Op.IsBinary():
		op := e.Op.String()
		return fmt.Sprintf("%s %s %s", ref(e.Args[0]), op, ref(e.Args[1]))
	case e.Op.IsNonLinear():
		return fmt.Sprintf("%s(%s)", e.Op, ref(e.Args[0]))
	case e.Op.IsGroup():
		return fmt.Sprintf("%s(%s, %d)", e.Op, ref(e.Args[0]), e.Axis)
	case e.Op == OpGather:
		return fmt.Sprintf("gather(%s, %s)", ref(e.Args[0]), ref(e.Args[1]))
	default:
		return fmt.Sprintf("/* %v */", e)
	}
}
