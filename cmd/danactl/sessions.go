package main

import (
	"flag"
	"fmt"
	"os"

	"dana/internal/server"
)

// runSessions is the "danactl sessions" subcommand: it drives a seeded
// open-loop multi-tenant load through the accelerator server (the same
// path danasrv serves) and prints the per-tenant session view. The
// sum-identity checks — per-tenant counters equal to each tenant
// registry's strider/engine totals, and their sums equal to the global
// totals — must hold even though the sessions interleave on the shared
// instance pool; danactl exits non-zero if they do not.
func runSessions(args []string) {
	fs := flag.NewFlagSet("sessions", flag.ExitOnError)
	var (
		tenants   = fs.Int("tenants", 4, "number of named tenants")
		jobs      = fs.Int("jobs", 24, "jobs in the generated load")
		rate      = fs.Float64("rate", 8, "open-loop arrival rate, jobs per virtual second")
		scale     = fs.Float64("scale", 0.002, "dataset scale per job")
		epochs    = fs.Int("epochs", 2, "training epoch budget per job")
		seed      = fs.Int64("seed", 1, "load and dataset seed")
		instances = fs.Int("instances", 2, "accelerator instances in the pool")
		policy    = fs.String("policy", "sequence", "scheduling policy: sequence | reconfigure")
	)
	check(fs.Parse(args))

	pol, err := server.ParsePolicy(*policy)
	check(err)
	srv, err := server.New(server.Config{
		Tenants:   server.DefaultTenants(*tenants),
		Instances: *instances,
		Policy:    pol,
		Seed:      *seed,
	})
	check(err)
	specs := server.GenLoad(server.LoadConfig{
		Seed: *seed, Tenants: *tenants, Jobs: *jobs, RateJobsPerSec: *rate,
		Scale: *scale, Epochs: *epochs,
	})
	rep, err := srv.Run(specs)
	check(err)
	server.WriteReport(os.Stdout, rep)
	if err := srv.IdentityError(); err != nil {
		fmt.Fprintln(os.Stderr, "danactl:", err)
		os.Exit(1)
	}
	fmt.Println("per-tenant counter identity holds (tenant sums == registry totals)")
	if rep.Errors > 0 {
		check(fmt.Errorf("%d job(s) failed", rep.Errors))
	}
}
