// Command striderasm assembles, disassembles, and executes Strider ISA
// programs (paper §5.1.2, Table 2).
//
//	striderasm -asm prog.s                # assemble, print 22-bit words
//	striderasm -dis words.hex             # disassemble hex words
//	striderasm -gen -page 32768           # emit the page-walker program
//	striderasm -run prog.s -page 8192 -tuples 10 -features 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dana/internal/storage"
	"dana/internal/strider"
)

func main() {
	var (
		asmFile  = flag.String("asm", "", "assemble a Strider assembly file")
		disFile  = flag.String("dis", "", "disassemble a file of hex instruction words")
		gen      = flag.Bool("gen", false, "generate the PostgreSQL page-walker program")
		runFile  = flag.String("run", "", "assemble and execute a program against a synthetic page")
		pageSize = flag.Int("page", 8192, "page size in bytes")
		tuples   = flag.Int("tuples", 10, "tuples on the synthetic page (-run)")
		features = flag.Int("features", 4, "feature columns on the synthetic page (-run)")
	)
	flag.Parse()

	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		check(err)
		prog, err := strider.Assemble(string(src))
		check(err)
		for _, w := range strider.EncodeProgram(prog) {
			fmt.Printf("%06x\n", w)
		}
	case *disFile != "":
		src, err := os.ReadFile(*disFile)
		check(err)
		var words []uint32
		for _, line := range strings.Fields(string(src)) {
			v, err := strconv.ParseUint(line, 16, 32)
			check(err)
			words = append(words, uint32(v))
		}
		prog, err := strider.DecodeProgram(words)
		check(err)
		fmt.Print(strider.Disassemble(prog))
	case *gen:
		prog, cfg, err := strider.Generate(strider.PostgresLayout(*pageSize))
		check(err)
		fmt.Print(strider.Disassemble(prog))
		fmt.Printf("\\\\ field table: off=%v len=%v flags=%v\n",
			cfg.Fields[0], cfg.Fields[1], cfg.Fields[2])
	case *runFile != "":
		src, err := os.ReadFile(*runFile)
		check(err)
		prog, err := strider.Assemble(string(src))
		check(err)
		_, cfg, err := strider.Generate(strider.PostgresLayout(*pageSize))
		check(err)
		page := buildPage(*pageSize, *tuples, *features)
		vm := strider.NewVM(prog, cfg)
		check(vm.Run(page))
		fmt.Printf("emitted %d bytes in %d cycles\n", len(vm.Out()), vm.Cycles())
		for i := 0; i < len(vm.Out()) && i < 64; i += 16 {
			end := i + 16
			if end > len(vm.Out()) {
				end = len(vm.Out())
			}
			fmt.Printf("  %04x: % x\n", i, vm.Out()[i:end])
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildPage(pageSize, tuples, features int) storage.Page {
	schema := storage.NumericSchema(features)
	page := storage.NewPage(pageSize, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < tuples; i++ {
		vals := make([]float64, features+1)
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		raw, err := storage.EncodeTuple(schema, vals, 1, storage.TID{Item: uint16(i)})
		check(err)
		if _, err := page.AddItem(raw); err != nil {
			break
		}
	}
	return page
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "striderasm:", err)
		os.Exit(1)
	}
}
