package server

import (
	"fmt"
	"testing"
)

// BenchmarkServerTenantLoad runs the CI-sized seeded open-loop load
// end-to-end per iteration and reports the served throughput, p99
// sojourn, and configuration reuse rate alongside the usual ns/op.
func BenchmarkServerTenantLoad(b *testing.B) {
	load := LoadConfig{
		Seed: 1, Tenants: 4, Jobs: 24, RateJobsPerSec: 6,
		Workloads: []string{"WLAN", "Patient", "Blog Feedback"},
		Scale:     0.002, Epochs: 1,
	}
	specs := GenLoad(load)
	var last *Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := New(Config{
			Tenants:   DefaultTenants(load.Tenants),
			Instances: 2,
			Seed:      load.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := srv.Run(specs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d job errors", rep.Errors)
		}
		if err := srv.IdentityError(); err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(last.JobsPerSec, "vjobs/s")
	b.ReportMetric(last.P99Sojourn*1e3, "p99ms")
	b.ReportMetric(100*last.ReuseRate, "reuse%")
}

// BenchmarkServerPlan isolates the virtual-time planner on a large
// synthetic batch (no functional execution).
func BenchmarkServerPlan(b *testing.B) {
	const tenants, jobs = 8, 512
	names := make([]string, tenants)
	quotas := map[string]Quota{}
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
		quotas[names[i]] = Quota{MemBytes: 1 << 30, MaxInFlight: 2}
	}
	specs, _ := synthLoad(3, tenants, jobs, 32)
	cfg := testPlanConfig(names, 4)
	cfg.Quotas = quotas
	est := &fakeEstimator{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := BuildPlan(specs, est, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Placements) != jobs {
			b.Fatalf("placed %d of %d", len(plan.Placements), jobs)
		}
	}
}
