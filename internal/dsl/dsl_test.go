package dsl

import (
	"strings"
	"testing"
)

// buildLinear constructs the paper's §4.3 linear regression via the
// builder API.
func buildLinear() *Algo {
	a := NewAlgo("linearR")
	mo := a.Model(10)
	in := a.Input(10)
	out := a.Output()
	lr := a.Meta(0.3)
	s := Sigma(Mul(mo, in), 1)
	er := Sub(s, out)
	grad := Mul(er, in)
	up := Mul(lr, grad)
	moUp := Sub(mo, up)
	a.MustMerge(grad, 8, "+")
	a.SetModel(moUp)
	a.SetEpochs(100)
	return a
}

func TestBuilderLinearRegression(t *testing.T) {
	a := buildLinear()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.MergeCoef() != 8 {
		t.Errorf("MergeCoef = %d", a.MergeCoef())
	}
	if a.ModelVar == nil || len(a.ModelVar.Dims) != 1 || a.ModelVar.Dims[0] != 10 {
		t.Errorf("model dims = %v", a.ModelVar.Dims)
	}
	if a.Updated == nil || a.Updated.Op != OpSub {
		t.Errorf("updated model = %v", a.Updated)
	}
}

func TestValidateCatchesMissingPieces(t *testing.T) {
	a := NewAlgo("x")
	if err := a.Validate(); err == nil {
		t.Error("empty algo should not validate")
	}
	a.Model(4)
	if err := a.Validate(); err == nil {
		t.Error("algo without input should not validate")
	}
	in := a.Input(4)
	if err := a.Validate(); err == nil {
		t.Error("algo without setModel should not validate")
	}
	a.SetModel(in)
	a.SetEpochs(0)
	if err := a.Validate(); err == nil {
		t.Error("algo without epochs or convergence should not validate")
	}
	a.SetEpochs(5)
	if err := a.Validate(); err != nil {
		t.Errorf("complete algo should validate: %v", err)
	}
}

func TestMergeErrors(t *testing.T) {
	a := NewAlgo("m")
	mo := a.Model(2)
	if _, err := a.Merge(mo, 0, "+"); err == nil {
		t.Error("coef 0 should fail")
	}
	if _, err := a.Merge(mo, 4, "%"); err == nil {
		t.Error("bad op should fail")
	}
	if _, err := a.Merge(mo, 4, "+"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(mo, 4, "+"); err == nil {
		t.Error("second merge should fail")
	}
	b := NewAlgo("other")
	x := b.Model(2)
	c := NewAlgo("third")
	if _, err := c.Merge(x, 2, "+"); err == nil {
		t.Error("cross-algo merge should fail")
	}
}

func TestConsumers(t *testing.T) {
	a := NewAlgo("c")
	mo := a.Model(3)
	in := a.Input(3)
	p := Mul(mo, in)
	q := Add(mo, p)
	cons := a.Consumers(mo)
	if len(cons) != 2 || cons[0] != p || cons[1] != q {
		t.Errorf("Consumers(mo) = %v", cons)
	}
	if got := a.Consumers(q); len(got) != 0 {
		t.Errorf("Consumers(q) = %v", got)
	}
}

// paperLinearSrc is, verbatim modulo whitespace, the code from §4.3.
const paperLinearSrc = `
#Data Declarations
mo = dana.model([10])
in = dana.input([10])
out = dana.output()
lr = dana.meta(0.3) #learning rate
linearR = dana.algo(mo, in, out)
#Gradient or Derivative of the Loss Function
s = sigma(mo * in, 1)
er = s - out
grad = er * in
#Gradient Descent Optimizer
up = lr * grad
mo_up = mo - up
linearR.setModel(mo_up)
merge_coef = dana.meta(8)
grad = linearR.merge(grad, merge_coef, "+")
convergenceFactor = dana.meta(0.01)
n = norm(grad, 1)
conv = n < convergenceFactor
linearR.setConvergence(conv)
linearR.setEpochs(10000)
`

func TestParsePaperLinearRegression(t *testing.T) {
	a, err := Parse(paperLinearSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Name != "linearR" {
		t.Errorf("name = %q", a.Name)
	}
	if a.Epochs != 10000 {
		t.Errorf("epochs = %d", a.Epochs)
	}
	if a.MergeCoef() != 8 {
		t.Errorf("merge coef = %d", a.MergeCoef())
	}
	if a.MergeNode == nil || a.MergeNode.MergeOp != OpAdd {
		t.Errorf("merge node = %v", a.MergeNode)
	}
	if a.Convergence == nil || a.Convergence.Op != OpLt {
		t.Errorf("convergence = %v", a.Convergence)
	}
	if a.Updated == nil || a.Updated.Op != OpSub {
		t.Errorf("updated = %v", a.Updated)
	}
	// The merged variable is grad = er * in.
	if a.MergeNode.Args[0].Op != OpMul {
		t.Errorf("merge arg = %v", a.MergeNode.Args[0])
	}
}

func TestParseAveragedModelMerge(t *testing.T) {
	src := `
mo = dana.model([4])
in = dana.input([4])
out = dana.output()
lr = dana.meta(0.1)
linearR = dana.algo(mo, in, out)
s = sigma(mo * in, 1)
er = s - out
grad = er * in
up = lr * grad
mo_up = mo - up
merge_coef = dana.meta(8)
m1 = linearR.merge(mo_up, merge_coef, "+")
m2 = m1 / merge_coef
linearR.setModel(m2)
linearR.setEpochs(3)
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// setModel target is the averaged merge result.
	if a.Updated.Op != OpDiv {
		t.Errorf("updated = %v", a.Updated)
	}
	if a.Updated.Args[0] != a.MergeNode {
		t.Error("m2 should divide the merge node")
	}
}

func TestParseMatrixDims(t *testing.T) {
	src := `
mo = dana.model([5][2])
in = dana.input([2, 10])
out = dana.output()
al = dana.algo(mo, in, out)
al.setModel(mo)
al.setEpochs(1)
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.ModelVar.Dims; len(d) != 2 || d[0] != 5 || d[1] != 2 {
		t.Errorf("model dims = %v", d)
	}
	if d := a.Inputs[0].Dims; len(d) != 2 || d[0] != 2 || d[1] != 10 {
		t.Errorf("input dims = %v", d)
	}
}

func TestParseCurlyQuotes(t *testing.T) {
	src := "mo = dana.model([2])\nin = dana.input([2])\nout = dana.output()\n" +
		"a = dana.algo(mo, in, out)\ng = mo * in\n" +
		"g2 = a.merge(g, 4, “+”)\na.setModel(mo)\na.setEpochs(1)\n"
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.MergeCoef() != 4 {
		t.Errorf("coef = %d", a.MergeCoef())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", "mo = dana.model([2])\nx = mo * zz\n", "undefined variable"},
		{"no algo", "mo = dana.model([2])\n", "no dana.algo"},
		{"double algo", "mo = dana.model([2])\na = dana.algo(mo)\nb = dana.algo(mo)\n", "declared twice"},
		{"bad decl", "x = dana.frobnicate(3)\n", "unknown declaration"},
		{"bad method", "mo = dana.model([2])\na = dana.algo(mo)\na.launch(mo)\n", "unknown method"},
		{"bad char", "x = $3\n", "unexpected character"},
		{"unterminated string", `mo = dana.model([2])` + "\n" + `a = dana.algo(mo)` + "\n" + `b = a.merge(mo, 2, "+` + "\n", "unterminated"},
		{"merge coef var not meta", "mo = dana.model([2])\na = dana.algo(mo)\nm = a.merge(mo, mo, \"+\")\n", "must be a dana.meta"},
		{"group needs axis", "mo = dana.model([2])\na = dana.algo(mo)\nx = sigma(mo)\n", `expected ","`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseUnaryMinusAndParens(t *testing.T) {
	src := `
mo = dana.model([2])
in = dana.input([2])
out = dana.output()
a = dana.algo(mo, in, out)
x = -(mo * in) + out
a.setModel(x)
a.setEpochs(1)
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updated.Op != OpAdd {
		t.Errorf("top op = %v", a.Updated.Op)
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpSigma.IsGroup() || OpAdd.IsGroup() {
		t.Error("IsGroup wrong")
	}
	if !OpSigmoid.IsNonLinear() || OpSigma.IsNonLinear() {
		t.Error("IsNonLinear wrong")
	}
	if !OpLt.IsBinary() || OpSqrt.IsBinary() {
		t.Error("IsBinary wrong")
	}
}

func TestExprString(t *testing.T) {
	a := NewAlgo("s")
	mo := a.Model(2)
	lr := a.Meta(0.5)
	m := Mul(mo, lr)
	if !strings.Contains(mo.String(), "model") {
		t.Errorf("model String = %q", mo.String())
	}
	if !strings.Contains(lr.String(), "0.5") {
		t.Errorf("meta String = %q", lr.String())
	}
	if !strings.Contains(m.String(), "*") {
		t.Errorf("mul String = %q", m.String())
	}
}

func TestParseSetModelRow(t *testing.T) {
	src := `
mo = dana.model([20][4])
u = dana.input()
v = dana.input()
r = dana.output()
lr = dana.meta(0.1)
mf = dana.algo(mo, u, v, r)
ur = gather(mo, u)
vr = gather(mo, v)
pred = sigma(ur * vr, 1)
e = pred - r
un = ur - lr * (e * vr)
vn = vr - lr * (e * ur)
mf.setModelRow(u, un)
mf.setModelRow(v, vn)
mf.setEpochs(2)
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.RowUpdates) != 2 {
		t.Fatalf("row updates = %d", len(a.RowUpdates))
	}
	if a.RowUpdates[0].Idx.Kind != KInput {
		t.Errorf("row update index kind = %v", a.RowUpdates[0].Idx.Kind)
	}
}

func TestParsePiAndGaussian(t *testing.T) {
	src := `
mo = dana.model([4])
in = dana.input([4])
out = dana.output()
a = dana.algo(mo, in, out)
g = gaussian(mo / in)
p = pi(g, 1)
s = sqrt(p)
cond = s > 0.5
a.setModel(mo)
a.setConvergence(cond)
a.setEpochs(1)
`
	al, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if al.Convergence == nil || al.Convergence.Op != OpGt {
		t.Errorf("convergence = %v", al.Convergence)
	}
	seen := map[Op]bool{}
	for _, e := range al.Exprs {
		seen[e.Op] = true
	}
	for _, op := range []Op{OpGaussian, OpPi, OpSqrt, OpDiv, OpGt} {
		if !seen[op] {
			t.Errorf("op %v missing from parse", op)
		}
	}
}

func TestRenderRoundTripParses(t *testing.T) {
	a := buildLinear()
	src := Render(a)
	b, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("re-parsed algo invalid: %v", err)
	}
	if b.MergeCoef() != a.MergeCoef() || b.Epochs != a.Epochs {
		t.Errorf("coef/epochs drifted: %d/%d vs %d/%d", b.MergeCoef(), b.Epochs, a.MergeCoef(), a.Epochs)
	}
	if len(b.Exprs) != len(a.Exprs) {
		t.Errorf("expr count %d vs %d\n%s", len(b.Exprs), len(a.Exprs), src)
	}
	// Ops appear in the same order.
	for i := range a.Exprs {
		if a.Exprs[i].Op != b.Exprs[i].Op {
			t.Fatalf("expr %d: %v vs %v", i, a.Exprs[i].Op, b.Exprs[i].Op)
		}
	}
}

func TestRenderPaperSource(t *testing.T) {
	a, err := Parse(paperLinearSrc)
	if err != nil {
		t.Fatal(err)
	}
	src := Render(a)
	for _, want := range []string{"dana.model([10])", "sigma(", "merge(", "setConvergence", "setEpochs(10000)"} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered source missing %q:\n%s", want, src)
		}
	}
	if _, err := Parse(src); err != nil {
		t.Fatalf("rendered paper source does not re-parse: %v\n%s", err, src)
	}
}

func TestRenderGatherAndRowUpdates(t *testing.T) {
	a := NewAlgo("mf")
	mo := a.Model(8, 3)
	u := a.Input()
	v := a.Input()
	r := a.Output()
	lr := a.Meta(0.1)
	ur := Gather(mo, u)
	vr := Gather(mo, v)
	e := Sub(Sigma(Mul(ur, vr), 1), r)
	a.SetModelRow(u, Sub(ur, Mul(lr, Mul(e, vr))))
	a.SetModelRow(v, Sub(vr, Mul(lr, Mul(e, ur))))
	a.SetEpochs(2)
	src := Render(a)
	b, err := Parse(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if len(b.RowUpdates) != 2 {
		t.Errorf("row updates = %d\n%s", len(b.RowUpdates), src)
	}
}
