package greenplum_test

import (
	"testing"

	"dana/internal/algos"
	"dana/internal/bufpool"
	"dana/internal/greenplum"
	"dana/internal/ml"
	"dana/internal/storage"
	"dana/internal/verify"
)

// The Greenplum baseline's distributed IGD has an exact reference
// semantics: hash-shard tuples round-robin, each epoch train every
// shard from the shared model, then average the non-empty locals.
// These crosschecks pin the implementation to that reference and to
// the golden trainer in the single-segment (= plain SGD) case.

func clusterFor(t *testing.T, sp verify.GoldenSpec, tuples [][]float64, segments int) *greenplum.Cluster {
	t.Helper()
	var schema *storage.Schema
	if sp.Kind == algos.KindLRMF {
		schema = storage.RatingSchema()
	} else {
		schema = storage.NumericSchema(sp.NFeat)
	}
	rel := storage.NewRelation("gpxcheck", schema, storage.PageSize8K)
	if err := rel.InsertBatch(tuples); err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(64, storage.PageSize8K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(rel); err != nil {
		t.Fatal(err)
	}
	c, err := greenplum.New(pool, rel, sp.Algorithm(), segments)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// referenceTrain is the explicit model of Greenplum's per-epoch
// shard-train-then-average loop, computed without storage, pools, or
// goroutines. The cluster must match it bit-for-bit.
func referenceTrain(algo ml.Algorithm, tuples [][]float64, segments, epochs int) []float64 {
	shards := make([][][]float64, segments)
	for i, tup := range tuples {
		s := i % segments
		shards[s] = append(shards[s], tup)
	}
	model := ml.InitModel(algo, 1)
	for e := 0; e < epochs; e++ {
		var locals [][]float64
		for s := 0; s < segments; s++ {
			if len(shards[s]) == 0 {
				continue
			}
			local := append([]float64(nil), model...)
			for _, tup := range shards[s] {
				algo.Update(local, tup)
			}
			locals = append(locals, local)
		}
		if len(locals) > 0 {
			model = ml.AverageModels(locals)
		}
	}
	return model
}

// TestGreenplumMatchesReference sweeps segment counts (including more
// segments than tuples) across GLM kinds: the cluster's averaged model
// must be bit-identical to the explicit reference loop.
func TestGreenplumMatchesReference(t *testing.T) {
	specs := []verify.GoldenSpec{
		{Kind: algos.KindLinear, NFeat: 5, LR: 0.05, Epochs: 3, MergeCoef: 1},
		{Kind: algos.KindLogistic, NFeat: 4, LR: 0.1, Epochs: 2, MergeCoef: 1},
		{Kind: algos.KindSVM, NFeat: 6, LR: 0.05, Lambda: 0.01, Epochs: 2, MergeCoef: 1},
	}
	for si, sp := range specs {
		sp := sp
		t.Run(string(sp.Kind), func(t *testing.T) {
			g := verify.NewGen(int64(0x6B00 + si))
			tuples := verify.TrainingTuples(g, sp, 35)
			for _, segments := range []int{1, 2, 4, 8, 64} {
				c := clusterFor(t, sp, tuples, segments)
				got, st, err := c.Train(sp.Epochs)
				if err != nil {
					t.Fatal(err)
				}
				if st.Segments != segments {
					t.Errorf("segments=%d: stats report %d segments", segments, st.Segments)
				}
				want := referenceTrain(sp.Algorithm(), tuples, segments, sp.Epochs)
				if err := verify.CompareModels("cluster vs reference", got, want, 0); err != nil {
					t.Errorf("segments=%d: %v", segments, err)
				}
			}
		})
	}
}

// TestSingleSegmentMatchesGolden: one segment degenerates to plain SGD,
// so the cluster must agree with the independent golden trainer within
// float round-off.
func TestSingleSegmentMatchesGolden(t *testing.T) {
	sp := verify.GoldenSpec{Kind: algos.KindLinear, NFeat: 6, LR: 0.05, Epochs: 3, MergeCoef: 1}
	g := verify.NewGen(0x6B10)
	tuples := verify.TrainingTuples(g, sp, 40)
	c := clusterFor(t, sp, tuples, 1)
	got, _, err := c.Train(sp.Epochs)
	if err != nil {
		t.Fatal(err)
	}
	golden := ml.InitModel(sp.Algorithm(), 1)
	if err := sp.Train(golden, tuples); err != nil {
		t.Fatal(err)
	}
	if err := verify.CompareModels("cluster vs golden", got, golden, 1e-9); err != nil {
		t.Error(err)
	}
}

// TestGreenplumCrosscheckDetectsShardDrift is this file's meta-test: a
// reference with the wrong shard assignment must NOT match, proving the
// comparator pins the actual partitioning.
func TestGreenplumCrosscheckDetectsShardDrift(t *testing.T) {
	sp := verify.GoldenSpec{Kind: algos.KindLinear, NFeat: 4, LR: 0.05, Epochs: 2, MergeCoef: 1}
	g := verify.NewGen(0x6B20)
	tuples := verify.TrainingTuples(g, sp, 33)
	c := clusterFor(t, sp, tuples, 4)
	got, _, err := c.Train(sp.Epochs)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the tuple order before sharding: same data, wrong shards.
	rotated := append(append([][]float64(nil), tuples[1:]...), tuples[0])
	wrong := referenceTrain(sp.Algorithm(), rotated, 4, sp.Epochs)
	if err := verify.CompareModels("meta", got, wrong, 0); err == nil {
		t.Fatal("comparator accepted a reference with drifted shard assignment")
	}
}
