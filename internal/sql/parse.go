// Package sql implements the front half of the RDBMS substrate: a small
// SQL dialect (CREATE TABLE / INSERT / SELECT / DROP) with the paper's
// UDF invocation form `SELECT * FROM dana.<udf>('table')`, parsed into
// logical plans and executed volcano-style over the buffer pool.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is `CREATE TABLE name (col type, ...)`.
type CreateTable struct {
	Name string
	Cols []ColDef
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type string
}

// Insert is `INSERT INTO name VALUES (...), (...)`.
type Insert struct {
	Table string
	Rows  [][]float64
}

// Select is `SELECT list FROM t [WHERE col op val] [LIMIT n]`.
type Select struct {
	Columns    []string  // nil means *
	CountAll   bool      // SELECT COUNT(*)
	Aggregates []AggSpec // SUM/AVG/MIN/MAX(col) list
	Table      string
	UDF        string // non-empty for dana.<udf>('table')
	UDFArg     string
	Where      *Predicate
	Limit      int // -1 = none
}

// AggSpec is one aggregate in the select list.
type AggSpec struct {
	Func string // sum, avg, min, max, count
	Col  string // column name ("*" for count)
}

// Predicate is a simple column-vs-constant comparison.
type Predicate struct {
	Col string
	Op  string // = <> < > <= >=
	Val float64
}

// DropTable is `DROP TABLE name`.
type DropTable struct{ Name string }

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (DropTable) stmt()   {}

// --- lexer -------------------------------------------------------------

type sqlTokKind uint8

const (
	sEOF sqlTokKind = iota
	sIdent
	sNumber
	sString
	sPunct
)

type sqlTok struct {
	kind sqlTokKind
	text string // idents lowercased
	pos  int
}

func lexSQL(src string) ([]sqlTok, error) {
	var toks []sqlTok
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '-' && i+1 < len(rs) && rs[i+1] == '-': // comment
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, sqlTok{sString, string(rs[i+1 : j]), i})
			i = j + 1
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, sqlTok{sIdent, strings.ToLower(string(rs[i:j])), i})
			i = j
		case unicode.IsDigit(r) || (r == '-' && i+1 < len(rs) && unicode.IsDigit(rs[i+1])),
			r == '+' && i+1 < len(rs) && unicode.IsDigit(rs[i+1]):
			j := i + 1
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == 'e' || rs[j] == 'E' ||
				((rs[j] == '+' || rs[j] == '-') && (rs[j-1] == 'e' || rs[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, sqlTok{sNumber, string(rs[i:j]), i})
			i = j
		case strings.ContainsRune("(),;*.=", r):
			toks = append(toks, sqlTok{sPunct, string(r), i})
			i++
		case r == '<' || r == '>':
			op := string(r)
			if i+1 < len(rs) && (rs[i+1] == '=' || (r == '<' && rs[i+1] == '>')) {
				op += string(rs[i+1])
				i++
			}
			toks = append(toks, sqlTok{sPunct, op, i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", r, i)
		}
	}
	toks = append(toks, sqlTok{sEOF, "", len(rs)})
	return toks, nil
}

// --- parser ------------------------------------------------------------

type sqlParser struct {
	toks []sqlTok
	pos  int
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var stmts []Statement
	for {
		for p.acceptPunct(";") {
		}
		if p.peek().kind == sEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

// Parse parses exactly one statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *sqlParser) peek() sqlTok { return p.toks[p.pos] }

func (p *sqlParser) next() sqlTok {
	t := p.toks[p.pos]
	if t.kind != sEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) acceptPunct(s string) bool {
	if p.peek().kind == sPunct && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.peek().kind == sIdent && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s near offset %d", strings.ToUpper(kw), p.peek().pos)
	}
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sql: expected %q near offset %d, found %q", s, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	if p.peek().kind != sIdent {
		return "", fmt.Errorf("sql: expected identifier near offset %d, found %q", p.peek().pos, p.peek().text)
	}
	return p.next().text, nil
}

func (p *sqlParser) number() (float64, error) {
	if p.peek().kind != sNumber {
		return 0, fmt.Errorf("sql: expected number near offset %d, found %q", p.peek().pos, p.peek().text)
	}
	v, err := strconv.ParseFloat(p.next().text, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad number: %w", err)
	}
	return v, nil
}

func (p *sqlParser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("create"):
		return p.createTable()
	case p.acceptKeyword("insert"):
		return p.insert()
	case p.acceptKeyword("select"):
		return p.selectStmt()
	case p.acceptKeyword("drop"):
		return p.dropTable()
	default:
		return nil, fmt.Errorf("sql: expected statement near offset %d, found %q", p.peek().pos, p.peek().text)
	}
}

func (p *sqlParser) createTable() (Statement, error) {
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ColDef
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		// "double precision" is a two-word type name.
		if tn == "double" && p.peek().kind == sIdent && p.peek().text == "precision" {
			p.next()
			tn = "double precision"
		}
		cols = append(cols, ColDef{Name: cn, Type: tn})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return CreateTable{Name: name, Cols: cols}, nil
}

func (p *sqlParser) insert() (Statement, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	var rows [][]float64
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []float64
		for {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return Insert{Table: name, Rows: rows}, nil
}

func (p *sqlParser) selectStmt() (Statement, error) {
	sel := Select{Limit: -1}
	isAgg := func(name string) bool {
		switch name {
		case "count", "sum", "avg", "min", "max":
			return true
		}
		return false
	}
	switch {
	case p.acceptPunct("*"):
	case p.peek().kind == sIdent && isAgg(p.peek().text) &&
		p.toks[p.pos+1].kind == sPunct && p.toks[p.pos+1].text == "(":
		for {
			fn := p.next().text
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var col string
			if p.acceptPunct("*") {
				if fn != "count" {
					return nil, fmt.Errorf("sql: %s(*) is not supported", fn)
				}
				col = "*"
			} else {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				col = c
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if fn == "count" && col == "*" && len(sel.Aggregates) == 0 {
				sel.CountAll = true
			}
			sel.Aggregates = append(sel.Aggregates, AggSpec{Func: fn, Col: col})
			if !p.acceptPunct(",") {
				break
			}
			if p.peek().kind != sIdent || !isAgg(p.peek().text) {
				return nil, fmt.Errorf("sql: cannot mix aggregates and plain columns")
			}
		}
		if len(sel.Aggregates) > 1 || !sel.CountAll {
			sel.CountAll = false
		}
	default:
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if first == "dana" && p.acceptPunct(".") {
		udf, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.peek().kind != sString {
			return nil, fmt.Errorf("sql: dana.%s needs a quoted table name", udf)
		}
		sel.UDF = udf
		sel.UDFArg = p.next().text
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else {
		sel.Table = first
	}
	if p.acceptKeyword("where") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != sPunct {
			return nil, fmt.Errorf("sql: expected comparison operator near offset %d", p.peek().pos)
		}
		op := p.next().text
		switch op {
		case "=", "<", ">", "<=", ">=", "<>":
		default:
			return nil, fmt.Errorf("sql: unsupported operator %q", op)
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		sel.Where = &Predicate{Col: col, Op: op, Val: v}
	}
	if p.acceptKeyword("limit") {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		sel.Limit = int(v)
	}
	return sel, nil
}

func (p *sqlParser) dropTable() (Statement, error) {
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropTable{Name: name}, nil
}
