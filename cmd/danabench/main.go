// Command danabench regenerates the paper's evaluation tables and
// figures from the reproduction's models and simulators.
//
//	danabench -exp all          # everything
//	danabench -exp table5       # one experiment
//	danabench -exp fig12 -v     # with extra detail
//
// Experiments: table3 table4 table5 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 fig16, plus pagesweep (8/16/32 KB sensitivity), batch
// (batch-size vs epochs-to-converge, functional), ablation (design
// ablations), scorecard (headline paper-vs-measured summary), tenants
// (multi-tenant server: sequence-aware vs always-reconfigure), and
// precision (MLWeaving any-precision weave path: modeled transfer vs
// epochs-to-converge at 1..32 bits).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dana/internal/experiments"
	"dana/internal/hwgen"
	"dana/internal/server"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table3, table4, table5, fig8..fig16)")
	bench := flag.String("bench", "", "benchmark regexp: run `go test -bench` instead of experiments and export BENCH_<name>.json")
	count := flag.Int("count", 5, "bench mode: repetitions per benchmark (median is exported)")
	pkgs := flag.String("benchpkgs", "./...", "bench mode: packages passed to go test")
	name := flag.String("name", "local", "bench mode: label; output file is BENCH_<name>.json")
	outDir := flag.String("outdir", ".", "bench mode: directory for BENCH_<name>.json")
	baseline := flag.String("baseline", "", "bench mode: baseline BENCH_*.json to gate wall times against")
	maxReg := flag.Float64("maxreg", 0.15, "bench mode: max tolerated wall-time regression vs baseline")
	flag.Parse()
	if *bench != "" {
		if err := runBenchMode(*bench, *count, *pkgs, *name, *outDir, *baseline, *maxReg); err != nil {
			fail(err)
		}
		return
	}
	env := experiments.DefaultEnv()
	runners := map[string]func(experiments.Env) error{
		"table3": table3, "table4": table4, "table5": table5,
		"fig8": figSpeedups("fig8", "real"), "fig9": figSpeedups("fig9", "S/N"),
		"fig10": figSpeedups("fig10", "S/E"),
		"fig11": fig11, "fig12": fig12, "fig13": fig13,
		"fig14": fig14, "fig15": fig15, "fig16": fig16,
		"pagesweep": pageSweep, "batch": batchConv, "ablation": ablations,
		"scorecard": scorecard, "schedule": schedule, "custom": custom,
		"channels": channelSweep, "tenants": tenants,
		"precision": precisionSweep,
	}
	if *exp == "all" {
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		// Run every experiment even when one errors, so a single broken
		// scenario doesn't hide the state of the rest — but still exit
		// non-zero if anything failed.
		var failed []string
		for _, n := range names {
			if err := runners[n](env); err != nil {
				fmt.Fprintf(os.Stderr, "danabench: %s: %v\n", n, err)
				failed = append(failed, n)
			}
		}
		if len(failed) > 0 {
			fail(fmt.Errorf("%d experiment(s) failed: %s", len(failed), strings.Join(failed, ", ")))
		}
		return
	}
	r, ok := runners[*exp]
	if !ok {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := r(env); err != nil {
		fail(err)
	}
}

func custom(env experiments.Env) error {
	header("Comparison with hand-coded FPGA designs (§7.3)")
	rows, err := experiments.CustomDesignComparison(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %-20s %12s %10s %11s\n", "Custom design", "Workload", "DAnA/custom", "DAnA GOPS", "Custom GOPS")
	for _, r := range rows {
		fmt.Printf("%-34s %-20s %11.2fx %10.2f %11.2f\n", r.Design, r.Workload, r.SpeedRatio, r.DAnAGOPS, r.CustomGOPS)
	}
	return nil
}

func schedule(env experiments.Env) error {
	header("List-scheduler throughput analysis (per-tuple program)")
	rows, err := experiments.SchedulerStudy(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %10s %10s %6s\n", "Workload", "serial", "scheduled", "critpath", "ILP")
	for _, r := range rows {
		fmt.Printf("%-20s %10d %10d %10d %6.2f\n", r.Name, r.Serial, r.Makespan, r.CriticalPath, r.ILP)
	}
	return nil
}

func scorecard(env experiments.Env) error {
	header("Reproduction scorecard: headline paper numbers vs this reproduction")
	rows, err := experiments.Scorecard(env)
	if err != nil {
		return err
	}
	pass := 0
	for _, r := range rows {
		fmt.Println(r)
		if r.OK() {
			pass++
		}
	}
	fmt.Printf("%d/%d headline metrics within band\n", pass, len(rows))
	return nil
}

func pageSweep(env experiments.Env) error {
	header("Page-size sweep (paper §7: no significant impact): runtime relative to 32 KB")
	rows, err := experiments.PageSizeSweep(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %8s %8s %8s | %8s %8s %8s\n", "Workload", "PG 8K", "PG 16K", "PG 32K", "GP 8K", "GP 16K", "GP 32K")
	for _, r := range rows {
		fmt.Printf("%-20s %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f\n",
			r.Name, r.PG8K, r.PG16K, r.PG32K, r.GP8K, r.GP16K, r.GP32K)
	}
	return nil
}

func batchConv(env experiments.Env) error {
	header("Batch size vs epochs-to-converge (functional, scaled datasets)")
	names := []string{"Remote Sensing LR", "Remote Sensing SVM", "Patient", "Blog Feedback"}
	rows, err := experiments.BatchConvergence(names, env, 0.002, 0.5, 300)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s", "Workload")
	for _, b := range experiments.BatchSizes {
		fmt.Printf(" batch=%-4d", b)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-20s", r.Name)
		for _, b := range experiments.BatchSizes {
			fmt.Printf(" %-10d", r.Epochs[b])
		}
		fmt.Println()
	}
	return nil
}

func ablations(env experiments.Env) error {
	header("Design ablations: speedup over MADlib+PG (warm)")
	rows, gm, err := experiments.Ablations(env)
	if err != nil {
		return err
	}
	for _, r := range append(rows, gm) {
		fmt.Println(experiments.FormatAblation(r))
	}
	return nil
}

// channelSweep extends Figure 14 along the memory-channel axis and
// emits CSV (one row per workload × channel count × bandwidth scale).
// The experiment fails — and danabench exits non-zero — if any sweep
// point violates the channel model's charging identities (aggregate =
// channels × per-channel, 1-channel ≡ legacy scalar, transfer ≡ serial
// per-page recomputation).
func channelSweep(env experiments.Env) error {
	header("Channel sweep: epoch pipeline vs bandwidth × memory channels (Fig 14 extended, CSV)")
	rows, err := experiments.ChannelSweep(env)
	if err != nil {
		return err
	}
	fmt.Println("workload,channels,scale,aggregate_gb_s,transfer_s,pipeline_s,speedup,saturated")
	for _, r := range rows {
		fmt.Printf("%s,%d,%g,%.3f,%.6g,%.6g,%.3f,%t\n",
			r.Name, r.Channels, r.Scale, r.AggregateBW/1e9,
			r.TransferSec, r.PipelineSec, r.Speedup, r.Saturated)
	}
	return nil
}

// precisionSweep trains the committed seeds through the MLWeaving-style
// any-precision weave path at 1..32 bits and prints the tradeoff curve:
// modeled link bytes/seconds per epoch against epochs-to-converge. The
// experiment errors — and danabench exits non-zero — if modeled
// transfer is not monotone non-increasing as precision drops, if the
// full-width run is not bit-identical to the accelerator path (model
// and counters), or if any reduced-precision run misses its epoch
// budget.
func precisionSweep(env experiments.Env) error {
	header("Precision sweep: any-precision weave path, transfer vs epochs-to-converge (MLWeaving tradeoff)")
	rows, err := experiments.PrecisionSweep(env)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(experiments.FormatPrecision(r))
	}
	return nil
}

// tenants runs the seeded many-tenant open-loop load through the
// multi-tenant server under sequence-aware scheduling and compares it
// against an always-reconfigure plan of the same schedule. The
// experiment errors — and -exp all exits non-zero — if any job fails,
// the per-tenant counter identity breaks, or sequence-aware fails to
// beat always-reconfigure on modeled makespan.
func tenants(env experiments.Env) error {
	header("Multi-tenant server: sequence-aware vs always-reconfigure (seeded open-loop load)")
	_, err := server.TenantExperiment(os.Stdout, server.DefaultExperiment())
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "danabench:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table3(env experiments.Env) error {
	header("Table 3: datasets and models (ours vs paper)")
	fmt.Printf("%-20s %-9s %-18s %12s %10s %9s %10s %8s\n",
		"Workload", "Algo", "Topology", "Tuples", "Pages32K", "SizeMB", "PaperPgs", "PaperMB")
	for _, r := range experiments.Table3(env) {
		fmt.Printf("%-20s %-9s %-18s %12d %10d %9.0f %10d %8d\n",
			r.Name, r.Algorithm, fmt.Sprint(r.Topology), r.Tuples, r.Pages32K, r.SizeMB,
			r.PaperPages32K, r.PaperSizeMB)
	}
	return nil
}

func table4(env experiments.Env) error {
	header("Table 4: FPGA specification")
	f := env.FPGA
	fmt.Printf("%s\n  LUTs=%d  FFs=%d  clock=%.0f MHz  BRAM=%d MB  DSPs=%d  max AUs=%d\n",
		f.Name, f.LUTs, f.FlipFlops, f.ClockHz/1e6, f.BRAMBytes>>20, f.DSPs, f.MaxAUsAvailable())
	_ = hwgen.VU9P()
	return nil
}

func table5(env experiments.Env) error {
	header("Table 5: absolute runtimes (modeled, warm cache)")
	rows, err := experiments.Table5(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %14s %14s %14s\n", "Workload", "MADlib+PG", "MADlib+GP", "DAnA+PG")
	for _, r := range rows {
		fmt.Printf("%-20s %14s %14s %14s\n", r.Name,
			experiments.FormatSeconds(r.PGSec),
			experiments.FormatSeconds(r.GPSec),
			experiments.FormatSeconds(r.DAnASec))
	}
	return nil
}

func figSpeedups(fig, class string) func(experiments.Env) error {
	return func(env experiments.Env) error {
		for _, warm := range []bool{true, false} {
			cache := "warm"
			if !warm {
				cache = "cold"
			}
			header(fmt.Sprintf("%s (%s datasets, %s cache): end-to-end speedup over MADlib+PostgreSQL", fig, class, cache))
			rows, gm, err := experiments.ClassSpeedups(class, env, warm)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %12s %12s %12s\n", "Workload", "GP/PG", "DAnA/PG", "DAnA/GP")
			for _, r := range append(rows, gm) {
				fmt.Printf("%-20s %11.1fx %11.1fx %11.1fx\n", r.Name, r.GPvsPG, r.DAnAvsPG, r.DAnAvsGP)
			}
		}
		return nil
	}
}

func fig11(env experiments.Env) error {
	header("Figure 11: DAnA with vs without Striders (speedup over MADlib+PG, warm)")
	rows, gm, err := experiments.StriderBenefit(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %14s %14s\n", "Workload", "w/o Strider", "with Strider")
	for _, r := range append(rows, gm) {
		fmt.Printf("%-20s %13.1fx %13.1fx\n", r.Name, r.WithoutStrider, r.WithStrider)
	}
	return nil
}

func fig12(env experiments.Env) error {
	header("Figure 12: accelerator runtime vs merge coefficient (relative to 1 thread)")
	coefs := []int{1, 4, 16, 64, 256, 1024}
	for _, name := range experiments.Fig12Workloads {
		pts, err := experiments.ThreadSweep(name, env, coefs)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", name)
		for _, p := range pts {
			bar := strings.Repeat("#", int(p.RelRuntime*40))
			fmt.Printf("  coef %5d: threads %4d util %5.1f%% runtime %.3f %s\n",
				p.Coef, p.Threads, 100*p.Utilization, p.RelRuntime, bar)
		}
	}
	return nil
}

func fig13(env experiments.Env) error {
	header("Figure 13: Greenplum segment sweep (speedup relative to 8 segments)")
	rows, gm, err := experiments.SegmentSweep(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %10s %10s %10s\n", "Workload", "PG", "4 seg", "8 seg", "16 seg")
	for _, r := range append(rows, gm) {
		fmt.Printf("%-20s %9.2fx %9.2fx %9.2fx %9.2fx\n", r.Name, r.PG, r.Seg4, r.Seg8, r.Seg16)
	}
	return nil
}

func fig14(env experiments.Env) error {
	header("Figure 14: FPGA time vs link bandwidth (speedup over baseline bandwidth)")
	rows, err := experiments.BandwidthSweep(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s", "Workload")
	for _, sc := range experiments.BandwidthScales {
		fmt.Printf(" %7.2fx", sc)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-20s", r.Name)
		for _, sc := range experiments.BandwidthScales {
			fmt.Printf(" %7.2f ", r.Speedups[sc])
		}
		fmt.Println()
	}
	return nil
}

func fig15(env experiments.Env) error {
	rows, err := experiments.ExternalLibraries(env)
	if err != nil {
		return err
	}
	header("Figure 15a: external library runtime breakdown (1 epoch)")
	fmt.Printf("%-20s %-10s %10s %10s %10s\n", "Workload", "Library", "Export%", "Transform%", "Compute%")
	for _, r := range rows {
		if !isNaN(r.LiblinearSec) {
			b := r.LiblinearBreakdown
			fmt.Printf("%-20s %-10s %9.1f%% %9.1f%% %9.1f%%\n", r.Name, "Liblinear",
				100*b.ExportSec/b.TotalSec, 100*b.TransformSec/b.TotalSec, 100*b.ComputeSec/b.TotalSec)
		}
		b := r.DimmWittedBreakdown
		fmt.Printf("%-20s %-10s %9.1f%% %9.1f%% %9.1f%%\n", r.Name, "DimmWitted",
			100*b.ExportSec/b.TotalSec, 100*b.TransformSec/b.TotalSec, 100*b.ComputeSec/b.TotalSec)
	}
	header("Figure 15b/c: compute and end-to-end times (1 epoch, seconds)")
	fmt.Printf("%-20s %10s %10s %10s %10s | %10s %10s %10s\n",
		"Workload", "PGcomp", "LLcomp", "DWcomp", "DAnAcomp", "LLtotal", "DWtotal", "DAnAtotal")
	for _, r := range rows {
		fmt.Printf("%-20s %10.2f %10.2f %10.2f %10.4f | %10.2f %10.2f %10.3f\n",
			r.Name, r.PGComputeSec, r.LiblinearComputeSec, r.DimmWittedComputeSec, r.DAnAComputeSec,
			r.LiblinearSec, r.DimmWittedSec, r.DAnASec)
	}
	return nil
}

func isNaN(f float64) bool { return f != f }

func fig16(env experiments.Env) error {
	header("Figure 16: DAnA vs TABLA (execution-engine compute speedup)")
	rows, gm, err := experiments.TablaComparison(env)
	if err != nil {
		return err
	}
	for _, r := range append(rows, gm) {
		fmt.Printf("%-20s %8.1fx\n", r.Name, r.Speedup)
	}
	return nil
}
