package compiler

import (
	"math"
	"math/rand"
	"testing"

	"dana/internal/engine"
)

func runMicroCross(t *testing.T, prog *engine.Program, cfg engine.Config, width, n int, seed int64, init []float32) {
	t.Helper()
	cfg.Threads = 1
	mac, err := engine.NewMachine(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := engine.Lower(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mic := engine.NewMicroMachine(mp)
	if init != nil {
		if err := mac.SetModel(init); err != nil {
			t.Fatal(err)
		}
		if err := mic.SetModel(init); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		tuple := make([]float32, width)
		for j := range tuple {
			tuple[j] = float32(rng.NormFloat64())
		}
		if err := mac.RunBatch([][]float32{tuple}); err != nil {
			t.Fatal(err)
		}
		if err := mic.RunTuple(tuple); err != nil {
			t.Fatal(err)
		}
	}
	a, b := mac.Model(), mic.Model()
	for i := range a {
		diff := math.Abs(float64(a[i] - b[i]))
		if diff/math.Max(1, math.Abs(float64(a[i]))) > 1e-4 {
			t.Fatalf("model[%d]: macro %v vs micro %v", i, a[i], b[i])
		}
	}
}

func TestMicroLoweringLinear(t *testing.T) {
	_, p := mustCompile(t, linearAlgo(13, 0, 0.03))
	runMicroCross(t, p, cfg(1, 2), 14, 50, 1, nil)
}

func TestMicroLoweringLinearWithMerge(t *testing.T) {
	_, p := mustCompile(t, linearAlgo(10, 8, 0.02))
	runMicroCross(t, p, cfg(1, 2), 11, 40, 2, nil)
}

func TestMicroLoweringLogistic(t *testing.T) {
	_, p := mustCompile(t, logisticAlgo(9, 4, 0.1))
	runMicroCross(t, p, cfg(1, 1), 10, 40, 3, nil)
}

func TestMicroLoweringSVM(t *testing.T) {
	_, p := mustCompile(t, svmAlgo(12, 4, 0.05, 0.01))
	runMicroCross(t, p, cfg(1, 2), 13, 40, 4, nil)
}

func TestMicroLoweringLRMF(t *testing.T) {
	_, p := mustCompile(t, lrmfAlgo(12, 5, 0.05))
	init := make([]float32, 60)
	rng := rand.New(rand.NewSource(5))
	for i := range init {
		init[i] = float32(0.2 * rng.Float64())
	}
	cfg := engine.Config{Threads: 1, ACsPerThread: 1, AUsPerAC: 8, ClockHz: 150e6}
	mac, err := engine.NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := engine.Lower(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mic := engine.NewMicroMachine(mp)
	if err := mac.SetModel(init); err != nil {
		t.Fatal(err)
	}
	if err := mic.SetModel(init); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		tuple := []float32{
			float32(rng.Intn(6)),     // user row 0..5
			float32(6 + rng.Intn(6)), // item row 6..11
			float32(rng.NormFloat64()),
		}
		if err := mac.RunBatch([][]float32{tuple}); err != nil {
			t.Fatal(err)
		}
		if err := mic.RunTuple(tuple); err != nil {
			t.Fatal(err)
		}
	}
	a, b := mac.Model(), mic.Model()
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-5 {
			t.Fatalf("model[%d]: macro %v vs micro %v", i, a[i], b[i])
		}
	}
}

func TestMicroInstructionFootprint(t *testing.T) {
	// The micro expansion of a 54-feature linear program should stay in
	// the hundreds of AC instructions — a compact footprint per §5.1.2.
	_, p := mustCompile(t, linearAlgo(54, 16, 0.01))
	mp, err := engine.Lower(p, engine.Config{Threads: 1, ACsPerThread: 7, AUsPerAC: 8, ClockHz: 150e6})
	if err != nil {
		t.Fatal(err)
	}
	pt, pm, _ := mp.Count()
	if pt == 0 {
		t.Fatal("no per-tuple micro ops")
	}
	if pt+pm > 1500 {
		t.Errorf("micro footprint %d+%d unexpectedly large", pt, pm)
	}
}
