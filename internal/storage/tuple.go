package storage

import (
	"encoding/binary"
	"fmt"
)

// Heap tuple header layout, mirroring PostgreSQL's HeapTupleHeaderData:
//
//	t_xmin      uint32  // inserting transaction id
//	t_xmax      uint32  // deleting transaction id
//	t_cid       uint32  // command id
//	t_ctid      6 bytes // (block uint32, offnum uint16)
//	t_infomask2 uint16  // number of attributes + flag bits
//	t_infomask  uint16  // flag bits
//	t_hoff      uint8   // offset to user data (MAXALIGN'd)
//
// 23 bytes of header; with no null bitmap, t_hoff = MAXALIGN(23) = 24.
const (
	tupXminOff      = 0
	tupXmaxOff      = 4
	tupCidOff       = 8
	tupCtidBlockOff = 12
	tupCtidOffnum   = 16
	tupInfomask2Off = 18
	tupInfomaskOff  = 20
	tupHoffOff      = 22

	// TupleHeaderRawSize is the unaligned heap tuple header size.
	TupleHeaderRawSize = 23
	// TupleHeaderSize is t_hoff for tuples without a null bitmap.
	TupleHeaderSize = 24 // MAXALIGN(23)
)

// Infomask bits we model (subset of PostgreSQL's).
const (
	InfomaskHasNull    = 0x0001
	InfomaskXminCommit = 0x0100
	InfomaskXmaxInval  = 0x0800
)

// TID identifies a tuple by (page number, item index).
type TID struct {
	Page uint32
	Item uint16
}

func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Item) }

// TupleMeta is the decoded heap tuple header.
type TupleMeta struct {
	Xmin, Xmax uint32
	Cid        uint32
	Ctid       TID
	Infomask2  uint16
	Infomask   uint16
	Hoff       uint8
}

// NAttrs returns the attribute count recorded in infomask2.
func (m TupleMeta) NAttrs() int { return int(m.Infomask2 & 0x07FF) }

// EncodeTuple serializes a heap tuple (header + row data) for the given
// schema into a fresh byte slice.
func EncodeTuple(s *Schema, vals []float64, xmin uint32, ctid TID) ([]byte, error) {
	buf := make([]byte, TupleHeaderSize+s.DataWidth())
	binary.LittleEndian.PutUint32(buf[tupXminOff:], xmin)
	binary.LittleEndian.PutUint32(buf[tupXmaxOff:], 0)
	binary.LittleEndian.PutUint32(buf[tupCidOff:], 0)
	binary.LittleEndian.PutUint32(buf[tupCtidBlockOff:], ctid.Page)
	binary.LittleEndian.PutUint16(buf[tupCtidOffnum:], ctid.Item+1) // PostgreSQL offsets are 1-based
	binary.LittleEndian.PutUint16(buf[tupInfomask2Off:], uint16(s.NumCols())&0x07FF)
	binary.LittleEndian.PutUint16(buf[tupInfomaskOff:], InfomaskXminCommit|InfomaskXmaxInval)
	buf[tupHoffOff] = TupleHeaderSize
	if err := s.EncodeValues(buf[TupleHeaderSize:], vals); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeTupleMeta parses the heap tuple header.
func DecodeTupleMeta(raw []byte) (TupleMeta, error) {
	if len(raw) < TupleHeaderRawSize {
		return TupleMeta{}, fmt.Errorf("%w: tuple of %d bytes shorter than header", ErrCorrupt, len(raw))
	}
	m := TupleMeta{
		Xmin: binary.LittleEndian.Uint32(raw[tupXminOff:]),
		Xmax: binary.LittleEndian.Uint32(raw[tupXmaxOff:]),
		Cid:  binary.LittleEndian.Uint32(raw[tupCidOff:]),
		Ctid: TID{
			Page: binary.LittleEndian.Uint32(raw[tupCtidBlockOff:]),
			Item: binary.LittleEndian.Uint16(raw[tupCtidOffnum:]) - 1,
		},
		Infomask2: binary.LittleEndian.Uint16(raw[tupInfomask2Off:]),
		Infomask:  binary.LittleEndian.Uint16(raw[tupInfomaskOff:]),
		Hoff:      raw[tupHoffOff],
	}
	if int(m.Hoff) > len(raw) {
		return TupleMeta{}, fmt.Errorf("%w: t_hoff %d beyond tuple of %d bytes", ErrCorrupt, m.Hoff, len(raw))
	}
	return m, nil
}

// TupleData returns the user-data portion of a raw heap tuple.
func TupleData(raw []byte) ([]byte, error) {
	m, err := DecodeTupleMeta(raw)
	if err != nil {
		return nil, err
	}
	return raw[m.Hoff:], nil
}

// DecodeTuple parses a raw heap tuple into float64 column values. It is
// the fixed-width NOT NULL fast path: tuples carrying a null bitmap are
// rejected (their attribute offsets are dynamic — use
// DecodeTupleWithNulls), rather than silently misread through the
// schema's static offset table.
func DecodeTuple(s *Schema, dst []float64, raw []byte) ([]float64, error) {
	m, err := DecodeTupleMeta(raw)
	if err != nil {
		return dst, err
	}
	if m.Infomask&InfomaskHasNull != 0 {
		return dst, fmt.Errorf("%w: tuple has a null bitmap; use DecodeTupleWithNulls", ErrCorrupt)
	}
	return s.DecodeValues(dst, raw[m.Hoff:])
}
