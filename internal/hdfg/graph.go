// Package hdfg implements DAnA's translator (paper §4.4): it converts a
// DSL Algo into a hierarchical DataFlow Graph with inferred shapes, a
// merge boundary, and per-epoch (convergence) staging. It also provides
// a float64 reference interpreter used as the golden model for the
// accelerator simulator.
package hdfg

import (
	"fmt"

	"dana/internal/dsl"
)

// Shape is the dimensionality of an edge: nil/empty = scalar, [n] =
// vector, [n,m] = matrix. A third dimension appears only for the
// contraction intermediate of matrix×matrix group operations (paper's
// sigma(mo*in, 2) example producing a [5][2] result from [5][10] and
// [2][10] operands).
type Shape []int

// Size returns the number of scalar elements.
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// NDim returns the number of dimensions (0 for scalar).
func (s Shape) NDim() int { return len(s) }

// Equal reports shape equality.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	if len(s) == 0 {
		return "scalar"
	}
	return fmt.Sprint([]int(s))
}

// Node is one multi-dimensional operation of the hDFG. Each node
// decomposes into Shape.Size() atomic sub-nodes for scheduling.
type Node struct {
	ID    int
	Op    dsl.Op
	Kind  dsl.Kind // for OpLeaf nodes
	Name  string
	Shape Shape
	Args  []*Node

	Axis      int     // group ops
	MetaValue float64 // meta leaves
	MergeOp   dsl.Op  // merge node
	MergeCoef int     // merge node

	// PostMerge marks nodes that execute once per merge batch (after
	// the merge boundary) rather than once per training tuple.
	PostMerge bool
	// ConvOnly marks nodes needed only for the convergence check, which
	// runs once per epoch.
	ConvOnly bool
}

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d%s", n.Op, n.ID, n.Shape)
}

// IsLeaf reports whether the node is a data declaration.
func (n *Node) IsLeaf() bool { return n.Op == dsl.OpLeaf }

// RowUpdate is a sparse model update root.
type RowUpdate struct {
	Idx *Node
	Val *Node
}

// Graph is the translated hDFG.
type Graph struct {
	Algo  *dsl.Algo
	Nodes []*Node // topological order

	Model       *Node
	Inputs      []*Node
	Outputs     []*Node
	Updated     *Node // dense model update root (may be nil)
	RowUpdates  []RowUpdate
	Convergence *Node // may be nil
	Merge       *Node // may be nil
	Epochs      int
	MergeCoef   int
}

// TupleWidth returns the number of scalar values one training tuple
// supplies: all inputs then all outputs, in declaration order.
func (g *Graph) TupleWidth() int {
	w := 0
	for _, in := range g.Inputs {
		w += in.Shape.Size()
	}
	for _, out := range g.Outputs {
		w += out.Shape.Size()
	}
	return w
}

// ModelSize returns the number of scalar model parameters.
func (g *Graph) ModelSize() int { return g.Model.Shape.Size() }

// Translate converts a validated Algo into an hDFG.
func Translate(a *dsl.Algo) (*Graph, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Algo: a, Epochs: a.Epochs, MergeCoef: a.MergeCoef()}

	// 1. Clone expressions into nodes.
	byExpr := make(map[*dsl.Expr]*Node, len(a.Exprs))
	for _, e := range a.Exprs {
		n := &Node{
			Op: e.Op, Kind: e.Kind, Name: e.Name,
			Axis: e.Axis, MetaValue: e.MetaValue,
			MergeOp: e.MergeOp, MergeCoef: e.MergeCoef,
		}
		if e.Op == dsl.OpLeaf {
			n.Shape = Shape(e.Dims)
		}
		byExpr[e] = n
	}
	for _, e := range a.Exprs {
		n := byExpr[e]
		for _, arg := range e.Args {
			n.Args = append(n.Args, byExpr[arg])
		}
	}
	g.Model = byExpr[a.ModelVar]
	for _, in := range a.Inputs {
		g.Inputs = append(g.Inputs, byExpr[in])
	}
	for _, out := range a.Outputs {
		g.Outputs = append(g.Outputs, byExpr[out])
	}
	if a.Updated != nil {
		g.Updated = byExpr[a.Updated]
	}
	for _, ru := range a.RowUpdates {
		g.RowUpdates = append(g.RowUpdates, RowUpdate{Idx: byExpr[ru.Idx], Val: byExpr[ru.Val]})
	}
	if a.Convergence != nil {
		g.Convergence = byExpr[a.Convergence]
	}
	if a.MergeNode != nil {
		g.Merge = byExpr[a.MergeNode]
	}

	// 2. Merge rewiring (paper §4.3: "DAnA's compiler implicitly
	// understands that the merge function is performed before the
	// gradient descent optimizer"): every consumer of the merged
	// variable other than the merge node itself now consumes the merge
	// node, so the pre-merge computation replicates per thread and the
	// post-merge computation runs once per batch.
	if g.Merge != nil {
		x := g.Merge.Args[0]
		for _, n := range byExpr {
			if n == g.Merge {
				continue
			}
			for i, arg := range n.Args {
				if arg == x {
					n.Args[i] = g.Merge
				}
			}
		}
		if g.Updated == x {
			g.Updated = g.Merge
		}
		if g.Convergence == x {
			g.Convergence = g.Merge
		}
		for i := range g.RowUpdates {
			if g.RowUpdates[i].Val == x {
				g.RowUpdates[i].Val = g.Merge
			}
		}
	}

	// 3. Collect live nodes (reachable from the roots) plus all leaves,
	// in topological order.
	roots := g.roots()
	var keep []*Node // leaves in declaration order, for determinism
	for _, e := range a.Exprs {
		if n := byExpr[e]; n.IsLeaf() {
			keep = append(keep, n)
		}
	}
	order, err := toposort(roots, keep)
	if err != nil {
		return nil, err
	}
	g.Nodes = order
	for i, n := range g.Nodes {
		n.ID = i
	}

	// 4. Shape inference.
	for _, n := range g.Nodes {
		if err := inferShape(g, n); err != nil {
			return nil, err
		}
	}
	if g.Updated != nil && !g.Updated.Shape.Equal(g.Model.Shape) {
		return nil, fmt.Errorf("hdfg: setModel shape %v differs from model shape %v", g.Updated.Shape, g.Model.Shape)
	}
	for _, ru := range g.RowUpdates {
		if ru.Idx.Shape.NDim() != 0 {
			return nil, fmt.Errorf("hdfg: setModelRow index must be scalar, got %v", ru.Idx.Shape)
		}
		if g.Model.Shape.NDim() != 2 {
			return nil, fmt.Errorf("hdfg: setModelRow requires a 2-D model, got %v", g.Model.Shape)
		}
		want := Shape{g.Model.Shape[1]}
		if !ru.Val.Shape.Equal(want) {
			return nil, fmt.Errorf("hdfg: setModelRow value shape %v, want %v", ru.Val.Shape, want)
		}
	}
	if g.Convergence != nil && g.Convergence.Shape.NDim() != 0 {
		return nil, fmt.Errorf("hdfg: convergence expression must be scalar, got %v", g.Convergence.Shape)
	}

	// 5. Stage marking.
	for _, n := range g.Nodes {
		if n == g.Merge {
			n.PostMerge = true
			continue
		}
		for _, arg := range n.Args {
			if arg.PostMerge {
				n.PostMerge = true
				break
			}
		}
	}
	markConvOnly(g)
	return g, nil
}

func (g *Graph) roots() []*Node {
	var roots []*Node
	if g.Updated != nil {
		roots = append(roots, g.Updated)
	}
	for _, ru := range g.RowUpdates {
		roots = append(roots, ru.Idx, ru.Val)
	}
	if g.Convergence != nil {
		roots = append(roots, g.Convergence)
	}
	return roots
}

// toposort returns a deterministic topological order of all nodes
// reachable from roots, plus the given leaves (data declarations are
// kept even when dead so inputs stay bound).
func toposort(roots, keep []*Node) ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int)
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("hdfg: cycle through %v", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, arg := range n.Args {
			if err := visit(arg); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for _, n := range keep {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func inferShape(g *Graph, n *Node) error {
	switch {
	case n.IsLeaf():
		if n.Kind == dsl.KMeta {
			n.Shape = nil
		}
		// declared dims already set
		return nil
	case n.Op == dsl.OpMerge:
		n.Shape = n.Args[0].Shape
		return nil
	case n.Op.IsNonLinear():
		n.Shape = n.Args[0].Shape
		return nil
	case n.Op == dsl.OpGather:
		mo, idx := n.Args[0], n.Args[1]
		if mo != g.Model || mo.Shape.NDim() != 2 {
			return fmt.Errorf("hdfg: gather requires the 2-D model as first operand, got %v", mo)
		}
		if idx.Shape.NDim() != 0 {
			return fmt.Errorf("hdfg: gather index must be scalar, got %v", idx.Shape)
		}
		n.Shape = Shape{mo.Shape[1]}
		return nil
	case n.Op.IsBinary():
		s, err := broadcast(n.Args[0].Shape, n.Args[1].Shape)
		if err != nil {
			return fmt.Errorf("hdfg: %v: %w", n, err)
		}
		n.Shape = s
		return nil
	case n.Op.IsGroup():
		arg := n.Args[0].Shape
		switch arg.NDim() {
		case 0:
			return fmt.Errorf("hdfg: %s of a scalar", n.Op)
		case 1:
			if n.Axis != 1 {
				return fmt.Errorf("hdfg: %s axis %d on a vector", n.Op, n.Axis)
			}
			n.Shape = nil
		case 2:
			if n.Axis < 1 || n.Axis > 2 {
				return fmt.Errorf("hdfg: %s axis %d on a matrix", n.Op, n.Axis)
			}
			if n.Axis == 1 {
				n.Shape = Shape{arg[1]}
			} else {
				n.Shape = Shape{arg[0]}
			}
		case 3:
			// Contraction intermediate [a,b,k]: the axis names the
			// operands' shared (second) axis.
			if n.Axis != 2 {
				return fmt.Errorf("hdfg: %s axis %d on contraction intermediate %v (must be 2)", n.Op, n.Axis, arg)
			}
			n.Shape = Shape{arg[0], arg[1]}
		default:
			return fmt.Errorf("hdfg: unsupported rank %d", arg.NDim())
		}
		return nil
	default:
		return fmt.Errorf("hdfg: unknown op %v", n.Op)
	}
}

// broadcast implements the paper's dimension-inference rule: equal
// shapes combine elementwise; a lower-dimensional operand is logically
// replicated; two matrices sharing their trailing axis form the 3-D
// contraction intermediate.
func broadcast(a, b Shape) (Shape, error) {
	switch {
	case a.Equal(b):
		return a, nil
	case a.NDim() == 0:
		return b, nil
	case b.NDim() == 0:
		return a, nil
	case isSuffix(a, b):
		return b, nil
	case isSuffix(b, a):
		return a, nil
	case a.NDim() == 2 && b.NDim() == 2 && a[1] == b[1]:
		return Shape{a[0], b[0], a[1]}, nil
	default:
		return nil, fmt.Errorf("incompatible shapes %v and %v", a, b)
	}
}

func isSuffix(small, big Shape) bool {
	if small.NDim() == 0 || small.NDim() >= big.NDim() {
		return false
	}
	off := big.NDim() - small.NDim()
	for i := range small {
		if small[i] != big[off+i] {
			return false
		}
	}
	return true
}

// markConvOnly flags nodes reachable from the convergence root but not
// from any model-update root.
func markConvOnly(g *Graph) {
	if g.Convergence == nil {
		return
	}
	fromUpdate := make(map[*Node]bool)
	var mark func(n *Node, set map[*Node]bool)
	mark = func(n *Node, set map[*Node]bool) {
		if set[n] {
			return
		}
		set[n] = true
		for _, a := range n.Args {
			mark(a, set)
		}
	}
	if g.Updated != nil {
		mark(g.Updated, fromUpdate)
	}
	for _, ru := range g.RowUpdates {
		mark(ru.Idx, fromUpdate)
		mark(ru.Val, fromUpdate)
	}
	fromConv := make(map[*Node]bool)
	mark(g.Convergence, fromConv)
	for _, n := range g.Nodes {
		if fromConv[n] && !fromUpdate[n] && !n.IsLeaf() {
			n.ConvOnly = true
		}
	}
}

// SubNodeCount returns the number of atomic scalar operations node n
// decomposes into (paper §4.4: nodes decompose into atomic sub-nodes).
func SubNodeCount(n *Node) int {
	switch {
	case n.IsLeaf():
		return 0
	case n.Op == dsl.OpGather:
		return n.Shape.Size() // one move per gathered element
	case n.Op.IsGroup():
		// A reduction of k values to 1 takes k-1 combining steps (plus
		// a sqrt for norm, counted as one more).
		in := n.Args[0].Shape.Size()
		out := n.Shape.Size()
		c := in - out
		if n.Op == dsl.OpNorm {
			c += out // final square roots
		}
		if c < 1 {
			c = 1
		}
		return c
	case n.Op == dsl.OpMerge:
		return n.Shape.Size() // one combine per element per thread pair
	default:
		return n.Shape.Size()
	}
}

// Work summarizes the scalar-operation counts of the graph, split at
// the merge boundary. These counts drive both the compiler's resource
// allocation and the analytic cost model.
type Work struct {
	PerTuple  int // sub-nodes executed for every training tuple
	PostMerge int // sub-nodes executed once per merge batch
	PerEpoch  int // convergence-only sub-nodes, once per epoch
}

// CountWork tallies sub-node counts by stage.
func (g *Graph) CountWork() Work {
	var w Work
	for _, n := range g.Nodes {
		c := SubNodeCount(n)
		switch {
		case n.ConvOnly:
			w.PerEpoch += c
		case n.PostMerge:
			w.PostMerge += c
		default:
			w.PerTuple += c
		}
	}
	return w
}
