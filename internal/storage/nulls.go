package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Null-bitmap tuple support, mirroring PostgreSQL's HeapTupleHeaderData
// with HEAP_HASNULL set: the 23-byte fixed header is followed by t_bits,
// a bitmap of one bit per attribute (bit set = attribute present, bit
// clear = NULL, PostgreSQL's att_isnull convention inverted to match
// heap_form_tuple), and t_hoff is MAXALIGN(23 + bitmap bytes). NULL
// attributes occupy no storage; each present attribute is aligned to its
// type's boundary relative to the start of the data area, so decoding a
// tuple with nulls requires the dynamic offset walk implemented here
// rather than the schema's static offset table.

// NullBitmapBytes returns the t_bits size for ncols attributes.
func NullBitmapBytes(ncols int) int { return (ncols + 7) / 8 }

// TupleHeaderSizeFor returns t_hoff for a tuple of ncols attributes:
// without nulls it is MAXALIGN(23) = 24; with a null bitmap it is
// MAXALIGN(23 + bitmap bytes).
func TupleHeaderSizeFor(ncols int, hasNulls bool) int {
	if !hasNulls {
		return TupleHeaderSize
	}
	return alignUp(TupleHeaderRawSize+NullBitmapBytes(ncols), MaxAlign)
}

// hasAnyNull reports whether any entry of nulls is set.
func hasAnyNull(nulls []bool) bool {
	for _, n := range nulls {
		if n {
			return true
		}
	}
	return false
}

// dataWidthWithNulls computes the byte width of the data area when the
// NULL columns are omitted, aligning each present column.
func dataWidthWithNulls(s *Schema, nulls []bool) int {
	off := 0
	for i, c := range s.Cols {
		if nulls[i] {
			continue
		}
		off = alignUp(off, c.Type.Align())
		off += c.Type.Size()
	}
	return off
}

// EncodeTupleWithNulls serializes a heap tuple whose NULL columns (per
// the nulls mask) are omitted from storage and recorded in a t_bits
// null bitmap. vals entries for NULL columns are ignored. A nil or
// all-false mask produces the same bytes as EncodeTuple.
func EncodeTupleWithNulls(s *Schema, vals []float64, nulls []bool, xmin uint32, ctid TID) ([]byte, error) {
	if nulls != nil && len(nulls) != len(s.Cols) {
		return nil, fmt.Errorf("storage: nulls mask has %d entries, schema %d columns", len(nulls), len(s.Cols))
	}
	if nulls == nil || !hasAnyNull(nulls) {
		return EncodeTuple(s, vals, xmin, ctid)
	}
	if len(vals) != len(s.Cols) {
		return nil, fmt.Errorf("storage: schema has %d columns, got %d values", len(s.Cols), len(vals))
	}
	hoff := TupleHeaderSizeFor(s.NumCols(), true)
	buf := make([]byte, hoff+dataWidthWithNulls(s, nulls))
	binary.LittleEndian.PutUint32(buf[tupXminOff:], xmin)
	binary.LittleEndian.PutUint32(buf[tupCtidBlockOff:], ctid.Page)
	binary.LittleEndian.PutUint16(buf[tupCtidOffnum:], ctid.Item+1)
	binary.LittleEndian.PutUint16(buf[tupInfomask2Off:], uint16(s.NumCols())&0x07FF)
	binary.LittleEndian.PutUint16(buf[tupInfomaskOff:], InfomaskXminCommit|InfomaskXmaxInval|InfomaskHasNull)
	buf[tupHoffOff] = uint8(hoff)
	bits := buf[TupleHeaderRawSize : TupleHeaderRawSize+NullBitmapBytes(s.NumCols())]
	off := hoff
	for i, c := range s.Cols {
		if nulls[i] {
			continue
		}
		bits[i/8] |= 1 << (i % 8)
		off = hoff + alignUp(off-hoff, c.Type.Align())
		switch c.Type {
		case TFloat32:
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(vals[i])))
		case TFloat64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(vals[i]))
		case TInt32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(vals[i])))
		case TInt64:
			binary.LittleEndian.PutUint64(buf[off:], uint64(int64(vals[i])))
		default:
			return nil, fmt.Errorf("storage: cannot encode column %q of type %v", c.Name, c.Type)
		}
		off += c.Type.Size()
	}
	return buf, nil
}

// DecodeTupleWithNulls parses a raw heap tuple into per-column values
// and a nulls mask. Tuples without HEAP_HASNULL decode exactly like
// DecodeTuple; tuples with a null bitmap use the dynamic offset walk.
// NULL columns decode as 0 with nulls[i] = true.
func DecodeTupleWithNulls(s *Schema, raw []byte) (vals []float64, nulls []bool, err error) {
	m, err := DecodeTupleMeta(raw)
	if err != nil {
		return nil, nil, err
	}
	nulls = make([]bool, s.NumCols())
	if m.Infomask&InfomaskHasNull == 0 {
		vals, err = s.DecodeValues(nil, raw[m.Hoff:])
		return vals, nulls, err
	}
	if got := m.NAttrs(); got != s.NumCols() {
		return nil, nil, fmt.Errorf("%w: tuple has %d attributes, schema %d columns", ErrCorrupt, got, s.NumCols())
	}
	bmBytes := NullBitmapBytes(s.NumCols())
	if TupleHeaderRawSize+bmBytes > int(m.Hoff) || int(m.Hoff) > len(raw) {
		return nil, nil, fmt.Errorf("%w: t_hoff %d too small for %d-column null bitmap", ErrCorrupt, m.Hoff, s.NumCols())
	}
	bits := raw[TupleHeaderRawSize : TupleHeaderRawSize+bmBytes]
	vals = make([]float64, s.NumCols())
	off := 0
	data := raw[m.Hoff:]
	for i, c := range s.Cols {
		if bits[i/8]&(1<<(i%8)) == 0 {
			nulls[i] = true
			continue
		}
		off = alignUp(off, c.Type.Align())
		if off+c.Type.Size() > len(data) {
			return nil, nil, fmt.Errorf("%w: column %q at offset %d overruns tuple data of %d bytes", ErrCorrupt, c.Name, off, len(data))
		}
		switch c.Type {
		case TFloat32:
			vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off:])))
		case TFloat64:
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		case TInt32:
			vals[i] = float64(int32(binary.LittleEndian.Uint32(data[off:])))
		case TInt64:
			vals[i] = float64(int64(binary.LittleEndian.Uint64(data[off:])))
		default:
			return nil, nil, fmt.Errorf("storage: cannot decode column %q of type %v", c.Name, c.Type)
		}
		off += c.Type.Size()
	}
	return vals, nulls, nil
}
