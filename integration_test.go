package dana

// System-level integration tests: the accelerated pipeline and the CPU
// baselines must agree on what they learn, across all four algorithm
// families, through the public API only.

import (
	"math"
	"testing"

	"dana/internal/ml"
)

// trainBoth trains a workload with DAnA and MADlib at equal epochs and
// returns both models plus the dataset tuples.
func trainBoth(t *testing.T, workload string, scale float64, mergeCoef, epochs int) (dana []float32, mad []float64, tuples [][]float64, alg MLAlgorithm) {
	t.Helper()
	eng, err := Open(Config{PageSize: 8 << 10, PoolBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.LoadWorkload(workload, scale, 77)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(mergeCoef)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(epochs)
	if err := eng.RegisterUDF(a, mergeCoef); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	alg = d.MLAlgorithm()
	madRes, err := eng.TrainMADlib(d.Rel.Name, alg, epochs)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := eng.SQL("SELECT * FROM " + d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	return res.Model, madRes.Model, rows.Rows, alg
}

// lossOf evaluates the f32 model under the reference loss.
func lossOf(alg MLAlgorithm, model []float32, tuples [][]float64) float64 {
	m := make([]float64, len(model))
	for i, v := range model {
		m[i] = float64(v)
	}
	return ml.MeanLoss(alg, m, tuples)
}

func TestSystemsAgreeLinear(t *testing.T) {
	dana, mad, tuples, alg := trainBoth(t, "Patient", 0.01, 16, 6)
	ld := lossOf(alg, dana, tuples)
	lm := ml.MeanLoss(alg, mad, tuples)
	// Batched-gradient DAnA and per-tuple MADlib follow different
	// trajectories but must both fit the data.
	base := ml.MeanLoss(alg, make([]float64, len(mad)), tuples)
	if ld > base/3 {
		t.Errorf("DAnA loss %v vs untrained %v", ld, base)
	}
	if lm > base/3 {
		t.Errorf("MADlib loss %v vs untrained %v", lm, base)
	}
}

func TestSystemsAgreeLogistic(t *testing.T) {
	dana, mad, tuples, _ := trainBoth(t, "Remote Sensing LR", 0.001, 16, 6)
	// Prediction agreement between the two classifiers.
	nf := len(mad)
	agree := 0
	for _, tup := range tuples {
		var sd, sm float64
		for j := 0; j < nf; j++ {
			sd += float64(dana[j]) * tup[j]
			sm += mad[j] * tup[j]
		}
		if (sd > 0) == (sm > 0) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(tuples)); frac < 0.9 {
		t.Errorf("classifier agreement %.2f < 0.9", frac)
	}
}

func TestSystemsAgreeSVM(t *testing.T) {
	dana, mad, tuples, _ := trainBoth(t, "Remote Sensing SVM", 0.001, 16, 6)
	nf := len(mad)
	agree := 0
	for _, tup := range tuples {
		var sd, sm float64
		for j := 0; j < nf; j++ {
			sd += float64(dana[j]) * tup[j]
			sm += mad[j] * tup[j]
		}
		if (sd >= 0) == (sm >= 0) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(tuples)); frac < 0.9 {
		t.Errorf("classifier agreement %.2f < 0.9", frac)
	}
}

func TestSystemsAgreeLRMF(t *testing.T) {
	// LRMF: compare training RMSE of DAnA's factor model against the
	// MADlib reference (both SGD from small random inits).
	danaM, madM, tuples, alg := trainBoth(t, "Netflix", 0.001, 1, 6)
	ld := lossOf(alg, danaM, tuples)
	lm := ml.MeanLoss(alg, madM, tuples)
	if math.IsNaN(ld) || math.IsNaN(lm) {
		t.Fatal("NaN loss")
	}
	if ld > 5*lm+0.05 {
		t.Errorf("DAnA LRMF loss %v far above MADlib %v", ld, lm)
	}
}

func TestGreenplumSegmentsSameData(t *testing.T) {
	eng, err := Open(Config{PageSize: 8 << 10, PoolBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.LoadWorkload("Blog Feedback", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	alg := LinearRegression{NFeatures: 280, LR: 0.0018}
	var prev *BaselineResult
	for _, segs := range []int{1, 4, 8} {
		r, err := eng.TrainGreenplum(d.Rel.Name, alg, segs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if r.Tuples != int64(4*d.Tuples) {
			t.Errorf("%d segments: %d tuple updates", segs, r.Tuples)
		}
		if prev != nil && r.FinalLoss > 20*prev.FinalLoss+1e-6 {
			t.Errorf("%d segments: loss %v vastly worse than %v", segs, r.FinalLoss, prev.FinalLoss)
		}
		prev = r
	}
}

func TestColdVsWarmFunctionalIO(t *testing.T) {
	eng, err := Open(Config{PageSize: 8 << 10, PoolBytes: 64 << 20, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.LoadWorkload("WLAN", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(2)
	if err := eng.RegisterUDF(a, 8); err != nil {
		t.Fatal(err)
	}
	// Cold run: first epoch reads everything from "disk".
	cold, err := eng.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Pool.Misses == 0 {
		t.Error("cold run had no misses")
	}
	// Warm run: pool retains the table; a second training query should
	// be nearly all hits.
	eng.Pool().ResetStats()
	warm, err := eng.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pool.Misses != 0 {
		t.Errorf("warm run had %d misses", warm.Pool.Misses)
	}
	if warm.SimulatedSeconds >= cold.SimulatedSeconds {
		t.Errorf("warm %.4fs not faster than cold %.4fs", warm.SimulatedSeconds, cold.SimulatedSeconds)
	}
}
