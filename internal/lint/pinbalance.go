package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PinBalance reports bufpool.Pool.Pin calls that are not matched by an
// Unpin on every path to function exit. This is the exact bug class the
// PR-4 chaos suite caught twice in extractSerial: an early error return
// between Pin and the unpin loop leaked pinned frames, and leaked pins
// poison the pool for every later query (frames can never be evicted).
//
// The check is intra-procedural over the statement CFG. A pin is
// considered released on a path when the path reaches:
//
//   - an Unpin call (direct, deferred, or inside a deferred closure);
//   - a call to a local function value whose body unpins (the flush
//     closure pattern);
//   - a handoff: the pinned page value is appended to a slice, stored
//     into a field/map/slice element, sent on a channel, or returned —
//     release responsibility has moved to the holder;
//   - the error branch of the Pin itself (a failed Pin holds nothing).
//
// Crash paths (panic, os.Exit, t.Fatal) are ignored. Intentional
// cross-function ownership transfers that the heuristics cannot see can
// be annotated with `//danalint:ignore pinbalance -- reason`.
var PinBalance = &Analyzer{
	Name: "pinbalance",
	Doc:  "bufpool Pin must be paired with Unpin on all paths (or handed off)",
	Run:  runPinBalance,
}

// isPoolMethod reports whether the call invokes the named method on
// bufpool.Pool (matched by package suffix so fixture copies count too).
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/bufpool") || obj.Pkg().Name() == "bufpool"
}

func runPinBalance(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				name = fn.Name.Name
			case *ast.FuncLit:
				body = fn.Body
				name = "func literal"
			default:
				return true
			}
			if body != nil {
				checkPinBalance(pass, name, body)
			}
			return true
		})
	}
	return nil
}

// pinSite is one Pin call with its result bindings.
type pinSite struct {
	call    *ast.CallExpr
	pageVar types.Object // first result, if bound to a variable
	errVar  types.Object // second result, if bound to a variable
}

func checkPinBalance(pass *Pass, fnName string, body *ast.BlockStmt) {
	// Collect Pin sites in THIS function body, not in nested literals
	// (they are visited separately by runPinBalance).
	var pins []*pinSite
	ownNodes(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isPoolMethod(pass.TypesInfo, call, "Pin") {
					site := &pinSite{call: call}
					if len(n.Lhs) == 2 {
						site.pageVar = bindingOf(pass.TypesInfo, n.Lhs[0])
						site.errVar = bindingOf(pass.TypesInfo, n.Lhs[1])
					}
					pins = append(pins, site)
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isPoolMethod(pass.TypesInfo, call, "Pin") {
				pass.Reportf(call.Pos(), "result of Pool.Pin discarded: the pinned frame can never be unpinned")
			}
		}
	})
	if len(pins) == 0 {
		return
	}

	// A deferred Unpin (direct or in a deferred closure) releases for the
	// whole function.
	deferredUnpin := false
	ownNodes(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		if isPoolMethod(pass.TypesInfo, d.Call, "Unpin") || containsUnpin(pass.TypesInfo, d.Call) {
			deferredUnpin = true
		}
	})
	if deferredUnpin {
		return
	}

	// Local function values whose bodies unpin (the flush-closure
	// pattern): calling one counts as a release.
	unpinFns := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if obj := bindingOf(pass.TypesInfo, as.Lhs[i]); obj != nil && containsUnpin(pass.TypesInfo, lit) {
				unpinFns[obj] = true
			}
		}
		return true
	})

	cfg := NewCFG(body)
	for _, site := range pins {
		if leaksAt := findLeak(pass, cfg, site, unpinFns); leaksAt != token.NoPos {
			pos := pass.Fset.Position(leaksAt)
			pass.Reportf(site.call.Pos(),
				"%s: pinned page is not unpinned on the path reaching function exit at line %d (add Unpin, defer it, or hand the page off)",
				fnName, pos.Line)
		}
	}
}

// findLeak walks the CFG from the pin site; it returns the position of
// an exit reachable with the pin still held, or NoPos.
func findLeak(pass *Pass, cfg *CFG, site *pinSite, unpinFns map[types.Object]bool) token.Pos {
	// Locate the block and node index of the pin. Loop-head blocks carry
	// their whole RangeStmt as one node, so pick the SMALLEST node whose
	// extent covers the call — that is the statement inside the body.
	var startBlock *Block
	startIdx := -1
	var bestSpan token.Pos = 1 << 60
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			if containsPos(n, site.call.Pos()) && n.End()-n.Pos() < bestSpan {
				startBlock, startIdx = b, i
				bestSpan = n.End() - n.Pos()
			}
		}
	}
	if startBlock == nil {
		return token.NoPos
	}

	released := func(n ast.Node) bool { return nodeReleases(pass.TypesInfo, n, site, unpinFns) }

	// errValid tracks whether the Pin's error variable still holds the
	// Pin's result on the current path: once any later statement rewrites
	// it (`r, err := decode(pg)`), an `err != nil` branch no longer means
	// the Pin failed — that exact reuse hid the PR-4 extractSerial leak.
	type visitKey struct {
		b        *Block
		errValid bool
	}
	visited := map[visitKey]bool{}
	var leak token.Pos
	var dfs func(b *Block, from int, errValid bool)
	dfs = func(b *Block, from int, errValid bool) {
		if leak != token.NoPos {
			return
		}
		if from == 0 {
			key := visitKey{b, errValid}
			if visited[key] {
				return
			}
			visited[key] = true
		}
		if b == cfg.Exit {
			leak = lastPos(b, site.call.Pos())
			return
		}
		for _, n := range b.Nodes[from:] {
			if released(n) {
				return
			}
			if errValid && nodeWritesObj(pass.TypesInfo, n, site.errVar) {
				errValid = false
			}
		}
		for _, e := range b.Succs {
			// A true `err != nil` edge for the Pin's own (still-valid)
			// error means the Pin failed: nothing is held on that path.
			if errValid && site.errVar != nil && edgeImpliesErr(pass.TypesInfo, e, site.errVar) {
				continue
			}
			dfs(e.To, 0, errValid)
		}
	}
	// The pin node itself may also contain the release (single-statement
	// pin+unpin is impossible, so start after it).
	dfs(startBlock, startIdx+1, true)
	if leak == token.NoPos {
		return token.NoPos
	}
	return leak
}

// lastPos gives a position to blame for the leak: the exit block has no
// nodes, so fall back to the pin position.
func lastPos(b *Block, fallback token.Pos) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].Pos()
	}
	return fallback
}

// edgeImpliesErr reports whether taking edge e means the error variable
// is non-nil (i.e. the Pin failed).
func edgeImpliesErr(info *types.Info, e Edge, errVar types.Object) bool {
	if e.Cond == nil {
		return false
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && info.Uses[x] == errVar {
		id = x
	} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && info.Uses[y] == errVar {
		id = y
	}
	if id == nil {
		return false
	}
	other := bin.Y
	if id == bin.Y {
		other = bin.X
	}
	if o, ok := ast.Unparen(other).(*ast.Ident); !ok || o.Name != "nil" {
		return false
	}
	switch bin.Op {
	case token.NEQ: // err != nil is true on this edge
		return e.CondVal
	case token.EQL: // err == nil is false on this edge
		return !e.CondVal
	}
	return false
}

// nodeReleases reports whether the statement releases the pin: an Unpin
// call, a call to a local unpinning closure, or a handoff of the page
// value.
func nodeReleases(info *types.Info, n ast.Node, site *pinSite, unpinFns map[types.Object]bool) bool {
	releasedHere := false
	ast.Inspect(n, func(m ast.Node) bool {
		if releasedHere {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			// A literal merely defined on the path does not release;
			// deferred literals were handled function-wide.
			return false
		case *ast.CallExpr:
			if isPoolMethod(info, m, "Unpin") {
				releasedHere = true
				return false
			}
			if id, ok := m.Fun.(*ast.Ident); ok && unpinFns[info.Uses[id]] {
				releasedHere = true
				return false
			}
			// append(dst, pg...) hands the page off.
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && site.pageVar != nil {
				for _, a := range m.Args[1:] {
					if usesObject(info, a, site.pageVar) {
						releasedHere = true
						return false
					}
				}
			}
		case *ast.SendStmt:
			if site.pageVar != nil && usesObject(info, m.Value, site.pageVar) {
				releasedHere = true
				return false
			}
		case *ast.ReturnStmt:
			if site.pageVar != nil {
				for _, r := range m.Results {
					if usesObject(info, r, site.pageVar) {
						releasedHere = true
						return false
					}
				}
			}
		case *ast.CompositeLit:
			if site.pageVar != nil && usesObject(info, m, site.pageVar) {
				releasedHere = true
				return false
			}
		case *ast.AssignStmt:
			// Storing the page into non-local structure (field, element)
			// hands it off; plain `x := pg` aliasing does not.
			if site.pageVar == nil {
				return true
			}
			for i, rhs := range m.Rhs {
				if !usesObject(info, rhs, site.pageVar) {
					continue
				}
				if i < len(m.Lhs) {
					switch m.Lhs[i].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						releasedHere = true
						return false
					}
				}
			}
		}
		return true
	})
	return releasedHere
}

// nodeWritesObj reports whether the statement assigns obj (outside
// nested function literals).
func nodeWritesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// usesObject reports whether expr references obj.
func usesObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// containsUnpin reports whether the subtree contains an Unpin call.
func containsUnpin(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isPoolMethod(info, call, "Unpin") {
			found = true
		}
		return !found
	})
	return found
}

// bindingOf resolves the object an assignment LHS binds (define or use).
func bindingOf(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// containsPos reports whether n's extent covers pos.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// ownNodes visits the statements of body without descending into
// nested function literals.
func ownNodes(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
