package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPageInvariants(t *testing.T) {
	for _, size := range []int{PageSize8K, PageSize16K, PageSize32K} {
		p := NewPage(size, 0)
		if err := p.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if p.Size() != size {
			t.Errorf("Size() = %d, want %d", p.Size(), size)
		}
		if p.Version() != LayoutVersion {
			t.Errorf("Version() = %d, want %d", p.Version(), LayoutVersion)
		}
		if p.Lower() != PageHeaderSize {
			t.Errorf("Lower() = %d, want %d", p.Lower(), PageHeaderSize)
		}
		if p.Upper() != size {
			t.Errorf("Upper() = %d, want %d", p.Upper(), size)
		}
		if got := p.NumItems(); got != 0 {
			t.Errorf("NumItems() = %d, want 0", got)
		}
	}
}

func TestPageSpecialSpace(t *testing.T) {
	p := NewPage(PageSize8K, 100)
	// Special space is MAXALIGN'd.
	if got, want := p.Special(), PageSize8K-104; got != want {
		t.Errorf("Special() = %d, want %d", got, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddItemRoundTrip(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	items := [][]byte{
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 64),
		{1},
		bytes.Repeat([]byte{0xCD}, 257),
	}
	for i, it := range items {
		idx, err := p.AddItem(it)
		if err != nil {
			t.Fatalf("AddItem(%d): %v", i, err)
		}
		if idx != i {
			t.Fatalf("AddItem returned index %d, want %d", idx, i)
		}
	}
	if got := p.NumItems(); got != len(items) {
		t.Fatalf("NumItems = %d, want %d", got, len(items))
	}
	for i, want := range items {
		got, err := p.Item(i)
		if err != nil {
			t.Fatalf("Item(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Item(%d) = %x, want %x", i, got, want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddItemUntilFull(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	item := bytes.Repeat([]byte{0x7F}, 100)
	n := 0
	for {
		if _, err := p.AddItem(item); err != nil {
			break
		}
		n++
	}
	// 104 aligned bytes + 4 byte line pointer per item out of 8192-24.
	want := (PageSize8K - PageHeaderSize) / (104 + ItemIDSize)
	if n != want {
		t.Errorf("fit %d items, want %d", n, want)
	}
	if p.FreeSpace() >= 104+ItemIDSize {
		t.Errorf("FreeSpace() = %d but AddItem failed", p.FreeSpace())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteItem(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	if _, err := p.AddItem([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteItem(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Item(0); err == nil {
		t.Fatal("Item(0) after delete should fail")
	}
	id, err := p.ItemID(0)
	if err != nil {
		t.Fatal(err)
	}
	if id.Flags != LPDead {
		t.Errorf("flags = %d, want LPDead", id.Flags)
	}
}

func TestItemIDOutOfRange(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	if _, err := p.ItemID(0); err == nil {
		t.Error("ItemID(0) on empty page should fail")
	}
	if _, err := p.ItemID(-1); err == nil {
		t.Error("ItemID(-1) should fail")
	}
}

func TestItemIDEncodeDecodeProperty(t *testing.T) {
	f := func(off uint16, flags uint8, length uint16) bool {
		id := ItemID{Off: off & 0x7FFF, Flags: flags & 0x3, Len: length & 0x7FFF}
		return decodeItemID(encodeItemID(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageChecksum(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	if _, err := p.AddItem([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	c1 := p.ComputeChecksum()
	p.SetChecksum(c1)
	if p.Checksum() != c1 {
		t.Fatal("checksum not stored")
	}
	// Checksum must ignore its own field.
	if p.ComputeChecksum() != c1 {
		t.Fatal("checksum changed after storing it")
	}
	// And detect corruption elsewhere.
	p[100] ^= 0xFF
	if p.ComputeChecksum() == c1 {
		t.Error("checksum did not change after corruption")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	if _, err := p.AddItem(bytes.Repeat([]byte{1}, 32)); err != nil {
		t.Fatal(err)
	}
	// Corrupt pd_lower to overlap pd_upper.
	p[offLower] = 0xFF
	p[offLower+1] = 0x7F
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted corrupt lower pointer")
	}
}

func TestPageLSN(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	p.SetLSN(0xDEADBEEFCAFE)
	if p.LSN() != 0xDEADBEEFCAFE {
		t.Errorf("LSN = %x", p.LSN())
	}
}

func TestRandomItemsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := NewPage(PageSize8K, 0)
		var stored [][]byte
		for {
			item := make([]byte, 1+rng.Intn(300))
			rng.Read(item)
			if _, err := p.AddItem(item); err != nil {
				break
			}
			stored = append(stored, item)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, want := range stored {
			got, err := p.Item(i)
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d item %d mismatch", trial, i)
			}
		}
	}
}
