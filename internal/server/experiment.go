package server

import (
	"fmt"
	"io"
)

// ExperimentConfig sizes the tenants experiment (danabench -exp
// tenants): a fixed-seed open-loop load planned under both policies,
// with the sequence-aware plan also executed functionally.
type ExperimentConfig struct {
	Load      LoadConfig
	Instances int
}

// DefaultExperiment is the CI-sized tenants experiment.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Load: LoadConfig{
			Seed: 1, Tenants: 6, Jobs: 48, RateJobsPerSec: 24,
			Scale: 0.002, Epochs: 2,
		},
		Instances: 2,
	}
}

// ExperimentResult reports both policies on the same load.
type ExperimentResult struct {
	SeqAware          *Report // functional run under PolicySequenceAware
	ReconfPlan        *Plan   // the same load planned under PolicyAlwaysReconfigure
	SpeedupOnMakespan float64
}

// TenantExperiment runs the seeded many-tenant open-loop load under
// sequence-aware scheduling (functionally, isolation and counter
// identities included) and re-plans the identical schedule under
// always-reconfigure. It errors — danabench exits non-zero — if the
// counter identity breaks, any job fails, or sequence-aware does not
// beat always-reconfigure on modeled makespan (the PR's acceptance
// criterion).
func TenantExperiment(w io.Writer, cfg ExperimentConfig) (*ExperimentResult, error) {
	load := cfg.Load
	specs := GenLoad(load)
	load = load.withDefaults()

	srv, err := New(Config{
		Tenants:   DefaultTenants(load.Tenants),
		Instances: cfg.Instances,
		Policy:    PolicySequenceAware,
		Seed:      load.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep, err := srv.Run(specs)
	if err != nil {
		return nil, err
	}
	if err := srv.IdentityError(); err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		for _, r := range rep.Results {
			if r.Err != nil {
				fmt.Fprintf(w, "job %d (%s %s for %s) failed: %v\n",
					r.Placement.Seq, r.Placement.Spec.Kind, r.Placement.Spec.Workload,
					r.Placement.Spec.Tenant, r.Err)
			}
		}
		return nil, fmt.Errorf("tenants experiment: %d job(s) failed under a fault-free schedule", rep.Errors)
	}

	// Same load, baseline policy — plan only.
	basePlan, err := srv.Replan(specs, PolicyAlwaysReconfigure)
	if err != nil {
		return nil, err
	}

	res := &ExperimentResult{SeqAware: rep, ReconfPlan: basePlan}
	if rep.MakespanSec > 0 {
		res.SpeedupOnMakespan = basePlan.Makespan / rep.MakespanSec
	}

	WriteReport(w, rep)
	fmt.Fprintf(w, "always-reconfigure baseline: makespan %.3fs, reuse rate %.0f%%\n",
		basePlan.Makespan, 100*basePlan.ReuseRate())
	fmt.Fprintf(w, "sequence-aware vs always-reconfigure on modeled makespan: %.2fx\n",
		res.SpeedupOnMakespan)

	if rep.MakespanSec >= basePlan.Makespan {
		return res, fmt.Errorf("tenants experiment: sequence-aware makespan %.3fs did not beat always-reconfigure %.3fs",
			rep.MakespanSec, basePlan.Makespan)
	}
	if rep.ReuseRate <= basePlan.ReuseRate() {
		return res, fmt.Errorf("tenants experiment: sequence-aware reuse rate %.2f not above baseline %.2f",
			rep.ReuseRate, basePlan.ReuseRate())
	}
	return res, nil
}
