package obs

import (
	"encoding/json"
	"fmt"
)

// SnapshotSchema versions the exported JSON shape; consumers (the CI
// bench gate, danactl) refuse unknown majors instead of misparsing.
const SnapshotSchema = 1

// Snapshot is a point-in-time JSON-exportable view of a registry. Maps
// marshal with sorted keys (encoding/json sorts map keys), so equal
// registries produce byte-identical exports — the property the CI
// regression gate relies on for the deterministic modeled counters.
type Snapshot struct {
	Schema     int                     `json:"schema"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Floats     map[string]float64      `json:"floats,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Events     []Event                 `json:"events,omitempty"`
}

// Snapshot exports the registry's current state. A nil registry yields
// an empty (but valid, schema-stamped) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Schema: SnapshotSchema}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.floats) > 0 {
		s.Floats = make(map[string]float64, len(r.floats))
		for n, f := range r.floats {
			s.Floats[n] = f.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	s.Events = r.ring.Events()
	return s
}

// Get returns a counter value from the snapshot (0 when absent).
func (s *Snapshot) Get(name string) int64 { return s.Counters[name] }

// GetFloat returns a float counter value from the snapshot.
func (s *Snapshot) GetFloat(name string) float64 { return s.Floats[name] }

// MarshalJSON renders the snapshot with deterministic key order.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // drop the method to avoid recursion
	return json.Marshal((*alias)(s))
}

// ParseSnapshot decodes and schema-checks an exported snapshot.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: snapshot schema %d, want %d", s.Schema, SnapshotSchema)
	}
	return &s, nil
}

func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return fmt.Sprintf("2^%d", i-1)
}
