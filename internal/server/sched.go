package server

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dana/internal/cost"
)

// Policy selects how the planner treats an instance's loaded
// configuration.
type Policy int

const (
	// PolicySequenceAware is the ReProVide-style scheduler: it reuses a
	// loaded configuration whenever the fair-share head matches one,
	// batches near-fair jobs onto already-configured instances when the
	// amortized reconfiguration they defer outweighs the reuse
	// handshake, and picks reconfiguration victims whose loaded
	// configuration has no queued demand.
	PolicySequenceAware Policy = iota
	// PolicyAlwaysReconfigure is the baseline: every placement pays the
	// full reconfiguration charge and placement ignores loaded state.
	PolicyAlwaysReconfigure
)

func (p Policy) String() string {
	if p == PolicyAlwaysReconfigure {
		return "always-reconfigure"
	}
	return "sequence-aware"
}

// ParsePolicy maps CLI spellings onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "sequence", "sequence-aware", "reuse":
		return PolicySequenceAware, nil
	case "reconfigure", "always-reconfigure", "baseline":
		return PolicyAlwaysReconfigure, nil
	}
	return 0, fmt.Errorf("server: unknown policy %q (want sequence-aware or always-reconfigure)", s)
}

// Quota bounds one tenant's concurrent resource use. Admission holds a
// job in the tenant's queue until the tenant's running set fits.
type Quota struct {
	// MemBytes caps the modeled dataset bytes of the tenant's
	// concurrently running jobs (0 = unlimited). A job whose dataset
	// alone exceeds the cap is rejected outright (typed
	// ErrQuotaImpossible) instead of starving in the queue.
	MemBytes int64
	// MaxInFlight caps the tenant's concurrently running jobs — its
	// accelerator VM slots (0 = unlimited).
	MaxInFlight int
}

// Kind is the job type.
type Kind uint8

const (
	KindTrain Kind = iota
	KindScore
)

func (k Kind) String() string {
	if k == KindScore {
		return "score"
	}
	return "train"
}

// JobSpec is one tenant request: train or score a Table 3 workload at a
// dataset scale, arriving at a virtual (modeled) time. Scheduling runs
// entirely in virtual time against the analytic cost model, so the same
// seed and arrival schedule always produce the same placements no
// matter how the host interleaves the functional runs.
type JobSpec struct {
	Tenant   string
	Kind     Kind
	Workload string  // Table 3 workload name (datagen.ByName)
	Scale    float64 // dataset scale in (0, 1]; 0 = 1
	Epochs   int     // training epoch budget (0 = workload default)
	Merge    int     // merge coefficient (0 = environment default)
	// ArriveSec is the job's virtual arrival time within its batch.
	ArriveSec float64
}

// Estimate prices one job for admission and placement: its
// configuration identity, modeled service seconds on an
// already-configured instance, and modeled dataset bytes.
type Estimate struct {
	Key        string
	ServiceSec float64
	Bytes      int64
}

// Estimator prices jobs for the planner. Implementations need not be
// safe for concurrent use; the planner is single-threaded.
type Estimator interface {
	Estimate(spec JobSpec) (Estimate, error)
}

// Placement is one scheduling decision, all times virtual.
type Placement struct {
	Seq      int // index into the planned spec slice
	Spec     JobSpec
	Key      string // configuration identity placed
	Instance int
	// TenantSeq orders the tenant's jobs by virtual start; functional
	// execution replays each tenant's jobs in exactly this order, which
	// is what keeps per-job modeled cycles bit-identical to a
	// single-tenant run.
	TenantSeq  int
	Reused     bool
	StartSec   float64 // virtual start (configuration load begins)
	ConfigSec  float64 // reconfiguration or reuse-handshake charge
	ServiceSec float64
	FinishSec  float64
	EstBytes   int64
}

// WaitSec is the virtual queueing delay before the instance was won.
func (pl Placement) WaitSec() float64 { return pl.StartSec - pl.Spec.ArriveSec }

// SojournSec is the virtual end-to-end latency: arrival to finish.
func (pl Placement) SojournSec() float64 { return pl.FinishSec - pl.Spec.ArriveSec }

// PlanConfig parameterizes the planner.
type PlanConfig struct {
	Instances int
	Policy    Policy
	Cost      cost.Params
	// BatchSlackSec bounds affinity batching's fairness debt: a tenant
	// may be served ahead of the fair-share head only while its virtual
	// time exceeds the head's by at most this many modeled seconds, so
	// batching can never starve the head (0 = DefaultBatchSlackSec,
	// negative = batching off).
	BatchSlackSec float64
	Quotas        map[string]Quota   // tenant name -> quota (defines the tenant set)
	Weights       map[string]float64 // fair-share weights (absent/0 = 1)
	// InitialKeys carries loaded configurations across batches: entry i
	// is instance i's resident configuration ("" = blank fabric).
	InitialKeys []string
	// InitialVT carries fair-share virtual time across batches.
	InitialVT map[string]float64
}

// DefaultBatchSlackSec is the affinity-batching fairness bound.
const DefaultBatchSlackSec = 0.25

// Typed scheduler errors.
var (
	ErrUnknownTenant   = errors.New("server: unknown tenant")
	ErrQuotaImpossible = errors.New("server: job exceeds its tenant's memory quota outright")
	ErrNoInstances     = errors.New("server: no accelerator instances configured")
)

// Plan is the full virtual-time schedule of one batch.
type Plan struct {
	Placements []Placement  // in virtual placement order
	BySeq      []*Placement // indexed by input spec order
	Makespan   float64      // virtual seconds, 0 for an empty batch
	Reuses     int
	Reconfigs  int
	// FinalKeys / FinalVT are the carry-over state for the next batch.
	FinalKeys []string
	FinalVT   map[string]float64
}

// ReuseRate is the fraction of placements that reused a loaded
// configuration.
func (p *Plan) ReuseRate() float64 {
	if len(p.Placements) == 0 {
		return 0
	}
	return float64(p.Reuses) / float64(len(p.Placements))
}

type planJob struct {
	seq  int
	spec JobSpec
	est  Estimate
}

type planTenant struct {
	name    string
	quota   Quota
	weight  float64
	queue   []*planJob // FIFO
	vt      float64    // accumulated weighted service (fair-share clock)
	inBytes int64      // modeled bytes of running jobs
	inJobs  int
	nextSeq int
}

type planInstance struct {
	busy      bool
	freeAt    float64
	loadedKey string
	owner     *planTenant // tenant of the running job, for quota release
	bytes     int64
}

// BuildPlan schedules specs over the instance pool in virtual time and
// returns every placement decision. It is a pure function of its
// inputs: no wall clock, no map-order dependence, no randomness — the
// determinism property tests assert replays are identical.
func BuildPlan(specs []JobSpec, est Estimator, cfg PlanConfig) (*Plan, error) {
	if cfg.Instances < 1 {
		return nil, ErrNoInstances
	}
	slack := cfg.BatchSlackSec
	if slack == 0 {
		slack = DefaultBatchSlackSec
	}
	if slack < 0 {
		slack = 0
	}

	order := make([]string, 0, len(cfg.Quotas))
	for name := range cfg.Quotas {
		order = append(order, name)
	}
	sort.Strings(order)
	tenants := make(map[string]*planTenant, len(order))
	for _, name := range order {
		w := cfg.Weights[name]
		if w <= 0 {
			w = 1
		}
		tenants[name] = &planTenant{
			name: name, quota: cfg.Quotas[name], weight: w, vt: cfg.InitialVT[name],
		}
	}

	jobs := make([]*planJob, len(specs))
	for i, sp := range specs {
		t, ok := tenants[sp.Tenant]
		if !ok {
			return nil, fmt.Errorf("%w: %q (job %d)", ErrUnknownTenant, sp.Tenant, i)
		}
		e, err := est.Estimate(sp)
		if err != nil {
			return nil, fmt.Errorf("server: job %d (%s %q for %s): %w", i, sp.Kind, sp.Workload, sp.Tenant, err)
		}
		if t.quota.MemBytes > 0 && e.Bytes > t.quota.MemBytes {
			return nil, fmt.Errorf("%w: job %d needs %d bytes, tenant %q allows %d",
				ErrQuotaImpossible, i, e.Bytes, sp.Tenant, t.quota.MemBytes)
		}
		jobs[i] = &planJob{seq: i, spec: sp, est: e}
	}

	arr := append([]*planJob(nil), jobs...)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].spec.ArriveSec < arr[j].spec.ArriveSec })

	inst := make([]planInstance, cfg.Instances)
	for i := range inst {
		if i < len(cfg.InitialKeys) {
			inst[i].loadedKey = cfg.InitialKeys[i]
		}
	}
	// pendingByKey counts arrived-but-unplaced jobs per configuration,
	// the demand signal for amortized pricing and victim choice.
	pendingByKey := map[string]int{}

	plan := &Plan{BySeq: make([]*Placement, len(jobs))}
	now, ai, placed := 0.0, 0, 0

	admit := func() {
		for ai < len(arr) && arr[ai].spec.ArriveSec <= now {
			j := arr[ai]
			tenants[j.spec.Tenant].queue = append(tenants[j.spec.Tenant].queue, j)
			pendingByKey[j.est.Key]++
			ai++
		}
	}
	release := func() {
		for i := range inst {
			if inst[i].busy && inst[i].freeAt <= now {
				inst[i].busy = false
				inst[i].owner.inJobs--
				inst[i].owner.inBytes -= inst[i].bytes
				inst[i].owner = nil
				inst[i].bytes = 0
			}
		}
	}
	matchFree := func(key string) int {
		for i := range inst {
			if !inst[i].busy && inst[i].loadedKey == key {
				return i
			}
		}
		return -1
	}
	place := func(t *planTenant, j *planJob, instance int, reuse bool) {
		configSec := cost.ReconfigSec(cfg.Cost, reuse)
		fin := now + configSec + j.est.ServiceSec
		t.queue = t.queue[1:]
		pendingByKey[j.est.Key]--
		t.vt += (configSec + j.est.ServiceSec) / t.weight
		t.inJobs++
		t.inBytes += j.est.Bytes
		inst[instance] = planInstance{
			busy: true, freeAt: fin, loadedKey: j.est.Key, owner: t, bytes: j.est.Bytes,
		}
		plan.Placements = append(plan.Placements, Placement{
			Seq: j.seq, Spec: j.spec, Key: j.est.Key, Instance: instance,
			TenantSeq: t.nextSeq, Reused: reuse,
			StartSec: now, ConfigSec: configSec, ServiceSec: j.est.ServiceSec,
			FinishSec: fin, EstBytes: j.est.Bytes,
		})
		t.nextSeq++
		if reuse {
			plan.Reuses++
		} else {
			plan.Reconfigs++
		}
		if fin > plan.Makespan {
			plan.Makespan = fin
		}
	}

	tryPlace := func() bool {
		anyFree := false
		for i := range inst {
			if !inst[i].busy {
				anyFree = true
				break
			}
		}
		if !anyFree {
			return false
		}
		// Eligible queue heads under quota, in fair-share order (virtual
		// time, ties by tenant name via the sorted walk + stable sort).
		type cand struct {
			t *planTenant
			j *planJob
		}
		var elig []cand
		for _, name := range order {
			t := tenants[name]
			if len(t.queue) == 0 {
				continue
			}
			j := t.queue[0]
			if t.quota.MaxInFlight > 0 && t.inJobs >= t.quota.MaxInFlight {
				continue
			}
			if t.quota.MemBytes > 0 && t.inBytes+j.est.Bytes > t.quota.MemBytes {
				continue
			}
			elig = append(elig, cand{t, j})
		}
		if len(elig) == 0 {
			return false
		}
		sort.SliceStable(elig, func(a, b int) bool { return elig[a].t.vt < elig[b].t.vt })
		head := elig[0]

		if cfg.Policy == PolicySequenceAware {
			// (1) The fair-share head reuses a loaded configuration.
			if i := matchFree(head.j.est.Key); i >= 0 {
				place(head.t, head.j, i, true)
				return true
			}
			// (2) Affinity batching: serve a near-fair tenant whose
			// configuration is already loaded, but only when the
			// amortized reconfiguration this defers for the head's
			// configuration exceeds the reuse handshake it pays.
			upcoming := pendingByKey[head.j.est.Key] - 1
			gain := cost.AmortizedReconfigSec(cfg.Cost, upcoming) - cost.ReconfigSec(cfg.Cost, true)
			if gain > 0 {
				for _, c := range elig[1:] {
					if c.t.vt-head.t.vt > slack {
						break
					}
					if i := matchFree(c.j.est.Key); i >= 0 {
						place(c.t, c.j, i, true)
						return true
					}
				}
			}
		}
		// (3) Reconfigure for the head. Cost-aware victim choice: prefer
		// a free instance whose loaded configuration has no queued
		// demand, so hot configurations stay resident.
		victim := -1
		for i := range inst {
			if inst[i].busy {
				continue
			}
			if victim < 0 {
				victim = i
			}
			if pendingByKey[inst[i].loadedKey] == 0 {
				victim = i
				break
			}
		}
		place(head.t, head.j, victim, false)
		return true
	}

	for placed < len(jobs) {
		admit()
		release()
		if tryPlace() {
			placed++
			continue
		}
		next := math.Inf(1)
		if ai < len(arr) {
			next = arr[ai].spec.ArriveSec
		}
		for i := range inst {
			if inst[i].busy && inst[i].freeAt > now && inst[i].freeAt < next {
				next = inst[i].freeAt
			}
		}
		if math.IsInf(next, 1) || next <= now {
			// Cannot happen for feasible inputs (per-job quota checked at
			// admission); guard so a planner bug fails loudly instead of
			// spinning.
			return nil, fmt.Errorf("server: scheduler stuck at t=%.6f with %d/%d jobs placed",
				now, placed, len(jobs))
		}
		now = next
	}

	for i := range plan.Placements {
		plan.BySeq[plan.Placements[i].Seq] = &plan.Placements[i]
	}
	plan.FinalKeys = make([]string, len(inst))
	for i := range inst {
		plan.FinalKeys[i] = inst[i].loadedKey
	}
	plan.FinalVT = make(map[string]float64, len(order))
	for _, name := range order {
		plan.FinalVT[name] = tenants[name].vt
	}
	return plan, nil
}
