package hdfg

import (
	"strings"
	"testing"

	"dana/internal/algos"
	"dana/internal/dsl"
)

// These tests cover the hardened interpreter paths: graphs mutated into
// invalid states (as a fuzzer would produce) must surface errors, not
// panic.

func TestInterpBadMergeOpErrors(t *testing.T) {
	a, err := algos.Build(algos.KindLinear, []int{4}, algos.Hyper{LR: 0.1, MergeCoef: 2, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	if g.Merge == nil {
		t.Fatal("expected a merge node")
	}
	g.Merge.MergeOp = dsl.OpSigmoid // not a binary op
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuples := [][]float64{
		{1, 0, 0, 0, 1},
		{0, 1, 0, 0, 2},
	}
	if err := it.StepBatch(tuples); err == nil || !strings.Contains(err.Error(), "not a binary op") {
		t.Fatalf("StepBatch = %v, want not-a-binary-op error", err)
	}
}

func TestInterpGatherOneDimModelErrors(t *testing.T) {
	a, err := algos.Build(algos.KindLRMF, []int{4, 3, 2}, algos.Hyper{LR: 0.05, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flatten the model shape after construction, as a corrupted graph
	// would: gather must reject, not index out of bounds.
	g.Model.Shape = Shape{g.ModelSize()}
	tuple := make([]float64, g.TupleWidth())
	if err := it.StepBatch([][]float64{tuple}); err == nil || !strings.Contains(err.Error(), "2-D model") {
		t.Fatalf("StepBatch = %v, want 2-D-model error", err)
	}
}

func TestInterpUnbroadcastableShapesError(t *testing.T) {
	model := &Node{ID: 0, Op: dsl.OpLeaf, Kind: dsl.KModel, Shape: Shape{1}}
	a := &Node{ID: 1, Op: dsl.OpLeaf, Kind: dsl.KInput, Shape: Shape{2}}
	b := &Node{ID: 2, Op: dsl.OpLeaf, Kind: dsl.KInput, Shape: Shape{3}}
	bad := &Node{ID: 3, Op: dsl.OpAdd, Shape: Shape{3}, Args: []*Node{a, b}}
	g := &Graph{
		Nodes:  []*Node{model, a, b, bad},
		Model:  model,
		Inputs: []*Node{a, b},
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{1, 2, 3, 4, 5}}); err == nil || !strings.Contains(err.Error(), "unbroadcastable") {
		t.Fatalf("StepBatch = %v, want unbroadcastable error", err)
	}
}

func TestInterpRowUpdateOneDimModelErrors(t *testing.T) {
	model := &Node{ID: 0, Op: dsl.OpLeaf, Kind: dsl.KModel, Shape: Shape{4}}
	idx := &Node{ID: 1, Op: dsl.OpLeaf, Kind: dsl.KMeta, MetaValue: 0}
	val := &Node{ID: 2, Op: dsl.OpLeaf, Kind: dsl.KMeta, MetaValue: 1}
	g := &Graph{
		Nodes:      []*Node{model, idx, val},
		Model:      model,
		RowUpdates: []RowUpdate{{Idx: idx, Val: val}},
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{}}); err == nil || !strings.Contains(err.Error(), "2-D model") {
		t.Fatalf("StepBatch = %v, want 2-D-model error", err)
	}
}

func TestInterpShortOperandErrors(t *testing.T) {
	// A sigmoid node whose declared shape is larger than its operand:
	// must error instead of reading past the value slice.
	model := &Node{ID: 0, Op: dsl.OpLeaf, Kind: dsl.KModel, Shape: Shape{2}}
	sig := &Node{ID: 1, Op: dsl.OpSigmoid, Shape: Shape{5}, Args: []*Node{model}}
	g := &Graph{
		Nodes: []*Node{model, sig},
		Model: model,
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{}}); err == nil {
		t.Fatal("StepBatch accepted an undersized operand")
	}
}
