// Package fixture exercises the nilcheck analyzer: uses of a value on
// the branch where it was just compared equal to nil.
package fixture

type node struct {
	next *node
	val  int
}

func derefField(n *node) int {
	if n == nil {
		return n.val // want `field access n\.val`
	}
	return 0
}

func indexNilSlice(s []int) int {
	if s == nil {
		return s[0] // want `index of s`
	}
	return 0
}

func starDeref(p *int) int {
	if p == nil {
		return *p // want `dereference of p`
	}
	return 0
}

func reassignedOK(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

func guardedOK(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}

func lenOfNilOK(s []int) int {
	if s == nil {
		return len(s) // len of nil slice is legal
	}
	return len(s)
}
