package strider

import (
	"fmt"

	"dana/internal/fault"
)

// VM executes a Strider program against one page buffer, emitting
// cleaned tuple bytes to an output buffer. It also counts cycles: one
// cycle per instruction plus one cycle per 8 bytes moved by cln/ins,
// modeling the Strider's sequential byte path.
type VM struct {
	Prog   []Instr
	Config Config

	// MaxSteps bounds execution to catch runaway loops (0 = default).
	MaxSteps int

	t       [NumTempRegs]uint64
	cr      [NumConfigRegs]uint64
	page    []byte
	out     []byte
	reserve int   // Reserve hint, applied at next Run
	loops   []int // bentr return stack, reused across Runs
	cycles  int64
	steps   int64 // instructions retired
	writes  int   // count of writeB-modified bytes
}

// Default step bound: generous for a 32 KB page walk.
const defaultMaxSteps = 1 << 20

// ErrRunaway is returned when execution exceeds MaxSteps. It wraps
// fault.ErrVMTrap: a runaway walk is a Strider trap, so the executor's
// retry/quarantine recovery applies to it.
var ErrRunaway = fmt.Errorf("strider: step budget exhausted (runaway loop?): %w", fault.ErrVMTrap)

// NewVM builds a VM for the program and configuration.
func NewVM(prog []Instr, cfg Config) *VM {
	return &VM{Prog: prog, Config: cfg}
}

// Out returns the emitted output bytes of the last Run.
func (vm *VM) Out() []byte { return vm.out }

// Reserve records an output-buffer capacity hint honored by the next
// Run: a page walk emits at most the page's own payload bytes, so
// reserving the page size removes the append-doubling churn from the
// first walks of every fresh VM (one VM set is built per Train call).
// The buffer is allocated lazily on first use — a VM that never runs
// (e.g. every epoch replays the record cache) costs nothing.
func (vm *VM) Reserve(outBytes int) { vm.reserve = outBytes }

// Cycles returns the cycle count of the last Run.
func (vm *VM) Cycles() int64 { return vm.cycles }

// Steps returns how many instructions the last Run retired (cycles
// minus the extra byte-move cycles of cln/ins).
func (vm *VM) Steps() int64 { return vm.steps }

// BytesWritten returns how many page bytes writeB modified in the last Run.
func (vm *VM) BytesWritten() int { return vm.writes }

// Run executes the program over the page, appending emitted bytes to an
// internal buffer (retrievable via Out).
func (vm *VM) Run(page []byte) error {
	vm.page = page
	if cap(vm.out) < vm.reserve {
		//danalint:ignore hotcall -- capacity-guarded emit-buffer growth, reused across pages
		vm.out = make([]byte, 0, vm.reserve)
	}
	vm.out = vm.out[:0]
	vm.cycles = 0
	vm.steps = 0
	vm.writes = 0
	vm.t = [NumTempRegs]uint64{}
	vm.cr = vm.Config.CR

	maxSteps := vm.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	loopStack := vm.loops[:0]
	pc := 0
	for steps := 0; pc < len(vm.Prog); steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("%w at pc=%d", ErrRunaway, pc)
		}
		in := vm.Prog[pc]
		vm.cycles++
		vm.steps++
		switch in.Op {
		case OpReadB:
			addr, n := vm.val(in.A), vm.val(in.B)
			if n > 8 {
				return vm.fault(pc, "readB length %d > 8", n)
			}
			v, err := vm.load(pc, addr, n)
			if err != nil {
				return err
			}
			if err := vm.store(pc, in.C, v); err != nil {
				return err
			}
		case OpExtrB:
			src, off := vm.val(in.A), vm.val(in.B)
			if off > 7 {
				return vm.fault(pc, "extrB byte offset %d > 7", off)
			}
			if err := vm.store(pc, in.C, src>>(8*off)&0xFF); err != nil {
				return err
			}
		case OpWriteB:
			src, n, addr := vm.val(in.A), vm.val(in.B), vm.val(in.C)
			if n > 8 {
				return vm.fault(pc, "writeB length %d > 8", n)
			}
			if addr > uint64(len(vm.page)) || n > uint64(len(vm.page))-addr {
				return vm.fault(pc, "writeB %d bytes at %d beyond page of %d bytes", n, addr, len(vm.page))
			}
			for i := uint64(0); i < n; i++ {
				vm.page[addr+i] = byte(src >> (8 * i))
			}
			vm.writes += int(n)
		case OpExtrBi:
			src := vm.val(in.A)
			fdIdx := vm.val(in.B)
			if fdIdx >= NumConfigRegs {
				return vm.fault(pc, "extrBi field index %d out of range", fdIdx)
			}
			fd := vm.Config.Fields[fdIdx]
			if err := vm.store(pc, in.C, fd.Extract(src)); err != nil {
				return err
			}
		case OpClean:
			addr, skip, n := vm.val(in.A), vm.val(in.B), vm.val(in.C)
			// Bound each term before summing: register values are untrusted
			// uint64s, and addr+skip+n can wrap around zero.
			plen := uint64(len(vm.page))
			if addr > plen || skip > plen-addr || n > plen-addr-skip {
				return vm.fault(pc, "cln %d bytes at %d+%d beyond page of %d bytes", n, addr, skip, len(vm.page))
			}
			start := addr + skip
			vm.out = append(vm.out, vm.page[start:start+n]...)
			vm.cycles += int64(n+7) / 8
		case OpInsert:
			v, n := vm.val(in.A), vm.val(in.B)
			if n > 8 {
				return vm.fault(pc, "ins length %d > 8", n)
			}
			for i := uint64(0); i < n; i++ {
				vm.out = append(vm.out, byte(v>>(8*i)))
			}
			vm.cycles++
		case OpAdd:
			if err := vm.store(pc, in.C, vm.val(in.A)+vm.val(in.B)); err != nil {
				return err
			}
		case OpSub:
			if err := vm.store(pc, in.C, vm.val(in.A)-vm.val(in.B)); err != nil {
				return err
			}
		case OpMul:
			if err := vm.store(pc, in.C, vm.val(in.A)*vm.val(in.B)); err != nil {
				return err
			}
		case OpBentr:
			loopStack = append(loopStack, pc)
		case OpBexit:
			if len(loopStack) == 0 {
				return vm.fault(pc, "bexit without bentr")
			}
			cond := int(in.A)
			a, b := vm.val(in.B), vm.val(in.C)
			exit := false
			switch cond {
			case CondEQ:
				exit = a == b
			case CondGE:
				exit = a >= b
			case CondGT:
				exit = a > b
			case CondNE:
				exit = a != b
			default:
				return vm.fault(pc, "bexit condition %d invalid", cond)
			}
			if exit {
				loopStack = loopStack[:len(loopStack)-1]
			} else {
				pc = loopStack[len(loopStack)-1]
			}
		default:
			return vm.fault(pc, "invalid opcode %d", in.Op)
		}
		pc++
	}
	vm.loops = loopStack
	return nil
}

// val resolves an operand to its value.
func (vm *VM) val(o Operand) uint64 {
	switch {
	case o <= operandImmMax:
		return uint64(o)
	case o < operandCRBase:
		return vm.t[o-operandTBase]
	default:
		return vm.cr[o-operandCRBase]
	}
}

// store writes v to a register operand.
func (vm *VM) store(pc int, o Operand, v uint64) error {
	switch {
	case o <= operandImmMax:
		return vm.fault(pc, "destination operand %s is an immediate", o)
	case o < operandCRBase:
		vm.t[o-operandTBase] = v
	default:
		vm.cr[o-operandCRBase] = v
	}
	return nil
}

// load reads an n-byte little-endian value from the page.
func (vm *VM) load(pc int, addr, n uint64) (uint64, error) {
	if addr > uint64(len(vm.page)) || n > uint64(len(vm.page))-addr {
		return 0, vm.fault(pc, "readB %d bytes at %d beyond page of %d bytes", n, addr, len(vm.page))
	}
	var v uint64
	for i := uint64(0); i < n; i++ {
		v |= uint64(vm.page[addr+i]) << (8 * i)
	}
	return v, nil
}

// fault builds a VM trap error. Every trap wraps fault.ErrVMTrap so
// callers across package boundaries can discriminate with errors.Is.
func (vm *VM) fault(pc int, format string, args ...interface{}) error {
	return fmt.Errorf("strider: pc=%d %s: %s: %w", pc, vm.Prog[pc], fmt.Sprintf(format, args...), fault.ErrVMTrap)
}
