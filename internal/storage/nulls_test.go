package storage

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// mixedSchema builds an ncols schema cycling through all four types.
func mixedSchema(ncols int) *Schema {
	types := []ColType{TFloat32, TFloat64, TInt32, TInt64}
	cols := make([]Column, ncols)
	for i := range cols {
		cols[i] = Column{Name: string(rune('a' + i%26)), Type: types[i%len(types)]}
	}
	return NewSchema(cols...)
}

// quantize makes v exactly representable by the column type, so encode →
// decode is the identity.
func quantize(t ColType, v float64) float64 {
	switch t {
	case TFloat32:
		return float64(float32(v))
	case TInt32, TInt64:
		return float64(int32(v * 100))
	default:
		return v
	}
}

func randRow(rng *rand.Rand, s *Schema) []float64 {
	vals := make([]float64, s.NumCols())
	for i, c := range s.Cols {
		vals[i] = quantize(c.Type, rng.NormFloat64()*10)
	}
	return vals
}

// TestNullBitmapBoundaryColumns exercises the null bitmap exactly at the
// byte boundaries the satellite calls out: 8/9/64/65 columns (1→2 and
// 8→9 bitmap bytes, where MAXALIGN keeps t_hoff at 24 or grows it to 32).
func TestNullBitmapBoundaryColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ncols := range []int{1, 7, 8, 9, 40, 63, 64, 65, 128, 256} {
		s := mixedSchema(ncols)
		wantHoff := TupleHeaderSizeFor(ncols, true)
		if raw := alignUp(TupleHeaderRawSize+(ncols+7)/8, MaxAlign); wantHoff != raw {
			t.Fatalf("ncols=%d: TupleHeaderSizeFor = %d, want %d", ncols, wantHoff, raw)
		}
		for trial := 0; trial < 8; trial++ {
			vals := randRow(rng, s)
			nulls := make([]bool, ncols)
			switch trial {
			case 0: // no nulls through the bitmap path boundary case
				nulls[0] = true
			case 1: // all null
				for i := range nulls {
					nulls[i] = true
				}
			default:
				for i := range nulls {
					nulls[i] = rng.Intn(3) == 0
				}
			}
			raw, err := EncodeTupleWithNulls(s, vals, nulls, 7, TID{Page: 1, Item: 2})
			if err != nil {
				t.Fatalf("ncols=%d trial=%d: %v", ncols, trial, err)
			}
			if hasAnyNull(nulls) {
				m, err := DecodeTupleMeta(raw)
				if err != nil {
					t.Fatal(err)
				}
				if int(m.Hoff) != wantHoff {
					t.Fatalf("ncols=%d: t_hoff = %d, want %d", ncols, m.Hoff, wantHoff)
				}
				if m.Infomask&InfomaskHasNull == 0 {
					t.Fatalf("ncols=%d: HEAP_HASNULL not set", ncols)
				}
				// The NOT NULL fast path must refuse, not misread.
				if _, err := DecodeTuple(s, nil, raw); err == nil {
					t.Fatalf("ncols=%d: DecodeTuple accepted a null-bitmap tuple", ncols)
				}
			}
			got, gotNulls, err := DecodeTupleWithNulls(s, raw)
			if err != nil {
				t.Fatalf("ncols=%d trial=%d: decode: %v", ncols, trial, err)
			}
			for i := range vals {
				if gotNulls[i] != nulls[i] {
					t.Fatalf("ncols=%d col=%d: null = %v, want %v", ncols, i, gotNulls[i], nulls[i])
				}
				if nulls[i] {
					if got[i] != 0 {
						t.Fatalf("ncols=%d col=%d: NULL decoded as %v", ncols, i, got[i])
					}
					continue
				}
				if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("ncols=%d col=%d: %v != %v", ncols, i, got[i], vals[i])
				}
			}
		}
	}
}

// TestNullTupleMatchesPlainWhenNoNulls: an all-false mask must produce
// byte-identical output to the static fast path.
func TestNullTupleMatchesPlainWhenNoNulls(t *testing.T) {
	s := mixedSchema(9)
	rng := rand.New(rand.NewSource(3))
	vals := randRow(rng, s)
	plain, err := EncodeTuple(s, vals, 5, TID{})
	if err != nil {
		t.Fatal(err)
	}
	masked, err := EncodeTupleWithNulls(s, vals, make([]bool, 9), 5, TID{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, masked) {
		t.Fatal("all-false nulls mask changed tuple bytes")
	}
}

// TestNullTuplesOnPages round-trips null-bitmap tuples through real
// pages at all three page sizes.
func TestNullTuplesOnPages(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, size := range []int{PageSize8K, PageSize16K, PageSize32K} {
		s := mixedSchema(65)
		page := NewPage(size, 0)
		var want [][]float64
		var wantNulls [][]bool
		for {
			vals := randRow(rng, s)
			nulls := make([]bool, 65)
			for i := range nulls {
				nulls[i] = rng.Intn(4) == 0
			}
			raw, err := EncodeTupleWithNulls(s, vals, nulls, 2, TID{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := page.AddItem(raw); err != nil {
				break // ErrPageFull
			}
			want = append(want, vals)
			wantNulls = append(wantNulls, nulls)
		}
		if len(want) < 2 {
			t.Fatalf("size=%d: only %d tuples fit", size, len(want))
		}
		if err := page.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			raw, err := page.Item(i)
			if err != nil {
				t.Fatal(err)
			}
			got, gotNulls, err := DecodeTupleWithNulls(s, raw)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if gotNulls[j] != wantNulls[i][j] {
					t.Fatalf("size=%d tuple=%d col=%d: null mismatch", size, i, j)
				}
				if !wantNulls[i][j] && got[j] != want[i][j] {
					t.Fatalf("size=%d tuple=%d col=%d: %v != %v", size, i, j, got[j], want[i][j])
				}
			}
		}
	}
}

func TestVarlenaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sizes := []int{0, 1, 62, 63, 122, 123, 124, 1000, 70000}
	for _, n := range sizes {
		payload := make([]byte, n)
		rng.Read(payload)
		enc, err := AppendVarlena(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		// Short form: total (payload+1) fits in 7 bits.
		wantShort := n+1 <= 0x7F
		if gotShort := enc[0]&1 == 1; gotShort != wantShort {
			t.Fatalf("n=%d: short=%v, want %v", n, gotShort, wantShort)
		}
		got, used, err := DecodeVarlena(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if used != len(enc) || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: round trip mismatch (used %d of %d)", n, used, len(enc))
		}
		// Trailing bytes after the datum must not be consumed.
		enc2 := append(append([]byte(nil), enc...), 0xAB, 0xCD)
		_, used2, err := DecodeVarlena(enc2)
		if err != nil || used2 != len(enc) {
			t.Fatalf("n=%d: with trailer used %d, err %v", n, used2, err)
		}
	}
}

func TestVarlenaCorruptRejected(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"toast pointer":    {0x01},
		"truncated 4-byte": {0x00, 0x01},
		"compression bits": {0x02, 0, 0, 0},
		"overrun short":    {0x7F, 1, 2}, // claims 63 total, has 3
		"overrun long":     {0x00, 0x02, 0, 0},
		"undersized long":  {0x04, 0, 0, 0}, // claims total 1 < 4
	}
	for name, b := range cases {
		if _, _, err := DecodeVarlena(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPageFillToErrPageFull fills pages of every size to ErrPageFull and
// checks the free-space accounting never goes negative and every stored
// tuple stays readable.
func TestPageFillToErrPageFull(t *testing.T) {
	s := NumericSchema(15)
	rng := rand.New(rand.NewSource(23))
	for _, size := range []int{PageSize8K, PageSize16K, PageSize32K} {
		page := NewPage(size, 0)
		n := 0
		for {
			vals := randRow(rng, s)
			raw, err := EncodeTuple(s, vals, 2, TID{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := page.AddItem(raw); err != nil {
				if !errorsIs(err, ErrPageFull) {
					t.Fatalf("size=%d: %v", size, err)
				}
				break
			}
			n++
			if page.FreeSpace() < 0 {
				t.Fatalf("size=%d: negative free space", size)
			}
		}
		expect := (size - PageHeaderSize) / (alignUp(TupleHeaderSize+s.DataWidth(), MaxAlign) + ItemIDSize)
		if n != expect {
			t.Errorf("size=%d: filled %d tuples, geometry predicts %d", size, n, expect)
		}
		if err := page.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := page.Item(i); err != nil {
				t.Fatalf("size=%d item=%d: %v", size, i, err)
			}
		}
	}
}

// TestZeroLiveTuplePages: pages whose every item is dead (or redirected)
// must scan as empty without error, at the relation level too.
func TestZeroLiveTuplePages(t *testing.T) {
	s := NumericSchema(3)
	rel := NewRelation("ghosts", s, PageSize8K)
	for i := 0; i < 10; i++ {
		if _, err := rel.Insert([]float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := rel.Delete(TID{Page: 0, Item: uint16(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Re-point one dead slot as a redirect: scanners must skip it too.
	pg, _ := rel.Page(0)
	if err := pg.SetLinePointer(3, ItemID{Off: 4, Flags: LPRedirect, Len: 0}); err != nil {
		t.Fatal(err)
	}
	rows := 0
	if err := rel.Scan(func(TID, []float64) error { rows++; return nil }); err != nil {
		t.Fatal(err)
	}
	if rows != 0 {
		t.Fatalf("scanned %d rows from a zero-live relation", rows)
	}
	if err := rel.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 0 {
		t.Fatalf("vacuum left %d tuples", rel.NumTuples())
	}
}

// errorsIs avoids importing errors in this file twice.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
