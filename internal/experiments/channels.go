package experiments

// Channel sweep: the Figure-14 bandwidth sweep extended along the
// multi-channel axis (ROADMAP item 3). Each sweep point models the
// accelerator link as C independent memory channels at a given
// per-channel BandwidthScale and reports the epoch transfer and
// pipeline times; out at HBM-class aggregate bandwidth (32 channels)
// the pipeline saturates at the compute time and more bandwidth stops
// helping.
//
// The sweep doubles as an executable proof of the charging identities
// the channel model promises: ChannelSweep returns an error (danabench
// exits non-zero) if any point violates them, so a cost-model change
// that breaks the documented serial charging order fails the
// experiment, not just a unit test.

import (
	"fmt"

	"dana/internal/cost"
	"dana/internal/datagen"
)

// ChannelCounts are the sweep's channel-count points: the legacy single
// link, typical DDR configurations, and an HBM-class stack.
var ChannelCounts = []int{1, 4, 8, 32}

// ChannelSweepRow is one (workload, channels, scale) sweep point.
type ChannelSweepRow struct {
	Name        string
	Channels    int
	Scale       float64 // per-channel Figure-14 bandwidth multiplier
	AggregateBW float64 // bytes/sec: Channels × per-channel × scale
	TransferSec float64 // per-epoch max-over-channels stream time
	PipelineSec float64 // modeled FPGA epoch pipeline time
	Speedup     float64 // vs the 1-channel scale-1.0 baseline
	Saturated   bool    // doubling the bandwidth no longer helps
}

// ChannelSweep models the real-dataset workloads over ChannelCounts ×
// BandwidthScales and verifies the charging identities at every point:
//
//  1. aggregate bandwidth is exactly Channels × per-channel;
//  2. the 1-channel model is bit-identical to the legacy scalar
//     BandwidthScale expression (zero-value Link);
//  3. the transfer time equals a serial per-page recomputation in the
//     documented charging order (channels 0..C-1, pages round-robin).
func ChannelSweep(env Env) ([]ChannelSweepRow, error) {
	var rows []ChannelSweepRow
	sawSaturation := false
	for _, w := range datagen.Real() {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		cw := c.CostWorkload(env)
		base := cost.DAnAPipelineSec(cw, env.Cost)
		for _, ch := range ChannelCounts {
			for _, sc := range BandwidthScales {
				p := env.Cost
				p.BandwidthScale = sc
				p.Link.Channels = ch
				if err := checkChannelIdentities(cw, p, env.Cost); err != nil {
					return nil, fmt.Errorf("%s, %d channels, scale %g: %w", w.Name, ch, sc, err)
				}
				pipe := cost.DAnAPipelineSec(cw, p)
				p2 := p
				p2.BandwidthScale = 2 * sc
				sat := cost.DAnAPipelineSec(cw, p2) == pipe
				sawSaturation = sawSaturation || sat
				rows = append(rows, ChannelSweepRow{
					Name:        w.Name,
					Channels:    ch,
					Scale:       sc,
					AggregateBW: cost.AggregateBandwidth(p),
					TransferSec: cost.TransferSec(cw, p),
					PipelineSec: pipe,
					Speedup:     base / pipe,
					Saturated:   sat,
				})
			}
		}
	}
	if !sawSaturation {
		return nil, fmt.Errorf("no sweep point reached compute saturation: the channel model is not scaling aggregate bandwidth")
	}
	return rows, nil
}

// checkChannelIdentities asserts the three charging identities at one
// sweep point, bit-exactly (==, no tolerance).
func checkChannelIdentities(w cost.Workload, p, legacy cost.Params) error {
	// Identity 1: aggregate = channels × per-channel.
	ch := p.Link.Channels
	if ch < 1 {
		ch = 1
	}
	if agg, want := cost.AggregateBandwidth(p), float64(ch)*cost.ChannelBandwidth(p); agg != want {
		return fmt.Errorf("aggregate bandwidth %g != channels × per-channel %g", agg, want)
	}
	// Identity 2: the 1-channel model reproduces the legacy scalar
	// expression bit-for-bit (same BandwidthScale, zero-value Link).
	if ch == 1 {
		lp := legacy
		lp.BandwidthScale = p.BandwidthScale
		lp.Link = cost.ChannelModel{}
		if got, want := cost.DAnAPipelineSec(w, p), cost.DAnAPipelineSec(w, lp); got != want {
			return fmt.Errorf("1-channel pipeline %g != legacy scalar pipeline %g", got, want)
		}
	}
	// Identity 3: serial per-page recomputation. Deal the pages
	// round-robin one at a time (the documented interleaving), then
	// charge channels 0..C-1 in index order with the model's own share
	// expression; the worst channel must equal TransferSec exactly.
	pages := w.Pages
	if pages <= 0 {
		pages = ch
	}
	counts := make([]int, ch)
	for pn := 0; pn < pages; pn++ {
		counts[pn%ch]++
	}
	bw := cost.ChannelBandwidth(p)
	var worst float64
	for c := 0; c < ch; c++ {
		if counts[c] != cost.ChannelPages(pages, ch, c) {
			return fmt.Errorf("channel %d owns %d pages, ChannelPages says %d", c, counts[c], cost.ChannelPages(pages, ch, c))
		}
		share := float64(w.DatasetBytes) * (float64(counts[c]) / float64(pages))
		t := share/bw + p.Link.HandshakeSec
		if ch == 1 {
			t = float64(w.DatasetBytes)/bw + p.Link.HandshakeSec
		}
		if t > worst {
			worst = t
		}
	}
	if got := cost.TransferSec(w, p); got != worst {
		return fmt.Errorf("transfer %g != serial per-page recomputation %g", got, worst)
	}
	return nil
}
