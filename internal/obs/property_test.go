package obs

import (
	"fmt"
	"math"
	"math/bits"
	"testing"
)

// TestHistogramBucketEdges pins the power-of-two bucketing at every
// boundary: for each k, 2^k-1 lands in bucket k while 2^k and 2^k+1
// land in bucket k+1 (bucket index = bits.Len64), with zero and
// negative values clamping to bucket 0 and MaxInt64 filling the top
// finite bucket.
func TestHistogramBucketEdges(t *testing.T) {
	for k := uint(1); k <= 62; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			h := New().Hist("edges")
			lo := int64(1)<<k - 1 // 2^k - 1
			mid := int64(1) << k  // 2^k
			hi := int64(1)<<k + 1 // 2^k + 1
			h.Observe(lo)
			h.Observe(mid)
			h.Observe(hi)
			if got, want := h.buckets[k].Load(), int64(1); got != want {
				t.Errorf("bucket[%d] = %d, want %d (2^%d-1 belongs below the boundary)", k, got, want, k)
			}
			if got, want := h.buckets[k+1].Load(), int64(2); got != want {
				t.Errorf("bucket[%d] = %d, want %d (2^%d and 2^%d+1 belong above)", k+1, got, want, k, k)
			}
			// The bucket index is exactly bits.Len64 for positive values.
			for _, v := range []int64{lo, mid, hi} {
				if got, want := bits.Len64(uint64(v)), int(bucketFor(v)); got != want {
					t.Errorf("bucketFor(%d) = %d, want bits.Len64 = %d", v, want, got)
				}
			}
			s := h.snapshot()
			if s.Count != 3 || s.Sum != lo+mid+hi || s.Min != lo || s.Max != hi {
				t.Errorf("snapshot = %+v, want count 3, sum %d, min %d, max %d", s, lo+mid+hi, lo, hi)
			}
		})
	}

	t.Run("clamps", func(t *testing.T) {
		h := New().Hist("clamps")
		h.Observe(0)
		h.Observe(-1)
		h.Observe(math.MinInt64)
		h.Observe(math.MaxInt64) // int64's top value: Len64 = 63
		if got := h.buckets[0].Load(); got != 3 {
			t.Errorf("bucket[0] = %d, want 3 (zero and negatives clamp)", got)
		}
		if got := h.buckets[63].Load(); got != 1 {
			t.Errorf("bucket[63] = %d, want 1 (MaxInt64)", got)
		}
		var total int64
		for i := range h.buckets {
			total += h.buckets[i].Load()
		}
		if total != h.count.Load() {
			t.Errorf("bucket totals %d != count %d", total, h.count.Load())
		}
	})

	t.Run("nil", func(t *testing.T) {
		var h *Histogram
		h.Observe(42) // must not panic
	})
}

// bucketFor mirrors Observe's bucket selection for the property check.
func bucketFor(v int64) int64 {
	if v <= 0 {
		return 0
	}
	return int64(bits.Len64(uint64(v)))
}

// TestRingWraparound pins the trace ring's eviction behavior at exactly
// capacity and at capacity+1.
func TestRingWraparound(t *testing.T) {
	const capacity = 8
	r := NewRing(capacity)

	// Fill to exactly capacity: nothing drops, order preserved.
	for i := 0; i < capacity; i++ {
		r.Emit("ev", int64(i), 0)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("at capacity: %d events, want %d", len(evs), capacity)
	}
	if r.Dropped() != 0 {
		t.Fatalf("at capacity: dropped %d, want 0", r.Dropped())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.A != int64(i) {
			t.Fatalf("event %d = {Seq:%d A:%d}, want {%d %d}", i, ev.Seq, ev.A, i, i)
		}
	}

	// One past capacity: the oldest event is evicted, newest wins.
	r.Emit("ev", int64(capacity), 0)
	evs = r.Events()
	if len(evs) != capacity {
		t.Fatalf("past capacity: %d events, want %d", len(evs), capacity)
	}
	if r.Dropped() != 1 {
		t.Fatalf("past capacity: dropped %d, want 1", r.Dropped())
	}
	if evs[0].Seq != 1 {
		t.Errorf("oldest surviving seq = %d, want 1", evs[0].Seq)
	}
	if last := evs[len(evs)-1]; last.Seq != uint64(capacity) || last.A != int64(capacity) {
		t.Errorf("newest event = {Seq:%d A:%d}, want {%d %d}", last.Seq, last.A, capacity, capacity)
	}

	// Clear empties the buffer but sequence numbers keep increasing.
	r.Clear()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Fatal("Clear left state behind")
	}
	r.Emit("ev", 99, 0)
	if evs := r.Events(); len(evs) != 1 || evs[0].Seq != uint64(capacity)+1 {
		t.Fatalf("post-Clear event = %+v, want Seq %d", evs, capacity+1)
	}

	// Degenerate capacity clamps to 1.
	one := NewRing(0)
	one.Emit("a", 1, 0)
	one.Emit("b", 2, 0)
	if evs := one.Events(); len(evs) != 1 || evs[0].Name != "b" {
		t.Fatalf("cap-1 ring = %+v, want only the newest event", evs)
	}
	if one.Dropped() != 1 {
		t.Errorf("cap-1 ring dropped %d, want 1", one.Dropped())
	}

	var nilRing *Ring
	nilRing.Emit("x", 0, 0) // must not panic
	if nilRing.Events() != nil || nilRing.Dropped() != 0 {
		t.Error("nil ring should read as empty")
	}
}
