// Recommender: low-rank matrix factorization on a Netflix-style rating
// table (the paper's LRMF workload). The model stacks user factors on
// item factors; each rating tuple gathers its two rows, computes the
// prediction error, and scatters updated rows back — exercising DAnA's
// gather/scatter model addressing and the single-threaded LRMF design
// point (§7.2: LRMF gains little from multi-threading).
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math"

	"dana"
)

func main() {
	eng, err := dana.Open(dana.Config{PageSize: 8 << 10, PoolBytes: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}

	ds, err := eng.LoadWorkload("Netflix", 0.002, 5)
	if err != nil {
		log.Fatal(err)
	}
	users, items, rank := ds.Topology[0], ds.Topology[1], ds.Topology[2]
	fmt.Printf("ratings table %q: %d ratings, %d users x %d items, rank %d\n",
		ds.Rel.Name, ds.Tuples, users, items, rank)

	algo, err := ds.DSLAlgo(1)
	if err != nil {
		log.Fatal(err)
	}
	algo.SetEpochs(8)
	if err := eng.RegisterUDF(algo, 1); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Train(algo.Name, ds.Rel.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %s\n", res.Design)
	fmt.Printf("trained %d epochs, %d engine cycles\n", res.Epochs, res.Engine.Cycles)

	// Evaluate RMSE of the factor model over the training ratings.
	ratings, err := eng.SQL("SELECT * FROM " + ds.Rel.Name)
	if err != nil {
		log.Fatal(err)
	}
	var se float64
	for _, r := range ratings.Rows {
		u, v, rating := int(r[0]), int(r[1]), r[2]
		var pred float64
		for k := 0; k < rank; k++ {
			pred += float64(res.Model[u*rank+k]) * float64(res.Model[v*rank+k])
		}
		se += (pred - rating) * (pred - rating)
	}
	rmse := math.Sqrt(se / float64(len(ratings.Rows)))
	fmt.Printf("training RMSE after %d epochs: %.4f\n", res.Epochs, rmse)

	// Recommend: top items for user 0 by predicted rating.
	type scored struct {
		item int
		pred float64
	}
	best := make([]scored, 0, 3)
	for it := 0; it < items; it++ {
		var pred float64
		row := users + it
		for k := 0; k < rank; k++ {
			pred += float64(res.Model[0*rank+k]) * float64(res.Model[row*rank+k])
		}
		best = append(best, scored{it, pred})
	}
	for i := 0; i < 3; i++ {
		top := i
		for j := i + 1; j < len(best); j++ {
			if best[j].pred > best[top].pred {
				top = j
			}
		}
		best[i], best[top] = best[top], best[i]
	}
	fmt.Println("top-3 recommendations for user 0:")
	for _, s := range best[:3] {
		fmt.Printf("  item %d: predicted rating %.3f\n", s.item, s.pred)
	}
}
