package dana_test

// Smoke test for the examples/ programs: each one must build and run to
// completion against the current API. The programs train at small scale,
// so the whole sweep stays in CI budget; -short skips it.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	ran := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		if _, err := os.Stat(filepath.Join("examples", name, "main.go")); err != nil {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no runnable example programs found under examples/")
	}
}
