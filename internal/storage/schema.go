package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// ColType enumerates the fixed-width column types the engine supports.
// Advanced-analytics training tables are dense numeric relations, so
// fixed-width types cover the paper's workloads.
type ColType uint8

const (
	TInvalid ColType = iota
	TFloat32
	TFloat64
	TInt32
	TInt64
)

// Size returns the on-disk width of the type in bytes.
func (t ColType) Size() int {
	switch t {
	case TFloat32, TInt32:
		return 4
	case TFloat64, TInt64:
		return 8
	default:
		return 0
	}
}

// Align returns the required alignment of the type.
func (t ColType) Align() int { return t.Size() }

func (t ColType) String() string {
	switch t {
	case TFloat32:
		return "float4"
	case TFloat64:
		return "float8"
	case TInt32:
		return "int4"
	case TInt64:
		return "int8"
	default:
		return "invalid"
	}
}

// ParseColType parses SQL-ish type names.
func ParseColType(s string) (ColType, error) {
	switch strings.ToLower(s) {
	case "float4", "real", "float32":
		return TFloat32, nil
	case "float8", "double", "double precision", "float64", "float":
		return TFloat64, nil
	case "int4", "int", "integer", "int32":
		return TInt32, nil
	case "int8", "bigint", "int64":
		return TInt64, nil
	default:
		return TInvalid, fmt.Errorf("storage: unknown column type %q", s)
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns. All columns are NOT NULL
// fixed-width values, so tuple layout is static.
type Schema struct {
	Cols []Column

	offsets []int // computed byte offset of each column within tuple data
	width   int   // total (aligned) data width
}

// NewSchema builds a schema and computes the aligned column offsets.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols}
	off := 0
	s.offsets = make([]int, len(cols))
	for i, c := range cols {
		off = alignUp(off, c.Type.Align())
		s.offsets[i] = off
		off += c.Type.Size()
	}
	s.width = off
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// DataWidth returns the fixed byte width of the user-data portion of a
// tuple (excluding the heap tuple header).
func (s *Schema) DataWidth() int { return s.width }

// ColOffset returns the byte offset of column i within the tuple data.
func (s *Schema) ColOffset(i int) int { return s.offsets[i] }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// String renders the schema as "(a float4, b float8)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// NumericSchema builds the common analytics schema: nFeatures float4
// feature columns named f0..f{n-1} followed by a float4 label column.
func NumericSchema(nFeatures int) *Schema {
	cols := make([]Column, 0, nFeatures+1)
	for i := 0; i < nFeatures; i++ {
		cols = append(cols, Column{Name: fmt.Sprintf("f%d", i), Type: TFloat32})
	}
	cols = append(cols, Column{Name: "label", Type: TFloat32})
	return NewSchema(cols...)
}

// RatingSchema builds the LRMF schema: (userid int4, itemid int4, rating float4).
func RatingSchema() *Schema {
	return NewSchema(
		Column{Name: "userid", Type: TInt32},
		Column{Name: "itemid", Type: TInt32},
		Column{Name: "rating", Type: TFloat32},
	)
}

// EncodeValues serializes a row of float64 values (converted per column
// type) into dst, which must be at least DataWidth bytes. Integers are
// truncated from the float64 representation.
func (s *Schema) EncodeValues(dst []byte, vals []float64) error {
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("storage: schema has %d columns, got %d values", len(s.Cols), len(vals))
	}
	if len(dst) < s.width {
		return fmt.Errorf("storage: need %d bytes, have %d", s.width, len(dst))
	}
	for i, c := range s.Cols {
		off := s.offsets[i]
		switch c.Type {
		case TFloat32:
			binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(float32(vals[i])))
		case TFloat64:
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(vals[i]))
		case TInt32:
			binary.LittleEndian.PutUint32(dst[off:], uint32(int32(vals[i])))
		case TInt64:
			binary.LittleEndian.PutUint64(dst[off:], uint64(int64(vals[i])))
		default:
			return fmt.Errorf("storage: cannot encode column %q of type %v", c.Name, c.Type)
		}
	}
	return nil
}

// DecodeValues deserializes tuple data into a float64 slice (one element
// per column), appending to dst and returning it.
func (s *Schema) DecodeValues(dst []float64, data []byte) ([]float64, error) {
	if len(data) < s.width {
		return dst, fmt.Errorf("storage: tuple data %d bytes, schema needs %d", len(data), s.width)
	}
	for i, c := range s.Cols {
		off := s.offsets[i]
		switch c.Type {
		case TFloat32:
			dst = append(dst, float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))))
		case TFloat64:
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
		case TInt32:
			dst = append(dst, float64(int32(binary.LittleEndian.Uint32(data[off:]))))
		case TInt64:
			dst = append(dst, float64(int64(binary.LittleEndian.Uint64(data[off:]))))
		default:
			return dst, fmt.Errorf("storage: cannot decode column %q of type %v", c.Name, c.Type)
		}
	}
	return dst, nil
}
