package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilCheck is a lightweight stand-in for the x/tools nilness analyzer
// (unavailable in hermetic builds). It reports uses that are guaranteed
// to dereference nil: inside the then-branch of `if x == nil { … }`
// (with no intervening reassignment of x), a field selection, index, or
// dereference of x must panic. Method calls on x are deliberately NOT
// flagged — the obs layer's whole design is nil-receiver no-op methods.
var NilCheck = &Analyzer{
	Name: "nilcheck",
	Doc:  "no field access, indexing, or dereference of a variable known to be nil",
	Run:  runNilCheck,
}

func runNilCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilComparedObj(pass.TypesInfo, ifStmt.Cond)
			if obj == nil {
				return true
			}
			checkNilUses(pass, ifStmt.Body, obj)
			return true
		})
	}
	return nil
}

// nilComparedObj returns the variable proven nil when cond is true:
// cond must be exactly `x == nil` (or `nil == x`).
func nilComparedObj(info *types.Info, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if id, ok := y.(*ast.Ident); ok && id.Name == "nil" {
		if xid, ok := x.(*ast.Ident); ok {
			return info.Uses[xid]
		}
	}
	if id, ok := x.(*ast.Ident); ok && id.Name == "nil" {
		if yid, ok := y.(*ast.Ident); ok {
			return info.Uses[yid]
		}
	}
	return nil
}

// checkNilUses reports definite dereferences of obj in body, stopping
// at any reassignment.
func checkNilUses(pass *Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				// Field access on a nil pointer panics; method values are
				// fine when the method has a nil-tolerant receiver.
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
						pass.Reportf(n.Pos(), "field access %s.%s: %s is nil on this path",
							id.Name, n.Sel.Name, id.Name)
					}
				}
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				switch obj.Type().Underlying().(type) {
				case *types.Slice, *types.Pointer:
					pass.Reportf(n.Pos(), "index of %s: it is nil on this path", id.Name)
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "dereference of %s: it is nil on this path", id.Name)
			}
		}
		return true
	})
}
