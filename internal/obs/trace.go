package obs

import (
	"sync"
	"time"
)

// DefaultRingCap bounds the trace ring: events are epoch/query-
// granularity, so 4096 covers thousands of epochs before wrapping.
const DefaultRingCap = 4096

// Event is one trace-ring entry. Events are observational only — wall
// timestamps are nondeterministic, which is why they live in the trace
// export and never in modeled statistics.
type Event struct {
	Seq  uint64 `json:"seq"`
	AtNs int64  `json:"at_ns"` // wall clock, unix nanoseconds
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// Ring is a bounded trace-event buffer: the newest RingCap events win.
// A nil *Ring ignores all writes. Emission is mutex-guarded — events
// fire at epoch granularity, far off any hot path.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	seq     uint64
	dropped uint64
}

// NewRing creates a ring holding up to capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, evicting the oldest when full.
func (r *Ring) Emit(name string, a, b int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := Event{Seq: r.seq, AtNs: time.Now().UnixNano(), Name: name, A: a, B: b}
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	copy(r.buf, r.buf[1:])
	r.buf[len(r.buf)-1] = ev
	r.dropped++
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	copy(out, r.buf)
	return out
}

// Dropped returns how many events were evicted by wraparound.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Clear empties the ring (sequence numbers keep increasing).
func (r *Ring) Clear() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.dropped = 0
}
