package compiler

import (
	"fmt"
	"strings"

	"dana/internal/engine"
)

// List scheduler (paper §6.2): "for scheduling and mapping a node, the
// compiler keeps track of the sequence of scheduled nodes assigned to
// each AC and AU on a per-cycle basis. For each node which is 'ready'
// ... the compiler tries to place that operation with the goal to
// improve throughput."
//
// ScheduleList performs dependence analysis over a macro-instruction
// list and packs ready instructions into issue steps: instructions
// bound for disjoint analytic clusters execute concurrently (the
// MIMD-across-ACs / SIMD-within-AC execution model), subject to the
// thread's lane capacity and a single memory-controller port for
// gather/scatter. The result is the operation map stored in the
// catalog and the makespan the throughput analysis reports.

// Span is a half-open scratchpad interval [Lo, Hi).
type Span struct{ Lo, Hi int }

func (s Span) overlaps(o Span) bool { return s.Lo < o.Hi && o.Lo < s.Hi }

// reads returns the scratchpad intervals an instruction reads.
func reads(in engine.Instr) []Span {
	var out []Span
	add := func(s engine.Slot) {
		if s.Len > 0 {
			out = append(out, Span{s.Base, s.Base + s.Len})
		}
	}
	switch in.Kind {
	case engine.KEW:
		add(in.A)
		if !in.Op.IsUnary() {
			add(in.B)
		}
	case engine.KReduce:
		hi := in.A.Base + (in.Dst.Len-1)*in.GStride + (in.GroupSize-1)*in.EStride + 1
		out = append(out, Span{in.A.Base, hi})
	case engine.KGather:
		add(in.A) // the index; the model read is tracked via modelSpan
	case engine.KScatter:
		add(in.A)
		add(in.B)
	}
	return out
}

// writes returns the scratchpad interval an instruction writes.
func writes(in engine.Instr, model engine.Slot) Span {
	switch in.Kind {
	case engine.KScatter:
		// Dynamic row: conservatively the whole model.
		return Span{model.Base, model.Base + model.Len}
	default:
		return Span{in.Dst.Base, in.Dst.Base + in.Dst.Len}
	}
}

// Schedule is the packed issue plan for one instruction list.
type Schedule struct {
	// Steps holds instruction indices issued concurrently per step.
	Steps [][]int
	// StepCycles is each step's cost (the slowest packed instruction).
	StepCycles []int64
	// MakespanCycles is the scheduled execution time.
	MakespanCycles int64
	// SerialCycles is the in-order (no overlap) execution time.
	SerialCycles int64
	// CriticalPathCycles is the dependence-height lower bound.
	CriticalPathCycles int64
}

// ILP returns the instruction-level parallelism the schedule exposes.
func (s Schedule) ILP() float64 {
	if s.MakespanCycles == 0 {
		return 1
	}
	return float64(s.SerialCycles) / float64(s.MakespanCycles)
}

// ScheduleList builds the dependence graph of the list and packs it
// greedily (longest-critical-path-first among ready instructions).
func ScheduleList(list []engine.Instr, model engine.Slot, cfg engine.Config) Schedule {
	n := len(list)
	sched := Schedule{}
	if n == 0 {
		return sched
	}
	cycles := make([]int64, n)
	for i, in := range list {
		c := instrCost(in, cfg)
		cycles[i] = c
		sched.SerialCycles += c
	}

	// Dependence edges: j -> i for the latest prior conflicting access.
	deps := make([][]int, n)
	succs := make([][]int, n)
	for i := 1; i < n; i++ {
		wI := writes(list[i], model)
		rI := reads(list[i])
		for j := i - 1; j >= 0; j-- {
			wJ := writes(list[j], model)
			conflict := wI.overlaps(wJ) // WAW
			if !conflict {
				for _, r := range rI { // RAW
					if r.overlaps(wJ) {
						conflict = true
						break
					}
				}
			}
			if !conflict {
				for _, r := range reads(list[j]) { // WAR
					if wI.overlaps(r) {
						conflict = true
						break
					}
				}
			}
			if conflict {
				deps[i] = append(deps[i], j)
				succs[j] = append(succs[j], i)
			}
		}
	}

	// Critical-path heights (list is topologically ordered by index).
	height := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		var h int64
		for _, s := range succs[i] {
			if height[s] > h {
				h = height[s]
			}
		}
		height[i] = h + cycles[i]
	}
	for i := 0; i < n; i++ {
		if len(deps[i]) == 0 && height[i] > sched.CriticalPathCycles {
			sched.CriticalPathCycles = height[i]
		}
	}

	// Greedy packing: issue the ready instruction with the greatest
	// height first; fill the step with further ready instructions that
	// fit the lane budget and the memory-controller port.
	lanes := cfg.Lanes()
	laneUse := func(in engine.Instr) int {
		switch in.Kind {
		case engine.KReduce:
			return lanes // reductions use the whole cluster array + bus
		case engine.KGather, engine.KScatter:
			return 0 // memory controller, not AUs
		default:
			u := in.Dst.Len
			if u > lanes {
				u = lanes
			}
			return u
		}
	}
	done := make([]bool, n)
	pending := make([]int, n) // unscheduled dependency count
	for i := range deps {
		pending[i] = len(deps[i])
	}
	scheduled := 0
	for scheduled < n {
		// Collect ready instructions, highest first.
		var ready []int
		for i := 0; i < n; i++ {
			if !done[i] && pending[i] == 0 {
				ready = append(ready, i)
			}
		}
		for a := 1; a < len(ready); a++ {
			for b := a; b > 0 && height[ready[b]] > height[ready[b-1]]; b-- {
				ready[b], ready[b-1] = ready[b-1], ready[b]
			}
		}
		var step []int
		laneBudget := lanes
		mcUsed := false
		var stepCost int64
		for _, i := range ready {
			in := list[i]
			mc := in.Kind == engine.KGather || in.Kind == engine.KScatter
			if mc && mcUsed {
				continue
			}
			u := laneUse(in)
			if u > laneBudget && len(step) > 0 {
				continue
			}
			step = append(step, i)
			laneBudget -= u
			if mc {
				mcUsed = true
			}
			if cycles[i] > stepCost {
				stepCost = cycles[i]
			}
		}
		for _, i := range step {
			done[i] = true
			scheduled++
			for _, s := range succs[i] {
				pending[s]--
			}
		}
		sched.Steps = append(sched.Steps, step)
		sched.StepCycles = append(sched.StepCycles, stepCost)
		sched.MakespanCycles += stepCost
	}
	return sched
}

// instrCost mirrors the engine's static cycle model (kept here to avoid
// exporting engine internals; validated against engine.Estimate by the
// scheduler tests).
func instrCost(in engine.Instr, cfg engine.Config) int64 {
	lanes := cfg.Lanes()
	ceil := func(a, b int) int64 { return int64((a + b - 1) / b) }
	switch in.Kind {
	case engine.KEW:
		return ceil(in.Dst.Len, lanes) + int64(in.Op.Latency()) - 1
	case engine.KReduce:
		return ceil(in.Dst.Len*in.GroupSize, lanes) + 3 + int64(cfg.ACsPerThread-1)
	case engine.KGather, engine.KScatter:
		return ceil(in.RowLen, lanes) + 1
	default:
		return 1
	}
}

// ScheduleProgram schedules the per-tuple list of a program (the hot
// loop) and returns the schedule plus a rendered operation map.
func ScheduleProgram(p *engine.Program, cfg engine.Config) Schedule {
	return ScheduleList(p.PerTuple, p.ModelSlot, cfg)
}

// OperationMap renders the schedule as the per-step placement table the
// catalog stores.
func OperationMap(list []engine.Instr, s Schedule) string {
	var b strings.Builder
	for step, idxs := range s.Steps {
		fmt.Fprintf(&b, "step %3d (%4d cyc):", step, s.StepCycles[step])
		for _, i := range idxs {
			fmt.Fprintf(&b, "  [%d] %s;", i, list[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "serial %d cyc, scheduled %d cyc, critical path %d cyc, ILP %.2f\n",
		s.SerialCycles, s.MakespanCycles, s.CriticalPathCycles, s.ILP())
	return b.String()
}
