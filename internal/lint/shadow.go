package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is an in-tree stand-in for the x/tools `shadow` vet analyzer
// (unavailable in hermetic builds), tuned for signal: it reports a
// short variable declaration that shadows a variable of the same name
// and identical type from an enclosing scope in the same function, when
// (a) the declaration is a plain statement of a block — the idiomatic
// `if err := f(); err != nil` init clause and `go func(i int)` capture
// parameter are exempt — and (b) the shadowed variable is still used
// after the inner scope ends. That combination is the classic
// silently-dropped-error shape:
//
//	err := step1()
//	{
//	        err := step2() // shadows; never joins the outer err
//	        _ = err
//	}
//	if err != nil { … }    // still the step1 error
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "block-level short declarations must not shadow a same-typed outer variable used afterwards",
	Run:  runShadow,
}

// objUse is one occurrence of a variable: a read, or a write (plain
// assignment / same-scope := reuse), which kills the old value.
type objUse struct {
	pos   token.Pos
	write bool
}

func runShadow(pass *Pass) error {
	// Classify assignment targets as writes: reading a stale outer
	// variable is the bug; overwriting it first is not.
	writes := map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						writes[id] = true
					}
				}
			case *ast.RangeStmt:
				if id, ok := n.Key.(*ast.Ident); ok {
					writes[id] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					writes[id] = true
				}
			}
			return true
		})
	}
	uses := map[types.Object][]objUse{}
	for id, obj := range pass.TypesInfo.Uses {
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			uses[obj] = append(uses[obj], objUse{pos: id.Pos(), write: writes[id]})
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for _, st := range list {
				as, ok := st.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE {
					continue
				}
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					checkShadowDecl(pass, id, uses)
				}
			}
			return true
		})
	}
	return nil
}

func checkShadowDecl(pass *Pass, id *ast.Ident, uses map[types.Object][]objUse) {
	v, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || v.Parent() == nil {
		return
	}
	inner := v.Parent()
	if inner.Parent() == nil || inner.Parent() == types.Universe {
		return
	}
	_, outerObj := inner.Parent().LookupParent(v.Name(), id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer.IsField() || outer == v {
		return
	}
	// Intra-function only: package-level redeclaration is pervasive and
	// harmless; so is shadowing across function-literal boundaries when
	// the outer is package-scoped.
	if outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
		return
	}
	if !types.Identical(outer.Type(), v.Type()) {
		return
	}
	// The bug needs the outer variable to be READ after the inner scope
	// closes; if its first later occurrence is a write, the stale value
	// can never be observed and the shadow is harmless.
	var first *objUse
	for i := range uses[outer] {
		u := &uses[outer][i]
		if u.pos > inner.End() && (first == nil || u.pos < first.pos) {
			first = u
		}
	}
	if first != nil && !first.write {
		pass.Reportf(id.Pos(),
			"declaration of %q shadows a %s from an enclosing scope that is read after this block",
			v.Name(), v.Type())
	}
}
