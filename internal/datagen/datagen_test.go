package datagen

import (
	"math"
	"testing"

	"dana/internal/algos"
	"dana/internal/hdfg"
	"dana/internal/ml"
	"dana/internal/storage"
)

func TestTable3Inventory(t *testing.T) {
	if len(Workloads) != 14 {
		t.Fatalf("got %d workloads, Table 3 has 14", len(Workloads))
	}
	if len(Real()) != 6 || len(SyntheticNominal()) != 4 || len(SyntheticExtensive()) != 4 {
		t.Errorf("classes: real=%d S/N=%d S/E=%d", len(Real()), len(SyntheticNominal()), len(SyntheticExtensive()))
	}
	for _, w := range Workloads {
		if w.Tuples <= 0 || w.Epochs <= 0 || w.LR <= 0 {
			t.Errorf("%s: bad parameters %+v", w.Name, w)
		}
		if w.Kind == algos.KindLRMF && len(w.Topology) != 3 {
			t.Errorf("%s: LRMF topology %v", w.Name, w.Topology)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Remote Sensing LR")
	if err != nil || w.Topology[0] != 54 {
		t.Errorf("ByName: %v %v", w, err)
	}
	if _, err := ByName("remote_sensing_lr"); err != nil {
		t.Errorf("table-name lookup failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPageAccountingRoughlyMatchesPaper(t *testing.T) {
	// Our layout matches PostgreSQL closely enough that computed page
	// counts land within 2x of the paper's Table 3 column for the dense
	// GLM workloads (theirs include fill-factor and visibility-map
	// overheads).
	for _, w := range Workloads {
		if w.Kind == algos.KindLRMF {
			continue // tuple counts reconstructed FROM pages there
		}
		got := w.PagesAt(storage.PageSize32K)
		ratio := float64(got) / float64(w.PaperPages32K)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: computed %d pages vs paper %d (ratio %.2f)", w.Name, got, w.PaperPages32K, ratio)
		}
	}
}

func TestGenerateScaledDataset(t *testing.T) {
	w, _ := ByName("WLAN")
	d, err := Generate(w, 0.05, storage.PageSize32K, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tuples < 64 || d.Tuples > w.Tuples {
		t.Errorf("tuples = %d", d.Tuples)
	}
	if d.Rel.NumTuples() != d.Tuples {
		t.Errorf("relation has %d tuples, dataset says %d", d.Rel.NumTuples(), d.Tuples)
	}
	if err := d.Rel.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels must be in {0,1} for logistic.
	err = d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		l := vals[len(vals)-1]
		if l != 0 && l != 1 {
			t.Fatalf("label %v", l)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLRMFScalesTopology(t *testing.T) {
	w, _ := ByName("Netflix")
	d, err := Generate(w, 0.001, storage.PageSize32K, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology[0] >= w.Topology[0] || d.Topology[1] >= w.Topology[1] {
		t.Errorf("topology not scaled: %v", d.Topology)
	}
	users := d.Topology[0]
	err = d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		if int(vals[0]) < 0 || int(vals[0]) >= users {
			t.Fatalf("user index %v out of [0,%d)", vals[0], users)
		}
		if int(vals[1]) < users || int(vals[1]) >= users+d.Topology[1] {
			t.Fatalf("item index %v out of range", vals[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedDataIsLearnable(t *testing.T) {
	// A scaled Patient (linear) dataset must train to low loss with the
	// reference implementation — the ground-truth construction works.
	w, _ := ByName("Patient")
	d, err := Generate(w, 0.02, storage.PageSize32K, 3)
	if err != nil {
		t.Fatal(err)
	}
	var tuples [][]float64
	if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		tuples = append(tuples, append([]float64(nil), vals...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a := d.MLAlgorithm()
	model := ml.InitModel(a, 0)
	before := ml.MeanLoss(a, model, tuples)
	if err := ml.TrainSGD(a, model, tuples, 30); err != nil {
		t.Fatal(err)
	}
	after := ml.MeanLoss(a, model, tuples)
	if after > before/10 {
		t.Errorf("loss %v -> %v", before, after)
	}
}

func TestDSLAlgoTranslates(t *testing.T) {
	for _, w := range Workloads {
		d, err := Generate(w, 0.0005, storage.PageSize32K, 4)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		coef := 8
		if w.Kind == algos.KindLRMF {
			coef = 1
		}
		a, err := d.DSLAlgo(coef)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		g, err := hdfg.Translate(a)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if g.TupleWidth() != d.Rel.Schema.NumCols() {
			t.Errorf("%s: graph tuple width %d vs schema %d", w.Name, g.TupleWidth(), d.Rel.Schema.NumCols())
		}
	}
}

func TestGenerateBadScale(t *testing.T) {
	w, _ := ByName("WLAN")
	if _, err := Generate(w, 0, storage.PageSize32K, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Generate(w, 1.5, storage.PageSize32K, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, _ := ByName("Blog Feedback")
	d1, err := Generate(w, 0.01, storage.PageSize32K, 9)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(w, 0.01, storage.PageSize32K, 9)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := d1.Rel.Get(storage.TID{Page: 0, Item: 3})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d2.Rel.Get(storage.TID{Page: 0, Item: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("tuples differ at col %d", i)
		}
	}
}

func TestSizeMBAt(t *testing.T) {
	w, _ := ByName("Remote Sensing LR")
	mb := w.SizeMBAt(storage.PageSize32K)
	if math.Abs(mb-float64(w.PaperSizeMB))/float64(w.PaperSizeMB) > 1.0 {
		t.Errorf("size %v MB vs paper %d MB", mb, w.PaperSizeMB)
	}
}
