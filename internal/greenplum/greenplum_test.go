package greenplum

import (
	"testing"

	"dana/internal/bufpool"
	"dana/internal/datagen"
	"dana/internal/madlib"
	"dana/internal/ml"
	"dana/internal/storage"
)

func setup(t *testing.T, workload string, scale float64) (*bufpool.Pool, *datagen.Dataset) {
	t.Helper()
	w, err := datagen.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datagen.Generate(w, scale, storage.PageSize8K, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(512, storage.PageSize8K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(d.Rel); err != nil {
		t.Fatal(err)
	}
	return pool, d
}

func TestSegmentedTrainingConverges(t *testing.T) {
	pool, d := setup(t, "Patient", 0.02)
	c, err := New(pool, d.Rel, d.MLAlgorithm(), 8)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 8 || st.Epochs != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.Tuples != int64(10*d.Tuples) {
		t.Errorf("tuples = %d", st.Tuples)
	}
	// Model averaging should still learn: compare against zero model.
	tr, err := madlib.New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	_, single, err := tr.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	// Model averaging converges more slowly than pure IGD, but must
	// still land well below the untrained baseline loss (~0.5 for this
	// workload) while staying within two orders of magnitude of IGD.
	if st.FinalLoss > 0.1 {
		t.Errorf("segmented training failed to learn: loss %v", st.FinalLoss)
	}
	if st.FinalLoss > 100*single.FinalLoss+1e-6 {
		t.Errorf("segmented loss %v vs IGD loss %v", st.FinalLoss, single.FinalLoss)
	}
}

func TestSingleSegmentMatchesMADlib(t *testing.T) {
	pool, d := setup(t, "Blog Feedback", 0.02)
	c, err := New(pool, d.Rel, d.MLAlgorithm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	gm, _, err := c.Train(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := madlib.New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	mm, _, err := tr.Train(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gm {
		if gm[i] != mm[i] {
			t.Fatalf("model[%d]: %v vs %v", i, gm[i], mm[i])
		}
	}
}

func TestSegmentsValidated(t *testing.T) {
	pool, d := setup(t, "WLAN", 0.01)
	if _, err := New(pool, d.Rel, d.MLAlgorithm(), 0); err == nil {
		t.Error("0 segments accepted")
	}
	if _, err := New(pool, d.Rel, ml.Linear{NFeatures: 1, LR: 0.1}, 4); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestMoreSegmentsThanTuples(t *testing.T) {
	pool, d := setup(t, "WLAN", 0.001) // tiny: 64 tuples min
	c, err := New(pool, d.Rel, d.MLAlgorithm(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Train(1); err != nil {
		t.Fatal(err)
	}
}
