// Quickstart: the paper's linear regression example (§4.3) end to end.
//
// A training table is created and filled through SQL, the UDF is
// written in DAnA's Python-embedded DSL exactly as it appears in the
// paper, and `SELECT * FROM dana.linearR('points')` trains it on the
// simulated FPGA, with Striders unpacking the raw heap pages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dana"
)

const udfSource = `
#Data Declarations
mo = dana.model([4])
in = dana.input([4])
out = dana.output()
lr = dana.meta(0.05) #learning rate
linearR = dana.algo(mo, in, out)
#Gradient or Derivative of the Loss Function
s = sigma(mo * in, 1)
er = s - out
grad = er * in
#Gradient Descent Optimizer
up = lr * grad
mo_up = mo - up
linearR.setModel(mo_up)
#Merge function: 8 parallel update-rule threads, summed gradients
merge_coef = dana.meta(8)
grad = linearR.merge(grad, merge_coef, "+")
linearR.setEpochs(60)
`

func main() {
	eng, err := dana.Open(dana.Config{PageSize: 8 << 10, PoolBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Create and populate a training table with plain SQL. The
	// hidden relationship is y = 2a - b + 0.5c + 3d.
	if _, err := eng.SQL("CREATE TABLE points (a float4, b float4, c float4, d float4, y float4)"); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	sb.WriteString("INSERT INTO points VALUES ")
	for i := 0; i < 2000; i++ {
		a, b, c, d := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		y := 2*a - b + 0.5*c + 3*d
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%g, %g, %g, %g, %g)", a, b, c, d, y)
	}
	if _, err := eng.SQL(sb.String()); err != nil {
		log.Fatal(err)
	}
	count, err := eng.SQL("SELECT COUNT(*) FROM points")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d training tuples\n", int(count.Rows[0][0]))

	// 2. Register the UDF, written in the paper's DSL.
	if _, err := eng.RegisterUDFSource(udfSource, 8); err != nil {
		log.Fatal(err)
	}

	// 3. Train on the accelerator through SQL.
	res, err := eng.SQL("SELECT * FROM dana.linearR('points')")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Msg)
	fmt.Println("learned model (want ~ [2 -1 0.5 3]):")
	for _, row := range res.Rows {
		fmt.Printf("  w[%d] = %+.4f\n", int(row[0]), row[1])
	}

	// 4. Inspect what the hardware generator built.
	tr, err := eng.Train("linearR", "points")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesign: %s\n", tr.Design)
	fmt.Printf("engine cycles: %d, strider cycles: %d, simulated %.4fs\n",
		tr.Engine.Cycles, tr.Access.Cycles, tr.SimulatedSeconds)
}
