package dana

import (
	"dana/internal/dsl"
	"dana/internal/ml"
)

// The DSL surface (paper §4): a Go builder plus a parser for the
// Python snippet syntax. Algo and Expr are the UDF under construction
// and its expression nodes.

// Algo is a learning-algorithm UDF: data declarations, update rule,
// merge function, and convergence criterion.
type Algo = dsl.Algo

// Expr is one node of the UDF's expression DAG.
type Expr = dsl.Expr

// NewAlgo starts a UDF definition with the builder API.
func NewAlgo(name string) *Algo { return dsl.NewAlgo(name) }

// ParseUDF parses the paper's Python-embedded DSL, e.g.:
//
//	mo  = dana.model([10])
//	in  = dana.input([10])
//	out = dana.output()
//	lr  = dana.meta(0.3)
//	linearR = dana.algo(mo, in, out)
//	s    = sigma(mo * in, 1)
//	er   = s - out
//	grad = er * in
//	mo_up = mo - lr * grad
//	linearR.setModel(mo_up)
//	linearR.setEpochs(100)
func ParseUDF(src string) (*Algo, error) { return dsl.Parse(src) }

// RenderUDF prints an Algo back as DSL source (the inverse of ParseUDF);
// the output re-parses to an equivalent UDF.
func RenderUDF(a *Algo) string { return dsl.Render(a) }

// Mathematical operations (paper Table 1).
var (
	// Add returns a + b (elementwise, with broadcasting).
	Add = dsl.Add
	// Sub returns a - b.
	Sub = dsl.Sub
	// Mul returns a * b.
	Mul = dsl.Mul
	// Div returns a / b.
	Div = dsl.Div
	// Lt returns 1.0 where a < b, else 0.0.
	Lt = dsl.Lt
	// Gt returns 1.0 where a > b, else 0.0.
	Gt = dsl.Gt
	// Sigmoid returns 1/(1+exp(-a)).
	Sigmoid = dsl.Sigmoid
	// Gaussian returns exp(-a*a).
	Gaussian = dsl.Gaussian
	// Sqrt returns the elementwise square root.
	Sqrt = dsl.Sqrt
	// Sigma sums along a 1-based axis.
	Sigma = dsl.Sigma
	// Pi multiplies along a 1-based axis.
	Pi = dsl.Pi
	// Norm is the Euclidean norm along a 1-based axis.
	Norm = dsl.Norm
	// Gather selects a row of a 2-D model by a scalar index.
	Gather = dsl.Gather
)

// Prebuilt reference algorithms (float64 IGD) for the baselines.
type (
	// MLAlgorithm is the reference-implementation interface.
	MLAlgorithm = ml.Algorithm
	// LinearRegression is least-squares linear regression.
	LinearRegression = ml.Linear
	// LogisticRegression is binary logistic regression.
	LogisticRegression = ml.Logistic
	// SVMClassifier is a hinge-loss linear SVM.
	SVMClassifier = ml.SVM
	// MatrixFactorization is low-rank matrix factorization.
	MatrixFactorization = ml.LRMF
)
