package verify

import (
	"bytes"
	"fmt"

	"dana/internal/storage"
	"dana/internal/strider"
)

// Oracle B: Strider equivalence. The record stream emitted by the
// compiled walker program running in the Strider VM must be
// byte-identical to (1) the direct storage decode of the live tuples in
// page order and (2) the generator's own encoding of the ground-truth
// rows. Comparing against both means a fault anywhere — walker program,
// VM, tuple codec, or page layout — breaks at least one leg.

// CheckStriderOracle compiles the PostgreSQL walker for the scenario's
// page size and checks it.
func (sc *StriderScenario) CheckStriderOracle() error {
	prog, cfg, err := strider.Generate(strider.PostgresLayout(sc.PageSize))
	if err != nil {
		return fmt.Errorf("oracle B: %w", err)
	}
	return sc.CheckProgram(prog, cfg)
}

// CheckProgram runs the given walker over every page and performs the
// three-way comparison. Split out so the mutation meta-test can inject
// a corrupted program.
func (sc *StriderScenario) CheckProgram(prog []strider.Instr, cfg strider.Config) error {
	vm := strider.NewVM(prog, cfg)
	var vmOut, direct, truth []byte

	for p, page := range sc.Pages {
		if err := vm.Run(page); err != nil {
			return fmt.Errorf("oracle B: page %d: %w", p, err)
		}
		vmOut = append(vmOut, vm.Out()...)
		for i := 0; i < page.NumItems(); i++ {
			raw, err := page.Item(i)
			if err != nil {
				return fmt.Errorf("oracle B: page %d item %d: %w", p, i, err)
			}
			data, err := storage.TupleData(raw)
			if err != nil {
				return fmt.Errorf("oracle B: page %d item %d: %w", p, i, err)
			}
			direct = append(direct, data...)
		}
	}

	buf := make([]byte, sc.Schema.DataWidth())
	for _, row := range sc.Rows {
		if err := sc.Schema.EncodeValues(buf, row); err != nil {
			return fmt.Errorf("oracle B: %w", err)
		}
		truth = append(truth, buf...)
	}

	if want := strider.ExpectedOutputBytes(sc.Schema, len(sc.Rows)); len(vmOut) != want {
		return fmt.Errorf("oracle B: VM emitted %d bytes, layout predicts %d", len(vmOut), want)
	}
	if !bytes.Equal(vmOut, direct) {
		return fmt.Errorf("oracle B: VM stream (%d bytes) != direct decode (%d bytes) at offset %d",
			len(vmOut), len(direct), firstDiff(vmOut, direct))
	}
	if !bytes.Equal(vmOut, truth) {
		return fmt.Errorf("oracle B: VM stream (%d bytes) != ground truth (%d bytes) at offset %d",
			len(vmOut), len(truth), firstDiff(vmOut, truth))
	}
	return nil
}

// CheckInnoStriderOracle compiles and checks the InnoDB walker.
func (sc *InnoStriderScenario) CheckInnoStriderOracle() error {
	prog, cfg, err := strider.GenerateInnoDB(strider.InnoDBLayout(sc.PageSize, sc.Schema))
	if err != nil {
		return fmt.Errorf("oracle B (inno): %w", err)
	}
	return sc.CheckInnoProgram(prog, cfg)
}

// CheckInnoProgram is the injectable-program variant for InnoDB pages.
func (sc *InnoStriderScenario) CheckInnoProgram(prog []strider.Instr, cfg strider.Config) error {
	vm := strider.NewVM(prog, cfg)
	var vmOut, direct, truth []byte

	for p := 0; p < sc.Rel.NumPages(); p++ {
		page, err := sc.Rel.Page(p)
		if err != nil {
			return fmt.Errorf("oracle B (inno): %w", err)
		}
		if err := vm.Run(page); err != nil {
			return fmt.Errorf("oracle B (inno): page %d: %w", p, err)
		}
		vmOut = append(vmOut, vm.Out()...)
		recs, err := page.Records(sc.Schema.DataWidth())
		if err != nil {
			return fmt.Errorf("oracle B (inno): page %d: %w", p, err)
		}
		for _, rec := range recs {
			direct = append(direct, rec...)
		}
	}

	buf := make([]byte, sc.Schema.DataWidth())
	for _, row := range sc.Rows {
		if err := sc.Schema.EncodeValues(buf, row); err != nil {
			return fmt.Errorf("oracle B (inno): %w", err)
		}
		truth = append(truth, buf...)
	}

	if !bytes.Equal(vmOut, direct) {
		return fmt.Errorf("oracle B (inno): VM stream (%d bytes) != direct decode (%d bytes) at offset %d",
			len(vmOut), len(direct), firstDiff(vmOut, direct))
	}
	if !bytes.Equal(vmOut, truth) {
		return fmt.Errorf("oracle B (inno): VM stream (%d bytes) != ground truth (%d bytes) at offset %d",
			len(vmOut), len(truth), firstDiff(vmOut, truth))
	}
	return nil
}

// firstDiff returns the first differing byte offset (or the shorter
// length when one stream is a prefix of the other).
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
