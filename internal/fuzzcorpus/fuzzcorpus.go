// Package fuzzcorpus writes seed corpus files in the Go fuzzing
// encoding (testdata/fuzz/<FuzzTarget>/). Each package's fuzz tests
// regenerate their committed corpus with an env-gated writer test
// (DANA_WRITE_FUZZ_CORPUS=1), keeping the checked-in files in lockstep
// with the in-code f.Add seeds.
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteEnv is the environment variable gating corpus regeneration.
const WriteEnv = "DANA_WRITE_FUZZ_CORPUS"

// ShouldWrite reports whether corpus regeneration is requested.
func ShouldWrite() bool { return os.Getenv(WriteEnv) != "" }

// WriteBytes writes []byte-typed seeds for the named fuzz target under
// dir (conventionally "testdata/fuzz/<target>"). Existing seed files
// named seed-* are replaced; fuzzer-discovered files are left alone.
func WriteBytes(dir string, seeds [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// WriteStrings writes string-typed seeds in the same layout.
func WriteStrings(dir string, seeds []string) error {
	bs := make([][]byte, len(seeds))
	for i, s := range seeds {
		bs[i] = []byte(s)
	}
	// The fuzz encoding differs only in the Go literal type.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	for i, s := range bs {
		body := fmt.Sprintf("go test fuzz v1\nstring(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
