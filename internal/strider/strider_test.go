package strider

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dana/internal/storage"
)

func TestInstrEncodeDecodeProperty(t *testing.T) {
	f := func(op, a, b, c uint8) bool {
		in := Instr{Op: Opcode(op % 11), A: Operand(a & 0x3F), B: Operand(b & 0x3F), C: Operand(c & 0x3F)}
		w := in.Encode()
		if w>>InstrBits != 0 {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	if _, err := Decode(1 << 22); err == nil {
		t.Error("over-wide word accepted")
	}
	bad := Instr{Op: 15}.Encode()
	if _, err := Decode(bad); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestOperandConstructors(t *testing.T) {
	if _, err := Imm(32); err == nil {
		t.Error("Imm(32) should fail")
	}
	if _, err := TReg(16); err == nil {
		t.Error("TReg(16) should fail")
	}
	if _, err := CReg(-1); err == nil {
		t.Error("CReg(-1) should fail")
	}
	o, _ := CReg(3)
	if o.String() != "%cr3" || !o.IsReg() || o.IsImm() {
		t.Errorf("CReg(3) = %v", o)
	}
	i, _ := Imm(7)
	if i.String() != "7" || !i.IsImm() {
		t.Errorf("Imm(7) = %v", i)
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
\\ header
readB 12, 2, %cr0
readB 14, 2, %cr1
ad 24, 0, %t0
bentr
readB %t0, 4, %t1
extrBi %t1, 0, %t2
extrBi %t1, 1, %t3
sub %t3, 24, %t3
cln %t2, 24, %t3
ins %t3, 4
ad %t0, 4, %t0
bexit 1, %t0, %cr0
writeB %t1, 4, %t2
mul %t1, 2, %t1
extrB %t1, 1, %t5
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 15 {
		t.Fatalf("assembled %d instructions", len(prog))
	}
	// Round trip through text.
	prog2, err := Assemble(Disassemble(prog))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Errorf("instr %d: %v != %v", i, prog[i], prog2[i])
		}
	}
	// Round trip through binary.
	prog3, err := DecodeProgram(EncodeProgram(prog))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != prog3[i] {
			t.Errorf("binary instr %d: %v != %v", i, prog[i], prog3[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate 1, 2, 3",
		"readB 1, 2",       // arity
		"readB 99, 2, %t0", // immediate range
		"readB 1, 2, %t99", // register range
		"readB 1, 2, %zz0", // bad operand
		"bentr 1",          // arity
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestVMArithmeticAndExtract(t *testing.T) {
	src := `
ad 5, 7, %t0
mul %t0, 3, %t1
sub %t1, 6, %t2
extrB %t1, 0, %t3
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, Config{})
	if err := vm.Run(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if vm.t[0] != 12 || vm.t[1] != 36 || vm.t[2] != 30 || vm.t[3] != 36 {
		t.Errorf("regs = %v", vm.t[:4])
	}
}

func TestVMReadWritePage(t *testing.T) {
	src := `
readB 0, 4, %t0
ad %t0, 1, %t0
writeB %t0, 4, 8
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 16)
	page[0] = 0xFF
	page[1] = 0x01
	vm := NewVM(prog, Config{})
	if err := vm.Run(page); err != nil {
		t.Fatal(err)
	}
	if got := uint32(page[8]) | uint32(page[9])<<8; got != 0x0200 {
		t.Errorf("written value = %#x", got)
	}
	if vm.BytesWritten() != 4 {
		t.Errorf("BytesWritten = %d", vm.BytesWritten())
	}
}

func TestVMInsertEmits(t *testing.T) {
	prog, err := Assemble("ins 5, 2\nins %cr0, 4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.CR[0] = 0xDDCCBBAA
	vm := NewVM(prog, cfg)
	if err := vm.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []byte{5, 0, 0xAA, 0xBB, 0xCC, 0xDD}
	if !bytes.Equal(vm.Out(), want) {
		t.Errorf("out = %x, want %x", vm.Out(), want)
	}
}

func TestVMFaults(t *testing.T) {
	cases := []struct{ name, src string }{
		{"read oob", "readB 30, 8, %t0"},
		{"read too wide", "ad 9, 0, %t1\nreadB 0, %t1, %t0"},
		{"write oob", "writeB %t0, 4, 30"},
		{"imm dest", "ad 1, 2, 3"},
		{"bexit no loop", "bexit 1, %t0, %t1"},
		{"cln oob", "ad 31, 31, %t0\ncln %t0, 0, %t0"},
		{"extrB off", "extrB %t0, 9, %t1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Assemble(c.src)
			if err != nil {
				t.Fatal(err)
			}
			vm := NewVM(prog, Config{})
			if err := vm.Run(make([]byte, 32)); err == nil {
				t.Errorf("Run(%q) should fault", c.src)
			}
		})
	}
}

func TestVMRunawayLoopBounded(t *testing.T) {
	// A loop whose exit condition never holds must hit the step budget.
	prog, err := Assemble("bentr\nad %t0, 0, %t0\nbexit 2, %t0, %t0") // t0 > t0 never
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, Config{})
	vm.MaxSteps = 10000
	err = vm.Run(make([]byte, 8))
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v, want runaway", err)
	}
}

func TestVMLoopCountdown(t *testing.T) {
	// Sum 1..5 via a loop: t0 counter, t1 accumulator.
	src := `
ad 5, 0, %t0
bentr
ad %t1, %t0, %t1
sub %t0, 1, %t0
bexit 0, %t0, 0
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, Config{})
	if err := vm.Run(nil); err != nil {
		t.Fatal(err)
	}
	if vm.t[1] != 15 {
		t.Errorf("sum = %d, want 15", vm.t[1])
	}
}

func TestFieldDescExtract(t *testing.T) {
	fd := FieldDesc{Start: 17, Width: 15}
	v := uint64(1234)<<17 | 0x1FFFF
	if got := fd.Extract(v); got != 1234 {
		t.Errorf("Extract = %d", got)
	}
	if (FieldDesc{Width: 0}).Extract(5) != 0 {
		t.Error("zero-width field should extract 0")
	}
}

// buildPage creates a heap page with n tuples of the schema, returning
// the page and the concatenated expected payload bytes.
func buildPage(t *testing.T, schema *storage.Schema, n int, seed int64) (storage.Page, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	page := storage.NewPage(storage.PageSize8K, 0)
	var want []byte
	for i := 0; i < n; i++ {
		vals := make([]float64, schema.NumCols())
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		raw, err := storage.EncodeTuple(schema, vals, 1, storage.TID{Item: uint16(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := page.AddItem(raw); err != nil {
			t.Fatal(err)
		}
		want = append(want, raw[storage.TupleHeaderSize:]...)
	}
	return page, want
}

func TestGeneratedProgramExtractsTuples(t *testing.T) {
	schema := storage.NumericSchema(9)
	page, want := buildPage(t, schema, 25, 11)
	prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	if err := vm.Run(page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vm.Out(), want) {
		t.Fatalf("extracted %d bytes != expected %d bytes", len(vm.Out()), len(want))
	}
	if got := ExpectedOutputBytes(schema, 25); got != len(want) {
		t.Errorf("ExpectedOutputBytes = %d, want %d", got, len(want))
	}
	if vm.Cycles() <= 0 {
		t.Error("no cycles counted")
	}
}

func TestGeneratedProgramFullPageProperty(t *testing.T) {
	// For random schemas and page fill levels, strider output must equal
	// the schema-packed payloads exactly.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nf := 1 + rng.Intn(60)
		schema := storage.NumericSchema(nf)
		maxTup := (storage.PageSize8K - storage.PageHeaderSize) /
			(storage.TupleHeaderSize + schema.DataWidth() + storage.ItemIDSize)
		if maxTup < 1 {
			continue
		}
		n := 1 + rng.Intn(maxTup)
		page, want := buildPage(t, schema, n, int64(trial))
		prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
		if err != nil {
			t.Fatal(err)
		}
		vm := NewVM(prog, cfg)
		if err := vm.Run(page); err != nil {
			t.Fatalf("trial %d (nf=%d n=%d): %v", trial, nf, n, err)
		}
		if !bytes.Equal(vm.Out(), want) {
			t.Fatalf("trial %d (nf=%d n=%d): output mismatch", trial, nf, n)
		}
	}
}

func TestGeneratedProgramMatchesPaperShape(t *testing.T) {
	// The paper's example program is ~14 instructions; ours should be in
	// the same ballpark, demonstrating the compact instruction footprint
	// branches give (§5.1.2).
	prog, _, err := Generate(PostgresLayout(storage.PageSize32K))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) > 16 {
		t.Errorf("generated %d instructions, want <= 16", len(prog))
	}
	// It must contain exactly one loop.
	entries, exits := 0, 0
	for _, in := range prog {
		switch in.Op {
		case OpBentr:
			entries++
		case OpBexit:
			exits++
		}
	}
	if entries != 1 || exits != 1 {
		t.Errorf("loop structure: %d bentr, %d bexit", entries, exits)
	}
}

func TestVMReuseAcrossPages(t *testing.T) {
	schema := storage.NumericSchema(3)
	prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	for i := 0; i < 3; i++ {
		page, want := buildPage(t, schema, 10+i, int64(100+i))
		if err := vm.Run(page); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vm.Out(), want) {
			t.Fatalf("page %d: mismatch", i)
		}
	}
}

// TestVMEncodedRoundTripExecution executes a program after a full
// binary encode/decode round trip and checks identical behaviour.
func TestVMEncodedRoundTripExecution(t *testing.T) {
	schema := storage.NumericSchema(7)
	page, want := buildPage(t, schema, 20, 77)
	prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeProgram(EncodeProgram(prog))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(decoded, cfg)
	if err := vm.Run(page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vm.Out(), want) {
		t.Fatal("decoded program produced different output")
	}
}

// TestGeneratedProgramDeadTuplesNeedVacuum documents the generated
// walker's contract: it assumes all line pointers live (training heaps
// are append-only snapshots). Deleted tuples corrupt extraction until
// VACUUM restores the invariant.
func TestGeneratedProgramDeadTuplesNeedVacuum(t *testing.T) {
	schema := storage.NumericSchema(3)
	rel := storage.NewRelation("dead", schema, storage.PageSize8K)
	var want int
	for i := 0; i < 50; i++ {
		if _, err := rel.Insert([]float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rel.Delete(storage.TID{Page: 0, Item: 10}); err != nil {
		t.Fatal(err)
	}
	want = rel.NumTuples()
	prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, cfg)
	pg, _ := rel.Page(0)
	if err := vm.Run(pg); err == nil {
		// The walker either faults or emits the wrong tuple count on a
		// heap with dead line pointers.
		if len(vm.Out()) == want*schema.DataWidth() {
			t.Fatal("dead tuple went unnoticed")
		}
	}
	// VACUUM restores the contract.
	if err := rel.Vacuum(); err != nil {
		t.Fatal(err)
	}
	pg, _ = rel.Page(0)
	if err := vm.Run(pg); err != nil {
		t.Fatal(err)
	}
	if len(vm.Out()) != want*schema.DataWidth() {
		t.Fatalf("post-vacuum extraction: %d bytes, want %d", len(vm.Out()), want*schema.DataWidth())
	}
}
