package server

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"dana/internal/fault"
)

// isTypedFault accepts the full set of injected-fault sentinels: the
// accelerator class the runtime degrades from, plus the storage class
// (torn pages, transient I/O) that no failover can mask.
func isTypedFault(err error) bool {
	return fault.IsAcceleratorFault(err) ||
		errors.Is(err, fault.ErrTornPage) ||
		errors.Is(err, fault.ErrIOTransient)
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// compareHealthy asserts the healthy tenants' functional outcomes are
// bit-identical between a faulty run and its fault-free mirror.
func compareHealthy(t *testing.T, specs []JobSpec, faulty string, chaos, clean *Report) {
	t.Helper()
	for i := range specs {
		if specs[i].Tenant == faulty {
			continue
		}
		a, b := chaos.Results[i], clean.Results[i]
		if a.Err != nil {
			t.Fatalf("healthy tenant %s job %d failed in the chaos run: %v", specs[i].Tenant, i, a.Err)
		}
		if a.Degraded {
			t.Fatalf("healthy tenant %s job %d degraded in the chaos run", specs[i].Tenant, i)
		}
		if a.EngineCycles != b.EngineCycles || a.StriderCycles != b.StriderCycles {
			t.Fatalf("healthy tenant %s job %d: chaos cycles (%d,%d) vs clean (%d,%d) — isolation leak",
				specs[i].Tenant, i, a.EngineCycles, a.StriderCycles, b.EngineCycles, b.StriderCycles)
		}
		if len(a.Model) != len(b.Model) {
			t.Fatalf("healthy tenant %s job %d: model sizes differ", specs[i].Tenant, i)
		}
		for k := range a.Model {
			if a.Model[k] != b.Model[k] {
				t.Fatalf("healthy tenant %s job %d: model bit-differs at %d", specs[i].Tenant, i, k)
			}
		}
	}
}

func runTenantChaos(t *testing.T, specs []JobSpec, tenants int, seed int64, faultCfg fault.Config) (*Report, *Report) {
	t.Helper()
	faulty := TenantName(0)
	mk := func(withFaults bool) *Report {
		tcs := DefaultTenants(tenants)
		if withFaults {
			for i := range tcs {
				if tcs[i].Name == faulty {
					fc := faultCfg
					tcs[i].Faults = &fc
				}
			}
		}
		srv, err := New(Config{Tenants: tcs, Instances: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Run(specs)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.IdentityError(); err != nil {
			t.Fatalf("counter identity under chaos: %v", err)
		}
		return rep
	}
	return mk(true), mk(false)
}

// TestTenantIsolationTrapStorm pins the headline isolation claim: a
// tenant under a persistent Strider trap storm degrades (CPU failover),
// while every other tenant's jobs stay bit-identical to a run with no
// faults anywhere.
func TestTenantIsolationTrapStorm(t *testing.T) {
	load := smallLoad(29)
	specs := GenLoad(load)
	var rates [fault.NumPoints]float64
	rates[fault.StriderTrap] = 1.0
	chaos, clean := runTenantChaos(t, specs, load.withDefaults().Tenants, load.Seed, fault.Config{
		Seed:              29,
		Rates:             rates,
		TransientAttempts: -1, // persistent: every accelerated attempt traps
	})

	faulty := TenantName(0)
	sawImpact := false
	for i := range specs {
		if specs[i].Tenant != faulty {
			continue
		}
		r := chaos.Results[i]
		if r.Err != nil && !isTypedFault(r.Err) {
			t.Fatalf("faulty tenant job %d failed with an untyped error: %v", i, r.Err)
		}
		if r.Degraded || r.Err != nil {
			sawImpact = true
		}
	}
	if !sawImpact {
		t.Fatal("trap storm at rate 1.0 left the faulty tenant untouched")
	}
	compareHealthy(t, specs, faulty, chaos, clean)
}

// TestTenantChaosSuite is the randomized cron matrix: each scenario
// draws a fault point, rate, and transience for one tenant and asserts
// isolation plus the counter identity. Override the scenario count with
// DANA_TENANT_N and the seed base with DANA_TENANT_SEED.
func TestTenantChaosSuite(t *testing.T) {
	n := envInt("DANA_TENANT_N", 6)
	base := envInt("DANA_TENANT_SEED", 1)
	if testing.Short() {
		n = 2
	}
	points := []fault.Point{
		fault.PoolRead, fault.PoolLatency, fault.PageTear,
		fault.PageBitFlip, fault.StriderTrap, fault.WorkerStall,
	}
	for i := 0; i < n; i++ {
		seed := int64(base) + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g := rand.New(rand.NewSource(seed))
			load := LoadConfig{
				Seed: seed, Tenants: 2 + g.Intn(3), Jobs: 8 + g.Intn(8),
				RateJobsPerSec: 4 + 8*g.Float64(),
				Workloads:      []string{"WLAN", "Patient", "Blog Feedback"},
				Scale:          0.002, Epochs: 1,
			}
			specs := GenLoad(load)
			var rates [fault.NumPoints]float64
			rates[points[g.Intn(len(points))]] = []float64{0.05, 0.25, 1.0}[g.Intn(3)]
			chaos, clean := runTenantChaos(t, specs, load.withDefaults().Tenants, load.Seed, fault.Config{
				Seed:              uint64(seed),
				Rates:             rates,
				TransientAttempts: []int{1, 2, -1}[g.Intn(3)],
			})
			faulty := TenantName(0)
			for i := range specs {
				if specs[i].Tenant != faulty {
					continue
				}
				if err := chaos.Results[i].Err; err != nil && !isTypedFault(err) {
					t.Fatalf("faulty tenant job %d: untyped error %v", i, err)
				}
			}
			compareHealthy(t, specs, faulty, chaos, clean)
		})
	}
}
