package cost

import (
	"math"
	"testing"
)

// TestChannelPagesPartition: round-robin shares cover every page
// exactly once and differ by at most one page between channels.
func TestChannelPagesPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4924, 4928} {
		for _, c := range []int{1, 2, 3, 4, 8, 32} {
			sum, maxP, minP := 0, 0, n+1
			for ch := 0; ch < c; ch++ {
				k := ChannelPages(n, c, ch)
				sum += k
				if k > maxP {
					maxP = k
				}
				if k < minP {
					minP = k
				}
			}
			if sum != n {
				t.Fatalf("n=%d c=%d: shares sum to %d", n, c, sum)
			}
			if n > 0 && maxP-minP > 1 {
				t.Errorf("n=%d c=%d: share spread %d..%d not balanced", n, c, minP, maxP)
			}
		}
	}
}

// TestTransferMaxOverChannels: the charged epoch transfer equals a
// hand-rolled serial walk over pages in the documented charging order
// (channel = page mod C, channels charged 0..C-1, epoch takes the max).
func TestTransferMaxOverChannels(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	for _, c := range []int{1, 2, 4, 8, 32} {
		p.Link = ChannelModel{Channels: c, HandshakeSec: 3e-6}
		bytesPerPage := float64(w.DatasetBytes) / float64(w.Pages)
		var worst float64
		for ch := 0; ch < c; ch++ {
			pages := 0
			for pn := 0; pn < w.Pages; pn++ {
				if pn%c == ch {
					pages++
				}
			}
			tt := p.Link.HandshakeSec + float64(pages)*bytesPerPage/ChannelBandwidth(p)
			if tt > worst {
				worst = tt
			}
		}
		got := TransferSec(w, p)
		if math.Abs(got-worst)/worst > 1e-12 {
			t.Errorf("channels=%d: TransferSec %v != serial max-over-channels %v", c, got, worst)
		}
	}
}

// TestMoreChannelsNeverSlower: adding channels (same per-channel rate)
// cannot increase any DAnA-path transfer time, and a transfer-bound
// workload eventually becomes compute-bound as the aggregate bandwidth
// reaches the HBM-class regime.
func TestMoreChannelsNeverSlower(t *testing.T) {
	w := sampleWorkload()
	w.DatasetBytes = 2 << 30 // transfer-bound at one channel
	p := Default()
	prev := math.Inf(1)
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		p.Link.Channels = c
		cur := DAnAPipelineSec(w, p)
		if cur > prev {
			t.Errorf("pipeline time increased at %d channels: %v > %v", c, cur, prev)
		}
		prev = cur
	}
	// 32 channels × 4 GB/s = 128 GB/s aggregate: the engine must be the
	// bottleneck now (compute saturation, the Figure-14 plateau).
	p.Link.Channels = 32
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	if got := DAnAPipelineSec(w, p); got != compute {
		t.Errorf("32-channel pipeline %v != compute %v (should saturate)", got, compute)
	}
}

// TestHandshakeChargedPerChannel: a nonzero per-channel handshake adds
// to the worst channel exactly once per epoch, and with many channels
// and a tiny dataset the handshake dominates.
func TestHandshakeChargedPerChannel(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	p.Link = ChannelModel{Channels: 4, HandshakeSec: 1e-3}
	base := p
	base.Link.HandshakeSec = 0
	delta := TransferSec(w, p) - TransferSec(w, base)
	if math.Abs(delta-1e-3) > 1e-12 {
		t.Errorf("handshake delta %v, want 1e-3 (once per epoch on the worst channel)", delta)
	}
	// Tuple granularity also folds the channel model in: one channel
	// must reproduce the legacy expression exactly.
	legacy := float64(w.Epochs) * float64(w.Tuples) *
		(TupleHandshakeSec + float64(w.DatasetBytes)/float64(w.Tuples)/(p.PCIeBytesPerSec*p.BandwidthScale))
	p.Link = ChannelModel{}
	if got := tupleTransferSec(w, p); got != legacy {
		t.Errorf("tuple-granularity 1-channel transfer %v != legacy %v", got, legacy)
	}
}

// TestWeaveTransferExact: with a weave precision declared, the link
// charges exactly FixedBytes + k×BitBytes per epoch — an == identity,
// not a tolerance — and WeaveBits = 0 keeps the legacy DatasetBytes
// expression bit-for-bit.
func TestWeaveTransferExact(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	p.Link = ChannelModel{HandshakeSec: 2e-6}
	legacy := TransferSec(w, p)
	if want := float64(w.DatasetBytes)/ChannelBandwidth(p) + p.Link.HandshakeSec; legacy != want {
		t.Fatalf("legacy transfer %v != scalar expression %v", legacy, want)
	}
	w.WeaveFixedBytes = 3 << 20
	w.WeaveBitBytes = 9 << 20
	if got := TransferSec(w, p); got != legacy {
		t.Fatalf("WeaveBits=0 must ignore weave bytes: %v != %v", got, legacy)
	}
	for bits := 1; bits <= 32; bits++ {
		w.WeaveBits = bits
		eff := w.WeaveFixedBytes + int64(bits)*w.WeaveBitBytes
		want := float64(eff)/ChannelBandwidth(p) + p.Link.HandshakeSec
		if got := TransferSec(w, p); got != want {
			t.Fatalf("bits=%d: TransferSec %v != exact effective-bytes expression %v", bits, got, want)
		}
	}
}

// TestWeaveTransferMonotone: fewer bits can never stream more bytes —
// the MLWeaving bandwidth tradeoff the precision sweep reproduces — on
// one channel and across a multi-channel link alike.
func TestWeaveTransferMonotone(t *testing.T) {
	w := sampleWorkload()
	w.WeaveFixedBytes = 2 << 20
	w.WeaveBitBytes = 5 << 20
	p := Default()
	for _, c := range []int{1, 4} {
		p.Link = ChannelModel{Channels: c, HandshakeSec: 1e-6}
		prev := math.Inf(1)
		for bits := 32; bits >= 1; bits-- {
			w.WeaveBits = bits
			cur := TransferSec(w, p)
			if cur > prev {
				t.Fatalf("channels=%d bits=%d: transfer %v > %v at %d bits", c, bits, cur, prev, bits+1)
			}
			prev = cur
		}
	}
}
