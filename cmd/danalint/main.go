// Command danalint is DAnA's multichecker: it runs the in-tree
// static-analysis suite (internal/lint) over module packages and exits
// non-zero on any finding. The analyzers turn the repo's runtime-checked
// invariants into compile-time failures:
//
//	pinbalance   every bufpool Pin is Unpinned on all paths (or handed off)
//	determinism  no wall-clock/rand/map-order effects in modeled-cycle packages
//	obsguard     obs call sites stay zero-alloc and lookup-free under obs.Noop
//	hotalloc     no heap allocation in //dana:hotpath extraction/merge functions
//	faulterrors  typed fault sentinels survive wrapping (%w, not %v)
//	backendreg   every backend.Backend impl is registered with non-empty Capabilities
//	shadow       no same-typed shadowing of a variable still used afterwards
//	nilcheck     no dereference of a variable proven nil
//	tenantflow   tenant-private System/registry/injector values stay in their tenant
//	hotcall      //dana:hotpath allocation-freedom closed over the call graph
//	golifecycle  go statements in server/runtime join on all paths; lock order acyclic
//
// The last three are interprocedural: danalint builds a module-wide
// call graph (CHA with receiver narrowing) and per-function summaries
// bottom-up over its SCCs, then checks whole-closure facts at each
// call site.
//
// Usage:
//
//	danalint ./...                      # whole module, all analyzers
//	danalint -analyzers pinbalance ./internal/runtime
//	danalint -tests=false ./...         # skip _test.go files
//	danalint -audit ./...               # inventory every suppression
//
// Findings print as file:line:col: message (analyzer). Suppress a
// finding with `//danalint:ignore <analyzer> -- reason` on (or above)
// the offending line. The reason tail is mandatory: `-audit` lists
// every suppression in the module and exits non-zero if any directive
// omits it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dana/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names (default: all)")
		tests     = flag.Bool("tests", true, "analyze _test.go files too")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		audit     = flag.Bool("audit", false, "list every //danalint:ignore suppression; exit non-zero on reason-less ones")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := lint.All()
	if *analyzers != "" {
		suite = nil
		for _, name := range strings.Split(*analyzers, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "danalint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if *audit {
		runAudit(pkgs)
		return
	}
	findings, err := lint.RunAnalyzers(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "danalint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// runAudit prints the module's suppression inventory and exits non-zero
// when any directive lacks the mandatory `-- reason` tail.
func runAudit(pkgs []*lint.Package) {
	recs := lint.CollectSuppressionRecords(pkgs)
	unaudited := 0
	for _, r := range recs {
		analyzer := r.Analyzer
		if analyzer == "" {
			analyzer = "(all)"
		}
		reason := r.Reason
		if reason == "" {
			reason = "<MISSING REASON>"
			unaudited++
		}
		fmt.Printf("%s:%d: %-12s %s\n", r.Pos.Filename, r.Pos.Line, analyzer, reason)
	}
	fmt.Fprintf(os.Stderr, "danalint: %d suppression(s), %d without a reason\n", len(recs), unaudited)
	if unaudited > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "danalint:", err)
	os.Exit(1)
}
