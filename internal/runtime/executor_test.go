package runtime

import (
	"math"
	hostrt "runtime"
	"testing"

	"dana/internal/accessengine"
	"dana/internal/backend"
	"dana/internal/fault"
	"dana/internal/hdfg"
	"dana/internal/storage"
	"dana/internal/strider"
)

// trainConfigured runs one full Train of a workload under the given
// executor configuration and returns the result. mods adjust the
// Options before the system is built (fault schedules, timeouts).
func trainConfigured(t *testing.T, workload string, scale float64, mergeCoef, epochs, workers int, noCache bool, mods ...func(*Options)) *TrainResult {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = storage.PageSize8K
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = epochs
	opts.Workers = workers
	opts.NoExtractCache = noCache
	for _, mod := range mods {
		mod(&opts)
	}
	s := New(opts)
	d := deployScaled(t, s, workload, scale)
	a, err := d.DSLAlgo(mergeCoef)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(epochs)
	if _, err := s.Register(a, mergeCoef, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Fatalf("%s workers=%d: leaked page pins", workload, workers)
	}
	return res
}

// TestParallelExecutorDeterminism: the concurrent pipelined executor
// (and the record cache) must change host wall-clock only. Model bits,
// epoch counts, modeled cycle stats, and simulated seconds are
// bit-identical to the serial, uncached path on LR, SVM, and LRMF.
func TestParallelExecutorDeterminism(t *testing.T) {
	// Give the scheduler real parallelism even on small CI hosts so the
	// worker pool and the engine batch fan-out actually run concurrently
	// (particularly under -race).
	defer hostrt.GOMAXPROCS(hostrt.GOMAXPROCS(4))
	cases := []struct {
		workload  string
		scale     float64
		mergeCoef int
		epochs    int
	}{
		{"Remote Sensing LR", 0.002, 16, 4},
		{"Remote Sensing SVM", 0.002, 16, 4},
		{"Netflix", 0.0005, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.workload, func(t *testing.T) {
			serial := trainConfigured(t, tc.workload, tc.scale, tc.mergeCoef, tc.epochs, 1, true)
			configs := []struct {
				name    string
				workers int
				noCache bool
			}{
				{"parallel8+cache", 8, false},
				{"parallel4-nocache", 4, true},
				{"serial+cache", 1, false},
			}
			for _, cfg := range configs {
				got := trainConfigured(t, tc.workload, tc.scale, tc.mergeCoef, tc.epochs, cfg.workers, cfg.noCache)
				if got.Epochs != serial.Epochs {
					t.Errorf("%s: epochs %d != serial %d", cfg.name, got.Epochs, serial.Epochs)
				}
				if len(got.Model) != len(serial.Model) {
					t.Fatalf("%s: model size %d != %d", cfg.name, len(got.Model), len(serial.Model))
				}
				for i := range got.Model {
					if math.Float32bits(got.Model[i]) != math.Float32bits(serial.Model[i]) {
						t.Fatalf("%s: model[%d] = %v != serial %v (not bit-identical)",
							cfg.name, i, got.Model[i], serial.Model[i])
					}
				}
				if got.Engine != serial.Engine {
					t.Errorf("%s: engine stats %+v != serial %+v", cfg.name, got.Engine, serial.Engine)
				}
				if got.Access != serial.Access {
					t.Errorf("%s: access stats %+v != serial %+v", cfg.name, got.Access, serial.Access)
				}
				if got.SimulatedSeconds != serial.SimulatedSeconds {
					t.Errorf("%s: simulated %v != serial %v", cfg.name, got.SimulatedSeconds, serial.SimulatedSeconds)
				}
			}
		})
	}
}

// TestExtractCacheSkipsPoolAndInvalidates: epochs >= 2 of a cached run
// must bypass the buffer pool entirely; DropCaches must force full
// re-extraction (with re-charged disk reads), and a heap mutation must
// invalidate the cached records.
func TestExtractCacheSkipsPoolAndInvalidates(t *testing.T) {
	opts := DefaultOptions()
	opts.PageSize = storage.PageSize8K
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = 3
	opts.Workers = 4
	s := New(opts)
	d := deployScaled(t, s, "Remote Sensing LR", 0.002)
	a, err := d.DSLAlgo(16)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(3)
	if _, err := s.Register(a, 16, d.Tuples); err != nil {
		t.Fatal(err)
	}

	// Cold run: epoch 1 reads from disk and fills the cache; epochs 2-3
	// replay it, so the pool sees each page exactly once.
	cold, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Pool.Misses != int64(d.Rel.NumPages()) {
		t.Errorf("cold run: %d misses, want one per page (%d)", cold.Pool.Misses, d.Rel.NumPages())
	}
	if cold.Pool.Hits != 0 {
		t.Errorf("cold run: %d pool hits; cached epochs should bypass the pool", cold.Pool.Hits)
	}

	// A second Train replays the cache: no pool traffic at all.
	s.Pool().ResetStats()
	warm, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pool.Hits != 0 || warm.Pool.Misses != 0 {
		t.Errorf("cached run touched the pool: %+v", warm.Pool)
	}
	if warm.SimulatedSeconds >= cold.SimulatedSeconds {
		t.Errorf("cached run simulated %v not below cold %v", warm.SimulatedSeconds, cold.SimulatedSeconds)
	}

	// DropCaches: the next run must re-read every page from disk.
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.Pool().ResetStats()
	recold, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if recold.Pool.Misses != int64(d.Rel.NumPages()) {
		t.Errorf("post-DropCaches run: %d misses, want %d", recold.Pool.Misses, d.Rel.NumPages())
	}
	if recold.Pool.IOSeconds <= 0 {
		t.Error("post-DropCaches run charged no disk time")
	}

	// Heap mutation: the generation check must reject the cached records.
	if ent := s.cache.lookup(d.Rel, s.DB.Pool.InvalidationCount()); ent == nil {
		t.Fatal("cache entry missing after re-extraction")
	}
	if _, err := d.Rel.Insert(make([]float64, d.Rel.Schema.NumCols())); err != nil {
		t.Fatal(err)
	}
	if ent := s.cache.lookup(d.Rel, s.DB.Pool.InvalidationCount()); ent != nil {
		t.Error("cache entry survived a heap mutation")
	}

	// Pool invalidation outside DropCaches (e.g. DROP TABLE) also
	// invalidates via the pool's invalidation counter.
	s2 := New(opts)
	d2 := deployScaled(t, s2, "Patient", 0.01)
	a2, err := d2.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a2.SetEpochs(2)
	if _, err := s2.Register(a2, 8, d2.Tuples); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Train(a2.Name, d2.Rel.Name); err != nil {
		t.Fatal(err)
	}
	if ent := s2.cache.lookup(d2.Rel, s2.DB.Pool.InvalidationCount()); ent == nil {
		t.Fatal("cache not filled")
	}
	if err := s2.DB.Pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if ent := s2.cache.lookup(d2.Rel, s2.DB.Pool.InvalidationCount()); ent != nil {
		t.Error("cache entry survived direct pool invalidation")
	}
}

// TestWorkerSweepBitIdentity is the metamorphic serial-vs-parallel
// check from the differential verification harness: the full worker
// grid {1,2,4,8} x {cache,nocache} must produce bit-identical models
// and identical modeled cycle stats to the serial uncached baseline.
// Parallelism and caching may only change host wall-clock.
func TestWorkerSweepBitIdentity(t *testing.T) {
	defer hostrt.GOMAXPROCS(hostrt.GOMAXPROCS(4))
	const (
		workload  = "Remote Sensing LR"
		scale     = 0.002
		mergeCoef = 16
		epochs    = 3
	)
	serial := trainConfigured(t, workload, scale, mergeCoef, epochs, 1, true)
	// The grid also runs with a zero-rate fault schedule attached: the
	// injection hooks, checksum verification, and recovery scaffolding
	// must be invisible when no fault fires.
	zeroFaults := func(o *Options) { o.Faults = fault.New(fault.Config{Seed: 7}) }
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cfg := range []struct {
			noCache bool
			faulted bool
		}{{false, false}, {true, false}, {false, true}, {true, true}} {
			noCache := cfg.noCache
			name := "cache"
			if noCache {
				name = "nocache"
			}
			var mods []func(*Options)
			if cfg.faulted {
				name += "+zerofaults"
				mods = append(mods, zeroFaults)
			}
			got := trainConfigured(t, workload, scale, mergeCoef, epochs, workers, noCache, mods...)
			if got.Epochs != serial.Epochs {
				t.Errorf("workers=%d/%s: epochs %d != serial %d", workers, name, got.Epochs, serial.Epochs)
			}
			if len(got.Model) != len(serial.Model) {
				t.Fatalf("workers=%d/%s: model size %d != %d", workers, name, len(got.Model), len(serial.Model))
			}
			for i := range got.Model {
				if math.Float32bits(got.Model[i]) != math.Float32bits(serial.Model[i]) {
					t.Fatalf("workers=%d/%s: model[%d] = %v != serial %v (not bit-identical)",
						workers, name, i, got.Model[i], serial.Model[i])
				}
			}
			if got.Engine != serial.Engine {
				t.Errorf("workers=%d/%s: engine stats %+v != serial %+v", workers, name, got.Engine, serial.Engine)
			}
			if got.Access != serial.Access {
				t.Errorf("workers=%d/%s: access stats %+v != serial %+v", workers, name, got.Access, serial.Access)
			}
			if got.SimulatedSeconds != serial.SimulatedSeconds {
				t.Errorf("workers=%d/%s: simulated %v != serial %v", workers, name, got.SimulatedSeconds, serial.SimulatedSeconds)
			}
		}
	}
}

// TestChannelSweepBitIdentity extends the worker sweep along the
// memory-channel axis: the full {workers} × {channels} grid — cache on
// and off, and with the PR 4 zero-rate fault schedule attached — must
// produce bit-identical models, identical modeled cycle stats, and
// identical simulated seconds to the serial single-channel uncached
// baseline. Channel partitioning (like worker parallelism) may change
// host wall-clock only; the per-channel obs split re-partitions the
// same totals.
//
// The grid runs with the explicit Backend="accelerator" override while
// the baseline uses the "" default: both resolve to the same backend
// through the dispatch seam, so the sweep also proves the Backend
// refactor did not perturb any modeled quantity on the paper path.
func TestChannelSweepBitIdentity(t *testing.T) {
	defer hostrt.GOMAXPROCS(hostrt.GOMAXPROCS(4))
	const (
		workload  = "Remote Sensing LR"
		scale     = 0.002
		mergeCoef = 16
		epochs    = 3
	)
	serial := trainConfigured(t, workload, scale, mergeCoef, epochs, 1, true)
	zeroFaults := func(o *Options) { o.Faults = fault.New(fault.Config{Seed: 7}) }
	for _, workers := range []int{1, 2, 4, 8} {
		for _, channels := range []int{1, 2, 4} {
			for _, cfg := range []struct {
				noCache bool
				faulted bool
			}{{false, false}, {true, false}, {true, true}} {
				name := "cache"
				if cfg.noCache {
					name = "nocache"
				}
				mods := []func(*Options){func(o *Options) {
					o.Channels = channels
					o.Backend = "accelerator" // explicit override of the "" default
				}}
				if cfg.faulted {
					name += "+zerofaults"
					mods = append(mods, zeroFaults)
				}
				got := trainConfigured(t, workload, scale, mergeCoef, epochs, workers, cfg.noCache, mods...)
				if got.Backend != "accelerator" || serial.Backend != "accelerator" {
					t.Fatalf("w=%d/c=%d/%s: backend %q (serial %q), want accelerator on both dispatch paths",
						workers, channels, name, got.Backend, serial.Backend)
				}
				if got.Epochs != serial.Epochs {
					t.Errorf("w=%d/c=%d/%s: epochs %d != serial %d", workers, channels, name, got.Epochs, serial.Epochs)
				}
				if len(got.Model) != len(serial.Model) {
					t.Fatalf("w=%d/c=%d/%s: model size %d != %d", workers, channels, name, len(got.Model), len(serial.Model))
				}
				for i := range got.Model {
					if math.Float32bits(got.Model[i]) != math.Float32bits(serial.Model[i]) {
						t.Fatalf("w=%d/c=%d/%s: model[%d] = %v != serial %v (not bit-identical)",
							workers, channels, name, i, got.Model[i], serial.Model[i])
					}
				}
				if got.Engine != serial.Engine {
					t.Errorf("w=%d/c=%d/%s: engine stats %+v != serial %+v", workers, channels, name, got.Engine, serial.Engine)
				}
				if got.Access != serial.Access {
					t.Errorf("w=%d/c=%d/%s: access stats %+v != serial %+v", workers, channels, name, got.Access, serial.Access)
				}
				if got.SimulatedSeconds != serial.SimulatedSeconds {
					t.Errorf("w=%d/c=%d/%s: simulated %v != serial %v", workers, channels, name, got.SimulatedSeconds, serial.SimulatedSeconds)
				}
			}
		}
	}
}

// newBenchRunner assembles an epochRunner the way Train does (access
// engine, configured accelerator backend, runner) so the allocation
// guard can drive epochs directly. The caller must Close the returned
// backend.
func newBenchRunner(t *testing.T, workers, channels int, noCache bool) (*epochRunner, *backend.Accel) {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = storage.PageSize8K
	opts.PoolBytes = 64 << 20
	opts.Workers = workers
	opts.Channels = channels
	opts.NoExtractCache = noCache
	opts.DisableObs = true
	s := New(opts)
	d := deployScaled(t, s, "Remote Sensing LR", 0.01)
	a, err := d.DSLAlgo(16)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := s.Register(a, 16, d.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	ns := acc.Design.NumStriders
	if ns < 1 {
		ns = 1
	}
	if ns > 16 {
		ns = 16
	}
	ae, err := accessengine.New(strider.PostgresLayout(opts.PageSize), d.Rel.Schema, ns)
	if err != nil {
		t.Fatal(err)
	}
	ae.SetObs(s.obs)
	be := backend.NewAccel(backend.Env{Obs: s.obs, Cost: opts.Cost, FPGA: opts.FPGA, Workers: workers})
	if err := be.Configure(backend.Program{
		Graph:     graph,
		Engine:    acc.Program,
		EngineCfg: acc.Design.Engine,
		Striders:  ns,
		MergeCoef: 16,
		PageSize:  opts.PageSize,
		Tuples:    d.Tuples,
	}); err != nil {
		t.Fatal(err)
	}
	return s.newEpochRunner(ae, d.Rel, be), be
}

// TestHotPathsAllocationFree is the runtime counterpart of the hotalloc
// analyzer: after warm-up (arenas sized, buffers grown, pool hot), a
// steady-state epoch must allocate O(1) — never per page or per tuple.
// The relation here spans dozens of pages and thousands of tuples, so
// any per-page regression blows through the bounds by an order of
// magnitude.
func TestHotPathsAllocationFree(t *testing.T) {
	measure := func(workers, channels int) float64 {
		r, m := newBenchRunner(t, workers, channels, true)
		defer m.Close()
		for e := 0; e < 2; e++ {
			if err := r.runEpoch(e); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(3, func() {
			if err := r.runEpoch(2); err != nil {
				t.Fatal(err)
			}
		})
	}
	pages := 0
	{
		r, m := newBenchRunner(t, 1, 1, true)
		pages = r.rel.NumPages()
		m.Close()
	}
	if serial := measure(1, 1); serial > 16 {
		t.Errorf("serial recycling epoch allocates %.0f times (%d pages); hot path regressed", serial, pages)
	}
	// The parallel path pays a fixed per-epoch fan-out cost (output
	// channels, worker goroutines) that scales with workers, never with
	// pages or tuples.
	if par := measure(4, 2); par > 128 {
		t.Errorf("parallel epoch allocates %.0f times (%d pages); fan-out should be O(workers)", par, pages)
	}
}
