package dsl

import (
	"errors"
	"fmt"
)

// Algo is one instance of a learning algorithm (paper's `dana.algo`
// component): its data declarations, update rule, merge function, and
// convergence criterion.
type Algo struct {
	Name string

	ModelVar *Expr   // the dana.model declaration
	Inputs   []*Expr // dana.input declarations
	Outputs  []*Expr // dana.output declarations
	Metas    []*Expr // dana.meta declarations

	Updated     *Expr       // SetModel target: the updated model expression
	RowUpdates  []RowUpdate // SetModelRow targets (LRMF-style sparse updates)
	Convergence *Expr       // SetConvergence target (boolean expr), may be nil
	Epochs      int         // SetEpochs value; 0 = until convergence
	MergeNode   *Expr       // the (single) merge node, may be nil

	Exprs []*Expr // every node, in creation order
}

// NewAlgo creates an empty algorithm definition.
func NewAlgo(name string) *Algo { return &Algo{Name: name, Epochs: 1} }

func (a *Algo) add(e *Expr) *Expr {
	e.ID = len(a.Exprs)
	e.algo = a
	a.Exprs = append(a.Exprs, e)
	return e
}

// Model declares the machine-learning model variable. dims of length 0
// declares a scalar, length 1 a vector, length 2 a matrix.
func (a *Algo) Model(dims ...int) *Expr {
	e := a.add(&Expr{Op: OpLeaf, Kind: KModel, Dims: dims, Name: "model"})
	if a.ModelVar == nil {
		a.ModelVar = e
	}
	return e
}

// Input declares one input (feature vector) of the training tuple.
func (a *Algo) Input(dims ...int) *Expr {
	e := a.add(&Expr{Op: OpLeaf, Kind: KInput, Dims: dims, Name: fmt.Sprintf("in%d", len(a.Inputs))})
	a.Inputs = append(a.Inputs, e)
	return e
}

// Output declares one output (label) of the training tuple.
func (a *Algo) Output(dims ...int) *Expr {
	e := a.add(&Expr{Op: OpLeaf, Kind: KOutput, Dims: dims, Name: fmt.Sprintf("out%d", len(a.Outputs))})
	a.Outputs = append(a.Outputs, e)
	return e
}

// Meta declares a compile-time constant (learning rate, regularizer, …).
func (a *Algo) Meta(v float64) *Expr {
	e := a.add(&Expr{Op: OpLeaf, Kind: KMeta, MetaValue: v, Name: fmt.Sprintf("meta%d", len(a.Metas))})
	a.Metas = append(a.Metas, e)
	return e
}

// Merge declares how per-thread instances of x combine (paper
// `algo.merge(x, coef, "op")`). op must be "+" or "*". coef is the merge
// coefficient: the maximum number of parallel update-rule threads.
func (a *Algo) Merge(x *Expr, coef int, op string) (*Expr, error) {
	if a.MergeNode != nil {
		return nil, errors.New("dsl: merge already declared")
	}
	if x.algo != a {
		return nil, errors.New("dsl: merge argument belongs to a different algo")
	}
	if coef < 1 {
		return nil, fmt.Errorf("dsl: merge coefficient %d < 1", coef)
	}
	var mop Op
	switch op {
	case "+":
		mop = OpAdd
	case "*":
		mop = OpMul
	default:
		return nil, fmt.Errorf("dsl: unsupported merge operation %q", op)
	}
	m := a.add(&Expr{Op: OpMerge, Args: []*Expr{x}, MergeOp: mop, MergeCoef: coef})
	a.MergeNode = m
	return m, nil
}

// MustMerge is Merge that panics on error (builder convenience).
func (a *Algo) MustMerge(x *Expr, coef int, op string) *Expr {
	m, err := a.Merge(x, coef, op)
	if err != nil {
		panic(err)
	}
	return m
}

// RowUpdate describes a sparse model update: row Idx of the model is
// replaced by Val (a vector expression). Used by LRMF-style algorithms
// whose per-tuple update touches only the gathered rows (DESIGN.md
// extension; the paper's Appendix B ISA is not public).
type RowUpdate struct {
	Idx *Expr // scalar row index (typically an input column)
	Val *Expr // replacement row
}

// SetModel links the updated-model expression to the algo.
func (a *Algo) SetModel(x *Expr) { a.Updated = x }

// SetModelRow registers a sparse row update of the model.
func (a *Algo) SetModelRow(idx, val *Expr) {
	a.RowUpdates = append(a.RowUpdates, RowUpdate{Idx: idx, Val: val})
}

// SetConvergence sets the boolean convergence expression.
func (a *Algo) SetConvergence(x *Expr) { a.Convergence = x }

// SetEpochs fixes the number of training epochs.
func (a *Algo) SetEpochs(n int) { a.Epochs = n }

// MergeCoef returns the declared merge coefficient, defaulting to 1
// (single-threaded) when no merge function was given.
func (a *Algo) MergeCoef() int {
	if a.MergeNode == nil {
		return 1
	}
	return a.MergeNode.MergeCoef
}

// Consumers returns the expressions that directly use x as an operand.
func (a *Algo) Consumers(x *Expr) []*Expr {
	var out []*Expr
	for _, e := range a.Exprs {
		for _, arg := range e.Args {
			if arg == x {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Validate checks structural well-formedness of the UDF.
func (a *Algo) Validate() error {
	if a.ModelVar == nil {
		return errors.New("dsl: algo has no model declaration")
	}
	if len(a.Inputs) == 0 {
		return errors.New("dsl: algo has no input declaration")
	}
	if a.Updated == nil && len(a.RowUpdates) == 0 {
		return errors.New("dsl: algo has no setModel or setModelRow")
	}
	if a.Epochs <= 0 && a.Convergence == nil {
		return errors.New("dsl: algo needs setEpochs or setConvergence")
	}
	for _, e := range a.Exprs {
		if e.algo != a {
			return fmt.Errorf("dsl: expression %v belongs to another algo", e)
		}
		switch {
		case e.Op == OpLeaf:
			if len(e.Args) != 0 {
				return fmt.Errorf("dsl: leaf %v has operands", e)
			}
			if len(e.Dims) > 2 {
				return fmt.Errorf("dsl: %v: more than 2 dimensions are not supported", e)
			}
			for _, d := range e.Dims {
				if d < 1 {
					return fmt.Errorf("dsl: %v: dimension %d < 1", e, d)
				}
			}
		case e.Op.IsBinary(), e.Op == OpGather:
			if len(e.Args) != 2 {
				return fmt.Errorf("dsl: %v needs 2 operands, has %d", e, len(e.Args))
			}
		case e.Op.IsNonLinear(), e.Op == OpMerge:
			if len(e.Args) != 1 {
				return fmt.Errorf("dsl: %v needs 1 operand, has %d", e, len(e.Args))
			}
		case e.Op.IsGroup():
			if len(e.Args) != 1 {
				return fmt.Errorf("dsl: %v needs 1 operand, has %d", e, len(e.Args))
			}
			if e.Axis < 1 || e.Axis > 2 {
				return fmt.Errorf("dsl: %v: axis %d out of range [1,2]", e, e.Axis)
			}
		default:
			return fmt.Errorf("dsl: unknown op in %v", e)
		}
		for _, arg := range e.Args {
			if arg.ID >= e.ID {
				return fmt.Errorf("dsl: %v references later expression #%d (cycle?)", e, arg.ID)
			}
		}
	}
	if a.Updated != nil && a.Updated.algo != a {
		return errors.New("dsl: setModel expression belongs to another algo")
	}
	for _, ru := range a.RowUpdates {
		if ru.Idx == nil || ru.Val == nil {
			return errors.New("dsl: setModelRow with nil expression")
		}
		if ru.Idx.algo != a || ru.Val.algo != a {
			return errors.New("dsl: setModelRow expression belongs to another algo")
		}
	}
	if a.Convergence != nil && a.Convergence.algo != a {
		return errors.New("dsl: setConvergence expression belongs to another algo")
	}
	return nil
}
