// Package accessengine implements DAnA's multi-threaded access engine
// (paper §5.1, Figure 5): page buffers each served by a Strider that
// unpacks raw database pages, plus the conversion of extracted column
// bytes into the float32 values the execution engine consumes.
//
// Page-level parallelism is explicit: with S striders, S pages unpack
// concurrently, so the access-engine cycles for a page group are the
// maximum over its striders rather than the sum — the property that
// lets extraction interleave with execution (§5.1.1).
package accessengine

import (
	"encoding/binary"
	"fmt"
	"math"

	"dana/internal/storage"
	"dana/internal/strider"
)

// Engine is a configured access engine for one relation schema and page
// layout.
type Engine struct {
	Layout      strider.PageLayout
	Schema      *storage.Schema
	NumStriders int

	prog []strider.Instr
	cfg  strider.Config
	vms  []*strider.VM

	stats Stats
}

// Stats counts access-engine activity.
type Stats struct {
	Pages       int64
	Tuples      int64
	Bytes       int64 // payload bytes emitted to the execution engine
	Cycles      int64 // strider cycles (max across concurrent striders per group)
	TotalCycles int64 // sum of strider cycles across all striders (utilization)
}

// New builds the engine: it generates the Strider program for the page
// layout (compiler step) and instantiates the page-buffer/Strider pairs.
func New(layout strider.PageLayout, schema *storage.Schema, numStriders int) (*Engine, error) {
	prog, cfg, err := strider.Generate(layout)
	if err != nil {
		return nil, err
	}
	return newWith(layout, schema, numStriders, prog, cfg)
}

// NewInnoDB builds an access engine for MySQL/InnoDB-style pages: the
// Striders run the chain-walking program instead of the line-pointer
// walker, demonstrating the ISA's cross-engine portability (§5.1.2).
func NewInnoDB(pageSize int, schema *storage.Schema, numStriders int) (*Engine, error) {
	prog, cfg, err := strider.GenerateInnoDB(strider.InnoDBLayout(pageSize, schema))
	if err != nil {
		return nil, err
	}
	return newWith(strider.PageLayout{PageSize: pageSize}, schema, numStriders, prog, cfg)
}

func newWith(layout strider.PageLayout, schema *storage.Schema, numStriders int, prog []strider.Instr, cfg strider.Config) (*Engine, error) {
	if numStriders < 1 {
		return nil, fmt.Errorf("accessengine: need at least one strider, got %d", numStriders)
	}
	e := &Engine{Layout: layout, Schema: schema, NumStriders: numStriders, prog: prog, cfg: cfg}
	for i := 0; i < numStriders; i++ {
		e.vms = append(e.vms, strider.NewVM(prog, cfg))
	}
	return e, nil
}

// Program returns the generated Strider program (for the catalog).
func (e *Engine) Program() []strider.Instr { return e.prog }

// Config returns the Strider configuration (for the catalog).
func (e *Engine) Config() strider.Config { return e.cfg }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Deformat converts one tuple's payload bytes into float32 values, one
// per column (ints converted to float; float8 narrowed). This is the
// "transform user data into a floating point format" step of §6.2.
func Deformat(schema *storage.Schema, data []byte, dst []float32) ([]float32, error) {
	if len(data) < schema.DataWidth() {
		return dst, fmt.Errorf("accessengine: payload %d bytes, schema needs %d", len(data), schema.DataWidth())
	}
	for i, col := range schema.Cols {
		off := schema.ColOffset(i)
		switch col.Type {
		case storage.TFloat32:
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(data[off:])))
		case storage.TFloat64:
			dst = append(dst, float32(math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))))
		case storage.TInt32:
			dst = append(dst, float32(int32(binary.LittleEndian.Uint32(data[off:]))))
		case storage.TInt64:
			dst = append(dst, float32(int64(binary.LittleEndian.Uint64(data[off:]))))
		default:
			return dst, fmt.Errorf("accessengine: column %q has unsupported type", col.Name)
		}
	}
	return dst, nil
}

// ProcessPage unpacks one page through a single Strider and returns the
// extracted tuples as float32 records.
func (e *Engine) ProcessPage(page storage.Page) ([][]float32, error) {
	recs, _, err := e.processOn(0, page)
	if err != nil {
		return nil, err
	}
	return recs, nil
}

func (e *Engine) processOn(vmIdx int, page storage.Page) ([][]float32, int64, error) {
	vm := e.vms[vmIdx]
	if err := vm.Run(page); err != nil {
		return nil, 0, err
	}
	out := vm.Out()
	w := e.Schema.DataWidth()
	if len(out)%w != 0 {
		return nil, 0, fmt.Errorf("accessengine: strider emitted %d bytes, not a multiple of tuple width %d", len(out), w)
	}
	n := len(out) / w
	recs := make([][]float32, 0, n)
	for i := 0; i < n; i++ {
		rec, err := Deformat(e.Schema, out[i*w:(i+1)*w], make([]float32, 0, e.Schema.NumCols()))
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rec)
	}
	cyc := vm.Cycles()
	e.stats.Pages++
	e.stats.Tuples += int64(n)
	e.stats.Bytes += int64(len(out))
	e.stats.TotalCycles += cyc
	return recs, cyc, nil
}

// ProcessPages unpacks a batch of pages across the striders. Pages are
// assigned round-robin; the charged cycle cost of each group of
// NumStriders pages is the maximum strider time in the group (they run
// concurrently), summed over groups.
func (e *Engine) ProcessPages(pages []storage.Page) ([][]float32, error) {
	var all [][]float32
	for start := 0; start < len(pages); start += e.NumStriders {
		end := start + e.NumStriders
		if end > len(pages) {
			end = len(pages)
		}
		var groupMax int64
		for i, pg := range pages[start:end] {
			recs, cyc, err := e.processOn(i, pg)
			if err != nil {
				return nil, err
			}
			if cyc > groupMax {
				groupMax = cyc
			}
			all = append(all, recs...)
		}
		e.stats.Cycles += groupMax
	}
	return all, nil
}

// EstimatePageCycles returns the static Strider cycle cost of unpacking
// one page holding n tuples of the schema: the loop body is 7
// instructions plus the emit cycles (1 per 8 payload bytes), plus the 4
// header instructions.
func (e *Engine) EstimatePageCycles(tuplesPerPage int) int64 {
	return PageCycles(e.Schema, tuplesPerPage)
}

// PageCycles is EstimatePageCycles without an Engine instance (used by
// the cost model on full-size workloads).
func PageCycles(schema *storage.Schema, tuplesPerPage int) int64 {
	emit := int64((schema.DataWidth() + 7) / 8)
	return 4 + int64(tuplesPerPage)*(7+emit)
}
