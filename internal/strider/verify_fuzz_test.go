package strider

// FuzzVerifierSoundness is the verifier's core soundness contract as a
// fuzz invariant: any program the verifier STRICT-accepts (no errors,
// no warnings — a full proof) must execute on a conforming page of the
// verified size without a single VM trap. The fuzzer decodes arbitrary
// byte strings into instruction words, so it explores programs no
// human or compiler would write; whenever one slips past the strict
// verifier, running it is the oracle.

import (
	"encoding/binary"
	"testing"
)

// fuzzWords reinterprets fuzz bytes as 22-bit instruction words.
func fuzzWords(data []byte) []uint32 {
	var words []uint32
	for i := 0; i+4 <= len(data) && len(words) < 64; i += 4 {
		words = append(words, binary.LittleEndian.Uint32(data[i:])&0x3FFFFF)
	}
	return words
}

func FuzzVerifierSoundness(f *testing.F) {
	const pageSize = 128

	// Seed with known strict-accepted programs (the proven loop from the
	// unit suite and simple straight-line walks) plus a known trap, so
	// the corpus starts on both sides of the accept boundary.
	seeds := []string{
		`
ad 8, 0, %t0
bentr
cln %t0, 0, 8
ad %t0, 8, %t0
bexit 1, %t0, 31
ins %t0, 4
`,
		`
cln 0, 0, 8
ins %t0, 4
`,
		`
mul 31, 31, %t0
mul %t0, %t0, %t0
cln %t0, 0, 8
`,
	}
	for _, src := range seeds {
		prog, err := Assemble(src)
		if err != nil {
			f.Fatal(err)
		}
		var raw []byte
		for _, w := range EncodeProgram(prog) {
			raw = binary.LittleEndian.AppendUint32(raw, w)
		}
		f.Add(raw)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := DecodeProgram(fuzzWords(data))
		if err != nil || len(prog) == 0 {
			return // not a decodable program; nothing to verify
		}
		rep := Verify(prog, Config{}, VerifyOptions{PageSize: pageSize, Strict: true})
		if !rep.OK(true) {
			return // rejected or unproven: the VM's dynamic guards own it
		}
		vm := NewVM(prog, Config{})
		if err := vm.Run(make([]byte, pageSize)); err != nil {
			t.Fatalf("strict-verified program trapped on a conforming page: %v\n%s",
				err, Disassemble(prog))
		}
	})
}
