package lint

// Golden tests in the analysistest style: each analyzer runs over its
// fixture package under testdata/src/<name>, and the findings must
// match the `// want `regexp`` comments in the fixture sources exactly
// — every finding claims a want on its line, every want is claimed.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want `pattern“ comments (backquote-delimited so
// fixture regexps can contain quotes).
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type wantMark struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, dir string) []*wantMark {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantMark
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &wantMark{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// claimWant marks the first unclaimed want on the finding's line whose
// pattern matches the message.
func claimWant(wants []*wantMark, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func TestAnalyzersGolden(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a   *Analyzer
		dir string
	}{
		{PinBalance, "pinbalance"},
		{Determinism, "determinism"},
		{ObsGuard, "obsguard"},
		{HotAlloc, "hotalloc"},
		{FaultErrors, "faulterrors"},
		{BackendReg, "backendreg"},
		{Shadow, "shadow"},
		{NilCheck, "nilcheck"},
		{TenantFlow, "tenantflow"},
		{HotCall, "hotcall"},
		{GoLifecycle, "golifecycle"},
	}
	for _, tc := range cases {
		t.Run(tc.a.Name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := ld.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("no fixture package loaded from %s", dir)
			}
			findings, err := RunAnalyzers(pkgs, []*Analyzer{tc.a})
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, f := range findings {
				if !claimWant(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestLoaderSkipsTestdataInRecursiveExpansion pins the property the
// danalint CLI relies on: `./...` never descends into fixture packages,
// while naming a testdata directory loads it.
func TestLoaderSkipsTestdataInRecursiveExpansion(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.HasPrefix(p.PkgPath, "fixture:") {
			t.Errorf("recursive expansion loaded fixture package %s", p.PkgPath)
		}
	}
}
