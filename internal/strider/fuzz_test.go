package strider

import (
	"math/rand"
	"testing"

	"dana/internal/fuzzcorpus"
	"dana/internal/storage"
)

// fuzzVMInput maps arbitrary fuzz bytes onto a (program, config, page)
// triple. The mapping is total — every byte string decodes to something
// runnable — so the fuzzer explores the VM itself rather than an input
// validator. Missing bytes read as zero.
//
//	byte  0         : instruction count - 1 (low 5 bits → 1..32)
//	4 per instr     : opcode (mod NumOpcodes), A, B, C (each &0x3F)
//	32 bytes        : 16 field descriptors {start &31, width mod 33}
//	32 bytes        : 16 config registers, 2 bytes little-endian each
//	rest            : page buffer (capped at 32 KB)
func fuzzVMInput(data []byte) ([]Instr, Config, []byte) {
	pos := 0
	take := func() byte {
		if pos < len(data) {
			b := data[pos]
			pos++
			return b
		}
		pos++
		return 0
	}
	const numOpcodes = int(OpBexit) + 1
	n := int(take()&31) + 1
	prog := make([]Instr, n)
	for i := range prog {
		prog[i] = Instr{
			Op: Opcode(int(take()) % numOpcodes),
			A:  Operand(take() & 0x3F),
			B:  Operand(take() & 0x3F),
			C:  Operand(take() & 0x3F),
		}
	}
	var cfg Config
	for i := range cfg.Fields {
		cfg.Fields[i] = FieldDesc{Start: take() & 31, Width: take() % 33}
	}
	for i := range cfg.CR {
		lo, hi := take(), take()
		cfg.CR[i] = uint64(lo) | uint64(hi)<<8
	}
	var page []byte
	if pos < len(data) {
		page = data[pos:]
		if len(page) > storage.PageSize32K {
			page = page[:storage.PageSize32K]
		}
	}
	return prog, cfg, page
}

// encodeFuzzVMSeed is the inverse of fuzzVMInput for well-formed inputs
// (operands < 64, field starts < 32, widths ≤ 32, CRs < 65536), used to
// seed the corpus with real walker programs.
func encodeFuzzVMSeed(prog []Instr, cfg Config, page []byte) []byte {
	out := []byte{byte(len(prog) - 1)}
	for _, in := range prog {
		out = append(out, byte(in.Op), byte(in.A), byte(in.B), byte(in.C))
	}
	for _, fd := range cfg.Fields {
		out = append(out, fd.Start, fd.Width)
	}
	for _, cr := range cfg.CR {
		out = append(out, byte(cr), byte(cr>>8))
	}
	return append(out, page...)
}

// striderVMSeeds builds the deterministic seed corpus for FuzzStriderVM:
// the real PostgreSQL and InnoDB walkers over real pages, the old
// TestVMFuzzNoPanic generator's programs (same rand seed it shipped
// with), and a uint64-wraparound probe.
func striderVMSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	schema := storage.NumericSchema(4)
	// Seed 1: the real PostgreSQL page walker over a real page.
	if prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K)); err == nil {
		page := storage.NewPage(storage.PageSize8K, 0)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5; i++ {
			vals := make([]float64, schema.NumCols())
			for j := range vals {
				vals[j] = float64(float32(rng.NormFloat64()))
			}
			raw, err := storage.EncodeTuple(schema, vals, 3, storage.TID{Item: uint16(i)})
			if err != nil {
				tb.Fatal(err)
			}
			if _, err := page.AddItem(raw); err != nil {
				tb.Fatal(err)
			}
		}
		seeds = append(seeds, encodeFuzzVMSeed(prog, cfg, page[:2048]))
	}
	// Seed 2: the InnoDB walker.
	if prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, schema)); err == nil {
		ipage := storage.NewInnoPage(storage.PageSize8K)
		buf := make([]byte, schema.DataWidth())
		for i := 0; i < 3; i++ {
			if err := schema.EncodeValues(buf, make([]float64, schema.NumCols())); err != nil {
				tb.Fatal(err)
			}
			if err := ipage.AddRecord(buf); err != nil {
				tb.Fatal(err)
			}
		}
		seeds = append(seeds, encodeFuzzVMSeed(prog, cfg, ipage[:1024]))
	}
	// Seeds 3..N: the old TestVMFuzzNoPanic generator, same distribution
	// and seed it shipped with.
	oldRNG := rand.New(rand.NewSource(31))
	oldPage := make([]byte, 1024)
	oldRNG.Read(oldPage)
	for trial := 0; trial < 12; trial++ {
		n := 1 + oldRNG.Intn(12)
		prog := make([]Instr, n)
		for i := range prog {
			prog[i] = Instr{
				Op: Opcode(oldRNG.Intn(11)),
				A:  Operand(oldRNG.Intn(64)),
				B:  Operand(oldRNG.Intn(64)),
				C:  Operand(oldRNG.Intn(64)),
			}
		}
		var cfg Config
		for i := range cfg.Fields {
			cfg.Fields[i] = FieldDesc{Start: uint8(oldRNG.Intn(32)), Width: uint8(oldRNG.Intn(33))}
		}
		seeds = append(seeds, encodeFuzzVMSeed(prog, cfg, oldPage))
	}
	// Final seed: wraparound probe — sub 0,1 then readB/cln/writeB with
	// the huge result, the overflow class the bounds checks must reject.
	seeds = append(seeds, encodeFuzzVMSeed([]Instr{
		{Op: OpSub, A: 0, B: 1, C: operandTBase},                  // %t0 = 0 - 1
		{Op: OpReadB, A: operandTBase, B: 8, C: operandTBase + 1}, // readB %t0, 8
		{Op: OpClean, A: operandTBase, B: operandTBase, C: 8},     // cln %t0+%t0, 8
		{Op: OpWriteB, A: 1, B: 8, C: operandTBase},               // writeB at %t0
	}, Config{}, make([]byte, 256)))
	return seeds
}

// FuzzStriderVM is the native promotion of the old TestVMFuzzNoPanic:
// arbitrary programs against arbitrary pages must return (error or nil),
// never panic, over-read, or hang.
func FuzzStriderVM(f *testing.F) {
	for _, s := range striderVMSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, cfg, page := fuzzVMInput(data)
		vm := NewVM(prog, cfg)
		vm.MaxSteps = 50000
		_ = vm.Run(page) // error or nil both fine; panics/hangs are not
	})
}

// TestWriteStriderVMCorpus regenerates the committed seed corpus when
// DANA_WRITE_FUZZ_CORPUS is set.
func TestWriteStriderVMCorpus(t *testing.T) {
	if !fuzzcorpus.ShouldWrite() {
		t.Skipf("set %s=1 to regenerate the corpus", fuzzcorpus.WriteEnv)
	}
	if err := fuzzcorpus.WriteBytes("testdata/fuzz/FuzzStriderVM", striderVMSeeds(t)); err != nil {
		t.Fatal(err)
	}
}
