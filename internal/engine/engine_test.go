package engine

import (
	"math"
	"math/rand"
	hostrt "runtime"
	"strings"
	"testing"
)

// handProg builds a tiny hand-written program computing, per tuple
// (x[0..3], y): dot = Σ w*x ; err = dot - y ; grad = err*x ;
// w' = w - lr*grad, with no merge (plain SGD).
func handProg() *Program {
	// Layout: w[0,4) x[4,8) y[8] lr[9] prod[10,14) dot[14] err[15] grad[16,20) up[20,24) wNew[24,28)
	p := &Program{
		Slots:     28,
		ModelSlot: Slot{0, 4},
		InputSlot: Slot{4, 5},
		ConstSlot: Slot{9, 1},
		Consts:    []float32{0.1},
		PerTuple: []Instr{
			{Kind: KEW, Op: AMul, Dst: Slot{10, 4}, A: Slot{0, 4}, B: Slot{4, 4}},
			{Kind: KReduce, Op: AAdd, Dst: Slot{14, 1}, A: Slot{10, 4}, GroupSize: 4, GStride: 0, EStride: 1},
			{Kind: KEW, Op: ASub, Dst: Slot{15, 1}, A: Slot{14, 1}, B: Slot{8, 1}},
			{Kind: KEW, Op: AMul, Dst: Slot{16, 4}, A: Slot{15, 1}, B: Slot{4, 4}},
			{Kind: KEW, Op: AMul, Dst: Slot{20, 4}, A: Slot{9, 1}, B: Slot{16, 4}},
			{Kind: KEW, Op: ASub, Dst: Slot{24, 4}, A: Slot{0, 4}, B: Slot{20, 4}},
		},
		UpdatedSlot: Slot{24, 4},
	}
	return p
}

func defaultCfg() Config {
	return Config{Threads: 1, ACsPerThread: 2, AUsPerAC: DefaultAUsPerAC, ClockHz: 150e6}
}

func TestMachineSGDStep(t *testing.T) {
	m, err := NewMachine(handProg(), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetModel([]float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// x = (1,1,1,1), y = 0 => dot = 10, err = 10, w' = w - 0.1*10*x = w-1.
	if err := m.RunBatch([][]float32{{1, 1, 1, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 2, 3}
	got := m.Model()
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Errorf("w[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	st := m.Stats()
	if st.Tuples != 1 || st.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cycles <= 0 || st.ComputeCycles <= 0 || st.LoadCycles <= 0 {
		t.Errorf("cycle accounting missing: %+v", st)
	}
}

// TestRunBatchHostFanOutDeterminism: fanning a merge batch's model
// threads across host goroutines must leave the model bits and every
// cycle counter untouched relative to the serial machine.
func TestRunBatchHostFanOutDeterminism(t *testing.T) {
	old := hostrt.GOMAXPROCS(4)
	defer hostrt.GOMAXPROCS(old)
	p := linearProgWithMerge()
	cfg := Config{Threads: 8, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}
	run := func(workers int) ([]float32, Stats) {
		m, err := NewMachine(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetHostWorkers(workers)
		defer m.Close()
		rng := rand.New(rand.NewSource(7))
		tuples := make([][]float32, 300)
		for i := range tuples {
			tup := make([]float32, 5)
			for j := range tup {
				tup[j] = float32(rng.NormFloat64())
			}
			tuples[i] = tup
		}
		for e := 0; e < 3; e++ {
			if err := m.RunEpoch(tuples, 32); err != nil {
				t.Fatal(err)
			}
		}
		return m.Model(), m.Stats()
	}
	wantModel, wantStats := run(1)
	for _, w := range []int{2, 4, 8} {
		gotModel, gotStats := run(w)
		for i := range wantModel {
			if math.Float32bits(gotModel[i]) != math.Float32bits(wantModel[i]) {
				t.Fatalf("workers=%d: model[%d] = %v != serial %v", w, i, gotModel[i], wantModel[i])
			}
		}
		if gotStats != wantStats {
			t.Errorf("workers=%d: stats %+v != serial %+v", w, gotStats, wantStats)
		}
	}
}

func TestMachineStaticEstimateMatchesDynamic(t *testing.T) {
	p := handProg()
	cfg := defaultCfg()
	m, err := NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	tuples := make([][]float32, n)
	for i := range tuples {
		tuples[i] = []float32{1, 2, 3, 4, 5}
	}
	if err := m.RunEpoch(tuples, 1); err != nil {
		t.Fatal(err)
	}
	est := p.Estimate(cfg)
	want := est.EpochCycles(n, 1, cfg.Threads)
	if got := m.Stats().Cycles; got != want {
		t.Errorf("dynamic cycles %d != static estimate %d", got, want)
	}
}

func TestAluOps(t *testing.T) {
	cases := []struct {
		op   AluOp
		a, b float32
		want float64
	}{
		{AAdd, 2, 3, 5}, {ASub, 2, 3, -1}, {AMul, 2, 3, 6}, {ADiv, 6, 3, 2},
		{ALt, 1, 2, 1}, {ALt, 2, 1, 0}, {AGt, 2, 1, 1}, {AGt, 1, 2, 0},
		{ASigmoid, 0, 0, 0.5}, {AGaussian, 0, 0, 1}, {ASqrt, 9, 0, 3},
		{ASquare, 3, 0, 9}, {AMov, 7, 1, 7},
	}
	for _, c := range cases {
		got := alu(c.op, c.a, c.b)
		if math.Abs(float64(got)-c.want) > 1e-6 {
			t.Errorf("alu(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestLatencies(t *testing.T) {
	if AAdd.Latency() != 1 || AMul.Latency() != 2 || ADiv.Latency() != 8 {
		t.Error("unexpected latencies")
	}
	if !ASigmoid.IsUnary() || AAdd.IsUnary() {
		t.Error("IsUnary wrong")
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{Threads: 4, ACsPerThread: 3, AUsPerAC: 8}
	if cfg.Lanes() != 24 || cfg.TotalAUs() != 96 {
		t.Errorf("Lanes=%d TotalAUs=%d", cfg.Lanes(), cfg.TotalAUs())
	}
	if err := (Config{}).validate(); err == nil {
		t.Error("zero config should be invalid")
	}
}

func TestProgramValidate(t *testing.T) {
	p := handProg()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.PerTuple = append([]Instr(nil), p.PerTuple...)
	bad.PerTuple[0].Dst = Slot{1000, 4}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range dst accepted")
	}
	bad2 := *p
	bad2.PerTuple = []Instr{{Kind: KReduce, Op: AAdd, Dst: Slot{14, 1}, A: Slot{24, 4}, GroupSize: 10, EStride: 2}}
	if err := bad2.Validate(); err == nil {
		t.Error("reduce overrun accepted")
	}
}

func TestMachineRejectsBadTuple(t *testing.T) {
	m, err := NewMachine(handProg(), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBatch([][]float32{{1, 2}}); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestMachineSetModelWrongSize(t *testing.T) {
	m, err := NewMachine(handProg(), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetModel([]float32{1}); err == nil {
		t.Error("wrong model size accepted")
	}
}

func TestGatherScatterBounds(t *testing.T) {
	p := &Program{
		Slots:     12,
		ModelSlot: Slot{0, 8}, // 4 rows x 2 cols
		InputSlot: Slot{8, 1},
		PerTuple: []Instr{
			{Kind: KGather, Dst: Slot{10, 2}, A: Slot{8, 1}, RowLen: 2},
		},
	}
	m, err := NewMachine(p, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBatch([][]float32{{99}}); err == nil {
		t.Error("gather out of range accepted")
	}
}

func TestExpandAndListing(t *testing.T) {
	p := handProg()
	cfg := defaultCfg()
	ms := Expand(p, cfg)
	if ms.PerTupleMicroOps <= 0 {
		t.Errorf("micro ops = %+v", ms)
	}
	l := Listing(p)
	for _, want := range []string{"ew.mul", "red.add", "per-tuple", "updated-model"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestMoreLanesFewerCycles(t *testing.T) {
	p := &Program{
		Slots:     3000,
		ModelSlot: Slot{0, 1000},
		InputSlot: Slot{1000, 1000},
		PerTuple: []Instr{
			{Kind: KEW, Op: AMul, Dst: Slot{2000, 1000}, A: Slot{0, 1000}, B: Slot{1000, 1000}},
		},
	}
	small := p.Estimate(Config{Threads: 1, ACsPerThread: 1, AUsPerAC: 8})
	big := p.Estimate(Config{Threads: 1, ACsPerThread: 16, AUsPerAC: 8})
	if big.PerTuple >= small.PerTuple {
		t.Errorf("16 ACs (%d cyc) should beat 1 AC (%d cyc)", big.PerTuple, small.PerTuple)
	}
}

func TestStatsSeconds(t *testing.T) {
	s := Stats{Cycles: 150e6}
	if got := s.Seconds(150e6); got != 1 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4}
	for in, want := range cases {
		if got := log2Ceil(in); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
