package experiments

import (
	"fmt"
	"strings"

	"dana/internal/algos"
	"dana/internal/cost"
	"dana/internal/datagen"
)

// --- Table 3 -----------------------------------------------------------

// Table3Row reports one workload's dataset inventory.
type Table3Row struct {
	Name          string
	Algorithm     string
	Topology      []int
	Tuples        int
	Pages32K      int
	SizeMB        float64
	PaperPages32K int
	PaperSizeMB   int
}

// Table3 regenerates the dataset inventory under our page layout.
func Table3(env Env) []Table3Row {
	rows := make([]Table3Row, 0, len(datagen.Workloads))
	for _, w := range datagen.Workloads {
		rows = append(rows, Table3Row{
			Name:          w.Name,
			Algorithm:     string(w.Kind),
			Topology:      w.Topology,
			Tuples:        w.Tuples,
			Pages32K:      w.PagesAt(env.PageSize),
			SizeMB:        w.SizeMBAt(env.PageSize),
			PaperPages32K: w.PaperPages32K,
			PaperSizeMB:   w.PaperSizeMB,
		})
	}
	return rows
}

// --- Table 5 -----------------------------------------------------------

// Table5Row reports modeled absolute runtimes (warm cache).
type Table5Row struct {
	Name                  string
	PGSec, GPSec, DAnASec float64
}

// Table5 regenerates the absolute-runtime table.
func Table5(env Env) ([]Table5Row, error) {
	var rows []Table5Row
	for _, w := range datagen.Workloads {
		st, err := Model(w, env, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Name: w.Name, PGSec: st.PG.TotalSec, GPSec: st.GP.TotalSec, DAnASec: st.DAnA.TotalSec,
		})
	}
	return rows, nil
}

// --- Figures 8, 9, 10: end-to-end speedups ------------------------------

// SpeedupRow is one bar group of Figures 8–10.
type SpeedupRow struct {
	Name     string
	GPvsPG   float64 // MADlib+Greenplum speedup over MADlib+PostgreSQL
	DAnAvsPG float64
	DAnAvsGP float64
}

// ClassSpeedups models one workload class at the given cache setting.
func ClassSpeedups(class string, env Env, warm bool) ([]SpeedupRow, SpeedupRow, error) {
	var ws []datagen.Workload
	switch class {
	case "real":
		ws = datagen.Real()
	case "S/N":
		ws = datagen.SyntheticNominal()
	case "S/E":
		ws = datagen.SyntheticExtensive()
	default:
		return nil, SpeedupRow{}, fmt.Errorf("experiments: unknown class %q", class)
	}
	var rows []SpeedupRow
	var gp, dpg, dgp []float64
	for _, w := range ws {
		st, err := Model(w, env, warm)
		if err != nil {
			return nil, SpeedupRow{}, err
		}
		r := SpeedupRow{
			Name:     w.Name,
			GPvsPG:   st.PG.TotalSec / st.GP.TotalSec,
			DAnAvsPG: st.SpeedupDAnAOverPG(),
			DAnAvsGP: st.SpeedupDAnAOverGP(),
		}
		rows = append(rows, r)
		gp = append(gp, r.GPvsPG)
		dpg = append(dpg, r.DAnAvsPG)
		dgp = append(dgp, r.DAnAvsGP)
	}
	gm := SpeedupRow{Name: "Geomean", GPvsPG: Geomean(gp), DAnAvsPG: Geomean(dpg), DAnAvsGP: Geomean(dgp)}
	return rows, gm, nil
}

// --- Figure 11: Strider ablation ----------------------------------------

// StriderRow compares DAnA with and without Striders (warm cache,
// MADlib+PostgreSQL as baseline 1.0).
type StriderRow struct {
	Name           string
	WithoutStrider float64
	WithStrider    float64
}

// StriderBenefit models the Figure 11 ablation over all 14 workloads.
func StriderBenefit(env Env) ([]StriderRow, StriderRow, error) {
	var rows []StriderRow
	var wo, wi []float64
	for _, w := range datagen.Workloads {
		st, err := Model(w, env, true)
		if err != nil {
			return nil, StriderRow{}, err
		}
		r := StriderRow{
			Name:           w.Name,
			WithoutStrider: st.PG.TotalSec / st.DAnANoStrider.TotalSec,
			WithStrider:    st.SpeedupDAnAOverPG(),
		}
		rows = append(rows, r)
		wo = append(wo, r.WithoutStrider)
		wi = append(wi, r.WithStrider)
	}
	gm := StriderRow{Name: "Geomean", WithoutStrider: Geomean(wo), WithStrider: Geomean(wi)}
	return rows, gm, nil
}

// --- Figure 12: merge-coefficient (thread) sweep -------------------------

// ThreadPoint is one point of the Figure 12 sweep.
type ThreadPoint struct {
	Coef        int
	Threads     int
	Utilization float64 // fraction of available compute units in use
	RelRuntime  float64 // accelerator runtime relative to coef=1
}

// Fig12Workloads lists the four workloads the paper sweeps.
var Fig12Workloads = []string{"Remote Sensing LR", "Remote Sensing SVM", "Netflix", "Patient"}

// ThreadSweep models accelerator runtime (access + execution engine)
// for increasing merge coefficients.
func ThreadSweep(name string, env Env, coefs []int) ([]ThreadPoint, error) {
	w, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	var pts []ThreadPoint
	var base float64
	for _, coef := range coefs {
		c, err := CompileWorkload(w, env, coef)
		if err != nil {
			return nil, err
		}
		cw := c.CostWorkload(env)
		t := cost.DAnAPipelineSec(cw, env.Cost)
		if base == 0 {
			base = t
		}
		pts = append(pts, ThreadPoint{
			Coef:        coef,
			Threads:     c.Design.Engine.Threads,
			Utilization: c.Design.Utilization,
			RelRuntime:  t / base,
		})
	}
	return pts, nil
}

// --- Figure 13: Greenplum segment sweep ----------------------------------

// SegmentRow is one workload's sweep, normalized to 8 segments.
type SegmentRow struct {
	Name string
	// Relative runtime speedup vs the 8-segment configuration, for
	// PostgreSQL (1 segment), 4, 8, and 16 segments.
	PG, Seg4, Seg8, Seg16 float64
}

// SegmentSweep models Figure 13 over the public datasets.
func SegmentSweep(env Env) ([]SegmentRow, SegmentRow, error) {
	var rows []SegmentRow
	var g1, g4, g16 []float64
	for _, w := range datagen.Real() {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, SegmentRow{}, err
		}
		cw := c.CostWorkload(env)
		t := func(segments int) float64 {
			if segments <= 1 {
				return cost.MADlibPostgres(cw, env.Cost, true).TotalSec
			}
			return cost.MADlibGreenplum(cw, env.Cost, segments, true).TotalSec
		}
		ref := t(8)
		r := SegmentRow{Name: w.Name, PG: ref / t(1), Seg4: ref / t(4), Seg8: 1, Seg16: ref / t(16)}
		rows = append(rows, r)
		g1 = append(g1, r.PG)
		g4 = append(g4, r.Seg4)
		g16 = append(g16, r.Seg16)
	}
	gm := SegmentRow{Name: "Geomean", PG: Geomean(g1), Seg4: Geomean(g4), Seg8: 1, Seg16: Geomean(g16)}
	return rows, gm, nil
}

// --- Figure 14: bandwidth sweep -------------------------------------------

// BandwidthRow is one workload's FPGA-time speedup at each bandwidth
// multiplier, relative to the baseline bandwidth.
type BandwidthRow struct {
	Name     string
	Speedups map[float64]float64
}

// BandwidthScales are the paper's sweep points.
var BandwidthScales = []float64{0.25, 0.5, 1, 2, 4}

// BandwidthSweep models Figure 14 over all workloads.
func BandwidthSweep(env Env) ([]BandwidthRow, error) {
	var rows []BandwidthRow
	for _, w := range datagen.Workloads {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		cw := c.CostWorkload(env)
		base := cost.DAnAPipelineSec(cw, env.Cost)
		r := BandwidthRow{Name: w.Name, Speedups: map[float64]float64{}}
		for _, sc := range BandwidthScales {
			p := env.Cost
			p.BandwidthScale = sc
			r.Speedups[sc] = base / cost.DAnAPipelineSec(cw, p)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// --- Figure 15: external libraries ----------------------------------------

// ExtLibRow compares one workload across MADlib, the external
// libraries, and DAnA.
type ExtLibRow struct {
	Name string
	Algo string

	// End-to-end seconds.
	PGSec, GPSec, DAnASec       float64
	LiblinearSec, DimmWittedSec float64 // NaN where unsupported

	// Compute-only seconds.
	PGComputeSec, LiblinearComputeSec, DimmWittedComputeSec, DAnAComputeSec float64

	// Phase breakdowns (Figure 15a), as fractions of the library total.
	LiblinearBreakdown, DimmWittedBreakdown cost.Breakdown
}

// Fig15Workloads lists the workloads §7.3 compares.
var Fig15Workloads = []string{
	"Remote Sensing LR", "WLAN", "S/N Logistic", // logistic
	"Remote Sensing SVM", "S/N SVM", // svm
	"Patient", "Blog Feedback", "S/N Linear", // linear
}

// ExternalLibraries models Figure 15. As in §7.3, every system runs
// exactly one epoch with identical hyper-parameters ("we maintain the
// same hyper-parameters ... to compare runtime of 1 epoch across all
// the systems"), which is what makes the export phase dominate the
// library pipelines (Figure 15a).
func ExternalLibraries(env Env) ([]ExtLibRow, error) {
	var rows []ExtLibRow
	for _, name := range Fig15Workloads {
		w, err := datagen.ByName(name)
		if err != nil {
			return nil, err
		}
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		cw := c.CostWorkload(env)
		cw.Epochs = 1
		cw.DAnAEpochs = 0
		pg := cost.MADlibPostgres(cw, env.Cost, true)
		gp := cost.MADlibGreenplum(cw, env.Cost, env.Segments, true)
		dana := cost.DAnA(cw, env.Cost, true)
		lib := cost.ExternalLibrary(cost.Liblinear, string(w.Kind), cw, env.Cost)
		dw := cost.ExternalLibrary(cost.DimmWitted, string(w.Kind), cw, env.Cost)
		rows = append(rows, ExtLibRow{
			Name: w.Name, Algo: string(w.Kind),
			PGSec: pg.TotalSec, GPSec: gp.TotalSec, DAnASec: dana.TotalSec,
			LiblinearSec: lib.TotalSec, DimmWittedSec: dw.TotalSec,
			PGComputeSec:         pg.ComputeSec,
			LiblinearComputeSec:  lib.ComputeSec,
			DimmWittedComputeSec: dw.ComputeSec,
			DAnAComputeSec:       cost.DAnAPipelineSec(cw, env.Cost),
			LiblinearBreakdown:   lib,
			DimmWittedBreakdown:  dw,
		})
	}
	return rows, nil
}

// --- Figure 16: TABLA comparison -------------------------------------------

// TablaRow compares DAnA's compute time against the TABLA baseline.
type TablaRow struct {
	Name    string
	Speedup float64 // TABLA time / DAnA time (compute)
}

// Fig16Workloads are the paper's 10 (real + S/N) workloads.
func Fig16Workloads() []datagen.Workload {
	return append(append([]datagen.Workload{}, datagen.Real()...), datagen.SyntheticNominal()...)
}

// tablaPipelineOverlap models TABLA's dataflow pipelining across
// consecutive tuples: although single-threaded, its statically scheduled
// datapath overlaps ~4 tuple computations in flight, which our
// sequential single-thread estimate does not capture.
const tablaPipelineOverlap = 4.0

// TablaComparison models Figure 16: the ratio of execution-engine
// compute time (TABLA's best single-threaded pipelined design vs DAnA's
// multi-threaded one), the "DAnA Compute" comparison of §7.3.
func TablaComparison(env Env) ([]TablaRow, TablaRow, error) {
	var rows []TablaRow
	var sp []float64
	for _, w := range Fig16Workloads() {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, TablaRow{}, err
		}
		cw := c.CostWorkload(env)
		tabla := float64(cw.SingleThreadEpochCycles) / tablaPipelineOverlap
		r := TablaRow{Name: w.Name, Speedup: tabla / float64(cw.EpochCycles)}
		rows = append(rows, r)
		sp = append(sp, r.Speedup)
	}
	return rows, TablaRow{Name: "Geomean", Speedup: Geomean(sp)}, nil
}

// --- formatting helpers -----------------------------------------------------

// FormatSeconds renders a duration the way Table 5 does.
func FormatSeconds(sec float64) string {
	switch {
	case sec < 60:
		return fmt.Sprintf("%.2fs", sec)
	case sec < 3600:
		m := int(sec) / 60
		return fmt.Sprintf("%dm %ds", m, int(sec)%60)
	default:
		h := int(sec) / 3600
		m := (int(sec) % 3600) / 60
		return fmt.Sprintf("%dh %dm", h, m)
	}
}

// Pad right-pads s to width.
func Pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

var _ = algos.KindLinear // keep the import for kind helpers used above
