package lint

// All returns the danalint analyzer suite in its canonical order. The
// first four encode repo invariants discovered (expensively) at runtime
// by PRs 1–4; shadow and nilcheck substitute for the x/tools vet
// analyzers of the same names, which hermetic builds cannot install.
// The final three (PR 10) are interprocedural: they consume the
// module-wide call graph and summaries on Pass.Mod.
func All() []*Analyzer {
	return []*Analyzer{
		PinBalance,
		Determinism,
		ObsGuard,
		HotAlloc,
		FaultErrors,
		BackendReg,
		Shadow,
		NilCheck,
		TenantFlow,
		HotCall,
		GoLifecycle,
	}
}

// ByName resolves analyzer names (comma-separated lists in the driver).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
