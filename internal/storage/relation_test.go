package storage

import (
	"math/rand"
	"testing"
)

func makeRows(n, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, cols)
		for j := range r {
			r[j] = float64(float32(rng.NormFloat64()))
		}
		rows[i] = r
	}
	return rows
}

func TestRelationInsertScan(t *testing.T) {
	s := NumericSchema(9)
	r := NewRelation("toy", s, PageSize8K)
	rows := makeRows(1000, 10, 1)
	if err := r.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if r.NumTuples() != 1000 {
		t.Fatalf("NumTuples = %d", r.NumTuples())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := r.Scan(func(tid TID, vals []float64) error {
		for j := range vals {
			if vals[j] != rows[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, vals[j], rows[i][j])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1000 {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestRelationTuplesPerPage(t *testing.T) {
	// 54 features + label (Remote Sensing topology): 55*4=220 data bytes,
	// +24 header = 244, aligned to 248, +4 line pointer = 252.
	s := NumericSchema(54)
	r := NewRelation("rs", s, PageSize32K)
	want := (PageSize32K - PageHeaderSize) / 252
	if got := r.TuplesPerPage(); got != want {
		t.Errorf("TuplesPerPage = %d, want %d", got, want)
	}
	// Confirm experimentally.
	rows := makeRows(2*want, 55, 2)
	if err := r.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	p0, err := r.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.NumItems() != want {
		t.Errorf("page 0 holds %d tuples, want %d", p0.NumItems(), want)
	}
	if r.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", r.NumPages())
	}
}

func TestRelationGet(t *testing.T) {
	s := NumericSchema(3)
	r := NewRelation("g", s, PageSize8K)
	tid, err := r.Insert([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := r.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	if vals[3] != 4 {
		t.Errorf("vals = %v", vals)
	}
	if _, err := r.Get(TID{Page: 99}); err == nil {
		t.Error("Get on missing page should fail")
	}
}

func TestRelationPageOutOfRange(t *testing.T) {
	r := NewRelation("e", NumericSchema(1), PageSize8K)
	if _, err := r.Page(0); err == nil {
		t.Error("Page(0) on empty relation should fail")
	}
}

func TestRelationTooWideTuple(t *testing.T) {
	s := NumericSchema(4096) // 16 KB+ of data cannot fit an 8 KB page
	r := NewRelation("wide", s, PageSize8K)
	if _, err := r.Insert(make([]float64, 4097)); err == nil {
		t.Error("oversized tuple should fail")
	}
}

func TestRelationSizeBytes(t *testing.T) {
	s := NumericSchema(1)
	r := NewRelation("sz", s, PageSize8K)
	if err := r.InsertBatch(makeRows(500, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if r.SizeBytes() != int64(r.NumPages())*PageSize8K {
		t.Errorf("SizeBytes = %d", r.SizeBytes())
	}
}

func TestDeleteAndVacuum(t *testing.T) {
	s := NumericSchema(2)
	r := NewRelation("dv", s, PageSize8K)
	if err := r.InsertBatch(makeRows(600, 3, 5)); err != nil {
		t.Fatal(err)
	}
	before := r.NumPages()
	// Delete every other tuple on the first two pages.
	deleted := 0
	for pn := uint32(0); pn < 2; pn++ {
		pg, err := r.Page(int(pn))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pg.NumItems(); i += 2 {
			if err := r.Delete(TID{Page: pn, Item: uint16(i)}); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	if r.NumTuples() != 600-deleted {
		t.Fatalf("NumTuples = %d, want %d", r.NumTuples(), 600-deleted)
	}
	if err := r.Delete(TID{Page: 0, Item: 0}); err == nil {
		t.Error("double delete accepted")
	}
	// Scan skips dead tuples.
	n := 0
	if err := r.Scan(func(TID, []float64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 600-deleted {
		t.Fatalf("scan saw %d tuples", n)
	}
	// Vacuum compacts.
	if err := r.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if r.NumTuples() != 600-deleted {
		t.Fatalf("post-vacuum NumTuples = %d", r.NumTuples())
	}
	if r.NumPages() > before {
		t.Errorf("vacuum grew the heap: %d -> %d pages", before, r.NumPages())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	pg, _ := r.Page(0)
	for i := 0; i < pg.NumItems(); i++ {
		id, err := pg.ItemID(i)
		if err != nil {
			t.Fatal(err)
		}
		if id.Flags != LPNormal {
			t.Fatalf("dead tuple survived vacuum at item %d", i)
		}
	}
}
