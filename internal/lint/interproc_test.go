package lint

// Meta-tests for the interprocedural layer (callgraph.go, summary.go,
// taint.go) and the three analyzers built on it. The mutation tests
// plant the exact bug class each analyzer exists for in a scratch
// module — an allocation hidden two calls below a hotpath, a tenant
// registry stored into a package var, an unjoined go statement — and
// require that exactly the matching analyzer fires (and stays silent on
// the fixed variant). The property test pins determinism: two
// independent loads and runs must produce byte-identical findings.

import (
	"strings"
	"testing"
	"time"
)

// interprocSuite is the three analyzers that consume Pass.Mod.
func interprocSuite() []*Analyzer {
	return []*Analyzer{TenantFlow, HotCall, GoLifecycle}
}

// analyzeScratchSuite runs several analyzers over a scratch module.
func analyzeScratchSuite(t *testing.T, files map[string]string, suite []*Analyzer) []Finding {
	t.Helper()
	root := writeScratchModule(t, files)
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// requireExactly asserts every finding came from one analyzer and at
// least one finding exists.
func requireExactly(t *testing.T, findings []Finding, analyzer string) {
	t.Helper()
	if len(findings) == 0 {
		t.Fatalf("expected %s to fire, got no findings", analyzer)
	}
	for _, f := range findings {
		if f.Analyzer != analyzer {
			t.Fatalf("expected only %s findings, got %s", analyzer, f)
		}
	}
}

// --- hotcall: allocation hidden two calls below a hotpath ---

const hiddenAllocBuggy = `package engine

type page struct{ vals []float32 }

func refill(n int) []float32 { return make([]float32, n) }

func grow(p *page, n int) { p.vals = refill(n) }

//dana:hotpath
func drain(p *page, n int) {
	grow(p, n)
}
`

const hiddenAllocFixed = `package engine

type page struct{ vals []float32 }

func reuse(p *page) { p.vals = p.vals[:0] }

//dana:hotpath
func drain(p *page, n int) {
	reuse(p)
}
`

func TestHotCallCatchesAllocationTwoCallsDeep(t *testing.T) {
	buggy := analyzeScratchSuite(t, map[string]string{
		"engine/page.go": hiddenAllocBuggy,
	}, interprocSuite())
	requireExactly(t, buggy, "hotcall")
	if !strings.Contains(buggy[0].Message, "refill") || !strings.Contains(buggy[0].Message, "make") {
		t.Fatalf("finding should render the allocation chain, got: %s", buggy[0].Message)
	}

	fixed := analyzeScratchSuite(t, map[string]string{
		"engine/page.go": hiddenAllocFixed,
	}, interprocSuite())
	if len(fixed) != 0 {
		t.Fatalf("fixed variant still flagged: %v", fixed)
	}
}

// --- tenantflow: tenant registry stored into a package var ---

var scratchTenantDeps = map[string]string{
	"runtime/system.go": "package runtime\n\ntype System struct{ ID int }\n",
	"obs/registry.go":   "package obs\n\ntype Registry struct{ N int }\n",
	"fault/injector.go": "package fault\n\ntype Injector struct{ N int }\n",
}

const tenantLeakBuggy = `package server

import (
	"scratch/fault"
	"scratch/obs"
	"scratch/runtime"
)

type tenant struct {
	sys *runtime.System
	reg *obs.Registry
	inj *fault.Injector
}

var debugReg *obs.Registry

func leak(t *tenant) {
	debugReg = t.reg
}
`

const tenantLeakFixed = `package server

import (
	"scratch/fault"
	"scratch/obs"
	"scratch/runtime"
)

type tenant struct {
	sys *runtime.System
	reg *obs.Registry
	inj *fault.Injector
}

func tenantObs(t *tenant) *obs.Registry {
	return t.reg
}
`

func TestTenantFlowCatchesRegistryStoredInPackageVar(t *testing.T) {
	files := map[string]string{"server/server.go": tenantLeakBuggy}
	for k, v := range scratchTenantDeps {
		files[k] = v
	}
	buggy := analyzeScratchSuite(t, files, interprocSuite())
	requireExactly(t, buggy, "tenantflow")
	if !strings.Contains(buggy[0].Message, "debugReg") {
		t.Fatalf("finding should name the package-level var, got: %s", buggy[0].Message)
	}

	files["server/server.go"] = tenantLeakFixed
	fixed := analyzeScratchSuite(t, files, interprocSuite())
	if len(fixed) != 0 {
		t.Fatalf("fixed variant (accessor return) still flagged: %v", fixed)
	}
}

// --- golifecycle: unjoined go func ---

const unjoinedGoBuggy = `package server

func fire(n int) {
	for i := 0; i < n; i++ {
		go func() {
			_ = i + 1
		}()
	}
}
`

const unjoinedGoFixed = `package server

import "sync"

func fire(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i + 1
		}()
	}
	wg.Wait()
}
`

func TestGoLifecycleCatchesUnjoinedGoroutine(t *testing.T) {
	buggy := analyzeScratchSuite(t, map[string]string{
		"server/server.go": unjoinedGoBuggy,
	}, interprocSuite())
	requireExactly(t, buggy, "golifecycle")

	fixed := analyzeScratchSuite(t, map[string]string{
		"server/server.go": unjoinedGoFixed,
	}, interprocSuite())
	if len(fixed) != 0 {
		t.Fatalf("fixed variant still flagged: %v", fixed)
	}
}

// --- summary layer unit tests ---

const mutualRecursion = `package engine

func pingAlloc(n int) []int {
	if n == 0 {
		return nil
	}
	return pongAlloc(n - 1)
}

func pongAlloc(n int) []int {
	buf := make([]int, n)
	_ = pingAlloc(n - 1)
	return buf
}

func pingClean(n int) int {
	if n == 0 {
		return 0
	}
	return pongClean(n - 1)
}

func pongClean(n int) int {
	return pingClean(n - 1)
}
`

func TestSummaryFixedPointOverRecursion(t *testing.T) {
	root := writeScratchModule(t, map[string]string{"engine/rec.go": mutualRecursion})
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs)
	get := func(name string) *Summary {
		for _, id := range m.FuncIDs() {
			if strings.HasSuffix(id, "."+name) {
				return m.Summaries[id]
			}
		}
		t.Fatalf("no summary for %s", name)
		return nil
	}
	// pongAlloc allocates directly; pingAlloc reaches it through the
	// recursion cycle. Note pingAlloc's only call is inside a non-cold
	// position (the return), so the edge propagates.
	if s := get("pongAlloc"); !s.TransAllocs {
		t.Fatalf("pongAlloc should be transitively allocating: %+v", s)
	}
	if s := get("pingAlloc"); !s.TransAllocs {
		t.Fatalf("pingAlloc should inherit allocation through the cycle: %+v", s)
	}
	if s := get("pingClean"); s.TransAllocs {
		t.Fatalf("pingClean should stay allocation-free: %s", s.TransAllocDesc)
	}
	if s := get("pongClean"); s.TransAllocs {
		t.Fatalf("pongClean should stay allocation-free: %s", s.TransAllocDesc)
	}
}

const escapeChain = `package helper

var global *int

func sinkDirect(p *int) { global = p }

func sinkViaHop(p *int) { sinkDirect(p) }
`

func TestEscapeSummariesPropagateThroughCallChain(t *testing.T) {
	root := writeScratchModule(t, map[string]string{"helper/helper.go": escapeChain})
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs)
	for _, name := range []string{"sinkDirect", "sinkViaHop"} {
		found := false
		for _, id := range m.FuncIDs() {
			if strings.HasSuffix(id, "."+name) {
				if why, ok := m.Summaries[id].Escapes[0]; !ok {
					t.Errorf("%s: parameter 0 should escape", name)
				} else if !strings.Contains(why, "global") && !strings.Contains(why, "sinkDirect") {
					t.Errorf("%s: escape description should trace the path, got %q", name, why)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("no summary for %s", name)
		}
	}
}

const chaFanOut = `package engine

type op interface{ apply(n int) int }

type addOp struct{ k int }

func (a addOp) apply(n int) int { return n + a.k }

type allocOp struct{ buf []int }

func (a *allocOp) apply(n int) int {
	a.buf = make([]int, n)
	return n
}

func runOp(o op, n int) int { return o.apply(n) }
`

func TestCHAFanOutOverInterfaceCall(t *testing.T) {
	root := writeScratchModule(t, map[string]string{"engine/op.go": chaFanOut})
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModule(pkgs)
	var site *CallSite
	for _, id := range m.FuncIDs() {
		if strings.HasSuffix(id, ".runOp") {
			for _, s := range m.Funcs[id].Calls {
				site = s
			}
		}
	}
	if site == nil {
		t.Fatal("no call site found in runOp")
	}
	if !site.Dynamic {
		t.Fatalf("interface call should be dynamic: %+v", site)
	}
	if len(site.Callees) != 2 {
		t.Fatalf("CHA should fan out to both implementations, got %v", site.Callees)
	}
}

func TestExternAllowlistNormalization(t *testing.T) {
	cases := []struct {
		id   string
		free bool
	}{
		{"time.Now", true},
		{"(*sync.Mutex).Lock", true},
		{"(*sync.WaitGroup).Wait", true},
		{"sync/atomic.AddInt64", true},
		{"math.Float32bits", true},
		{"(encoding/binary.littleEndian).Uint64", true},
		{"fmt.Sprintf", false},
		{"strconv.FormatFloat", false},
		{"(*strings.Builder).WriteString", false},
	}
	for _, tc := range cases {
		if got := externAllocs(tc.id) == ""; got != tc.free {
			t.Errorf("externAllocs(%q): allocation-free=%v, want %v", tc.id, got, tc.free)
		}
	}
}

func TestCollectSuppressionRecords(t *testing.T) {
	const src = `package engine

func f() []int {
	//danalint:ignore hotalloc -- amortized growth, audited
	a := make([]int, 1)
	//danalint:ignore hotcall
	b := make([]int, 2)
	return append(a, b...)
}
`
	root := writeScratchModule(t, map[string]string{"engine/s.go": src})
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	recs := CollectSuppressionRecords(pkgs)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Analyzer != "hotalloc" || recs[0].Reason != "amortized growth, audited" {
		t.Fatalf("bad first record: %+v", recs[0])
	}
	if recs[1].Analyzer != "hotcall" || recs[1].Reason != "" {
		t.Fatalf("second record should be reason-less: %+v", recs[1])
	}
}

// --- determinism property test ---

// TestAnalyzerDeterminism loads and analyzes the same sources twice
// with completely independent loaders and requires byte-identical
// rendered findings — guarding the summary fixed point and CHA caches
// against map-iteration nondeterminism.
func TestAnalyzerDeterminism(t *testing.T) {
	files := map[string]string{
		"engine/page.go":   hiddenAllocBuggy,
		"server/server.go": tenantLeakBuggy + "\nfunc fire() {\n\tgo func() { _ = 1 }()\n}\n",
	}
	for k, v := range scratchTenantDeps {
		files[k] = v
	}
	root := writeScratchModule(t, files)
	render := func() string {
		ld, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := ld.Load("./...")
		if err != nil {
			t.Fatal(err)
		}
		findings, err := RunAnalyzers(pkgs, All())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range findings {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("determinism corpus produced no findings; the comparison is vacuous")
	}
	for i := 0; i < 2; i++ {
		if again := render(); again != first {
			t.Fatalf("run %d diverged:\n--- first ---\n%s--- again ---\n%s", i+2, first, again)
		}
	}
}

// --- call-graph construction budget ---

// TestCallGraphBudget keeps danalint viable as a per-PR gate: building
// the module index (call graph + summaries + lock edges) for the lint
// package's own sources must stay well under a second. The loader is
// excluded — parsing and typechecking dominate and are measured by the
// lint CI job as a whole.
func TestCallGraphBudget(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./internal/server/...", "./internal/runtime/...", "./internal/weaving/...")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m := BuildModule(pkgs)
	elapsed := time.Since(start)
	if len(m.FuncIDs()) == 0 {
		t.Fatal("module index is empty")
	}
	const budget = 5 * time.Second
	if elapsed > budget {
		t.Fatalf("BuildModule took %v for %d functions, budget %v", elapsed, len(m.FuncIDs()), budget)
	}
	t.Logf("BuildModule: %d functions, %d lock edges in %v", len(m.FuncIDs()), len(m.LockEdges), elapsed)
}

func BenchmarkBuildModule(b *testing.B) {
	ld, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := ld.Load("./internal/server/...", "./internal/runtime/...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildModule(pkgs)
	}
}
