// Package accessengine implements DAnA's multi-threaded access engine
// (paper §5.1, Figure 5): page buffers each served by a Strider that
// unpacks raw database pages, plus the conversion of extracted column
// bytes into the float32 values the execution engine consumes.
//
// Page-level parallelism is explicit: with S striders, S pages unpack
// concurrently, so the access-engine cycles for a page group are the
// maximum over its striders rather than the sum — the property that
// lets extraction interleave with execution (§5.1.1).
package accessengine

import (
	"encoding/binary"
	"fmt"
	"math"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/storage"
	"dana/internal/strider"
)

// Engine is a configured access engine for one relation schema and page
// layout.
type Engine struct {
	Layout      strider.PageLayout
	Schema      *storage.Schema
	NumStriders int

	prog []strider.Instr
	cfg  strider.Config
	vms  []*strider.VM

	// allF32 marks a packed all-float4 schema: the tuple payload is a
	// flat little-endian float32 stream, decodable without the per-column
	// type dispatch.
	allF32 bool

	faults *fault.Injector

	stats Stats

	// Observability handles (SetObs); nil handles are no-ops. Charged by
	// the Collector alongside stats, i.e. on the coordinating goroutine
	// in page order.
	obsPages  *obs.Counter
	obsTuples *obs.Counter
	obsBytes  *obs.Counter
	obsInstrs *obs.Counter
	obsCyc    *obs.Counter
	obsCycTot *obs.Counter
}

// Stats counts access-engine activity.
type Stats struct {
	Pages        int64
	Tuples       int64
	Bytes        int64 // payload bytes emitted to the execution engine
	Instructions int64 // strider VM instructions retired
	Cycles       int64 // strider cycles (max across concurrent striders per group)
	TotalCycles  int64 // sum of strider cycles across all striders (utilization)
}

// Utilization returns the mean fraction of the numStriders Striders
// kept busy under the group-max cycle model: total work over
// numStriders × the modeled (parallel) time.
func (s Stats) Utilization(numStriders int) float64 {
	if s.Cycles == 0 || numStriders < 1 {
		return 0
	}
	return float64(s.TotalCycles) / (float64(s.Cycles) * float64(numStriders))
}

// SetObs registers the engine's counters with an observability registry
// (obs.Noop disables).
func (e *Engine) SetObs(r *obs.Registry) {
	e.obsPages = r.Counter(obs.StriderPages)
	e.obsTuples = r.Counter(obs.StriderTuples)
	e.obsBytes = r.Counter(obs.StriderBytes)
	e.obsInstrs = r.Counter(obs.StriderInstrs)
	e.obsCyc = r.Counter(obs.StriderCycles)
	e.obsCycTot = r.Counter(obs.StriderCyclesTotal)
}

// SetFaults attaches a fault-injection schedule: ExtractPage then asks
// the injector whether the (strider, page) walk traps (nil detaches).
func (e *Engine) SetFaults(in *fault.Injector) { e.faults = in }

// New builds the engine: it generates the Strider program for the page
// layout (compiler step) and instantiates the page-buffer/Strider pairs.
func New(layout strider.PageLayout, schema *storage.Schema, numStriders int) (*Engine, error) {
	prog, cfg, err := strider.Generate(layout)
	if err != nil {
		return nil, err
	}
	return newWith(layout, schema, numStriders, prog, cfg)
}

// NewInnoDB builds an access engine for MySQL/InnoDB-style pages: the
// Striders run the chain-walking program instead of the line-pointer
// walker, demonstrating the ISA's cross-engine portability (§5.1.2).
func NewInnoDB(pageSize int, schema *storage.Schema, numStriders int) (*Engine, error) {
	prog, cfg, err := strider.GenerateInnoDB(strider.InnoDBLayout(pageSize, schema))
	if err != nil {
		return nil, err
	}
	return newWith(strider.PageLayout{PageSize: pageSize}, schema, numStriders, prog, cfg)
}

func newWith(layout strider.PageLayout, schema *storage.Schema, numStriders int, prog []strider.Instr, cfg strider.Config) (*Engine, error) {
	if numStriders < 1 {
		return nil, fmt.Errorf("accessengine: need at least one strider, got %d", numStriders)
	}
	e := &Engine{Layout: layout, Schema: schema, NumStriders: numStriders, prog: prog, cfg: cfg}
	e.allF32 = schema.DataWidth() == 4*schema.NumCols()
	for i, col := range schema.Cols {
		if col.Type != storage.TFloat32 || schema.ColOffset(i) != 4*i {
			e.allF32 = false
			break
		}
	}
	for i := 0; i < numStriders; i++ {
		vm := strider.NewVM(prog, cfg)
		vm.Reserve(layout.PageSize)
		e.vms = append(e.vms, vm)
	}
	return e, nil
}

// Program returns the generated Strider program (for the catalog).
func (e *Engine) Program() []strider.Instr { return e.prog }

// Config returns the Strider configuration (for the catalog).
func (e *Engine) Config() strider.Config { return e.cfg }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Deformat converts one tuple's payload bytes into float32 values, one
// per column (ints converted to float; float8 narrowed). This is the
// "transform user data into a floating point format" step of §6.2.
//
//dana:hotpath
func Deformat(schema *storage.Schema, data []byte, dst []float32) ([]float32, error) {
	if len(data) < schema.DataWidth() {
		return dst, fmt.Errorf("accessengine: payload %d bytes, schema needs %d", len(data), schema.DataWidth())
	}
	for i, col := range schema.Cols {
		off := schema.ColOffset(i)
		switch col.Type {
		case storage.TFloat32:
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(data[off:])))
		case storage.TFloat64:
			dst = append(dst, float32(math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))))
		case storage.TInt32:
			dst = append(dst, float32(int32(binary.LittleEndian.Uint32(data[off:]))))
		case storage.TInt64:
			dst = append(dst, float32(int64(binary.LittleEndian.Uint64(data[off:]))))
		default:
			return dst, fmt.Errorf("accessengine: column %q has unsupported type", col.Name)
		}
	}
	return dst, nil
}

// PageResult is one page's extraction output: the tuple values live in a
// single flat arena (Data) with one row view per tuple (Rows), avoiding
// a per-tuple allocation. Cycles and Bytes carry the modeled Strider
// counters so stats can be charged later — and deterministically — by a
// Collector, independent of which host goroutine ran the extraction.
//
// When Arena is set, Data extents that outgrow their current capacity
// are carved from that slab instead of the heap (the per-channel
// zero-copy path); Data capacity is still reused first, so a recycled
// PageResult touches the arena only when a page needs a larger extent.
type PageResult struct {
	PageNo int
	Rows   [][]float32
	Data   []float32
	Arena  *Arena // optional slab backing Data (nil = heap)
	Cycles int64
	Bytes  int64
	Steps  int64 // strider VM instructions retired on this page
	WalkNs int64 // host wall-clock of the walk (observability only, never modeled)
}

// ExtractPage runs the page through Strider vmIdx and deformats the
// emitted tuples into res, reusing res.Data/res.Rows capacity. It does
// not touch the engine's stats (see Collector); calls are safe
// concurrently as long as each goroutine uses a distinct vmIdx — the
// host-parallel analogue of the S independent Striders.
//
//dana:hotpath
func (e *Engine) ExtractPage(vmIdx int, page storage.Page, res *PageResult) error {
	if err := e.faults.TrapFault(vmIdx, res.PageNo); err != nil {
		return err
	}
	vm := e.vms[vmIdx]
	if err := vm.Run(page); err != nil {
		return fmt.Errorf("accessengine: strider %d, page %d: %w", vmIdx, res.PageNo, err)
	}
	out := vm.Out()
	w := e.Schema.DataWidth()
	if len(out)%w != 0 {
		return fmt.Errorf("accessengine: strider emitted %d bytes, not a multiple of tuple width %d", len(out), w)
	}
	n := len(out) / w
	cols := e.Schema.NumCols()
	total := n * cols
	data := res.Data[:0]
	if cap(data) < total {
		if res.Arena != nil {
			data = res.Arena.Alloc(total)
		} else {
			//danalint:ignore hotalloc -- capacity-guarded growth for arena-less callers
			data = make([]float32, 0, total)
		}
	}
	if e.allF32 {
		// Packed float4 schema: the payload is one flat little-endian
		// float32 stream, so the page decodes in a single pass.
		data = data[:total]
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(out[i*4 : i*4+4]))
		}
	} else {
		for i := 0; i < n; i++ {
			var err error
			data, err = Deformat(e.Schema, out[i*w:(i+1)*w], data)
			if err != nil {
				return err
			}
		}
	}
	// Build the row views only after every append: the arena's backing
	// array is final now.
	rows := res.Rows[:0]
	if cap(rows) < n {
		//danalint:ignore hotalloc -- capacity-guarded growth, reused once recycled
		rows = make([][]float32, 0, n)
	}
	for i := 0; i < n; i++ {
		rows = append(rows, data[i*cols:(i+1)*cols:(i+1)*cols])
	}
	res.Data = data
	res.Rows = rows
	res.Cycles = vm.Cycles()
	res.Bytes = int64(len(out))
	res.Steps = vm.Steps()
	return nil
}

// Collector folds a page-ordered stream of PageResults into the engine's
// counters under the concurrent-strider cycle model: each consecutive
// group of NumStriders pages unpacks in parallel, so the group charges
// the maximum strider time in the group; per-page totals accumulate
// unconditionally. Feeding results in page order makes the charged
// cycles independent of host scheduling.
type Collector struct {
	e    *Engine
	fill int
	max  int64
}

// NewCollector starts a stats collection (one per page stream).
func (e *Engine) NewCollector() *Collector { return &Collector{e: e} }

// Reset re-arms the collector for a new page stream, discarding any
// group in flight (used when reusing one collector across epochs; a
// Flush already leaves the collector reset).
func (c *Collector) Reset() {
	c.fill = 0
	c.max = 0
}

// Add charges one page's counters, in page order.
func (c *Collector) Add(r *PageResult) {
	e := c.e
	st := &e.stats
	st.Pages++
	st.Tuples += int64(len(r.Rows))
	st.Bytes += r.Bytes
	st.Instructions += r.Steps
	st.TotalCycles += r.Cycles
	e.obsPages.Inc()
	e.obsTuples.Add(int64(len(r.Rows)))
	e.obsBytes.Add(r.Bytes)
	e.obsInstrs.Add(r.Steps)
	e.obsCycTot.Add(r.Cycles)
	if r.Cycles > c.max {
		c.max = r.Cycles
	}
	c.fill++
	if c.fill == c.e.NumStriders {
		c.flushGroup()
	}
}

func (c *Collector) flushGroup() {
	c.e.stats.Cycles += c.max
	c.e.obsCyc.Add(c.max)
	c.fill, c.max = 0, 0
}

// Flush charges a trailing partial group.
func (c *Collector) Flush() {
	if c.fill > 0 {
		c.flushGroup()
	}
}

// ProcessPage unpacks one page through a single Strider and returns the
// extracted tuples as float32 records. It charges the page's own cycles
// to Stats.Cycles, so the single-page and batch entry points agree.
func (e *Engine) ProcessPage(page storage.Page) ([][]float32, error) {
	var res PageResult
	if err := e.ExtractPage(0, page, &res); err != nil {
		return nil, err
	}
	c := e.NewCollector()
	c.Add(&res)
	c.Flush()
	return res.Rows, nil
}

// ProcessPages unpacks a batch of pages across the striders. Pages are
// assigned round-robin; the charged cycle cost of each group of
// NumStriders pages is the maximum strider time in the group (they run
// concurrently), summed over groups.
func (e *Engine) ProcessPages(pages []storage.Page) ([][]float32, error) {
	var all [][]float32
	c := e.NewCollector()
	for i, pg := range pages {
		var res PageResult
		if err := e.ExtractPage(i%e.NumStriders, pg, &res); err != nil {
			return nil, err
		}
		c.Add(&res)
		all = append(all, res.Rows...)
	}
	c.Flush()
	return all, nil
}

// EstimatePageCycles returns the static Strider cycle cost of unpacking
// one page holding n tuples of the schema: the loop body is 7
// instructions plus the emit cycles (1 per 8 payload bytes), plus the 4
// header instructions.
func (e *Engine) EstimatePageCycles(tuplesPerPage int) int64 {
	return PageCycles(e.Schema, tuplesPerPage)
}

// PageCycles is EstimatePageCycles without an Engine instance (used by
// the cost model on full-size workloads).
func PageCycles(schema *storage.Schema, tuplesPerPage int) int64 {
	emit := int64((schema.DataWidth() + 7) / 8)
	return 4 + int64(tuplesPerPage)*(7+emit)
}
