// Package storage implements a PostgreSQL-compatible heap page layout:
// slotted pages with a 24-byte page header, an array of 4-byte line
// pointers growing downward from the header, and tuple data growing upward
// from the end of the page (or from the special space, when present).
//
// The layout deliberately mirrors PostgreSQL's so that the Strider ISA
// (internal/strider) has real page headers, line pointers, and tuple
// headers to chase, exactly as in the paper's Figure 6.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Page geometry constants, mirroring PostgreSQL's bufpage.h.
const (
	// PageHeaderSize is the fixed size of the page header:
	// pd_lsn (8) + pd_checksum (2) + pd_flags (2) + pd_lower (2) +
	// pd_upper (2) + pd_special (2) + pd_pagesize_version (2) +
	// pd_prune_xid (4).
	PageHeaderSize = 24

	// ItemIDSize is the size of one line pointer.
	ItemIDSize = 4

	// MaxAlign is PostgreSQL's MAXIMUM_ALIGNOF: tuple starts are aligned
	// to 8-byte boundaries.
	MaxAlign = 8

	// LayoutVersion mirrors PG_PAGE_LAYOUT_VERSION.
	LayoutVersion = 4
)

// Supported page sizes (the paper evaluates 8, 16, and 32 KB).
const (
	PageSize8K  = 8 * 1024
	PageSize16K = 16 * 1024
	PageSize32K = 32 * 1024
)

// Line pointer (ItemID) state flags, mirroring PostgreSQL's LP_* values.
const (
	LPUnused   = 0 // unused (should always have length 0)
	LPNormal   = 1 // used (should always have length > 0)
	LPRedirect = 2 // HOT redirect
	LPDead     = 3 // dead, may or may not have storage
)

// Header byte offsets within a page.
const (
	offLSN             = 0
	offChecksum        = 8
	offFlags           = 10
	offLower           = 12
	offUpper           = 14
	offSpecial         = 16
	offPageSizeVersion = 18
	offPruneXID        = 20
)

var (
	// ErrPageFull is returned by AddItem when the tuple does not fit.
	ErrPageFull = errors.New("storage: page full")
	// ErrBadItem is returned for out-of-range or unused line pointers.
	ErrBadItem = errors.New("storage: invalid line pointer")
	// ErrCorrupt is returned when page invariants do not hold.
	ErrCorrupt = errors.New("storage: corrupt page")
)

// ItemID is a decoded line pointer.
type ItemID struct {
	Off   uint16 // byte offset of the tuple within the page
	Flags uint8  // LP* state
	Len   uint16 // tuple length in bytes
}

// Page is a raw slotted heap page. The zero value is unusable; call
// NewPage or Init first.
type Page []byte

// NewPage allocates and initializes a page of the given size with the
// given special-space size (0 for heap pages).
func NewPage(size, specialSize int) Page {
	p := Page(make([]byte, size))
	p.Init(specialSize)
	return p
}

// Init formats p as an empty page with specialSize bytes reserved at the
// end (PostgreSQL heap pages use 0; index pages use more). A buffer too
// small to hold a header is left zeroed (every accessor then reports it
// as corrupt instead of panicking).
func (p Page) Init(specialSize int) {
	for i := range p {
		p[i] = 0
	}
	if len(p) < PageHeaderSize {
		return
	}
	special := len(p) - alignUp(specialSize, MaxAlign)
	if special < PageHeaderSize {
		special = PageHeaderSize
	}
	binary.LittleEndian.PutUint16(p[offLower:], PageHeaderSize)
	binary.LittleEndian.PutUint16(p[offUpper:], uint16(special))
	binary.LittleEndian.PutUint16(p[offSpecial:], uint16(special))
	binary.LittleEndian.PutUint16(p[offPageSizeVersion:], uint16(len(p))|LayoutVersion)
}

// u16 reads a little-endian header field, returning 0 when the buffer is
// too short to hold it — truncated pages read as corrupt, not as a
// bounds panic reachable from every public entry point.
func (p Page) u16(off int) uint16 {
	if len(p) < off+2 {
		return 0
	}
	return binary.LittleEndian.Uint16(p[off:])
}

// Size returns the page size recorded in the header.
func (p Page) Size() int { return int(p.u16(offPageSizeVersion) &^ 0xFF) }

// Version returns the page layout version recorded in the header.
func (p Page) Version() int { return int(p.u16(offPageSizeVersion) & 0xFF) }

// Lower returns pd_lower: the end of the line pointer array.
func (p Page) Lower() int { return int(p.u16(offLower)) }

// Upper returns pd_upper: the start of tuple data.
func (p Page) Upper() int { return int(p.u16(offUpper)) }

// Special returns pd_special: the start of the special space.
func (p Page) Special() int { return int(p.u16(offSpecial)) }

// LSN returns the page LSN (used here only as an opaque stamp).
func (p Page) LSN() uint64 {
	if len(p) < offLSN+8 {
		return 0
	}
	return binary.LittleEndian.Uint64(p[offLSN:])
}

// SetLSN stamps the page LSN (no-op on a truncated page).
func (p Page) SetLSN(v uint64) {
	if len(p) < offLSN+8 {
		return
	}
	binary.LittleEndian.PutUint64(p[offLSN:], v)
}

// Checksum returns the stored page checksum (0 = none stamped).
func (p Page) Checksum() uint16 { return p.u16(offChecksum) }

// SetChecksum stores a page checksum (no-op on a truncated page).
func (p Page) SetChecksum(v uint16) {
	if len(p) < offChecksum+2 {
		return
	}
	binary.LittleEndian.PutUint16(p[offChecksum:], v)
}

// NumItems returns the number of line pointers on the page. On a
// corrupt page whose pd_lower is out of range the count is clamped to
// the line pointers that physically fit, so iteration never over-reads.
func (p Page) NumItems() int {
	n := (p.Lower() - PageHeaderSize) / ItemIDSize
	if max := (len(p) - PageHeaderSize) / ItemIDSize; n > max {
		n = max
	}
	if n < 0 {
		return 0
	}
	return n
}

// FreeSpace returns the bytes available between the line pointer array and
// tuple data, accounting for the line pointer a new tuple would need.
func (p Page) FreeSpace() int {
	free := p.Upper() - p.Lower() - ItemIDSize
	if free < 0 {
		return 0
	}
	return free
}

// ItemID decodes line pointer i (0-based; PostgreSQL offsets are 1-based,
// the +1 translation happens in TID handling).
func (p Page) ItemID(i int) (ItemID, error) {
	if i < 0 || i >= p.NumItems() {
		return ItemID{}, fmt.Errorf("%w: index %d of %d", ErrBadItem, i, p.NumItems())
	}
	raw := binary.LittleEndian.Uint32(p[PageHeaderSize+i*ItemIDSize:])
	return decodeItemID(raw), nil
}

func decodeItemID(raw uint32) ItemID {
	// Layout (LSB first): lp_off:15, lp_flags:2, lp_len:15 — identical to
	// PostgreSQL's ItemIdData bitfields on little-endian machines.
	return ItemID{
		Off:   uint16(raw & 0x7FFF),
		Flags: uint8((raw >> 15) & 0x3),
		Len:   uint16((raw >> 17) & 0x7FFF),
	}
}

func encodeItemID(id ItemID) uint32 {
	return uint32(id.Off&0x7FFF) | uint32(id.Flags&0x3)<<15 | uint32(id.Len&0x7FFF)<<17
}

// AddItem appends item data as a new tuple, returning its 0-based item
// index. The data is copied; tuple starts are MAXALIGN'd.
func (p Page) AddItem(data []byte) (int, error) {
	lower := p.Lower()
	upper := p.Upper()
	// A header that lies about its bounds (torn or fuzzed page) must
	// fail, not drive the copy below out of the buffer.
	if lower < PageHeaderSize || lower > upper || upper > len(p) {
		return 0, fmt.Errorf("%w: lower=%d upper=%d size=%d", ErrCorrupt, lower, upper, len(p))
	}
	alignedLen := alignUp(len(data), MaxAlign)
	newUpper := upper - alignedLen
	if newUpper < lower+ItemIDSize {
		return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrPageFull, alignedLen+ItemIDSize, upper-lower)
	}
	idx := p.NumItems()
	copy(p[newUpper:newUpper+len(data)], data)
	id := ItemID{Off: uint16(newUpper), Flags: LPNormal, Len: uint16(len(data))}
	binary.LittleEndian.PutUint32(p[PageHeaderSize+idx*ItemIDSize:], encodeItemID(id))
	binary.LittleEndian.PutUint16(p[offLower:], uint16(lower+ItemIDSize))
	binary.LittleEndian.PutUint16(p[offUpper:], uint16(newUpper))
	return idx, nil
}

// Item returns the raw bytes of item i. The returned slice aliases the
// page; callers must not retain it past page eviction.
func (p Page) Item(i int) ([]byte, error) {
	id, err := p.ItemID(i)
	if err != nil {
		return nil, err
	}
	if id.Flags != LPNormal {
		return nil, fmt.Errorf("%w: item %d has state %d", ErrBadItem, i, id.Flags)
	}
	if int(id.Off)+int(id.Len) > len(p) || int(id.Off) < PageHeaderSize {
		return nil, fmt.Errorf("%w: item %d spans [%d,%d) beyond page", ErrCorrupt, i, id.Off, int(id.Off)+int(id.Len))
	}
	return p[id.Off : int(id.Off)+int(id.Len)], nil
}

// DeleteItem marks item i dead without reclaiming space (like a HOT-less
// delete before vacuum).
func (p Page) DeleteItem(i int) error {
	id, err := p.ItemID(i)
	if err != nil {
		return err
	}
	id.Flags = LPDead
	binary.LittleEndian.PutUint32(p[PageHeaderSize+i*ItemIDSize:], encodeItemID(id))
	return nil
}

// SetLinePointer overwrites line pointer i with id, fabricating states
// a normal insert path never produces (LPRedirect chains, LPDead with
// retained storage, LPUnused holes). Scanners must skip or reject these;
// the differential harness uses this to prove they do.
func (p Page) SetLinePointer(i int, id ItemID) error {
	if _, err := p.ItemID(i); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(p[PageHeaderSize+i*ItemIDSize:], encodeItemID(id))
	return nil
}

// Validate checks the structural invariants of the page.
func (p Page) Validate() error {
	if len(p) < PageHeaderSize {
		return fmt.Errorf("%w: page smaller than header", ErrCorrupt)
	}
	lower, upper, special := p.Lower(), p.Upper(), p.Special()
	if lower < PageHeaderSize || lower > upper || upper > special || special > len(p) {
		return fmt.Errorf("%w: lower=%d upper=%d special=%d size=%d", ErrCorrupt, lower, upper, special, len(p))
	}
	if p.Size() != len(p) {
		return fmt.Errorf("%w: header size %d != actual %d", ErrCorrupt, p.Size(), len(p))
	}
	for i := 0; i < p.NumItems(); i++ {
		id, err := p.ItemID(i)
		if err != nil {
			return err
		}
		if id.Flags == LPNormal {
			if int(id.Off) < upper || int(id.Off)+int(id.Len) > special {
				return fmt.Errorf("%w: item %d at [%d,%d) outside data area [%d,%d)", ErrCorrupt, i, id.Off, int(id.Off)+int(id.Len), upper, special)
			}
		}
	}
	return nil
}

// ComputeChecksum returns an FNV-style 16-bit fold of the page contents
// excluding the checksum field itself. The fold runs word-at-a-time over
// four interleaved lanes: verification sits on the buffer pool's
// disk-read path, and a byte loop over a 32 KB page would blow the <5%
// overhead budget the obs/checksum guards enforce.
func (p Page) ComputeChecksum() uint16 {
	const (
		basis = 1469598103934665603
		prime = 1099511628211
	)
	var h0, h1, h2, h3 uint64 = basis, basis + 1, basis + 2, basis + 3
	i := 0
	// Words overlapping the checksum field contribute with those bytes
	// masked to zero, so the stored value never feeds its own hash.
	for ; i+8 <= len(p) && i < offChecksum+2; i += 8 {
		w := binary.LittleEndian.Uint64(p[i:])
		for j := offChecksum; j < offChecksum+2; j++ {
			if j >= i && j < i+8 {
				w &^= uint64(0xFF) << (8 * (j - i))
			}
		}
		h0 = (h0 ^ w) * prime
	}
	// The bulk lanes mix with xor-rotate (pipelined, ~1 cycle/word);
	// injected corruption — bit flips, torn tails — always lands a
	// nonzero difference in some lane, and the multiplicative fold below
	// spreads it across the 16-bit result.
	for ; i+32 <= len(p); i += 32 {
		h0 = bits.RotateLeft64(h0^binary.LittleEndian.Uint64(p[i:]), 29)
		h1 = bits.RotateLeft64(h1^binary.LittleEndian.Uint64(p[i+8:]), 29)
		h2 = bits.RotateLeft64(h2^binary.LittleEndian.Uint64(p[i+16:]), 29)
		h3 = bits.RotateLeft64(h3^binary.LittleEndian.Uint64(p[i+24:]), 29)
	}
	for ; i+8 <= len(p); i += 8 {
		h0 = (h0 ^ binary.LittleEndian.Uint64(p[i:])) * prime
	}
	for ; i < len(p); i++ {
		if i == offChecksum || i == offChecksum+1 {
			continue
		}
		h0 = (h0 ^ uint64(p[i])) * prime
	}
	h := ((h0*prime^h1)*prime^h2)*prime ^ h3
	h = (h ^ h>>32) * prime
	return uint16(h>>16) ^ uint16(h)
}

// StampChecksum computes and stores the page checksum. A computed value
// of zero is stored as 0xFFFF, keeping a stored 0 unambiguous as "no
// checksum stamped" (the same trick PostgreSQL's pg_checksum_page uses).
func (p Page) StampChecksum() {
	c := p.ComputeChecksum()
	if c == 0 {
		c = 0xFFFF
	}
	p.SetChecksum(c)
}

// ChecksumOK verifies the stored checksum against the page contents.
// An unstamped page (stored checksum 0) verifies trivially; stamping
// rules mirror StampChecksum.
func (p Page) ChecksumOK() bool {
	stored := p.Checksum()
	if stored == 0 {
		return true
	}
	c := p.ComputeChecksum()
	if c == 0 {
		c = 0xFFFF
	}
	return stored == c
}

func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }
