package hdfg

import (
	"fmt"
	"math"

	"dana/internal/dsl"
)

// Interp is a float64 reference interpreter for an hDFG. It implements
// the exact training semantics the accelerator must reproduce: per-tuple
// update-rule evaluation, batched merge, post-merge model update, and
// per-epoch convergence checks. The accelerator simulator is validated
// against this golden model.
type Interp struct {
	G     *Graph
	model []float64
	vals  [][]float64 // last computed value per node ID
}

// NewInterp creates an interpreter with the given initial model (copied).
// A nil model initializes to zeros.
func NewInterp(g *Graph, initModel []float64) (*Interp, error) {
	n := g.ModelSize()
	m := make([]float64, n)
	if initModel != nil {
		if len(initModel) != n {
			return nil, fmt.Errorf("hdfg: initial model has %d values, model shape %v needs %d", len(initModel), g.Model.Shape, n)
		}
		copy(m, initModel)
	}
	return &Interp{G: g, model: m, vals: make([][]float64, len(g.Nodes))}, nil
}

// Model returns the current model parameters (aliased; copy to retain).
func (it *Interp) Model() []float64 { return it.model }

// SetModel overwrites the model parameters.
func (it *Interp) SetModel(m []float64) error {
	if len(m) != len(it.model) {
		return fmt.Errorf("hdfg: model size %d, got %d", len(it.model), len(m))
	}
	copy(it.model, m)
	return nil
}

// bindLeaf produces the value of a leaf for the given tuple.
func (it *Interp) bindLeaf(n *Node, tuple []float64) ([]float64, error) {
	switch n.Kind {
	case dsl.KModel:
		return it.model, nil
	case dsl.KMeta:
		return []float64{n.MetaValue}, nil
	case dsl.KInput, dsl.KOutput:
		off := 0
		for _, in := range it.G.Inputs {
			if in == n {
				return tuple[off : off+n.Shape.Size()], nil
			}
			off += in.Shape.Size()
		}
		for _, out := range it.G.Outputs {
			if out == n {
				return tuple[off : off+n.Shape.Size()], nil
			}
			off += out.Shape.Size()
		}
		return nil, fmt.Errorf("hdfg: leaf %v not among inputs/outputs", n)
	default:
		return nil, fmt.Errorf("hdfg: unbound leaf %v", n)
	}
}

// evalNode computes one non-leaf node from its argument values.
func (it *Interp) evalNode(n *Node) ([]float64, error) {
	argv := make([][]float64, len(n.Args))
	for i, a := range n.Args {
		v := it.vals[a.ID]
		if v == nil {
			return nil, fmt.Errorf("hdfg: %v evaluated before its operand %v", n, a)
		}
		argv[i] = v
	}
	switch {
	case n.Op.IsBinary():
		return evalBinary(n.Op, n.Args[0].Shape, argv[0], n.Args[1].Shape, argv[1], n.Shape)
	case n.Op.IsNonLinear():
		out := make([]float64, n.Shape.Size())
		if len(argv[0]) < len(out) {
			return nil, fmt.Errorf("hdfg: %v operand has %d values, shape %v needs %d", n, len(argv[0]), n.Shape, len(out))
		}
		for i := range out {
			v, err := scalarFunc(n.Op, argv[0][i])
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case n.Op.IsGroup():
		return evalGroup(n.Op, n.Axis, n.Args[0].Shape, argv[0], n.Shape), nil
	case n.Op == dsl.OpGather:
		if it.G.Model.Shape.NDim() != 2 {
			return nil, fmt.Errorf("hdfg: gather needs a 2-D model, have shape %v", it.G.Model.Shape)
		}
		cols := it.G.Model.Shape[1]
		rows := it.G.Model.Shape[0]
		if len(argv[1]) == 0 {
			return nil, fmt.Errorf("hdfg: gather index operand is empty")
		}
		idx := int(math.Round(argv[1][0]))
		if idx < 0 || idx >= rows {
			return nil, fmt.Errorf("hdfg: gather index %d out of model rows [0,%d)", idx, rows)
		}
		if (idx+1)*cols > len(argv[0]) {
			return nil, fmt.Errorf("hdfg: gather row %d overruns operand of %d values", idx, len(argv[0]))
		}
		out := make([]float64, cols)
		copy(out, argv[0][idx*cols:(idx+1)*cols])
		return out, nil
	case n.Op == dsl.OpMerge:
		// The merge node's per-batch value is set by StepBatch; seeing
		// it here means a per-tuple node consumed it, which rewiring
		// prevents.
		return nil, fmt.Errorf("hdfg: merge node evaluated as ordinary op")
	default:
		return nil, fmt.Errorf("hdfg: cannot evaluate %v", n)
	}
}

func scalarFunc(op dsl.Op, x float64) (float64, error) {
	switch op {
	case dsl.OpSigmoid:
		return 1 / (1 + math.Exp(-x)), nil
	case dsl.OpGaussian:
		return math.Exp(-x * x), nil
	case dsl.OpSqrt:
		return math.Sqrt(x), nil
	default:
		return 0, fmt.Errorf("hdfg: op %v is not a scalar function", op)
	}
}

func scalarBin(op dsl.Op, a, b float64) (float64, error) {
	switch op {
	case dsl.OpAdd:
		return a + b, nil
	case dsl.OpSub:
		return a - b, nil
	case dsl.OpMul:
		return a * b, nil
	case dsl.OpDiv:
		return a / b, nil
	case dsl.OpLt:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case dsl.OpGt:
		if a > b {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("hdfg: op %v is not a binary op", op)
	}
}

func evalBinary(op dsl.Op, as Shape, a []float64, bs Shape, b []float64, out Shape) ([]float64, error) {
	// Validate the op once up front so the loops below can use mustBin.
	if _, err := scalarBin(op, 0, 1); err != nil {
		return nil, err
	}
	mustBin := func(a, b float64) float64 {
		v, _ := scalarBin(op, a, b)
		return v
	}
	res := make([]float64, out.Size())
	overrun := func(need, have int, which string) error {
		return fmt.Errorf("hdfg: %v operand %s has %d values, broadcast needs %d", op, which, have, need)
	}
	switch {
	case as.Equal(bs):
		if len(a) < len(res) {
			return nil, overrun(len(res), len(a), "a")
		}
		if len(b) < len(res) {
			return nil, overrun(len(res), len(b), "b")
		}
		for i := range res {
			res[i] = mustBin(a[i], b[i])
		}
	case as.NDim() == 0:
		if len(a) == 0 {
			return nil, overrun(1, 0, "a")
		}
		if len(b) < len(res) {
			return nil, overrun(len(res), len(b), "b")
		}
		for i := range res {
			res[i] = mustBin(a[0], b[i])
		}
	case bs.NDim() == 0:
		if len(b) == 0 {
			return nil, overrun(1, 0, "b")
		}
		if len(a) < len(res) {
			return nil, overrun(len(res), len(a), "a")
		}
		for i := range res {
			res[i] = mustBin(a[i], b[0])
		}
	case isSuffix(as, bs):
		n := as.Size()
		if n == 0 || len(a) < n {
			return nil, overrun(n, len(a), "a")
		}
		if len(b) < len(res) {
			return nil, overrun(len(res), len(b), "b")
		}
		for i := range res {
			res[i] = mustBin(a[i%n], b[i])
		}
	case isSuffix(bs, as):
		n := bs.Size()
		if n == 0 || len(b) < n {
			return nil, overrun(n, len(b), "b")
		}
		if len(a) < len(res) {
			return nil, overrun(len(res), len(a), "a")
		}
		for i := range res {
			res[i] = mustBin(a[i], b[i%n])
		}
	case as.NDim() == 2 && bs.NDim() == 2 && as[1] == bs[1]:
		// Contraction intermediate [a0, b0, k].
		ra, rb, k := as[0], bs[0], as[1]
		if len(a) < ra*k {
			return nil, overrun(ra*k, len(a), "a")
		}
		if len(b) < rb*k {
			return nil, overrun(rb*k, len(b), "b")
		}
		if len(res) < ra*rb*k {
			return nil, fmt.Errorf("hdfg: contraction output shape %v too small for [%d,%d,%d]", out, ra, rb, k)
		}
		for i := 0; i < ra; i++ {
			for j := 0; j < rb; j++ {
				for l := 0; l < k; l++ {
					res[(i*rb+j)*k+l] = mustBin(a[i*k+l], b[j*k+l])
				}
			}
		}
	default:
		return nil, fmt.Errorf("hdfg: unbroadcastable shapes %v, %v escaped inference", as, bs)
	}
	return res, nil
}

func evalGroup(op dsl.Op, axis int, as Shape, a []float64, out Shape) []float64 {
	reduce := func(dst []float64, idx int, x float64, first bool) {
		switch op {
		case dsl.OpSigma:
			dst[idx] += x
		case dsl.OpPi:
			if first {
				dst[idx] = x
			} else {
				dst[idx] *= x
			}
		case dsl.OpNorm:
			dst[idx] += x * x
		}
	}
	res := make([]float64, out.Size())
	switch as.NDim() {
	case 1:
		for i, x := range a {
			reduce(res, 0, x, i == 0)
		}
	case 2:
		r, c := as[0], as[1]
		if axis == 1 { // reduce rows: out[j] over i
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					reduce(res, j, a[i*c+j], i == 0)
				}
			}
		} else { // reduce columns: out[i] over j
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					reduce(res, i, a[i*c+j], j == 0)
				}
			}
		}
	case 3:
		ra, rb, k := as[0], as[1], as[2]
		for ij := 0; ij < ra*rb; ij++ {
			for l := 0; l < k; l++ {
				reduce(res, ij, a[ij*k+l], l == 0)
			}
		}
	}
	if op == dsl.OpNorm {
		for i := range res {
			res[i] = math.Sqrt(res[i])
		}
	}
	return res
}

// evalStage evaluates all nodes matching the predicate, in topo order,
// binding leaves against the given tuple (nil tuple binds only model and
// meta leaves).
func (it *Interp) evalStage(tuple []float64, want func(*Node) bool) error {
	for _, n := range it.G.Nodes {
		if n.IsLeaf() {
			if n.Kind == dsl.KInput || n.Kind == dsl.KOutput {
				if tuple == nil {
					continue
				}
			}
			v, err := it.bindLeaf(n, tuple)
			if err != nil {
				return err
			}
			it.vals[n.ID] = v
			continue
		}
		if !want(n) {
			continue
		}
		v, err := it.evalNode(n)
		if err != nil {
			return err
		}
		it.vals[n.ID] = v
	}
	return nil
}

func perTuple(n *Node) bool  { return !n.PostMerge && !n.ConvOnly }
func postMerge(n *Node) bool { return n.PostMerge && !n.ConvOnly && n.Op != dsl.OpMerge }
func convStage(n *Node) bool { return n.ConvOnly }

// applyUpdates writes the update roots into the model.
func (it *Interp) applyUpdates(stage func(*Node) bool) error {
	g := it.G
	if g.Updated != nil && stage(g.Updated) {
		v := it.vals[g.Updated.ID]
		if v == nil {
			return fmt.Errorf("hdfg: updated model not evaluated")
		}
		copy(it.model, v)
	}
	for _, ru := range g.RowUpdates {
		if !stage(ru.Val) {
			continue
		}
		idxv, valv := it.vals[ru.Idx.ID], it.vals[ru.Val.ID]
		if idxv == nil || valv == nil {
			return fmt.Errorf("hdfg: row update not evaluated")
		}
		if g.Model.Shape.NDim() != 2 {
			return fmt.Errorf("hdfg: row update needs a 2-D model, have shape %v", g.Model.Shape)
		}
		if len(idxv) == 0 {
			return fmt.Errorf("hdfg: row update index is empty")
		}
		cols := g.Model.Shape[1]
		idx := int(math.Round(idxv[0]))
		if idx < 0 || idx >= g.Model.Shape[0] {
			return fmt.Errorf("hdfg: row update index %d out of range", idx)
		}
		if len(valv) < cols {
			return fmt.Errorf("hdfg: row update value has %d values, row needs %d", len(valv), cols)
		}
		copy(it.model[idx*cols:(idx+1)*cols], valv)
	}
	return nil
}

// StepBatch runs one merge batch: the per-tuple stage for every tuple,
// accumulation of the merged variable, then the post-merge stage and
// model update. With no merge function each tuple updates the model
// immediately (plain SGD).
func (it *Interp) StepBatch(tuples [][]float64) error {
	g := it.G
	want := g.TupleWidth()
	if g.Merge == nil {
		for _, t := range tuples {
			if len(t) != want {
				return fmt.Errorf("hdfg: tuple width %d, want %d", len(t), want)
			}
			if err := it.evalStage(t, perTuple); err != nil {
				return err
			}
			if err := it.applyUpdates(perTuple); err != nil {
				return err
			}
		}
		return nil
	}
	var acc []float64
	for i, t := range tuples {
		if len(t) != want {
			return fmt.Errorf("hdfg: tuple width %d, want %d", len(t), want)
		}
		if err := it.evalStage(t, perTuple); err != nil {
			return err
		}
		x := it.vals[g.Merge.Args[0].ID]
		if x == nil {
			return fmt.Errorf("hdfg: merged variable not evaluated")
		}
		if i == 0 {
			acc = append([]float64(nil), x...)
		} else {
			if len(x) < len(acc) {
				return fmt.Errorf("hdfg: merged variable shrank from %d to %d values", len(acc), len(x))
			}
			for j := range acc {
				v, err := scalarBin(g.Merge.MergeOp, acc[j], x[j])
				if err != nil {
					return fmt.Errorf("hdfg: merge: %w", err)
				}
				acc[j] = v
			}
		}
	}
	it.vals[g.Merge.ID] = acc
	if err := it.evalStage(nil, postMerge); err != nil {
		return err
	}
	return it.applyUpdates(func(n *Node) bool { return !n.ConvOnly })
}

// Epoch runs one pass over the data in batches of the merge coefficient.
func (it *Interp) Epoch(tuples [][]float64) error {
	bs := it.G.MergeCoef
	if bs < 1 {
		bs = 1
	}
	for i := 0; i < len(tuples); i += bs {
		end := i + bs
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := it.StepBatch(tuples[i:end]); err != nil {
			return err
		}
	}
	return nil
}

// Converged evaluates the convergence expression against the last batch
// state. Without a convergence expression it returns false.
func (it *Interp) Converged() (bool, error) {
	g := it.G
	if g.Convergence == nil {
		return false, nil
	}
	if err := it.evalStage(nil, convStage); err != nil {
		return false, err
	}
	v := it.vals[g.Convergence.ID]
	if v == nil {
		return false, fmt.Errorf("hdfg: convergence expression not evaluated")
	}
	return v[0] > 0.5, nil
}

// Train runs up to the algo's epoch budget (or maxEpochs if smaller and
// positive), stopping early on convergence. It returns the number of
// epochs executed.
func (it *Interp) Train(tuples [][]float64, maxEpochs int) (int, error) {
	limit := it.G.Epochs
	if limit <= 0 || (maxEpochs > 0 && maxEpochs < limit) {
		limit = maxEpochs
	}
	if limit <= 0 {
		limit = 1
	}
	for e := 1; e <= limit; e++ {
		if err := it.Epoch(tuples); err != nil {
			return e - 1, err
		}
		done, err := it.Converged()
		if err != nil {
			return e, err
		}
		if done {
			return e, nil
		}
	}
	return limit, nil
}
