package verify

import "dana/internal/algos"

// TrainingTuples draws a well-scaled dataset for the spec. Features are
// float32-quantized so both the engine's float32 datapath and float4
// heap columns round-trip the exact same values; labels are drawn from
// the kind's natural domain (±1 for SVM, {0,1} for logistic, bounded
// quarter-steps for LRMF ratings).
func TrainingTuples(g *Gen, sp GoldenSpec, n int) [][]float64 {
	tuples := make([][]float64, n)
	for i := range tuples {
		t := make([]float64, sp.TupleWidth())
		if sp.Kind == algos.KindLRMF {
			t[0] = float64(g.Intn(sp.Users))
			t[1] = float64(sp.Users + g.Intn(sp.Items))
			t[2] = float64(g.Intn(5)) * 0.25
		} else {
			for j := 0; j < sp.NFeat; j++ {
				t[j] = float64(float32(float64(g.Intn(2001)-1000) / 500))
			}
			switch sp.Kind {
			case algos.KindSVM:
				t[sp.NFeat] = float64(2*g.Intn(2) - 1) // {-1,+1}
			case algos.KindLogistic:
				t[sp.NFeat] = float64(g.Intn(2)) // {0,1}
			default:
				t[sp.NFeat] = float64(float32(float64(g.Intn(2001)-1000) / 500))
			}
		}
		tuples[i] = t
	}
	return tuples
}

// InitModelFor draws an initial model for the spec: zeros for the GLMs
// (matching ml.InitModel) and small positive float32-quantized factors
// for LRMF so gradients are non-degenerate.
func InitModelFor(g *Gen, sp GoldenSpec) []float64 {
	init := make([]float64, sp.ModelSize())
	if sp.Kind == algos.KindLRMF {
		for i := range init {
			init[i] = float64(float32(0.05 + 0.01*float64(g.Intn(10))))
		}
	}
	return init
}
