// Package fixture exercises the obsguard analyzer: registry lookups
// belong in setup code, and instrument-call arguments must evaluate
// without allocating even when the handles are obs.Noop nil pointers.
package fixture

import (
	"fmt"

	"dana/internal/obs"
)

type metered struct {
	reg   *obs.Registry
	pages *obs.Counter
}

// NewMetered is setup code: lookups here are the intended pattern.
func NewMetered(reg *obs.Registry) *metered {
	return &metered{reg: reg, pages: reg.Counter("fixture.pages")}
}

func (m *metered) hotLookup(n int) {
	c := m.reg.Counter("fixture.pages") // want `obs registry lookup Counter`
	c.Add(int64(n))
}

func (m *metered) allocatingArgs(n int) {
	m.pages.Add(int64(len(fmt.Sprintf("%d", n)))) // want `calls a function returning a heap-backed value`
	m.pages.Add(int64(len([]int{n})))             // want `builds a composite literal`
}

func (m *metered) cleanCharges(n int, t0 int64) {
	m.pages.Add(int64(n))
	m.pages.Inc()
	m.reg.Trace("fixture.ev", int64(n), t0)
}
