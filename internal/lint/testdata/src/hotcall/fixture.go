// Package fixture exercises the hotcall analyzer: a //dana:hotpath
// function may only call callees whose summaries prove transitive
// allocation-freedom. The interesting cases are allocations hidden
// behind one or two call hops, cold (early-exit) callees, interface
// fan-out, the stdlib allowlist, and audited suppressions at both the
// call site and the allocation site.
package fixture

import (
	"errors"
	"strconv"
	"time"
)

var errBad = errors.New("bad input")

// leafAlloc allocates directly.
func leafAlloc(n int) []int {
	return make([]int, n)
}

// mid hides the allocation one hop down.
func mid(n int) []int {
	return leafAlloc(n)
}

//dana:hotpath
func hotThroughChain(n int) {
	_ = mid(n) // want `hotpath hotThroughChain calls hotcall.mid, which allocates: hotcall.leafAlloc`
}

func leafClean(x int) int { return x * 2 }

//dana:hotpath
func hotClean(n int) int {
	return leafClean(n)
}

// coldAllocOnly allocates only on its early-exit error path, so its
// steady state is allocation-free.
func coldAllocOnly(n int) error {
	if n < 0 {
		pad := make([]int, 8)
		_ = pad
		return errBad
	}
	return nil
}

//dana:hotpath
func hotColdCallee(n int) error {
	return coldAllocOnly(n)
}

type sink interface {
	consume(n int)
}

type allocSink struct{ buf []int }

func (s *allocSink) consume(n int) { s.buf = make([]int, n) }

type cleanSink struct{ total int }

func (c *cleanSink) consume(n int) { c.total += n }

//dana:hotpath
func hotDynamic(s sink, n int) {
	s.consume(n) // want `hotpath hotDynamic may call \(interface dispatch\) .*allocSink.*consume, which allocates`
}

//dana:hotpath
func hotStdlibAllowed() int64 {
	t := time.Now()
	return time.Since(t).Nanoseconds()
}

//dana:hotpath
func hotStdlibUnlisted(x float64) string {
	return strconv.FormatFloat(x, 'f', -1, 64) // want `hotpath hotStdlibUnlisted calls strconv.FormatFloat: not allowlisted as allocation-free`
}

//dana:hotpath
func hotAuditedCallSite(n int) {
	//danalint:ignore hotcall -- fixture: amortized growth audited
	_ = mid(n)
}

// auditedLeaf's allocation carries an audited hotalloc suppression, so
// it does not propagate into callers' summaries.
func auditedLeaf(n int) []int {
	//danalint:ignore hotalloc -- fixture: pool fallback, audited
	return make([]int, n)
}

//dana:hotpath
func hotAuditedLeaf(n int) {
	_ = auditedLeaf(n)
}
