package lint

// tenantflow is the static twin of the chaos suite's structural
// isolation proof (PR 8): each tenant on the multi-tenant server owns a
// private runtime System, obs registry, and fault injector, and nothing
// derived from them may leave the tenant. The taint engine (taint.go)
// seeds on reads of a protected field from a tenant-shaped struct —
// a struct carrying a *runtime.System plus at least one more protected
// resource, which is exactly the server's tenant record and not the
// Server itself — and reports when a tainted value:
//
//   - is written to a package-level variable (directly, or by passing
//     it to a callee whose summary says that parameter escapes),
//   - is stored into a DIFFERENT tenant-shaped value's field
//     (cross-tenant aliasing, e.g. a.reg = b.reg), or
//   - is captured by a goroutine with no bounded join (per
//     golifecycle's rule), which could outlive Drain and touch the
//     registry after teardown.
//
// Deliberate non-sinks: returning a tenant resource is allowed —
// Server.TenantObs hands a tenant's registry to the embedding process
// by design — and taint does not flow through call RESULTS (the
// documented laundering caveat in taint.go), so accessor chains are
// the embedder's responsibility, not this analyzer's.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TenantFlow reports tenant-private state escaping its tenant.
var TenantFlow = &Analyzer{
	Name: "tenantflow",
	Doc: "values derived from a tenant's private System/obs registry/fault " +
		"injector must not flow into package-level vars, another tenant, or " +
		"unjoined goroutines",
	Run: runTenantFlow,
}

// protectedTypes names the per-tenant resources, keyed by declaring
// package NAME and type name — package name rather than path so scratch
// modules (scratch/runtime) and fixtures participate.
var protectedTypes = map[[2]string]string{
	{"runtime", "System"}: "runtime.System",
	{"obs", "Registry"}:   "obs.Registry",
	{"fault", "Injector"}: "fault.Injector",
}

// protectedTypeName classifies t (or *t) as a protected resource.
func protectedTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	name, ok := protectedTypes[[2]string{named.Obj().Pkg().Name(), named.Obj().Name()}]
	return name, ok
}

// tenantShaped reports whether t looks like a per-tenant record: a
// struct holding a *runtime.System AND at least one other protected
// resource. The server's tenant struct qualifies; Server itself (one
// registry, no per-tenant System field) does not.
func tenantShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasSystem := false
	protected := 0
	for i := 0; i < st.NumFields(); i++ {
		if name, ok := protectedTypeName(st.Field(i).Type()); ok {
			protected++
			if name == "runtime.System" {
				hasSystem = true
			}
		}
	}
	return hasSystem && protected >= 2
}

func runTenantFlow(pass *Pass) error {
	m := pass.Mod
	if m == nil {
		return nil
	}
	for _, id := range m.FuncIDs() {
		fi := m.Funcs[id]
		if fi.Pkg != pass.Unit {
			continue
		}
		checkTenantFlow(pass, fi)
	}
	return nil
}

func checkTenantFlow(pass *Pass, fi *FuncInfo) {
	pkg := fi.Pkg
	info := pkg.TypesInfo
	runTaint(fi, taintConfig{
		pkg: pkg,
		mod: pass.Mod,
		source: func(sel *ast.SelectorExpr) (taintOrigin, bool) {
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return taintOrigin{}, false
			}
			resource, ok := protectedTypeName(s.Type())
			if !ok {
				return taintOrigin{}, false
			}
			xt := info.Types[sel.X].Type
			if !tenantShaped(xt) {
				return taintOrigin{}, false
			}
			root := rootObject(info, sel.X)
			label := fmt.Sprintf("%s (%s of tenant value %s)", resource, sel.Sel.Name, nameOf(root))
			return taintOrigin{label: label, root: root, param: -2, pos: sel.Pos()}, true
		},
		sinkGlobal: func(origins []taintOrigin, obj types.Object, pos token.Pos) {
			for _, o := range origins {
				pass.Reportf(pos, "tenant-private %s flows into package-level var %s: breaks tenant isolation",
					o.label, obj.Name())
			}
		},
		sinkCall: func(origins []taintOrigin, calleeID, why string, pos token.Pos) {
			for _, o := range origins {
				pass.Reportf(pos, "tenant-private %s passed to %s, which %s: breaks tenant isolation",
					o.label, shortFuncID(calleeID), why)
			}
		},
		store: func(origins []taintOrigin, base types.Object, sel *ast.SelectorExpr, pos token.Pos) {
			if base == nil || !tenantShaped(base.Type()) {
				return
			}
			for _, o := range origins {
				if o.root != nil && o.root != base {
					pass.Reportf(pos, "tenant-private %s stored into field %s of a different tenant value %s: cross-tenant aliasing",
						o.label, sel.Sel.Name, base.Name())
				}
			}
		},
		goCapture: func(origins []taintOrigin, g *ast.GoStmt, obj types.Object) {
			body := enclosingGoBody(fi.Decl, g)
			if ok, _ := goStmtJoined(pkg, body, g); ok {
				return
			}
			for _, o := range origins {
				pass.Reportf(g.Pos(), "tenant-private %s captured by a goroutine with no bounded join: may outlive Drain",
					o.label)
			}
		},
	})
}

// enclosingGoBody finds the nearest function body (literal or the
// declaration's own) that lexically contains g, for the join check.
func enclosingGoBody(fd *ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	body := fd.Body
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if n != ast.Node(g) {
			return true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			if lit, ok := stack[i].(*ast.FuncLit); ok {
				body = lit.Body
				return false
			}
		}
		return false
	})
	return body
}

// nameOf renders an object name for diagnostics, tolerating nil.
func nameOf(obj types.Object) string {
	if obj == nil {
		return "<expr>"
	}
	return obj.Name()
}
