package storage_test

// FuzzWeavePageDecode lives in the external test package so it can
// drive the internal/weaving extraction engine over arbitrary bytes
// without an import cycle (weaving imports storage).

import (
	"errors"
	"math/rand"
	"testing"

	"dana/internal/fuzzcorpus"
	"dana/internal/storage"
	"dana/internal/weaving"
)

// weavePageSeeds builds the committed corpus: well-formed weave pages
// (whole and truncated at every structural boundary) plus
// deliberately malformed headers.
func weavePageSeeds(tb testing.TB) [][]byte {
	rng := rand.New(rand.NewSource(7))
	build := func(nfeat, nrows int) storage.WeavePage {
		ranges := make([]storage.WeaveRange, nfeat)
		for c := range ranges {
			ranges[c] = storage.WeaveRange{Offset: -1, Scale: 2}
		}
		feats := make([][]float32, nrows)
		labels := make([]float32, nrows)
		for i := range feats {
			row := make([]float32, nfeat)
			for c := range row {
				row[c] = float32(rng.Intn(1<<24))/(1<<23) - 1
			}
			feats[i] = row
			labels[i] = float32(rng.NormFloat64())
		}
		p, err := storage.BuildWeavePage(ranges, feats, labels)
		if err != nil {
			tb.Fatal(err)
		}
		return p
	}

	whole := build(3, 130) // 3 plane words: one partial
	tiny := build(1, 1)

	var seeds [][]byte
	seeds = append(seeds, []byte(whole), []byte(tiny))
	// Truncations at each structural boundary: header, ranges, labels,
	// mid-plane, one byte short.
	for _, cut := range []int{
		storage.WeaveHeaderSize - 3,
		storage.WeaveHeaderSize,
		storage.WeaveHeaderSize + 2*storage.WeaveRangeSize,
		storage.WeaveHeaderSize + 3*storage.WeaveRangeSize + 4*130,
		len(whole) / 2,
		len(whole) - 1,
	} {
		if cut >= 0 && cut < len(whole) {
			seeds = append(seeds, []byte(whole[:cut]))
		}
	}
	// Malformed headers: wrong magic, wrong version, huge counts, zero
	// scale.
	badMagic := append([]byte(nil), tiny...)
	badMagic[0] ^= 0xFF
	badVersion := append([]byte(nil), tiny...)
	badVersion[4] = 0x7F
	hugeCols := append([]byte(nil), tiny...)
	hugeCols[6], hugeCols[7] = 0xFF, 0xFF
	hugeRows := append([]byte(nil), tiny...)
	hugeRows[8], hugeRows[9], hugeRows[10], hugeRows[11] = 0xFF, 0xFF, 0xFF, 0xFF
	zeroScale := append([]byte(nil), tiny...)
	for i := 0; i < 4; i++ {
		zeroScale[storage.WeaveHeaderSize+4+i] = 0 // Scale float32 = 0
	}
	seeds = append(seeds, badMagic, badVersion, hugeCols, hugeRows, zeroScale)
	return seeds
}

// FuzzWeavePageDecode throws arbitrary bytes at the weave page reader
// and the any-precision extraction engine: validation and decode must
// fail with the typed weave sentinels on garbage — never panic, never
// over-read, never return rows from an invalid page.
func FuzzWeavePageDecode(f *testing.F) {
	for _, s := range weavePageSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := storage.WeavePage(data)
		verr := p.Validate()
		if verr != nil && !errors.Is(verr, storage.ErrWeaveCorrupt) {
			t.Fatalf("Validate returned an untyped error: %v", verr)
		}
		for _, bits := range []int{1, 7, 32} {
			e, err := weaving.NewExtractor(bits)
			if err != nil {
				t.Fatal(err)
			}
			rows, derr := e.DecodeRows(p)
			if verr != nil {
				if derr == nil {
					t.Fatalf("decode at %d bits accepted a page Validate rejects (%v)", bits, verr)
				}
				continue
			}
			if derr != nil {
				t.Fatalf("decode at %d bits rejected a valid page: %v", bits, derr)
			}
			if len(rows) != p.NumRows() {
				t.Fatalf("decode at %d bits returned %d rows from a %d-row page", bits, len(rows), p.NumRows())
			}
		}
	})
}

// TestWriteWeaveCorpus regenerates the committed seed corpus when
// DANA_WRITE_FUZZ_CORPUS is set.
func TestWriteWeaveCorpus(t *testing.T) {
	if !fuzzcorpus.ShouldWrite() {
		t.Skipf("set %s=1 to regenerate the corpus", fuzzcorpus.WriteEnv)
	}
	if err := fuzzcorpus.WriteBytes("testdata/fuzz/FuzzWeavePageDecode", weavePageSeeds(t)); err != nil {
		t.Fatal(err)
	}
}
