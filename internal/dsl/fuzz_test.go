package dsl_test

import (
	"testing"

	"dana/internal/dsl"
	"dana/internal/fuzzcorpus"
	"dana/internal/hdfg"
)

// dslSeeds are valid UDFs (the paper's §4.3 linear-regression example
// and variants for every construct: merge, nonlinears, gather/row
// updates, convergence) plus near-miss malformed ones.
func dslSeeds() []string {
	return []string{
		// Paper example: linear regression with merge.
		`mo  = dana.model([10])
in  = dana.input([10])
out = dana.output()
lr  = dana.meta(0.3)
linearR = dana.algo(mo, in, out)
s    = sigma(mo * in, 1)
er   = s - out
grad = er * in
up   = lr * grad
mo_up = mo - up
merge_coef = dana.meta(8)
grad = linearR.merge(grad, merge_coef, "+")
linearR.setModel(mo_up)
linearR.setEpochs(100)`,
		// Logistic with sigmoid.
		`mo = dana.model([4])
in = dana.input([4])
out = dana.output()
lr = dana.meta(0.1)
logR = dana.algo(mo, in, out)
s = sigma(mo * in, 1)
p = sigmoid(s)
er = p - out
grad = er * in
mo_up = mo - lr * grad
logR.setModel(mo_up)
logR.setEpochs(3)`,
		// SVM with the comparison indicator.
		`mo = dana.model([4])
in = dana.input([4])
out = dana.output()
lr = dana.meta(0.05)
lam = dana.meta(0.01)
one = dana.meta(1)
svm = dana.algo(mo, in, out)
s = sigma(mo * in, 1)
margin = out * s
ind = margin < one
hinge = ind * (out * in)
grad = (lam * mo) - hinge
mo_up = mo - lr * grad
svm.setModel(mo_up)
svm.setEpochs(2)`,
		// Malformed: missing algo declaration.
		`mo = dana.model([4])
s = sigma(mo * mo, 1)`,
		// Malformed: unbalanced parens and bad call.
		`mo = dana.model([4)
x = dana.unknown(`,
		// Empty and whitespace.
		"",
		"\n\t  \n",
	}
}

// FuzzDSLParse chains the whole front half of the system on arbitrary
// source text: parse → validate → translate to hDFG → interpret two
// epochs. Each stage may reject; none may panic.
func FuzzDSLParse(f *testing.F) {
	for _, s := range dslSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		a, err := dsl.Parse(src)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			return
		}
		g, err := hdfg.Translate(a)
		if err != nil {
			return
		}
		// Size-guard before interpreting: fuzzed dims can be huge.
		if g.ModelSize() > 1<<12 || g.TupleWidth() > 1<<12 || g.TupleWidth() < 0 || g.ModelSize() < 0 {
			return
		}
		it, err := hdfg.NewInterp(g, nil)
		if err != nil {
			return
		}
		tuple := make([]float64, g.TupleWidth())
		for i := range tuple {
			tuple[i] = 0.5
		}
		_, _ = it.Train([][]float64{tuple, tuple}, 2)
	})
}

// TestWriteDSLParseCorpus regenerates the committed seed corpus when
// DANA_WRITE_FUZZ_CORPUS is set.
func TestWriteDSLParseCorpus(t *testing.T) {
	if !fuzzcorpus.ShouldWrite() {
		t.Skipf("set %s=1 to regenerate the corpus", fuzzcorpus.WriteEnv)
	}
	if err := fuzzcorpus.WriteStrings("testdata/fuzz/FuzzDSLParse", dslSeeds()); err != nil {
		t.Fatal(err)
	}
}
