package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the observability layer's "disabled mode is free"
// contract (DESIGN.md, Observability): with obs.Noop every instrument
// handle is nil and every method call is a nil-check no-op — but Go
// still evaluates the ARGUMENTS of those calls, and name lookups on the
// registry still take a mutex. Two rules keep Noop sites free:
//
//  1. Registry name lookups (Counter/Float/Hist) belong in setup code
//     only — SetObs-style wiring, constructors, init — never on paths
//     that run per page or per epoch.
//  2. Arguments at instrument call sites (Counter.Add, Histogram.
//     Observe, Ring.Emit, Registry.Trace, …) must be allocation-free:
//     no composite literals, no string building, no calls returning
//     heap values. A `c.Add(int64(len(fmt.Sprintf(…))))` would charge
//     the allocation even with observability disabled.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "obs call sites must stay zero-alloc and lookup-free so obs.Noop is free",
	Run:  runObsGuard,
}

// lookupMethods are the mutex-taking, map-allocating Registry methods.
var lookupMethods = map[string]bool{"Counter": true, "Float": true, "Hist": true}

// instrumentMethods are the hot-path charge methods whose arguments are
// evaluated even under obs.Noop.
var instrumentMethods = map[string]bool{
	"Add": true, "Inc": true, "Observe": true, "Emit": true, "Trace": true,
}

func isObsType(t types.Type) bool {
	p, ok := derefNamed(t)
	return ok && (strings.HasSuffix(p, "internal/obs") || p == "obs")
}

// derefNamed returns the package path of a (possibly pointer-to) named
// type.
func derefNamed(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path(), true
}

func runObsGuard(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil // the implementation itself is exempt
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		isTest := strings.HasSuffix(filename, "_test.go")
		var stack []funcCtx
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				stack = append(stack, funcCtx{name: n.Name.Name, end: n.End()})
			case *ast.FuncLit:
				name := ""
				if len(stack) > 0 {
					name = stack[len(stack)-1].name
				}
				stack = append(stack, funcCtx{name: name, end: n.End()})
			case *ast.CallExpr:
				for len(stack) > 0 && stack[len(stack)-1].end < n.Pos() {
					stack = stack[:len(stack)-1]
				}
				fnName := ""
				if len(stack) > 0 {
					fnName = stack[len(stack)-1].name
				}
				checkObsCall(pass, n, fnName, isTest)
			}
			return true
		})
	}
	return nil
}

type funcCtx struct {
	name string
	end  token.Pos
}

func checkObsCall(pass *Pass, call *ast.CallExpr, fnName string, isTest bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !isObsType(s.Recv()) {
		return
	}
	name := sel.Sel.Name
	if lookupMethods[name] {
		if isTest || isSetupFunc(fnName) || strings.HasPrefix(pass.Pkg.Path(), "dana/cmd/") {
			return
		}
		pass.Reportf(call.Pos(),
			"obs registry lookup %s(%s) outside setup code (function %s): resolve the handle once in SetObs and charge through the pointer",
			name, argPreview(call), fnName)
		return
	}
	if !instrumentMethods[name] {
		return
	}
	for _, arg := range call.Args {
		if bad, why := allocatingExpr(pass.TypesInfo, arg); bad {
			pass.Reportf(arg.Pos(),
				"argument of obs %s.%s %s: obs.Noop sites must stay zero-alloc (hoist it behind an explicit enabled check)",
				typeShort(s.Recv()), name, why)
		}
	}
}

// isSetupFunc reports whether registry lookups are acceptable in the
// named function: observability wiring and constructors.
func isSetupFunc(name string) bool {
	return strings.HasPrefix(name, "SetObs") || strings.HasPrefix(name, "New") ||
		name == "init" || name == "main" || name == ""
}

// allocatingExpr conservatively classifies an expression as possibly
// allocating (or otherwise expensive enough to hoist).
func allocatingExpr(info *types.Info, e ast.Expr) (bool, string) {
	switch e := e.(type) {
	case *ast.BasicLit, *ast.Ident:
		return false, ""
	case *ast.SelectorExpr:
		return false, "" // field or package selector
	case *ast.ParenExpr:
		return allocatingExpr(info, e.X)
	case *ast.StarExpr:
		return allocatingExpr(info, e.X)
	case *ast.IndexExpr:
		if bad, why := allocatingExpr(info, e.X); bad {
			return bad, why
		}
		return allocatingExpr(info, e.Index)
	case *ast.UnaryExpr:
		return allocatingExpr(info, e.X)
	case *ast.BinaryExpr:
		if isStringType(info, e.X) || isStringType(info, e.Y) {
			return true, "concatenates strings"
		}
		if bad, why := allocatingExpr(info, e.X); bad {
			return bad, why
		}
		return allocatingExpr(info, e.Y)
	case *ast.CompositeLit:
		return true, "builds a composite literal"
	case *ast.FuncLit:
		return true, "allocates a closure"
	case *ast.CallExpr:
		return allocatingCall(info, e)
	default:
		return false, ""
	}
}

func allocatingCall(info *types.Info, call *ast.CallExpr) (bool, string) {
	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "len", "cap", "min", "max":
			for _, a := range call.Args {
				if bad, why := allocatingExpr(info, a); bad {
					return bad, why
				}
			}
			return false, ""
		case "append", "make", "new":
			return true, "allocates (" + fun.Name + ")"
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: fine to basic scalars, allocating to string/[]byte.
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() != types.String {
			return allocatingExpr(info, call.Args[0])
		}
		return true, "converts to a heap-backed type"
	}
	// A real call: allowed when the result is a basic scalar (counters
	// often charge time.Since(x).Nanoseconds() — no allocation), flagged
	// when it yields strings, slices, interfaces, or pointers.
	if tv, ok := info.Types[call]; ok {
		switch u := tv.Type.Underlying().(type) {
		case *types.Basic:
			if u.Kind() != types.String {
				return false, ""
			}
		}
	}
	return true, "calls a function returning a heap-backed value"
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}

func argPreview(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		return lit.Value
	}
	if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
		return exprString(sel)
	}
	return "…"
}
