package experiments

import (
	"math"
	"testing"

	"dana/internal/datagen"
)

// band asserts got lies within [lo, hi], labelled for the figure it
// reproduces.
func band(t *testing.T, label string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want within [%.2f, %.2f]", label, got, lo, hi)
	}
}

func TestTable3InventoryShape(t *testing.T) {
	rows := Table3(DefaultEnv())
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tuples <= 0 || r.Pages32K <= 0 || r.SizeMB <= 0 {
			t.Errorf("%s: %+v", r.Name, r)
		}
	}
}

func TestTable5AbsoluteTimes(t *testing.T) {
	rows, err := Table5(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check modeled times against the paper's Table 5 (within 2x;
	// LRMF rows are known deviations, see EXPERIMENTS.md).
	paper := map[string]float64{
		"Remote Sensing LR": 3.6, "WLAN": 14.0, "Remote Sensing SVM": 1.7,
		"Patient": 2.8, "Blog Feedback": 1.6,
		"S/N Logistic": 3292, "S/N SVM": 3386, "S/N Linear": 1747,
		"S/E Logistic": 240300, "S/E SVM": 360, "S/E Linear": 23796,
	}
	for _, r := range rows {
		want, ok := paper[r.Name]
		if !ok {
			continue
		}
		if r.PGSec < want/2 || r.PGSec > want*2 {
			t.Errorf("%s: modeled PG %.1fs vs paper %.1fs (out of 2x band)", r.Name, r.PGSec, want)
		}
		if r.DAnASec >= r.PGSec {
			t.Errorf("%s: DAnA %.2fs not faster than PG %.2fs", r.Name, r.DAnASec, r.PGSec)
		}
	}
}

func TestFig8RealDatasetGeomeans(t *testing.T) {
	env := DefaultEnv()
	_, warmGM, err := ClassSpeedups("real", env, true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 8a: GP/PG 2.1x, DAnA/PG 8.3x, DAnA/GP 4.0x.
	band(t, "fig8a GP/PG", warmGM.GPvsPG, 1.5, 2.8)
	band(t, "fig8a DAnA/PG", warmGM.DAnAvsPG, 5, 14)
	band(t, "fig8a DAnA/GP", warmGM.DAnAvsGP, 2.5, 7)

	_, coldGM, err := ClassSpeedups("real", env, false)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 8b: 1.9x / 4.8x / 2.9x — cold benefits diminish.
	band(t, "fig8b DAnA/PG", coldGM.DAnAvsPG, 3, 10)
	if coldGM.DAnAvsPG >= warmGM.DAnAvsPG {
		t.Error("cold-cache speedup should be below warm-cache")
	}
}

func TestFig9SyntheticNominalGeomeans(t *testing.T) {
	env := DefaultEnv()
	_, gm, err := ClassSpeedups("S/N", env, true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 9: DAnA/PG 13.2x warm.
	band(t, "fig9 DAnA/PG", gm.DAnAvsPG, 8, 25)
	band(t, "fig9 GP/PG", gm.GPvsPG, 1.5, 3.5)
}

func TestFig10SyntheticExtensiveGeomeans(t *testing.T) {
	env := DefaultEnv()
	_, gm, err := ClassSpeedups("S/E", env, true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 10: DAnA/PG 12.9x warm (dominated by S/E Logistic).
	band(t, "fig10 DAnA/PG", gm.DAnAvsPG, 8, 30)
}

func TestLargerDatasetsLargerBenefits(t *testing.T) {
	// §7.1: "Higher benefits of acceleration are observed with larger
	// datasets".
	env := DefaultEnv()
	_, real, _ := ClassSpeedups("real", env, true)
	_, sn, _ := ClassSpeedups("S/N", env, true)
	if sn.DAnAvsPG <= real.DAnAvsPG {
		t.Errorf("S/N geomean %.1f should exceed real %.1f", sn.DAnAvsPG, real.DAnAvsPG)
	}
}

func TestFig11StriderBenefit(t *testing.T) {
	rows, gm, err := StriderBenefit(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: 2.3x without, 10.8x with => striders amplify ~4.6x.
	band(t, "fig11 without", gm.WithoutStrider, 1.5, 4.5)
	band(t, "fig11 with", gm.WithStrider, 8, 20)
	amp := gm.WithStrider / gm.WithoutStrider
	band(t, "fig11 amplification", amp, 3, 7)
	for _, r := range rows {
		if r.WithStrider < r.WithoutStrider {
			t.Errorf("%s: striders hurt (%.2f < %.2f)", r.Name, r.WithStrider, r.WithoutStrider)
		}
	}
}

func TestFig12ThreadSweepShapes(t *testing.T) {
	env := DefaultEnv()
	coefs := []int{1, 4, 16, 64, 256, 1024}
	// Remote Sensing LR: narrow model, performance improves with threads
	// until compute saturates (paper Figure 12).
	pts, err := ThreadSweep("Remote Sensing LR", env, coefs)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].RelRuntime != 1 {
		t.Errorf("first point = %v", pts[0].RelRuntime)
	}
	last := pts[len(pts)-1]
	if last.RelRuntime > 0.6 {
		t.Errorf("1024-coef runtime %.2f should be well below single-thread", last.RelRuntime)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RelRuntime > pts[i-1].RelRuntime*1.01 {
			t.Errorf("runtime regressed at coef %d: %.3f -> %.3f", pts[i].Coef, pts[i-1].RelRuntime, pts[i].RelRuntime)
		}
		if pts[i].Threads < pts[i-1].Threads {
			t.Errorf("threads decreased at coef %d", pts[i].Coef)
		}
	}
	// Utilization grows toward 100%.
	if last.Utilization < 0.9 {
		t.Errorf("final utilization = %.2f", last.Utilization)
	}

	// Netflix (LRMF): no benefit from threads (paper: flat at 1.0).
	nf, err := ThreadSweep("Netflix", env, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range nf {
		if math.Abs(pt.RelRuntime-1) > 1e-9 {
			t.Errorf("Netflix coef %d: rel runtime %.3f, want flat 1.0", pt.Coef, pt.RelRuntime)
		}
		if pt.Threads != 1 {
			t.Errorf("Netflix coef %d: threads = %d", pt.Coef, pt.Threads)
		}
	}
}

func TestFig13SegmentSweep(t *testing.T) {
	rows, gm, err := SegmentSweep(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Figure 13 geomeans (relative to 8 segments):
	// PG 0.54, 4 segments 0.96, 16 segments 0.89.
	band(t, "fig13 PG", gm.PG, 0.35, 0.7)
	band(t, "fig13 seg4", gm.Seg4, 0.85, 1.0)
	band(t, "fig13 seg16", gm.Seg16, 0.6, 1.0)
	if !(gm.Seg8 == 1) {
		t.Error("normalization broken")
	}
	if gm.Seg4 > gm.Seg8 || gm.Seg16 > gm.Seg8 {
		t.Error("8 segments must be the best configuration")
	}
}

func TestFig14BandwidthSweep(t *testing.T) {
	rows, err := BandwidthSweep(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BandwidthRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if math.Abs(r.Speedups[1]-1) > 1e-9 {
			t.Errorf("%s: baseline speedup %.3f != 1", r.Name, r.Speedups[1])
		}
		if r.Speedups[0.25] > r.Speedups[4]+1e-9 {
			t.Errorf("%s: bandwidth scaling inverted", r.Name)
		}
	}
	// Paper: large GLM workloads become bandwidth-bound (S/E Linear
	// reaches ~2.1x at 4x bandwidth) while LRMF workloads are compute
	// heavy and flat.
	if sp := byName["S/E Linear"].Speedups[4]; sp < 1.5 {
		t.Errorf("S/E Linear at 4x bandwidth = %.2f, want bandwidth-bound behaviour", sp)
	}
	if sp := byName["S/N LRMF"].Speedups[4]; sp > 1.15 {
		t.Errorf("S/N LRMF at 4x bandwidth = %.2f, want ~flat", sp)
	}
	if sp := byName["S/E LRMF"].Speedups[0.25]; sp < 0.85 {
		t.Errorf("S/E LRMF at 0.25x bandwidth = %.2f, want ~flat", sp)
	}
}

func TestFig15ExternalLibraries(t *testing.T) {
	rows, err := ExternalLibraries(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig15Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// DAnA wins end-to-end everywhere in Figure 15c.
		if !math.IsNaN(r.LiblinearSec) && r.DAnASec > r.LiblinearSec {
			t.Errorf("%s: DAnA %.2fs slower than Liblinear %.2fs", r.Name, r.DAnASec, r.LiblinearSec)
		}
		if r.DAnASec > r.DimmWittedSec {
			t.Errorf("%s: DAnA %.2fs slower than DimmWitted %.2fs", r.Name, r.DAnASec, r.DimmWittedSec)
		}
		// Export dominates the library breakdown (Figure 15a: 45-86%)
		// for the algorithms the libraries compute quickly; the SVM
		// rows are compute-bound by the 20x solver penalty instead.
		if r.Algo != "svm" {
			frac := r.DimmWittedBreakdown.ExportSec / r.DimmWittedSec
			if frac < 0.2 {
				t.Errorf("%s: export fraction %.2f too small", r.Name, frac)
			}
		}
		switch r.Algo {
		case "svm":
			// Figure 15b: the libraries lose on SVM compute.
			if r.LiblinearComputeSec < r.PGComputeSec {
				t.Errorf("%s: Liblinear SVM compute should lose to MADlib", r.Name)
			}
		case "linear":
			if !math.IsNaN(r.LiblinearSec) {
				t.Errorf("%s: Liblinear should not support linear regression", r.Name)
			}
		}
	}
}

func TestFig16TablaComparison(t *testing.T) {
	rows, gm, err := TablaComparison(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: DAnA 4.7x faster than TABLA on average (figure data 3.8x).
	band(t, "fig16 geomean", gm.Speedup, 3, 6.5)
	// LRMF cannot multi-thread, so DAnA ≈ TABLA there.
	for _, r := range rows {
		if r.Name == "Netflix" || r.Name == "S/N LRMF" {
			band(t, "fig16 "+r.Name, r.Speedup, 0.2, 1.2)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean = %v", g)
	}
	if Geomean(nil) != 1 {
		t.Error("empty geomean")
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("negative input")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		1.5:   "1.50s",
		90:    "1m 30s",
		3690:  "1h 1m",
		59.99: "59.99s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestModelAllWorkloadsBothCaches(t *testing.T) {
	env := DefaultEnv()
	for _, w := range datagen.Workloads {
		for _, warm := range []bool{true, false} {
			st, err := Model(w, env, warm)
			if err != nil {
				t.Fatalf("%s warm=%v: %v", w.Name, warm, err)
			}
			for name, b := range map[string]float64{
				"PG": st.PG.TotalSec, "GP": st.GP.TotalSec, "DAnA": st.DAnA.TotalSec,
				"NoStrider": st.DAnANoStrider.TotalSec, "TABLA": st.TABLA.TotalSec,
			} {
				if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
					t.Errorf("%s warm=%v: %s time = %v", w.Name, warm, name, b)
				}
			}
		}
	}
}
