package backend

import (
	"fmt"

	"dana/internal/cost"
	"dana/internal/engine"
	"dana/internal/storage"
	"dana/internal/weaving"
)

// Weave is the MLWeaving any-precision data path behind the Backend
// seam: tuples are routed through the vertical bit-plane layout
// (internal/storage's WeavePage) and decoded at k bits per feature by
// the internal/weaving extraction engine before feeding the same
// execution-engine simulator the accelerator path runs. Reading fewer
// planes streams proportionally fewer bytes over the link — the
// precision-for-bandwidth tradeoff the cost model charges through
// Workload.WeaveBits — at the price of quantized features.
//
// Reference semantics: the golden float64 trainer over the *rewoven*
// tuples (weaving.ReweaveRows is shared between RunEpoch and
// WeaveReference), so the declared ModelTolerance covers only the
// float32-datapath divergence, at every precision — quantization error
// lives in the reference, not the tolerance.
type Weave struct {
	inner *Accel

	configured bool
	bits       int
	pageRows   int
	ranges     []storage.WeaveRange

	// rows is the scratch the batch/float64 stream forms materialize
	// into before reweaving.
	rows [][]float32
}

// NewWeave builds an unconfigured any-precision backend.
func NewWeave(env Env) *Weave { return &Weave{inner: NewAccel(env)} }

func (b *Weave) Capabilities() Capabilities {
	return Capabilities{
		Name: NameWeave,
		// LRMF is excluded: the rating schema's integer row/column ids
		// are indices, not magnitudes — quantizing them is meaningless,
		// and storage.CheckWeaveSchema rejects the layout anyway.
		Classes:               []Class{ClassLinear, ClassLogistic, ClassSVM},
		Precision:             PrecisionFloat32,
		DeterministicCounters: true,
		ModelTolerance:        5e-3, // float32 datapath vs float64 golden on rewoven tuples
		MinBits:               1,
		MaxBits:               storage.WeaveMaxBits,
		Streaming:             true,
		Accelerated:           true,
	}
}

// jobBits resolves a job's effective read precision (0 = full width).
func jobBits(bits int) int {
	if bits == 0 {
		return storage.WeaveMaxBits
	}
	return bits
}

// EstimateCost prices the job like the accelerator path, with the link
// charged for the rewoven byte stream: FixedBytes + k×BitBytes from the
// exact page geometry, and the Strider unpack cycles replaced by the
// k-bit plane-gather model.
func (b *Weave) EstimateCost(job Job) (Cost, error) {
	if !admissible(b.Capabilities(), job) {
		return Cost{}, fmt.Errorf("%w: %s cannot run class=%s precision=%q bits=%d",
			ErrUnsupported, NameWeave, job.Class, job.Precision, job.Bits)
	}
	w := job.Workload()
	if job.Engine != nil {
		est := job.Engine.Estimate(job.Design.Engine)
		w.EpochCycles = est.EpochCycles(job.Tuples, max1(job.MergeCoef), job.Design.Engine.Threads)
	}
	bits := jobBits(job.Bits)
	nfeat := job.Columns - 1
	if nfeat < 1 {
		nfeat = 1
	}
	pageSize := job.PageSize
	if pageSize <= 0 {
		pageSize = storage.PageSize8K
	}
	g := weaving.RelationGeometry(job.Tuples, nfeat, pageSize)
	w.WeaveBits = bits
	w.WeaveFixedBytes = g.FixedBytes
	w.WeaveBitBytes = g.BitBytes
	w.Pages = g.Pages
	w.StriderPageCycles = weaving.PageDecodeCycles(nfeat, g.PageRows, bits)
	bd := cost.DAnA(w, b.inner.env.Cost, job.Warm)
	return Cost{Seconds: bd.TotalSec, Breakdown: bd}, nil
}

// Configure prepares the inner engine machine under the weave
// capability set and pins the read precision and (optionally) the
// quantization ranges for the job.
func (b *Weave) Configure(p Program) error {
	bits := jobBits(p.Bits)
	if bits < 1 || bits > storage.WeaveMaxBits {
		return fmt.Errorf("%w: weave precision %d outside [1,%d]", ErrUnsupported, p.Bits, storage.WeaveMaxBits)
	}
	if err := b.inner.configure(p, p.EngineCfg, b.Capabilities()); err != nil {
		return err
	}
	b.bits = bits
	b.ranges = append([]storage.WeaveRange(nil), p.Ranges...)
	if len(b.ranges) == 0 {
		b.ranges = nil // derive from the first epoch
	}
	nfeat := 1
	if p.Graph != nil && p.Graph.Model != nil {
		nfeat = p.Graph.Model.Shape.Size()
	}
	b.pageRows = storage.WeavePageRows(max1(p.PageSize), nfeat)
	b.configured = true
	return nil
}

// RunEpoch materializes the epoch's tuples from whichever stream form
// arrived, reweaves them at the configured precision, and replays the
// rewoven rows through the engine. Ranges are derived from the first
// epoch when the program didn't pin them; per-column min/max is
// delivery-order independent, so every legal stream form of the same
// epoch produces bit-identical rewoven rows — and therefore
// bit-identical model state and modeled counters.
func (b *Weave) RunEpoch(st *Stream) error {
	if !b.configured {
		return ErrNotConfigured
	}
	var rows [][]float32
	switch {
	case st != nil && st.Batches != nil:
		b.rows = b.rows[:0]
		if err := st.Batches(func(batch [][]float32) error {
			for _, r := range batch {
				b.rows = append(b.rows, append([]float32(nil), r...))
			}
			return nil
		}); err != nil {
			return err
		}
		rows = b.rows
	case st != nil && st.Rows32 != nil:
		rows = st.Rows32
	case st != nil && st.Rows64 != nil:
		if len(b.rows) < len(st.Rows64) {
			b.rows = make([][]float32, len(st.Rows64))
		}
		b.rows = b.rows[:len(st.Rows64)]
		for i, row := range st.Rows64 {
			if len(b.rows[i]) != len(row) {
				b.rows[i] = make([]float32, len(row))
			}
			for j, v := range row {
				b.rows[i][j] = float32(v)
			}
		}
		rows = b.rows
	default:
		// No tuples delivered: replay the engine's cached (rewoven) epoch.
		return b.inner.RunEpoch(st)
	}
	rewoven, ranges, err := weaving.ReweaveRows(rows, b.ranges, b.bits, b.pageRows)
	if err != nil {
		return err
	}
	b.ranges = ranges
	return b.inner.RunEpoch(&Stream{Rows32: rewoven})
}

// Bits returns the configured read precision (0 before Configure).
func (b *Weave) Bits() int {
	if !b.configured {
		return 0
	}
	return b.bits
}

// Ranges returns the quantization ranges in effect (nil until pinned by
// Configure or derived from the first epoch).
func (b *Weave) Ranges() []storage.WeaveRange {
	return append([]storage.WeaveRange(nil), b.ranges...)
}

// Score runs inference in the float32 datapath width (scoring reads the
// caller's rows directly; only training tuples are quantized).
func (b *Weave) Score(model []float64, rows [][]float64) ([]float64, error) {
	if !b.configured {
		return nil, ErrNotConfigured
	}
	return b.inner.Score(model, rows)
}

func (b *Weave) Model() []float64 {
	if !b.configured {
		return nil
	}
	return b.inner.Model()
}

func (b *Weave) SetModel(m []float64) error {
	if !b.configured {
		return ErrNotConfigured
	}
	return b.inner.SetModel(m)
}

func (b *Weave) Converged() (bool, error) {
	if !b.configured {
		return false, ErrNotConfigured
	}
	return b.inner.Converged()
}

// Counters returns the engine's modeled cycle decomposition.
func (b *Weave) Counters() engine.Stats { return b.inner.Counters() }

// Close releases the inner machine's host fan-out helpers.
func (b *Weave) Close() { b.inner.Close() }

// WeaveReference is the weave registration's declared reference
// semantics: the golden float64 trainer over the scenario's tuples
// rewoven at the scenario's precision — the same ReweaveRows call
// RunEpoch makes, so backend and reference see identical feature
// values and only datapath width separates them.
func WeaveReference(env Env, sc Scenario) ([]float64, error) {
	rewoven, _, err := weaving.ReweaveRows(sc.Rows32, nil, jobBits(sc.Bits), 0)
	if err != nil {
		return nil, err
	}
	tuples := make([][]float64, len(rewoven))
	for i, r := range rewoven {
		tuples[i] = widen64(r)
	}
	model := append([]float64(nil), sc.Init...)
	if err := sc.Spec.Train(model, tuples); err != nil {
		return nil, err
	}
	return model, nil
}
