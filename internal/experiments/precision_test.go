package experiments

import "testing"

// TestPrecisionSweep gates the danabench precision experiment in the
// regular test run: the sweep itself enforces transfer monotonicity,
// the k=32 accelerator identity, and the per-precision epoch budgets
// (it errors on any violation); the assertions here pin the sweep's
// shape so a silently skipped point cannot pass.
func TestPrecisionSweep(t *testing.T) {
	rows, err := PrecisionSweep(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(PrecisionSeeds) * len(PrecisionBits); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	fullWidth := 0
	for _, r := range rows {
		if r.Bits == 32 {
			if !r.FullWidthID {
				t.Errorf("seed %d: full-width row not marked accelerator-identical", r.Seed)
			}
			fullWidth++
		}
		if r.Epochs < 1 || r.Epochs > r.Budget {
			t.Errorf("seed %d at %d bits: epochs %d outside [1, %d]", r.Seed, r.Bits, r.Epochs, r.Budget)
		}
		if r.Loss > r.GoldenLoss+r.Margin {
			t.Errorf("seed %d at %d bits: loss %v above golden %v + margin %v", r.Seed, r.Bits, r.Loss, r.GoldenLoss, r.Margin)
		}
	}
	if fullWidth != len(PrecisionSeeds) {
		t.Fatalf("full-width identity checked on %d seeds, want %d", fullWidth, len(PrecisionSeeds))
	}
}
