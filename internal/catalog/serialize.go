package catalog

import (
	"encoding/json"
	"fmt"

	"dana/internal/engine"
	"dana/internal/hwgen"
	"dana/internal/strider"
)

// Serialized accelerator metadata: the paper stores the "FPGA design,
// its schedule, operation map, and instructions" in the RDBMS catalog
// (§6.2); this is the durable wire form of that record. Strider
// instructions persist as their 22-bit binary words.

type acceleratorJSON struct {
	UDFName    string          `json:"udf"`
	Program    *engine.Program `json:"program"`
	StriderBin []uint32        `json:"strider_bin"`
	StriderCfg strider.Config  `json:"strider_cfg"`
	Design     designJSON      `json:"design"`
}

type designJSON struct {
	Engine      engine.Config `json:"engine"`
	NumStriders int           `json:"num_striders"`
	PageBuffers int           `json:"page_buffers"`
	AUs         int           `json:"aus"`
	BRAMBytes   int64         `json:"bram_bytes"`
	Utilization float64       `json:"utilization"`
	FPGAName    string        `json:"fpga"`
}

// ExportAccelerator serializes an accelerator record.
func ExportAccelerator(a *Accelerator) ([]byte, error) {
	if a == nil || a.Program == nil {
		return nil, fmt.Errorf("catalog: nothing to export")
	}
	return json.MarshalIndent(acceleratorJSON{
		UDFName:    a.UDFName,
		Program:    a.Program,
		StriderBin: strider.EncodeProgram(a.StriderProg),
		StriderCfg: a.StriderCfg,
		Design: designJSON{
			Engine:      a.Design.Engine,
			NumStriders: a.Design.NumStriders,
			PageBuffers: a.Design.PageBuffers,
			AUs:         a.Design.AUs,
			BRAMBytes:   a.Design.BRAMBytes,
			Utilization: a.Design.Utilization,
			FPGAName:    a.Design.FPGA.Name,
		},
	}, "", "  ")
}

// ImportAccelerator parses a serialized record. The FPGA descriptor is
// restored from its name against the known device table.
func ImportAccelerator(data []byte) (*Accelerator, error) {
	var aj acceleratorJSON
	if err := json.Unmarshal(data, &aj); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if aj.Program == nil {
		return nil, fmt.Errorf("catalog: record has no program")
	}
	if err := aj.Program.Validate(); err != nil {
		return nil, fmt.Errorf("catalog: imported program invalid: %w", err)
	}
	prog, err := strider.DecodeProgram(aj.StriderBin)
	if err != nil {
		return nil, fmt.Errorf("catalog: strider binary: %w", err)
	}
	fpga := hwgen.VU9P()
	if aj.Design.FPGAName != "" {
		fpga.Name = aj.Design.FPGAName
	}
	return &Accelerator{
		UDFName:     aj.UDFName,
		Program:     aj.Program,
		StriderProg: prog,
		StriderCfg:  aj.StriderCfg,
		Design: hwgen.Design{
			FPGA:        fpga,
			Engine:      aj.Design.Engine,
			NumStriders: aj.Design.NumStriders,
			PageBuffers: aj.Design.PageBuffers,
			AUs:         aj.Design.AUs,
			BRAMBytes:   aj.Design.BRAMBytes,
			Utilization: aj.Design.Utilization,
		},
	}, nil
}
