package lint

// Suppression auditing: the `-- reason` tail on //danalint:ignore
// directives is what keeps suppressions honest, and `danalint -audit`
// is the tool that reads them back. CollectSuppressionRecords re-parses
// every directive into a structured record so the CLI can print the
// full suppression inventory (file:line, analyzer, reason) and fail the
// build on any directive whose reason is missing — an unaudited
// suppression is a finding someone silenced without saying why.

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression is one //danalint:ignore directive.
type Suppression struct {
	Pos      token.Position
	Analyzer string // "" suppresses every analyzer on the line
	Reason   string // text after "--"; empty means unaudited
}

// CollectSuppressionRecords parses every ignore directive in pkgs,
// sorted by position. Each source file is visited once even when it
// appears in several loaded packages (plain and test-augmented loads
// share files).
func CollectSuppressionRecords(pkgs []*Package) []Suppression {
	var recs []Suppression
	seenFile := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[filename] {
				continue
			}
			seenFile[filename] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
					reason := ""
					if i := strings.Index(rest, "--"); i >= 0 {
						reason = strings.TrimSpace(strings.TrimSuffix(rest[i+2:], "*/"))
						rest = strings.TrimSpace(rest[:i])
					}
					name := ""
					if rest != "" {
						name = strings.Fields(rest)[0]
					}
					recs = append(recs, Suppression{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: name,
						Reason:   reason,
					})
				}
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return recs
}
