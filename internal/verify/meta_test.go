package verify

import (
	"strings"
	"testing"

	"dana/internal/algos"
	"dana/internal/engine"
	"dana/internal/storage"
	"dana/internal/strider"
)

// The mutation meta-tests: each oracle must DETECT a deliberately
// injected fault. An oracle that stays green under a flipped byte, a
// corrupted walker, or a dropped cycle charge is measuring nothing.

const metaSeed = 0x5EED

// TestOracleADetectsFlippedByte flips one byte inside a live tuple's
// data area and requires the storage oracle to fail.
func TestOracleADetectsFlippedByte(t *testing.T) {
	g := NewGen(metaSeed)
	sc, err := g.PageScenario(storage.PageSize8K)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckStorageOracle(); err != nil {
		t.Fatalf("pre-mutation: %v", err)
	}
	// Flip one byte in the first live tuple's fixed data region. Columns
	// of a null-bitmap tuple shift, so target the first no-null live one.
	target := -1
	for k, mask := range sc.Nulls {
		if mask == nil {
			target = k
			break
		}
	}
	if target < 0 {
		t.Skip("scenario has no null-free live tuple")
	}
	id, err := sc.Page.ItemID(sc.LiveItems[target])
	if err != nil {
		t.Fatal(err)
	}
	off := int(id.Off) + storage.TupleHeaderSize
	sc.Page[off] ^= 0x01
	if err := sc.CheckStorageOracle(); err == nil {
		t.Fatal("oracle A did not detect a flipped data byte")
	} else {
		t.Logf("oracle A fired: %v", err)
	}
	// Restore; the oracle must go green again (the fault, not the
	// harness, caused the failure).
	sc.Page[off] ^= 0x01
	if err := sc.CheckStorageOracle(); err != nil {
		t.Fatalf("post-restore: %v", err)
	}
}

// TestOracleADetectsWrongLiveness marks a ground-truth-live item dead:
// the oracle must notice the missing row.
func TestOracleADetectsWrongLiveness(t *testing.T) {
	g := NewGen(metaSeed + 1)
	sc, err := g.PageScenario(storage.PageSize8K)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckStorageOracle(); err != nil {
		t.Fatalf("pre-mutation: %v", err)
	}
	if err := sc.Page.DeleteItem(sc.LiveItems[0]); err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckStorageOracle(); err == nil {
		t.Fatal("oracle A did not detect a killed live tuple")
	}
}

// TestOracleBDetectsCorruptWalker mutates the generated walker program
// — widening the header skip so two extra header bytes leak into the
// record stream — and requires the Strider oracle to fail.
func TestOracleBDetectsCorruptWalker(t *testing.T) {
	g := NewGen(metaSeed + 2)
	sc, err := g.StriderScenario(storage.PageSize8K, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	prog, cfg, err := strider.Generate(strider.PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckProgram(prog, cfg); err != nil {
		t.Fatalf("pre-mutation: %v", err)
	}
	mutated := append([]strider.Instr(nil), prog...)
	found := false
	for i, in := range mutated {
		if in.Op == strider.OpClean {
			// The walker's cln skips the 24-byte tuple header; skip 16
			// instead, leaking header bytes into the stream.
			mutated[i].B = strider.Operand(16)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no cln instruction in generated walker")
	}
	if err := sc.CheckProgram(mutated, cfg); err == nil {
		t.Fatal("oracle B did not detect a corrupted walker program")
	} else {
		t.Logf("oracle B fired: %v", err)
	}
}

// TestOracleBDetectsFlippedPayloadByte flips a stored payload byte.
// Both the VM stream and the direct decode see the same corrupt page,
// so only the third leg — generator ground truth — can catch it; this
// proves that leg is load-bearing.
func TestOracleBDetectsFlippedPayloadByte(t *testing.T) {
	g := NewGen(metaSeed + 3)
	sc, err := g.StriderScenario(storage.PageSize8K, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CheckStriderOracle(); err != nil {
		t.Fatalf("pre-mutation: %v", err)
	}
	page := sc.Pages[0]
	id, err := page.ItemID(0)
	if err != nil {
		t.Fatal(err)
	}
	page[int(id.Off)+storage.TupleHeaderSize] ^= 0x80
	err = sc.CheckStriderOracle()
	if err == nil {
		t.Fatal("oracle B did not detect a flipped payload byte")
	}
	if !strings.Contains(err.Error(), "ground truth") {
		t.Fatalf("expected the ground-truth leg to fire, got: %v", err)
	}
}

// TestOracleCDetectsWrongValue perturbs one trained parameter and
// requires the model comparator to fail at every tolerance tier.
func TestOracleCDetectsWrongValue(t *testing.T) {
	sp := GoldenSpec{Kind: algos.KindLinear, NFeat: 4, LR: 0.05, Epochs: 2, MergeCoef: 2}
	g := NewGen(metaSeed + 4)
	tuples, init := trainingData(g, sp, 25)
	golden := append([]float64(nil), init...)
	if err := sp.Train(golden, tuples); err != nil {
		t.Fatal(err)
	}
	tampered := append([]float64(nil), golden...)
	tampered[1] += 0.1 // above every tolerance tier
	for _, tol := range []float64{0, 1e-9, 5e-3} {
		if err := CompareModels("meta", golden, tampered, tol); err == nil {
			t.Fatalf("tol=%g: comparator accepted a perturbed parameter", tol)
		}
	}
	if err := CompareModels("meta", golden, golden, 0); err != nil {
		t.Fatalf("comparator rejected identical models: %v", err)
	}
}

// TestOracleCDetectsWrongTrainer runs the full equivalence check with a
// spec whose golden trainer deliberately disagrees (wrong LR): the
// interpreter leg must fire.
func TestOracleCDetectsWrongTrainer(t *testing.T) {
	sp := GoldenSpec{Kind: algos.KindLogistic, NFeat: 5, LR: 0.1, Epochs: 2, MergeCoef: 1}
	g := NewGen(metaSeed + 5)
	tuples, init := trainingData(g, sp, 25)
	if err := CheckTrainingEquivalence(sp, init, tuples, EquivalenceOpt{SkipEngine: true}); err != nil {
		t.Fatalf("pre-mutation: %v", err)
	}
	golden := append([]float64(nil), init...)
	bad := sp
	bad.LR = sp.LR * 1.001 // the golden trainer drifts from the DSL graph
	if err := bad.Train(golden, tuples); err != nil {
		t.Fatal(err)
	}
	// Reuse the comparator directly against the true interp result.
	good := append([]float64(nil), init...)
	if err := sp.Train(good, tuples); err != nil {
		t.Fatal(err)
	}
	if err := CompareModels("meta", good, golden, 0); err == nil {
		t.Fatal("oracle C did not detect a wrong-LR trainer")
	}
}

// TestOracleCDetectsDroppedCycle decrements one cycle from a stats copy
// — the "drop one cycle charge" fault — and requires the stats
// comparators to fail.
func TestOracleCDetectsDroppedCycle(t *testing.T) {
	a := engine.Stats{Cycles: 1234, ComputeCycles: 1000, LoadCycles: 234, Tuples: 10, Batches: 2, Instructions: 400}
	b := a
	b.Cycles--
	if err := CompareEngineStats("meta", a, b); err == nil {
		t.Fatal("engine stats comparator accepted a dropped cycle")
	}
	if err := CompareEngineStats("meta", a, a); err != nil {
		t.Fatalf("engine stats comparator rejected identical stats: %v", err)
	}
}
