package madlib

import (
	"testing"

	"dana/internal/bufpool"
	"dana/internal/datagen"
	"dana/internal/ml"
	"dana/internal/storage"
)

func setup(t *testing.T, workload string, scale float64) (*bufpool.Pool, *datagen.Dataset) {
	t.Helper()
	w, err := datagen.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datagen.Generate(w, scale, storage.PageSize8K, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(512, storage.PageSize8K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(d.Rel); err != nil {
		t.Fatal(err)
	}
	return pool, d
}

func TestTrainReducesLoss(t *testing.T) {
	pool, d := setup(t, "Patient", 0.02)
	tr, err := New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	model0 := ml.InitModel(d.MLAlgorithm(), 1)
	_, st1, err := tr.Train(1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := New(pool, d.Rel, d.MLAlgorithm())
	_, st10, err := tr2.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if st10.FinalLoss >= st1.FinalLoss {
		t.Errorf("more epochs did not reduce loss: %v -> %v", st1.FinalLoss, st10.FinalLoss)
	}
	_ = model0
	if st10.Tuples != int64(10*d.Tuples) {
		t.Errorf("tuples = %d, want %d", st10.Tuples, 10*d.Tuples)
	}
	if st10.Epochs != 10 {
		t.Errorf("epochs = %d", st10.Epochs)
	}
	if pool.PinnedCount() != 0 {
		t.Error("trainer leaked pins")
	}
}

func TestTrainChargesIO(t *testing.T) {
	pool, d := setup(t, "WLAN", 0.05)
	tr, err := New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := tr.Train(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pool.Misses == 0 || st.Pool.IOSeconds <= 0 {
		t.Errorf("cold run recorded no I/O: %+v", st.Pool)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	pool, d := setup(t, "WLAN", 0.01)
	if _, err := New(pool, d.Rel, ml.Linear{NFeatures: 3, LR: 0.1}); err == nil {
		t.Error("mismatched algorithm accepted")
	}
}

func TestLRMFTraining(t *testing.T) {
	pool, d := setup(t, "Netflix", 0.0005)
	tr, err := New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	model, st, err := tr.Train(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(model) != d.MLAlgorithm().ModelSize() {
		t.Errorf("model size = %d", len(model))
	}
	if st.FinalLoss <= 0 {
		t.Errorf("final loss = %v", st.FinalLoss)
	}
}
