// Package extlib re-implements the out-of-database baselines of §7.3:
// Liblinear- and DimmWitted-style training. Using them from an RDBMS
// means (1) exporting the table out of PostgreSQL, (2) transforming it
// into the library's format, and (3) running the multicore solver —
// the three phases whose breakdown Figure 15a reports. Each phase is
// functional here: export really serializes the relation, transform
// really reparses it, and compute really trains.
package extlib

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"

	"dana/internal/bufpool"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Library selects the emulated external tool.
type Library int

const (
	Liblinear Library = iota
	DimmWitted
)

func (l Library) String() string {
	if l == Liblinear {
		return "Liblinear"
	}
	return "DimmWitted"
}

// Supports reports whether the library implements the algorithm
// (Liblinear has no linear regression, §7.3).
func (l Library) Supports(algo ml.Algorithm) bool {
	if l == Liblinear {
		if _, isLinear := algo.(ml.Linear); isLinear {
			return false
		}
		if _, isLRMF := algo.(ml.LRMF); isLRMF {
			return false
		}
	} else if _, isLRMF := algo.(ml.LRMF); isLRMF {
		return false
	}
	return true
}

// Stats records what each phase touched.
type Stats struct {
	ExportedBytes int64
	Tuples        int64
	Epochs        int
	Threads       int
	FinalLoss     float64
	Pool          bufpool.Stats
}

// Runner drives the export -> transform -> compute pipeline.
type Runner struct {
	Lib     Library
	Pool    *bufpool.Pool
	Rel     *storage.Relation
	Algo    ml.Algorithm
	Threads int // multicore width (paper sweeps 2..16 and takes the best)
}

// New builds a runner.
func New(lib Library, pool *bufpool.Pool, rel *storage.Relation, algo ml.Algorithm, threads int) (*Runner, error) {
	if !lib.Supports(algo) {
		return nil, fmt.Errorf("extlib: %v does not support %s", lib, algo.Name())
	}
	if threads < 1 {
		threads = 1
	}
	return &Runner{Lib: lib, Pool: pool, Rel: rel, Algo: algo, Threads: threads}, nil
}

// Export serializes the relation to a CSV byte stream (PostgreSQL
// COPY TO), reading through the buffer pool.
func (r *Runner) Export() ([]byte, error) {
	var buf bytes.Buffer
	var vals []float64
	for pn := 0; pn < r.Rel.NumPages(); pn++ {
		pg, err := r.Pool.Pin(r.Rel.Name, uint32(pn))
		if err != nil {
			return nil, err
		}
		for i := 0; i < pg.NumItems(); i++ {
			raw, err := pg.Item(i)
			if err != nil {
				r.Pool.Unpin(r.Rel.Name, uint32(pn))
				return nil, err
			}
			vals = vals[:0]
			vals, err = storage.DecodeTuple(r.Rel.Schema, vals, raw)
			if err != nil {
				r.Pool.Unpin(r.Rel.Name, uint32(pn))
				return nil, err
			}
			for j, v := range vals {
				if j > 0 {
					buf.WriteByte(',')
				}
				buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			buf.WriteByte('\n')
		}
		if err := r.Pool.Unpin(r.Rel.Name, uint32(pn)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Transform parses the exported CSV into the library's in-memory dense
// row format.
func Transform(csv []byte, width int) ([][]float64, error) {
	var rows [][]float64
	for _, line := range bytes.Split(csv, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		fields := bytes.Split(line, []byte{','})
		if len(fields) != width {
			return nil, fmt.Errorf("extlib: row has %d fields, want %d", len(fields), width)
		}
		row := make([]float64, width)
		for i, f := range fields {
			v, err := strconv.ParseFloat(string(f), 64)
			if err != nil {
				return nil, fmt.Errorf("extlib: bad field %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Train runs the full pipeline for the given epochs and returns the
// model plus stats. Multicore compute shards tuples across threads and
// averages models each epoch (both libraries' shared-nothing mode).
func (r *Runner) Train(epochs int) ([]float64, Stats, error) {
	if epochs < 1 {
		epochs = 1
	}
	csv, err := r.Export()
	if err != nil {
		return nil, Stats{}, err
	}
	rows, err := Transform(csv, r.Rel.Schema.NumCols())
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{
		ExportedBytes: int64(len(csv)),
		Tuples:        int64(len(rows)),
		Threads:       r.Threads,
	}
	model := ml.InitModel(r.Algo, 1)
	shards := make([][][]float64, r.Threads)
	for i, row := range rows {
		shards[i%r.Threads] = append(shards[i%r.Threads], row)
	}
	for e := 0; e < epochs; e++ {
		locals := make([][]float64, r.Threads)
		var wg sync.WaitGroup
		for t := 0; t < r.Threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := append([]float64(nil), model...)
				for _, tup := range shards[t] {
					r.Algo.Update(local, tup)
				}
				locals[t] = local
			}(t)
		}
		wg.Wait()
		var seen [][]float64
		for t := range locals {
			if len(shards[t]) > 0 {
				seen = append(seen, locals[t])
			}
		}
		if len(seen) > 0 {
			model = ml.AverageModels(seen)
		}
		st.Epochs++
	}
	st.FinalLoss = ml.MeanLoss(r.Algo, model, rows)
	st.Pool = r.Pool.Stats()
	return model, st, nil
}
