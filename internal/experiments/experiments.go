// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) from the reproduction: it compiles each Table 3
// workload at full size, runs hardware generation, takes static cycle
// schedules from the engine, and evaluates the unified cost model for
// all systems. cmd/danabench prints the results; bench_test.go wraps
// them as testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"

	"dana/internal/accessengine"
	"dana/internal/algos"
	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Env fixes the modeled environment for a suite run.
type Env struct {
	Cost      cost.Params
	FPGA      hwgen.FPGA
	PageSize  int
	MergeCoef int // default merge coefficient for dense workloads
	Segments  int // Greenplum segments for the default comparisons
}

// DefaultEnv mirrors the paper's default setup (§7: 32 KB pages, 8 GB
// pool, 8-segment Greenplum, VU9P).
func DefaultEnv() Env {
	return Env{
		Cost:      cost.Default(),
		FPGA:      hwgen.VU9P(),
		PageSize:  storage.PageSize32K,
		MergeCoef: 1024,
		Segments:  8,
	}
}

// mlFor returns the reference algorithm for a workload's full topology.
func mlFor(w datagen.Workload) ml.Algorithm {
	switch w.Kind {
	case algos.KindLinear:
		return ml.Linear{NFeatures: w.Topology[0], LR: w.LR}
	case algos.KindLogistic:
		return ml.Logistic{NFeatures: w.Topology[0], LR: w.LR}
	case algos.KindSVM:
		return ml.SVM{NFeatures: w.Topology[0], LR: w.LR, Lambda: w.Lambda}
	default:
		return ml.LRMF{Users: w.Topology[0], Items: w.Topology[1], Rank: w.Topology[2], LR: w.LR}
	}
}

// Compiled caches the full-size compilation artifacts of one workload.
type Compiled struct {
	W       datagen.Workload
	Coef    int
	Graph   *hdfg.Graph
	Program *engine.Program
	Design  hwgen.Design
}

// CompileWorkload builds the full-size accelerator for a workload.
func CompileWorkload(w datagen.Workload, env Env, mergeCoef int) (*Compiled, error) {
	coef := mergeCoef
	if coef <= 0 {
		coef = env.MergeCoef
	}
	if w.Kind == algos.KindLRMF {
		coef = 1 // sparse row updates: single-threaded acceleration
	}
	a, err := algos.Build(w.Kind, w.Topology, w.Hyper(coef))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	g, err := hdfg.Translate(a)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	prog, err := compiler.Compile(g)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	design, err := hwgen.Generate(prog, env.FPGA, hwgen.Params{
		PageSize:  env.PageSize,
		MergeCoef: coef,
		NumTuples: w.Tuples,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return &Compiled{W: w, Coef: coef, Graph: g, Program: prog, Design: design}, nil
}

// CostWorkload assembles the cost-model inputs for the compiled design.
func (c *Compiled) CostWorkload(env Env) cost.Workload {
	w := c.W
	pages := w.PagesAt(env.PageSize)
	perPage := (env.PageSize - storage.PageHeaderSize) / w.TupleBytes()
	if perPage < 1 {
		perPage = 1
	}
	est := c.Program.Estimate(c.Design.Engine)
	// TABLA baseline: its own single-threaded design point with the
	// whole fabric available to one thread.
	tabla, err := hwgen.TablaDesign(c.Program, env.FPGA, hwgen.Params{
		PageSize: env.PageSize, MergeCoef: 1, NumTuples: c.W.Tuples,
	})
	single := c.Design.Engine
	single.Threads = 1
	if err == nil {
		single = tabla.Engine
	}
	est1 := c.Program.Estimate(single)
	return cost.Workload{
		Tuples:                  w.Tuples,
		DAnAEpochs:              w.DAnAEpochs,
		Columns:                 w.Schema().NumCols(),
		Epochs:                  w.Epochs,
		DatasetBytes:            int64(pages) * int64(env.PageSize),
		Pages:                   pages,
		FlopsPerTuple:           mlFor(w).FlopsPerUpdate(),
		ModelParams:             w.ModelSize(),
		EpochCycles:             est.EpochCycles(w.Tuples, c.Coef, c.Design.Engine.Threads),
		SingleThreadEpochCycles: est1.EpochCycles(w.Tuples, c.Coef, 1),
		StriderPageCycles:       accessengine.PageCycles(w.Schema(), perPage),
		Striders:                c.Design.NumStriders,
	}
}

// SystemTimes are the modeled end-to-end breakdowns of one workload
// across every system.
type SystemTimes struct {
	W      datagen.Workload
	Warm   bool
	Design hwgen.Design

	PG            cost.Breakdown // MADlib + PostgreSQL
	GP            cost.Breakdown // MADlib + Greenplum (env.Segments)
	DAnA          cost.Breakdown
	DAnANoStrider cost.Breakdown
	TABLA         cost.Breakdown
}

// SpeedupDAnAOverPG returns PG time / DAnA time.
func (s SystemTimes) SpeedupDAnAOverPG() float64 { return s.PG.TotalSec / s.DAnA.TotalSec }

// SpeedupDAnAOverGP returns GP time / DAnA time.
func (s SystemTimes) SpeedupDAnAOverGP() float64 { return s.GP.TotalSec / s.DAnA.TotalSec }

// Model evaluates every system on a workload.
func Model(w datagen.Workload, env Env, warm bool) (SystemTimes, error) {
	c, err := CompileWorkload(w, env, 0)
	if err != nil {
		return SystemTimes{}, err
	}
	return c.Times(env, warm), nil
}

// Times evaluates the cost model for a compiled workload.
func (c *Compiled) Times(env Env, warm bool) SystemTimes {
	cw := c.CostWorkload(env)
	return SystemTimes{
		W:             c.W,
		Warm:          warm,
		Design:        c.Design,
		PG:            cost.MADlibPostgres(cw, env.Cost, warm),
		GP:            cost.MADlibGreenplum(cw, env.Cost, env.Segments, warm),
		DAnA:          cost.DAnA(cw, env.Cost, warm),
		DAnANoStrider: cost.DAnANoStrider(cw, env.Cost, warm),
		TABLA:         cost.TABLA(cw, env.Cost, warm),
	}
}

// Geomean returns the geometric mean of xs (1 for empty), computed in
// log space to avoid overflow across 14 workloads.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
