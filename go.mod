module dana

go 1.22
