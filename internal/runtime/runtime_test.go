package runtime

import (
	"math"
	"strings"
	"testing"

	"dana/internal/algos"
	"dana/internal/catalog"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/hdfg"
	"dana/internal/madlib"
	"dana/internal/ml"
	"dana/internal/storage"
)

func smallSystem(t *testing.T) *System {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = storage.PageSize8K
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = 20
	return New(opts)
}

func deployScaled(t *testing.T, s *System, name string, scale float64) *datagen.Dataset {
	t.Helper()
	w, err := datagen.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datagen.Generate(w, scale, s.Opts.PageSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEndToEndLinearThroughSQL(t *testing.T) {
	s := smallSystem(t)
	d := deployScaled(t, s, "Patient", 0.02)
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(10)
	if _, err := s.Register(a, 8, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.DB.Exec("SELECT * FROM dana.linearR('patient')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 384 {
		t.Fatalf("model rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Msg, "DAnA trained") {
		t.Errorf("msg = %q", res.Msg)
	}
	// The trained model must actually fit the data: compare loss against
	// an untrained model.
	var tuples [][]float64
	if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		tuples = append(tuples, append([]float64(nil), vals...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	model := make([]float64, 384)
	for _, r := range res.Rows {
		model[int(r[0])] = r[1]
	}
	alg := d.MLAlgorithm()
	zero := make([]float64, 384)
	if got, base := ml.MeanLoss(alg, model, tuples), ml.MeanLoss(alg, zero, tuples); got > base/3 {
		t.Errorf("trained loss %v vs untrained %v: insufficient learning", got, base)
	}
}

func TestTrainMatchesInterpreter(t *testing.T) {
	s := smallSystem(t)
	d := deployScaled(t, s, "Remote Sensing LR", 0.001)
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(3)
	if _, err := s.Register(a, 8, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 3 {
		t.Errorf("epochs = %d", res.Epochs)
	}
	// Golden model: the hDFG interpreter over the same tuples.
	g, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := hdfg.NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tuples [][]float64
	if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		f32 := make([]float64, len(vals))
		for i, v := range vals {
			f32[i] = float64(float32(v))
		}
		tuples = append(tuples, f32)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if err := it.Epoch(tuples); err != nil {
			t.Fatal(err)
		}
	}
	ref := it.Model()
	for i := range ref {
		diff := math.Abs(float64(res.Model[i]) - ref[i])
		if diff/math.Max(1, math.Abs(ref[i])) > 1e-3 {
			t.Fatalf("model[%d]: engine %v vs interpreter %v", i, res.Model[i], ref[i])
		}
	}
	if res.Engine.Tuples != int64(3*len(tuples)) {
		t.Errorf("engine processed %d tuples, want %d", res.Engine.Tuples, 3*len(tuples))
	}
	if res.Access.Pages == 0 || res.Access.Cycles == 0 {
		t.Errorf("access stats empty: %+v", res.Access)
	}
	if res.SimulatedSeconds <= 0 {
		t.Error("no simulated time")
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("training leaked page pins")
	}
}

func TestTrainLRMFFunctional(t *testing.T) {
	s := smallSystem(t)
	d := deployScaled(t, s, "Netflix", 0.0005)
	a, err := d.DSLAlgo(1)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(2)
	if _, err := s.Register(a, 1, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train("lrmf", d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design.Engine.Threads != 1 {
		t.Errorf("LRMF threads = %d, want 1", res.Design.Engine.Threads)
	}
	if len(res.Model) != (d.Topology[0]+d.Topology[1])*d.Topology[2] {
		t.Errorf("model size = %d", len(res.Model))
	}
}

func TestDAnABeatsMAD_libOnFunctionalCycles(t *testing.T) {
	// The functional pipeline's simulated accelerator seconds must beat
	// the modeled MADlib CPU time for the same scaled run.
	s := smallSystem(t)
	d := deployScaled(t, s, "Remote Sensing LR", 0.002)
	a, err := d.DSLAlgo(64)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(3)
	if _, err := s.Register(a, 64, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := madlib.New(s.Pool(), d.Rel, d.MLAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Train(3); err != nil {
		t.Fatal(err)
	}
	// Modeled MADlib compute: per-tuple overhead x tuples x epochs.
	cpu := float64(3*d.Tuples) * (s.Opts.Cost.TupleBaseSec + float64(d.Rel.Schema.NumCols())*s.Opts.Cost.ColumnDeformSec)
	accel := res.SimulatedSeconds - s.Opts.Cost.SetupSec
	if accel >= cpu {
		t.Errorf("accelerator %.4fs not faster than modeled CPU %.4fs", accel, cpu)
	}
}

func TestTrainUnknownUDFOrTable(t *testing.T) {
	s := smallSystem(t)
	if _, err := s.Train("ghost", "t"); err == nil {
		t.Error("unknown UDF accepted")
	}
	d := deployScaled(t, s, "WLAN", 0.01)
	a, err := d.DSLAlgo(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(a, 4, d.Tuples); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train("logisticR", "ghost_table"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestTrainSchemaMismatch(t *testing.T) {
	s := smallSystem(t)
	d := deployScaled(t, s, "WLAN", 0.01) // 520-feature table
	a := algos.Linear(10, algos.Hyper{LR: 0.1, Epochs: 1})
	if _, err := s.Register(a, 1, d.Tuples); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train("linearR", d.Rel.Name); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	s := smallSystem(t)
	w, _ := datagen.ByName("Patient")
	d, err := datagen.Generate(w, 0.01, s.Opts.PageSize, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(d); err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	// Converge when the merged gradient norm is below a loose bound
	// (trivially true after the first epoch).
	grad := a.MergeNode.Args[0]
	a.SetConvergence(dsl.Lt(dsl.Norm(grad, 1), a.Meta(1e9)))
	a.SetEpochs(1000)
	if _, err := s.Register(a, 8, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 20 { // MaxEpochs would cap at 20
		t.Errorf("did not converge early: %d epochs", res.Epochs)
	}
}

func TestAcceleratorCatalogRecordComplete(t *testing.T) {
	s := smallSystem(t)
	d := deployScaled(t, s, "Remote Sensing LR", 0.001)
	a, err := d.DSLAlgo(16)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := s.Register(a, 16, d.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's catalog record: design, schedule, operation map, and
	// both instruction streams (§6.2).
	if acc.OperationMap == "" || acc.ScheduledCycles <= 0 {
		t.Errorf("schedule missing: map=%d bytes cycles=%d", len(acc.OperationMap), acc.ScheduledCycles)
	}
	if len(acc.StriderProg) == 0 || len(acc.Program.PerTuple) == 0 {
		t.Error("instruction streams missing")
	}
	if !strings.Contains(acc.OperationMap, "ILP") {
		t.Errorf("operation map malformed:\n%s", acc.OperationMap)
	}
	// The record survives serialization.
	data, err := catalog.ExportAccelerator(acc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := catalog.ImportAccelerator(data); err != nil {
		t.Fatal(err)
	}
}
