package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// FaultErrors keeps the typed-fault-sentinel contract intact across
// package boundaries. The whole fault-recovery ladder (page retry →
// quarantine → CPU fallback, PR 4) discriminates failures with
// errors.Is against the internal/fault sentinels; one fmt.Errorf that
// formats a wrapped error with %v instead of %w silently severs the
// chain and turns a recoverable fault into a hard training failure.
//
// In the packages whose errors cross those boundaries (storage,
// bufpool, runtime, and the strider/accessengine trap path) the
// analyzer reports:
//
//   - fmt.Errorf calls that format an error-typed argument with any
//     verb but %w;
//   - fmt.Errorf calls that format a fault sentinel (fault.Err*) with
//     a non-wrapping verb, anywhere in the repo.
var FaultErrors = &Analyzer{
	Name: "faulterrors",
	Doc:  "errors crossing package boundaries must wrap typed fault sentinels with %w",
	Run:  runFaultErrors,
}

// faultErrPkgSuffixes lists packages whose errors feed cross-package
// errors.Is discrimination ("faulterrors" admits test fixtures).
var faultErrPkgSuffixes = []string{
	"internal/storage", "internal/bufpool", "internal/runtime",
	"internal/strider", "internal/accessengine", "internal/fault", "faulterrors",
}

func isFaultErrPkg(pkgPath string) bool {
	for _, s := range faultErrPkgSuffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

func runFaultErrors(pass *Pass) error {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	inScope := isFaultErrPkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%[") {
				return true
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				if i >= len(verbs) {
					break
				}
				verb := verbs[i]
				if verb == 'w' {
					continue
				}
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok {
					continue
				}
				isErr := types.Implements(tv.Type, errorIface) ||
					types.Implements(types.NewPointer(tv.Type), errorIface)
				if !isErr {
					continue
				}
				if obj := namedObject(pass.TypesInfo, arg); obj != nil && isFaultSentinel(obj) {
					pass.Reportf(arg.Pos(),
						"fault sentinel %s formatted with %%%c: use %%w or errors.Is stops matching it",
						obj.Name(), verb)
				} else if inScope {
					pass.Reportf(arg.Pos(),
						"error formatted with %%%c severs the wrap chain: use %%w so typed fault sentinels stay errors.Is-discoverable",
						verb)
				}
			}
			return true
		})
	}
	return nil
}

// namedObject resolves the object an argument names directly: a bare
// identifier or a package-qualified one (fault.ErrVMTrap). rootObject
// would resolve the package name instead of the sentinel.
func namedObject(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[v]
	case *ast.SelectorExpr:
		return info.Uses[v.Sel]
	}
	return nil
}

// isFaultSentinel reports whether obj is an exported Err* package-level
// variable of internal/fault.
func isFaultSentinel(obj types.Object) bool {
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/fault") &&
		strings.HasPrefix(obj.Name(), "Err")
}

// isPkgFunc reports whether call invokes pkg.fn at package level.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[base].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

// formatVerbs extracts the argument-consuming verbs of a format string
// in order ("%d at %s: %w" -> ['d','s','w']).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			// A '*' width consumes an argument too.
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '*' {
			verbs = append(verbs, '*')
			i++
			if i >= len(format) {
				break
			}
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
