package storage

import (
	"encoding/binary"
	"fmt"
)

// InnoDB-style page layout. The paper's Strider ISA claims to "target a
// range of RDBMS engines, such as PostgreSQL and MySQL (innoDB)"
// (§5.1.2); the distinguishing feature of InnoDB pages is that records
// form a singly linked list threaded through the page (each record
// header holds a next-record pointer) instead of PostgreSQL's line
// pointer array — precisely the pointer chasing the ISA is built for.
//
// This is a simplified compact-format page:
//
//	bytes  0..37  FIL header: checksum(4) pageno(4) prev(4) next(4)
//	              lsn(8) type(2) flushLSN(8) spaceID(4)
//	bytes 38..39  record count
//	bytes 40..41  heap top (first free byte)
//	bytes 42..43  offset of the first user record (0 = empty page)
//
// Each record is: header [info(1) heapNo(2) next(2, absolute offset,
// 0 = end of chain)] followed by the fixed-width payload.
const (
	InnoFILHeaderSize    = 38
	InnoPageHeaderSize   = 44 // FIL header + count + heap top + first
	InnoRecordHeaderSize = 5

	innoOffCount   = 38
	innoOffHeapTop = 40
	innoOffFirst   = 42

	innoRecNextOff = 3 // next-pointer offset within the record header
)

// InnoPage is a simplified InnoDB-format page. Records are chained in
// insertion order.
type InnoPage []byte

// NewInnoPage allocates and formats an empty InnoDB-style page.
func NewInnoPage(size int) InnoPage {
	p := InnoPage(make([]byte, size))
	p.Init()
	return p
}

// Init formats the page as empty.
func (p InnoPage) Init() {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint32(p[4:], 0) // page number
	binary.LittleEndian.PutUint16(p[innoOffCount:], 0)
	binary.LittleEndian.PutUint16(p[innoOffHeapTop:], InnoPageHeaderSize)
	binary.LittleEndian.PutUint16(p[innoOffFirst:], 0)
}

// NumRecords returns the record count.
func (p InnoPage) NumRecords() int { return int(binary.LittleEndian.Uint16(p[innoOffCount:])) }

// HeapTop returns the first free byte offset.
func (p InnoPage) HeapTop() int { return int(binary.LittleEndian.Uint16(p[innoOffHeapTop:])) }

// FirstRecord returns the offset of the first user record (0 if none).
func (p InnoPage) FirstRecord() int { return int(binary.LittleEndian.Uint16(p[innoOffFirst:])) }

// AddRecord appends a payload to the record chain. Records are placed
// at the heap top and linked from the previous tail.
func (p InnoPage) AddRecord(payload []byte) error {
	need := InnoRecordHeaderSize + len(payload)
	top := p.HeapTop()
	if top+need > len(p) {
		return fmt.Errorf("%w: inno page full (%d free, need %d)", ErrPageFull, len(p)-top, need)
	}
	// Record header.
	p[top] = 0 // info bits
	binary.LittleEndian.PutUint16(p[top+1:], uint16(p.NumRecords()+1))
	binary.LittleEndian.PutUint16(p[top+innoRecNextOff:], 0) // end of chain
	copy(p[top+InnoRecordHeaderSize:], payload)

	// Link from the previous tail (or the page header for the first).
	if first := p.FirstRecord(); first == 0 {
		binary.LittleEndian.PutUint16(p[innoOffFirst:], uint16(top))
	} else {
		cur := first
		for {
			next := int(binary.LittleEndian.Uint16(p[cur+innoRecNextOff:]))
			if next == 0 {
				break
			}
			cur = next
		}
		binary.LittleEndian.PutUint16(p[cur+innoRecNextOff:], uint16(top))
	}
	binary.LittleEndian.PutUint16(p[innoOffCount:], uint16(p.NumRecords()+1))
	binary.LittleEndian.PutUint16(p[innoOffHeapTop:], uint16(top+need))
	return nil
}

// Records walks the chain and returns each record's payload slice of
// the given width (records alias the page).
func (p InnoPage) Records(width int) ([][]byte, error) {
	if len(p) < InnoPageHeaderSize {
		return nil, fmt.Errorf("%w: inno page of %d bytes smaller than header", ErrCorrupt, len(p))
	}
	if width < 0 {
		return nil, fmt.Errorf("%w: negative record width %d", ErrCorrupt, width)
	}
	var out [][]byte
	cur := p.FirstRecord()
	for n := 0; cur != 0; n++ {
		if n > p.NumRecords() {
			return nil, fmt.Errorf("%w: record chain longer than count %d", ErrCorrupt, p.NumRecords())
		}
		if cur+InnoRecordHeaderSize+width > len(p) {
			return nil, fmt.Errorf("%w: record at %d overruns page", ErrCorrupt, cur)
		}
		out = append(out, p[cur+InnoRecordHeaderSize:cur+InnoRecordHeaderSize+width])
		cur = int(binary.LittleEndian.Uint16(p[cur+innoRecNextOff:]))
	}
	if len(out) != p.NumRecords() {
		return nil, fmt.Errorf("%w: chain has %d records, header says %d", ErrCorrupt, len(out), p.NumRecords())
	}
	return out, nil
}

// InnoRelation is a heap of InnoDB-style pages for one schema (the
// MySQL counterpart of Relation; payloads carry no per-tuple MVCC
// header, only the schema data).
type InnoRelation struct {
	Name     string
	Schema   *Schema
	PageSize int
	pages    []InnoPage
	ntup     int
}

// NewInnoRelation creates an empty InnoDB-style relation.
func NewInnoRelation(name string, schema *Schema, pageSize int) *InnoRelation {
	return &InnoRelation{Name: name, Schema: schema, PageSize: pageSize}
}

// NumPages returns the page count.
func (r *InnoRelation) NumPages() int { return len(r.pages) }

// NumTuples returns the tuple count.
func (r *InnoRelation) NumTuples() int { return r.ntup }

// Page returns page i.
func (r *InnoRelation) Page(i int) (InnoPage, error) {
	if i < 0 || i >= len(r.pages) {
		return nil, fmt.Errorf("storage: inno relation %q has no page %d", r.Name, i)
	}
	return r.pages[i], nil
}

// Insert appends one row.
func (r *InnoRelation) Insert(vals []float64) error {
	buf := make([]byte, r.Schema.DataWidth())
	if err := r.Schema.EncodeValues(buf, vals); err != nil {
		return err
	}
	if len(r.pages) == 0 {
		r.pages = append(r.pages, NewInnoPage(r.PageSize))
	}
	p := r.pages[len(r.pages)-1]
	if err := p.AddRecord(buf); err != nil {
		p = NewInnoPage(r.PageSize)
		r.pages = append(r.pages, p)
		if err := p.AddRecord(buf); err != nil {
			return err
		}
	}
	r.ntup++
	return nil
}
