package hdfg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dana/internal/dsl"
)

// manualLinearSGD applies one plain-SGD linear regression step:
// w -= lr * (w·x - y) * x.
func manualLinearSGD(w []float64, x []float64, y, lr float64) {
	dot := 0.0
	for i := range w {
		dot += w[i] * x[i]
	}
	e := dot - y
	for i := range w {
		w[i] -= lr * e * x[i]
	}
}

func TestInterpSGDMatchesManual(t *testing.T) {
	const n = 8
	g, err := Translate(linearAlgo(n, 0, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	w0 := make([]float64, n)
	for i := range w0 {
		w0[i] = rng.NormFloat64()
	}
	it, err := NewInterp(g, w0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), w0...)
	for step := 0; step < 50; step++ {
		tuple := make([]float64, n+1)
		for i := range tuple {
			tuple[i] = rng.NormFloat64()
		}
		if err := it.StepBatch([][]float64{tuple}); err != nil {
			t.Fatal(err)
		}
		manualLinearSGD(want, tuple[:n], tuple[n], 0.05)
		for i := range want {
			if math.Abs(it.Model()[i]-want[i]) > 1e-12 {
				t.Fatalf("step %d: model[%d] = %v, want %v", step, i, it.Model()[i], want[i])
			}
		}
	}
}

func TestInterpBatchMergeIsSummedGradient(t *testing.T) {
	const n, batch = 4, 8
	g, err := Translate(linearAlgo(n, batch, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([][]float64, batch)
	gradSum := make([]float64, n)
	for b := range tuples {
		tuple := make([]float64, n+1)
		for i := range tuple {
			tuple[i] = rng.NormFloat64()
		}
		tuples[b] = tuple
		// With a zero model, error = -y, gradient = -y*x.
		for i := 0; i < n; i++ {
			gradSum[i] += -tuple[n] * tuple[i]
		}
	}
	if err := it.StepBatch(tuples); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := -0.01 * gradSum[i]
		if math.Abs(it.Model()[i]-want) > 1e-12 {
			t.Fatalf("model[%d] = %v, want %v", i, it.Model()[i], want)
		}
	}
}

func TestInterpLinearConverges(t *testing.T) {
	const n = 5
	a := linearAlgo(n, 8, 0.05)
	a.SetEpochs(200)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	tuples := make([][]float64, 256)
	for j := range tuples {
		tup := make([]float64, n+1)
		y := 0.0
		for i := 0; i < n; i++ {
			tup[i] = rng.NormFloat64()
			y += truth[i] * tup[i]
		}
		tup[n] = y
		tuples[j] = tup
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Train(tuples, 0); err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(it.Model()[i]-truth[i]) > 1e-3 {
			t.Errorf("model[%d] = %v, want %v", i, it.Model()[i], truth[i])
		}
	}
}

func TestInterpConvergenceStopsTraining(t *testing.T) {
	a := linearAlgo(3, 4, 0.1)
	grad := a.MergeNode.Args[0]
	conv := dsl.Lt(dsl.Norm(grad, 1), a.Meta(1e-6))
	a.SetConvergence(conv)
	a.SetEpochs(10000)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero labels and a zero model: gradient is exactly zero, so
	// training converges after the first epoch.
	tuples := [][]float64{{1, 2, 3, 0}, {4, 5, 6, 0}, {7, 8, 9, 0}, {1, 1, 1, 0}}
	epochs, err := it.Train(tuples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 1 {
		t.Errorf("epochs = %d, want 1", epochs)
	}
}

func TestInterpLogisticStep(t *testing.T) {
	// Logistic regression via builder: w -= lr*(sigmoid(w·x) - y)*x.
	const n = 6
	a := dsl.NewAlgo("logit")
	mo := a.Model(n)
	in := a.Input(n)
	out := a.Output()
	lr := a.Meta(0.3)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	p := dsl.Sigmoid(s)
	er := dsl.Sub(p, out)
	grad := dsl.Mul(er, in)
	moUp := dsl.Sub(mo, dsl.Mul(lr, grad))
	a.SetModel(moUp)
	a.SetEpochs(1)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuple := []float64{1, -1, 0.5, 2, 0, 1, 1}
	if err := it.StepBatch([][]float64{tuple}); err != nil {
		t.Fatal(err)
	}
	// Zero model: sigmoid(0)=0.5, err=-0.5, w = -0.3 * -0.5 * x = 0.15x.
	for i := 0; i < n; i++ {
		want := 0.15 * tuple[i]
		if math.Abs(it.Model()[i]-want) > 1e-12 {
			t.Errorf("model[%d] = %v, want %v", i, it.Model()[i], want)
		}
	}
}

func TestInterpLRMFRowUpdates(t *testing.T) {
	const rows, f = 6, 3
	a := dsl.NewAlgo("lrmf")
	mo := a.Model(rows, f)
	u := a.Input()
	v := a.Input()
	r := a.Output()
	lr := a.Meta(0.1)
	ur := dsl.Gather(mo, u)
	vr := dsl.Gather(mo, v)
	pred := dsl.Sigma(dsl.Mul(ur, vr), 1)
	e := dsl.Sub(pred, r)
	uNew := dsl.Sub(ur, dsl.Mul(lr, dsl.Mul(e, vr)))
	vNew := dsl.Sub(vr, dsl.Mul(lr, dsl.Mul(e, ur)))
	a.SetModelRow(u, uNew)
	a.SetModelRow(v, vNew)
	a.SetEpochs(1)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	m0 := make([]float64, rows*f)
	for i := range m0 {
		m0[i] = float64(i%5) * 0.1
	}
	it, err := NewInterp(g, m0)
	if err != nil {
		t.Fatal(err)
	}
	uIdx, vIdx := 1, 4
	rating := 2.0
	// Manual reference.
	uRow := append([]float64(nil), m0[uIdx*f:(uIdx+1)*f]...)
	vRow := append([]float64(nil), m0[vIdx*f:(vIdx+1)*f]...)
	pred0 := 0.0
	for i := 0; i < f; i++ {
		pred0 += uRow[i] * vRow[i]
	}
	e0 := pred0 - rating
	wantU := make([]float64, f)
	wantV := make([]float64, f)
	for i := 0; i < f; i++ {
		wantU[i] = uRow[i] - 0.1*e0*vRow[i]
		wantV[i] = vRow[i] - 0.1*e0*uRow[i]
	}
	if err := it.StepBatch([][]float64{{float64(uIdx), float64(vIdx), rating}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f; i++ {
		if math.Abs(it.Model()[uIdx*f+i]-wantU[i]) > 1e-12 {
			t.Errorf("u[%d] = %v, want %v", i, it.Model()[uIdx*f+i], wantU[i])
		}
		if math.Abs(it.Model()[vIdx*f+i]-wantV[i]) > 1e-12 {
			t.Errorf("v[%d] = %v, want %v", i, it.Model()[vIdx*f+i], wantV[i])
		}
	}
	// Untouched rows stay put.
	if it.Model()[0] != m0[0] || it.Model()[5*f] != m0[5*f] {
		t.Error("row update touched unrelated rows")
	}
}

func TestInterpGatherOutOfRange(t *testing.T) {
	a := dsl.NewAlgo("oob")
	mo := a.Model(4, 2)
	u := a.Input()
	a.Output()
	ur := dsl.Gather(mo, u)
	a.SetModelRow(u, ur)
	a.SetEpochs(1)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{99, 0}}); err == nil {
		t.Error("out-of-range gather should fail")
	}
}

func TestInterpTupleWidthChecked(t *testing.T) {
	g, err := Translate(linearAlgo(4, 0, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{1, 2}}); err == nil {
		t.Error("short tuple should fail")
	}
}

func TestInterpInitModelSizeChecked(t *testing.T) {
	g, err := Translate(linearAlgo(4, 0, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(g, []float64{1}); err == nil {
		t.Error("wrong model size should fail")
	}
}

// Property: one batched step with merge coefficient k on k copies of the
// same tuple equals one SGD step with learning rate scaled by k.
func TestBatchOfIdenticalTuplesProperty(t *testing.T) {
	const n = 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tuple := make([]float64, n+1)
		for i := range tuple {
			tuple[i] = rng.NormFloat64()
		}
		const k = 4
		gB, err := Translate(linearAlgo(n, k, 0.01))
		if err != nil {
			return false
		}
		gS, err := Translate(linearAlgo(n, 0, float64(k)*0.01))
		if err != nil {
			return false
		}
		itB, _ := NewInterp(gB, nil)
		itS, _ := NewInterp(gS, nil)
		batch := make([][]float64, k)
		for i := range batch {
			batch[i] = tuple
		}
		if err := itB.StepBatch(batch); err != nil {
			return false
		}
		if err := itS.StepBatch([][]float64{tuple}); err != nil {
			return false
		}
		for i := range itB.Model() {
			if math.Abs(itB.Model()[i]-itS.Model()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterpRemainingOps(t *testing.T) {
	// Exercise pi, gaussian, gt, div, and sqrt through one expression:
	// conv = sqrt(pi(gaussian(mo / in), 1)) > 0.5
	a := dsl.NewAlgo("ops")
	mo := a.Model(3)
	in := a.Input(3)
	a.Output()
	g := dsl.Gaussian(dsl.Div(mo, in))
	p := dsl.Pi(g, 1)
	s := dsl.Sqrt(p)
	conv := dsl.Gt(s, a.Meta(0.5))
	a.SetModel(mo)
	a.SetConvergence(conv)
	a.SetEpochs(1)
	g2, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g2, []float64{0.1, -0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tuple := []float64{1, 2, -1, 0}
	if err := it.StepBatch([][]float64{tuple}); err != nil {
		t.Fatal(err)
	}
	// Manual: x_i = mo_i / in_i = {0.1, -0.1, -0.3};
	// gaussian = exp(-x^2); product; sqrt; > 0.5.
	prod := 1.0
	for _, x := range []float64{0.1, -0.1, -0.3} {
		prod *= math.Exp(-x * x)
	}
	want := math.Sqrt(prod) > 0.5
	got, err := it.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Converged = %v, want %v (sqrt(prod)=%v)", got, want, math.Sqrt(prod))
	}
}

func TestInterpMatrixAxisReductions(t *testing.T) {
	// sigma over both axes of a [2,3] intermediate.
	a := dsl.NewAlgo("axes")
	mo := a.Model(2, 3)
	in := a.Input()
	a.Output()
	scaled := dsl.Mul(mo, in)    // scalar broadcast over the matrix
	rows := dsl.Sigma(scaled, 2) // [2]: row sums
	cols := dsl.Sigma(scaled, 1) // [3]: column sums
	tot := dsl.Sigma(rows, 1)
	conv := dsl.Lt(dsl.Add(tot, dsl.Sigma(cols, 1)), a.Meta(1e18))
	a.SetModel(mo)
	a.SetConvergence(conv)
	a.SetEpochs(1)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(g, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{{2, 0}}); err != nil {
		t.Fatal(err)
	}
	// The reductions feed only the convergence check, so they evaluate
	// in the per-epoch stage.
	if _, err := it.Converged(); err != nil {
		t.Fatal(err)
	}
	// rows = {12, 30}; cols = {10, 14, 18}; totals both 42.
	var rowsN, colsN *Node
	for _, n := range g.Nodes {
		if n.Op == dsl.OpSigma && n.Shape.Equal(Shape{2}) {
			rowsN = n
		}
		if n.Op == dsl.OpSigma && n.Shape.Equal(Shape{3}) {
			colsN = n
		}
	}
	if rowsN == nil || colsN == nil {
		t.Fatal("reduction nodes missing")
	}
	if v := it.vals[rowsN.ID]; v[0] != 12 || v[1] != 30 {
		t.Errorf("row sums = %v", v)
	}
	if v := it.vals[colsN.ID]; v[0] != 10 || v[1] != 14 || v[2] != 18 {
		t.Errorf("col sums = %v", v)
	}
}
