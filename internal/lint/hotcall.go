package lint

// hotcall closes hotalloc's guarantee over the call graph: a
// //dana:hotpath function's own body is allocation-free (hotalloc),
// and hotcall adds that every function it can REACH is too. The paper's
// compute model (§4) assumes the access engine's steady-state page loop
// never touches the Go allocator; a helper two calls down that builds a
// slice per record would void that silently. hotcall walks each hot
// function's call sites and reports any callee whose summary carries a
// transitive allocation, rendering the offending chain so the
// diagnostic names the actual allocation site, not just the call.
//
// Refinements and caveats, shared with the summary layer (summary.go):
// call sites in early-exit branches are cold and exempt; allocations
// under an audited //danalint:ignore hotalloc/hotcall suppression do
// not propagate; calls through func values are unresolved and skipped
// (DESIGN.md "Soundness caveats"); interface calls fan out over module
// implementations (CHA) and report if ANY implementation allocates;
// external callees must appear on the reviewed allocation-free
// allowlist — unlisted externals fail closed.

// HotCall enforces transitive allocation-freedom for //dana:hotpath
// functions.
var HotCall = &Analyzer{
	Name: "hotcall",
	Doc: "hotpath functions may only call callees whose summaries prove " +
		"allocation-freedom (transitive closure of //dana:hotpath)",
	Run: runHotCall,
}

func runHotCall(pass *Pass) error {
	m := pass.Mod
	if m == nil {
		return nil
	}
	for _, id := range m.FuncIDs() {
		fi := m.Funcs[id]
		if fi.Pkg != pass.Unit || !fi.Hot {
			continue
		}
		for _, site := range fi.Calls {
			if site.Cold || site.Unresolved {
				continue
			}
			verb := "calls"
			if site.Dynamic {
				verb = "may call (interface dispatch)"
			}
			for _, callee := range site.Callees {
				if cs, ok := m.Summaries[callee]; ok {
					if cs.TransAllocs {
						pass.Reportf(site.Pos, "hotpath %s %s %s, which allocates: %s",
							fi.Obj.Name(), verb, shortFuncID(callee), cs.TransAllocDesc)
					}
					continue
				}
				if why := externAllocs(callee); why != "" {
					pass.Reportf(site.Pos, "hotpath %s %s %s: %s",
						fi.Obj.Name(), verb, shortFuncID(callee), why)
				}
			}
		}
	}
	return nil
}
