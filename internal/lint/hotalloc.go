package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc protects the zero-copy extraction/merge guarantee: functions
// marked with a `//dana:hotpath` doc-comment directive run once per
// page (or per merge batch) in the steady state, and a heap allocation
// there turns into per-tuple GC pressure that the channel arenas exist
// to eliminate. Inside marked functions the analyzer reports:
//
//   - make, new, and non-self appends (`x = append(x, ...)` — including
//     a resliced LHS like `x = append(x[:0], ...)` — is the
//     capacity-backed reuse idiom and stays exempt);
//   - heap-bound composite literals: &T{...}, slice and map literals
//     (plain struct *values* do not allocate and pass);
//   - func literals (closures capture and escape), except a literal
//     deferred directly — open-coded defers stay on the stack;
//   - go statements (a goroutine per page is exactly the churn the
//     per-epoch worker pool avoids);
//   - string concatenation and string<->[]byte/[]rune conversions.
//
// Plain function calls are NOT flagged: cold error paths may build
// fmt.Errorf values, and callee analysis is the callee's own mark to
// opt into. Audited exceptions (capacity-guarded growth, counted arena
// overflow fallbacks) use `//danalint:ignore hotalloc -- reason`.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no heap allocation in //dana:hotpath extraction and merge functions",
	Run:  runHotAlloc,
}

// hotpathDirective marks a function as allocation-free-by-contract.
const hotpathDirective = "dana:hotpath"

func isHotpathMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpathMarked(fn.Doc) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	// Appends whose destination reuses the appended slice's backing
	// array, and func literals consumed by an open-coded defer, are
	// exempt; collect them first so the flat walk below can skip them.
	selfAppends := map[*ast.CallExpr]bool{}
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) || !isBuiltinCall(pass, call, "append") || len(call.Args) == 0 {
					continue
				}
				if exprText(stripReslice(call.Args[0])) == exprText(n.Lhs[i]) {
					selfAppends[call] = true
				}
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, name, n, selfAppends)
		case *ast.CompositeLit:
			checkHotComposite(pass, name, n)
		case *ast.FuncLit:
			if !deferredLits[n] {
				pass.Reportf(n.Pos(),
					"func literal in hot path %s: closures allocate; hoist the function or its captured state", name)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"go statement in hot path %s: spawns a goroutine per call; use a persistent worker pool", name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(),
						"&composite literal in hot path %s: escapes to the heap; reuse a pooled or hoisted value", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringUnderlying(pass.TypesInfo.Types[n.X].Type) {
				pass.Reportf(n.Pos(),
					"string concatenation in hot path %s: allocates a new string per call", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringUnderlying(pass.TypesInfo.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(),
					"string concatenation in hot path %s: allocates a new string per call", name)
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(),
					"make in hot path %s: allocates per call; hoist the buffer to the enclosing struct and reuse it", name)
			case "new":
				pass.Reportf(call.Pos(),
					"new in hot path %s: allocates per call; reuse a pooled or arena-backed value", name)
			case "append":
				if !selfAppends[call] {
					pass.Reportf(call.Pos(),
						"append to a different slice in hot path %s: copies into fresh backing storage; append in place (x = append(x, ...))", name)
				}
			}
			return
		}
	}
	// A call whose operand position holds a type is a conversion;
	// string <-> byte/rune-slice conversions copy their payload.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, src := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if (isStringUnderlying(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringUnderlying(src)) {
		pass.Reportf(call.Pos(),
			"string conversion in hot path %s: copies the payload per call", name)
	}
}

// checkHotComposite flags composite literals that force a heap
// allocation: slice and map literals always allocate backing storage,
// and &T{...} escapes in every interesting case. Plain struct values
// (batchJob{...} handed to a channel, PageResult{} zeroing) live in
// registers or on the stack and pass.
func checkHotComposite(pass *Pass, name string, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(),
			"slice literal in hot path %s: allocates backing storage per call; reuse a hoisted buffer", name)
	case *types.Map:
		pass.Reportf(lit.Pos(),
			"map literal in hot path %s: allocates per call; hoist the map and clear it instead", name)
	}
}

// stripReslice unwraps parens and slice expressions: append(x[:0], ...)
// reuses x's backing array, so the self-append exemption compares the
// root expression.
func stripReslice(e ast.Expr) ast.Expr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = v.X
		default:
			return v
		}
	}
}

// exprText renders an expression for syntactic equality (identifiers,
// selectors, and index expressions — the shapes append destinations
// take).
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isStringUnderlying(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
