package algos

import (
	"testing"

	"dana/internal/hdfg"
)

func TestBuildAllKinds(t *testing.T) {
	cases := []struct {
		kind     Kind
		topology []int
		width    int // expected tuple width
		model    int // expected model size
	}{
		{KindLinear, []int{12}, 13, 12},
		{KindLogistic, []int{7}, 8, 7},
		{KindSVM, []int{20}, 21, 20},
		{KindLRMF, []int{30, 40, 5}, 3, 350},
	}
	for _, c := range cases {
		a, err := Build(c.kind, c.topology, Hyper{LR: 0.1, MergeCoef: 8, Epochs: 3})
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		g, err := hdfg.Translate(a)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if g.TupleWidth() != c.width {
			t.Errorf("%s: tuple width %d, want %d", c.kind, g.TupleWidth(), c.width)
		}
		if g.ModelSize() != c.model {
			t.Errorf("%s: model size %d, want %d", c.kind, g.ModelSize(), c.model)
		}
		if g.Epochs != 3 {
			t.Errorf("%s: epochs %d", c.kind, g.Epochs)
		}
		if c.kind == KindLRMF {
			if g.Merge != nil || len(g.RowUpdates) != 2 {
				t.Errorf("%s: merge=%v rowUpdates=%d", c.kind, g.Merge, len(g.RowUpdates))
			}
		} else if g.Merge == nil || g.MergeCoef != 8 {
			t.Errorf("%s: merge missing (coef %d)", c.kind, g.MergeCoef)
		}
	}
}

func TestHyperDefaults(t *testing.T) {
	a := Linear(4, Hyper{})
	if a.Epochs != 1 {
		t.Errorf("default epochs = %d", a.Epochs)
	}
	if a.MergeNode != nil {
		t.Error("merge node without coefficient")
	}
	s := SVM(4, Hyper{})
	foundLambda := false
	for _, m := range s.Metas {
		if m.MetaValue == 0.01 {
			foundLambda = true
		}
	}
	if !foundLambda {
		t.Error("SVM default lambda missing")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(KindLRMF, []int{3}, Hyper{}); err == nil {
		t.Error("LRMF with 1-element topology accepted")
	}
	if _, err := Build(Kind("dnn"), []int{3}, Hyper{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestNoMergeWhenCoefOne(t *testing.T) {
	for _, coef := range []int{0, 1} {
		a := Logistic(5, Hyper{MergeCoef: coef})
		if a.MergeNode != nil {
			t.Errorf("coef %d produced a merge node", coef)
		}
	}
}
