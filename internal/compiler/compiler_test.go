package compiler

import (
	"math"
	"math/rand"
	"testing"

	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hdfg"
)

func linearAlgo(nFeat, mergeCoef int, lr float64) *dsl.Algo {
	a := dsl.NewAlgo("linearR")
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lrE := a.Meta(lr)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	er := dsl.Sub(s, out)
	grad := dsl.Mul(er, in)
	moUp := dsl.Sub(mo, dsl.Mul(lrE, grad))
	if mergeCoef > 0 {
		a.MustMerge(grad, mergeCoef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(1)
	return a
}

func logisticAlgo(nFeat, mergeCoef int, lr float64) *dsl.Algo {
	a := dsl.NewAlgo("logit")
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lrE := a.Meta(lr)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	p := dsl.Sigmoid(s)
	er := dsl.Sub(p, out)
	grad := dsl.Mul(er, in)
	moUp := dsl.Sub(mo, dsl.Mul(lrE, grad))
	if mergeCoef > 0 {
		a.MustMerge(grad, mergeCoef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(1)
	return a
}

// svmAlgo: hinge-loss SGD: grad = lambda*w - 1[y*(w.x) < 1]*y*x.
func svmAlgo(nFeat, mergeCoef int, lr, lambda float64) *dsl.Algo {
	a := dsl.NewAlgo("svm")
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lrE := a.Meta(lr)
	lam := a.Meta(lambda)
	one := a.Meta(1)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	margin := dsl.Mul(out, s)
	ind := dsl.Lt(margin, one) // 1 if margin < 1
	hinge := dsl.Mul(ind, dsl.Mul(out, in))
	grad := dsl.Sub(dsl.Mul(lam, mo), hinge)
	moUp := dsl.Sub(mo, dsl.Mul(lrE, grad))
	if mergeCoef > 0 {
		a.MustMerge(grad, mergeCoef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(1)
	return a
}

func lrmfAlgo(rows, f int, lr float64) *dsl.Algo {
	a := dsl.NewAlgo("lrmf")
	mo := a.Model(rows, f)
	u := a.Input()
	v := a.Input()
	r := a.Output()
	lrE := a.Meta(lr)
	ur := dsl.Gather(mo, u)
	vr := dsl.Gather(mo, v)
	pred := dsl.Sigma(dsl.Mul(ur, vr), 1)
	e := dsl.Sub(pred, r)
	uNew := dsl.Sub(ur, dsl.Mul(lrE, dsl.Mul(e, vr)))
	vNew := dsl.Sub(vr, dsl.Mul(lrE, dsl.Mul(e, ur)))
	a.SetModelRow(u, uNew)
	a.SetModelRow(v, vNew)
	a.SetEpochs(1)
	return a
}

func mustCompile(t *testing.T, a *dsl.Algo) (*hdfg.Graph, *engine.Program) {
	t.Helper()
	g, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func randTuples(n, width int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		t := make([]float64, width)
		for j := range t {
			t[j] = float64(float32(rng.NormFloat64()))
		}
		out[i] = t
	}
	return out
}

func toF32(ts [][]float64) [][]float32 {
	out := make([][]float32, len(ts))
	for i, t := range ts {
		r := make([]float32, len(t))
		for j, v := range t {
			r[j] = float32(v)
		}
		out[i] = r
	}
	return out
}

// crossValidate trains both the reference interpreter and the compiled
// accelerator on the same data and compares final models.
func crossValidate(t *testing.T, a *dsl.Algo, cfg engine.Config, tuples [][]float64, epochs int, tol float64) {
	t.Helper()
	g, p := mustCompile(t, a)
	it, err := hdfg.NewInterp(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f32 := toF32(tuples)
	for e := 0; e < epochs; e++ {
		if err := it.Epoch(tuples); err != nil {
			t.Fatal(err)
		}
		if err := m.RunEpoch(f32, g.MergeCoef); err != nil {
			t.Fatal(err)
		}
	}
	ref := it.Model()
	got := m.Model()
	for i := range ref {
		diff := math.Abs(float64(got[i]) - ref[i])
		scale := math.Max(1, math.Abs(ref[i]))
		if diff/scale > tol {
			t.Fatalf("model[%d]: engine %v vs reference %v (tol %v)", i, got[i], ref[i], tol)
		}
	}
}

func cfg(threads, acs int) engine.Config {
	return engine.Config{Threads: threads, ACsPerThread: acs, AUsPerAC: engine.DefaultAUsPerAC, ClockHz: 150e6}
}

func TestLinearSGDMatchesReference(t *testing.T) {
	a := linearAlgo(10, 0, 0.05)
	crossValidate(t, a, cfg(1, 2), randTuples(200, 11, 1), 2, 1e-3)
}

func TestLinearBatchedMatchesReference(t *testing.T) {
	a := linearAlgo(16, 8, 0.01)
	crossValidate(t, a, cfg(8, 1), randTuples(256, 17, 2), 2, 1e-3)
}

func TestLogisticMatchesReference(t *testing.T) {
	a := logisticAlgo(12, 4, 0.1)
	crossValidate(t, a, cfg(4, 2), randTuples(128, 13, 3), 2, 1e-3)
}

func TestSVMMatchesReference(t *testing.T) {
	tuples := randTuples(128, 9, 4)
	for _, tp := range tuples {
		if tp[8] >= 0 {
			tp[8] = 1
		} else {
			tp[8] = -1
		}
	}
	a := svmAlgo(8, 8, 0.05, 0.01)
	crossValidate(t, a, cfg(8, 1), tuples, 2, 1e-3)
}

func TestLRMFMatchesReference(t *testing.T) {
	const rows, f = 20, 6
	rng := rand.New(rand.NewSource(5))
	tuples := make([][]float64, 100)
	for i := range tuples {
		tuples[i] = []float64{
			float64(rng.Intn(10)),      // user row 0..9
			float64(10 + rng.Intn(10)), // item row 10..19
			float64(float32(rng.NormFloat64())),
		}
	}
	a := lrmfAlgo(rows, f, 0.05)
	g, p := mustCompile(t, a)
	init := make([]float64, rows*f)
	for i := range init {
		init[i] = 0.1 * float64(i%7)
	}
	it, err := hdfg.NewInterp(g, init)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewMachine(p, cfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	init32 := make([]float32, len(init))
	for i, v := range init {
		init32[i] = float32(v)
	}
	if err := m.SetModel(init32); err != nil {
		t.Fatal(err)
	}
	if err := it.Epoch(tuples); err != nil {
		t.Fatal(err)
	}
	if err := m.RunEpoch(toF32(tuples), 1); err != nil {
		t.Fatal(err)
	}
	ref, got := it.Model(), m.Model()
	for i := range ref {
		if math.Abs(float64(got[i])-ref[i]) > 1e-3 {
			t.Fatalf("model[%d]: %v vs %v", i, got[i], ref[i])
		}
	}
}

func TestRowUpdatesWithMergeRejected(t *testing.T) {
	a := lrmfAlgo(10, 4, 0.1)
	// Force a merge node in.
	if _, err := a.Merge(a.RowUpdates[0].Val, 4, "+"); err != nil {
		t.Fatal(err)
	}
	g, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(g); err == nil {
		t.Error("row updates + merge should be rejected")
	}
}

func TestConvergenceProgram(t *testing.T) {
	a := linearAlgo(6, 4, 0.1)
	grad := a.MergeNode.Args[0]
	a.SetConvergence(dsl.Lt(dsl.Norm(grad, 1), a.Meta(1e-5)))
	g, p := mustCompile(t, a)
	if p.ConvSlot.Len != 1 {
		t.Fatalf("conv slot = %v", p.ConvSlot)
	}
	if len(p.Convergence) == 0 {
		t.Fatal("no convergence instructions")
	}
	m, err := engine.NewMachine(p, cfg(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Zero labels + zero model: gradient 0 -> converged after first epoch.
	tuples := make([][]float32, 8)
	for i := range tuples {
		tuples[i] = make([]float32, 7)
		for j := 0; j < 6; j++ {
			tuples[i][j] = float32(i + j)
		}
	}
	epochs, err := m.Train(tuples, g.MergeCoef, 50)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 1 {
		t.Errorf("epochs = %d, want 1", epochs)
	}
}

func TestContractionLowering(t *testing.T) {
	// sigma(mo*in, 2) with mo=[5][10], in=[2][10] -> [5][2]: validate the
	// compiled program computes a generalized mat-mat contraction.
	a := dsl.NewAlgo("c")
	mo := a.Model(5, 10)
	in := a.Input(2, 10)
	s := dsl.Sigma(dsl.Mul(mo, in), 2)
	// Model update: mo - 0*anything keeps model; we only check s's value,
	// so route s into convergence.
	a.SetModel(mo)
	a.SetEpochs(1)
	a.SetConvergence(dsl.Lt(dsl.Norm(dsl.Norm(s, 1), 1), a.Meta(1e30)))
	g, p := mustCompile(t, a)
	m, err := engine.NewMachine(p, cfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	model := make([]float32, 50)
	for i := range model {
		model[i] = float32(rng.NormFloat64())
	}
	if err := m.SetModel(model); err != nil {
		t.Fatal(err)
	}
	tuple := make([]float32, 20)
	for i := range tuple {
		tuple[i] = float32(rng.NormFloat64())
	}
	if err := m.RunBatch([][]float32{tuple}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Converged(); err != nil {
		t.Fatal(err)
	}
	// Cross-check against the interpreter.
	it, err := hdfg.NewInterp(g, f64(model))
	if err != nil {
		t.Fatal(err)
	}
	if err := it.StepBatch([][]float64{f64(tuple)}); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Converged(); err != nil {
		t.Fatal(err)
	}
	// Converged must agree (both false, threshold enormous means true).
}

func f64(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func TestEstimateMatchesDynamicWithMerge(t *testing.T) {
	a := linearAlgo(32, 8, 0.01)
	g, p := mustCompile(t, a)
	c := cfg(8, 2)
	m, err := engine.NewMachine(p, c)
	if err != nil {
		t.Fatal(err)
	}
	tuples := toF32(randTuples(64, 33, 6))
	if err := m.RunEpoch(tuples, g.MergeCoef); err != nil {
		t.Fatal(err)
	}
	est := p.Estimate(c)
	want := est.EpochCycles(64, g.MergeCoef, c.Threads)
	if got := m.Stats().Cycles; got != want {
		t.Errorf("dynamic %d != static %d", got, want)
	}
}

func TestThreadScalingReducesCycles(t *testing.T) {
	a := linearAlgo(64, 16, 0.01)
	_, p := mustCompile(t, a)
	est1 := p.Estimate(cfg(1, 2))
	est8 := p.Estimate(cfg(8, 2))
	c1 := est1.EpochCycles(1024, 16, 1)
	c8 := est8.EpochCycles(1024, 16, 8)
	if c8 >= c1 {
		t.Errorf("8 threads (%d) should beat 1 thread (%d)", c8, c1)
	}
}

func TestCompiledProgramShape(t *testing.T) {
	_, p := mustCompile(t, linearAlgo(10, 8, 0.3))
	if p.ModelSlot.Len != 10 || p.InputSlot.Len != 11 {
		t.Errorf("model=%v input=%v", p.ModelSlot, p.InputSlot)
	}
	if !p.HasMerge() {
		t.Fatal("merge missing")
	}
	if p.MergeSrc.Len != 10 || p.MergeDst.Len != 10 {
		t.Errorf("merge src=%v dst=%v", p.MergeSrc, p.MergeDst)
	}
	if len(p.PerTuple) == 0 || len(p.PostMerge) == 0 {
		t.Errorf("perTuple=%d postMerge=%d", len(p.PerTuple), len(p.PostMerge))
	}
	if p.UpdatedSlot.Len != 10 {
		t.Errorf("updated = %v", p.UpdatedSlot)
	}
	if len(p.Consts) != 1 || p.Consts[0] != float32(0.3) {
		t.Errorf("consts = %v", p.Consts)
	}
}
