// Fraud detection with a linear SVM: trains the hinge-loss SVM UDF on
// a labeled transaction table and shows how the hardware generator's
// design-space exploration trades threads against per-thread resources
// as the merge coefficient grows (the paper's Figure 12 study, run
// functionally at small scale).
//
//	go run ./examples/fraudsvm
package main

import (
	"fmt"
	"log"

	"dana"
)

func main() {
	eng, err := dana.Open(dana.Config{PageSize: 16 << 10, PoolBytes: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}

	ds, err := eng.LoadWorkload("Remote Sensing SVM", 0.005, 23)
	if err != nil {
		log.Fatal(err)
	}
	nf := ds.Topology[0]
	fmt.Printf("transactions table %q: %d rows, %d features\n", ds.Rel.Name, ds.Tuples, nf)

	const epochs = 4
	rows, err := eng.SQL("SELECT * FROM " + ds.Rel.Name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-8s %-12s %-14s %-10s\n", "merge", "threads", "ACs/thread", "engine cycles", "accuracy")
	for _, coef := range []int{1, 8, 64, 512} {
		algo, err := ds.DSLAlgo(coef)
		if err != nil {
			log.Fatal(err)
		}
		algo.Name = fmt.Sprintf("svm_m%d", coef)
		algo.SetEpochs(epochs)
		if err := eng.RegisterUDF(algo, coef); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Train(algo.Name, ds.Rel.Name)
		if err != nil {
			log.Fatal(err)
		}
		// Classification accuracy on the training rows.
		correct := 0
		for _, tup := range rows.Rows {
			var s float64
			for j := 0; j < nf; j++ {
				s += float64(res.Model[j]) * tup[j]
			}
			if (s >= 0) == (tup[nf] > 0) {
				correct++
			}
		}
		fmt.Printf("%-6d %-8d %-12d %-14d %.1f%%\n",
			coef, res.Design.Engine.Threads, res.Design.Engine.ACsPerThread,
			res.Engine.Cycles, 100*float64(correct)/float64(len(rows.Rows)))
	}
	fmt.Println("\nhigher merge coefficients unlock more threads and fewer cycles,")
	fmt.Println("while batched-gradient training preserves classifier quality.")
}
