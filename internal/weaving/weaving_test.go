package weaving

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dana/internal/storage"
)

var gridRange = storage.WeaveRange{Offset: -1, Scale: 2}

// gridVal lands on the 2⁻²³ grid in [-1,1): lossless under gridRange.
func gridVal(n uint32) float32 {
	return float32(n%(1<<24))*float32(1.0/(1<<23)) - 1
}

func buildPage(t *testing.T, ncols, nrows int, seed int64, grid bool) (storage.WeavePage, [][]float32, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ranges := make([]storage.WeaveRange, ncols)
	feats := make([][]float32, nrows)
	labels := make([]float32, nrows)
	for c := range ranges {
		ranges[c] = gridRange
	}
	for r := range feats {
		row := make([]float32, ncols)
		for c := range row {
			if grid {
				row[c] = gridVal(rng.Uint32())
			} else {
				row[c] = 2*rng.Float32() - 1
			}
		}
		feats[r] = row
		labels[r] = float32(rng.NormFloat64())
	}
	p, err := storage.BuildWeavePage(ranges, feats, labels)
	if err != nil {
		t.Fatalf("BuildWeavePage: %v", err)
	}
	return p, feats, labels
}

func TestNewExtractorBounds(t *testing.T) {
	for _, bits := range []int{-1, 0, 33, 100} {
		if _, err := NewExtractor(bits); err == nil {
			t.Errorf("NewExtractor(%d) accepted", bits)
		}
	}
	e, err := NewExtractor(32)
	if err != nil || e.Bits() != 32 {
		t.Fatalf("NewExtractor(32) = %v, %v", e, err)
	}
}

func TestDecodeFullWidthBitExact(t *testing.T) {
	const ncols, nrows = 4, 200
	p, feats, labels := buildPage(t, ncols, nrows, 1, true)
	e, _ := NewExtractor(storage.WeaveMaxBits)
	rows, err := e.DecodeRows(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != nrows {
		t.Fatalf("decoded %d rows, want %d", len(rows), nrows)
	}
	for r, row := range rows {
		if len(row) != ncols+1 {
			t.Fatalf("row %d has %d values", r, len(row))
		}
		for c := 0; c < ncols; c++ {
			if row[c] != feats[r][c] {
				t.Fatalf("row %d col %d: decoded %v, wove %v (grid data must be bit-exact at k=32)",
					r, c, row[c], feats[r][c])
			}
		}
		if row[ncols] != labels[r] {
			t.Fatalf("row %d label: decoded %v, wove %v", r, row[ncols], labels[r])
		}
	}
}

func TestDecodeMatchesScalarDequantize(t *testing.T) {
	// The word-parallel gather must agree exactly with the scalar
	// quantize→truncate→dequantize pipeline at every precision — this
	// pins the decode contract independent of error bounds.
	const ncols, nrows = 3, 190 // partial final plane word
	p, feats, labels := buildPage(t, ncols, nrows, 2, false)
	for _, bits := range []int{1, 2, 3, 7, 8, 15, 16, 27, 31, 32} {
		e, _ := NewExtractor(bits)
		rows, err := e.DecodeRows(p)
		if err != nil {
			t.Fatal(err)
		}
		for r, row := range rows {
			for c := 0; c < ncols; c++ {
				q := storage.WeaveQuantize(feats[r][c], gridRange)
				want := storage.WeaveDequantize(q, bits, gridRange)
				if row[c] != want {
					t.Fatalf("bits=%d row=%d col=%d: decoded %v, scalar pipeline %v", bits, r, c, row[c], want)
				}
			}
			if row[ncols] != labels[r] {
				t.Fatalf("bits=%d row=%d: label %v, want %v", bits, r, row[ncols], labels[r])
			}
		}
	}
}

func TestDecodeBoundedError(t *testing.T) {
	const ncols, nrows = 2, 100
	p, feats, _ := buildPage(t, ncols, nrows, 3, false)
	for _, bits := range []int{4, 8, 16, 24} {
		e, _ := NewExtractor(bits)
		rows, err := e.DecodeRows(p)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(gridRange.Scale)*(math.Pow(2, -float64(bits))+math.Pow(2, -31)) + 1e-5
		for r, row := range rows {
			for c := 0; c < ncols; c++ {
				if diff := math.Abs(float64(row[c]) - float64(feats[r][c])); diff > bound {
					t.Fatalf("bits=%d row=%d col=%d: |err| %g > bound %g", bits, r, c, diff, bound)
				}
			}
		}
	}
}

func TestDecodePageRejectsCorrupt(t *testing.T) {
	p, _, _ := buildPage(t, 2, 70, 4, true)
	e, _ := NewExtractor(8)
	bad := append(storage.WeavePage(nil), p...)
	bad[0] ^= 0xFF
	if err := e.DecodePage(bad, nil, func([]float32) error { return nil }); !errors.Is(err, storage.ErrWeaveCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrWeaveCorrupt", err)
	}
	if err := e.DecodePage(p[:len(p)-1], nil, func([]float32) error { return nil }); !errors.Is(err, storage.ErrWeaveCorrupt) {
		t.Fatalf("truncated planes: err = %v, want ErrWeaveCorrupt", err)
	}
}

func TestDecodePageEmitError(t *testing.T) {
	p, _, _ := buildPage(t, 2, 70, 5, true)
	e, _ := NewExtractor(8)
	boom := errors.New("boom")
	calls := 0
	err := e.DecodePage(p, nil, func([]float32) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err = %v after %d calls, want boom after 3", err, calls)
	}
}

func TestDecodeReusesScratchAcrossPages(t *testing.T) {
	// A second, smaller page must not see stale codes from the first:
	// Prepare re-zeros the scratch prefix it exposes.
	big, _, _ := buildPage(t, 3, 150, 6, true)
	small, feats, _ := buildPage(t, 2, 40, 7, true)
	e, _ := NewExtractor(storage.WeaveMaxBits)
	if _, err := e.DecodeRows(big); err != nil {
		t.Fatal(err)
	}
	rows, err := e.DecodeRows(small)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range rows {
		for c := 0; c < 2; c++ {
			if row[c] != feats[r][c] {
				t.Fatalf("row %d col %d: %v, want %v (stale scratch?)", r, c, row[c], feats[r][c])
			}
		}
	}
}

func TestTrailingZeros64(t *testing.T) {
	if got := trailingZeros64(0); got != 64 {
		t.Fatalf("trailingZeros64(0) = %d", got)
	}
	for i := 0; i < 64; i++ {
		if got := trailingZeros64(uint64(1) << uint(i)); got != i {
			t.Fatalf("trailingZeros64(1<<%d) = %d", i, got)
		}
		if got := trailingZeros64(^uint64(0) << uint(i)); got != i {
			t.Fatalf("trailingZeros64(ones<<%d) = %d", i, got)
		}
	}
}

func TestPageDecodeCycles(t *testing.T) {
	if got := PageDecodeCycles(3, 130, 8); got != int64(8*3*3+130) {
		t.Fatalf("PageDecodeCycles(3,130,8) = %d", got)
	}
	if PageDecodeCycles(0, 10, 8) != 0 || PageDecodeCycles(3, 0, 8) != 0 {
		t.Fatal("degenerate geometry must price to 0")
	}
	// Clamping: bits outside [1,32] price as the nearest bound.
	if PageDecodeCycles(3, 130, 0) != PageDecodeCycles(3, 130, 1) ||
		PageDecodeCycles(3, 130, 99) != PageDecodeCycles(3, 130, 32) {
		t.Fatal("bits clamping broken")
	}
	// Monotone in bits: more planes, more cycles.
	prev := int64(0)
	for bits := 1; bits <= 32; bits++ {
		cur := PageDecodeCycles(5, 1000, bits)
		if cur <= prev {
			t.Fatalf("PageDecodeCycles not increasing at bits=%d: %d <= %d", bits, cur, prev)
		}
		prev = cur
	}
}

func TestRelationGeometryExact(t *testing.T) {
	const tuples, nfeat, pageSize = 1200, 3, 8 * 1024
	g := RelationGeometry(tuples, nfeat, pageSize)
	if g.Pages < 2 {
		t.Fatalf("geometry = %+v, want multiple pages", g)
	}
	// Cross-check against the real builder: page count and exact bytes.
	rel := storage.NewRelation("t", storage.NumericSchema(nfeat), pageSize)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < tuples; i++ {
		row := make([]float64, nfeat+1)
		for c := range row {
			row[c] = rng.Float64()
		}
		if _, err := rel.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	pages, err := storage.BuildWeaveRelation(rel, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != g.Pages {
		t.Fatalf("builder made %d pages, geometry says %d", len(pages), g.Pages)
	}
	var fixed, bit, total int64
	for _, p := range pages {
		fixed += storage.WeaveFixedPageBytes(p.NumCols(), p.NumRows())
		bit += storage.WeaveBitPageBytes(p.NumCols(), p.NumRows())
		total += int64(len(p))
	}
	if fixed != g.FixedBytes || bit != g.BitBytes {
		t.Fatalf("geometry bytes (%d,%d) != built pages (%d,%d)", g.FixedBytes, g.BitBytes, fixed, bit)
	}
	if g.EffectiveBytes(storage.WeaveMaxBits) != total {
		t.Fatalf("EffectiveBytes(32) = %d, pages total %d", g.EffectiveBytes(32), total)
	}
	// One more bit costs exactly BitBytes, at every k.
	for bits := 2; bits <= storage.WeaveMaxBits; bits++ {
		if d := g.EffectiveBytes(bits) - g.EffectiveBytes(bits-1); d != g.BitBytes {
			t.Fatalf("EffectiveBytes(%d)-EffectiveBytes(%d) = %d, want %d", bits, bits-1, d, g.BitBytes)
		}
	}
	if RelationGeometry(0, nfeat, pageSize) != (Geometry{}) {
		t.Fatal("empty relation must have zero geometry")
	}

	// DecodeCycles sums the per-page model over the same paging.
	var cycles int64
	for _, p := range pages {
		cycles += PageDecodeCycles(p.NumCols(), p.NumRows(), 8)
	}
	if got := DecodeCycles(g, tuples, nfeat, 8); got != cycles {
		t.Fatalf("DecodeCycles = %d, per-page sum = %d", got, cycles)
	}
}

func BenchmarkDecodePage(b *testing.B) {
	for _, bits := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			ranges := make([]storage.WeaveRange, 8)
			feats := make([][]float32, 512)
			labels := make([]float32, 512)
			rng := rand.New(rand.NewSource(1))
			for c := range ranges {
				ranges[c] = gridRange
			}
			for r := range feats {
				row := make([]float32, len(ranges))
				for c := range row {
					row[c] = 2*rng.Float32() - 1
				}
				feats[r] = row
				labels[r] = 1
			}
			p, err := storage.BuildWeavePage(ranges, feats, labels)
			if err != nil {
				b.Fatal(err)
			}
			e, _ := NewExtractor(bits)
			row := make([]float32, len(ranges)+1)
			b.SetBytes(int64(storage.WeaveFixedPageBytes(8, 512) + int64(bits)*storage.WeaveBitPageBytes(8, 512)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.DecodePage(p, row, func([]float32) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
