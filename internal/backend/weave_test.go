package backend_test

// Any-precision (weave) backend tests: the conformance suite across the
// full precision ladder, the typed LRMF rejection (class-coverage leg
// of the conformance suite), the k=32 counter/model identity against
// the accelerator path on range-grid data, the MLWeaving-style
// precision-sweep convergence bound, and the exact-== transfer-byte
// identity against cost.ChannelModel.

import (
	"errors"
	"math"
	"testing"

	"dana/internal/backend"
	"dana/internal/cost"
	"dana/internal/ml"
	"dana/internal/storage"
	"dana/internal/weaving"
)

// sweepBits is the precision ladder the satellite tests walk.
var sweepBits = []int{1, 2, 4, 8, 16, 32}

func weaveRegistration(t *testing.T) backend.Registration {
	t.Helper()
	for _, reg := range backend.Builtins() {
		if reg.Name == backend.NameWeave {
			return reg
		}
	}
	t.Fatal("weave backend not registered in Builtins")
	return backend.Registration{}
}

// snapToGrid rewrites a scenario's features onto the 2⁻²³ grid of the
// fixed range {Offset: -1, Scale: 2}: values whose normalized form is
// an exact multiple of 2⁻²⁴ survive quantize→dequantize bit-for-bit at
// k=32, so the rewoven epoch is byte-identical to the float epoch.
// Labels are untouched (they are never quantized).
func snapToGrid(sc *backend.Scenario, nfeat int) {
	snap := func(v float64) float64 {
		n := math.Round((v + 1) * (1 << 23))
		if n < 0 {
			n = 0
		}
		if n > (1<<24)-1 {
			n = (1 << 24) - 1
		}
		return n/(1<<23) - 1
	}
	for i, t := range sc.Tuples {
		for c := 0; c < nfeat; c++ {
			t[c] = snap(t[c])
			sc.Rows32[i][c] = float32(t[c])
		}
	}
}

func gridRanges(nfeat int) []storage.WeaveRange {
	ranges := make([]storage.WeaveRange, nfeat)
	for i := range ranges {
		ranges[i] = storage.WeaveRange{Offset: -1, Scale: 2}
	}
	return ranges
}

// TestWeaveConformanceAcrossPrecisions runs the full conformance suite
// — capability sanity, typed rejections, tolerance against the
// declared reweaving reference, counter determinism across stream
// delivery forms, scoring — at every rung of the precision ladder.
func TestWeaveConformanceAcrossPrecisions(t *testing.T) {
	reg := weaveRegistration(t)
	env := backend.ConformanceEnv()
	for _, seed := range []int64{1, 2, 3} { // logistic, svm, linear
		sc := backend.GenScenario(seed)
		for _, bits := range sweepBits {
			sc.Bits = bits
			if vs := backend.Check(reg, env, sc); len(vs) > 0 {
				for _, v := range vs {
					t.Errorf("seed %d (%s) bits=%d: %s", seed, sc.Spec.Kind, bits, v)
				}
			}
		}
	}
}

// TestWeaveRejectsLRMF pins the typed-error class-coverage leg: the
// rating schema's integer indices are meaningless to quantize, so both
// the dispatch surface and the storage layer refuse, each with its own
// sentinel.
func TestWeaveRejectsLRMF(t *testing.T) {
	env := backend.ConformanceEnv()
	sc := backend.GenScenario(15) // lrmf
	sc.Bits = 8
	p, err := backend.BuildProgram(sc, env)
	if err != nil {
		t.Fatal(err)
	}
	job := backend.JobFor(sc, p)
	if job.Class != backend.ClassLRMF {
		t.Fatalf("seed 15 classified as %s, want lrmf", job.Class)
	}
	be := backend.NewWeave(env)
	if _, err := be.EstimateCost(job); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("EstimateCost(lrmf) = %v, want ErrUnsupported", err)
	}
	if err := be.Configure(p); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("Configure(lrmf) = %v, want ErrUnsupported", err)
	}
	// The storage layer agrees: the LRMF rating schema cannot be woven.
	if err := storage.CheckWeaveSchema(storage.RatingSchema()); !errors.Is(err, storage.ErrWeaveUnsupported) {
		t.Errorf("CheckWeaveSchema(rating) = %v, want ErrWeaveUnsupported", err)
	}
}

// TestWeaveFullWidthMatchesAccelerator: on range-grid data with pinned
// ranges, a 32-bit weave read reconstructs every feature bit-for-bit,
// so the weave backend must be indistinguishable from the accelerator
// path — model bits and modeled counters both identical. This is the
// identity `danabench -exp precision` re-verifies on its committed
// seed.
func TestWeaveFullWidthMatchesAccelerator(t *testing.T) {
	env := backend.ConformanceEnv()
	for _, seed := range []int64{1, 2, 3} {
		sc := backend.GenScenario(seed)
		p, err := backend.BuildProgram(sc, env)
		if err != nil {
			t.Fatal(err)
		}
		nfeat := sc.Spec.TupleWidth() - 1
		snapToGrid(&sc, nfeat)

		accel := backend.NewAccel(env)
		if err := accel.Configure(p); err != nil {
			t.Fatal(err)
		}
		pw := p
		pw.Bits = 32
		pw.Ranges = gridRanges(nfeat)
		weave := backend.NewWeave(env)
		if err := weave.Configure(pw); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < sc.Spec.Epochs; e++ {
			if err := accel.RunEpoch(&backend.Stream{Rows32: sc.Rows32}); err != nil {
				t.Fatal(err)
			}
			if err := weave.RunEpoch(&backend.Stream{Rows32: sc.Rows32}); err != nil {
				t.Fatal(err)
			}
		}
		am, wm := accel.Model(), weave.Model()
		if len(am) == 0 || len(am) != len(wm) {
			t.Fatalf("seed %d: model lengths %d vs %d", seed, len(am), len(wm))
		}
		for i := range am {
			if math.Float64bits(am[i]) != math.Float64bits(wm[i]) {
				t.Fatalf("seed %d: model[%d] %v (accel) != %v (weave@32) — full-width weave must be bit-identical on grid data",
					seed, i, am[i], wm[i])
			}
		}
		if ac, wc := accel.Counters(), weave.Counters(); ac != wc {
			t.Fatalf("seed %d: counters diverge:\n  accel=%+v\n  weave=%+v", seed, ac, wc)
		}
	}
}

// TestWeavePrecisionSweepConvergence is the MLWeaving bound: at every
// precision the weave-trained model must reach the golden float64
// trainer's loss within a per-precision margin and epoch budget —
// coarser quantization gets a wider margin (the 2⁻ᵏ quantization
// floor) and a few more epochs, exactly the tradeoff the paper's
// figure sweeps.
func TestWeavePrecisionSweepConvergence(t *testing.T) {
	env := backend.ConformanceEnv()
	for _, seed := range []int64{1, 2} { // logistic (LR), svm
		sc := backend.GenScenario(seed)
		p, err := backend.BuildProgram(sc, env)
		if err != nil {
			t.Fatal(err)
		}
		algo := sc.Spec.Algorithm()
		golden, err := backend.GoldenReference(sc)
		if err != nil {
			t.Fatal(err)
		}
		goldenLoss := ml.MeanLoss(algo, golden, sc.Tuples)

		for _, bits := range sweepBits {
			budget := weaveEpochBudget(sc.Spec.Epochs, bits)
			margin := weaveLossMargin(bits)
			pw := p
			pw.Bits = bits
			be := backend.NewWeave(env)
			if err := be.Configure(pw); err != nil {
				t.Fatal(err)
			}
			converged := -1
			for e := 1; e <= budget; e++ {
				if err := be.RunEpoch(&backend.Stream{Rows32: sc.Rows32}); err != nil {
					t.Fatal(err)
				}
				if ml.MeanLoss(algo, be.Model(), sc.Tuples) <= goldenLoss+margin {
					converged = e
					break
				}
			}
			if converged < 0 {
				t.Errorf("seed %d (%s) bits=%d: loss %.6f after %d epochs never reached golden %.6f + margin %.6f",
					seed, sc.Spec.Kind, bits, ml.MeanLoss(algo, be.Model(), sc.Tuples), budget, goldenLoss, margin)
			}
		}
	}
}

// weaveEpochBudget is the per-precision epoch allowance: full epochs at
// high precision, a few extra at the coarse end (MLWeaving observes
// low-bit runs need more passes to the same quality).
func weaveEpochBudget(epochs, bits int) int {
	switch {
	case bits >= 8:
		return epochs
	case bits >= 4:
		return 2 * epochs
	default:
		return 4 * epochs
	}
}

// weaveLossMargin is the per-precision loss slack over the golden
// trainer: the quantization floor shrinks as 2⁻ᵏ plus a small float32
// datapath allowance.
func weaveLossMargin(bits int) float64 {
	return 1.5*math.Pow(2, -float64(bits)) + 0.02
}

// TestWeaveTransferBytesExact is the exact-== identity against
// cost.ChannelModel: the weave backend's modeled per-epoch transfer
// must equal the channel model charged with the page geometry's
// effective bytes — the same float64 expression, not a tolerance — and
// the byte counts themselves scale exactly linearly in k.
func TestWeaveTransferBytesExact(t *testing.T) {
	env := backend.ConformanceEnv()
	sc := backend.GenScenario(1)
	p, err := backend.BuildProgram(sc, env)
	if err != nil {
		t.Fatal(err)
	}
	job := backend.JobFor(sc, p)
	job.Epochs = 1 // per-epoch identity
	nfeat := job.Columns - 1
	g := weaving.RelationGeometry(job.Tuples, nfeat, job.PageSize)
	be := backend.NewWeave(env)
	var prevBytes int64 = -1
	for _, bits := range sweepBits {
		job.Bits = bits
		c, err := be.EstimateCost(job)
		if err != nil {
			t.Fatal(err)
		}
		w := cost.Workload{
			Epochs:          1,
			Pages:           g.Pages,
			WeaveBits:       bits,
			WeaveFixedBytes: g.FixedBytes,
			WeaveBitBytes:   g.BitBytes,
		}
		if want := cost.TransferSec(w, env.Cost); c.Breakdown.TransferSec != want {
			t.Errorf("bits=%d: backend transfer %.12g s != channel model %.12g s (exact == required)",
				bits, c.Breakdown.TransferSec, want)
		}
		bytes := g.EffectiveBytes(bits)
		if prevBytes >= 0 {
			// Linear in k, exactly: the byte delta per bit is BitBytes.
			prevBits := sweepBits[indexOf(sweepBits, bits)-1]
			if d := bytes - prevBytes; d != int64(bits-prevBits)*g.BitBytes {
				t.Errorf("bits %d->%d: byte delta %d != %d bits × %d", prevBits, bits, d, bits-prevBits, g.BitBytes)
			}
		}
		prevBytes = bytes
	}
	// Full-width job: weave refuses (no silent rerouting); accel charges
	// the heap byte stream unchanged.
	job.Bits = 0
	if _, err := be.EstimateCost(job); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("EstimateCost(bits=0) = %v, want ErrUnsupported", err)
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
