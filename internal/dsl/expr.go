// Package dsl implements DAnA's Python-embedded domain-specific language
// (paper §4) in two forms: a Go builder API, and a parser accepting the
// paper's exact Python snippet syntax (dsl.Parse).
//
// A UDF is an Algo holding three functions expressed over expressions:
// the update rule (terminating in SetModel), the merge function, and the
// convergence criterion (SetConvergence / SetEpochs).
package dsl

import (
	"fmt"
	"strings"
)

// Kind classifies data declarations (paper Table 1, "Data Types").
type Kind uint8

const (
	KInter  Kind = iota // untyped intermediate (inferred)
	KModel              // dana.model
	KInput              // dana.input
	KOutput             // dana.output
	KMeta               // dana.meta (compile-time constant)
)

func (k Kind) String() string {
	switch k {
	case KModel:
		return "model"
	case KInput:
		return "input"
	case KOutput:
		return "output"
	case KMeta:
		return "meta"
	default:
		return "inter"
	}
}

// Op enumerates the DSL's operations (paper Table 1).
type Op uint8

const (
	OpLeaf Op = iota // a data declaration, not an operation

	// Primary operations.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLt // a < b  -> 1.0 or 0.0
	OpGt // a > b  -> 1.0 or 0.0

	// Non-linear operations.
	OpSigmoid
	OpGaussian
	OpSqrt

	// Group operations (reduce along an axis).
	OpSigma // summation
	OpPi    // product
	OpNorm  // Euclidean norm

	// Built-in special functions.
	OpMerge // combine per-thread instances (paper merge(x, k, "op"))

	// Extension (documented in DESIGN.md): row gather from a
	// multi-dimensional model, used by LRMF.
	OpGather
)

var opNames = map[Op]string{
	OpLeaf: "leaf", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLt: "<", OpGt: ">", OpSigmoid: "sigmoid", OpGaussian: "gaussian",
	OpSqrt: "sqrt", OpSigma: "sigma", OpPi: "pi", OpNorm: "norm",
	OpMerge: "merge", OpGather: "gather",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsGroup reports whether the op reduces along an axis.
func (o Op) IsGroup() bool { return o == OpSigma || o == OpPi || o == OpNorm }

// IsNonLinear reports whether the op is a unary non-linear function.
func (o Op) IsNonLinear() bool { return o == OpSigmoid || o == OpGaussian || o == OpSqrt }

// IsBinary reports whether the op takes two operands elementwise.
func (o Op) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpLt, OpGt:
		return true
	}
	return false
}

// Expr is a node of the expression DAG. Exprs are created through an
// Algo (declarations) or the package-level operation constructors.
type Expr struct {
	ID   int    // unique within the Algo, assigned on registration
	Name string // declaration or assignment name, may be empty
	Op   Op
	Kind Kind    // meaningful when Op == OpLeaf
	Dims []int   // declared dims for leaves; nil => scalar
	Args []*Expr // operands

	Axis      int     // group ops: 1-based reduction axis (paper convention)
	MetaValue float64 // KMeta leaves
	MergeOp   Op      // OpMerge: combining operation (OpAdd, OpMul, ...)
	MergeCoef int     // OpMerge: merge coefficient (max thread count)

	algo *Algo
}

// IsScalar reports whether the expression was declared scalar (leaves
// only; operation shapes are inferred by the translator).
func (e *Expr) IsScalar() bool { return len(e.Dims) == 0 }

// String renders a compact form of the node.
func (e *Expr) String() string {
	switch {
	case e.Op == OpLeaf && e.Kind == KMeta:
		return fmt.Sprintf("%s=meta(%g)", e.Name, e.MetaValue)
	case e.Op == OpLeaf:
		return fmt.Sprintf("%s:%s%v", e.Name, e.Kind, e.Dims)
	case e.Op == OpMerge:
		return fmt.Sprintf("merge#%d(%s,%d,%q)", e.ID, argNames(e.Args), e.MergeCoef, e.MergeOp.String())
	case e.Op.IsGroup():
		return fmt.Sprintf("%s#%d(%s,axis=%d)", e.Op, e.ID, argNames(e.Args), e.Axis)
	default:
		return fmt.Sprintf("%s#%d(%s)", e.Op, e.ID, argNames(e.Args))
	}
}

func argNames(args []*Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		if a.Name != "" {
			parts[i] = a.Name
		} else {
			parts[i] = fmt.Sprintf("#%d", a.ID)
		}
	}
	return strings.Join(parts, ",")
}

// --- Operation constructors -------------------------------------------------

func binop(op Op, a, b *Expr) *Expr {
	e := &Expr{Op: op, Args: []*Expr{a, b}}
	register(e, a, b)
	return e
}

func unop(op Op, a *Expr) *Expr {
	e := &Expr{Op: op, Args: []*Expr{a}}
	register(e, a)
	return e
}

func groupop(op Op, a *Expr, axis int) *Expr {
	e := &Expr{Op: op, Args: []*Expr{a}, Axis: axis}
	register(e, a)
	return e
}

// register attaches e to the algo of its operands and assigns an ID.
func register(e *Expr, args ...*Expr) {
	var al *Algo
	for _, a := range args {
		if a == nil {
			panic("dsl: nil operand")
		}
		if a.algo != nil {
			if al != nil && al != a.algo {
				panic(fmt.Sprintf("dsl: operands from different algos (%q, %q)", al.Name, a.algo.Name))
			}
			al = a.algo
		}
	}
	if al == nil {
		panic("dsl: operands belong to no algo; declare data via Algo first")
	}
	al.add(e)
}

// Add returns a + b.
func Add(a, b *Expr) *Expr { return binop(OpAdd, a, b) }

// Sub returns a - b.
func Sub(a, b *Expr) *Expr { return binop(OpSub, a, b) }

// Mul returns a * b.
func Mul(a, b *Expr) *Expr { return binop(OpMul, a, b) }

// Div returns a / b.
func Div(a, b *Expr) *Expr { return binop(OpDiv, a, b) }

// Lt returns 1.0 where a < b, else 0.0.
func Lt(a, b *Expr) *Expr { return binop(OpLt, a, b) }

// Gt returns 1.0 where a > b, else 0.0.
func Gt(a, b *Expr) *Expr { return binop(OpGt, a, b) }

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Expr) *Expr { return unop(OpSigmoid, a) }

// Gaussian returns exp(-a²) elementwise.
func Gaussian(a *Expr) *Expr { return unop(OpGaussian, a) }

// Sqrt returns √a elementwise.
func Sqrt(a *Expr) *Expr { return unop(OpSqrt, a) }

// Sigma sums a along the (1-based) axis.
func Sigma(a *Expr, axis int) *Expr { return groupop(OpSigma, a, axis) }

// Pi multiplies a along the (1-based) axis.
func Pi(a *Expr, axis int) *Expr { return groupop(OpPi, a, axis) }

// Norm computes the Euclidean norm of a along the (1-based) axis.
func Norm(a *Expr, axis int) *Expr { return groupop(OpNorm, a, axis) }

// Gather selects row idx of a 2-D model (DESIGN.md extension for LRMF).
func Gather(model, idx *Expr) *Expr { return binop(OpGather, model, idx) }
