// Command danalint is DAnA's multichecker: it runs the in-tree
// static-analysis suite (internal/lint) over module packages and exits
// non-zero on any finding. The analyzers turn the repo's runtime-checked
// invariants into compile-time failures:
//
//	pinbalance   every bufpool Pin is Unpinned on all paths (or handed off)
//	determinism  no wall-clock/rand/map-order effects in modeled-cycle packages
//	obsguard     obs call sites stay zero-alloc and lookup-free under obs.Noop
//	hotalloc     no heap allocation in //dana:hotpath extraction/merge functions
//	faulterrors  typed fault sentinels survive wrapping (%w, not %v)
//	backendreg   every backend.Backend impl is registered with non-empty Capabilities
//	shadow       no same-typed shadowing of a variable still used afterwards
//	nilcheck     no dereference of a variable proven nil
//
// Usage:
//
//	danalint ./...                      # whole module, all analyzers
//	danalint -analyzers pinbalance ./internal/runtime
//	danalint -tests=false ./...         # skip _test.go files
//
// Findings print as file:line:col: message (analyzer). Suppress a
// finding with `//danalint:ignore <analyzer> -- reason` on (or above)
// the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dana/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names (default: all)")
		tests     = flag.Bool("tests", true, "analyze _test.go files too")
		list      = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := lint.All()
	if *analyzers != "" {
		suite = nil
		for _, name := range strings.Split(*analyzers, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "danalint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.RunAnalyzers(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "danalint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "danalint:", err)
	os.Exit(1)
}
