package experiments

import (
	"fmt"

	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/hdfg"
	"dana/internal/ml"
	"dana/internal/storage"
)

// --- Page-size sweep (§7, "Default setup": no significant impact) -------

// PageSizeRow reports one workload's runtime at each page size,
// relative to the 32 KB default.
type PageSizeRow struct {
	Name string
	// Relative MADlib+PostgreSQL runtime (32 KB = 1.0).
	PG8K, PG16K, PG32K float64
	// Relative Greenplum runtime.
	GP8K, GP16K, GP32K float64
}

// PageSizeSweep models the paper's 8/16/32 KB page-size sensitivity
// study over the public datasets: larger header overheads at small
// pages trade against per-page processing costs, and neither moves
// end-to-end runtime significantly.
func PageSizeSweep(env Env) ([]PageSizeRow, error) {
	sizes := []int{storage.PageSize8K, storage.PageSize16K, storage.PageSize32K}
	var rows []PageSizeRow
	for _, w := range datagen.Real() {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		pg := make([]float64, len(sizes))
		gp := make([]float64, len(sizes))
		for i, ps := range sizes {
			e2 := env
			e2.PageSize = ps
			cw := c.CostWorkload(e2)
			pg[i] = cost.MADlibPostgres(cw, env.Cost, true).TotalSec
			gp[i] = cost.MADlibGreenplum(cw, env.Cost, env.Segments, true).TotalSec
		}
		rows = append(rows, PageSizeRow{
			Name: w.Name,
			PG8K: pg[0] / pg[2], PG16K: pg[1] / pg[2], PG32K: 1,
			GP8K: gp[0] / gp[2], GP16K: gp[1] / gp[2], GP32K: 1,
		})
	}
	return rows, nil
}

// --- Batch size vs convergence (supplementary epoch tables) --------------

// BatchSizes are the sweep points of the paper's supplementary
// batch-size/epoch study.
var BatchSizes = []int{1, 16, 32, 64}

// ConvergenceRow reports epochs-to-converge per batch size for one
// workload, functionally measured with the reference interpreter.
type ConvergenceRow struct {
	Name   string
	Epochs map[int]int // batch size -> epochs to reach the loss target
}

// BatchConvergence runs the functional convergence study: for each
// workload (at the given scale), train the hDFG interpreter with merge
// batch sizes of 1/16/32/64 and count epochs until the mean loss falls
// below frac of the initial loss. Larger batches take at least as many
// epochs (DAnA's batched-gradient trade-off, supplementary tables).
func BatchConvergence(names []string, env Env, scale, frac float64, maxEpochs int) ([]ConvergenceRow, error) {
	var rows []ConvergenceRow
	for _, name := range names {
		w, err := datagen.ByName(name)
		if err != nil {
			return nil, err
		}
		d, err := datagen.Generate(w, scale, env.PageSize, 99)
		if err != nil {
			return nil, err
		}
		var tuples [][]float64
		if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
			tuples = append(tuples, append([]float64(nil), vals...))
			return nil
		}); err != nil {
			return nil, err
		}
		alg := d.MLAlgorithm()
		target := frac * ml.MeanLoss(alg, ml.InitModel(alg, 1), tuples)
		row := ConvergenceRow{Name: w.Name, Epochs: map[int]int{}}
		for _, batch := range BatchSizes {
			coef := batch
			if len(w.Topology) == 3 {
				coef = 1 // LRMF has no merge
			}
			a, err := d.DSLAlgo(coef)
			if err != nil {
				return nil, err
			}
			g, err := hdfg.Translate(a)
			if err != nil {
				return nil, err
			}
			it, err := hdfg.NewInterp(g, nil)
			if err != nil {
				return nil, err
			}
			epochs := maxEpochs
			for e := 1; e <= maxEpochs; e++ {
				if err := it.Epoch(tuples); err != nil {
					return nil, err
				}
				if ml.MeanLoss(alg, it.Model(), tuples) <= target {
					epochs = e
					break
				}
			}
			row.Epochs[batch] = epochs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Design ablations ------------------------------------------------------

// AblationRow compares the full DAnA design against its ablations
// (speedup over MADlib+PostgreSQL, warm cache).
type AblationRow struct {
	Name             string
	Full             float64 // page-granularity + interleaving (the paper's design)
	NoInterleave     float64 // transfer/unpack/compute serialized
	TupleGranularity float64 // per-tuple DMA instead of page DMA
	NoStrider        float64 // CPU-side extraction (Figure 11)
}

// Ablations models the DESIGN.md ablation study over all workloads.
func Ablations(env Env) ([]AblationRow, AblationRow, error) {
	var rows []AblationRow
	var f, ni, tg, ns []float64
	for _, w := range datagen.Workloads {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, AblationRow{}, err
		}
		cw := c.CostWorkload(env)
		pg := cost.MADlibPostgres(cw, env.Cost, true).TotalSec
		r := AblationRow{
			Name:             w.Name,
			Full:             pg / cost.DAnA(cw, env.Cost, true).TotalSec,
			NoInterleave:     pg / cost.DAnANoInterleave(cw, env.Cost, true).TotalSec,
			TupleGranularity: pg / cost.DAnATupleGranularity(cw, env.Cost, true).TotalSec,
			NoStrider:        pg / cost.DAnANoStrider(cw, env.Cost, true).TotalSec,
		}
		rows = append(rows, r)
		f = append(f, r.Full)
		ni = append(ni, r.NoInterleave)
		tg = append(tg, r.TupleGranularity)
		ns = append(ns, r.NoStrider)
	}
	gm := AblationRow{
		Name: "Geomean", Full: Geomean(f), NoInterleave: Geomean(ni),
		TupleGranularity: Geomean(tg), NoStrider: Geomean(ns),
	}
	return rows, gm, nil
}

// ILPRow reports the list scheduler's throughput analysis for one
// workload's per-tuple program.
type ILPRow struct {
	Name         string
	Serial       int64
	Makespan     int64
	CriticalPath int64
	ILP          float64
}

// SchedulerStudy runs the §6.2 list scheduler over every workload's
// compiled per-tuple program and reports the exposed ILP.
func SchedulerStudy(env Env) ([]ILPRow, error) {
	var rows []ILPRow
	for _, w := range datagen.Workloads {
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		s := compiler.ScheduleProgram(c.Program, c.Design.Engine)
		rows = append(rows, ILPRow{
			Name: w.Name, Serial: s.SerialCycles, Makespan: s.MakespanCycles,
			CriticalPath: s.CriticalPathCycles, ILP: s.ILP(),
		})
	}
	return rows, nil
}

// FormatAblation renders one row.
func FormatAblation(r AblationRow) string {
	return fmt.Sprintf("%-20s full %6.1fx  no-interleave %6.1fx  tuple-dma %6.1fx  no-strider %6.1fx",
		r.Name, r.Full, r.NoInterleave, r.TupleGranularity, r.NoStrider)
}

// --- §7.3: comparison with algorithm-specific FPGA designs ----------------

// CustomDesignRow compares DAnA's generated accelerator against a
// hand-coded, single-algorithm FPGA implementation.
type CustomDesignRow struct {
	Design   string
	Workload string
	// SpeedRatio is DAnA time-performance relative to the custom design
	// (1.0 = parity, >1 = DAnA faster). The ratios are the paper's
	// measurements (adopted constants — the custom RTL is unavailable).
	SpeedRatio float64
	// DAnAGOPS is the generated accelerator's giga-operations/second,
	// computed from the compiled schedule: scalar update-rule operations
	// per tuple over the modeled tuple rate at 150 MHz.
	DAnAGOPS float64
	// CustomGOPS applies the paper's finding that DAnA performs on
	// average 16% fewer operations than the hand-coded designs.
	CustomGOPS float64
}

// customDesigns are §7.3's three comparison points.
var customDesigns = []struct {
	design, workload string
	speedRatio       float64
}{
	{"Parallel SVM [42]", "Remote Sensing SVM", 1.00},      // "on par"
	{"Heterogeneous SVM [43]", "Remote Sensing SVM", 0.69}, // "44% slower"
	{"Falcon Logistic Regression [44]", "Remote Sensing LR", 1.47},
}

// CustomDesignComparison models §7.3's "Specific FPGA implementations"
// study: per-design speed ratios plus the GOPS of DAnA's reconfigurable
// accelerator on the matching workload.
func CustomDesignComparison(env Env) ([]CustomDesignRow, error) {
	var rows []CustomDesignRow
	for _, cd := range customDesigns {
		w, err := datagen.ByName(cd.workload)
		if err != nil {
			return nil, err
		}
		c, err := CompileWorkload(w, env, 0)
		if err != nil {
			return nil, err
		}
		work := c.Graph.CountWork()
		cw := c.CostWorkload(env)
		// Tuples per second through the engine at the FPGA clock.
		sec := float64(cw.EpochCycles) / env.Cost.FPGAClockHz
		opsPerEpoch := float64(work.PerTuple) * float64(w.Tuples)
		gops := opsPerEpoch / sec / 1e9
		rows = append(rows, CustomDesignRow{
			Design:     cd.design,
			Workload:   cd.workload,
			SpeedRatio: cd.speedRatio,
			DAnAGOPS:   gops,
			CustomGOPS: gops / 0.84, // paper: DAnA does ~16% fewer ops
		})
	}
	return rows, nil
}
