package storage

// BitWeaving-style vertical page layout (MLWeaving, PAPERS.md): the
// repo's second storage format, holding a dense numeric relation as
// per-feature bit planes instead of row-major heap tuples. Each feature
// value is affinely normalized by its column's (Offset, Scale) range,
// quantized to an unsigned 32-bit fixed-point code, and the codes'
// bits are scattered across 32 planes of packed 64-bit words. Planes
// are ordered bit-level-major — all columns' MSB planes first, then the
// next bit level, and so on — so a reader that wants only the top k
// bits of every feature reads one contiguous prefix of the plane area:
// bytes streamed shrink linearly with k, the MLWeaving bandwidth
// tradeoff. Labels are not quantized; they ride along as a raw float32
// array (GLM labels are ±1 or small reals and must stay exact).
//
// The layout is deliberately restrictive: float32 feature columns plus
// a float32 label, NOT NULL, fixed width. Null bitmaps, varlena tails,
// and non-float32 schemas are rejected with the typed ErrWeaveUnsupported
// — the heap layout remains the general format.
//
//	WeavePage layout (little-endian):
//	  [ 0, 4)   magic    "WEAV"
//	  [ 4, 6)   version  (1)
//	  [ 6, 8)   ncols    feature columns (label excluded)
//	  [ 8,12)   nrows    tuples on the page
//	  [12,16)   planeWords  64-bit words per plane = ceil(nrows/64)
//	  [16,24)   reserved (zero)
//	  then ncols × {offset float32, scale float32}   column ranges
//	  then nrows × float32                           labels
//	  then 32 × ncols × planeWords × uint64          bit planes,
//	       level-major (level 0 = MSB), column-minor; word w bit r
//	       (LSB-first) holds row w*64+r's bit at that level.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Weave layout constants.
const (
	// WeaveMagic marks a weave page ("WEAV" read as little-endian bytes).
	WeaveMagic = 0x56414557
	// WeaveVersion is the current layout version.
	WeaveVersion = 1
	// WeaveHeaderSize is the fixed page header size in bytes.
	WeaveHeaderSize = 24
	// WeaveRangeSize is the per-column range record size (two float32s).
	WeaveRangeSize = 8
	// WeaveMaxBits is the full quantized code width: decoding at
	// WeaveMaxBits reads every plane.
	WeaveMaxBits = 32
	// WeaveMaxCols and WeaveMaxRows bound one page's geometry (Validate
	// rejects anything larger before arithmetic on the header fields can
	// overflow downstream size computations).
	WeaveMaxCols = 4096
	WeaveMaxRows = 1 << 22
)

// Typed weave errors.
var (
	// ErrWeaveUnsupported reports data the vertical layout does not
	// accept: non-float32 columns, tuples with null bitmaps, or trailing
	// varlena data. The heap layout remains the general format.
	ErrWeaveUnsupported = errors.New("storage: unsupported by weave layout")
	// ErrWeaveCorrupt reports a weave page violating its structural
	// invariants.
	ErrWeaveCorrupt = errors.New("storage: corrupt weave page")
)

// WeaveRange is one feature column's affine quantization domain:
// values are normalized as (v - Offset) / Scale before quantization, so
// the representable domain is [Offset, Offset+Scale).
type WeaveRange struct {
	Offset float32
	Scale  float32
}

// valid reports whether the range can quantize anything.
func (r WeaveRange) valid() bool {
	return r.Scale > 0 &&
		!math.IsInf(float64(r.Scale), 0) && !math.IsNaN(float64(r.Scale)) &&
		!math.IsInf(float64(r.Offset), 0) && !math.IsNaN(float64(r.Offset))
}

// WeaveQuantize maps v into the range's unsigned Q0.32 fixed-point
// code: round((v-Offset)/Scale × 2³²), clamped to [0, 2³²-1]. The
// arithmetic runs in float64, so any float32 v whose normalized value
// is an exact multiple of 2⁻²⁴ quantizes without rounding error — the
// grid the weave-clean differential scenarios are drawn from.
func WeaveQuantize(v float32, r WeaveRange) uint32 {
	x := (float64(v) - float64(r.Offset)) / float64(r.Scale)
	q := math.Round(x * (1 << 32))
	if q <= 0 || math.IsNaN(q) {
		return 0
	}
	if q >= (1<<32)-1 {
		return math.MaxUint32
	}
	return uint32(q)
}

// WeaveDequantize reconstructs a value from the top bits of its code at
// the given precision: the code truncated to bits planes, scaled back
// into the range's domain. bits = WeaveMaxBits inverts WeaveQuantize
// exactly on the 2⁻²⁴ grid (the code and the scaled product both fit a
// float64 mantissa, and the result fits float32's).
func WeaveDequantize(q uint32, bits int, r WeaveRange) float32 {
	q >>= uint(WeaveMaxBits - bits)
	x := float64(q) / float64(uint64(1)<<uint(bits))
	return float32(float64(r.Offset) + float64(r.Scale)*x)
}

// weavePlaneWords returns the 64-bit words per plane for nrows rows.
func weavePlaneWords(nrows int) int { return (nrows + 63) / 64 }

// WeavePageSize returns the byte size of a weave page holding nrows
// rows of ncols feature columns.
func WeavePageSize(ncols, nrows int) int {
	return WeaveHeaderSize + ncols*WeaveRangeSize + 4*nrows +
		WeaveMaxBits*ncols*weavePlaneWords(nrows)*8
}

// WeavePageRows returns the largest row count whose weave page fits in
// pageSize bytes (at least 1; weave pages are not forced to heap-page
// sizes, but the cost model sizes them against the same budget).
func WeavePageRows(pageSize, ncols int) int {
	if ncols < 1 {
		ncols = 1
	}
	// Amortized bytes/row: 4 (label) + 32 planes × ncols bits = 4+4·ncols,
	// plus per-64-row word rounding. Solve, then walk down to fit.
	rows := (pageSize - WeaveHeaderSize - ncols*WeaveRangeSize) / (4 + 4*ncols)
	for rows > 1 && WeavePageSize(ncols, rows) > pageSize {
		rows--
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// WeaveFixedPageBytes returns the precision-independent bytes of one
// weave page: header, column ranges, and the label array. These stream
// at every precision.
func WeaveFixedPageBytes(ncols, nrows int) int64 {
	return int64(WeaveHeaderSize) + int64(ncols)*WeaveRangeSize + 4*int64(nrows)
}

// WeaveBitPageBytes returns the bytes of ONE bit level of one weave
// page (all columns' planes at that level). A k-bit read streams the
// fixed bytes plus k × this.
func WeaveBitPageBytes(ncols, nrows int) int64 {
	return int64(ncols) * int64(weavePlaneWords(nrows)) * 8
}

// WeavePage is a raw vertical page.
type WeavePage []byte

// Header accessors. Like Page, truncated buffers read as zero so every
// accessor is total; Validate is the authority on well-formedness.
func (p WeavePage) magicOK() bool {
	return len(p) >= 4 && binary.LittleEndian.Uint32(p) == WeaveMagic
}

// Version returns the layout version recorded in the header.
func (p WeavePage) Version() int {
	if len(p) < 6 {
		return 0
	}
	return int(binary.LittleEndian.Uint16(p[4:]))
}

// NumCols returns the feature-column count (label excluded).
func (p WeavePage) NumCols() int {
	if len(p) < 8 {
		return 0
	}
	return int(binary.LittleEndian.Uint16(p[6:]))
}

// NumRows returns the row count.
func (p WeavePage) NumRows() int {
	if len(p) < 12 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(p[8:]))
}

// PlaneWords returns the recorded 64-bit words per plane.
func (p WeavePage) PlaneWords() int {
	if len(p) < 16 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(p[12:]))
}

// rangeOff/labelOff/planeOff are the area start offsets (valid pages).
func (p WeavePage) rangeOff() int { return WeaveHeaderSize }
func (p WeavePage) labelOff() int { return WeaveHeaderSize + p.NumCols()*WeaveRangeSize }
func (p WeavePage) planeOff() int { return p.labelOff() + 4*p.NumRows() }

// Range returns column c's quantization range.
func (p WeavePage) Range(c int) WeaveRange {
	off := p.rangeOff() + c*WeaveRangeSize
	if c < 0 || c >= p.NumCols() || len(p) < off+WeaveRangeSize {
		return WeaveRange{}
	}
	return WeaveRange{
		Offset: math.Float32frombits(binary.LittleEndian.Uint32(p[off:])),
		Scale:  math.Float32frombits(binary.LittleEndian.Uint32(p[off+4:])),
	}
}

// Label returns row r's label.
func (p WeavePage) Label(r int) float32 {
	off := p.labelOff() + 4*r
	if r < 0 || r >= p.NumRows() || len(p) < off+4 {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(p[off:]))
}

// PlaneOffset returns the byte offset of the plane for (bit level,
// column) — level 0 is the MSB plane. Callers must have validated the
// page; out-of-range arguments return -1.
func (p WeavePage) PlaneOffset(level, col int) int {
	ncols := p.NumCols()
	if level < 0 || level >= WeaveMaxBits || col < 0 || col >= ncols {
		return -1
	}
	return p.planeOff() + (level*ncols+col)*p.PlaneWords()*8
}

// Validate checks the weave page's structural invariants: magic,
// version, bounded geometry, the plane-word/row relation, and the exact
// size equation. A page that validates can be decoded without any
// further bounds checks.
func (p WeavePage) Validate() error {
	if len(p) < WeaveHeaderSize {
		return fmt.Errorf("%w: %d bytes, header needs %d", ErrWeaveCorrupt, len(p), WeaveHeaderSize)
	}
	if !p.magicOK() {
		return fmt.Errorf("%w: bad magic %#x", ErrWeaveCorrupt, binary.LittleEndian.Uint32(p))
	}
	if v := p.Version(); v != WeaveVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrWeaveCorrupt, v, WeaveVersion)
	}
	ncols, nrows := p.NumCols(), p.NumRows()
	if ncols < 1 || ncols > WeaveMaxCols {
		return fmt.Errorf("%w: %d feature columns (max %d)", ErrWeaveCorrupt, ncols, WeaveMaxCols)
	}
	if nrows < 1 || nrows > WeaveMaxRows {
		return fmt.Errorf("%w: %d rows (max %d)", ErrWeaveCorrupt, nrows, WeaveMaxRows)
	}
	if pw := p.PlaneWords(); pw != weavePlaneWords(nrows) {
		return fmt.Errorf("%w: %d plane words for %d rows, want %d", ErrWeaveCorrupt, pw, nrows, weavePlaneWords(nrows))
	}
	if want := WeavePageSize(ncols, nrows); len(p) != want {
		return fmt.Errorf("%w: %d bytes, geometry needs %d", ErrWeaveCorrupt, len(p), want)
	}
	for c := 0; c < ncols; c++ {
		if r := p.Range(c); !r.valid() {
			return fmt.Errorf("%w: column %d range {off=%v scale=%v} invalid", ErrWeaveCorrupt, c, r.Offset, r.Scale)
		}
	}
	return nil
}

// BuildWeavePage weaves rows of feature values plus labels into a
// vertical page. feats holds nrows rows of exactly len(ranges) feature
// values; values outside a column's range clamp to its domain edges
// (quantization saturates).
func BuildWeavePage(ranges []WeaveRange, feats [][]float32, labels []float32) (WeavePage, error) {
	ncols, nrows := len(ranges), len(feats)
	if ncols < 1 || ncols > WeaveMaxCols {
		return nil, fmt.Errorf("%w: %d feature columns", ErrWeaveUnsupported, ncols)
	}
	if nrows < 1 || nrows > WeaveMaxRows {
		return nil, fmt.Errorf("%w: %d rows", ErrWeaveUnsupported, nrows)
	}
	if len(labels) != nrows {
		return nil, fmt.Errorf("%w: %d labels for %d rows", ErrWeaveUnsupported, len(labels), nrows)
	}
	for c, r := range ranges {
		if !r.valid() {
			return nil, fmt.Errorf("%w: column %d range {off=%v scale=%v}", ErrWeaveUnsupported, c, r.Offset, r.Scale)
		}
	}
	p := WeavePage(make([]byte, WeavePageSize(ncols, nrows)))
	binary.LittleEndian.PutUint32(p, WeaveMagic)
	binary.LittleEndian.PutUint16(p[4:], WeaveVersion)
	binary.LittleEndian.PutUint16(p[6:], uint16(ncols))
	binary.LittleEndian.PutUint32(p[8:], uint32(nrows))
	binary.LittleEndian.PutUint32(p[12:], uint32(weavePlaneWords(nrows)))
	for c, r := range ranges {
		off := p.rangeOff() + c*WeaveRangeSize
		binary.LittleEndian.PutUint32(p[off:], math.Float32bits(r.Offset))
		binary.LittleEndian.PutUint32(p[off+4:], math.Float32bits(r.Scale))
	}
	for i, lb := range labels {
		binary.LittleEndian.PutUint32(p[p.labelOff()+4*i:], math.Float32bits(lb))
	}
	pw := weavePlaneWords(nrows)
	for row, vals := range feats {
		if len(vals) != ncols {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrWeaveUnsupported, row, len(vals), ncols)
		}
		word, bit := row/64, uint(row%64)
		for c, v := range vals {
			q := WeaveQuantize(v, ranges[c])
			for level := 0; level < WeaveMaxBits; level++ {
				if q&(1<<uint(WeaveMaxBits-1-level)) == 0 {
					continue
				}
				off := p.planeOff() + ((level*ncols+c)*pw+word)*8
				w := binary.LittleEndian.Uint64(p[off:])
				binary.LittleEndian.PutUint64(p[off:], w|uint64(1)<<bit)
			}
		}
	}
	return p, nil
}

// CheckWeaveSchema reports whether a heap schema can be rewoven: all
// feature columns and the trailing label must be float32 (the Strider
// datapath width the quantizer normalizes from). Anything else fails
// with ErrWeaveUnsupported — including the int columns of the LRMF
// rating schema, whose row indices are meaningless to quantize.
func CheckWeaveSchema(s *Schema) error {
	if s == nil || s.NumCols() < 2 {
		return fmt.Errorf("%w: weave layout needs at least one feature column and a label", ErrWeaveUnsupported)
	}
	for _, c := range s.Cols {
		if c.Type != TFloat32 {
			return fmt.Errorf("%w: column %q is %v, weave layout takes float4 only", ErrWeaveUnsupported, c.Name, c.Type)
		}
	}
	return nil
}

// checkWeaveTuple audits one raw heap tuple for the vertical layout:
// null bitmaps and trailing varlena data both fail typed. The weave
// format stores exactly ncols+1 fixed-width float32 values per row;
// dynamic-offset tuples would silently misquantize through the static
// schema offsets, so they are rejected instead.
func checkWeaveTuple(s *Schema, raw []byte) error {
	m, err := DecodeTupleMeta(raw)
	if err != nil {
		return err
	}
	if m.Infomask&InfomaskHasNull != 0 {
		return fmt.Errorf("%w: tuple carries a null bitmap", ErrWeaveUnsupported)
	}
	if extra := len(raw) - int(m.Hoff) - s.DataWidth(); extra > 0 {
		return fmt.Errorf("%w: tuple carries %d trailing bytes (varlena datum?)", ErrWeaveUnsupported, extra)
	}
	return nil
}

// WeaveRanges computes per-column quantization ranges over a row set:
// Offset = column minimum, Scale = spread widened one ULP so the
// maximum stays inside [0,1) (degenerate columns get Scale 1).
func WeaveRanges(feats [][]float32, ncols int) []WeaveRange {
	ranges := make([]WeaveRange, ncols)
	for c := range ranges {
		lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
		for _, row := range feats {
			if c >= len(row) {
				continue
			}
			if v := row[c]; v < lo {
				lo = v
			}
			if v := row[c]; v > hi {
				hi = v
			}
		}
		if lo > hi { // no rows
			lo, hi = 0, 0
		}
		scale := float32(1) // degenerate (constant) columns quantize to code 0
		if spread := hi - lo; spread > 0 && !math.IsInf(float64(spread), 0) {
			scale = math.Nextafter32(spread, float32(math.Inf(1)))
		}
		ranges[c] = WeaveRange{Offset: lo, Scale: scale}
	}
	return ranges
}

// BuildWeaveRelation reweaves a heap relation into vertical pages of up
// to pageRows rows each (0 = size pages against the relation's heap
// page size). The schema must pass CheckWeaveSchema and every tuple the
// fixed-width audit (checkWeaveTuple); ranges nil computes per-column
// ranges over the whole relation first.
func BuildWeaveRelation(rel *Relation, ranges []WeaveRange, pageRows int) ([]WeavePage, error) {
	if err := CheckWeaveSchema(rel.Schema); err != nil {
		return nil, err
	}
	nfeat := rel.Schema.NumCols() - 1
	var feats [][]float32
	var labels []float32
	vals := make([]float64, 0, rel.Schema.NumCols())
	err := rel.ScanRaw(func(_ TID, raw []byte) error {
		if err := checkWeaveTuple(rel.Schema, raw); err != nil {
			return err
		}
		var derr error
		vals, derr = DecodeTuple(rel.Schema, vals[:0], raw)
		if derr != nil {
			return derr
		}
		row := make([]float32, nfeat)
		for i := 0; i < nfeat; i++ {
			row[i] = float32(vals[i])
		}
		feats = append(feats, row)
		labels = append(labels, float32(vals[nfeat]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("%w: relation %q is empty", ErrWeaveUnsupported, rel.Name)
	}
	if ranges == nil {
		ranges = WeaveRanges(feats, nfeat)
	}
	if pageRows <= 0 {
		pageRows = WeavePageRows(rel.PageSize, nfeat)
	}
	var pages []WeavePage
	for at := 0; at < len(feats); at += pageRows {
		end := at + pageRows
		if end > len(feats) {
			end = len(feats)
		}
		p, err := BuildWeavePage(ranges, feats[at:end], labels[at:end])
		if err != nil {
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}
