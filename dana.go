// Package dana is the public API of the DAnA reproduction: in-RDBMS
// hardware acceleration of advanced analytics (Mahajan et al., VLDB
// 2018). It bundles a PostgreSQL-style storage engine and SQL front
// end with an FPGA accelerator simulator whose Striders read training
// pages straight out of the buffer pool.
//
// Typical use:
//
//	eng, _ := dana.Open(dana.Defaults())
//	algo, _ := dana.ParseUDF(udfSource) // the paper's Python DSL
//	eng.RegisterUDF(algo, 64)
//	res, _ := eng.SQL("SELECT * FROM dana.linearR('training_data_table')")
package dana

import (
	"fmt"
	"time"

	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/fault"
	"dana/internal/greenplum"
	"dana/internal/hwgen"
	"dana/internal/madlib"
	"dana/internal/ml"
	"dana/internal/obs"
	"dana/internal/runtime"
	"dana/internal/sql"
	"dana/internal/storage"
)

// Config controls an Engine instance.
type Config struct {
	// PageSize is the heap/buffer page size in bytes (8, 16, or 32 KB;
	// the paper's default is 32 KB).
	PageSize int
	// PoolBytes is the in-process buffer pool budget.
	PoolBytes int64
	// MaxEpochs caps functional training (0 = the UDF's own budget).
	MaxEpochs int
	// Backend selects the execution backend for Train: "" pins the DAnA
	// accelerator pipeline (the paper path and historical default),
	// "auto" lets the heterogeneous dispatcher pick the cheapest capable
	// backend by modeled cost, and a registered name ("accelerator",
	// "tabla", "cpu", "sharded", "weave") is an explicit override.
	// Unknown names fail typed with backend.ErrUnknownBackend at Train
	// time.
	Backend string
	// Precision is the MLWeaving any-precision read width in bits per
	// feature. 0 (the default) and 32 keep the full-width float path —
	// models and modeled counters are bit-identical to builds without
	// the knob. 1..31 route training through the "weave" backend: each
	// feature is quantized to k bits in a vertical bit-plane layout and
	// the modeled link ships proportionally fewer bytes — the paper's
	// precision-for-bandwidth tradeoff (`danabench -exp precision`
	// sweeps it). Setting Backend to "weave" explicitly with Precision 0
	// trains through the vertical layout at the full 32 bits. Values
	// outside [0, 32] fail at Open.
	Precision int
	// Segments is the sharded backend's segment fan-out (0 = the
	// Greenplum baseline's 8 segments). Only the "sharded" backend
	// reads it.
	Segments int
	// Workers sets the host goroutines running Strider VMs during page
	// extraction (0 = GOMAXPROCS capped at the Strider count; 1 =
	// serial). Host parallelism changes wall-clock time only — modeled
	// cycle counts and simulated seconds are bit-identical either way.
	Workers int
	// Channels models the accelerator link as N independent memory
	// channels (0/1 = the single legacy channel, capped at 32). The
	// setting reaches both sides of the simulator: the cost model
	// charges epoch transfer as the slowest channel's round-robin page
	// share (aggregate bandwidth = N × per-channel, paper Fig 14), and
	// the host executor partitions extraction into per-channel Strider
	// groups with one record arena per channel. Per-channel traffic
	// appears as obs counters channel.<i>.* (see `danactl stats`).
	Channels int
	// PipelineDepth bounds in-flight extracted page batches per worker
	// (0 = default).
	PipelineDepth int
	// NoExtractCache disables the cross-epoch extracted-record cache,
	// forcing every epoch to re-walk the heap through the Striders.
	NoExtractCache bool
	// DisableObs runs the engine without observability counters
	// (obs.Noop): every instrument site degrades to a nil-check.
	// Counters never feed back into the model either way — modeled
	// cycles and trained models are bit-identical on or off.
	DisableObs bool
	// Faults attaches a seeded fault-injection schedule (chaos testing):
	// simulated disk errors and latency spikes, torn/bit-flipped pages,
	// Strider VM traps, and analytic-cluster failures. nil (the default)
	// disables injection entirely; with nil Faults the engine's modeled
	// cycles and trained models are bit-identical to a build without the
	// fault framework.
	Faults *fault.Injector
	// EpochTimeout bounds each training epoch's wall-clock time (0 = no
	// bound). An expired epoch surfaces fault.ErrEpochTimeout and, unless
	// DisableCPUFallback is set, degrades the run to the CPU path.
	EpochTimeout time.Duration
	// MaxPageRetries bounds same-Strider re-walks after a VM trap before
	// the worker is quarantined (0 = default 3, negative = none).
	MaxPageRetries int
	// MaxReadRetries bounds buffer-pool page-read retries on injected
	// I/O or checksum failures (0 = default 3, negative = none).
	MaxReadRetries int
	// DisableCPUFallback turns off graceful degradation: accelerator
	// faults that survive retry and quarantine surface as typed errors
	// instead of completing the run on the golden CPU trainer.
	DisableCPUFallback bool
	// VerifyChecksums forces per-page checksum verification on every
	// buffer-pool read even without an attached fault schedule (checksums
	// are always verified when Faults is non-nil).
	VerifyChecksums bool
}

// Defaults returns the paper's default setup at in-process scale.
func Defaults() Config {
	return Config{PageSize: storage.PageSize32K, PoolBytes: 256 << 20}
}

// Engine is a DAnA-enhanced database.
type Engine struct {
	sys *runtime.System
}

// Open creates an engine.
func Open(cfg Config) (*Engine, error) {
	if cfg.PageSize == 0 {
		cfg = Defaults()
	}
	switch cfg.PageSize {
	case storage.PageSize8K, storage.PageSize16K, storage.PageSize32K:
	default:
		return nil, fmt.Errorf("dana: unsupported page size %d", cfg.PageSize)
	}
	if cfg.Precision < 0 || cfg.Precision > storage.WeaveMaxBits {
		return nil, fmt.Errorf("dana: precision %d outside [0, %d]", cfg.Precision, storage.WeaveMaxBits)
	}
	opts := runtime.DefaultOptions()
	opts.PageSize = cfg.PageSize
	opts.PoolBytes = cfg.PoolBytes
	opts.MaxEpochs = cfg.MaxEpochs
	opts.Backend = cfg.Backend
	opts.Precision = cfg.Precision
	opts.Segments = cfg.Segments
	opts.Workers = cfg.Workers
	opts.Channels = cfg.Channels
	opts.Cost.Link.Channels = cfg.Channels
	opts.PipelineDepth = cfg.PipelineDepth
	opts.NoExtractCache = cfg.NoExtractCache
	opts.DisableObs = cfg.DisableObs
	opts.Faults = cfg.Faults
	opts.EpochTimeout = cfg.EpochTimeout
	opts.MaxPageRetries = cfg.MaxPageRetries
	opts.MaxReadRetries = cfg.MaxReadRetries
	opts.DisableCPUFallback = cfg.DisableCPUFallback
	opts.VerifyChecksums = cfg.VerifyChecksums
	return &Engine{sys: runtime.New(opts)}, nil
}

// SQL parses and executes a SQL script, returning the last result.
// UDF invocations (`SELECT * FROM dana.<udf>('table')`) run on the
// simulated accelerator.
func (e *Engine) SQL(script string) (*Result, error) {
	r, err := e.sys.DB.Exec(script)
	if err != nil {
		return nil, err
	}
	return (*Result)(r), nil
}

// Result is a materialized query result.
type Result sql.Result

// RegisterUDF translates, compiles, and hardware-generates a UDF,
// storing the accelerator in the catalog. mergeCoef bounds the thread
// count (0 uses the UDF's own merge coefficient).
func (e *Engine) RegisterUDF(a *Algo, mergeCoef int) error {
	rel := 1 << 16
	_, err := e.sys.Register(a, mergeCoef, rel)
	return err
}

// RegisterUDFSource parses the paper's Python-embedded DSL text and
// registers the resulting UDF.
func (e *Engine) RegisterUDFSource(src string, mergeCoef int) (*Algo, error) {
	a, err := dsl.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := e.RegisterUDF(a, mergeCoef); err != nil {
		return nil, err
	}
	return a, nil
}

// Train runs the DAnA pipeline for a registered UDF over a table.
func (e *Engine) Train(udfName, table string) (*runtime.TrainResult, error) {
	return e.sys.Train(udfName, table)
}

// BackendCost re-exports one dispatch candidate's modeled price for a
// job (see Config.Backend).
type BackendCost = runtime.BackendCost

// BackendCosts prices a registered (UDF, table) job on every registered
// execution backend — the heterogeneous dispatcher's view before it
// picks. Rejected backends carry their typed admissibility error.
// `danactl stats -backend auto` renders this table.
func (e *Engine) BackendCosts(udfName, table string) ([]BackendCost, error) {
	return e.sys.EstimateBackends(udfName, table)
}

// Catalog exposes the system catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.sys.Catalog() }

// Pool exposes the buffer pool (for warm/cold cache control).
func (e *Engine) Pool() *bufpool.Pool { return e.sys.Pool() }

// Obs exposes the engine's observability registry: cycle/utilization
// counters for every subsystem, histograms, and the trace-event ring.
// Snapshot it for the machine-readable JSON export (`BENCH_*.json`,
// `danactl stats`). Returns obs.Noop when Config.DisableObs is set.
func (e *Engine) Obs() *obs.Registry { return e.sys.Obs() }

// WarmCache pre-loads a table into the buffer pool (the paper's
// warm-cache experimental setting).
func (e *Engine) WarmCache(table string) error { return e.sys.WarmTable(table) }

// ColdCache drops every cached page (the cold-cache setting). It fails
// if any page is pinned.
func (e *Engine) ColdCache() error { return e.sys.DropCaches() }

// CostParams exposes the calibrated environment constants.
func (e *Engine) CostParams() cost.Params { return e.sys.Opts.Cost }

// FPGA returns the modeled device (Xilinx VU9P by default).
func (e *Engine) FPGA() hwgen.FPGA { return e.sys.Opts.FPGA }

// --- Fault injection ---------------------------------------------------

// FaultConfig re-exports the seeded fault-injection schedule
// (rates per injection point, transient-attempt budget, stall and
// latency-spike magnitudes).
type FaultConfig = fault.Config

// FaultInjector re-exports the deterministic injector handed to
// Config.Faults.
type FaultInjector = fault.Injector

// NewFaultInjector builds an injector from a schedule. The same seed
// and rates reproduce the same fault pattern regardless of host
// scheduling.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// --- Workloads ---------------------------------------------------------

// Workload re-exports the Table 3 workload descriptors.
type Workload = datagen.Workload

// Workloads lists all 14 evaluation workloads (paper Table 3).
func Workloads() []Workload { return datagen.Workloads }

// WorkloadByName looks a workload up by its name or table name.
func WorkloadByName(name string) (Workload, error) { return datagen.ByName(name) }

// Dataset is a generated training relation.
type Dataset = datagen.Dataset

// LoadWorkload generates a synthetic instance of a Table 3 workload at
// the given scale and deploys it into the engine (catalog + pool).
func (e *Engine) LoadWorkload(name string, scale float64, seed int64) (*Dataset, error) {
	w, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	d, err := datagen.Generate(w, scale, e.sys.Opts.PageSize, seed)
	if err != nil {
		return nil, err
	}
	if err := e.sys.Deploy(d); err != nil {
		return nil, err
	}
	return d, nil
}

// --- Baselines ---------------------------------------------------------

// BaselineResult reports a CPU-baseline training run.
type BaselineResult struct {
	Model     []float64
	Epochs    int
	Tuples    int64
	FinalLoss float64
}

// TrainMADlib runs the MADlib+PostgreSQL baseline (single-threaded
// in-database IGD) on a deployed table.
func (e *Engine) TrainMADlib(table string, algo ml.Algorithm, epochs int) (*BaselineResult, error) {
	rel, err := e.sys.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	tr, err := madlib.New(e.sys.Pool(), rel, algo)
	if err != nil {
		return nil, err
	}
	model, st, err := tr.Train(epochs)
	if err != nil {
		return nil, err
	}
	return &BaselineResult{Model: model, Epochs: st.Epochs, Tuples: st.Tuples, FinalLoss: st.FinalLoss}, nil
}

// TrainGreenplum runs the MADlib+Greenplum baseline (segmented parallel
// IGD with model averaging).
func (e *Engine) TrainGreenplum(table string, algo ml.Algorithm, segments, epochs int) (*BaselineResult, error) {
	rel, err := e.sys.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	cl, err := greenplum.New(e.sys.Pool(), rel, algo, segments)
	if err != nil {
		return nil, err
	}
	model, st, err := cl.Train(epochs)
	if err != nil {
		return nil, err
	}
	return &BaselineResult{Model: model, Epochs: st.Epochs, Tuples: st.Tuples, FinalLoss: st.FinalLoss}, nil
}
