package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BackendReg enforces the Backend-registry invariant behind the
// heterogeneous dispatcher (DESIGN.md, Unified Backend interface):
// every concrete type implementing backend.Backend must be reachable
// through a backend.Registration — the dispatcher, the conformance
// suite, and the failover policy all iterate registrations, so an
// unregistered backend silently escapes cost dispatch AND conformance
// checking. Each implementation must also declare non-empty
// Capabilities (Name + workload Classes): the dispatcher's
// admissibility filter and the conformance trichotomy key off them.
//
// The check is per-package and syntactic about registration evidence:
// a type counts as registered when some Registration composite literal
// in the same (non-test) package has a New factory that returns it —
// directly, via a function literal, or via a named constructor declared
// in the package.
var BackendReg = &Analyzer{
	Name: "backendreg",
	Doc:  "every backend.Backend implementation must be registered and declare non-empty Capabilities",
	Run:  runBackendReg,
}

// backendIfacePkg finds the package that defines the Backend interface
// vocabulary: the analyzed package itself or one of its direct imports
// named "backend" exposing both Backend and Registration.
func backendIfacePkg(pkg *types.Package) *types.Package {
	isVocab := func(p *types.Package) bool {
		if p.Name() != "backend" {
			return false
		}
		b, okB := p.Scope().Lookup("Backend").(*types.TypeName)
		_, okR := p.Scope().Lookup("Registration").(*types.TypeName)
		if !okB || !okR {
			return false
		}
		_, ok := b.Type().Underlying().(*types.Interface)
		return ok
	}
	if isVocab(pkg) {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if isVocab(imp) {
			return imp
		}
	}
	return nil
}

func runBackendReg(pass *Pass) error {
	bpkg := backendIfacePkg(pass.Pkg)
	if bpkg == nil {
		return nil // package doesn't speak the Backend vocabulary
	}
	iface := bpkg.Scope().Lookup("Backend").Type().Underlying().(*types.Interface)
	regNamed := bpkg.Scope().Lookup("Registration").Type()

	inTestFile := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	// Concrete implementations declared in this package's non-test files.
	type impl struct {
		tn *types.TypeName
	}
	var impls []impl
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(tn.Pos()).Filename, "_test.go") {
			continue
		}
		if types.Implements(types.NewPointer(tn.Type()), iface) || types.Implements(tn.Type(), iface) {
			impls = append(impls, impl{tn: tn})
		}
	}
	if len(impls) == 0 {
		return nil
	}

	// Index this package's function declarations so New: someConstructor
	// references resolve to inspectable bodies.
	funcDecls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					funcDecls[obj] = fd
				}
			}
		}
	}

	// namedOf strips pointers and reports the underlying named type.
	namedOf := func(t types.Type) *types.Named {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, _ := t.(*types.Named)
		return n
	}

	// recordReturns collects the concrete named types returned anywhere
	// inside body into registered.
	registered := map[*types.TypeName]bool{}
	recordReturns := func(body ast.Node) {
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				tv, ok := pass.TypesInfo.Types[res]
				if !ok {
					continue
				}
				if named := namedOf(tv.Type); named != nil {
					registered[named.Obj()] = true
				}
			}
			return true
		})
	}

	// Find Registration composite literals (non-test files) and inspect
	// their New factories.
	for _, file := range pass.Files {
		if inTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			if named := namedOf(tv.Type); named == nil || named.Obj() != regNamed.(*types.Named).Obj() {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "New" {
					continue
				}
				switch v := ast.Unparen(kv.Value).(type) {
				case *ast.FuncLit:
					recordReturns(v.Body)
				default:
					// A named constructor: resolve its declaration and
					// inspect the returns.
					if obj := funcObj(pass.TypesInfo, kv.Value); obj != nil {
						if fd, ok := funcDecls[obj]; ok {
							recordReturns(fd.Body)
						}
					}
				}
			}
			return true
		})
	}

	// Index Capabilities method declarations by receiver type.
	capsDecl := map[*types.TypeName]*ast.FuncDecl{}
	for obj, fd := range funcDecls {
		if obj.Name() != "Capabilities" || fd.Recv == nil || inTestFile(fd) {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		if named := namedOf(sig.Recv().Type()); named != nil {
			capsDecl[named.Obj()] = fd
		}
	}

	for _, im := range impls {
		if !registered[im.tn] {
			pass.Reportf(im.tn.Pos(),
				"type %s implements backend.Backend but no backend.Registration constructs it: unregistered backends escape dispatch and the conformance suite",
				im.tn.Name())
		}
		fd, ok := capsDecl[im.tn]
		if !ok {
			continue // inherited via embedding; the declaring type is checked instead
		}
		if !capabilitiesComplete(fd) {
			pass.Reportf(fd.Pos(),
				"Capabilities of %s must declare Name and workload Classes: the dispatcher's admissibility filter and the conformance trichotomy key off them",
				im.tn.Name())
		}
	}
	return nil
}

// funcObj resolves an expression used as a function value to its
// *types.Func (identifier or selector), or nil.
func funcObj(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// capabilitiesComplete reports whether every Capabilities composite
// literal returned by the method sets both Name and Classes. Returns
// that aren't composite literals (computed values) are not judged.
func capabilitiesComplete(fd *ast.FuncDecl) bool {
	complete := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := ast.Unparen(res).(*ast.CompositeLit)
			if !ok {
				continue
			}
			var hasName, hasClasses bool
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					switch key.Name {
					case "Name":
						hasName = true
					case "Classes":
						hasClasses = true
					}
				}
			}
			if !hasName || !hasClasses {
				complete = false
			}
		}
		return true
	})
	return complete
}
