// Package fixture exercises the determinism analyzer (the directory
// name ends in "determinism" so the modeled-package gate admits it).
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in modeled-cycle package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in modeled-cycle package`
}

func durationMathOK(d time.Duration) time.Duration {
	return d * 2 // pure arithmetic, no clock read
}

func unseeded() int {
	return rand.Intn(10) // want `global rand\.Intn in modeled-cycle package`
}

func seededOK(r *rand.Rand) int {
	return r.Intn(10) // deterministic by construction
}

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append inside range over map`
	}
	return out
}

func sendValues(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collected into keys but never sorted`
		keys = append(keys, k)
	}
	return keys
}

func collectAndSortOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRangeOK(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
