package strider

import (
	"errors"
	"strings"
	"testing"

	"dana/internal/fault"
	"dana/internal/storage"
)

func mustAssemble(t *testing.T, src string) []Instr {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func verifySrc(t *testing.T, src string, cfg Config, pageSize int) *Report {
	t.Helper()
	return Verify(mustAssemble(t, src), cfg, VerifyOptions{PageSize: pageSize})
}

func TestVerifyGeneratedPostgresProvesTermination(t *testing.T) {
	prog, cfg, err := Generate(PostgresLayout(storage.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(prog, cfg, VerifyOptions{PageSize: storage.PageSize8K})
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("generated walker has definite traps: %v", errs)
	}
	if !r.TerminationProved {
		t.Error("line-pointer walk has a monotone induction register; termination should be proved")
	}
	if !r.OK(false) {
		t.Error("generated program must be admissible in non-strict mode")
	}
}

func TestVerifyGeneratedInnoDBWarnsOnTermination(t *testing.T) {
	s := storage.NumericSchema(9)
	prog, cfg, err := GenerateInnoDB(InnoDBLayout(storage.PageSize8K, s))
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(prog, cfg, VerifyOptions{PageSize: storage.PageSize8K})
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("generated walker has definite traps: %v", errs)
	}
	if r.TerminationProved {
		t.Error("a pointer chase terminated by next==0 has no induction argument; proof should fail")
	}
	found := false
	for _, d := range r.Warnings() {
		if strings.Contains(d.Msg, "cannot prove loop") {
			found = true
		}
	}
	if !found {
		t.Errorf("want a termination warning, got %v", r.Diags)
	}
}

// The historical gap this verifier closes: Assemble happily accepted a
// program whose cln address is a compile-time constant far beyond any
// page, and the bug only surfaced as a VM trap at dispatch time.
func TestVerifyRejectsOutOfBoundsCln(t *testing.T) {
	src := `
mul 31, 31, %t0     \\ t0 = 961
mul %t0, %t0, %t0   \\ t0 = 923521, beyond any page
cln %t0, 0, 8
`
	prog := mustAssemble(t, src) // the assembler alone still accepts it
	r := Verify(prog, Config{}, VerifyOptions{PageSize: storage.PageSize8K})
	errs := r.Errors()
	if len(errs) != 1 || errs[0].PC != 2 {
		t.Fatalf("want exactly one definite trap at pc=2, got %v", r.Diags)
	}
	if !strings.Contains(errs[0].Msg, "on every execution") {
		t.Errorf("error should state the trap is unconditional: %s", errs[0].Msg)
	}
	if err := r.Err(false); !errors.Is(err, fault.ErrVerifyReject) {
		t.Errorf("Err must wrap fault.ErrVerifyReject, got %v", err)
	}
}

func TestVerifyErrVersusWarningSeverity(t *testing.T) {
	// readB into %t0 is bounded only by the page content: a cln at that
	// address is unprovable (warning), not a definite trap (error).
	r := verifySrc(t, "readB 0, 2, %t0\ncln %t0, 0, 4\n", Config{}, 128)
	if len(r.Errors()) != 0 {
		t.Fatalf("content-dependent access must not be a definite trap: %v", r.Diags)
	}
	if len(r.Warnings()) == 0 {
		t.Fatal("content-dependent access beyond the page must warn")
	}
	if r.OK(false) != true || r.OK(true) != false {
		t.Error("warnings must pass non-strict and fail strict")
	}
}

func TestVerifyInitBeforeUse(t *testing.T) {
	r := verifySrc(t, "ad %t5, 1, %t1\n", Config{}, 128)
	var hit bool
	for _, d := range r.Warnings() {
		if strings.Contains(d.Msg, "read before") && strings.Contains(d.Msg, "%t5") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("reading never-written %%t5 should warn, got %v", r.Diags)
	}
	// After a write the same read is clean.
	r = verifySrc(t, "ad 1, 2, %t5\nad %t5, 1, %t1\n", Config{}, 128)
	if len(r.Diags) != 0 {
		t.Errorf("initialized read should be clean, got %v", r.Diags)
	}
}

func TestVerifyLoopWellFormedness(t *testing.T) {
	r := verifySrc(t, "bexit 0, %t0, 0\n", Config{}, 128)
	if len(r.Errors()) != 1 || !strings.Contains(r.Errors()[0].Msg, "without a matching bentr") {
		t.Errorf("dangling bexit is a definite trap, got %v", r.Diags)
	}
	r = verifySrc(t, "bentr\nad %t0, 1, %t0\n", Config{}, 128)
	if len(r.Warnings()) == 0 {
		t.Errorf("dangling bentr should warn, got %v", r.Diags)
	}
}

func TestVerifyImmediateDestinationTraps(t *testing.T) {
	r := verifySrc(t, "ad 1, 2, 3\n", Config{}, 128)
	if len(r.Errors()) != 1 || !strings.Contains(r.Errors()[0].Msg, "immediate") {
		t.Errorf("immediate destination is a definite trap, got %v", r.Diags)
	}
}

func TestVerifyBadBexitCondition(t *testing.T) {
	// Condition operand is the raw 6-bit field: a register encoding
	// (%t0 = 32) is an invalid condition code and traps the VM.
	prog := []Instr{
		{Op: OpBentr},
		{Op: OpAdd, A: mustT(0), B: Operand(1), C: mustT(0)},
		{Op: OpBexit, A: mustT(0), B: mustT(0), C: Operand(5)},
	}
	r := Verify(prog, Config{}, VerifyOptions{PageSize: 128})
	if len(r.Errors()) != 1 || !strings.Contains(r.Errors()[0].Msg, "condition") {
		t.Errorf("non-condition-code bexit operand is a definite trap, got %v", r.Diags)
	}
}

func mustT(i int) Operand {
	o, err := TReg(i)
	if err != nil {
		panic(err)
	}
	return o
}

func TestVerifyTerminationNeedsMonotoneIncrement(t *testing.T) {
	cases := []struct {
		name, src string
		proved    bool
	}{
		{"increasing-ad", `
ad 0, 0, %t0
bentr
ad %t0, 4, %t0
bexit 1, %t0, 31
`, true},
		{"sub-update", `
ad 20, 0, %t0
bentr
sub %t0, 1, %t0
bexit 1, %t0, 31
`, false},
		{"zero-step", `
ad 0, 0, %t0
bentr
ad %t0, 0, %t0
bexit 1, %t0, 31
`, false},
		{"bound-written-in-body", `
ad 0, 0, %t0
ad 31, 0, %t1
bentr
ad %t0, 1, %t0
ad %t1, 1, %t1
bexit 1, %t0, %t1
`, false},
		{"never-advanced", `
ad 0, 0, %t0
bentr
ad %t1, 1, %t1
bexit 1, %t0, 31
`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := verifySrc(t, tc.src, Config{}, 128)
			if r.TerminationProved != tc.proved {
				t.Errorf("TerminationProved = %v, want %v (diags: %v)", r.TerminationProved, tc.proved, r.Diags)
			}
		})
	}
}

func TestVerifyOutputBound(t *testing.T) {
	// Straight-line: one ins of 4 bytes.
	r := verifySrc(t, "ins 7, 4\n", Config{}, 128)
	if r.OutputBound != 4 {
		t.Errorf("OutputBound = %d, want 4", r.OutputBound)
	}
	// Proved loop with constant trip count and per-iteration emission:
	// 8 iterations (t0: 0,4,...,28 then exit at 32... do-while bound).
	r = verifySrc(t, `
ad 0, 0, %t0
bentr
ins 7, 2
ad %t0, 4, %t0
bexit 1, %t0, 31
`, Config{}, 128)
	if r.OutputBound == OutputUnbounded || r.OutputBound < 16 {
		t.Errorf("looped OutputBound = %d, want a finite bound covering 8 iterations", r.OutputBound)
	}
	// Unproved loop: bound unknown.
	r = verifySrc(t, `
bentr
ins 7, 2
readB 0, 2, %t0
bexit 0, %t0, 0
`, Config{}, 128)
	if r.OutputBound != OutputUnbounded {
		t.Errorf("unproved loop must give OutputUnbounded, got %d", r.OutputBound)
	}
	// MaxOutputBytes warning.
	rep := Verify(mustAssemble(t, "ins 7, 8\nins 7, 8\n"), Config{}, VerifyOptions{PageSize: 128, MaxOutputBytes: 8})
	var hit bool
	for _, d := range rep.Warnings() {
		if strings.Contains(d.Msg, "exceeds limit") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("16-byte emission over an 8-byte limit should warn, got %v", rep.Diags)
	}
}

// Strict acceptance is the fuzz invariant: a program with zero
// diagnostics can never trap the VM on a page of the verified size.
func TestVerifyStrictAcceptedProgramRunsClean(t *testing.T) {
	clean := `
ad 8, 0, %t0
bentr
cln %t0, 0, 8
ad %t0, 8, %t0
bexit 1, %t0, 31
ins %t0, 4
`
	prog := mustAssemble(t, clean)
	r := Verify(prog, Config{}, VerifyOptions{PageSize: 128, Strict: true})
	if !r.OK(true) {
		t.Fatalf("expected strict acceptance, got %v", r.Diags)
	}
	vm := NewVM(prog, Config{})
	if err := vm.Run(make([]byte, 128)); err != nil {
		t.Fatalf("strict-accepted program trapped: %v", err)
	}
}

func TestVerifyRequiresPageSize(t *testing.T) {
	r := Verify(nil, Config{}, VerifyOptions{})
	if len(r.Errors()) == 0 {
		t.Error("zero page size must be rejected")
	}
}

// Nested loops: the outer proof must survive an inner loop that writes
// unrelated registers, and fail if the inner loop writes the induction
// register through a non-increment.
func TestVerifyNestedLoops(t *testing.T) {
	r := verifySrc(t, `
ad 0, 0, %t0
bentr
ad 0, 0, %t1
bentr
ad %t1, 1, %t1
bexit 1, %t1, 4
ad %t0, 1, %t0
bexit 1, %t0, 8
`, Config{}, 128)
	if !r.TerminationProved {
		t.Errorf("both loops have induction registers, got %v", r.Diags)
	}
}
