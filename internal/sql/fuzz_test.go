package sql

import (
	"testing"

	"dana/internal/fuzzcorpus"
)

// sqlSeeds are statements covering every production of the grammar plus
// near-miss malformed inputs.
func sqlSeeds() []string {
	return []string{
		"CREATE TABLE pts (x float4, y double precision, n int)",
		"CREATE TABLE t (a float8, b bigint, c real)",
		"INSERT INTO pts VALUES (1, 2, 0), (3, 4, 1), (5, 6, 1), (-1, 0, 0)",
		"SELECT a, b FROM t WHERE a >= 1.5 LIMIT 10",
		"SELECT COUNT(*) FROM t",
		"SELECT * FROM t WHERE a < 3 AND b >= 2",
		"SELECT * FROM dana.linearR('training_data_table')",
		"SELECT * FROM dana.svm('observations')",
		"CREATE TABLE a (x int); INSERT INTO a VALUES (7); SELECT * FROM a",
		// Near-miss malformed.
		"SELECT FROM t",
		"CREATE TABLE (x int)",
		"INSERT INTO t VALUES (1,",
		"SELECT * FROM t WHERE a ! 3",
		"SELECT * FROM dana.f(t)",
		"'unterminated",
		"",
		";;;",
	}
}

// FuzzSQLParse feeds arbitrary text to the SQL parser: reject or
// accept, never panic.
func FuzzSQLParse(f *testing.F) {
	for _, s := range sqlSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		stmts, err := ParseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			_ = s // parsed statements must at least stringify safely
		}
	})
}

// TestWriteSQLParseCorpus regenerates the committed seed corpus when
// DANA_WRITE_FUZZ_CORPUS is set.
func TestWriteSQLParseCorpus(t *testing.T) {
	if !fuzzcorpus.ShouldWrite() {
		t.Skipf("set %s=1 to regenerate the corpus", fuzzcorpus.WriteEnv)
	}
	if err := fuzzcorpus.WriteStrings("testdata/fuzz/FuzzSQLParse", sqlSeeds()); err != nil {
		t.Fatal(err)
	}
}
