// Package weaving is the any-precision extraction engine over the
// vertical (MLWeaving-style) page layout in internal/storage: the
// sibling of the Strider page walkers, but for bit-plane pages. An
// Extractor configured for k bits reads only the first k bit levels of
// a weave page — one contiguous prefix of the plane area — and
// reassembles each feature's truncated fixed-point code word-parallel,
// 64 rows per plane word, before dequantizing back into the float32
// datapath width. Labels pass through untouched.
//
// The decode kernels are //dana:hotpath (allocation-free, enforced by
// danalint hotalloc); scratch buffers live on the Extractor and are
// grown only in Prepare. The cycle model mirrors the Strider one:
// PageDecodeCycles prices a page as one cycle per plane word touched
// plus one per row of assembly/dequantization, so modeled decode time —
// like modeled transfer — shrinks almost linearly with k.
package weaving

import (
	"encoding/binary"
	"fmt"

	"dana/internal/storage"
)

// Extractor decodes weave pages at a fixed precision. Not safe for
// concurrent use; the host executor gives each worker its own.
type Extractor struct {
	bits int
	// codes is the per-page scratch: nrows × ncols truncated codes in
	// row-major order, reassembled from the planes.
	codes []uint32
}

// NewExtractor builds an extractor for k-bit reads (1..32).
func NewExtractor(bits int) (*Extractor, error) {
	if bits < 1 || bits > storage.WeaveMaxBits {
		return nil, fmt.Errorf("weaving: precision %d outside [1,%d]", bits, storage.WeaveMaxBits)
	}
	return &Extractor{bits: bits}, nil
}

// Bits returns the configured precision.
func (e *Extractor) Bits() int { return e.bits }

// Prepare sizes the scratch buffers for a page geometry. DecodePage
// calls it; it is exported so hot loops can hoist the growth out.
func (e *Extractor) Prepare(ncols, nrows int) {
	n := ncols * nrows
	if cap(e.codes) < n {
		e.codes = make([]uint32, n)
	}
	e.codes = e.codes[:n]
	for i := range e.codes {
		e.codes[i] = 0
	}
}

// DecodePage validates p and decodes it at the extractor's precision,
// appending one row of ncols+1 float32 values (features then label) per
// page row via emit. The emitted slice is reused across calls — like
// Relation.Scan, consumers copy if they retain.
func (e *Extractor) DecodePage(p storage.WeavePage, row []float32, emit func(row []float32) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	ncols, nrows := p.NumCols(), p.NumRows()
	e.Prepare(ncols, nrows)
	gatherPlanes(p, e.bits, e.codes)
	if cap(row) < ncols+1 {
		row = make([]float32, ncols+1)
	}
	row = row[:ncols+1]
	for r := 0; r < nrows; r++ {
		dequantizeRow(p, e.bits, r, e.codes[r*ncols:(r+1)*ncols], row)
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// DecodeRows decodes a whole page into freshly allocated rows of
// ncols+1 values — the materializing convenience wrapper around
// DecodePage (tests, reference paths).
func (e *Extractor) DecodeRows(p storage.WeavePage) ([][]float32, error) {
	var out [][]float32
	err := e.DecodePage(p, nil, func(row []float32) error {
		out = append(out, append([]float32(nil), row...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// gatherPlanes reassembles the top `bits` levels of every code on the
// page into codes (row-major nrows × ncols), word-parallel: each plane
// word carries 64 rows' bits at one (level, column), and all-zero words
// — the common case for high-order planes of small values — are skipped
// whole. The page must be validated and codes zeroed, len nrows*ncols.
//
//dana:hotpath
func gatherPlanes(p storage.WeavePage, bits int, codes []uint32) {
	ncols, nrows, pw := p.NumCols(), p.NumRows(), p.PlaneWords()
	base := p.PlaneOffset(0, 0)
	for level := 0; level < bits; level++ {
		shift := uint(storage.WeaveMaxBits - 1 - level)
		for c := 0; c < ncols; c++ {
			off := base + ((level*ncols+c)*pw)*8
			for w := 0; w < pw; w++ {
				word := binary.LittleEndian.Uint64(p[off+w*8:])
				if word == 0 {
					continue
				}
				rowBase := w * 64
				for word != 0 {
					// Isolate the lowest set bit: row rowBase+tz has this level set.
					tz := trailingZeros64(word)
					word &= word - 1
					r := rowBase + tz
					if r >= nrows {
						break
					}
					codes[r*ncols+c] |= 1 << shift
				}
			}
		}
	}
}

// dequantizeRow converts one row's truncated codes back into the
// float32 datapath: features through the per-column affine ranges at
// the read precision, the label verbatim. dst must hold ncols+1.
//
//dana:hotpath
func dequantizeRow(p storage.WeavePage, bits, r int, codes []uint32, dst []float32) {
	for c := 0; c < len(codes); c++ {
		dst[c] = storage.WeaveDequantize(codes[c], bits, p.Range(c))
	}
	dst[len(codes)] = p.Label(r)
}

// trailingZeros64 is bits.TrailingZeros64 without the import — the de
// Bruijn sequence form, branch-free, safe for the hotpath allocation
// contract.
//
//dana:hotpath
func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	return int(deBruijnIdx[(x&-x)*0x03f79d71b4ca8b09>>58])
}

var deBruijnIdx = [64]byte{
	0, 1, 56, 2, 57, 49, 28, 3, 61, 58, 42, 50, 38, 29, 17, 4,
	62, 47, 59, 36, 45, 43, 51, 22, 53, 39, 33, 30, 24, 18, 12, 5,
	63, 55, 48, 27, 60, 41, 37, 16, 46, 35, 44, 21, 52, 32, 23, 11,
	54, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
}

// DefaultReweaveRows is the page row budget ReweaveRows uses when the
// caller doesn't care. Paging never changes decoded values (ranges and
// quantization are per-value); it only shapes the byte geometry.
const DefaultReweaveRows = 1024

// ReweaveRows routes materialized rows (features then a trailing label)
// through the vertical layout and back at k-bit precision: quantize
// against ranges, weave into pages, decode the top k planes. It returns
// the rewoven rows plus the ranges used — nil ranges derive per-column
// min/max over all rows, which is delivery-order independent, so every
// legal stream form of the same epoch reweaves identically. This is the
// single reweaving semantics: the weave backend trains on its output
// and its conformance reference trains the golden float64 trainer on
// the same output.
func ReweaveRows(rows [][]float32, ranges []storage.WeaveRange, bits, pageRows int) ([][]float32, []storage.WeaveRange, error) {
	if len(rows) == 0 {
		return nil, ranges, nil
	}
	nfeat := len(rows[0]) - 1
	if nfeat < 1 {
		return nil, nil, fmt.Errorf("%w: rows carry %d values, need features plus a label",
			storage.ErrWeaveUnsupported, len(rows[0]))
	}
	feats := make([][]float32, len(rows))
	labels := make([]float32, len(rows))
	for i, r := range rows {
		if len(r) != nfeat+1 {
			return nil, nil, fmt.Errorf("%w: ragged row %d (%d values, want %d)",
				storage.ErrWeaveUnsupported, i, len(r), nfeat+1)
		}
		feats[i] = r[:nfeat]
		labels[i] = r[nfeat]
	}
	if ranges == nil {
		ranges = storage.WeaveRanges(feats, nfeat)
	}
	if pageRows <= 0 || pageRows > storage.WeaveMaxRows {
		pageRows = DefaultReweaveRows
	}
	e, err := NewExtractor(bits)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]float32, 0, len(rows))
	for at := 0; at < len(rows); at += pageRows {
		end := at + pageRows
		if end > len(rows) {
			end = len(rows)
		}
		p, err := storage.BuildWeavePage(ranges, feats[at:end], labels[at:end])
		if err != nil {
			return nil, nil, err
		}
		decoded, err := e.DecodeRows(p)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, decoded...)
	}
	return out, ranges, nil
}

// PageDecodeCycles models the cycles an any-precision Strider spends
// decoding one weave page at k bits: one cycle per plane word streamed
// (bits × ncols × planeWords) plus one per row for code assembly and
// dequantization. The k=32 figure is the full-width read; lower k
// shrinks the plane term linearly, mirroring the transfer model.
func PageDecodeCycles(ncols, nrows, bits int) int64 {
	if ncols < 1 || nrows < 1 {
		return 0
	}
	if bits < 1 {
		bits = 1
	}
	if bits > storage.WeaveMaxBits {
		bits = storage.WeaveMaxBits
	}
	pw := int64((nrows + 63) / 64)
	return int64(bits)*int64(ncols)*pw + int64(nrows)
}

// Geometry describes a relation rewoven into vertical pages: the page
// count and the exact per-epoch byte split the transfer model charges —
// fixed bytes (headers, ranges, labels) stream at every precision,
// while BitBytes is the cost of ONE additional bit level across the
// whole relation. A k-bit epoch streams FixedBytes + k×BitBytes.
type Geometry struct {
	Pages      int
	PageRows   int
	FixedBytes int64
	BitBytes   int64
}

// EffectiveBytes returns the exact bytes one epoch streams at k bits.
func (g Geometry) EffectiveBytes(bits int) int64 {
	if bits < 1 {
		bits = 1
	}
	if bits > storage.WeaveMaxBits {
		bits = storage.WeaveMaxBits
	}
	return g.FixedBytes + int64(bits)*g.BitBytes
}

// RelationGeometry computes the weave layout of a relation with tuples
// rows of nfeat feature columns, paged against pageSize bytes. All
// arithmetic is exact integer math — the precision-sweep identity tests
// compare these figures with == against the channel model's charges.
func RelationGeometry(tuples, nfeat, pageSize int) Geometry {
	if tuples < 1 || nfeat < 1 {
		return Geometry{}
	}
	rows := storage.WeavePageRows(pageSize, nfeat)
	g := Geometry{PageRows: rows}
	for at := 0; at < tuples; at += rows {
		n := tuples - at
		if n > rows {
			n = rows
		}
		g.Pages++
		g.FixedBytes += storage.WeaveFixedPageBytes(nfeat, n)
		g.BitBytes += storage.WeaveBitPageBytes(nfeat, n)
	}
	return g
}

// DecodeCycles prices decoding the whole geometry once at k bits.
func DecodeCycles(g Geometry, tuples, nfeat, bits int) int64 {
	var total int64
	rows := g.PageRows
	if rows < 1 {
		return 0
	}
	for at := 0; at < tuples; at += rows {
		n := tuples - at
		if n > rows {
			n = rows
		}
		total += PageDecodeCycles(nfeat, n, bits)
	}
	return total
}
