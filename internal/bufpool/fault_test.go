package bufpool

import (
	"errors"
	"testing"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/storage"
)

// faultRel builds a small relation and a pool serving it.
func faultRel(t *testing.T, npages int) (*Pool, *storage.Relation) {
	t.Helper()
	schema := storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TFloat32},
		storage.Column{Name: "b", Type: storage.TFloat32},
	)
	rel := storage.NewRelation("ft", schema, storage.PageSize8K)
	for rel.NumPages() < npages {
		if _, err := rel.Insert([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	p := New(npages+4, storage.PageSize8K, DefaultDisk())
	if err := p.AttachRelation(rel); err != nil {
		t.Fatal(err)
	}
	return p, rel
}

func rate(pt fault.Point, r float64) [fault.NumPoints]float64 {
	var rs [fault.NumPoints]float64
	rs[pt] = r
	return rs
}

func TestPinRecoversFromTransientReadFault(t *testing.T) {
	p, _ := faultRel(t, 2)
	p.SetFaults(fault.New(fault.Config{
		Seed: 1, Rates: rate(fault.PoolRead, 1), TransientAttempts: 2,
	}))
	pg, err := p.Pin("ft", 0)
	if err != nil {
		t.Fatalf("transient read fault should recover via retry: %v", err)
	}
	if pg == nil {
		t.Fatal("nil page on successful Pin")
	}
	if err := p.Unpin("ft", 0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Retries < 2 {
		t.Fatalf("expected >=2 retries, got %d", st.Retries)
	}
	if st.BackoffSeconds <= 0 {
		t.Fatalf("retries must charge backoff, got %v", st.BackoffSeconds)
	}
	if st.Misses != 1 {
		t.Fatalf("one logical miss expected, got %d", st.Misses)
	}
}

func TestPinFailsTypedOnPersistentReadFault(t *testing.T) {
	p, _ := faultRel(t, 2)
	p.SetFaults(fault.New(fault.Config{
		Seed: 1, Rates: rate(fault.PoolRead, 1), TransientAttempts: -1,
	}))
	_, err := p.Pin("ft", 0)
	if !errors.Is(err, fault.ErrIOTransient) {
		t.Fatalf("want ErrIOTransient, got %v", err)
	}
	if n := p.PinnedCount(); n != 0 {
		t.Fatalf("failed Pin leaked %d pins", n)
	}
	// The pool must stay fully usable: detach faults and re-Pin.
	p.SetFaults(nil)
	if _, err := p.Pin("ft", 0); err != nil {
		t.Fatalf("pool wedged after failed Pin: %v", err)
	}
	if err := p.Unpin("ft", 0); err != nil {
		t.Fatal(err)
	}
}

func TestTornPageCaughtAndRereadRecovers(t *testing.T) {
	for _, pt := range []fault.Point{fault.PageTear, fault.PageBitFlip} {
		p, _ := faultRel(t, 2)
		p.SetFaults(fault.New(fault.Config{
			Seed: 7, Rates: rate(pt, 1), TransientAttempts: 1,
		}))
		pg, err := p.Pin("ft", 0)
		if err != nil {
			t.Fatalf("%v: transient corruption should recover: %v", pt, err)
		}
		if !pg.ChecksumOK() {
			t.Fatalf("%v: recovered frame still corrupt", pt)
		}
		if err := p.Unpin("ft", 0); err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.ChecksumFailures < 1 {
			t.Fatalf("%v: corruption not counted (failures=%d)", pt, st.ChecksumFailures)
		}
		if st.Retries < 1 {
			t.Fatalf("%v: recovery must go through retry, got %d", pt, st.Retries)
		}
	}
}

func TestTornPageFailsTypedWhenPersistent(t *testing.T) {
	p, _ := faultRel(t, 2)
	p.SetFaults(fault.New(fault.Config{
		Seed: 7, Rates: rate(fault.PageTear, 1), TransientAttempts: -1,
	}))
	//danalint:ignore pinbalance -- Pin must fail with a typed fault; PinnedCount asserts no leak
	_, err := p.Pin("ft", 1)
	if !errors.Is(err, fault.ErrTornPage) {
		t.Fatalf("want ErrTornPage, got %v", err)
	}
	if n := p.PinnedCount(); n != 0 {
		t.Fatalf("failed Pin leaked %d pins", n)
	}
}

func TestCorruptionNeverReachesHeapSource(t *testing.T) {
	p, rel := faultRel(t, 1)
	p.SetFaults(fault.New(fault.Config{
		Seed: 3, Rates: rate(fault.PageBitFlip, 1), TransientAttempts: 1,
	}))
	if _, err := p.Pin("ft", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("ft", 0); err != nil {
		t.Fatal(err)
	}
	// The injector corrupts the frame copy only; the relation's own
	// page must still be intact and checksum-clean.
	src, err := rel.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if !src.ChecksumOK() {
		t.Fatal("heap source page was corrupted by frame-copy injection")
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumVerifiedVsSkippedCounters(t *testing.T) {
	reg := obs.New()
	p, _ := faultRel(t, 3)
	p.SetObs(reg)
	// No injector, no VerifyChecksums: misses skip verification.
	for pn := uint32(0); pn < 3; pn++ {
		if _, err := p.Pin("ft", pn); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin("ft", pn); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Get(obs.PoolChecksumSkipped); got != 3 {
		t.Fatalf("skipped=%d, want 3", got)
	}
	if got := reg.Get(obs.PoolChecksumVerified); got != 0 {
		t.Fatalf("verified=%d, want 0", got)
	}
	// Attach a zero-rate injector: verification turns on.
	p.SetFaults(fault.New(fault.Config{Seed: 1}))
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	for pn := uint32(0); pn < 3; pn++ {
		if _, err := p.Pin("ft", pn); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin("ft", pn); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Get(obs.PoolChecksumVerified); got != 3 {
		t.Fatalf("verified=%d, want 3", got)
	}
	if got := reg.Get(obs.PoolChecksumFailed); got != 0 {
		t.Fatalf("clean pages failed verification %d times", got)
	}
}

func TestVerifyChecksumsFlagCatchesRealCorruption(t *testing.T) {
	p, rel := faultRel(t, 2)
	p.VerifyChecksums = true
	// Stamp, then corrupt the heap page *after* stamping so the stored
	// checksum no longer matches (a genuinely torn heap, not injection).
	src, err := rel.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	src[len(src)-1] ^= 0xFF
	//danalint:ignore pinbalance -- Pin must fail on the torn heap page
	_, err = p.Pin("ft", 0)
	if !errors.Is(err, fault.ErrTornPage) {
		t.Fatalf("want ErrTornPage for real heap corruption, got %v", err)
	}
	// Undo: the page becomes readable again.
	src[len(src)-1] ^= 0xFF
	//danalint:ignore pinbalance -- final Pin proves readability; the test ends holding it
	if _, err := p.Pin("ft", 0); err != nil {
		t.Fatalf("restored page still failing: %v", err)
	}
}

func TestLatencySpikeChargesIOClock(t *testing.T) {
	base, _ := faultRel(t, 4)
	for pn := uint32(0); pn < 4; pn++ {
		if _, err := base.Pin("ft", pn); err != nil {
			t.Fatal(err)
		}
		_ = base.Unpin("ft", pn)
	}
	spiked, _ := faultRel(t, 4)
	spiked.SetFaults(fault.New(fault.Config{
		Seed: 5, Rates: rate(fault.PoolLatency, 1), LatencySpikeSec: 0.25,
	}))
	for pn := uint32(0); pn < 4; pn++ {
		if _, err := spiked.Pin("ft", pn); err != nil {
			t.Fatal(err)
		}
		_ = spiked.Unpin("ft", pn)
	}
	d := spiked.Stats().IOSeconds - base.Stats().IOSeconds
	if d < 0.99 { // 4 spikes x 0.25s
		t.Fatalf("latency spikes added only %v simulated seconds", d)
	}
}

func TestZeroRateInjectorIsBitIdenticalToNil(t *testing.T) {
	plain, _ := faultRel(t, 4)
	inj, _ := faultRel(t, 4)
	inj.SetFaults(fault.New(fault.Config{Seed: 42}))
	for pn := uint32(0); pn < 4; pn++ {
		a, err := plain.Pin("ft", pn)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inj.Pin("ft", pn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("page %d byte %d differs under zero-rate injector", pn, i)
			}
		}
		_ = plain.Unpin("ft", pn)
		_ = inj.Unpin("ft", pn)
	}
	sa, sb := plain.Stats(), inj.Stats()
	if sa.IOSeconds != sb.IOSeconds || sa.Misses != sb.Misses || sb.Retries != 0 {
		t.Fatalf("zero-rate injector changed pool accounting: %+v vs %+v", sa, sb)
	}
}
