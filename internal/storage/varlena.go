package storage

import (
	"encoding/binary"
	"fmt"
)

// Variable-length (varlena) datum encoding, mirroring PostgreSQL's
// little-endian on-disk forms (postgres.h):
//
//   - short form: one header byte (len<<1)|1 where len counts the header
//     itself, for total sizes 1..127 bytes; the payload is unaligned.
//   - 4-byte form: a uint32 header len<<2 (low two bits zero) where len
//     counts the 4 header bytes, for payloads up to VarlenaMaxLen.
//
// The storage schema machinery stays fixed-width (training relations are
// dense numeric tables), but formed tuples may carry a trailing varlena
// datum — e.g. a model blob or free-text column — and the differential
// harness round-trips those through real pages.

// VarlenaMaxLen is the largest encodable payload (30-bit length field,
// minus the 4 header bytes).
const VarlenaMaxLen = 1<<30 - 5

// varlenaShortMax is the largest total size of the 1-byte-header form.
const varlenaShortMax = 0x7F

// AppendVarlena appends the varlena encoding of payload to dst,
// choosing the short form when it fits.
func AppendVarlena(dst, payload []byte) ([]byte, error) {
	if len(payload) > VarlenaMaxLen {
		return dst, fmt.Errorf("storage: varlena payload of %d bytes exceeds max %d", len(payload), VarlenaMaxLen)
	}
	if total := len(payload) + 1; total <= varlenaShortMax {
		dst = append(dst, byte(total<<1|1))
		return append(dst, payload...), nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)+4)<<2)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// VarlenaSize returns the total encoded size (header + payload) of the
// varlena datum starting at b[0], without decoding the payload.
func VarlenaSize(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("%w: empty varlena datum", ErrCorrupt)
	}
	if b[0]&1 == 1 {
		total := int(b[0] >> 1)
		if total == 0 {
			return 0, fmt.Errorf("%w: toasted varlena (1-byte header with zero length) unsupported", ErrCorrupt)
		}
		return total, nil
	}
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: truncated 4-byte varlena header", ErrCorrupt)
	}
	hdr := binary.LittleEndian.Uint32(b)
	if hdr&0x3 != 0 {
		return 0, fmt.Errorf("%w: varlena header %#x has compression bits set", ErrCorrupt, hdr)
	}
	total := int(hdr >> 2)
	if total < 4 {
		return 0, fmt.Errorf("%w: 4-byte varlena header claims total %d < 4", ErrCorrupt, total)
	}
	return total, nil
}

// DecodeVarlena decodes the varlena datum starting at b[0], returning
// the payload (aliasing b) and the total bytes consumed.
func DecodeVarlena(b []byte) (payload []byte, n int, err error) {
	total, err := VarlenaSize(b)
	if err != nil {
		return nil, 0, err
	}
	if total > len(b) {
		return nil, 0, fmt.Errorf("%w: varlena of %d bytes overruns buffer of %d", ErrCorrupt, total, len(b))
	}
	hdr := 4
	if b[0]&1 == 1 {
		hdr = 1
	}
	return b[hdr:total], total, nil
}
