package dana

import (
	"strings"
	"testing"
)

func openSmall(t *testing.T) *Engine {
	t.Helper()
	eng, err := Open(Config{PageSize: 8 << 10, PoolBytes: 32 << 20, MaxEpochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestOpenValidatesPageSize(t *testing.T) {
	if _, err := Open(Config{PageSize: 1234}); err == nil {
		t.Error("bad page size accepted")
	}
	if _, err := Open(Config{}); err != nil {
		t.Errorf("zero config should use defaults: %v", err)
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	eng := openSmall(t)
	// Plain SQL works.
	if _, err := eng.SQL("CREATE TABLE t (a float4, b float4); INSERT INTO t VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.SQL("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 1 {
		t.Errorf("count = %v", res.Rows[0][0])
	}

	// Load a paper workload, register a UDF from DSL source, train via SQL.
	d, err := eng.LoadWorkload("Patient", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := `
mo = dana.model([384])
in = dana.input([384])
out = dana.output()
lr = dana.meta(0.0013)
linearR = dana.algo(mo, in, out)
s = sigma(mo * in, 1)
er = s - out
grad = er * in
mo_up = mo - lr * grad
merge_coef = dana.meta(16)
g2 = linearR.merge(grad, merge_coef, "+")
linearR.setModel(mo_up)
linearR.setEpochs(8)
`
	if _, err := eng.RegisterUDFSource(src, 16); err != nil {
		t.Fatal(err)
	}
	out, err := eng.SQL("SELECT * FROM dana.linearR('" + d.Rel.Name + "')")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 384 {
		t.Fatalf("model rows = %d", len(out.Rows))
	}
	if !strings.Contains(out.Msg, "epochs") {
		t.Errorf("msg = %q", out.Msg)
	}
}

func TestBuilderAPIAndTrain(t *testing.T) {
	eng := openSmall(t)
	d, err := eng.LoadWorkload("Remote Sensing LR", 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAlgo("logit54")
	mo := a.Model(54)
	in := a.Input(54)
	out := a.Output()
	lr := a.Meta(0.04)
	s := Sigma(Mul(mo, in), 1)
	p := Sigmoid(s)
	grad := Mul(Sub(p, out), in)
	a.MustMerge(grad, 32, "+")
	a.SetModel(Sub(mo, Mul(lr, grad)))
	a.SetEpochs(4)
	if err := eng.RegisterUDF(a, 32); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Train("logit54", d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 4 || len(res.Model) != 54 {
		t.Errorf("epochs=%d model=%d", res.Epochs, len(res.Model))
	}
	if res.Design.AUs <= 0 {
		t.Errorf("design = %+v", res.Design)
	}
}

func TestBaselinesThroughPublicAPI(t *testing.T) {
	eng := openSmall(t)
	d, err := eng.LoadWorkload("Blog Feedback", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	algo := LinearRegression{NFeatures: 280, LR: 0.0018}
	mad, err := eng.TrainMADlib(d.Rel.Name, algo, 5)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := eng.TrainGreenplum(d.Rel.Name, algo, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mad.FinalLoss <= 0 || gp.FinalLoss <= 0 {
		t.Errorf("losses: madlib %v greenplum %v", mad.FinalLoss, gp.FinalLoss)
	}
	if mad.Tuples != gp.Tuples {
		t.Errorf("tuple counts differ: %d vs %d", mad.Tuples, gp.Tuples)
	}
}

func TestWorkloadLookups(t *testing.T) {
	if len(Workloads()) != 14 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
	w, err := WorkloadByName("Netflix")
	if err != nil || w.Topology[2] != 10 {
		t.Errorf("Netflix lookup: %v %v", w, err)
	}
	eng := openSmall(t)
	if _, err := eng.LoadWorkload("nope", 0.1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if fpga := eng.FPGA(); fpga.DSPs != 6840 {
		t.Errorf("FPGA = %+v", fpga)
	}
	if p := eng.CostParams(); p.FPGAClockHz != 150e6 {
		t.Errorf("cost params = %+v", p)
	}
}

func TestParseUDFExported(t *testing.T) {
	a, err := ParseUDF(`
mo = dana.model([4])
in = dana.input([4])
out = dana.output()
al = dana.algo(mo, in, out)
g = (mo * in) - out
al.setModel(mo - g)
al.setEpochs(1)
`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "al" {
		t.Errorf("name = %q", a.Name)
	}
}

func TestWarmColdCacheControls(t *testing.T) {
	eng := openSmall(t)
	d, err := eng.LoadWorkload("WLAN", 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WarmCache(d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	res, err := eng.SQL("SELECT COUNT(*) FROM " + d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != float64(d.Tuples) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if eng.Pool().Stats().Misses != 0 {
		t.Errorf("warm scan missed %d times", eng.Pool().Stats().Misses)
	}
	if err := eng.ColdCache(); err != nil {
		t.Fatal(err)
	}
	eng.Pool().ResetStats()
	if _, err := eng.SQL("SELECT COUNT(*) FROM " + d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	if eng.Pool().Stats().Misses == 0 {
		t.Error("cold scan had no misses")
	}
	if err := eng.WarmCache("ghost"); err == nil {
		t.Error("warming a missing table succeeded")
	}
}

func TestRenderUDFPublic(t *testing.T) {
	a, err := ParseUDF(`
mo = dana.model([3])
in = dana.input([3])
out = dana.output()
al = dana.algo(mo, in, out)
g = (sigma(mo * in, 1) - out) * in
al.setModel(mo - 0.1 * g)
al.setEpochs(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	src := RenderUDF(a)
	if _, err := ParseUDF(src); err != nil {
		t.Fatalf("rendered UDF does not re-parse: %v\n%s", err, src)
	}
}
