package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of one Go module from source.
// It resolves intra-module imports itself and standard-library imports
// through the GOROOT source importer, so it needs neither a build cache
// nor network access. The module must be dependency-free (true for
// dana), which is exactly what lets the loader stay ~200 lines.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string

	// ModulePath is the module's import-path prefix ("dana").
	ModulePath string

	// IncludeTests analyzes _test.go files too: in-package test files
	// augment their package; external `package foo_test` files form
	// their own package. Import resolution always uses the plain
	// (non-test) package, so test-only import edges cannot create
	// cycles.
	IncludeTests bool

	fset *token.FileSet
	std  types.ImporterFrom

	mu      sync.Mutex
	plain   map[string]*plainEntry
	loading map[string]bool
}

type plainEntry struct {
	pkg  *Package
	err  error
	done bool
}

// NewLoader locates the module root at or above dir and prepares a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		plain:      map[string]*plainEntry{},
		loading:    map[string]bool{},
	}, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load expands the patterns ("./...", "./internal/foo", "dana/...",
// absolute or relative directories) and returns the analysis packages,
// sorted by import path. Directories named testdata are skipped by
// `...` expansion but can be loaded by naming them directly (fixture
// packages for analyzer tests).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// expand resolves patterns to directories holding Go files.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok && (rest == "" || rest[0] == '/') {
			pat = "." + rest
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir builds the analysis packages for one directory: the package
// itself (augmented with in-package test files when IncludeTests), plus
// an external test package when one exists.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	pkgPath := l.pkgPathFor(dir)
	var pkgs []*Package
	if !l.IncludeTests || len(bp.TestGoFiles) == 0 {
		plain, err := l.loadPlain(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, plain)
	} else {
		files := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
		aug, err := l.typeCheck(pkgPath, dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, aug)
	}
	if l.IncludeTests && len(bp.XTestGoFiles) > 0 {
		xt, err := l.typeCheck(pkgPath+"_test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, xt)
	}
	return pkgs, nil
}

// pkgPathFor synthesizes the import path for a directory: module-rooted
// when inside the module, "fixture:"-prefixed otherwise (testdata).
func (l *Loader) pkgPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "fixture:" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	rel = filepath.ToSlash(rel)
	if strings.Contains(rel, "testdata/") {
		return "fixture:" + rel
	}
	return l.ModulePath + "/" + rel
}

// loadPlain loads and caches the non-test package of a directory; it is
// both an analysis target and the import-resolution unit.
func (l *Loader) loadPlain(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	l.mu.Lock()
	if ent, ok := l.plain[dir]; ok && ent.done {
		l.mu.Unlock()
		return ent.pkg, ent.err
	}
	if l.loading[dir] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	l.mu.Unlock()

	bp, err := build.ImportDir(dir, 0)
	var pkg *Package
	if err != nil {
		err = fmt.Errorf("lint: %s: %w", dir, err)
	} else {
		pkg, err = l.typeCheck(l.pkgPathFor(dir), dir, bp.GoFiles)
	}

	l.mu.Lock()
	l.plain[dir] = &plainEntry{pkg: pkg, err: err, done: true}
	delete(l.loading, dir)
	l.mu.Unlock()
	return pkg, err
}

// typeCheck parses and type-checks one file set as a package.
func (l *Loader) typeCheck(pkgPath, dir string, fileNames []string) (*Package, error) {
	sort.Strings(fileNames)
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l, dir: dir},
		Error:    func(error) {}, // keep going; first error returned below
	}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// moduleImporter resolves imports: module-internal paths load from
// source through the Loader, everything else (the standard library)
// goes through the GOROOT source importer.
type moduleImporter struct {
	l   *Loader
	dir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if rest, ok := strings.CutPrefix(path, m.l.ModulePath); ok && (rest == "" || rest[0] == '/') {
		pkg, err := m.l.loadPlain(filepath.Join(m.l.Root, filepath.FromSlash(rest)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, m.dir, 0)
}
