// Package runtime is DAnA's integration layer (paper Figure 2): it
// wires the SQL front end, catalog, and buffer pool to the translator,
// compiler, hardware generator, access engine, and execution engine,
// and executes `SELECT * FROM dana.<udf>('table')` end to end — pages
// stream from the buffer pool through Striders into the multi-threaded
// engine, producing a trained model and cycle-accurate statistics.
package runtime

import (
	"fmt"
	"time"

	"dana/internal/accessengine"
	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hwgen"
	"dana/internal/ml"
	"dana/internal/obs"
	"dana/internal/sql"
	"dana/internal/storage"
	"dana/internal/strider"
)

// Options configure a System.
type Options struct {
	PageSize  int
	PoolBytes int64
	Disk      bufpool.DiskModel
	FPGA      hwgen.FPGA
	Cost      cost.Params
	// MaxEpochs caps functional training regardless of the UDF's epoch
	// budget (0 = use the UDF's).
	MaxEpochs int

	// Workers sets the host goroutines that run Strider VMs during
	// extraction (0 = GOMAXPROCS, capped at the design's Strider count;
	// 1 = serial). Parallelism affects wall-clock time only: modeled
	// cycle counts are charged in page order and stay bit-identical.
	Workers int
	// PipelineDepth bounds the extracted-but-unconsumed page batches per
	// worker (0 = default), bounding memory for large tables.
	PipelineDepth int
	// NoExtractCache disables the cross-epoch extracted-record cache, so
	// every epoch re-walks the heap pages through the Striders.
	NoExtractCache bool

	// Obs supplies the observability registry every subsystem charges
	// (nil = the System creates its own enabled registry). Observation
	// is strictly additive: modeled cycles, simulated seconds, and
	// trained models are bit-identical with obs on, off, or shared.
	Obs *obs.Registry
	// DisableObs runs the system dark (obs.Noop): every counter site
	// degrades to a nil-check. Overrides Obs.
	DisableObs bool
}

// DefaultOptions mirrors the paper's default setup: 32 KB pages, 8 GB
// buffer pool, VU9P FPGA. The pool is capped at 256 MB of frames for
// in-process runs; the cost model still uses the full 8 GB figure.
func DefaultOptions() Options {
	p := cost.Default()
	return Options{
		PageSize:  storage.PageSize32K,
		PoolBytes: 256 << 20,
		Disk:      bufpool.DefaultDisk(),
		FPGA:      hwgen.VU9P(),
		Cost:      p,
	}
}

// System is a DAnA-enhanced database instance.
type System struct {
	Opts Options
	DB   *sql.DB

	cache recordCache // cross-epoch extracted-record cache

	obs *obs.Registry // observability registry (obs.Noop when disabled)
	// Cached runtime-layer instrument handles (nil-safe no-ops when dark).
	obsEpochs       *obs.Counter
	obsEpochsCached *obs.Counter
	obsCacheHits    *obs.Counter
	obsCacheMisses  *obs.Counter
	obsWorkerBusy   *obs.Counter
	obsEpochWall    *obs.Counter
	obsTrainWall    *obs.Counter
	obsTrainRuns    *obs.Counter
	obsEpochHist    *obs.Histogram
}

// New creates the system and installs it as the SQL executor's UDF
// runner.
func New(opts Options) *System {
	if opts.PageSize == 0 {
		opts = DefaultOptions()
	}
	s := &System{
		Opts: opts,
		DB:   sql.NewDB(opts.PageSize, opts.PoolBytes, opts.Disk),
	}
	s.DB.Runner = s
	reg := opts.Obs
	if opts.DisableObs {
		reg = obs.Noop
	} else if reg == nil {
		reg = obs.New()
	}
	s.obs = reg
	s.DB.Pool.SetObs(reg)
	s.obsEpochs = reg.Counter(obs.RuntimeEpochs)
	s.obsEpochsCached = reg.Counter(obs.RuntimeEpochCached)
	s.obsCacheHits = reg.Counter(obs.RuntimeCacheHits)
	s.obsCacheMisses = reg.Counter(obs.RuntimeCacheMisses)
	s.obsWorkerBusy = reg.Counter(obs.RuntimeWorkerBusyNs)
	s.obsEpochWall = reg.Counter(obs.RuntimeEpochWallNs)
	s.obsTrainWall = reg.Counter(obs.RuntimeTrainWallNs)
	s.obsTrainRuns = reg.Counter(obs.RuntimeTrainRuns)
	s.obsEpochHist = reg.Hist(obs.HistEpochWallNs)
	return s
}

// Obs returns the system's observability registry (obs.Noop when the
// system runs dark). Snapshot it for the JSON export, or read counters
// programmatically via Get.
func (s *System) Obs() *obs.Registry { return s.obs }

// Catalog returns the system catalog.
func (s *System) Catalog() *catalog.Catalog { return s.DB.Cat }

// Pool returns the buffer pool.
func (s *System) Pool() *bufpool.Pool { return s.DB.Pool }

// WarmTable pre-loads a table into the buffer pool (the paper's
// warm-cache setting) and resets the pool counters.
func (s *System) WarmTable(table string) error {
	if _, err := s.DB.Cat.Table(table); err != nil {
		return err
	}
	return s.DB.Pool.Warm(table)
}

// DropCaches empties the buffer pool and the extracted-record cache
// (the cold-cache setting): the next epoch re-reads every page from the
// simulated disk. Pool invalidations that bypass this method (e.g. DROP
// TABLE inside the SQL layer) still invalidate the record cache via the
// pool's invalidation counter.
func (s *System) DropCaches() error {
	if err := s.DB.Pool.Invalidate(); err != nil {
		return err
	}
	s.cache.clear()
	return nil
}

// Deploy attaches a generated dataset's relation to the catalog and
// buffer pool.
func (s *System) Deploy(d *datagen.Dataset) error {
	if err := s.DB.Cat.AttachTable(d.Rel); err != nil {
		return err
	}
	return s.DB.Pool.AttachRelation(d.Rel)
}

// Register translates the UDF, compiles it, runs hardware generation
// for the system FPGA, generates the Strider program, and stores the
// accelerator in the catalog. numTuples scores design points.
func (s *System) Register(a *dsl.Algo, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	udf, err := s.DB.Cat.RegisterUDF(a)
	if err != nil {
		return nil, err
	}
	return s.buildAccelerator(udf, mergeCoef, numTuples)
}

func (s *System) buildAccelerator(udf *catalog.UDF, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	if mergeCoef < 1 {
		mergeCoef = udf.Graph.MergeCoef
	}
	prog, err := compiler.Compile(udf.Graph)
	if err != nil {
		return nil, err
	}
	design, err := hwgen.Generate(prog, s.Opts.FPGA, hwgen.Params{
		PageSize:  s.Opts.PageSize,
		MergeCoef: mergeCoef,
		NumTuples: numTuples,
	})
	if err != nil {
		return nil, err
	}
	sprog, scfg, err := strider.Generate(strider.PostgresLayout(s.Opts.PageSize))
	if err != nil {
		return nil, err
	}
	sched := compiler.ScheduleProgram(prog, design.Engine)
	acc := &catalog.Accelerator{
		UDFName:         udf.Name,
		Program:         prog,
		StriderProg:     sprog,
		StriderCfg:      scfg,
		Design:          design,
		OperationMap:    compiler.OperationMap(prog.PerTuple, sched),
		ScheduledCycles: sched.MakespanCycles,
	}
	if err := s.DB.Cat.StoreAccelerator(acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// TrainResult reports one functional accelerated training run.
type TrainResult struct {
	UDF    string
	Table  string
	Model  []float32
	Epochs int

	Engine engine.Stats
	Access accessengine.Stats
	Pool   bufpool.Stats
	Design hwgen.Design

	// SimulatedSeconds is the modeled accelerator time for the run
	// (pipeline of engine/strider/transfer at the FPGA clock) plus I/O.
	SimulatedSeconds float64
}

// Train runs the DAnA pipeline for a registered UDF over a table:
// buffer-pool pages -> Striders -> execution engine, epoch by epoch
// with convergence checks.
func (s *System) Train(udfName, table string) (*TrainResult, error) {
	udf, err := s.DB.Cat.UDF(udfName)
	if err != nil {
		return nil, err
	}
	rel, err := s.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	acc, ok := s.DB.Cat.Accelerator(udfName)
	if !ok {
		if acc, err = s.buildAccelerator(udf, 0, rel.NumTuples()); err != nil {
			return nil, err
		}
	}
	if got, want := rel.Schema.NumCols(), udf.Graph.TupleWidth(); got != want {
		return nil, fmt.Errorf("runtime: table %q has %d columns, UDF %q consumes %d", table, got, udfName, want)
	}

	nStriders := acc.Design.NumStriders
	if nStriders < 1 {
		nStriders = 1
	}
	if nStriders > 16 {
		nStriders = 16 // in-process VM instances; cycle model unchanged
	}
	ae, err := accessengine.New(strider.PostgresLayout(s.Opts.PageSize), rel.Schema, nStriders)
	if err != nil {
		return nil, err
	}
	ae.SetObs(s.obs)
	machine, err := engine.NewMachine(acc.Program, acc.Design.Engine)
	if err != nil {
		return nil, err
	}
	machine.SetObs(s.obs)
	defer machine.Close() // releases batch fan-out helpers, if any
	// LRMF-style factor models cannot start at zero (a stationary
	// point); seed them with the same small uniform initialization the
	// reference implementation uses.
	if len(udf.Graph.RowUpdates) > 0 {
		init := ml.InitModel(ml.LRMF{
			Users: udf.Graph.Model.Shape[0], Items: 0, Rank: udf.Graph.Model.Shape[1],
		}, 1)
		f32 := make([]float32, len(init))
		for i, v := range init {
			f32[i] = float32(v)
		}
		if err := machine.SetModel(f32); err != nil {
			return nil, err
		}
	}

	epochs := udf.Graph.Epochs
	if epochs < 1 {
		epochs = 1
	}
	if s.Opts.MaxEpochs > 0 && epochs > s.Opts.MaxEpochs {
		epochs = s.Opts.MaxEpochs
	}
	res := &TrainResult{UDF: udfName, Table: table, Design: acc.Design}
	runner := s.newEpochRunner(ae, rel, machine, udf.Graph.MergeCoef)
	trainStart := time.Now()
	s.obsTrainRuns.Inc()
	s.obs.Trace(obs.EvTrainStart, int64(epochs), int64(rel.NumPages()))
	for e := 0; e < epochs; e++ {
		if err := runner.runEpoch(e); err != nil {
			return nil, err
		}
		res.Epochs++
		done, err := machine.Converged()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	s.obsTrainWall.Add(time.Since(trainStart).Nanoseconds())
	s.obs.Trace(obs.EvTrainDone, int64(res.Epochs), machine.Stats().Cycles)
	res.Model = machine.Model()
	res.Engine = machine.Stats()
	res.Access = ae.Stats()
	res.Pool = s.DB.Pool.Stats()
	// Pipeline time: engine and striders overlap; PCIe transfer too.
	clock := s.Opts.FPGA.ClockHz
	engineSec := float64(res.Engine.Cycles) / clock
	striderSec := float64(res.Access.Cycles) / clock
	transferSec := float64(res.Access.Pages) * float64(s.Opts.PageSize) /
		(s.Opts.Cost.PCIeBytesPerSec * nz(s.Opts.Cost.BandwidthScale))
	pipe := engineSec
	if striderSec > pipe {
		pipe = striderSec
	}
	if transferSec > pipe {
		pipe = transferSec
	}
	res.SimulatedSeconds = pipe + res.Pool.IOSeconds + s.Opts.Cost.SetupSec
	return res, nil
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// RunUDF implements sql.UDFRunner: training results surface as a result
// set of (index, value) model parameters, capped at 4096 rows.
func (s *System) RunUDF(udfName, table string) (*sql.Result, error) {
	res, err := s.Train(udfName, table)
	if err != nil {
		return nil, err
	}
	out := &sql.Result{Cols: []string{"param", "value"}}
	limitRows := len(res.Model)
	if limitRows > 4096 {
		limitRows = 4096
	}
	for i := 0; i < limitRows; i++ {
		out.Rows = append(out.Rows, []float64{float64(i), float64(res.Model[i])})
	}
	out.Msg = fmt.Sprintf("DAnA trained %s on %s: %d epochs, %d tuples, %d cycles",
		udfName, table, res.Epochs, res.Engine.Tuples, res.Engine.Cycles)
	return out, nil
}
