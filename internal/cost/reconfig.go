// Reconfiguration pricing for the multi-tenant accelerator server
// (internal/server). ReProVide-style sequence-aware scheduling keeps an
// accelerator instance's loaded hDFG/Strider configuration resident
// between jobs: a job whose configuration is already loaded pays only a
// cheap handshake, while switching configurations pays the full
// reconfiguration. The scheduler prices the switch amortized over the
// queued jobs that would reuse it, which is what makes "reconfigure now
// for a popular config" and "reuse the loaded config for a near-fair
// tenant" comparable in the same unit (modeled seconds).
package cost

import "math"

// ReconfigSec is the configuration charge for placing one job on an
// instance: ConfigReuseSec when the instance's loaded configuration
// already matches the job, ReconfigureSec when it must be switched.
func ReconfigSec(p Params, reuse bool) float64 {
	if reuse {
		return p.ConfigReuseSec
	}
	return p.ReconfigureSec
}

// AmortizedReconfigSec prices a configuration switch amortized over its
// beneficiaries: the job that triggers it plus `upcoming` queued jobs
// wanting the same configuration, each of which will reuse the loaded
// state. More queued demand makes the switch proportionally cheaper to
// charge against any single job.
func AmortizedReconfigSec(p Params, upcoming int) float64 {
	if upcoming < 0 {
		upcoming = 0
	}
	return p.ReconfigureSec / float64(1+upcoming)
}

// ServerServiceSec converts a system model's end-to-end time into the
// service time a scheduler should charge on an already-configured
// instance: the per-query SetupSec the DAnA breakdowns include is
// removed, because the server prices configuration explicitly (and
// per placement) through ReconfigSec instead of once per query.
func ServerServiceSec(totalSec float64, p Params) float64 {
	s := totalSec - p.SetupSec
	if s < 0 {
		return 0
	}
	return s
}

// ScoreServiceSec models one batch-scoring pass for the server's
// admission pricing: a single stream of the dataset over the link
// overlapped with one Strider unpacking pass. There is no engine cycle
// model for scoring yet (ROADMAP item 4), so inference is priced as the
// data-movement bound of one epoch with zero training compute.
func ScoreServiceSec(w Workload, p Params) float64 {
	w.Epochs = 1
	w.DAnAEpochs = 0
	transfer := danaTransferSec(w, p)
	striders := w.Striders
	if striders < 1 {
		striders = 1
	}
	strider := float64(w.Pages) * float64(w.StriderPageCycles) /
		(float64(striders) * p.FPGAClockHz)
	return math.Max(transfer, strider)
}
