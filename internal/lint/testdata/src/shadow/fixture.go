// Package fixture exercises the shadow analyzer: an inner := that
// shadows an outer variable is reported only when the outer variable
// is read again after the inner scope closes (the lost-write bug).
package fixture

func step1() error { return nil }
func step2() error { return nil }

func shadowedThenRead() error {
	err := step1()
	{
		err := step2() // want `shadows a error from an enclosing scope`
		_ = err
	}
	if err != nil {
		return err
	}
	return nil
}

func initClauseOK() error {
	err := step1()
	if err := step2(); err != nil {
		return err
	}
	return err
}

func overwrittenAfterOK() error {
	err := step1()
	{
		err := step2()
		_ = err
	}
	err = step1()
	if err != nil {
		return err
	}
	return nil
}

func neverReadAgainOK() error {
	err := step1()
	_ = err
	{
		err := step2()
		if err != nil {
			return err
		}
	}
	return nil
}
