package server

import (
	"errors"
	"io"
	"sync"
	"testing"
)

func smallLoad(seed int64) LoadConfig {
	return LoadConfig{
		Seed: seed, Tenants: 3, Jobs: 12, RateJobsPerSec: 8,
		Workloads: []string{"WLAN", "Patient"},
		Scale:     0.002, Epochs: 1,
	}
}

func newTestServer(t *testing.T, load LoadConfig, instances int) *Server {
	t.Helper()
	srv, err := New(Config{
		Tenants:   DefaultTenants(load.withDefaults().Tenants),
		Instances: instances,
		Seed:      load.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerRunIdentity drives a seeded mixed train/score load through
// the full stack and checks the batch is clean and the per-tenant
// counter identity holds exactly.
func TestServerRunIdentity(t *testing.T) {
	load := smallLoad(7)
	srv := newTestServer(t, load, 2)
	rep, err := srv.Run(GenLoad(load))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != load.withDefaults().Jobs {
		t.Fatalf("ran %d jobs, want %d", rep.Jobs, load.withDefaults().Jobs)
	}
	if rep.Errors != 0 {
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Errorf("job %d (%s %s): %v", r.Placement.Seq, r.Placement.Spec.Kind, r.Placement.Spec.Workload, r.Err)
			}
		}
		t.Fatalf("%d job errors on a fault-free load", rep.Errors)
	}
	if err := srv.IdentityError(); err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Reuses == 0 {
		t.Fatal("sequence-aware run found no configuration reuse on a 2-workload load")
	}
	var cyc int64
	for _, r := range rep.Results {
		if r.Placement.Spec.Kind == KindTrain {
			cyc += r.EngineCycles
		}
	}
	if cyc == 0 {
		t.Fatal("train jobs charged zero engine cycles")
	}
}

// TestServerDeterminism replays the same load on a fresh server and
// requires bit-identical outcomes: placements, per-job cycle deltas,
// and model bits.
func TestServerDeterminism(t *testing.T) {
	load := smallLoad(11)
	run := func() *Report {
		srv := newTestServer(t, load, 2)
		rep, err := srv.Run(GenLoad(load))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Placement != rb.Placement {
			t.Fatalf("job %d placement differs:\n%+v\n%+v", i, ra.Placement, rb.Placement)
		}
		if ra.EngineCycles != rb.EngineCycles || ra.StriderCycles != rb.StriderCycles {
			t.Fatalf("job %d cycles differ: (%d,%d) vs (%d,%d)",
				i, ra.EngineCycles, ra.StriderCycles, rb.EngineCycles, rb.StriderCycles)
		}
		if len(ra.Model) != len(rb.Model) {
			t.Fatalf("job %d model sizes differ", i)
		}
		for k := range ra.Model {
			if ra.Model[k] != rb.Model[k] {
				t.Fatalf("job %d model bit-differs at %d", i, k)
			}
		}
	}
}

// TestMultiTenantMatchesSingleTenantPath: a tenant's jobs run through
// the shared pool must be bit-identical to the same subsequence run on
// a dedicated single-tenant server — scheduling may reorder across
// tenants but must never perturb anyone's modeled cycles or models.
func TestMultiTenantMatchesSingleTenantPath(t *testing.T) {
	load := smallLoad(13)
	specs := GenLoad(load)
	srv := newTestServer(t, load, 3)
	rep, err := srv.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.IdentityError(); err != nil {
		t.Fatal(err)
	}

	for _, name := range srv.TenantNames() {
		var sub []JobSpec
		var multi []JobResult
		for i, sp := range specs {
			if sp.Tenant != name {
				continue
			}
			sub = append(sub, sp)
			multi = append(multi, rep.Results[i])
		}
		if len(sub) == 0 {
			continue
		}
		solo, err := New(Config{
			Tenants:   []TenantConfig{{Name: name, Quota: Quota{MemBytes: 1 << 30, MaxInFlight: 2}}},
			Instances: 1,
			Seed:      load.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		soloRep, err := solo.Run(sub)
		if err != nil {
			t.Fatal(err)
		}
		for j := range sub {
			mr, sr := multi[j], soloRep.Results[j]
			if mr.EngineCycles != sr.EngineCycles || mr.StriderCycles != sr.StriderCycles {
				t.Fatalf("tenant %s job %d: multi (%d,%d) cycles vs solo (%d,%d)",
					name, j, mr.EngineCycles, mr.StriderCycles, sr.EngineCycles, sr.StriderCycles)
			}
			if mr.Epochs != sr.Epochs || mr.ScoredRows != sr.ScoredRows {
				t.Fatalf("tenant %s job %d: epochs/rows differ", name, j)
			}
			if len(mr.Model) != len(sr.Model) {
				t.Fatalf("tenant %s job %d: model sizes differ", name, j)
			}
			for k := range mr.Model {
				if mr.Model[k] != sr.Model[k] {
					t.Fatalf("tenant %s job %d: model bit-differs at %d", name, j, k)
				}
			}
		}
	}
}

// TestConcurrentSubmit hammers Submit from many goroutines, then drains
// once; every accepted job must be planned and executed.
func TestConcurrentSubmit(t *testing.T) {
	srv := newTestServer(t, LoadConfig{Tenants: 4}, 2)
	var wg sync.WaitGroup
	const per = 4
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				err := srv.Submit(JobSpec{
					Tenant: TenantName(g), Workload: "WLAN", Scale: 0.002, Epochs: 1,
				})
				if err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	rep, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 4*per {
		t.Fatalf("drained %d jobs, want %d", rep.Jobs, 4*per)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if err := srv.IdentityError(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainCarryOver: a second drain of the same workload must reuse
// the configuration loaded by the first.
func TestDrainCarryOver(t *testing.T) {
	srv := newTestServer(t, LoadConfig{Tenants: 1}, 1)
	job := JobSpec{Tenant: TenantName(0), Workload: "Patient", Scale: 0.002, Epochs: 1}
	r1, err := srv.Run([]JobSpec{job})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan.Reuses != 0 {
		t.Fatalf("first drain reused a configuration that was never loaded")
	}
	r2, err := srv.Run([]JobSpec{job})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plan.Reuses != 1 {
		t.Fatalf("second drain did not reuse the carried configuration: %+v", r2.Plan.Placements[0])
	}
	if err := srv.IdentityError(); err != nil {
		t.Fatal(err)
	}
}

// TestScoreAfterTrainUsesModel: scoring is accepted cold (zero model)
// and after a train; both run to completion over the real table.
func TestScoreAfterTrainUsesModel(t *testing.T) {
	srv := newTestServer(t, LoadConfig{Tenants: 1}, 1)
	tn := TenantName(0)
	rep, err := srv.Run([]JobSpec{
		{Tenant: tn, Kind: KindScore, Workload: "WLAN", Scale: 0.002},
		{Tenant: tn, Kind: KindTrain, Workload: "WLAN", Scale: 0.002, Epochs: 1},
		{Tenant: tn, Kind: KindScore, Workload: "WLAN", Scale: 0.002},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Errorf("%v", r.Err)
			}
		}
		t.FailNow()
	}
	if rep.Results[0].ScoredRows == 0 || rep.Results[2].ScoredRows == 0 {
		t.Fatalf("score jobs covered no rows: %d, %d", rep.Results[0].ScoredRows, rep.Results[2].ScoredRows)
	}
	if rep.Results[1].EngineCycles == 0 {
		t.Fatal("train charged no engine cycles")
	}
}

func TestSubmitTypedErrors(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{
		Name: "a", Quota: Quota{MemBytes: 1 << 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(JobSpec{Tenant: "ghost", Workload: "WLAN"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v", err)
	}
	if err := srv.Submit(JobSpec{Tenant: "a", Workload: "Netflix", Scale: 0.002}); !errors.Is(err, ErrUnsupportedWorkload) {
		t.Fatalf("LRMF job: got %v", err)
	}
	if err := srv.Submit(JobSpec{Tenant: "a", Workload: "WLAN", Scale: 0.002}); !errors.Is(err, ErrQuotaImpossible) {
		t.Fatalf("oversized job vs 1 KB quota: got %v", err)
	}
	if err := srv.Submit(JobSpec{Tenant: "a", Workload: "no such workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestTenantExperimentSmoke runs the CI-sized tenants experiment
// end-to-end: it must complete cleanly and show sequence-aware beating
// always-reconfigure on modeled makespan.
func TestTenantExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	res, err := TenantExperiment(io.Discard, DefaultExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupOnMakespan <= 1 {
		t.Fatalf("speedup %.3fx", res.SpeedupOnMakespan)
	}
}
