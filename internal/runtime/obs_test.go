package runtime

// Observability invariants (the programmatic consumer of internal/obs):
// every counter the subsystems charge must agree exactly with the
// modeled statistics they mirror, the engine's per-component cycle
// charges must sum exactly to the modeled total, and turning obs off
// must not move a single modeled cycle or model bit.

import (
	"math"
	"testing"

	"dana/internal/obs"
)

func trainWithObs(t *testing.T, disable bool) (*System, *TrainResult) {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = 8 << 10
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = 6
	opts.DisableObs = disable
	s := New(opts)
	d := deployScaled(t, s, "Remote Sensing LR", 0.01)
	a, err := d.DSLAlgo(8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(6)
	if _, err := s.Register(a, 8, d.Tuples); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(a.Name, d.Rel.Name)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestObsEngineCycleDecomposition: the per-component engine cycle
// charges sum exactly to the modeled total — both in the Stats struct
// and in the obs counters that mirror it.
func TestObsEngineCycleDecomposition(t *testing.T) {
	s, res := trainWithObs(t, false)
	e := res.Engine
	if got := e.SpanLoadCycles + e.SpanComputeCycles + e.MergeCycles; got != e.Cycles {
		t.Fatalf("span decomposition: load %d + compute %d + merge %d = %d, want total %d",
			e.SpanLoadCycles, e.SpanComputeCycles, e.MergeCycles, got, e.Cycles)
	}
	r := s.Obs()
	if got := r.Get(obs.EngineCycles); got != e.Cycles {
		t.Fatalf("obs %s = %d, stats total = %d", obs.EngineCycles, got, e.Cycles)
	}
	sum := r.Get(obs.EngineCyclesLoad) + r.Get(obs.EngineCyclesCompute) + r.Get(obs.EngineCyclesMerge)
	if sum != r.Get(obs.EngineCycles) {
		t.Fatalf("obs components sum to %d, total counter says %d", sum, r.Get(obs.EngineCycles))
	}
	if r.Get(obs.EngineTuples) != e.Tuples || r.Get(obs.EngineBatches) != e.Batches ||
		r.Get(obs.EngineInstrs) != e.Instructions {
		t.Fatalf("obs engine mirrors diverge: tuples %d/%d batches %d/%d instrs %d/%d",
			r.Get(obs.EngineTuples), e.Tuples, r.Get(obs.EngineBatches), e.Batches,
			r.Get(obs.EngineInstrs), e.Instructions)
	}
	// Work cannot exceed capacity: work + idle == threads * span over
	// merge batches; globally work+idle <= threads*total.
	if e.IdleCycles < 0 {
		t.Fatalf("negative idle cycles: %d", e.IdleCycles)
	}
	if u := e.Utilization(res.Design.Engine.Threads); u <= 0 || u > 1 {
		t.Fatalf("engine utilization %v outside (0,1]", u)
	}
}

// TestObsAccessAndPoolMirrors: strider and buffer-pool counters agree
// with the modeled stats structs, and pool hits+misses == page requests.
func TestObsAccessAndPoolMirrors(t *testing.T) {
	s, res := trainWithObs(t, false)
	r := s.Obs()
	a := res.Access
	if r.Get(obs.StriderPages) != a.Pages || r.Get(obs.StriderTuples) != a.Tuples ||
		r.Get(obs.StriderBytes) != a.Bytes || r.Get(obs.StriderCycles) != a.Cycles ||
		r.Get(obs.StriderCyclesTotal) != a.TotalCycles || r.Get(obs.StriderInstrs) != a.Instructions {
		t.Fatalf("obs strider mirrors diverge from access stats:\nobs  pages=%d tuples=%d bytes=%d cyc=%d tot=%d instr=%d\nstat %+v",
			r.Get(obs.StriderPages), r.Get(obs.StriderTuples), r.Get(obs.StriderBytes),
			r.Get(obs.StriderCycles), r.Get(obs.StriderCyclesTotal), r.Get(obs.StriderInstrs), a)
	}
	if a.Instructions <= 0 {
		t.Fatal("no strider VM instructions retired")
	}
	if u := a.Utilization(res.Design.NumStriders); u <= 0 || u > 1 {
		t.Fatalf("strider utilization %v outside (0,1]", u)
	}
	// Pool: every Pin is a hit or a miss, nothing else.
	p := res.Pool
	if r.Get(obs.PoolHits) != p.Hits || r.Get(obs.PoolMisses) != p.Misses {
		t.Fatalf("obs pool mirrors diverge: hits %d/%d misses %d/%d",
			r.Get(obs.PoolHits), p.Hits, r.Get(obs.PoolMisses), p.Misses)
	}
	if r.GetFloat(obs.PoolIOSeconds) != p.IOSeconds {
		t.Fatalf("obs io seconds %v != pool stats %v", r.GetFloat(obs.PoolIOSeconds), p.IOSeconds)
	}
	// Every epoch charges exactly the relation's page count through the
	// Collector (cached replays recharge too), so pages/epoch recovers
	// NumPages. Uncached epochs pin each page once; cached epochs pin
	// nothing — so pin requests == uncached epochs × pages/epoch.
	epochs := r.Get(obs.RuntimeEpochs)
	uncached := epochs - r.Get(obs.RuntimeEpochCached)
	pagesPerEpoch := a.Pages / epochs
	if p.Hits+p.Misses != uncached*pagesPerEpoch {
		t.Fatalf("pool requests %d != uncached epochs %d × pages/epoch %d",
			p.Hits+p.Misses, uncached, pagesPerEpoch)
	}
}

// TestObsRuntimeCountersAndTrace: epoch counters, record-cache hit
// rate, worker occupancy, and the trace ring.
func TestObsRuntimeCountersAndTrace(t *testing.T) {
	s, res := trainWithObs(t, false)
	r := s.Obs()
	if got := r.Get(obs.RuntimeEpochs); got != int64(res.Epochs) {
		t.Fatalf("obs epochs %d != result epochs %d", got, res.Epochs)
	}
	if r.Get(obs.RuntimeTrainRuns) != 1 {
		t.Fatalf("train runs = %d, want 1", r.Get(obs.RuntimeTrainRuns))
	}
	// Cache-enabled run: lookups == epochs; first epoch misses, the
	// rest hit.
	hits, misses := r.Get(obs.RuntimeCacheHits), r.Get(obs.RuntimeCacheMisses)
	if hits+misses != int64(res.Epochs) {
		t.Fatalf("cache hits %d + misses %d != epochs %d", hits, misses, res.Epochs)
	}
	if misses != 1 || hits != int64(res.Epochs-1) {
		t.Fatalf("cache hits/misses = %d/%d, want %d/1", hits, misses, res.Epochs-1)
	}
	if r.Get(obs.RuntimeEpochCached) != hits {
		t.Fatalf("cached epochs %d != cache hits %d", r.Get(obs.RuntimeEpochCached), hits)
	}
	if r.Get(obs.RuntimeEpochWallNs) <= 0 || r.Get(obs.RuntimeTrainWallNs) <= 0 {
		t.Fatal("wall-time counters did not advance")
	}
	h := r.Snapshot().Histograms[obs.HistEpochWallNs]
	if h.Count != int64(res.Epochs) {
		t.Fatalf("epoch wall histogram count %d != epochs %d", h.Count, res.Epochs)
	}
	// Trace ring: train.start, per-epoch events, train.done, in order.
	evs := r.Ring().Events()
	if len(evs) < 2+res.Epochs {
		t.Fatalf("trace ring has %d events, want >= %d", len(evs), 2+res.Epochs)
	}
	if evs[0].Name != obs.EvTrainStart {
		t.Fatalf("first event %q, want %q", evs[0].Name, obs.EvTrainStart)
	}
	last := evs[len(evs)-1]
	if last.Name != obs.EvTrainDone || last.A != int64(res.Epochs) || last.B != res.Engine.Cycles {
		t.Fatalf("last event %+v, want %s a=%d b=%d", last, obs.EvTrainDone, res.Epochs, res.Engine.Cycles)
	}
	nEpochEvents := 0
	for _, ev := range evs {
		if ev.Name == obs.EvEpoch || ev.Name == obs.EvEpochCached {
			nEpochEvents++
		}
	}
	if nEpochEvents != res.Epochs {
		t.Fatalf("trace has %d epoch events, want %d", nEpochEvents, res.Epochs)
	}
	// The Strider program was statically verified exactly once, at
	// accelerator build time, and admitted.
	if got := r.Get(obs.StriderVerifyRuns); got != 1 {
		t.Fatalf("verify runs = %d, want 1", got)
	}
	if got := r.Get(obs.StriderVerifyRejects); got != 0 {
		t.Fatalf("verify rejects = %d, want 0", got)
	}
}

// TestObsDisabledIsBitIdenticalAndDark: DisableObs leaves every modeled
// statistic and model bit unchanged, and records nothing.
func TestObsDisabledIsBitIdenticalAndDark(t *testing.T) {
	sOn, resOn := trainWithObs(t, false)
	sOff, resOff := trainWithObs(t, true)
	if resOn.Engine != resOff.Engine {
		t.Fatalf("engine stats diverge with obs off:\non  %+v\noff %+v", resOn.Engine, resOff.Engine)
	}
	if resOn.Access != resOff.Access {
		t.Fatalf("access stats diverge with obs off:\non  %+v\noff %+v", resOn.Access, resOff.Access)
	}
	if resOn.Pool != resOff.Pool {
		t.Fatalf("pool stats diverge with obs off:\non  %+v\noff %+v", resOn.Pool, resOff.Pool)
	}
	if resOn.SimulatedSeconds != resOff.SimulatedSeconds {
		t.Fatalf("simulated seconds diverge: %v vs %v", resOn.SimulatedSeconds, resOff.SimulatedSeconds)
	}
	if len(resOn.Model) != len(resOff.Model) {
		t.Fatalf("model lengths diverge: %d vs %d", len(resOn.Model), len(resOff.Model))
	}
	for i := range resOn.Model {
		if math.Float32bits(resOn.Model[i]) != math.Float32bits(resOff.Model[i]) {
			t.Fatalf("model[%d] diverges: %x vs %x", i,
				math.Float32bits(resOn.Model[i]), math.Float32bits(resOff.Model[i]))
		}
	}
	if sOff.Obs() != obs.Noop {
		t.Fatal("disabled system does not expose obs.Noop")
	}
	if s := sOff.Obs().Snapshot(); len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatalf("dark system recorded state: %+v", s)
	}
	if sOn.Obs().Get(obs.EngineCycles) == 0 {
		t.Fatal("enabled system recorded nothing")
	}
}
