// Package fixture exercises the faulterrors analyzer (the directory
// name ends in "faulterrors" so the boundary-package gate admits it).
package fixture

import (
	"fmt"

	"dana/internal/fault"
)

func severedChain(err error) error {
	return fmt.Errorf("read page: %v", err) // want `severs the wrap chain`
}

func severedWithS(err error) error {
	return fmt.Errorf("read page: %s", err) // want `severs the wrap chain`
}

func wrappedOK(err error) error {
	return fmt.Errorf("read page: %w", err)
}

func sentinelSevered(page int) error {
	return fmt.Errorf("walker trapped on page %d: %v", page, fault.ErrVMTrap) // want `fault sentinel ErrVMTrap formatted with %v`
}

func sentinelWrappedOK(page int) error {
	return fmt.Errorf("walker trapped on page %d: %w", page, fault.ErrVMTrap)
}

func nonErrorArgsOK(n int, name string) error {
	return fmt.Errorf("relation %s has %d pages", name, n)
}
