package server

import (
	"fmt"
	"io"
	"sort"
)

// TenantReport aggregates one tenant's slice of a batch.
type TenantReport struct {
	Name          string
	Jobs          int
	Trains        int
	Scores        int
	Errors        int
	Degraded      int
	Reuses        int
	MeanSojourn   float64 // virtual seconds, arrival -> finish
	P99Sojourn    float64
	EngineCycles  int64
	StriderCycles int64
}

// Report is one drained batch: the virtual-time plan plus the
// functional outcomes.
type Report struct {
	Policy      Policy
	Plan        *Plan
	Results     []JobResult // by input spec order
	Jobs        int
	Errors      int
	Degraded    int
	MakespanSec float64
	JobsPerSec  float64 // virtual throughput: jobs / makespan
	MeanSojourn float64
	P50Sojourn  float64
	P99Sojourn  float64
	ReuseRate   float64
	Tenants     []TenantReport // in tenant-name order
}

// percentile reads the q-quantile (0..1) from an unsorted sample by
// nearest-rank; 0 for empty.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

func buildReport(s *Server, plan *Plan, results []JobResult) *Report {
	rep := &Report{
		Policy:      s.cfg.Policy,
		Plan:        plan,
		Results:     results,
		Jobs:        len(results),
		MakespanSec: plan.Makespan,
		ReuseRate:   plan.ReuseRate(),
	}
	if plan.Makespan > 0 {
		rep.JobsPerSec = float64(len(results)) / plan.Makespan
	}
	var all []float64
	byTenant := map[string]*TenantReport{}
	sojournByTenant := map[string][]float64{}
	for i := range results {
		r := &results[i]
		pl := r.Placement
		tr := byTenant[pl.Spec.Tenant]
		if tr == nil {
			tr = &TenantReport{Name: pl.Spec.Tenant}
			byTenant[pl.Spec.Tenant] = tr
		}
		tr.Jobs++
		if pl.Spec.Kind == KindScore {
			tr.Scores++
		} else {
			tr.Trains++
		}
		if r.Err != nil {
			tr.Errors++
			rep.Errors++
		}
		if r.Degraded {
			tr.Degraded++
			rep.Degraded++
		}
		if pl.Reused {
			tr.Reuses++
		}
		tr.EngineCycles += r.EngineCycles
		tr.StriderCycles += r.StriderCycles
		sj := pl.SojournSec()
		all = append(all, sj)
		sojournByTenant[pl.Spec.Tenant] = append(sojournByTenant[pl.Spec.Tenant], sj)
	}
	rep.MeanSojourn = mean(all)
	rep.P50Sojourn = percentile(all, 0.50)
	rep.P99Sojourn = percentile(all, 0.99)
	for _, name := range s.order {
		tr := byTenant[name]
		if tr == nil {
			continue
		}
		tr.MeanSojourn = mean(sojournByTenant[name])
		tr.P99Sojourn = percentile(sojournByTenant[name], 0.99)
		rep.Tenants = append(rep.Tenants, *tr)
	}
	return rep
}

// WriteReport prints the batch summary plus the per-tenant table
// (shared by danasrv, danactl sessions, and danabench -exp tenants).
func WriteReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "policy %s: %d jobs, makespan %.3fs (virtual), %.2f jobs/s, reuse rate %.0f%% (%d reuse / %d reconfig)\n",
		rep.Policy, rep.Jobs, rep.MakespanSec, rep.JobsPerSec,
		100*rep.ReuseRate, rep.Plan.Reuses, rep.Plan.Reconfigs)
	fmt.Fprintf(w, "sojourn (virtual): mean %.3fs  p50 %.3fs  p99 %.3fs;  errors %d, degraded %d\n",
		rep.MeanSojourn, rep.P50Sojourn, rep.P99Sojourn, rep.Errors, rep.Degraded)
	fmt.Fprintf(w, "%-10s %5s %6s %6s %5s %5s %6s %10s %10s %14s %14s\n",
		"tenant", "jobs", "trains", "scores", "errs", "degr", "reuse", "mean_s", "p99_s", "engine_cyc", "strider_cyc")
	for _, tr := range rep.Tenants {
		fmt.Fprintf(w, "%-10s %5d %6d %6d %5d %5d %5.0f%% %10.3f %10.3f %14d %14d\n",
			tr.Name, tr.Jobs, tr.Trains, tr.Scores, tr.Errors, tr.Degraded,
			100*float64(tr.Reuses)/float64(max1(tr.Jobs)), tr.MeanSojourn, tr.P99Sojourn,
			tr.EngineCycles, tr.StriderCycles)
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
