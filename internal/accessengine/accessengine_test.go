package accessengine

import (
	"math"
	"math/rand"
	"testing"

	"dana/internal/storage"
	"dana/internal/strider"
)

func buildRelation(t *testing.T, schema *storage.Schema, rows int, seed int64) (*storage.Relation, [][]float64) {
	t.Helper()
	r := storage.NewRelation("t", schema, storage.PageSize8K)
	rng := rand.New(rand.NewSource(seed))
	var data [][]float64
	for i := 0; i < rows; i++ {
		vals := make([]float64, schema.NumCols())
		for j, col := range schema.Cols {
			switch col.Type {
			case storage.TInt32, storage.TInt64:
				vals[j] = float64(rng.Intn(1000))
			default:
				vals[j] = float64(float32(rng.NormFloat64()))
			}
		}
		data = append(data, vals)
	}
	if err := r.InsertBatch(data); err != nil {
		t.Fatal(err)
	}
	return r, data
}

func newEngine(t *testing.T, schema *storage.Schema, striders int) *Engine {
	t.Helper()
	e, err := New(strider.PostgresLayout(storage.PageSize8K), schema, striders)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProcessPageRoundTrip(t *testing.T) {
	schema := storage.NumericSchema(9)
	rel, data := buildRelation(t, schema, 500, 1)
	e := newEngine(t, schema, 1)
	var got [][]float32
	for pn := 0; pn < rel.NumPages(); pn++ {
		pg, err := rel.Page(pn)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := e.ProcessPage(pg)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	if len(got) != len(data) {
		t.Fatalf("extracted %d tuples, want %d", len(got), len(data))
	}
	for i := range data {
		for j := range data[i] {
			if float64(got[i][j]) != data[i][j] {
				t.Fatalf("tuple %d col %d: %v != %v", i, j, got[i][j], data[i][j])
			}
		}
	}
	st := e.Stats()
	if st.Tuples != int64(len(data)) || st.Pages != int64(rel.NumPages()) {
		t.Errorf("stats = %+v", st)
	}
}

func TestProcessPagesParallelCycles(t *testing.T) {
	schema := storage.NumericSchema(20)
	rel, data := buildRelation(t, schema, 2000, 2)
	if rel.NumPages() < 4 {
		t.Fatalf("need >= 4 pages, got %d", rel.NumPages())
	}
	var pages []storage.Page
	for pn := 0; pn < rel.NumPages(); pn++ {
		pg, _ := rel.Page(pn)
		pages = append(pages, pg)
	}

	e1 := newEngine(t, schema, 1)
	recs1, err := e1.ProcessPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	e4 := newEngine(t, schema, 4)
	recs4, err := e4.ProcessPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs1) != len(data) || len(recs4) != len(data) {
		t.Fatalf("tuple counts: %d / %d, want %d", len(recs1), len(recs4), len(data))
	}
	// 4 striders must be meaningfully faster than 1 (max-per-group model).
	if e4.Stats().Cycles*2 >= e1.Stats().Cycles {
		t.Errorf("4 striders %d cycles vs 1 strider %d cycles: insufficient overlap",
			e4.Stats().Cycles, e1.Stats().Cycles)
	}
	// Total work is identical regardless of parallelism.
	if e4.Stats().TotalCycles != e1.Stats().TotalCycles {
		t.Errorf("TotalCycles differ: %d vs %d", e4.Stats().TotalCycles, e1.Stats().TotalCycles)
	}
}

func TestDeformatMixedTypes(t *testing.T) {
	schema := storage.RatingSchema() // int4, int4, float4
	buf := make([]byte, schema.DataWidth())
	if err := schema.EncodeValues(buf, []float64{42, 7, 3.5}); err != nil {
		t.Fatal(err)
	}
	rec, err := Deformat(schema, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != 42 || rec[1] != 7 || rec[2] != 3.5 {
		t.Errorf("rec = %v", rec)
	}
}

func TestDeformatFloat64Narrowing(t *testing.T) {
	schema := storage.NewSchema(storage.Column{Name: "x", Type: storage.TFloat64})
	buf := make([]byte, schema.DataWidth())
	if err := schema.EncodeValues(buf, []float64{math.Pi}); err != nil {
		t.Fatal(err)
	}
	rec, err := Deformat(schema, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != float32(math.Pi) {
		t.Errorf("rec = %v", rec)
	}
}

func TestDeformatShortPayload(t *testing.T) {
	schema := storage.NumericSchema(4)
	if _, err := Deformat(schema, make([]byte, 3), nil); err == nil {
		t.Error("short payload accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := New(strider.PostgresLayout(storage.PageSize8K), storage.NumericSchema(2), 0); err == nil {
		t.Error("0 striders accepted")
	}
}

func TestEstimatePageCyclesTracksMeasured(t *testing.T) {
	schema := storage.NumericSchema(9)
	rel, _ := buildRelation(t, schema, 400, 3)
	e := newEngine(t, schema, 1)
	pg, _ := rel.Page(0)
	if _, err := e.ProcessPage(pg); err != nil {
		t.Fatal(err)
	}
	measured := e.Stats().TotalCycles
	est := e.EstimatePageCycles(pg.NumItems())
	ratio := float64(measured) / float64(est)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("estimate %d vs measured %d (ratio %.2f)", est, measured, ratio)
	}
}

func TestRatingSchemaEndToEnd(t *testing.T) {
	schema := storage.RatingSchema()
	rel, data := buildRelation(t, schema, 300, 4)
	e := newEngine(t, schema, 2)
	var pages []storage.Page
	for pn := 0; pn < rel.NumPages(); pn++ {
		pg, _ := rel.Page(pn)
		pages = append(pages, pg)
	}
	recs, err := e.ProcessPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for j := range data[i] {
			if float64(recs[i][j]) != data[i][j] {
				t.Fatalf("tuple %d col %d: %v != %v", i, j, recs[i][j], data[i][j])
			}
		}
	}
}

func TestInnoDBAccessEngine(t *testing.T) {
	schema := storage.NumericSchema(7)
	rel := storage.NewInnoRelation("inno", schema, storage.PageSize8K)
	rng := rand.New(rand.NewSource(12))
	var want [][]float64
	for i := 0; i < 300; i++ {
		vals := make([]float64, 8)
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		if err := rel.Insert(vals); err != nil {
			t.Fatal(err)
		}
		want = append(want, vals)
	}
	e, err := NewInnoDB(storage.PageSize8K, schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pages []storage.Page
	for i := 0; i < rel.NumPages(); i++ {
		pg, err := rel.Page(i)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, storage.Page(pg))
	}
	recs, err := e.ProcessPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("extracted %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if float64(recs[i][j]) != want[i][j] {
				t.Fatalf("rec %d col %d: %v != %v", i, j, recs[i][j], want[i][j])
			}
		}
	}
}
