// Package compiler lowers a translated hDFG to an execution-engine
// Program (paper §6.2): it allocates scratchpad slots in the canonical
// lane layout, selects engine instructions for every hDFG sub-node,
// splits the schedule at the merge boundary, and emits the convergence
// program. The static schedule it produces is what both the Machine and
// the hardware generator's performance estimator consume.
package compiler

import (
	"fmt"

	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hdfg"
)

// Compile lowers the graph to an accelerator program.
func Compile(g *hdfg.Graph) (*engine.Program, error) {
	if len(g.RowUpdates) > 0 && g.Merge != nil {
		return nil, fmt.Errorf("compiler: row updates (setModelRow) cannot be combined with a merge function")
	}
	c := &lowering{g: g, p: &engine.Program{}, slots: make(map[*hdfg.Node]engine.Slot)}
	if err := c.allocate(); err != nil {
		return nil, err
	}
	if err := c.emitAll(); err != nil {
		return nil, err
	}
	if err := c.p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: produced invalid program: %w", err)
	}
	return c.p, nil
}

type lowering struct {
	g     *hdfg.Graph
	p     *engine.Program
	slots map[*hdfg.Node]engine.Slot
	next  int
}

func (c *lowering) alloc(n int) engine.Slot {
	s := engine.Slot{Base: c.next, Len: n}
	c.next += n
	return s
}

// allocate lays out the scratchpad: model, tuple inputs, meta constants,
// then one region per operation node (plus norm temporaries, allocated
// at emission).
func (c *lowering) allocate() error {
	g := c.g
	c.p.ModelSlot = c.alloc(g.ModelSize())
	c.slots[g.Model] = c.p.ModelSlot

	c.p.InputSlot = c.alloc(g.TupleWidth())
	off := c.p.InputSlot.Base
	for _, in := range g.Inputs {
		c.slots[in] = engine.Slot{Base: off, Len: in.Shape.Size()}
		off += in.Shape.Size()
	}
	for _, out := range g.Outputs {
		c.slots[out] = engine.Slot{Base: off, Len: out.Shape.Size()}
		off += out.Shape.Size()
	}

	// Meta constants.
	var consts []float32
	constBase := c.next
	for _, n := range g.Nodes {
		if n.IsLeaf() && n.Kind == dsl.KMeta {
			c.slots[n] = c.alloc(1)
			consts = append(consts, float32(n.MetaValue))
		}
	}
	c.p.ConstSlot = engine.Slot{Base: constBase, Len: len(consts)}
	c.p.Consts = consts

	// Operation regions.
	for _, n := range g.Nodes {
		if n.IsLeaf() {
			continue
		}
		c.slots[n] = c.alloc(n.Shape.Size())
	}
	return nil
}

// stage selects which instruction list a node belongs to.
func (c *lowering) stage(n *hdfg.Node) *[]engine.Instr {
	switch {
	case n.ConvOnly:
		return &c.p.Convergence
	case n.PostMerge:
		return &c.p.PostMerge
	default:
		return &c.p.PerTuple
	}
}

func (c *lowering) emitAll() error {
	g := c.g
	for _, n := range g.Nodes {
		if n.IsLeaf() {
			continue
		}
		if err := c.emit(n); err != nil {
			return err
		}
	}
	if g.Merge != nil {
		c.p.MergeSrc = c.slots[g.Merge.Args[0]]
		c.p.MergeDst = c.slots[g.Merge]
		switch g.Merge.MergeOp {
		case dsl.OpAdd:
			c.p.MergeOp = engine.AAdd
		case dsl.OpMul:
			c.p.MergeOp = engine.AMul
		default:
			return fmt.Errorf("compiler: unsupported merge op %v", g.Merge.MergeOp)
		}
	}
	if g.Updated != nil {
		c.p.UpdatedSlot = c.slots[g.Updated]
	}
	for _, ru := range g.RowUpdates {
		cols := g.Model.Shape[1]
		c.p.RowUpdates = append(c.p.RowUpdates, engine.Instr{
			Kind:   engine.KScatter,
			A:      c.slots[ru.Val],
			B:      c.slots[ru.Idx],
			RowLen: cols,
		})
	}
	if g.Convergence != nil {
		c.p.ConvSlot = c.slots[g.Convergence]
	}
	c.p.Slots = c.next
	return nil
}

var aluByOp = map[dsl.Op]engine.AluOp{
	dsl.OpAdd: engine.AAdd, dsl.OpSub: engine.ASub, dsl.OpMul: engine.AMul,
	dsl.OpDiv: engine.ADiv, dsl.OpLt: engine.ALt, dsl.OpGt: engine.AGt,
	dsl.OpSigmoid: engine.ASigmoid, dsl.OpGaussian: engine.AGaussian,
	dsl.OpSqrt: engine.ASqrt,
}

func (c *lowering) emit(n *hdfg.Node) error {
	list := c.stage(n)
	dst := c.slots[n]
	switch {
	case n.Op == dsl.OpMerge:
		// Realized by the tree bus; no thread instruction.
		return nil
	case n.Op.IsBinary():
		return c.emitBinary(n, list, dst)
	case n.Op.IsNonLinear():
		*list = append(*list, engine.Instr{
			Kind: engine.KEW, Op: aluByOp[n.Op], Dst: dst, A: c.slots[n.Args[0]],
		})
		return nil
	case n.Op.IsGroup():
		return c.emitGroup(n, list, dst)
	case n.Op == dsl.OpGather:
		*list = append(*list, engine.Instr{
			Kind: engine.KGather, Dst: dst, A: c.slots[n.Args[1]],
			RowLen: c.g.Model.Shape[1],
		})
		return nil
	default:
		return fmt.Errorf("compiler: cannot lower %v", n)
	}
}

func (c *lowering) emitBinary(n *hdfg.Node, list *[]engine.Instr, dst engine.Slot) error {
	op, ok := aluByOp[n.Op]
	if !ok {
		return fmt.Errorf("compiler: no ALU op for %v", n.Op)
	}
	a, b := c.slots[n.Args[0]], c.slots[n.Args[1]]
	as, bs := n.Args[0].Shape, n.Args[1].Shape
	// The contraction intermediate [a0,b0,k] needs one EW instruction per
	// row of the first operand; everything else is a single EW whose
	// operand indices wrap modulo the operand length (covers equal,
	// scalar, and suffix broadcasting).
	if n.Shape.NDim() == 3 {
		ra, k := as[0], as[1]
		rbk := bs.Size()
		for i := 0; i < ra; i++ {
			*list = append(*list, engine.Instr{
				Kind: engine.KEW, Op: op,
				Dst: engine.Slot{Base: dst.Base + i*rbk, Len: rbk},
				A:   engine.Slot{Base: a.Base + i*k, Len: k},
				B:   b,
			})
		}
		return nil
	}
	*list = append(*list, engine.Instr{Kind: engine.KEW, Op: op, Dst: dst, A: a, B: b})
	return nil
}

func (c *lowering) emitGroup(n *hdfg.Node, list *[]engine.Instr, dst engine.Slot) error {
	arg := n.Args[0]
	src := c.slots[arg]
	var redOp engine.AluOp
	switch n.Op {
	case dsl.OpSigma, dsl.OpNorm:
		redOp = engine.AAdd
	case dsl.OpPi:
		redOp = engine.AMul
	default:
		return fmt.Errorf("compiler: unknown group op %v", n.Op)
	}
	if n.Op == dsl.OpNorm {
		// Lower norm as square -> reduce-add -> sqrt.
		sq := c.alloc(arg.Shape.Size())
		*list = append(*list, engine.Instr{Kind: engine.KEW, Op: engine.ASquare, Dst: sq, A: src})
		src = sq
	}
	in := engine.Instr{Kind: engine.KReduce, Op: redOp, Dst: dst, A: src}
	s := arg.Shape
	switch s.NDim() {
	case 1:
		in.GroupSize, in.GStride, in.EStride = s[0], 0, 1
	case 2:
		if n.Axis == 2 { // reduce the second axis: out[i] over columns
			in.GroupSize, in.GStride, in.EStride = s[1], s[1], 1
		} else { // reduce the first axis: out[j] over rows
			in.GroupSize, in.GStride, in.EStride = s[0], 1, s[1]
		}
	case 3:
		in.GroupSize, in.GStride, in.EStride = s[2], s[2], 1
	default:
		return fmt.Errorf("compiler: group over rank %d", s.NDim())
	}
	*list = append(*list, in)
	if n.Op == dsl.OpNorm {
		*list = append(*list, engine.Instr{Kind: engine.KEW, Op: engine.ASqrt, Dst: dst, A: dst})
	}
	return nil
}
