// Package obs is DAnA's zero-dependency observability layer: atomic
// counters, power-of-two histograms, and a bounded trace-event ring,
// threaded through every hot layer of the simulator (buffer pool,
// Striders, execution engine, runtime). It exists because the paper's
// whole performance argument rests on static-schedule cycle estimation
// (§6.1) and per-component utilization breakdowns (Figure 10/12): a
// single opaque cycle total cannot show *where* modeled time goes, and
// a CI perf gate cannot consume stdout tables.
//
// Design rules:
//
//   - Observation never feeds back into the model. Counters are
//     additive mirrors of modeled statistics; removing every obs call
//     leaves cycle counts, trained models, and simulated seconds
//     bit-identical.
//   - Disabled mode is free. obs.Noop is a nil *Registry; every method
//     on a nil Registry, Counter, FloatCounter, Histogram, or Ring is a
//     nil-check no-op, so uninstrumented standalone uses of a subsystem
//     pay one predictable branch per site.
//   - Hot paths never look names up. Instrumented components resolve
//     *Counter handles once (SetObs) and charge through the pointers;
//     charge sites sit at page/batch/epoch granularity, not per tuple.
//
// The three consumers are Snapshot (a stable JSON export written into
// BENCH_<name>.json by cmd/danabench and gated in CI), `danactl
// stats`/`danactl trace` (human-readable per-query breakdowns), and
// invariant-asserting tests (e.g. the per-component engine cycle
// charges must sum exactly to the modeled total).
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Noop is the disabled registry: every operation through it (and
// through the nil instrument handles it returns) is a no-op.
var Noop *Registry

// Counter is a monotonically-growing int64 counter. The zero value is
// usable; a nil *Counter ignores all writes.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// FloatCounter accumulates a float64 sum (e.g. simulated I/O seconds).
// A nil *FloatCounter ignores all writes.
type FloatCounter struct {
	name string
	bits atomic.Uint64
}

// Add accumulates v via a CAS loop on the float's bit pattern.
func (f *FloatCounter) Add(v float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current sum (0 for nil).
func (f *FloatCounter) Load() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// histBuckets is the bucket count of a Histogram: bucket i holds values
// v with bits.Len64(v) == i, i.e. power-of-two ranges, which is enough
// resolution for cycle counts and nanosecond durations while keeping
// Observe branch-free.
const histBuckets = 65

// Histogram records an int64 distribution in power-of-two buckets.
// A nil *Histogram ignores all writes.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to bucket 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old {
			break
		}
		if h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// HistSnapshot is one histogram's exported state.
type HistSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "2^k" -> count
}

// Mean returns sum/count, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]int64)
			}
			s.Buckets[bucketLabel(i)] = n
		}
	}
	return s
}

// Registry owns a namespace of instruments. A nil *Registry (obs.Noop)
// returns nil instruments from every constructor; instruments are
// created on first use and live for the registry's lifetime, so hot
// paths hold pointers instead of doing name lookups.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	hists    map[string]*Histogram
	ring     *Ring
}

// New creates an enabled registry with the default trace-ring capacity.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		hists:    make(map[string]*Histogram),
		ring:     NewRing(DefaultRingCap),
	}
}

// Counter returns (creating if needed) the named counter, or nil for a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Float returns (creating if needed) the named float counter.
func (r *Registry) Float(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.floats[name]
	if !ok {
		f = &FloatCounter{name: name}
		r.floats[name] = f
	}
	return f
}

// Hist returns (creating if needed) the named histogram.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		h.min.Store(math.MaxInt64)
		r.hists[name] = h
	}
	return h
}

// Ring returns the registry's trace ring (nil for a nil registry).
func (r *Registry) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// Trace appends one event to the trace ring.
func (r *Registry) Trace(name string, a, b int64) {
	if r == nil {
		return
	}
	r.ring.Emit(name, a, b)
}

// Get returns the named counter's current value without creating it
// (0 when absent or nil registry) — the programmatic read side tests
// and CLIs use.
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Load()
}

// GetFloat is Get for float counters.
func (r *Registry) GetFloat(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f := r.floats[name]
	r.mu.Unlock()
	return f.Load()
}

// Reset zeroes every instrument and clears the trace ring. Instrument
// handles held by instrumented components stay valid.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, f := range r.floats {
		f.bits.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	r.ring.Clear()
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
