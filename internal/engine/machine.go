package engine

import (
	"fmt"
	"math"
)

// Stats aggregates execution counters of a Machine.
type Stats struct {
	Cycles        int64 // total accelerator cycles
	ComputeCycles int64 // per-tuple + post-merge instruction cycles
	MergeCycles   int64 // tree-bus merge and model broadcast cycles
	LoadCycles    int64 // input FIFO -> scratchpad distribution cycles
	Tuples        int64
	Batches       int64
	Instructions  int64
}

// Seconds converts the cycle count to simulated seconds at the clock.
func (s Stats) Seconds(clockHz float64) float64 { return float64(s.Cycles) / clockHz }

// Machine executes a compiled Program on a configured instance of the
// template architecture, producing real results and cycle counts.
type Machine struct {
	Prog *Program
	Cfg  Config

	scratch [][]float32 // per-thread scratchpads
	stats   Stats
}

// NewMachine instantiates the accelerator.
func NewMachine(p *Program, cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Prog: p, Cfg: cfg, scratch: make([][]float32, cfg.Threads)}
	for t := range m.scratch {
		m.scratch[t] = make([]float32, p.Slots)
		copy(m.scratch[t][p.ConstSlot.Base:p.ConstSlot.Base+p.ConstSlot.Len], p.Consts)
	}
	return m, nil
}

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters.
func (m *Machine) ResetStats() { m.stats = Stats{} }

// Model returns a copy of the current model parameters.
func (m *Machine) Model() []float32 {
	s := m.Prog.ModelSlot
	out := make([]float32, s.Len)
	copy(out, m.scratch[0][s.Base:s.Base+s.Len])
	return out
}

// SetModel loads model parameters into every thread.
func (m *Machine) SetModel(vals []float32) error {
	s := m.Prog.ModelSlot
	if len(vals) != s.Len {
		return fmt.Errorf("engine: model has %d parameters, got %d", s.Len, len(vals))
	}
	for t := range m.scratch {
		copy(m.scratch[t][s.Base:s.Base+s.Len], vals)
	}
	return nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

func alu(op AluOp, a, b float32) float32 {
	switch op {
	case AMov:
		return a
	case AAdd:
		return a + b
	case ASub:
		return a - b
	case AMul:
		return a * b
	case ADiv:
		return a / b
	case ALt:
		if a < b {
			return 1
		}
		return 0
	case AGt:
		if a > b {
			return 1
		}
		return 0
	case ASigmoid:
		return float32(1 / (1 + math.Exp(-float64(a))))
	case AGaussian:
		return float32(math.Exp(-float64(a) * float64(a)))
	case ASqrt:
		return float32(math.Sqrt(float64(a)))
	case ASquare:
		return a * a
	default:
		return a
	}
}

// exec runs one macro instruction on thread t, returning its cycles.
func (m *Machine) exec(t int, in Instr) (int, error) {
	th := m.scratch[t]
	m.stats.Instructions++
	switch in.Kind {
	case KEW:
		if in.A.Len <= 0 || (!in.Op.IsUnary() && in.B.Len <= 0) {
			return 0, fmt.Errorf("engine: EW with empty source: %v", in)
		}
		for i := 0; i < in.Dst.Len; i++ {
			a := th[in.A.Base+i%in.A.Len]
			var b float32
			if !in.Op.IsUnary() {
				b = th[in.B.Base+i%in.B.Len]
			}
			th[in.Dst.Base+i] = alu(in.Op, a, b)
		}
		return instrCycles(in, m.Cfg), nil
	case KReduce:
		for g := 0; g < in.Dst.Len; g++ {
			var acc float32
			for e := 0; e < in.GroupSize; e++ {
				v := th[in.A.Base+g*in.GStride+e*in.EStride]
				if e == 0 {
					acc = v
				} else {
					acc = alu(in.Op, acc, v)
				}
			}
			th[in.Dst.Base+g] = acc
		}
		return instrCycles(in, m.Cfg), nil
	case KGather:
		idx := int(math.Round(float64(th[in.A.Base])))
		rows := m.Prog.ModelSlot.Len / in.RowLen
		if idx < 0 || idx >= rows {
			return 0, fmt.Errorf("engine: gather row %d outside model of %d rows", idx, rows)
		}
		src := m.Prog.ModelSlot.Base + idx*in.RowLen
		copy(th[in.Dst.Base:in.Dst.Base+in.RowLen], th[src:src+in.RowLen])
		return instrCycles(in, m.Cfg), nil
	case KScatter:
		idx := int(math.Round(float64(th[in.B.Base])))
		rows := m.Prog.ModelSlot.Len / in.RowLen
		if idx < 0 || idx >= rows {
			return 0, fmt.Errorf("engine: scatter row %d outside model of %d rows", idx, rows)
		}
		dst := m.Prog.ModelSlot.Base + idx*in.RowLen
		copy(th[dst:dst+in.RowLen], th[in.A.Base:in.A.Base+in.RowLen])
		return instrCycles(in, m.Cfg), nil
	default:
		return 0, fmt.Errorf("engine: invalid instruction kind %d", in.Kind)
	}
}

// runList executes an instruction list on thread t, returning cycles.
func (m *Machine) runList(t int, list []Instr) (int64, error) {
	var cyc int64
	for _, in := range list {
		c, err := m.exec(t, in)
		if err != nil {
			return cyc, err
		}
		cyc += int64(c)
	}
	return cyc, nil
}

// loadTuple writes tuple values into thread t's input region.
func (m *Machine) loadTuple(t int, tuple []float32) (int, error) {
	s := m.Prog.InputSlot
	if len(tuple) != s.Len {
		return 0, fmt.Errorf("engine: tuple width %d, input region %d", len(tuple), s.Len)
	}
	copy(m.scratch[t][s.Base:s.Base+s.Len], tuple)
	// The access engine distributes 8 values per cycle per thread FIFO.
	return ceilDiv(s.Len, 8), nil
}

// RunBatch executes one merge batch. Without a merge function the batch
// runs tuple-at-a-time SGD on thread 0; with one, tuples are dealt
// round-robin over the threads, per-thread merge values accumulate
// locally, and the tree bus combines them before the post-merge update.
func (m *Machine) RunBatch(tuples [][]float32) error {
	p := m.Prog
	if len(tuples) == 0 {
		return nil
	}
	m.stats.Batches++
	m.stats.Tuples += int64(len(tuples))

	if !p.HasMerge() {
		var cyc int64
		for _, tup := range tuples {
			lc, err := m.loadTuple(0, tup)
			if err != nil {
				return err
			}
			m.stats.LoadCycles += int64(lc)
			cc, err := m.runList(0, p.PerTuple)
			if err != nil {
				return err
			}
			rc, err := m.runList(0, p.RowUpdates)
			if err != nil {
				return err
			}
			m.stats.ComputeCycles += cc + rc
			cyc += int64(lc) + cc + rc
			if p.UpdatedSlot.Len > 0 {
				copy(m.scratch[0][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len],
					m.scratch[0][p.UpdatedSlot.Base:p.UpdatedSlot.Base+p.UpdatedSlot.Len])
				wb := int64(ceilDiv(p.ModelSlot.Len, m.Cfg.Lanes()))
				m.stats.ComputeCycles += wb
				cyc += wb
			}
		}
		m.stats.Cycles += cyc
		return nil
	}

	k := m.Cfg.Threads
	if k > len(tuples) {
		k = len(tuples)
	}
	accs := make([][]float32, k)
	threadCycles := make([]int64, k)
	for i, tup := range tuples {
		t := i % k
		lc, err := m.loadTuple(t, tup)
		if err != nil {
			return err
		}
		cc, err := m.runList(t, p.PerTuple)
		if err != nil {
			return err
		}
		threadCycles[t] += int64(lc) + cc
		m.stats.LoadCycles += int64(lc)
		m.stats.ComputeCycles += cc
		src := m.scratch[t][p.MergeSrc.Base : p.MergeSrc.Base+p.MergeSrc.Len]
		if accs[t] == nil {
			accs[t] = append([]float32(nil), src...)
		} else {
			for j := range accs[t] {
				accs[t][j] = alu(p.MergeOp, accs[t][j], src[j])
			}
			lac := int64(ceilDiv(p.MergeSrc.Len, m.Cfg.Lanes()))
			threadCycles[t] += lac
			m.stats.ComputeCycles += lac
		}
	}
	// Threads run in parallel: the batch takes as long as the slowest.
	var maxT int64
	for _, c := range threadCycles {
		if c > maxT {
			maxT = c
		}
	}
	m.stats.Cycles += maxT

	// Tree-bus merge: log2(k) stages over an 8-ALU bus.
	merged := accs[0]
	for t := 1; t < k; t++ {
		for j := range merged {
			merged[j] = alu(p.MergeOp, merged[j], accs[t][j])
		}
	}
	mc := int64(ceilDiv(p.MergeSrc.Len, 8) * max(1, log2Ceil(k)))
	if k == 1 {
		mc = 0
	}
	m.stats.MergeCycles += mc
	m.stats.Cycles += mc
	copy(m.scratch[0][p.MergeDst.Base:p.MergeDst.Base+p.MergeDst.Len], merged)

	// Post-merge stage on thread 0.
	pc, err := m.runList(0, p.PostMerge)
	if err != nil {
		return err
	}
	rc, err := m.runList(0, p.RowUpdates)
	if err != nil {
		return err
	}
	m.stats.ComputeCycles += pc + rc
	m.stats.Cycles += pc + rc

	// Model update + broadcast to every thread over the bus.
	if p.UpdatedSlot.Len > 0 {
		newModel := m.scratch[0][p.UpdatedSlot.Base : p.UpdatedSlot.Base+p.UpdatedSlot.Len]
		tmp := append([]float32(nil), newModel...)
		for t := 0; t < m.Cfg.Threads; t++ {
			copy(m.scratch[t][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len], tmp)
		}
		bc := int64(ceilDiv(p.ModelSlot.Len, 8))
		m.stats.MergeCycles += bc
		m.stats.Cycles += bc
	} else if len(p.RowUpdates) > 0 && m.Cfg.Threads > 1 {
		// Row updates landed on thread 0's model copy; sync the rest.
		src := m.scratch[0][p.ModelSlot.Base : p.ModelSlot.Base+p.ModelSlot.Len]
		for t := 1; t < m.Cfg.Threads; t++ {
			copy(m.scratch[t][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len], src)
		}
		bc := int64(ceilDiv(p.ModelSlot.Len, 8))
		m.stats.MergeCycles += bc
		m.stats.Cycles += bc
	}
	return nil
}

// RunEpoch processes the tuples in merge-coefficient batches.
func (m *Machine) RunEpoch(tuples [][]float32, batchSize int) error {
	if batchSize < 1 {
		batchSize = 1
	}
	for i := 0; i < len(tuples); i += batchSize {
		end := i + batchSize
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := m.RunBatch(tuples[i:end]); err != nil {
			return err
		}
	}
	return nil
}

// Converged evaluates the convergence program (thread 0).
func (m *Machine) Converged() (bool, error) {
	p := m.Prog
	if p.ConvSlot.Len == 0 {
		return false, nil
	}
	cyc, err := m.runList(0, p.Convergence)
	if err != nil {
		return false, err
	}
	m.stats.ComputeCycles += cyc
	m.stats.Cycles += cyc
	return m.scratch[0][p.ConvSlot.Base] > 0.5, nil
}

// Train runs up to maxEpochs epochs (0 = the program's own budget is
// managed by the caller), checking convergence after each.
func (m *Machine) Train(tuples [][]float32, batchSize, maxEpochs int) (int, error) {
	if maxEpochs < 1 {
		maxEpochs = 1
	}
	for e := 1; e <= maxEpochs; e++ {
		if err := m.RunEpoch(tuples, batchSize); err != nil {
			return e - 1, err
		}
		done, err := m.Converged()
		if err != nil {
			return e, err
		}
		if done {
			return e, nil
		}
	}
	return maxEpochs, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
