// Package fixture exercises the hotalloc analyzer: functions marked
// //dana:hotpath must not heap-allocate, while unmarked functions and
// the capacity-backed reuse idioms stay silent.
package fixture

import "fmt"

type result struct {
	rows [][]float32
	data []float32
	name string
}

type runner struct {
	buf    []float32
	shared result
}

// coldSetup is unmarked: allocation is fine here.
func coldSetup(n int) *runner {
	return &runner{buf: make([]float32, 0, n)}
}

//dana:hotpath
func (r *runner) extract(n int) *result {
	tmp := make([]float32, n) // want `make in hot path extract`
	res := new(result)        // want `new in hot path extract`
	other := &result{}        // want `&composite literal in hot path extract`
	_ = []int{n}              // want `slice literal in hot path extract`
	_ = map[int]bool{n: true} // want `map literal in hot path extract`
	_ = other
	res.data = tmp
	return res
}

//dana:hotpath
func (r *runner) churn(rows [][]float32, id int) error {
	for _, row := range rows {
		r.buf = append(r.shared.data, row...) // want `append to a different slice in hot path churn`
	}
	r.shared.name = "page" + fmt.Sprint(id) // want `string concatenation in hot path churn`
	payload := []byte(r.shared.name)        // want `string conversion in hot path churn`
	go func() {                             // want `go statement in hot path churn` // want `func literal in hot path churn`
		_ = payload
	}()
	return nil
}

// clean shows every exemption at once: self-appends (plain and
// resliced), value struct literals, deferred closures, plain function
// calls on the error path, and an audited suppression.
//
//dana:hotpath
func (r *runner) clean(rows [][]float32) (err error) {
	defer func() {
		if err != nil {
			err = fmt.Errorf("clean: %w", err)
		}
	}()
	r.buf = append(r.buf[:0], 1.0)
	for _, row := range rows {
		r.buf = append(r.buf, row...)
	}
	r.shared = result{data: r.buf}
	if cap(r.buf) < len(rows) {
		//danalint:ignore hotalloc -- capacity-guarded growth, reused afterwards
		r.buf = make([]float32, 0, len(rows))
	}
	return nil
}
