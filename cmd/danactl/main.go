// Command danactl drives a DAnA-enhanced database end to end: it loads
// a Table 3 workload (scaled), registers the matching UDF, and runs the
// accelerated training query, printing the hardware design and
// pipeline statistics.
//
//	danactl -workload "Remote Sensing LR" -scale 0.01 -merge 64 -epochs 3
//	danactl -sql "SELECT COUNT(*) FROM remote_sensing_lr" -workload "Remote Sensing LR" -scale 0.01
//	danactl -udf my_udf.dsl -workload Patient -scale 0.01   # custom DSL file
package main

import (
	"flag"
	"fmt"
	"os"

	"dana"
	"dana/internal/engine"
)

func main() {
	var (
		workload = flag.String("workload", "Remote Sensing LR", "Table 3 workload name")
		scale    = flag.Float64("scale", 0.01, "fraction of the full tuple count to generate")
		merge    = flag.Int("merge", 64, "merge coefficient (max accelerator threads)")
		epochs   = flag.Int("epochs", 3, "training epochs")
		pageKB   = flag.Int("page", 32, "page size in KB (8, 16, 32)")
		seed     = flag.Int64("seed", 1, "dataset generator seed")
		udfFile  = flag.String("udf", "", "optional DSL source file overriding the built-in UDF")
		sqlStmt  = flag.String("sql", "", "optional SQL to run instead of training")
		listing  = flag.Bool("listing", false, "print the compiled accelerator program listing")
	)
	flag.Parse()

	eng, err := dana.Open(dana.Config{PageSize: *pageKB << 10, PoolBytes: 256 << 20})
	check(err)

	ds, err := eng.LoadWorkload(*workload, *scale, *seed)
	check(err)
	fmt.Printf("loaded %q as table %q: %d tuples, %d pages of %d KB\n",
		ds.Workload.Name, ds.Rel.Name, ds.Tuples, ds.Rel.NumPages(), *pageKB)

	if *sqlStmt != "" {
		res, err := eng.SQL(*sqlStmt)
		check(err)
		printResult(res)
		return
	}

	var algo *dana.Algo
	if *udfFile != "" {
		src, err := os.ReadFile(*udfFile)
		check(err)
		algo, err = dana.ParseUDF(string(src))
		check(err)
		check(eng.RegisterUDF(algo, *merge))
	} else {
		a, err := ds.DSLAlgo(*merge)
		check(err)
		a.SetEpochs(*epochs)
		algo = a
		check(eng.RegisterUDF(algo, *merge))
	}

	res, err := eng.Train(algo.Name, ds.Rel.Name)
	check(err)
	fmt.Printf("\naccelerator design: %s\n", res.Design)
	fmt.Printf("trained %q for %d epochs over %d tuples\n", algo.Name, res.Epochs, res.Engine.Tuples)
	fmt.Printf("engine:  %d cycles (%d compute, %d merge, %d load), %d instructions\n",
		res.Engine.Cycles, res.Engine.ComputeCycles, res.Engine.MergeCycles,
		res.Engine.LoadCycles, res.Engine.Instructions)
	fmt.Printf("strider: %d pages, %d tuples, %d cycles across %d striders\n",
		res.Access.Pages, res.Access.Tuples, res.Access.Cycles, res.Design.NumStriders)
	fmt.Printf("buffer pool: %d hits, %d misses, %.3fs simulated I/O\n",
		res.Pool.Hits, res.Pool.Misses, res.Pool.IOSeconds)
	fmt.Printf("simulated end-to-end: %.4fs\n", res.SimulatedSeconds)
	if n := len(res.Model); n > 0 {
		show := n
		if show > 8 {
			show = 8
		}
		fmt.Printf("model[0:%d] = %v\n", show, res.Model[:show])
	}
	if *listing {
		fmt.Printf("\nUDF source (re-rendered from the catalog form):\n%s", dana.RenderUDF(algo))
		acc, ok := eng.Catalog().Accelerator(algo.Name)
		if ok {
			fmt.Printf("\nstrider program:\n")
			for _, in := range acc.StriderProg {
				fmt.Printf("  %s\n", in)
			}
			fmt.Printf("\nexecution engine program:\n%s", engine.Listing(acc.Program))
			if mp, err := engine.Lower(acc.Program, acc.Design.Engine); err == nil {
				pt, pm, cv := mp.Count()
				fmt.Printf("\nmicro-instruction footprint: %d per-tuple, %d post-merge, %d convergence\n", pt, pm, cv)
				show := mp.PerTuple
				if len(show) > 12 {
					show = show[:12]
				}
				for _, mi := range show {
					fmt.Printf("  %s\n", mi)
				}
				if len(mp.PerTuple) > 12 {
					fmt.Printf("  ... (%d more)\n", len(mp.PerTuple)-12)
				}
			}
		}
	}
}

func printResult(res *dana.Result) {
	if res.Msg != "" {
		fmt.Println(res.Msg)
	}
	if len(res.Cols) > 0 {
		fmt.Println(res.Cols)
	}
	max := len(res.Rows)
	if max > 20 {
		max = 20
	}
	for _, row := range res.Rows[:max] {
		fmt.Println(row)
	}
	if len(res.Rows) > max {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "danactl:", err)
		os.Exit(1)
	}
}
