package accessengine

import "sync/atomic"

// Arena is a flat float32 slab that backs one extraction channel's
// record batches for one epoch: extents are reserved with a lock-free
// offset bump and sliced into per-tuple row views, so steady-state
// extraction performs no per-tuple (or per-page) heap allocation. The
// slab is allocated once per channel per training run, Reset at each
// extraction-epoch start, and retained across epochs; record batches
// sliced from it stay valid until the next Reset, which only happens
// after every consumer (engine stream, record cache) has either copied
// or finished with them.
//
// A reservation that does not fit falls back to an ordinary heap
// allocation — correctness never depends on the sizing estimate — and
// is counted so the benchmarks and the allocation guard can prove the
// fallback stays cold.
type Arena struct {
	data     []float32
	off      atomic.Int64
	overflow atomic.Int64
}

// NewArena allocates a slab of the given float32 capacity.
func NewArena(capacity int) *Arena {
	if capacity < 0 {
		capacity = 0
	}
	return &Arena{data: make([]float32, capacity)}
}

// Reset reclaims the whole slab. The caller must ensure no live batch
// still references it (epoch barrier).
func (a *Arena) Reset() { a.off.Store(0) }

// Cap returns the slab capacity in float32 values.
func (a *Arena) Cap() int { return len(a.data) }

// Overflows returns how many reservations missed the slab and fell
// back to the heap.
func (a *Arena) Overflows() int64 { return a.overflow.Load() }

// Alloc reserves an extent of n float32 values, returned with length 0
// and capacity exactly n (so appends cannot cross into a neighboring
// extent). Safe for concurrent use by the per-channel workers.
//
//dana:hotpath
func (a *Arena) Alloc(n int) []float32 {
	if n <= 0 {
		return nil
	}
	end := a.off.Add(int64(n))
	if end > int64(len(a.data)) {
		a.off.Add(int64(-n)) // hand the unusable reservation back
		a.overflow.Add(1)
		//danalint:ignore hotalloc -- counted heap fallback for undersized slabs
		return make([]float32, 0, n)
	}
	start := int(end) - n
	return a.data[start : start : start+n]
}
