// Package cost is the unified timing model that converts workload
// parameters, measured accelerator cycle counts, and system constants
// into simulated end-to-end seconds for every system the paper
// evaluates: MADlib+PostgreSQL, MADlib+Greenplum, DAnA (with and
// without Striders), TABLA, and the external libraries (Liblinear,
// DimmWitted).
//
// Absolute times are modeled, not host wall-clock (DESIGN.md); the
// constants below are calibrated so the baseline geomeans land near the
// paper's Table 5, and every figure's *shape* — who wins, by what
// factor, where crossovers fall — derives from the same model the
// simulators feed.
package cost

import "math"

// Params are the environment constants shared by all systems.
type Params struct {
	// CPU (paper: 4-core Intel i7-6700 @ 3.40 GHz).
	CPUClockHz       float64
	CPUFlopsPerCycle float64 // effective MADlib inner-loop throughput
	Cores            int

	// MADlib/PostgreSQL per-tuple costs: UDF-call overhead plus
	// per-column tuple deforming, and a small per-page processing cost
	// (buffer lookup, header checks) that the page-size sweep exercises.
	TupleBaseSec    float64
	ColumnDeformSec float64
	PageProcessSec  float64

	// CPU-side tuple extraction for the no-Strider path (raw deform
	// without the UDF aggregate machinery).
	ExtractFraction float64 // fraction of the MADlib per-tuple overhead

	// Storage.
	DiskBytesPerSec float64
	PoolBytes       int64

	// FPGA link and clock. The link is Channels independent channels
	// (see ChannelModel); BandwidthScale is the Figure 14 multiplier
	// applied to the *per-channel* bandwidth, so the aggregate link rate
	// is Channels × per-channel × scale. The zero-value Link is the
	// legacy single PCIe/AXI channel.
	PCIeBytesPerSec  float64
	BandwidthScale   float64 // Figure 14 multiplier (per channel)
	Link             ChannelModel
	FPGAClockHz      float64
	SetupSec         float64 // bitstream/config/queue setup per query
	EpochDispatchSec float64 // per-epoch scan re-issue/handshake on the DAnA paths

	// Multi-tenant server reconfiguration pricing (reconfig.go):
	// switching an accelerator instance to a different hDFG/Strider
	// configuration costs ReconfigureSec (partial-reconfiguration region
	// load plus Strider program install); reusing the loaded
	// configuration costs only the ConfigReuseSec handshake (model
	// reset, queue re-arm). Both are charged per placement by
	// internal/server instead of the per-query SetupSec.
	ReconfigureSec float64
	ConfigReuseSec float64

	// Greenplum.
	SegmentSyncSec float64 // per-epoch, per-segment coordination cost

	// External libraries.
	ExportBytesPerSec    float64 // COPY TO / result-set serialization
	TransformBytesPerSec float64 // reformat to the library's layout
}

// Default returns the calibrated environment (see EXPERIMENTS.md).
func Default() Params {
	return Params{
		CPUClockHz:           3.4e9,
		CPUFlopsPerCycle:     4,
		Cores:                4,
		TupleBaseSec:         1e-6,
		ColumnDeformSec:      25e-9,
		PageProcessSec:       5e-6,
		ExtractFraction:      0.35,
		DiskBytesPerSec:      500e6,
		PoolBytes:            8 << 30,
		PCIeBytesPerSec:      4e9, // AXI/DMA effective, not raw PCIe
		BandwidthScale:       1,
		FPGAClockHz:          150e6,
		SetupSec:             0.1,
		EpochDispatchSec:     20e-3,
		ReconfigureSec:       80e-3,
		ConfigReuseSec:       2e-3,
		SegmentSyncSec:       2e-3,
		ExportBytesPerSec:    120e6,
		TransformBytesPerSec: 2e9,
	}
}

// Workload carries everything the model needs about one training job.
type Workload struct {
	Tuples        int
	Columns       int // values per tuple (features + label, or 3 for LRMF)
	Epochs        int
	DatasetBytes  int64
	Pages         int
	FlopsPerTuple int
	ModelParams   int

	// DAnAEpochs overrides Epochs on the accelerated paths when > 0:
	// convergence-based termination fires earlier under the merged
	// (1024-tuple) gradient-norm check, which is far less noisy than
	// per-tuple IGD (observed in the paper's S/E rows).
	DAnAEpochs int

	// Weave fields describe the MLWeaving vertical layout. When
	// WeaveBits > 0 the link streams bit planes instead of heap pages:
	// each epoch moves WeaveFixedBytes (headers, ranges, labels — paid at
	// every precision) plus WeaveBits × WeaveBitBytes (one bit level of
	// every feature across the relation), so transfer shrinks almost
	// linearly with precision. DatasetBytes still describes the heap
	// relation — disk I/O into the buffer pool is unchanged; only the
	// accelerator link reads the rewoven form. WeaveBits == 0 is the
	// full-width float path, charged from DatasetBytes, bit-identical to
	// the pre-weave model.
	WeaveBits       int
	WeaveFixedBytes int64
	WeaveBitBytes   int64

	// Accelerator-side static schedule results (from engine.Estimate
	// and the access engine).
	EpochCycles             int64 // multi-threaded engine cycles per epoch
	SingleThreadEpochCycles int64 // TABLA-style single-thread cycles per epoch
	StriderPageCycles       int64 // strider cycles to unpack one page
	Striders                int
}

// Breakdown splits a system's modeled runtime.
type Breakdown struct {
	IOSec        float64 // disk reads into the buffer pool
	ComputeSec   float64 // ML computation (CPU or FPGA)
	TransferSec  float64 // PCIe/AXI data movement (DAnA)
	FeedSec      float64 // CPU-side tuple extraction feed (no-Strider/TABLA)
	ExportSec    float64 // data export out of the RDBMS (external libraries)
	TransformSec float64 // reformatting for the external library
	OverheadSec  float64 // setup, coordination
	TotalSec     float64
}

func (b *Breakdown) total() Breakdown {
	b.TotalSec = b.IOSec + b.ComputeSec + b.TransferSec + b.FeedSec + b.ExportSec + b.TransformSec + b.OverheadSec
	return *b
}

// ioSec models buffer-pool disk traffic for the whole run. Warm: the
// resident fraction (pool/dataset) never touches disk; the remainder is
// re-read every epoch (sequential scans evict their own tail). Cold:
// one full initial read plus the warm behaviour for later epochs.
func ioSec(w Workload, p Params, warm bool) float64 {
	ds := float64(w.DatasetBytes)
	resident := math.Min(1, float64(p.PoolBytes)/ds)
	missPerEpoch := ds * (1 - resident) / p.DiskBytesPerSec
	io := float64(w.Epochs) * missPerEpoch
	if !warm {
		io += ds/p.DiskBytesPerSec - missPerEpoch // first epoch reads everything
		if io < ds/p.DiskBytesPerSec {
			io = ds / p.DiskBytesPerSec
		}
	}
	return io
}

// madlibTupleSec is the per-tuple cost of the MADlib UDF aggregate:
// call/state overhead, tuple deforming, and the update-rule flops.
func madlibTupleSec(w Workload, p Params) float64 {
	overhead := p.TupleBaseSec + float64(w.Columns)*p.ColumnDeformSec
	flops := float64(w.FlopsPerTuple) / (p.CPUClockHz * p.CPUFlopsPerCycle)
	return overhead + flops
}

// MADlibPostgres models single-threaded MADlib on PostgreSQL.
func MADlibPostgres(w Workload, p Params, warm bool) Breakdown {
	b := Breakdown{
		IOSec: ioSec(w, p, warm),
		ComputeSec: float64(w.Epochs) * (float64(w.Tuples)*madlibTupleSec(w, p) +
			float64(w.Pages)*p.PageProcessSec),
	}
	return b.total()
}

// greenplumParallelism is the effective speedup of S segments on the
// 4-core host: limited by cores (with SMT headroom) and degraded by
// inter-segment contention, peaking near 8 segments as in Figure 13.
func greenplumParallelism(p Params, segments int) float64 {
	if segments <= 1 {
		return 1
	}
	s := float64(segments)
	// Saturating speedup with contention decline, fitted to Figure 13
	// (peak at 8 segments, ~2.1x over single-threaded PostgreSQL).
	eff := 3.56*s/(s+2) - 0.094*s
	if eff < 1 {
		eff = 1
	}
	return eff
}

// MADlibGreenplum models MADlib on an S-segment Greenplum.
func MADlibGreenplum(w Workload, p Params, segments int, warm bool) Breakdown {
	par := greenplumParallelism(p, segments)
	b := Breakdown{
		IOSec:      ioSec(w, p, warm), // the disk is shared
		ComputeSec: float64(w.Epochs) * float64(w.Tuples) * madlibTupleSec(w, p) / par,
		OverheadSec: float64(w.Epochs) * (p.SegmentSyncSec*float64(segments) +
			float64(w.ModelParams*8*segments)/20e9), // model exchange over memory
	}
	return b.total()
}

// DAnA models the full system: Striders stream pages over the link
// channels while the execution engine computes; per epoch the pipeline
// is limited by the slowest of {engine compute, link transfer, strider
// unpacking} (the interleaving of §5.1.1). Transfer is the
// max-over-channels charge of danaTransferSec. Disk I/O is not
// overlapped (§7.1).
func DAnA(w Workload, p Params, warm bool) Breakdown {
	w = withDanaEpochs(w)
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	transfer := danaTransferSec(w, p)
	striders := w.Striders
	if striders < 1 {
		striders = 1
	}
	strider := float64(w.Epochs) * float64(w.Pages) * float64(w.StriderPageCycles) /
		(float64(striders) * p.FPGAClockHz)
	pipeline := math.Max(compute, math.Max(transfer, strider))
	b := Breakdown{
		IOSec:       ioSec(w, p, warm),
		ComputeSec:  compute,
		TransferSec: transfer,
		OverheadSec: p.SetupSec + float64(w.Epochs)*p.EpochDispatchSec,
	}
	// Only the pipeline bottleneck contributes to the total.
	b.TotalSec = b.IOSec + pipeline + b.OverheadSec
	return b
}

// DAnAPipelineSec returns only the on-FPGA pipeline time (engine,
// transfer, strider overlap) without disk I/O or setup — the "FPGA
// time" Figure 14 sweeps against link bandwidth.
func DAnAPipelineSec(w Workload, p Params) float64 {
	w = withDanaEpochs(w)
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	transfer := danaTransferSec(w, p)
	striders := w.Striders
	if striders < 1 {
		striders = 1
	}
	strider := float64(w.Epochs) * float64(w.Pages) * float64(w.StriderPageCycles) /
		(float64(striders) * p.FPGAClockHz)
	return math.Max(compute, math.Max(transfer, strider))
}

// DAnANoStrider models the ablation of Figure 11: the CPU extracts and
// transforms every tuple and ships it to the engine, with no
// page-level overlap — extraction serializes with compute.
func DAnANoStrider(w Workload, p Params, warm bool) Breakdown {
	w = withDanaEpochs(w)
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	feedPerTuple := p.ExtractFraction * (p.TupleBaseSec + float64(w.Columns)*p.ColumnDeformSec)
	feed := float64(w.Epochs) * float64(w.Tuples) * feedPerTuple
	transfer := danaTransferSec(w, p)
	b := Breakdown{
		IOSec:       ioSec(w, p, warm),
		ComputeSec:  compute,
		FeedSec:     feed,
		TransferSec: transfer,
		OverheadSec: p.SetupSec + float64(w.Epochs)*p.EpochDispatchSec,
	}
	return b.total() // serial: no interleaving to hide anything
}

// TABLA models the TABLA baseline of Figure 16: single-threaded
// acceleration with CPU-side data handoff.
func TABLA(w Workload, p Params, warm bool) Breakdown {
	wt := w
	wt.EpochCycles = w.SingleThreadEpochCycles
	return DAnANoStrider(wt, p, warm)
}

// LibKind selects the external library model.
type LibKind int

const (
	Liblinear LibKind = iota
	DimmWitted
)

// libComputeRatio is the measured multicore compute-throughput ratio of
// each library relative to MADlib+PostgreSQL (paper §7.3, Figure 15b):
// values > 1 mean the library computes faster than in-database IGD;
// SVM values < 1 capture the general convex solvers both libraries use,
// which lose badly to IGD on dense data. These are adopted empirical
// constants — library internals are not reconstructable from the paper.
// NaN marks unsupported algorithms (Liblinear has no linear regression).
var libComputeRatio = map[LibKind]map[string]float64{
	Liblinear:  {"logistic": 3.8, "svm": 1.0 / 18.1, "linear": math.NaN()},
	DimmWitted: {"logistic": 1.8, "svm": 1.0 / 22.3, "linear": 4.3},
}

// ExternalLibrary models Liblinear/DimmWitted: export the table out of
// PostgreSQL (once), transform it to the library's format, then train
// with the library's multicore solver. algo is "linear", "logistic",
// or "svm".
func ExternalLibrary(lib LibKind, algo string, w Workload, p Params) Breakdown {
	b := Breakdown{
		ExportSec:    float64(w.DatasetBytes) / p.ExportBytesPerSec,
		TransformSec: float64(w.DatasetBytes) / p.TransformBytesPerSec,
	}
	ratio := libComputeRatio[lib][algo]
	pgCompute := float64(w.Epochs) * float64(w.Tuples) * madlibTupleSec(w, p)
	b.ComputeSec = pgCompute / ratio
	return b.total()
}

// DAnANoInterleave is the ablation of §5.1.1's pipelining: page
// transfer, Strider unpacking, and engine compute run back to back
// instead of overlapped (everything else identical to DAnA).
func DAnANoInterleave(w Workload, p Params, warm bool) Breakdown {
	w = withDanaEpochs(w)
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	transfer := danaTransferSec(w, p)
	striders := w.Striders
	if striders < 1 {
		striders = 1
	}
	strider := float64(w.Epochs) * float64(w.Pages) * float64(w.StriderPageCycles) /
		(float64(striders) * p.FPGAClockHz)
	b := Breakdown{
		IOSec:       ioSec(w, p, warm),
		ComputeSec:  compute,
		TransferSec: transfer + strider,
		OverheadSec: p.SetupSec + float64(w.Epochs)*p.EpochDispatchSec,
	}
	return b.total()
}

// TupleHandshakeSec is the per-tuple DMA descriptor/doorbell latency of
// tuple-granularity transfer (the alternative §5.1.1 argues against).
const TupleHandshakeSec = 1.2e-6

// DAnATupleGranularity is the ablation of page-granularity access:
// each tuple ships as its own small DMA, so transfer is dominated by
// per-transfer latency instead of bandwidth and cannot amortize (the
// tuple stream interleaves round-robin across the link channels).
func DAnATupleGranularity(w Workload, p Params, warm bool) Breakdown {
	w = withDanaEpochs(w)
	compute := float64(w.Epochs) * float64(w.EpochCycles) / p.FPGAClockHz
	transfer := tupleTransferSec(w, p)
	b := Breakdown{
		IOSec:       ioSec(w, p, warm),
		ComputeSec:  compute,
		TransferSec: transfer,
		OverheadSec: p.SetupSec + float64(w.Epochs)*p.EpochDispatchSec,
	}
	// Compute can still overlap the tuple stream.
	pipeline := math.Max(compute, transfer)
	b.TotalSec = b.IOSec + pipeline + b.OverheadSec
	return b
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// withDanaEpochs applies the accelerated-path epoch override.
func withDanaEpochs(w Workload) Workload {
	if w.DAnAEpochs > 0 {
		w.Epochs = w.DAnAEpochs
	}
	return w
}

// Speedup returns a.TotalSec / b.TotalSec — how much faster b is.
func Speedup(a, b Breakdown) float64 { return a.TotalSec / b.TotalSec }
