package obs

import "fmt"

// Canonical instrument names — the counter taxonomy shared by the
// instrumented subsystems, the CLIs, and the CI bench gate. Names are
// dotted `<layer>.<metric>`; layers match package names.
const (
	// Buffer pool (internal/bufpool): PoolHits+PoolMisses equals the
	// number of Pin requests; PoolSweepSteps counts clock-hand
	// advances during eviction (pressure indicator).
	PoolHits       = "bufpool.hits"
	PoolMisses     = "bufpool.misses"
	PoolEvictions  = "bufpool.evictions"
	PoolSweepSteps = "bufpool.sweep_steps"
	PoolBytesRead  = "bufpool.bytes_read"
	PoolIOSeconds  = "bufpool.io_seconds" // float

	// Buffer-pool fault handling: read retries after injected I/O errors
	// or checksum failures, simulated backoff charged between attempts,
	// and the checksum-verification outcome split (verified + skipped ==
	// pool misses; failures count mismatches, including ones a retry
	// later recovered).
	PoolReadRetries      = "bufpool.read_retries"
	PoolBackoffSeconds   = "bufpool.backoff_seconds" // float
	PoolChecksumVerified = "bufpool.checksum_verified"
	PoolChecksumSkipped  = "bufpool.checksum_skipped"
	PoolChecksumFailed   = "bufpool.checksum_failures"

	// Access engine / Striders (internal/accessengine, internal/strider):
	// modeled page-walk activity. StriderCycles is the group-max modeled
	// time (NumStriders pages unpack concurrently); StriderCyclesTotal
	// is the per-Strider sum, so utilization = total/(cycles*striders).
	StriderPages       = "strider.pages_walked"
	StriderTuples      = "strider.tuples_extracted"
	StriderBytes       = "strider.bytes_decoded"
	StriderInstrs      = "strider.vm_instructions"
	StriderCycles      = "strider.cycles"
	StriderCyclesTotal = "strider.cycles_total"

	// Static verification of Strider programs (internal/strider
	// verify.go): one verify run per program built for dispatch; a
	// reject means the program had a definite trap and never reached a
	// Strider, warnings count unprovable properties the VM still
	// guards dynamically.
	StriderVerifyRuns     = "strider.verify_runs"
	StriderVerifyWarnings = "strider.verify_warnings"
	StriderVerifyRejects  = "strider.verify_rejects"

	// Execution engine (internal/engine): the critical-path (span)
	// cycle split. Invariant: EngineCyclesLoad + EngineCyclesCompute +
	// EngineCyclesMerge == EngineCycles, exactly. EngineCyclesIdle is
	// thread-slot idle time inside merge batches (threads*span − work),
	// the Figure 12 utilization complement; it is NOT part of the total.
	EngineCycles        = "engine.cycles"
	EngineCyclesLoad    = "engine.cycles_load"
	EngineCyclesCompute = "engine.cycles_compute"
	EngineCyclesMerge   = "engine.cycles_merge"
	EngineCyclesIdle    = "engine.cycles_idle"
	EngineTuples        = "engine.tuples"
	EngineBatches       = "engine.batches"
	EngineInstrs        = "engine.instructions"

	// Runtime (internal/runtime): host-side execution. Epoch wall time
	// is also observed as histogram HistEpochWallNs; worker busy time
	// sums Strider-extraction nanoseconds across workers, so occupancy
	// = busy / (wall * workers).
	// Runtime fault recovery: page-level extraction retries, Strider
	// workers quarantined, epochs re-run after quarantine, epochs that
	// hit their deadline, and trainings degraded to the CPU path.
	RuntimePageRetries  = "runtime.page_retries"
	RuntimeQuarantines  = "runtime.worker_quarantines"
	RuntimeEpochRetries = "runtime.epoch_retries"
	RuntimeEpochTimeout = "runtime.epoch_timeouts"
	RuntimeCPUFallbacks = "runtime.cpu_fallbacks"
	// RuntimeFailovers counts generic backend failovers (any fallback
	// target); RuntimeCPUFallbacks additionally counts the ones that
	// landed on the CPU backend, preserving the historical name.
	RuntimeFailovers = "runtime.failovers"

	RuntimeEpochs       = "runtime.epochs"
	RuntimeEpochCached  = "runtime.epochs_cached"
	RuntimeCacheHits    = "runtime.record_cache_hits"
	RuntimeCacheMisses  = "runtime.record_cache_misses"
	RuntimeWorkerBusyNs = "runtime.worker_busy_ns"
	RuntimeEpochWallNs  = "runtime.epoch_wall_ns"
	RuntimeTrainWallNs  = "runtime.train_wall_ns"
	RuntimeTrainRuns    = "runtime.train_runs"

	// Memory channels (internal/runtime): the modeled per-channel
	// stream split under round-robin page interleaving (page pn streams
	// on channel pn mod Channels — the same policy internal/cost
	// charges). ChannelCount records the configured channel count so
	// consumers know how many channel.<i>.* series exist. Per-channel
	// names are built by ChannelBytesStreamed / ChannelBusyCycles.
	ChannelCount = "channel.count"

	// Histograms.
	HistEpochWallNs = "runtime.epoch_wall_ns.hist"
	HistBatchTuples = "engine.batch_tuples.hist"

	// Trace event names.
	EvTrainStart  = "train.start"     // a=epoch budget, b=tuples/page count
	EvTrainDone   = "train.done"      // a=epochs run, b=engine cycles
	EvEpoch       = "epoch"           // a=epoch index, b=wall ns
	EvEpochCached = "epoch.cached"    // a=epoch index, b=wall ns
	EvPoolInval   = "pool.invalidate" // a=frames dropped

	// Fault-handling trace events.
	EvChecksumFail = "pool.checksum_fail" // a=page, b=attempt
	EvReadRetry    = "pool.read_retry"    // a=page, b=attempt
	EvQuarantine   = "worker.quarantine"  // a=vm index, b=failing page
	EvEpochRetry   = "epoch.retry"        // a=epoch index, b=healthy VMs left
	EvEpochTimeout = "epoch.timeout"      // a=epoch index, b=deadline ns
	EvCPUFallback  = "train.cpu_fallback" // a=epoch degraded at, b=epochs left
	EvFailover     = "train.failover"     // a=epoch degraded at, b=epochs left
)

// ChannelBytesStreamed is the per-channel payload-byte counter name:
// the modeled bytes channel ch streamed to the accelerator. Like every
// instrument, per-channel handles are resolved at setup time only.
func ChannelBytesStreamed(ch int) string {
	return fmt.Sprintf("channel.%d.bytes_streamed", ch)
}

// ChannelBusyCycles is the per-channel busy counter name: the modeled
// Strider cycles spent unpacking the pages interleaved onto channel ch.
// Utilization skew across channels is max(busy)/mean(busy).
func ChannelBusyCycles(ch int) string {
	return fmt.Sprintf("channel.%d.busy_cycles", ch)
}

// Per-tenant metric names (internal/server). The server keeps one
// private obs registry per tenant (attached to that tenant's
// runtime.System) and charges tenant.<name>.<metric> counters in its
// own registry from registry deltas taken around each job, so the
// per-tenant cycle counters sum exactly to the per-tenant registries'
// engine/strider totals even when sessions interleave — `danactl
// sessions` asserts the identity and exits non-zero on violation.
// Handles are resolved once at server construction, like every other
// instrument.
const (
	TenantMetricJobs          = "jobs"
	TenantMetricTrains        = "trains"
	TenantMetricScores        = "scores"
	TenantMetricErrors        = "errors"
	TenantMetricDegraded      = "degraded"
	TenantMetricReuses        = "config_reuses"
	TenantMetricReconfigs     = "reconfigs"
	TenantMetricEngineCycles  = "engine_cycles"
	TenantMetricStriderCycles = "strider_cycles"
	TenantMetricWaitMicros    = "wait_us"
)

// TenantCounter is the per-tenant counter name for one of the
// TenantMetric* metrics: "tenant.<tenant>.<metric>".
func TenantCounter(tenant, metric string) string {
	return "tenant." + tenant + "." + metric
}
