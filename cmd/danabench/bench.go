package main

// Benchmark export and regression gate (CI's `bench` job).
//
//	danabench -bench . -count 5 -name ci                 # write BENCH_ci.json
//	danabench -bench . -count 5 -name ci \
//	    -baseline BENCH_baseline.json -maxreg 0.15       # and gate on it
//
// The bench mode shells out to `go test -run=^$ -bench=<re> -benchmem
// -count=N <pkgs>`, parses the standard benchmark output, and writes a
// machine-readable BENCH_<name>.json holding the median ns/op per
// benchmark plus a deterministic "modeled" section (cycle counters from
// an in-process LR training run, exported through internal/obs). With
// -baseline, it compares wall times against the committed baseline and
// exits non-zero when any benchmark regressed by more than -maxreg.
//
// Wall times are normalized by BenchmarkCalibration — a fixed
// arithmetic kernel measured in the same run — before comparison, so a
// slower CI runner does not read as a regression and a faster one does
// not mask a real slowdown. Modeled counters are compared exactly and
// reported (informational): they are bit-deterministic, so any drift
// means the cycle model changed and the baseline needs regenerating.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"dana"
)

// benchSchema versions the BENCH_*.json layout.
const benchSchema = 1

type benchFile struct {
	Schema     int                   `json:"schema"`
	Name       string                `json:"name"`
	GoOS       string                `json:"goos"`
	GoArch     string                `json:"goarch"`
	Count      int                   `json:"count"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	// Modeled holds deterministic simulator counters (engine / strider
	// / bufpool cycles and volumes) from a fixed in-process LR train.
	Modeled map[string]int64 `json:"modeled,omitempty"`
}

type benchEntry struct {
	// NsPerOp is the median across -count runs.
	NsPerOp     float64   `json:"ns_per_op"`
	Samples     []float64 `json:"samples,omitempty"`
	BytesPerOp  int64     `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64     `json:"allocs_per_op,omitempty"`
	// Metrics carries custom b.ReportMetric units (medians across
	// repetitions) — e.g. the server load benchmark's vjobs/s, p99ms,
	// and reuse%. Informational in the gate: only ns/op is gated.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	metricSamples map[string][]float64
}

// calibrationBench is the fixed-arithmetic kernel used to normalize
// wall times across machines (see BenchmarkCalibration in bench_test.go).
const calibrationBench = "BenchmarkCalibration"

func runBenchMode(benchRe string, count int, pkgs, name, outDir, baseline string, maxReg float64) error {
	results, err := runGoBench(benchRe, count, strings.Fields(pkgs))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmarks matched %q", benchRe)
	}
	bf := &benchFile{
		Schema: benchSchema, Name: name,
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Count: count, Benchmarks: results,
	}
	modeled, err := modeledCounters()
	if err != nil {
		return fmt.Errorf("modeled counters: %w", err)
	}
	bf.Modeled = modeled

	out := filepath.Join(outDir, "BENCH_"+name+".json")
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d benchmarks, %d modeled counters\n", out, len(bf.Benchmarks), len(bf.Modeled))

	if baseline == "" {
		return nil
	}
	base, err := readBenchFile(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return gate(bf, base, maxReg)
}

// runGoBench shells out to the Go benchmark runner, tees its output,
// and returns the per-benchmark median of ns/op across repetitions.
func runGoBench(benchRe string, count int, pkgs []string) (map[string]benchEntry, error) {
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	args := append([]string{
		"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-count", strconv.Itoa(count),
	}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	samples := map[string]*benchEntry{}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		name, e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		agg, exists := samples[name]
		if !exists {
			agg = &benchEntry{}
			samples[name] = agg
		}
		agg.Samples = append(agg.Samples, e.NsPerOp)
		agg.BytesPerOp = e.BytesPerOp
		agg.AllocsPerOp = e.AllocsPerOp
		for unit, v := range e.Metrics {
			if agg.metricSamples == nil {
				agg.metricSamples = map[string][]float64{}
			}
			agg.metricSamples[unit] = append(agg.metricSamples[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	out := make(map[string]benchEntry, len(samples))
	for name, agg := range samples {
		agg.NsPerOp = median(agg.Samples)
		for unit, vs := range agg.metricSamples {
			if agg.Metrics == nil {
				agg.Metrics = map[string]float64{}
			}
			agg.Metrics[unit] = median(vs)
		}
		out[name] = *agg
	}
	return out, nil
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses a standard benchmark result line:
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// The -NumCPU suffix is stripped so results compare across machines.
func parseBenchLine(line string) (string, benchEntry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", benchEntry{}, false
	}
	var e benchEntry
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			e.NsPerOp, seen = v, true
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		default:
			// Custom b.ReportMetric units (vjobs/s, p99ms, reuse%, ...).
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[f[i+1]] = v
		}
	}
	if !seen {
		return "", benchEntry{}, false
	}
	return cpuSuffix.ReplaceAllString(f[0], ""), e, true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// modeledCounters runs a fixed LR training configuration in process and
// exports the deterministic obs counters: bit-identical on every
// machine and run, so the gate can separate "this machine is slow"
// from "the simulator now does different work".
func modeledCounters() (map[string]int64, error) {
	eng, err := dana.Open(dana.Config{PageSize: 32 << 10, PoolBytes: 128 << 20, Workers: 1})
	if err != nil {
		return nil, err
	}
	d, err := eng.LoadWorkload("Remote Sensing LR", 0.01, 1)
	if err != nil {
		return nil, err
	}
	a, err := d.DSLAlgo(64)
	if err != nil {
		return nil, err
	}
	a.SetEpochs(3)
	if err := eng.RegisterUDF(a, 64); err != nil {
		return nil, err
	}
	if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
		return nil, err
	}
	snap := eng.Obs().Snapshot()
	modeled := map[string]int64{}
	for name, v := range snap.Counters {
		// Wall-clock counters vary per machine; everything else the
		// registry holds for this run is modeled and deterministic.
		if strings.HasSuffix(name, "_ns") {
			continue
		}
		modeled[name] = v
	}
	return modeled, nil
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, err
	}
	if bf.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %d, want %d", path, bf.Schema, benchSchema)
	}
	return &bf, nil
}

// gate compares current wall times against the baseline, normalized by
// the calibration benchmark, and fails on regressions beyond maxReg.
func gate(cur, base *benchFile, maxReg float64) error {
	norm := 1.0
	curCal, okC := cur.Benchmarks[calibrationBench]
	baseCal, okB := base.Benchmarks[calibrationBench]
	if okC && okB && curCal.NsPerOp > 0 && baseCal.NsPerOp > 0 {
		norm = baseCal.NsPerOp / curCal.NsPerOp
		fmt.Printf("calibration: baseline %.0f ns/op, current %.0f ns/op -> machine-speed factor %.3f\n",
			baseCal.NsPerOp, curCal.NsPerOp, 1/norm)
	} else {
		fmt.Println("calibration benchmark missing from baseline or current run; comparing raw wall times")
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions, missing []string
	for _, name := range names {
		if name == calibrationBench {
			continue
		}
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := (c.NsPerOp * norm) / b.NsPerOp
		status := "ok"
		if ratio > 1+maxReg {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2fx baseline (%.0f -> %.0f ns/op normalized)", name, ratio, b.NsPerOp, c.NsPerOp*norm))
		}
		fmt.Printf("  %-44s %8.3fx  %s\n", name, ratio, status)
	}
	for _, name := range missing {
		fmt.Printf("  %-44s  (missing from current run)\n", name)
	}

	drift := 0
	for name, bv := range base.Modeled {
		if cv, ok := cur.Modeled[name]; ok && cv != bv {
			fmt.Printf("modeled counter drift: %s baseline %d, current %d\n", name, bv, cv)
			drift++
		}
	}
	if drift > 0 {
		fmt.Printf("note: %d modeled counter(s) drifted — the cycle model changed; regenerate the baseline if intended\n", drift)
	}

	if len(regressions) > 0 {
		return fmt.Errorf("wall-time regression beyond %.0f%%:\n  %s",
			100*maxReg, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench gate passed: no benchmark beyond %.0f%% of baseline\n", 100*maxReg)
	return nil
}
