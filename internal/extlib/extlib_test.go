package extlib

import (
	"bytes"
	"testing"

	"dana/internal/bufpool"
	"dana/internal/datagen"
	"dana/internal/ml"
	"dana/internal/storage"
)

func setup(t *testing.T, workload string, scale float64) (*bufpool.Pool, *datagen.Dataset) {
	t.Helper()
	w, err := datagen.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datagen.Generate(w, scale, storage.PageSize8K, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(512, storage.PageSize8K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(d.Rel); err != nil {
		t.Fatal(err)
	}
	return pool, d
}

func TestSupportsMatrix(t *testing.T) {
	lin := ml.Linear{NFeatures: 2, LR: 0.1}
	logi := ml.Logistic{NFeatures: 2, LR: 0.1}
	svm := ml.SVM{NFeatures: 2, LR: 0.1, Lambda: 0.1}
	lrmf := ml.LRMF{Users: 2, Items: 2, Rank: 2, LR: 0.1}
	if Liblinear.Supports(lin) {
		t.Error("Liblinear should not support linear regression")
	}
	if !Liblinear.Supports(logi) || !Liblinear.Supports(svm) {
		t.Error("Liblinear should support logistic and SVM")
	}
	if !DimmWitted.Supports(lin) {
		t.Error("DimmWitted should support linear regression")
	}
	if Liblinear.Supports(lrmf) || DimmWitted.Supports(lrmf) {
		t.Error("neither library supports LRMF")
	}
}

func TestExportTransformRoundTrip(t *testing.T) {
	pool, d := setup(t, "WLAN", 0.005)
	r, err := New(Liblinear, pool, d.Rel, d.MLAlgorithm(), 4)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := r.Export()
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(csv, []byte{'\n'}); lines != d.Tuples {
		t.Fatalf("exported %d lines, want %d", lines, d.Tuples)
	}
	rows, err := Transform(csv, d.Rel.Schema.NumCols())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != d.Tuples {
		t.Fatalf("transformed %d rows", len(rows))
	}
	// Spot check against the relation.
	want, err := d.Rel.Get(storage.TID{Page: 0, Item: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if rows[0][i] != want[i] {
			t.Fatalf("col %d: %v != %v", i, rows[0][i], want[i])
		}
	}
}

func TestTransformErrors(t *testing.T) {
	if _, err := Transform([]byte("1,2\n"), 3); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := Transform([]byte("a,b\n"), 2); err == nil {
		t.Error("bad number accepted")
	}
}

func TestTrainPipelineLearns(t *testing.T) {
	pool, d := setup(t, "Blog Feedback", 0.02)
	r, err := New(DimmWitted, pool, d.Rel, d.MLAlgorithm(), 4)
	if err != nil {
		t.Fatal(err)
	}
	model, st, err := r.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExportedBytes <= 0 || st.Tuples != int64(d.Tuples) || st.Threads != 4 {
		t.Errorf("stats = %+v", st)
	}
	zero := make([]float64, len(model))
	var tuples [][]float64
	if err := d.Rel.Scan(func(_ storage.TID, vals []float64) error {
		tuples = append(tuples, append([]float64(nil), vals...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	alg := d.MLAlgorithm()
	if st.FinalLoss > ml.MeanLoss(alg, zero, tuples)/3 {
		t.Errorf("loss %v vs untrained %v", st.FinalLoss, ml.MeanLoss(alg, zero, tuples))
	}
}

func TestUnsupportedAlgoRejected(t *testing.T) {
	pool, d := setup(t, "Patient", 0.01) // linear
	if _, err := New(Liblinear, pool, d.Rel, d.MLAlgorithm(), 2); err == nil {
		t.Error("Liblinear+linear accepted")
	}
}

func TestLibraryString(t *testing.T) {
	if Liblinear.String() != "Liblinear" || DimmWitted.String() != "DimmWitted" {
		t.Error("names wrong")
	}
}
