package verify_test

// Chaos suite: seeded fault-injection scenarios crossed with the
// differential harness's scenario generator. Every scenario draws a
// workload, executor configuration, and fault schedule from one logged
// seed, trains through the full DAnA pipeline, and asserts one of two
// legal outcomes:
//
//   - recovery: the run completes; an undegraded run must be
//     bit-identical to the fault-free baseline (retries, quarantine
//     re-runs, and latency spikes may not perturb the model), and a
//     degraded run (CPU fallback) must land within Oracle-C tolerance;
//   - clean failure: the error is typed (errors.Is one of the
//     internal/fault sentinels), no page pins leak, and the system
//     trains fault-free afterwards to the bit-identical baseline —
//     proving pool and catalog invariants survived the crash path.
//
// Reproduction: every subtest is named seed=0x…; run it directly with
// `go test -run 'TestChaosSuite/seed=0x2a' ./internal/verify/`.
// The weekly randomized CI run overrides the seed base and scenario
// count via DANA_CHAOS_SEED and DANA_CHAOS_N.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"dana/internal/datagen"
	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/runtime"
	"dana/internal/verify"
)

// chaosScenarios is the default scenario count (the issue floor is 150).
const chaosScenarios = 160

// chaosWorkload is one training workload at chaos scale.
type chaosWorkload struct {
	name      string
	scale     float64
	mergeCoef int
	epochs    int
	tol       float64 // degraded-run model tolerance vs fault-free baseline
}

var chaosWorkloads = []chaosWorkload{
	{"Remote Sensing LR", 0.002, 16, 3, 2e-2},
	{"Remote Sensing SVM", 0.002, 16, 3, 2e-2},
	{"Patient", 0.01, 8, 3, 2e-2},
	{"Netflix", 0.0005, 1, 2, 2e-1},
}

// chaosSystem builds a ready-to-train system for the workload.
func chaosSystem(t *testing.T, wl chaosWorkload, pageSize int, mods ...func(*runtime.Options)) (*runtime.System, string, string) {
	t.Helper()
	opts := runtime.DefaultOptions()
	opts.PageSize = pageSize
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = wl.epochs
	for _, mod := range mods {
		mod(&opts)
	}
	s := runtime.New(opts)
	w, err := datagen.ByName(wl.name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datagen.Generate(w, wl.scale, pageSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(d); err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(wl.mergeCoef)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(wl.epochs)
	if _, err := s.Register(a, wl.mergeCoef, d.Tuples); err != nil {
		t.Fatal(err)
	}
	return s, a.Name, d.Rel.Name
}

// baselineCache memoizes the fault-free model per (workload, page size):
// every chaos scenario compares against the same golden run.
var (
	baselineMu    sync.Mutex
	baselineCache = map[string][]float32{}
)

func chaosBaseline(t *testing.T, wl chaosWorkload, pageSize int) []float32 {
	t.Helper()
	key := fmt.Sprintf("%s/%d", wl.name, pageSize)
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if m, ok := baselineCache[key]; ok {
		return m
	}
	s, udf, table := chaosSystem(t, wl, pageSize)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatalf("fault-free baseline failed: %v", err)
	}
	baselineCache[key] = res.Model
	return res.Model
}

func assertBitIdentical(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: model size %d != baseline %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: model[%d] = %v != baseline %v (bit-identity required)", what, i, got[i], want[i])
		}
	}
}

func assertWithinTol(t *testing.T, what string, got, want []float32, tol float64) {
	t.Helper()
	a := make([]float64, len(got))
	b := make([]float64, len(want))
	for i := range got {
		a[i] = float64(got[i])
	}
	for i := range want {
		b[i] = float64(want[i])
	}
	if err := verify.CompareModels(what, a, b, tol); err != nil {
		t.Error(err)
	}
}

// chaosTyped lists every error a chaos run is allowed to die with; any
// other failure (a panic is caught by the test harness itself) is a bug.
var chaosTyped = []error{
	fault.ErrIOTransient,
	fault.ErrTornPage,
	fault.ErrVMTrap,
	fault.ErrClusterDown,
	fault.ErrClusterStall,
	fault.ErrEpochTimeout,
	fault.ErrWorkerQuarantined,
}

func isTyped(err error) bool {
	for _, sentinel := range chaosTyped {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestChaosSuite runs chaosScenarios seeded fault-injection scenarios
// (override the count with DANA_CHAOS_N and the seed base with
// DANA_CHAOS_SEED for the randomized CI run).
func TestChaosSuite(t *testing.T) {
	n := envInt("DANA_CHAOS_N", chaosScenarios)
	base := envInt("DANA_CHAOS_SEED", 1)
	if testing.Short() {
		n = 24
	}
	for i := 0; i < n; i++ {
		seed := int64(base) + int64(i)
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			t.Parallel()
			runChaosScenario(t, seed)
		})
	}
}

func runChaosScenario(t *testing.T, seed int64) {
	g := verify.NewGen(seed)
	wl := chaosWorkloads[g.Intn(len(chaosWorkloads))]
	pageSize := g.PageSize()
	workers := []int{1, 2, 4, 8}[g.Intn(4)]

	// Fault schedule: one primary injection point, sometimes a second,
	// at a drawn rate and transience.
	var rates [fault.NumPoints]float64
	rate := []float64{0.01, 0.05, 0.25, 1.0}[g.Intn(4)]
	primary := fault.Point(g.Intn(fault.NumPoints))
	rates[primary] = rate
	if g.Intn(3) == 0 {
		secondary := fault.Point(g.Intn(fault.NumPoints))
		rates[secondary] = []float64{0.01, 0.05, 0.25, 1.0}[g.Intn(4)]
	}
	transient := []int{1, 2, -1}[g.Intn(3)]
	cold := g.Intn(2) == 0
	timeout := g.Intn(12) == 0
	disableFallback := g.Intn(4) == 0

	cfg := fault.Config{
		Seed:              uint64(seed) * 0x9E3779B97F4A7C15,
		Rates:             rates,
		TransientAttempts: transient,
		StallDuration:     200 * time.Microsecond,
		LatencySpikeSec:   2e-3,
	}
	mods := []func(*runtime.Options){
		func(o *runtime.Options) {
			o.Faults = fault.New(cfg)
			o.Workers = workers
			o.DisableCPUFallback = disableFallback
			if timeout {
				o.EpochTimeout = time.Nanosecond
			}
		},
	}
	baseline := chaosBaseline(t, wl, pageSize)
	s, udf, table := chaosSystem(t, wl, pageSize, mods...)
	if cold {
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
	}

	res, err := s.Train(udf, table)
	if s.Pool().PinnedCount() != 0 {
		t.Errorf("leaked page pins (err=%v)", err)
	}
	if err != nil {
		// Outcome (b): clean typed failure with intact invariants.
		if !isTyped(err) {
			t.Fatalf("untyped chaos failure: %v", err)
		}
		// The system must remain fully usable: detach the schedule and
		// the same system must train to the bit-identical baseline.
		s.Opts.Faults = nil
		s.DB.Pool.SetFaults(nil)
		s.Opts.EpochTimeout = 0
		after, aerr := s.Train(udf, table)
		if aerr != nil {
			t.Fatalf("system unusable after clean failure (%v): %v", err, aerr)
		}
		if after.Degraded {
			t.Fatal("fault-free retrain reported degradation")
		}
		assertBitIdentical(t, "post-failure retrain", after.Model, baseline)
		return
	}

	// Outcome (a): recovery.
	if res.Degraded {
		if disableFallback {
			t.Fatal("run degraded with DisableCPUFallback set")
		}
		assertWithinTol(t, fmt.Sprintf("degraded %s", wl.name), res.Model, baseline, wl.tol)
		if got := s.Obs().Get(obs.RuntimeCPUFallbacks); got != 1 {
			t.Errorf("degraded run recorded %d cpu_fallbacks, want 1", got)
		}
		return
	}
	assertBitIdentical(t, "recovered run", res.Model, baseline)
}

// --- Mutation meta-tests ------------------------------------------------
//
// Each recovery mechanism must be load-bearing: turning it off (via its
// public knob) flips a scenario from recovery to failure/degradation,
// proving the chaos suite's green runs actually exercise the path.

// TestChaosMetaReadRetryLoadBearing: a transient disk fault on every
// page is absorbed by the pool's retry/backoff; with retries disabled
// the same schedule fails typed.
func TestChaosMetaReadRetryLoadBearing(t *testing.T) {
	wl := chaosWorkloads[0]
	sched := func(o *runtime.Options) {
		var rates [fault.NumPoints]float64
		rates[fault.PoolRead] = 1.0
		o.Faults = fault.New(fault.Config{Seed: 99, Rates: rates, TransientAttempts: 2})
	}

	s, udf, table := chaosSystem(t, wl, 8<<10, sched)
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatalf("retry path should absorb transient read faults: %v", err)
	}
	if res.Degraded {
		t.Fatal("storage retries must not degrade the run")
	}
	if got := s.Obs().Get(obs.PoolReadRetries); got == 0 {
		t.Error("no pool read retries recorded")
	}
	assertBitIdentical(t, "retried run", res.Model, chaosBaseline(t, wl, 8<<10))

	// Mutation: no retry budget — the same schedule must now fail typed.
	s2, udf2, table2 := chaosSystem(t, wl, 8<<10, sched,
		func(o *runtime.Options) { o.MaxReadRetries = -1 })
	if err := s2.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Train(udf2, table2); !errors.Is(err, fault.ErrIOTransient) {
		t.Fatalf("without retries: got %v, want ErrIOTransient", err)
	}
	if s2.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}
}

// TestChaosMetaPageRetryLoadBearing: a once-transient Strider trap on
// every page clears within the same-VM retry budget (no quarantine);
// with page retries disabled every trap escalates to quarantine and the
// run degrades — the retry path is what keeps the accelerator up.
func TestChaosMetaPageRetryLoadBearing(t *testing.T) {
	wl := chaosWorkloads[0]
	sched := func(o *runtime.Options) {
		var rates [fault.NumPoints]float64
		rates[fault.StriderTrap] = 1.0
		o.Faults = fault.New(fault.Config{Seed: 77, Rates: rates, TransientAttempts: 1})
	}

	s, udf, table := chaosSystem(t, wl, 8<<10, sched)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("transient traps should clear within the page-retry budget")
	}
	if got := s.Obs().Get(obs.RuntimeQuarantines); got != 0 {
		t.Errorf("retry-absorbed traps still quarantined %d workers", got)
	}
	if got := s.Obs().Get(obs.RuntimePageRetries); got == 0 {
		t.Error("no page retries recorded")
	}
	assertBitIdentical(t, "trap-retried run", res.Model, chaosBaseline(t, wl, 8<<10))

	// Mutation: no page retries — every first-attempt trap now
	// quarantines its VM until the pool drains and the run degrades.
	s2, udf2, table2 := chaosSystem(t, wl, 8<<10, sched,
		func(o *runtime.Options) { o.MaxPageRetries = -1 })
	res2, err := s2.Train(udf2, table2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Degraded {
		t.Fatal("without page retries the trap storm should degrade the run")
	}
	if got := s2.Obs().Get(obs.RuntimeQuarantines); got == 0 {
		t.Error("no quarantines recorded on the mutated run")
	}
}

// TestChaosMetaFallbackLoadBearing: with the whole Strider pool
// persistently trapping, the CPU fallback is the only way to finish;
// disabling it flips the run to a typed quarantine failure.
func TestChaosMetaFallbackLoadBearing(t *testing.T) {
	wl := chaosWorkloads[0]
	sched := func(o *runtime.Options) {
		var rates [fault.NumPoints]float64
		rates[fault.StriderTrap] = 1.0
		o.Faults = fault.New(fault.Config{Seed: 55, Rates: rates, TransientAttempts: -1})
	}

	s, udf, table := chaosSystem(t, wl, 8<<10, sched)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("persistent trap storm should degrade the run")
	}
	if got := s.Obs().Get(obs.RuntimeCPUFallbacks); got != 1 {
		t.Errorf("cpu_fallbacks = %d, want 1", got)
	}
	assertWithinTol(t, "fallback run", res.Model, chaosBaseline(t, wl, 8<<10), wl.tol)

	s2, udf2, table2 := chaosSystem(t, wl, 8<<10, sched,
		func(o *runtime.Options) { o.DisableCPUFallback = true })
	if _, err := s2.Train(udf2, table2); !errors.Is(err, fault.ErrWorkerQuarantined) {
		t.Fatalf("without fallback: got %v, want ErrWorkerQuarantined", err)
	}
}

// TestChaosMetaChecksumLoadBearing: page corruption on the disk-read
// copy is caught by the per-page checksum and healed by re-reading the
// intact source; when the corruption is persistent the read fails typed
// as a torn page instead of silently training on garbage.
func TestChaosMetaChecksumLoadBearing(t *testing.T) {
	wl := chaosWorkloads[0]
	mkSched := func(attempts int) func(*runtime.Options) {
		return func(o *runtime.Options) {
			var rates [fault.NumPoints]float64
			rates[fault.PageTear] = 1.0
			o.Faults = fault.New(fault.Config{Seed: 33, Rates: rates, TransientAttempts: attempts})
		}
	}

	s, udf, table := chaosSystem(t, wl, 8<<10, mkSched(1))
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatalf("transient torn pages should heal via re-read: %v", err)
	}
	if res.Degraded {
		t.Fatal("checksum recovery must not degrade the run")
	}
	if got := s.Obs().Get(obs.PoolChecksumFailed); got == 0 {
		t.Error("no checksum failures recorded; the reject path never fired")
	}
	assertBitIdentical(t, "healed run", res.Model, chaosBaseline(t, wl, 8<<10))

	// Mutation: persistent corruption — the reject path must surface the
	// typed torn-page error rather than feed garbage to the Striders.
	s2, udf2, table2 := chaosSystem(t, wl, 8<<10, mkSched(-1))
	if err := s2.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Train(udf2, table2); !errors.Is(err, fault.ErrTornPage) {
		t.Fatalf("persistent corruption: got %v, want ErrTornPage", err)
	}
	if s2.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}
}
