package engine

import (
	"fmt"
	"strings"
)

// instrCycles returns the static cycle cost of a macro instruction under
// the configuration — identical to what Machine.exec charges, so static
// estimates match dynamic execution exactly (the property §6.1 relies on:
// "there are no dynamic irregularities that hinder estimation").
func instrCycles(in Instr, cfg Config) int {
	lanes := cfg.Lanes()
	switch in.Kind {
	case KEW:
		return ceilDiv(in.Dst.Len, lanes) + in.Op.Latency() - 1
	case KReduce:
		return ceilDiv(in.Dst.Len*in.GroupSize, lanes) + 3 + (cfg.ACsPerThread - 1)
	case KGather, KScatter:
		return ceilDiv(in.RowLen, lanes) + 1
	default:
		return 1
	}
}

func listCycles(list []Instr, cfg Config) int64 {
	var c int64
	for _, in := range list {
		c += int64(instrCycles(in, cfg))
	}
	return c
}

// CycleEstimate is the static performance model of one configuration.
type CycleEstimate struct {
	PerTuple    int64 // cycles per training tuple on one thread (incl. load)
	LocalAcc    int64 // cycles to fold one extra tuple into the thread-local merge value
	MergeBatch  int64 // tree-bus merge cycles per batch
	PostMerge   int64 // post-merge update cycles per batch
	Broadcast   int64 // model write-back/broadcast cycles per batch
	Convergence int64 // cycles per epoch
}

// BatchCycles returns the modeled cycles for one batch of `batch` tuples
// on `threads` live threads.
func (e CycleEstimate) BatchCycles(batch, threads int) int64 {
	if batch <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	if threads > batch {
		threads = batch
	}
	perThread := ceilDiv(batch, threads)
	c := int64(perThread)*e.PerTuple + int64(perThread-1)*e.LocalAcc
	if threads > 1 {
		c += e.MergeBatch
	}
	return c + e.PostMerge + e.Broadcast
}

// EpochCycles returns modeled cycles for one epoch over n tuples.
func (e CycleEstimate) EpochCycles(n, batch, threads int) int64 {
	if batch < 1 {
		batch = 1
	}
	full := n / batch
	c := int64(full) * e.BatchCycles(batch, threads)
	if rem := n % batch; rem > 0 {
		c += e.BatchCycles(rem, threads)
	}
	return c + e.Convergence
}

// Estimate computes the static cycle model of a program under cfg.
func (p *Program) Estimate(cfg Config) CycleEstimate {
	est := CycleEstimate{
		PerTuple:    int64(ceilDiv(p.InputSlot.Len, 8)) + listCycles(p.PerTuple, cfg) + listCycles(p.RowUpdates, cfg),
		PostMerge:   listCycles(p.PostMerge, cfg),
		Convergence: listCycles(p.Convergence, cfg),
	}
	if p.HasMerge() {
		est.LocalAcc = int64(ceilDiv(p.MergeSrc.Len, cfg.Lanes()))
		est.MergeBatch = int64(ceilDiv(p.MergeSrc.Len, 8) * max(1, log2Ceil(cfg.Threads)))
	}
	if p.UpdatedSlot.Len > 0 {
		if p.HasMerge() {
			est.Broadcast = int64(ceilDiv(p.ModelSlot.Len, 8))
		} else {
			est.Broadcast = int64(ceilDiv(p.ModelSlot.Len, cfg.Lanes()))
			// Without a merge the write-back happens per tuple.
			est.PerTuple += est.Broadcast
			est.Broadcast = 0
		}
	} else if len(p.RowUpdates) > 0 && cfg.Threads > 1 {
		est.Broadcast = int64(ceilDiv(p.ModelSlot.Len, 8))
	}
	return est
}

// MicroStats summarizes the selective-SIMD micro-instruction expansion
// of a program: how many AC-level instructions each AC's instruction
// buffer holds per stage.
type MicroStats struct {
	PerTupleMicroOps  int
	PostMergeMicroOps int
	ConvMicroOps      int
}

// microOps returns AC-level instruction count for one macro instruction:
// one micro-op per wave per AC touched.
func microOps(in Instr, cfg Config) int {
	lanes := cfg.Lanes()
	switch in.Kind {
	case KEW:
		waves := ceilDiv(in.Dst.Len, lanes)
		acs := ceilDiv(min(in.Dst.Len, lanes), cfg.AUsPerAC)
		return waves * acs
	case KReduce:
		waves := ceilDiv(in.Dst.Len*in.GroupSize, lanes)
		acs := ceilDiv(min(in.Dst.Len*in.GroupSize, lanes), cfg.AUsPerAC)
		// + 3 tree hops + bus combine steps
		return waves*acs + 3 + (cfg.ACsPerThread - 1)
	case KGather, KScatter:
		return ceilDiv(in.RowLen, lanes) + 1
	default:
		return 1
	}
}

// Expand computes the micro-instruction statistics for the program.
func Expand(p *Program, cfg Config) MicroStats {
	var ms MicroStats
	for _, in := range p.PerTuple {
		ms.PerTupleMicroOps += microOps(in, cfg)
	}
	for _, in := range p.RowUpdates {
		ms.PerTupleMicroOps += microOps(in, cfg)
	}
	for _, in := range p.PostMerge {
		ms.PostMergeMicroOps += microOps(in, cfg)
	}
	for _, in := range p.Convergence {
		ms.ConvMicroOps += microOps(in, cfg)
	}
	return ms
}

// Listing renders the compiled program as text (for danactl and tests).
func Listing(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slots=%d model=%v input=%v const=%v\n", p.Slots, p.ModelSlot, p.InputSlot, p.ConstSlot)
	dump := func(name string, list []Instr) {
		if len(list) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", name)
		for i, in := range list {
			fmt.Fprintf(&b, "  %3d: %s\n", i, in)
		}
	}
	dump("per-tuple", p.PerTuple)
	if p.HasMerge() {
		fmt.Fprintf(&b, "merge: %s over %v -> %v\n", p.MergeOp, p.MergeSrc, p.MergeDst)
	}
	dump("post-merge", p.PostMerge)
	dump("row-updates", p.RowUpdates)
	dump("convergence", p.Convergence)
	if p.UpdatedSlot.Len > 0 {
		fmt.Fprintf(&b, "updated-model: %v\n", p.UpdatedSlot)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
